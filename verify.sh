#!/bin/sh
# verify.sh — the repo's pre-merge gate: formatting, vet, build, and
# the full test suite under the race detector.
set -e
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
# The examples tree is built explicitly: example programs have no
# tests, so only a build catches API drift there.
go build ./examples/...
# The engine and the serving layer share compiled plans across
# goroutines, the obs flight recorder is a lock-striped ring hammered
# by every request, and the persistent store mixes request-path reads
# with a background compactor and the serve write-behind goroutine,
# and the floorplan annealer runs as async jobs on a worker pool fed
# by the serve handlers; their suites run first and explicitly under
# the race detector so a concurrency regression fails fast with a
# focused report before the full-tree run below repeats them in bulk.
go vet ./internal/engine/... ./internal/serve ./internal/floorplan ./internal/obs ./internal/store ./cmd/maest-trace
go test -race ./internal/engine/... ./internal/serve ./internal/floorplan ./internal/obs ./internal/store ./cmd/maest-trace
go test -race ./...
# Coverage ratchet: the packages carrying the incremental (ECO)
# re-estimation machinery must not lose test coverage.  Floors live in
# testdata/coverage_floor.txt, about a point under the measured figure
# — raise them when a package's coverage durably improves.
go test -cover $(awk '!/^#/ && NF { print $1 }' testdata/coverage_floor.txt) |
    awk -v floors=testdata/coverage_floor.txt '
    BEGIN {
        while ((getline line < floors) > 0) {
            if (line ~ /^#/ || line !~ /[^ ]/) continue
            split(line, f, " ")
            floor[f[1]] = f[2] + 0
        }
    }
    {
        print
        if ($1 == "ok" && match($0, /coverage: [0-9.]+%/)) {
            pct = substr($0, RSTART + 10, RLENGTH - 11) + 0
            if ($2 in floor) {
                seen[$2] = 1
                if (pct < floor[$2]) {
                    printf "coverage ratchet: %s at %.1f%% is below its %.1f%% floor\n", $2, pct, floor[$2] > "/dev/stderr"
                    bad = 1
                }
            }
        }
    }
    END {
        for (p in floor) if (!(p in seen)) {
            printf "coverage ratchet: no coverage figure for %s\n", p > "/dev/stderr"
            bad = 1
        }
        exit bad
    }'
# Distributed-trace e2e: two full serve instances (router + shard) on
# real sockets must stitch one W3C trace id from the client through
# both flight recorders; the trace-store restart e2e must render a
# pre-restart trace byte-identically after a kill + reopen.
go test -race -run 'TestTwoProcessTraceStitch|TestTraceStoreRestartEndToEnd' ./cmd/maest-serve
# Bench smoke: every benchmark must still compile and survive one
# iteration (catches bit-rot in the perf harness without timing it).
go test -run=NONE -bench=. -benchtime=1x ./...
# Observatory smoke: a fresh accuracy snapshot must match the
# checked-in reference exactly (-tol 0 — the engine refactor is
# required to be bit-identical, so zero drift is the contract; perf
# compare stays off, it is machine-dependent).  The -eco pass replays
# randomized edit scripts down both the full-recompile and Plan.Delta
# routes, hard-fails on any plan-hash divergence, and gates the
# incremental path at >= 5x the full route per edit (the ratio is
# machine-independent even though the raw timings are not).
tmp=$(mktemp /tmp/BENCH_ci.XXXXXX.json)
trap 'rm -f "$tmp"' EXIT
go run ./cmd/maest-bench -label ci -o "$tmp" -requests 24 -estimate-iters 1 \
    -eco 40 -eco-min-speedup 5 -floorplan 4 \
    -compare testdata/bench/BENCH_reference.json -tol 0
echo "verify.sh: all checks passed"
