#!/bin/sh
# verify.sh — the repo's pre-merge gate: formatting, vet, build, and
# the full test suite under the race detector.
set -e
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
# The examples tree is built explicitly: example programs have no
# tests, so only a build catches API drift there.
go build ./examples/...
go test -race ./...
# Bench smoke: every benchmark must still compile and survive one
# iteration (catches bit-rot in the perf harness without timing it).
go test -run=NONE -bench=. -benchtime=1x ./...
echo "verify.sh: all checks passed"
