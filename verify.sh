#!/bin/sh
# verify.sh — the repo's pre-merge gate: formatting, vet, build, and
# the full test suite under the race detector.
set -e
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
# The examples tree is built explicitly: example programs have no
# tests, so only a build catches API drift there.
go build ./examples/...
# The engine and the serving layer share compiled plans across
# goroutines, and the obs flight recorder is a lock-striped ring
# hammered by every request; their suites run first and explicitly
# under the race detector so a concurrency regression fails fast with
# a focused report before the full-tree run below repeats them in
# bulk.
go vet ./internal/engine ./internal/serve ./internal/obs
go test -race ./internal/engine ./internal/serve ./internal/obs
go test -race ./...
# Distributed-trace e2e: two full serve instances (router + shard) on
# real sockets must stitch one W3C trace id from the client through
# both flight recorders.
go test -race -run TestTwoProcessTraceStitch ./cmd/maest-serve
# Bench smoke: every benchmark must still compile and survive one
# iteration (catches bit-rot in the perf harness without timing it).
go test -run=NONE -bench=. -benchtime=1x ./...
# Observatory smoke: a fresh accuracy snapshot must match the
# checked-in reference exactly (-tol 0 — the engine refactor is
# required to be bit-identical, so zero drift is the contract; perf
# compare stays off, it is machine-dependent).
tmp=$(mktemp /tmp/BENCH_ci.XXXXXX.json)
trap 'rm -f "$tmp"' EXIT
go run ./cmd/maest-bench -label ci -o "$tmp" -requests 24 -estimate-iters 1 \
    -compare testdata/bench/BENCH_reference.json -tol 0
echo "verify.sh: all checks passed"
