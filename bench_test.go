// Benchmarks regenerating every table, figure, and numeric claim of
// the paper's evaluation (see DESIGN.md §4 for the experiment index).
// Each benchmark both times the artifact's regeneration and reports
// the reproduced quantities as custom metrics, so `go test -bench=.`
// doubles as the reproduction harness.  EXPERIMENTS.md records the
// paper-vs-measured comparison.
package maest_test

import (
	"context"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"

	"maest"
	"maest/internal/baseline"
	"maest/internal/floorplan"
	"maest/internal/gen"
	"maest/internal/pla"
	"maest/internal/prob"
	"maest/internal/report"
	"maest/internal/tech"
)

// E1 — Table 1: Full-Custom module area estimates vs. synthesized
// ground-truth layouts, both device-area modes.
func BenchmarkTable1FullCustom(b *testing.B) {
	p := tech.NMOS25()
	var rows []report.FCRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = report.RunTable1(p, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	mean, lo, hi := 0.0, rows[0].ErrExact, rows[0].ErrExact
	for _, r := range rows {
		mean += math.Abs(r.ErrExact)
		lo = math.Min(lo, r.ErrExact)
		hi = math.Max(hi, r.ErrExact)
	}
	b.ReportMetric(mean/float64(len(rows))*100, "mean|err|%")
	b.ReportMetric(lo*100, "minErr%")
	b.ReportMetric(hi*100, "maxErr%")
}

// E2 — Table 2: Standard-Cell estimates vs. placed-and-routed
// layouts across the paper's row-count configurations.
func BenchmarkTable2StandardCell(b *testing.B) {
	p := tech.NMOS25()
	var rows []report.SCRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = report.RunTable2(p, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	lo, hi := rows[0].Overestimate, rows[0].Overestimate
	shared := 0.0
	for _, r := range rows {
		lo = math.Min(lo, r.Overestimate)
		hi = math.Max(hi, r.Overestimate)
		shared += r.SharedOverest
	}
	b.ReportMetric(lo*100, "minOver%")
	b.ReportMetric(hi*100, "maxOver%")
	b.ReportMetric(shared/float64(len(rows))*100, "sharedMeanOver%")
}

// E3 — Fig. 1: the end-to-end estimator pipeline (HDL + process in,
// both estimates out).
func BenchmarkFigure1Pipeline(b *testing.B) {
	const mnet = `
module demo
port in a
port in b
port out y
device g1 NAND2 a b n1
device g2 INV n1 n2
device g3 NOR2 n1 b n3
device g4 NAND2 n2 n3 y
end
`
	p := maest.NMOS25()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := maest.Pipeline(strings.NewReader(mnet), p, maest.SCOptions{Rows: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// E4 — §4.1 claim: the central row maximizes the feed-through
// probability for every (n, D); verified analytically and by Monte
// Carlo, as the paper's "numerical simulation results".
func BenchmarkCentralRowClaim(b *testing.B) {
	violations := 0
	for i := 0; i < b.N; i++ {
		violations = 0
		for n := 2; n <= 15; n++ {
			for D := 2; D <= 10; D++ {
				row, err := prob.ArgmaxFeedThroughRow(n, D)
				if err != nil {
					b.Fatal(err)
				}
				pBest, _ := prob.FeedThroughProb(n, D, row)
				pCentral, _ := prob.FeedThroughProb(n, D, prob.CentralRow(n))
				if pBest-pCentral > 1e-12 {
					violations++
				}
			}
		}
	}
	b.ReportMetric(float64(violations), "violations")
}

// E5 — Eq. 9 claim: P_feed-through(central) → 0.5 as n → ∞.
func BenchmarkEq9Limit(b *testing.B) {
	var p6 float64
	for i := 0; i < b.N; i++ {
		for _, n := range []int{2, 10, 100, 10_000, 1_000_000} {
			p, err := prob.CentralFeedThroughProb(n)
			if err != nil {
				b.Fatal(err)
			}
			if n == 1_000_000 {
				p6 = p
			}
		}
	}
	b.ReportMetric(p6, "P(n=1e6)")
	b.ReportMetric(0.5-p6, "gapToHalf")
}

// E6 — Eqs. 2–3: expected rows spanned E(i) against Monte Carlo
// simulation of the placement model.
func BenchmarkRowSpanExpectation(b *testing.B) {
	rng := rand.New(rand.NewSource(1988))
	worst := 0.0
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, c := range []struct{ n, d int }{{3, 2}, {5, 3}, {8, 5}, {6, 12}} {
			analytic, err := prob.ExpectedRowSpan(c.n, c.d)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := prob.SimulateRowSpan(rng, c.n, c.d, 50_000)
			if err != nil {
				b.Fatal(err)
			}
			worst = math.Max(worst, math.Abs(sim-analytic))
		}
	}
	b.ReportMetric(worst, "worstAbsGap")
}

// E7 — Eqs. 10–11: the feed-through count expectation E(M).
func BenchmarkFeedThroughCount(b *testing.B) {
	var em float64
	for i := 0; i < b.N; i++ {
		p, err := prob.CentralFeedThroughProb(5)
		if err != nil {
			b.Fatal(err)
		}
		em, err = prob.ExpectedFeedThroughs(200, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(em, "E(M)|H=200,n=5")
}

// E8a — §6 CPU-time claim: the Full-Custom estimator ran in under
// 1.5 s per module on a Sun 3/50; time the whole five-module suite.
func BenchmarkEstimatorCPUTimeFullCustom(b *testing.B) {
	p := tech.NMOS25()
	suite, err := gen.FullCustomSuite(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range suite {
			if _, err := maest.EstimateFullCustom(c, p, maest.FCExactAreas); err != nil {
				b.Fatal(err)
			}
			if _, err := maest.EstimateFullCustom(c, p, maest.FCAverageAreas); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E8b — §6 CPU-time claim: the Standard-Cell estimator ran in under
// 3 s per module; time both suite modules including candidate shapes.
func BenchmarkEstimatorCPUTimeStandardCell(b *testing.B) {
	p := tech.NMOS25()
	suite, err := gen.StandardCellSuite(p)
	if err != nil {
		b.Fatal(err)
	}
	var stats []*maest.Stats
	for _, c := range suite {
		s, err := maest.GatherStats(c, p)
		if err != nil {
			b.Fatal(err)
		}
		stats = append(stats, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range stats {
			if _, err := maest.EstimateStandardCellCandidates(s, p, maest.SCOptions{}, 5); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E9 — §7 ablation: one-net-per-track (paper assumption 3) vs. the
// track-sharing extension, measured against a real routed layout.
func BenchmarkTrackSharingAblation(b *testing.B) {
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "ablate", Gates: 100, Inputs: 8, Outputs: 6, Seed: 9,
	}, p)
	if err != nil {
		b.Fatal(err)
	}
	s, err := maest.GatherStats(c, p)
	if err != nil {
		b.Fatal(err)
	}
	real, err := maest.LayoutStandardCell(c, p, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	var plain, shared *maest.SCEstimate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain, err = maest.EstimateStandardCell(s, p, maest.SCOptions{Rows: 4})
		if err != nil {
			b.Fatal(err)
		}
		shared, err = maest.EstimateStandardCell(s, p, maest.SCOptions{Rows: 4, TrackSharing: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric((plain.Area/float64(real.Area())-1)*100, "plainOver%")
	b.ReportMetric((shared.Area/float64(real.Area())-1)*100, "sharedOver%")
}

// E10 — §1/§7 claim: better estimates reduce floor-planning
// iterations (estimator vs. naive active-area guess).
func BenchmarkFloorplanIterations(b *testing.B) {
	p := tech.NMOS25()
	chip, err := gen.RandomChip(gen.ChipConfig{
		Name: "iter", Modules: 4, MinGates: 20, MaxGates: 60, Seed: 3,
	}, p)
	if err != nil {
		b.Fatal(err)
	}
	var est, naive *floorplan.ExperimentResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err = floorplan.IterationExperiment(chip, p, floorplan.EstimatorShapes, floorplan.ExperimentOptions{Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		naive, err = floorplan.IterationExperiment(chip, p, floorplan.NaiveShapes(1.0), floorplan.ExperimentOptions{Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(est.Iterations), "estimatorIters")
	b.ReportMetric(float64(naive.Iterations), "naiveIters")
}

// E11 — §2 baselines: the PLEST-style density-calibrated estimator
// (which needs finished layouts) and the Gerveshi PLA linear model.
func BenchmarkBaselines(b *testing.B) {
	p := tech.NMOS25()
	suite, err := gen.StandardCellSuite(p)
	if err != nil {
		b.Fatal(err)
	}
	s, err := maest.GatherStats(suite[1], p)
	if err != nil {
		b.Fatal(err)
	}
	var r2 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := baseline.CalibratePLEST(suite[:1], p, 2, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := model.Estimate(s, 4); err != nil {
			b.Fatal(err)
		}
		// Gerveshi linearity fit on PLA shapes.
		rng := rand.New(rand.NewSource(4))
		var xs [][]float64
		var ys []float64
		for k := 0; k < 60; k++ {
			q := baseline.PLA{Inputs: 2 + rng.Intn(12), Outputs: 1 + rng.Intn(8), Terms: 4 + rng.Intn(40)}
			a, err := q.Area(p)
			if err != nil {
				b.Fatal(err)
			}
			xs = append(xs, []float64{float64(q.Functions()), float64(q.Devices())})
			ys = append(ys, a)
		}
		if _, r2, err = baseline.FitLinear(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r2, "plaLinearR2")
}

// E12 — §5: aspect-ratio estimation under increasing port pressure;
// the paper says most estimates fall between 1:1 and 1:2.
func BenchmarkAspectRatio(b *testing.B) {
	p := tech.NMOS25()
	inBand := 0
	total := 0
	for i := 0; i < b.N; i++ {
		inBand, total = 0, 0
		for _, gates := range []int{30, 60, 120} {
			for _, ports := range []int{4, 8, 16} {
				c, err := gen.RandomCircuit(gen.RandomConfig{
					Name: "ar", Gates: gates, Inputs: ports, Outputs: ports, Seed: int64(gates + ports),
				}, p)
				if err != nil {
					b.Fatal(err)
				}
				s, err := maest.GatherStats(c, p)
				if err != nil {
					b.Fatal(err)
				}
				est, err := maest.EstimateStandardCell(s, p, maest.SCOptions{})
				if err != nil {
					b.Fatal(err)
				}
				ar := est.AspectRatio
				if ar > 1 {
					ar = 1 / ar
				}
				total++
				if ar >= 0.5 {
					inBand++ // within 1:1 .. 1:2
				}
			}
		}
	}
	b.ReportMetric(float64(inBand)/float64(total)*100, "within1to2Band%")
}

// E13 — detailed channel routing (VCG + jogs) over the Table-2-scale
// module: validates and reports track inflation over the density
// bound.
func BenchmarkDetailedRouting(b *testing.B) {
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "det", Gates: 100, Inputs: 8, Outputs: 6, Seed: 1,
	}, p)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := maest.PlaceCircuit(c, p, maest.PlaceOptions{Rows: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	coarse, err := maest.RoutePlacement(pl, maest.RouteOptions{TrackSharing: true})
	if err != nil {
		b.Fatal(err)
	}
	var det *maest.DetailedRouting
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, err = maest.DetailRoutePlacement(pl)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := det.Validate(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(det.TotalTracks), "detailTracks")
	b.ReportMetric(float64(coarse.TotalTracks), "densityBound")
	b.ReportMetric(float64(det.TotalDoglegs), "jogs")
}

// E14 — Gerveshi linearity on real PLA netlists: the Full-Custom
// estimator's area per device stays nearly constant as PLAs grow.
func BenchmarkPLALinearity(b *testing.B) {
	p := tech.NMOS25()
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		lo, hi = 1e18, 0
		for _, cfg := range []struct{ in, out, terms int }{
			{3, 2, 5}, {6, 4, 12}, {10, 6, 26}, {12, 8, 36},
		} {
			q, err := pla.Random(cfg.in, cfg.out, cfg.terms, 0.45, 7)
			if err != nil {
				b.Fatal(err)
			}
			circ, err := q.Circuit("pla", p)
			if err != nil {
				b.Fatal(err)
			}
			est, err := maest.EstimateFullCustom(circ, p, maest.FCExactAreas)
			if err != nil {
				b.Fatal(err)
			}
			r := est.Area / float64(q.Devices())
			lo = math.Min(lo, r)
			hi = math.Max(hi, r)
		}
	}
	b.ReportMetric(hi/lo, "areaPerDeviceSpread")
}

// E15 — interconnect-complexity context: the Rent exponents of the
// workloads the sweeps run on.
func BenchmarkRentExponents(b *testing.B) {
	p := tech.NMOS25()
	chain, err := gen.Chain("ch", 64, p)
	if err != nil {
		b.Fatal(err)
	}
	logic, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "r", Gates: 200, Inputs: 8, Outputs: 6, Seed: 5,
	}, p)
	if err != nil {
		b.Fatal(err)
	}
	var rc, rl *maest.RentResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc, err = maest.RentExponent(chain)
		if err != nil {
			b.Fatal(err)
		}
		rl, err = maest.RentExponent(logic)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rc.Exponent, "chainRent")
	b.ReportMetric(rl.Exponent, "logicRent")
}

// E16 — feed-through model ablation: the paper's central-row
// two-component bound (Eqs. 9–11) vs. the full per-row Eq. 4/5
// profile, on both a 2-pin-net workload (bound dominates) and a
// high-fanout workload (bound under-counts).
func BenchmarkFeedThroughProfileAblation(b *testing.B) {
	p := tech.NMOS25()
	chain, err := gen.Chain("ch", 60, p)
	if err != nil {
		b.Fatal(err)
	}
	sChain, err := maest.GatherStats(chain, p)
	if err != nil {
		b.Fatal(err)
	}
	fan, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "fan", Gates: 60, Inputs: 6, Outputs: 4, Seed: 2, Locality: 0.15,
	}, p)
	if err != nil {
		b.Fatal(err)
	}
	sFan, err := maest.GatherStats(fan, p)
	if err != nil {
		b.Fatal(err)
	}
	var chainRatio, fanRatio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cse := range []struct {
			s     *maest.Stats
			ratio *float64
		}{{sChain, &chainRatio}, {sFan, &fanRatio}} {
			prof, err := maest.FeedThroughRowProfile(cse.s, 5)
			if err != nil {
				b.Fatal(err)
			}
			if prof.Central > 0 {
				*cse.ratio = prof.Max() / prof.Central
			}
		}
	}
	b.ReportMetric(chainRatio, "profile/central(2pin)")
	b.ReportMetric(fanRatio, "profile/central(fanout)")
}

// E17 — observability overhead: Estimate with tracing disabled must
// match the untraced seed (the nil-sink fast path adds no
// allocations), and the JSONL-traced run bounds the enabled cost.
func BenchmarkEstimateObservabilityOff(b *testing.B) {
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "obs", Gates: 60, Inputs: 6, Outputs: 4, Seed: 11,
	}, p)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := maest.EstimateCtx(ctx, c, p, maest.SCOptions{Rows: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateObservabilityOn(b *testing.B) {
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "obs", Gates: 60, Inputs: 6, Outputs: 4, Seed: 11,
	}, p)
	if err != nil {
		b.Fatal(err)
	}
	ctx := maest.WithTraceSink(context.Background(), maest.NewJSONLTraceSink(io.Discard))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := maest.EstimateCtx(ctx, c, p, maest.SCOptions{Rows: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
