package maest_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"maest"
)

// randNativeCircuit builds a random circuit out of native 2-input
// cells with .mnet-safe names (the gen package's mapper can emit
// reserved "$" names for decomposed gates, which WriteMnet rightly
// refuses).
func randNativeCircuit(seed int64, gates int) (*maest.Circuit, error) {
	rng := rand.New(rand.NewSource(seed))
	b := maest.NewCircuitBuilder(fmt.Sprintf("nat%d", seed))
	nets := []string{"i0", "i1", "i2"}
	for _, n := range nets {
		b.AddPort("p"+n, maest.In, n)
	}
	types := []string{"NAND2", "NOR2", "XOR2"}
	for g := 0; g < gates; g++ {
		out := fmt.Sprintf("w%d", g)
		if rng.Intn(4) == 0 {
			b.AddDevice(fmt.Sprintf("u%d", g), "INV", nets[rng.Intn(len(nets))], out)
		} else {
			typ := types[rng.Intn(len(types))]
			b.AddDevice(fmt.Sprintf("u%d", g), typ,
				nets[rng.Intn(len(nets))], nets[rng.Intn(len(nets))], out)
		}
		nets = append(nets, out)
	}
	b.AddPort("po", maest.Out, nets[len(nets)-1])
	return b.Build()
}

// Property: .mnet round trip preserves the circuit exactly (shape,
// types, connectivity) for arbitrary native circuits.
func TestMnetRoundTripProperty(t *testing.T) {
	f := func(seed int64, g uint8) bool {
		gates := int(g%40) + 1
		c, err := randNativeCircuit(seed, gates)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := maest.WriteMnet(&buf, c); err != nil {
			return false
		}
		back, err := maest.ParseMnet(&buf)
		if err != nil {
			return false
		}
		if back.NumDevices() != c.NumDevices() || back.NumNets() != c.NumNets() ||
			back.NumPorts() != c.NumPorts() {
			return false
		}
		for _, n := range c.Nets {
			n2 := back.NetByName(n.Name)
			if n2 == nil || n2.Degree() != n.Degree() || n2.External() != n.External() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the estimators are invariant under device insertion
// order — the same circuit built in a different order estimates
// identically.
func TestEstimateOrderInvariance(t *testing.T) {
	p := maest.NMOS25()
	build := func(order []int) *maest.Circuit {
		devs := [][3]string{
			{"g0", "NAND2", "a b n1"},
			{"g1", "INV", "n1 n2"},
			{"g2", "NOR2", "n1 b n3"},
			{"g3", "NAND2", "n2 n3 y"},
			{"g4", "XOR2", "n2 y n4"},
		}
		b := maest.NewCircuitBuilder("perm")
		for _, i := range order {
			d := devs[i]
			pins := []string{}
			for _, f := range splitFields(d[2]) {
				pins = append(pins, f)
			}
			b.AddDevice(d[0], d[1], pins...)
		}
		b.AddPort("pa", maest.In, "a")
		b.AddPort("pb", maest.In, "b")
		b.AddPort("pn4", maest.Out, "n4")
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	orders := [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}}
	var scAreas, fcAreas []float64
	for _, ord := range orders {
		c := build(ord)
		res, err := maest.Estimate(c, p, maest.SCOptions{Rows: 3})
		if err != nil {
			t.Fatal(err)
		}
		scAreas = append(scAreas, res.SC.Area)
		fcAreas = append(fcAreas, res.FCExact.Area)
	}
	for i := 1; i < len(orders); i++ {
		if scAreas[i] != scAreas[0] || fcAreas[i] != fcAreas[0] {
			t.Fatalf("estimates depend on insertion order: %v %v", scAreas, fcAreas)
		}
	}
}

func splitFields(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// Property: adding a device never decreases the Full-Custom estimate
// (monotonicity of Eq. 13 in the device set).
func TestFullCustomMonotoneInDevices(t *testing.T) {
	p := maest.NMOS25()
	prev := 0.0
	for k := 2; k <= 24; k += 2 {
		b := maest.NewCircuitBuilder(fmt.Sprintf("mono%d", k))
		for i := 0; i < k; i++ {
			b.AddDevice(fmt.Sprintf("m%d", i), "ENH",
				fmt.Sprintf("g%d", i), fmt.Sprintf("s%d", i), fmt.Sprintf("s%d", i+1))
			b.AddPort(fmt.Sprintf("pg%d", i), maest.In, fmt.Sprintf("g%d", i))
		}
		b.AddPort("pin", maest.In, "s0")
		b.AddPort("pout", maest.Out, fmt.Sprintf("s%d", k))
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		est, err := maest.EstimateFullCustom(c, p, maest.FCExactAreas)
		if err != nil {
			t.Fatal(err)
		}
		if est.Area < prev {
			t.Fatalf("k=%d: area %g < previous %g", k, est.Area, prev)
		}
		prev = est.Area
	}
}

// Integration: both built-in processes run the complete flow —
// estimate, layout, compare — on both benchmark suites.
func TestFullFlowBothProcesses(t *testing.T) {
	for _, procName := range []string{"nmos25", "cmos30"} {
		p, err := maest.LookupProcess(procName)
		if err != nil {
			t.Fatal(err)
		}
		scSuite, err := maest.StandardCellSuite(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range scSuite {
			s, err := maest.GatherStats(c, p)
			if err != nil {
				t.Fatal(err)
			}
			est, err := maest.EstimateStandardCell(s, p, maest.SCOptions{Rows: 3})
			if err != nil {
				t.Fatalf("%s/%s: %v", procName, c.Name, err)
			}
			real, err := maest.LayoutStandardCell(c, p, 3, 1)
			if err != nil {
				t.Fatalf("%s/%s: %v", procName, c.Name, err)
			}
			if est.Area <= float64(real.Area()) {
				t.Errorf("%s/%s: estimator not an upper bound (%g <= %d)",
					procName, c.Name, est.Area, real.Area())
			}
		}
	}
	// The Full-Custom suite is nMOS-only (pass ladder needs ENH).
	p := maest.NMOS25()
	fcSuite, err := maest.FullCustomSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range fcSuite {
		est, err := maest.EstimateFullCustom(c, p, maest.FCExactAreas)
		if err != nil {
			t.Fatal(err)
		}
		real, err := maest.SynthesizeFullCustom(c, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := est.Area / float64(real.Area()); ratio < 0.5 || ratio > 1.5 {
			t.Errorf("%s: estimate/real ratio %.2f outside the small-module band", c.Name, ratio)
		}
	}
}

// Integration: geometry emission and both serializations work for
// every suite module.
func TestGeometryFlowOnSuite(t *testing.T) {
	p := maest.NMOS25()
	suite, err := maest.StandardCellSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range suite {
		pl, err := maest.PlaceCircuit(c, p, maest.PlaceOptions{Rows: 3, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		det, err := maest.DetailRoutePlacement(pl)
		if err != nil {
			t.Fatal(err)
		}
		g, err := maest.BuildGeometry(pl, det, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckCellsDisjoint(); err != nil {
			t.Fatal(err)
		}
		var cif, svg bytes.Buffer
		if err := maest.WriteCIF(&cif, g, p); err != nil {
			t.Fatal(err)
		}
		if err := maest.WriteSVG(&svg, g, 2); err != nil {
			t.Fatal(err)
		}
		if cif.Len() == 0 || svg.Len() == 0 {
			t.Fatal("empty serialization")
		}
	}
}

// Property: the SC estimate's area decomposes exactly into its
// published parts for any row count.
func TestSCEstimateDecomposition(t *testing.T) {
	p := maest.NMOS25()
	c, err := maest.RandomCircuit(maest.RandomConfig{
		Gates: 60, Inputs: 6, Outputs: 5, Seed: 12,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := maest.GatherStats(c, p)
	if err != nil {
		t.Fatal(err)
	}
	for rows := 1; rows <= 8; rows++ {
		est, err := maest.EstimateStandardCell(s, p, maest.SCOptions{Rows: rows})
		if err != nil {
			t.Fatal(err)
		}
		wantW := s.AvgWidth()*float64(s.N)/float64(rows) +
			float64(est.FeedThroughs)*float64(p.FeedThroughWidth)
		wantH := float64(rows)*float64(p.RowHeight) +
			float64(est.Tracks)*float64(p.TrackPitch)
		if math.Abs(est.Width-wantW) > 1e-9 || math.Abs(est.Height-wantH) > 1e-9 {
			t.Fatalf("rows=%d: decomposition mismatch", rows)
		}
		if math.Abs(est.Area-wantW*wantH) > 1e-6 {
			t.Fatalf("rows=%d: area mismatch", rows)
		}
	}
}

// Integration: the committed 180-gate .bench workload runs the full
// estimate-vs-layout flow at scale.
func TestRand180BenchWorkload(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "rand180.bench"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := maest.NMOS25()
	c, err := maest.ParseBench(f, "rand180", p)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDevices() < 180 {
		t.Fatalf("N = %d", c.NumDevices())
	}
	s, err := maest.GatherStats(c, p)
	if err != nil {
		t.Fatal(err)
	}
	est, err := maest.EstimateStandardCell(s, p, maest.SCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	real, err := maest.LayoutStandardCell(c, p, est.Rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Area <= float64(real.Area()) {
		t.Fatalf("upper bound violated at scale: %g <= %d", est.Area, real.Area())
	}
	// Track-count confidence interval brackets the expectation.
	mean, lo, hi, err := maest.TrackInterval(est.Rows, s.DegreeCount, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo <= mean && mean <= hi) || hi <= 0 {
		t.Fatalf("interval broken: %g %g %g", lo, mean, hi)
	}
	// Rent exponent is computable at this scale.
	if _, err := maest.RentExponent(c); err != nil {
		t.Fatal(err)
	}
}
