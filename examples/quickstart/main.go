// Quickstart: estimate one module's area and aspect ratio under both
// layout methodologies, starting from an .mnet netlist string — the
// minimal end-to-end use of the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"maest"
)

const netlist = `
module counter_slice
port in  d
port in  clk
port in  en
port out q
device ff1  DFF   d2 clk q
device g1   NAND2 q en n1
device g2   INV   n1 d1
device g3   XOR2  d1 d  d2
end
`

func main() {
	proc := maest.NMOS25() // the paper's nMOS λ = 2.5 µm process

	circ, err := maest.ParseMnet(strings.NewReader(netlist))
	if err != nil {
		log.Fatal(err)
	}

	// Compile once, then execute: the plan holds the gathered
	// statistics, so every further question about this circuit
	// (estimates at other row counts, congestion maps) is incremental.
	plan, err := maest.Compile(circ, proc)
	if err != nil {
		log.Fatal(err)
	}

	res, err := plan.Estimate(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("module %q: %d devices, %d routable nets, %d ports\n",
		res.Module, res.Stats.N, res.Stats.H, res.Stats.NumPorts)

	sc := res.SC
	fmt.Printf("standard-cell: %.0f λ² (%.0f×%.0f, %d rows, %d tracks, aspect %.2f)\n",
		sc.Area, sc.Width, sc.Height, sc.Rows, sc.Tracks, sc.AspectRatio)

	fc := res.FCExact
	fmt.Printf("full-custom:   %.0f λ² (device %.0f + wire %.0f, aspect %.2f)\n",
		fc.Area, fc.DeviceArea, fc.WireArea, fc.AspectRatio)

	fmt.Println("\ncandidate standard-cell shapes for the floor planner:")
	for _, c := range res.SCCandidates {
		fmt.Printf("  rows=%d  %4.0f × %-4.0f λ   aspect %.2f\n",
			c.Rows, c.Width, c.Height, c.AspectRatio)
	}
}
