// Standard-cell flow (the paper's Table 2 experiment on one module):
// estimate a cell-level module across several row counts, then place
// and route it for real at each row count and compare — including the
// §7 track-sharing extension that explains the overestimates.
package main

import (
	"context"
	"fmt"
	"log"

	"maest"
)

func main() {
	proc := maest.NMOS25()

	// A moderate random control block, the kind of module the paper
	// ran through TimberWolf.
	circ, err := maest.RandomCircuit(maest.RandomConfig{
		Name: "control", Gates: 80, Inputs: 8, Outputs: 6, Seed: 42,
	}, proc)
	if err != nil {
		log.Fatal(err)
	}
	// One compile serves all eight estimator questions below; each
	// (rows, sharing) variant is an incremental execution on the plan.
	ctx := context.Background()
	plan, err := maest.Compile(circ, proc)
	if err != nil {
		log.Fatal(err)
	}
	stats := plan.Stats()
	fmt.Printf("module %q: N=%d devices, H=%d nets, %d ports, W_avg=%.1f λ\n\n",
		circ.Name, stats.N, stats.H, stats.NumPorts, stats.AvgWidth())

	fmt.Println("rows  est λ²    shared λ²  real λ²   over%  shared-over%  tracks est/real")
	for _, rows := range []int{2, 3, 4, 5} {
		est, err := plan.EstimateStandardCell(ctx, maest.WithRows(rows))
		if err != nil {
			log.Fatal(err)
		}
		shared, err := plan.EstimateStandardCell(ctx,
			maest.WithRows(rows), maest.WithTrackSharing(true))
		if err != nil {
			log.Fatal(err)
		}
		real, err := maest.LayoutStandardCell(circ, proc, rows, 1)
		if err != nil {
			log.Fatal(err)
		}
		tracksReal := 0
		for _, t := range real.ChannelTracks {
			tracksReal += t
		}
		fmt.Printf("%4d  %-8.0f  %-9.0f  %-8d  %+5.0f  %+12.0f  %d/%d\n",
			rows, est.Area, shared.Area, real.Area(),
			(est.Area/float64(real.Area())-1)*100,
			(shared.Area/float64(real.Area())-1)*100,
			est.Tracks, tracksReal)
	}
	fmt.Println("\nThe one-net-per-track assumption makes the plain estimate an upper")
	fmt.Println("bound (the paper saw +42%..+70%); modelling track sharing removes")
	fmt.Println("most of the gap, as §7 of the paper predicted.")
}
