// Floorplanning flow (the paper's Fig. 1 output path): estimate every
// module of a multi-module chip, write the estimate database the
// floor planner consumes, and produce a slicing floor plan that picks
// one candidate shape per module.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"maest"
)

func main() {
	proc := maest.NMOS25()

	chip, err := maest.RandomChip(maest.ChipConfig{
		Name: "demo_chip", Modules: 6, MinGates: 25, MaxGates: 90, Seed: 7,
	}, proc)
	if err != nil {
		log.Fatal(err)
	}

	// Compile every module once, then estimate the plans concurrently
	// (Fig. 1) and collect the records.
	plans := make([]*maest.Plan, len(chip.Modules))
	for i, mod := range chip.Modules {
		if plans[i], err = maest.Compile(mod, proc); err != nil {
			log.Fatal(err)
		}
	}
	results, err := maest.EstimatePlans(context.Background(), plans, maest.WithTrackSharing(true))
	if err != nil {
		log.Fatal(err)
	}
	d := &maest.EstimateDB{Chip: chip.Name}
	for _, res := range results {
		d.Modules = append(d.Modules, maest.ModuleRecordFromResult(res))
	}
	for _, gn := range chip.GlobalNets {
		rec := maest.GlobalNet{Name: gn.Name}
		for _, pin := range gn.Pins {
			rec.Pins = append(rec.Pins, maest.GlobalPin{Module: pin.Module, Port: pin.Port})
		}
		d.Nets = append(d.Nets, rec)
	}

	// The database is a text artifact two tools can exchange.
	var buf bytes.Buffer
	if err := maest.WriteEstimateDB(&buf, d); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate database: %d modules, %d global nets, %d bytes\n",
		len(d.Modules), len(d.Nets), buf.Len())

	plan, err := maest.PlanChip(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("floor plan: %.0f × %.0f λ = %.0f λ², utilization %.1f%%, wire %.0f λ\n\n",
		plan.Width, plan.Height, plan.Area(), plan.Utilization()*100, plan.WireLength)
	for _, b := range plan.Blocks {
		shape := d.ModuleByName(b.Name).Shapes[b.ShapeIndex]
		fmt.Printf("  %-14s (%6.0f,%6.0f)  %5.0f × %-5.0f  using %s\n",
			b.Name, b.X, b.Y, b.W, b.H, shape.Label)
	}

	// Chip-level wiring demand: the global interconnections the Fig. 1
	// database carries are routed over a coarse congestion grid.
	gr, err := maest.GlobalRoute(d, plan, proc, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nglobal routing: %.0f λ of wire (%.0f λ² wiring area), worst congestion %.2f\n",
		gr.WireLength, gr.WiringArea, gr.MaxCongestion)

	var svg bytes.Buffer
	if err := maest.WritePlanSVG(&svg, plan, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan renders to %d bytes of SVG (maest.WritePlanSVG)\n", svg.Len())
}
