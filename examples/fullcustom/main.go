// Full-custom flow (the paper's Table 1 experiment on one module):
// build a transistor-level circuit, estimate its area with exact and
// average device areas, then synthesize an actual layout and compare
// — reproducing the "estimate vs. manually created layout" protocol.
package main

import (
	"context"
	"fmt"
	"log"

	"maest"
)

func main() {
	proc := maest.NMOS25()

	// A 1-bit full adder at gate level, lowered to transistors the
	// way the paper's Full-Custom methodology lays out individual
	// devices.
	b := maest.NewCircuitBuilder("fulladder")
	b.AddDevice("x1", "XOR2", "a", "b", "axb")
	b.AddDevice("x2", "XOR2", "axb", "cin", "sum")
	b.AddDevice("n1", "NAND2", "a", "b", "t1")
	b.AddDevice("n2", "NAND2", "cin", "axb", "t2")
	b.AddDevice("n3", "NAND2", "t1", "t2", "cout")
	for _, in := range []string{"a", "b", "cin"} {
		b.AddPort(in, maest.In, in)
	}
	b.AddPort("sum", maest.Out, "sum")
	b.AddPort("cout", maest.Out, "cout")
	gates, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	xtors, err := maest.ExpandTransistors(gates, proc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d gates -> %d transistors\n",
		gates.Name, gates.NumDevices(), xtors.NumDevices())

	// One compile covers both device-area modes (the two Table 1
	// column groups): the transistor statistics are gathered once.
	ctx := context.Background()
	plan, err := maest.Compile(xtors, proc)
	if err != nil {
		log.Fatal(err)
	}
	for _, mode := range []maest.FCMode{maest.FCExactAreas, maest.FCAverageAreas} {
		est, err := plan.EstimateFullCustom(ctx, maest.WithFCMode(mode))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("estimate (%s areas): device %.0f + wire %.0f = %.0f λ², aspect %.2f\n",
			est.Mode, est.DeviceArea, est.WireArea, est.Area, est.AspectRatio)
	}

	// Ground truth: synthesize the layout (the manual-layout
	// stand-in) and measure it.
	real, err := maest.SynthesizeFullCustom(xtors, proc, 1)
	if err != nil {
		log.Fatal(err)
	}
	est, err := plan.EstimateFullCustom(ctx, maest.WithFCMode(maest.FCExactAreas))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized layout:  %d × %d λ = %d λ² (%d transistor rows)\n",
		real.Width, real.Height, real.Area(), real.Rows)
	fmt.Printf("estimation error: %+.1f%% (paper reports -17%%..+26%% on its five modules)\n",
		(est.Area/float64(real.Area())-1)*100)
}
