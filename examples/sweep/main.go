// Parameter sweep: how does estimation accuracy behave as modules
// grow and as net fan-out rises?  This is the kind of study §7 of the
// paper proposes ("additional experiments will be run ... on larger
// designs"), run here against the built-in ground-truth layout
// engine.
package main

import (
	"context"
	"fmt"
	"log"

	"maest"
)

func main() {
	ctx := context.Background()
	proc := maest.NMOS25()

	fmt.Println("sweep 1: module size (rows fixed by the §5 algorithm, sharing on)")
	fmt.Println("gates  N    H    rows  est λ²    real λ²   err%")
	for _, gates := range []int{20, 40, 80, 160, 320} {
		circ, err := maest.RandomCircuit(maest.RandomConfig{
			Name: fmt.Sprintf("m%d", gates), Gates: gates,
			Inputs: 6, Outputs: 5, Seed: int64(gates),
		}, proc)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := maest.Compile(circ, proc)
		if err != nil {
			log.Fatal(err)
		}
		stats := plan.Stats()
		est, err := plan.EstimateStandardCell(ctx, maest.WithTrackSharing(true))
		if err != nil {
			log.Fatal(err)
		}
		real, err := maest.LayoutStandardCell(circ, proc, est.Rows, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %-3d  %-3d  %-4d  %-8.0f  %-8d  %+.0f\n",
			gates, stats.N, stats.H, est.Rows, est.Area, real.Area(),
			(est.Area/float64(real.Area())-1)*100)
	}

	fmt.Println("\nsweep 2: net locality (lower locality -> longer, higher-fanout nets)")
	fmt.Println("locality  maxD  est λ²    real λ²   err%")
	for _, loc := range []float64{0.9, 0.6, 0.3, 0.1} {
		circ, err := maest.RandomCircuit(maest.RandomConfig{
			Name: "loc", Gates: 100, Inputs: 6, Outputs: 5,
			Locality: loc, Seed: 11,
		}, proc)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := maest.Compile(circ, proc)
		if err != nil {
			log.Fatal(err)
		}
		stats := plan.Stats()
		est, err := plan.EstimateStandardCell(ctx,
			maest.WithRows(4), maest.WithTrackSharing(true))
		if err != nil {
			log.Fatal(err)
		}
		real, err := maest.LayoutStandardCell(circ, proc, 4, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.1f  %-4d  %-8.0f  %-8d  %+.0f\n",
			loc, stats.MaxDegree, est.Area, real.Area(),
			(est.Area/float64(real.Area())-1)*100)
	}
}
