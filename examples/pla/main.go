// PLA flow (the Gerveshi [1] context from the paper's introduction):
// generate PLA personalities of growing size, lower them to nMOS
// transistor netlists, estimate their area with the Full-Custom
// estimator, and verify the "simple linear relationship" between
// module area and (basic logic functions, devices).
package main

import (
	"fmt"
	"log"

	"maest"
)

func main() {
	proc := maest.NMOS25()

	fmt.Println("PLA sweep: estimator area vs. the linear PLA model")
	fmt.Println("in  out  terms  devices  functions  FC estimate λ²")
	type sample struct {
		functions, devices int
		area               float64
	}
	var samples []sample
	for _, cfg := range []struct{ in, out, terms int }{
		{3, 2, 5}, {4, 3, 8}, {6, 4, 12}, {8, 4, 18}, {10, 6, 26}, {12, 8, 36},
	} {
		q, err := maest.RandomPLA(cfg.in, cfg.out, cfg.terms, 0.45, 7)
		if err != nil {
			log.Fatal(err)
		}
		circ, err := q.Circuit(fmt.Sprintf("pla_%dx%dx%d", cfg.in, cfg.out, cfg.terms), proc)
		if err != nil {
			log.Fatal(err)
		}
		est, err := maest.EstimateFullCustom(circ, proc, maest.FCExactAreas)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d  %3d  %5d  %7d  %9d  %.0f\n",
			cfg.in, cfg.out, cfg.terms, q.Devices(), q.Functions(), est.Area)
		samples = append(samples, sample{q.Functions(), q.Devices(), est.Area})
	}

	// Crude linearity check without exposing the regression package:
	// area per device should stay within a narrow band as PLAs grow.
	lo, hi := 1e18, 0.0
	for _, s := range samples {
		r := s.area / float64(s.devices)
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	fmt.Printf("\narea per device stays within [%.1f, %.1f] λ²/device (ratio %.2f) —\n",
		lo, hi, hi/lo)
	fmt.Println("the near-constant ratio is Gerveshi's linear relationship, which is")
	fmt.Println("why the paper excludes PLAs and targets the hard cases: Standard-Cell")
	fmt.Println("and Full-Custom modules, where no such linear law exists.")
}
