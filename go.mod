module maest

go 1.22
