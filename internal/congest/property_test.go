package congest

import (
	"math"
	"math/rand"
	"testing"

	"maest/internal/netlist"
	"maest/internal/prob"
)

// Property suite over randomized degree histograms (seeded, so
// failures reproduce).  Three invariants the congestion map must hold
// at any scale:
//
//  1. every overflow probability is a probability,
//  2. the occupancy model's total expected demand equals the Eq. 3
//     track expectation (consistency with the estimator), and
//  3. demand is monotone in net count.

func randomStats(rng *rand.Rand) *netlist.Stats {
	degrees := map[int]int{}
	for k := rng.Intn(5) + 1; k > 0; k-- {
		degrees[rng.Intn(12)+2] += rng.Intn(9) + 1
	}
	return stats("prop", degrees)
}

func TestPropertyOverflowIsProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(1988))
	for trial := 0; trial < 60; trial++ {
		s := randomStats(rng)
		rows := rng.Intn(8) + 1
		model := Model(rng.Intn(2))
		capacity := rng.Intn(6) // 0 derives the balanced default
		m, err := Analyze(s, rows, Options{Model: model, Capacity: capacity})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, ch := range m.Channels {
			if ch.POverflow < 0 || ch.POverflow > 1 || math.IsNaN(ch.POverflow) {
				t.Fatalf("trial %d: channel %d P(overflow) = %g", trial, ch.Index, ch.POverflow)
			}
			sum := 0.0
			for _, p := range ch.Demand {
				if p < -1e-15 || p > 1+1e-9 || math.IsNaN(p) {
					t.Fatalf("trial %d: channel %d carries probability %g", trial, ch.Index, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("trial %d: channel %d distribution sums to %g", trial, ch.Index, sum)
			}
		}
		for _, rf := range m.Feeds {
			if rf.POverBudget < 0 || rf.POverBudget > 1 || math.IsNaN(rf.POverBudget) {
				t.Fatalf("trial %d: row %d P(over budget) = %g", trial, rf.Index, rf.POverBudget)
			}
		}
		for _, h := range m.Hotspots {
			if h.Score < 0 || h.Score > 1 {
				t.Fatalf("trial %d: hotspot score %g outside [0,1]", trial, h.Score)
			}
		}
	}
}

func TestPropertyOccupancyTotalEqualsEq3(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 60; trial++ {
		s := randomStats(rng)
		rows := rng.Intn(10) + 1
		m, err := Analyze(s, rows, Options{Model: ModelOccupancy})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := 0.0
		for d, y := range s.DegreeCount {
			e, err := prob.ExpectedRowSpan(rows, d)
			if err != nil {
				t.Fatal(err)
			}
			want += float64(y) * e
		}
		if math.Abs(m.TotalExpectedTracks-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("trial %d (rows=%d): map total %g, Eq. 3 total %g",
				trial, rows, m.TotalExpectedTracks, want)
		}
	}
}

// Adding nets can only add demand: with a fixed capacity, every
// channel's expected demand and overflow probability must be
// non-decreasing when any degree class grows.
func TestPropertyDemandMonotoneInNetCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1192))
	for trial := 0; trial < 40; trial++ {
		s := randomStats(rng)
		rows := rng.Intn(6) + 1
		model := Model(rng.Intn(2))
		opts := Options{Model: model, Capacity: rng.Intn(5) + 1, FeedBudget: rng.Intn(3) + 1}
		base, err := Analyze(s, rows, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Grow one random class by one net.
		grown := stats("prop", nil)
		for d, y := range s.DegreeCount {
			grown.DegreeCount[d] = y
			grown.H += y
		}
		d := rng.Intn(12) + 2
		grown.DegreeCount[d]++
		grown.H++

		more, err := Analyze(grown, rows, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if more.TotalExpectedTracks < base.TotalExpectedTracks-1e-12 {
			t.Fatalf("trial %d: total demand fell from %g to %g after adding a net",
				trial, base.TotalExpectedTracks, more.TotalExpectedTracks)
		}
		for c := range base.Channels {
			if more.Channels[c].Expected < base.Channels[c].Expected-1e-12 {
				t.Fatalf("trial %d: channel %d expected fell %g → %g",
					trial, c, base.Channels[c].Expected, more.Channels[c].Expected)
			}
			if more.Channels[c].POverflow < base.Channels[c].POverflow-1e-9 {
				t.Fatalf("trial %d: channel %d overflow fell %g → %g",
					trial, c, base.Channels[c].POverflow, more.Channels[c].POverflow)
			}
		}
		if more.TotalExpectedFeeds < base.TotalExpectedFeeds-1e-12 {
			t.Fatalf("trial %d: feed pressure fell %g → %g",
				trial, base.TotalExpectedFeeds, more.TotalExpectedFeeds)
		}
	}
}
