package congest

import "maest/internal/db"

// DBSummary condenses the map into the floor-planner database's
// congestion record (the `congest` directive of the db text format).
func (m *Map) DBSummary() *db.Congestion {
	return &db.Congestion{
		Model:         m.Model.String(),
		Rows:          m.Rows,
		PeakUtil:      m.MaxUtilization(),
		PeakOverflow:  m.MaxOverflow(),
		HotChannel:    m.HottestChannel(),
		ExpectedFeeds: m.TotalExpectedFeeds,
	}
}
