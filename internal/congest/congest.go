// Package congest is the probabilistic routability subsystem: it
// upgrades the paper's Eq. 2–3 / Eq. 4–11 expectation math from a
// single expected track and feed-through count per module into full
// per-channel track-demand distributions, and emits a congestion map —
// demand vs. capacity utilization per routing channel, overflow
// probability P(tracks > capacity), feed-through pressure per row, and
// a ranked hotspot list.
//
// The estimator (internal/core) answers "how much routing does this
// module need"; this package answers "where does that routing demand
// concentrate", which is what makes a pre-layout estimate actionable
// (cf. Kar, Sur-Kolay & Mandal, "Early Routability Assessment in VLSI
// Floorplans: A Generalized Routing Model" — PAPERS.md).
//
// Two demand models are provided:
//
//   - ModelOccupancy is the paper's own Eq. 2–3 accounting: a net
//     occupying i rows needs i tracks, one in the channel adjacent to
//     each occupied row.  Its total expected demand equals the Eq. 3
//     track expectation Σ yᵢ·E(i) exactly (property-tested), so the
//     map is a lossless refinement of the estimator's Tracks number.
//   - ModelCrossing is the spine-router accounting internal/route
//     implements: a net contributes a segment to every channel it
//     crosses (plus the channel above its row when it stays in one
//     row), which concentrates demand in the central channels.  This
//     is the model validated against routed layouts.
//
// Channel indices match route.Result.ChannelTracks: channel c runs
// above row c (0-based), channel n below the last row.  Per-channel
// demand is a Poisson-binomial over the net-degree histogram, computed
// exactly by convolving one binomial per degree class.
package congest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"maest/internal/engine/distmemo"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/prob"
)

// Analysis metrics: the overflow-channel counter is the alerting
// signal ("this floorplan is about to be unroutable"); the latency
// histogram covers the convolution hot path.
var (
	mAnalyses     = obs.DefCounter("maest_congest_total", "completed congestion analyses")
	mAnalyzeErr   = obs.DefCounter("maest_congest_errors_total", "failed congestion analyses")
	mAnalyzeSec   = obs.DefHistogram("maest_congest_seconds", "congestion analysis latency", obs.DefBuckets)
	mOverflowChan = obs.DefCounter("maest_congest_overflow_channels_total", "channels analyzed with overflow probability > 0.5")
	mChanUtil     = obs.DefHistogram("maest_congest_channel_utilization", "expected demand / capacity per channel", obs.RatioBuckets)
)

// ErrCongest wraps analysis failures.
var ErrCongest = errors.New("congest: analysis failed")

func anaErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCongest, fmt.Sprintf(format, args...))
}

// Model selects the per-channel demand accounting.
type Model int

const (
	// ModelOccupancy books one track in the channel above every row a
	// net occupies — the paper's Eq. 2–3 model, consistent with the
	// estimator's track expectation.
	ModelOccupancy Model = iota
	// ModelCrossing books one segment per channel the net crosses (or
	// terminates in), matching the internal/route spine router.
	ModelCrossing
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelOccupancy:
		return "occupancy"
	case ModelCrossing:
		return "crossing"
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// ParseModel is the inverse of String, for flags and request fields.
func ParseModel(s string) (Model, error) {
	switch s {
	case "", "occupancy":
		return ModelOccupancy, nil
	case "crossing":
		return ModelCrossing, nil
	}
	return 0, anaErr("unknown demand model %q (want occupancy or crossing)", s)
}

// Options configures Analyze.  The zero value selects the occupancy
// model with derived capacities.
type Options struct {
	// Model is the demand accounting (default ModelOccupancy).
	Model Model
	// Capacity is the track capacity of every routing channel; 0
	// derives the balanced capacity ⌈total expected demand / channels⌉
	// (at least 1), i.e. "the channels the estimator's own track count
	// would build, spread evenly".
	Capacity int
	// FeedBudget is the per-row feed-through budget the row-pressure
	// overflow is scored against; 0 derives the estimator's own Eq. 11
	// budget ⌈E(M)⌉ for the central row.
	FeedBudget int
}

// Channel is one routing channel's demand picture.
type Channel struct {
	// Index matches route.Result.ChannelTracks: channel Index runs
	// above row Index; the last channel lies below the bottom row.
	Index int
	// Demand is the track-demand distribution: Demand[t] = P(T = t).
	Demand []float64
	// Expected is E[T], the expected track demand.
	Expected float64
	// Capacity is the track capacity utilization is scored against.
	Capacity int
	// Utilization is Expected / Capacity.
	Utilization float64
	// POverflow is P(T > Capacity), the routability risk of this
	// channel.
	POverflow float64
}

// RowFeeds is one row's feed-through pressure: the Eq. 10 count
// distribution evaluated at this row's Eq. 5 probability rather than
// only the central row's.
type RowFeeds struct {
	Index int
	// Dist[m] = P(exactly m nets need a feed-through in this row).
	Dist []float64
	// Expected is E[M] for this row (Eq. 11 generalized off-center).
	Expected float64
	// Budget is the feed-through budget the overflow is scored
	// against.
	Budget int
	// POverBudget is P(M > Budget).
	POverBudget float64
}

// Hotspot is one ranked congestion risk.
type Hotspot struct {
	// Kind is "channel" (track overflow) or "row" (feed-through
	// pressure over budget).
	Kind string
	// Index is the channel or row index.
	Index int
	// Score is the overflow probability the ranking sorts on.
	Score float64
	// Expected is the expected demand (tracks or feed-throughs).
	Expected float64
}

// Map is the congestion map of one module at a fixed row count.
type Map struct {
	Module string
	// Rows is the row count n the analysis is for; Gridded marks the
	// full-custom grid variant (virtual rows, no feed-through model).
	Rows    int
	Gridded bool
	Model   Model
	// Nets is the number of routable nets analyzed.
	Nets     int
	Channels []Channel
	// Rows of feed-through pressure, one per standard-cell row (empty
	// for gridded full-custom maps, which have no feed-through cells).
	Feeds []RowFeeds
	// TotalExpectedTracks is Σ E[T_c].  Under ModelOccupancy it equals
	// the unrounded Eq. 3 expectation Σ yᵢ·E(i).
	TotalExpectedTracks float64
	// TotalExpectedFeeds is Σ E[M_r] over rows.
	TotalExpectedFeeds float64
	// Hotspots are the channels and rows ranked by overflow
	// probability (descending, ties by expected demand then index).
	Hotspots []Hotspot
}

// Analyze builds the congestion map of a standard-cell module over
// rows rows from its gathered statistics.  All degenerate inputs are
// well-defined: a module with no routable nets gets an all-zero map,
// and a single-row module gets zero feed-through pressure with all
// channel demand in the one channel above the row.
func Analyze(s *netlist.Stats, rows int, opts Options) (*Map, error) {
	return AnalyzeCtx(context.Background(), s, rows, opts)
}

// AnalyzeCtx is Analyze with observability: a "congest" span carrying
// the hotspot summary plus the analysis metrics.
func AnalyzeCtx(ctx context.Context, s *netlist.Stats, rows int, opts Options) (m *Map, err error) {
	_, sp := obs.Start(ctx, "congest")
	sp.SetString("module", s.CircuitName)
	defer func(t0 time.Time) {
		mAnalyzeSec.Observe(time.Since(t0).Seconds())
		if err != nil {
			mAnalyzeErr.Inc()
		} else {
			mAnalyses.Inc()
			sp.SetString("model", m.Model.String())
			sp.SetInt("rows", int64(m.Rows))
			sp.SetInt("channels", int64(len(m.Channels)))
			sp.SetFloat("expected_tracks", m.TotalExpectedTracks)
			sp.SetFloat("expected_feeds", m.TotalExpectedFeeds)
			if len(m.Hotspots) > 0 {
				sp.SetFloat("top_hotspot_score", m.Hotspots[0].Score)
			}
		}
		sp.EndErr(err)
	}(time.Now())
	return analyze(s, rows, false, opts)
}

// analyze is the shared engine behind the standard-cell and gridded
// full-custom entry points: compute the distributions, then score
// them.  The two halves are exported separately (ComputeDistributions
// / AnalyzeDistributions) so a compiled engine Plan can memoize the
// expensive convolution work and re-score it under different knobs.
func analyze(s *netlist.Stats, rows int, gridded bool, opts Options) (*Map, error) {
	if opts.Capacity < 0 {
		return nil, anaErr("module %q: negative channel capacity %d", s.CircuitName, opts.Capacity)
	}
	if opts.FeedBudget < 0 {
		return nil, anaErr("module %q: negative feed-through budget %d", s.CircuitName, opts.FeedBudget)
	}
	d, err := ComputeDistributions(s, rows, gridded, opts.Model)
	if err != nil {
		return nil, err
	}
	return scoreDistributions(d, opts)
}

// Distributions is the expensive, score-independent half of a
// congestion analysis: the per-channel Poisson-binomial track-demand
// distributions and the per-row feed-through count distributions of
// one module at one row count under one demand model.  It depends
// only on the net-degree histogram, so it can be computed once per
// (rows, gridded, model) and re-scored under any capacity/budget
// knobs.  A Distributions is immutable after ComputeDistributions
// returns; the scoring step shares (never copies) the slices.
type Distributions struct {
	// Module is the module name the statistics came from.
	Module string
	// Rows, Gridded, and Model identify the analysis the
	// distributions were computed for.
	Rows    int
	Gridded bool
	Model   Model
	// Nets is the number of routable nets analyzed.
	Nets int
	// Channels[c][t] = P(channel c demands exactly t tracks); one
	// entry per channel 0..Rows (the last is the structurally empty
	// channel below the bottom row, kept so indices align with
	// route.Result.ChannelTracks).
	Channels [][]float64
	// Feeds[r][m] = P(row r needs exactly m feed-throughs); nil for
	// gridded full-custom maps, which have no feed-through cells.
	Feeds [][]float64
}

// ComputeDistributions convolves the module's degree classes into the
// per-channel demand distributions (and, for standard-cell rows, the
// per-row feed-through distributions) without scoring them.
//
// The convolutions depend only on the degree histogram and the
// (rows, gridded, model) knobs — never on the module's name — so the
// result is served from (and fed into) the process-wide distmemo:
// differently-named modules, and successive edit states of one module
// in an ECO loop, with equal histograms share one computation.  The
// payload slices are shared through the memo; Distributions is
// already documented immutable, so sharing is safe.
func ComputeDistributions(s *netlist.Stats, rows int, gridded bool, model Model) (*Distributions, error) {
	if rows < 1 {
		return nil, anaErr("module %q: row count %d < 1", s.CircuitName, rows)
	}
	classes := demandClasses(s, gridded)
	mc := make([]distmemo.Class, len(classes))
	for i, cl := range classes {
		mc[i] = distmemo.Class{Degree: cl.degree, Count: cl.count}
	}
	key := distmemo.ShapeKey{Hist: distmemo.HashClasses(mc), Rows: rows, Gridded: gridded, Model: int(model)}
	if sh, ok := distmemo.LookupShape(key, mc); ok {
		return &Distributions{
			Module:   s.CircuitName,
			Rows:     rows,
			Gridded:  gridded,
			Model:    model,
			Nets:     sh.Nets,
			Channels: sh.Channels,
			Feeds:    sh.Feeds,
		}, nil
	}
	d := &Distributions{
		Module:  s.CircuitName,
		Rows:    rows,
		Gridded: gridded,
		Model:   model,
		Nets:    classCount(classes),
	}
	d.Channels = make([][]float64, rows+1)
	for c := range d.Channels {
		dist, err := channelDemandDist(classes, rows, c, model)
		if err != nil {
			return nil, anaErr("module %q: channel %d: %v", s.CircuitName, c, err)
		}
		d.Channels[c] = dist
	}
	if !gridded {
		d.Feeds = make([][]float64, rows)
		for r := 0; r < rows; r++ {
			dist, err := rowFeedDist(classes, rows, r)
			if err != nil {
				return nil, anaErr("module %q: row %d: %v", s.CircuitName, r, err)
			}
			d.Feeds[r] = dist
		}
	}
	distmemo.StoreShape(key, mc, &distmemo.Shape{Nets: d.Nets, Channels: d.Channels, Feeds: d.Feeds})
	return d, nil
}

// AnalyzeDistributions scores precomputed distributions into a full
// congestion map.  opts.Model must match the model the distributions
// were computed under; capacity and feed-budget knobs are free.
func AnalyzeDistributions(d *Distributions, opts Options) (*Map, error) {
	return AnalyzeDistributionsCtx(context.Background(), d, opts)
}

// AnalyzeDistributionsCtx is AnalyzeDistributions with observability,
// under the same span name ("congest" or "congest.grid") and metrics
// as the from-scratch entry point it replaces.
func AnalyzeDistributionsCtx(ctx context.Context, d *Distributions, opts Options) (m *Map, err error) {
	name := "congest"
	if d.Gridded {
		name = "congest.grid"
	}
	_, sp := obs.Start(ctx, name)
	sp.SetString("module", d.Module)
	defer func(t0 time.Time) {
		mAnalyzeSec.Observe(time.Since(t0).Seconds())
		if err != nil {
			mAnalyzeErr.Inc()
		} else {
			mAnalyses.Inc()
			sp.SetString("model", m.Model.String())
			sp.SetInt("rows", int64(m.Rows))
			sp.SetFloat("expected_tracks", m.TotalExpectedTracks)
		}
		sp.EndErr(err)
	}(time.Now())
	if opts.Capacity < 0 {
		return nil, anaErr("module %q: negative channel capacity %d", d.Module, opts.Capacity)
	}
	if opts.FeedBudget < 0 {
		return nil, anaErr("module %q: negative feed-through budget %d", d.Module, opts.FeedBudget)
	}
	return scoreDistributions(d, opts)
}

// scoreDistributions builds the Map view over shared distribution
// slices and scores it.
func scoreDistributions(d *Distributions, opts Options) (*Map, error) {
	if opts.Model != d.Model {
		return nil, anaErr("module %q: scoring model %s against %s distributions", d.Module, opts.Model, d.Model)
	}
	m := &Map{
		Module:  d.Module,
		Rows:    d.Rows,
		Gridded: d.Gridded,
		Model:   d.Model,
		Nets:    d.Nets,
	}
	m.Channels = make([]Channel, len(d.Channels))
	for c, dist := range d.Channels {
		m.Channels[c] = Channel{Index: c, Demand: dist, Expected: prob.DistMean(dist)}
		m.TotalExpectedTracks += m.Channels[c].Expected
	}
	if d.Feeds != nil {
		m.Feeds = make([]RowFeeds, len(d.Feeds))
		for r, dist := range d.Feeds {
			m.Feeds[r] = RowFeeds{Index: r, Dist: dist, Expected: prob.DistMean(dist)}
			m.TotalExpectedFeeds += m.Feeds[r].Expected
		}
	}
	m.score(opts)
	return m, nil
}

// score fills in capacities, utilizations, overflow probabilities and
// the hotspot ranking.
func (m *Map) score(opts Options) {
	capTracks := opts.Capacity
	if capTracks == 0 {
		// Balanced default: the estimator's own expected track total
		// spread evenly over the channels that can carry demand (the
		// rows channels above each row; the below-bottom channel is
		// structurally empty).
		capTracks = int(math.Ceil(m.TotalExpectedTracks/float64(m.Rows) - 1e-9))
		if capTracks < 1 {
			capTracks = 1
		}
	}
	for c := range m.Channels {
		ch := &m.Channels[c]
		ch.Capacity = capTracks
		ch.Utilization = ch.Expected / float64(capTracks)
		ch.POverflow = prob.TailProb(ch.Demand, capTracks)
		mChanUtil.Observe(ch.Utilization)
		if ch.POverflow > 0.5 {
			mOverflowChan.Inc()
		}
	}

	feedBudget := opts.FeedBudget
	if feedBudget == 0 && len(m.Feeds) > 0 {
		// The estimator budgets ⌈E(M)⌉ feed-throughs for the central
		// row (Eq. 11); rate every row against that same budget.
		central := prob.CentralRow(m.Rows) - 1
		feedBudget = int(math.Ceil(m.Feeds[central].Expected - 1e-9))
		if feedBudget < 1 {
			feedBudget = 1
		}
	}
	for r := range m.Feeds {
		rf := &m.Feeds[r]
		rf.Budget = feedBudget
		rf.POverBudget = prob.TailProb(rf.Dist, feedBudget)
	}

	m.Hotspots = m.Hotspots[:0]
	for _, ch := range m.Channels {
		if ch.Expected == 0 && ch.POverflow == 0 {
			continue // structurally empty channels are not hotspots
		}
		m.Hotspots = append(m.Hotspots, Hotspot{
			Kind: "channel", Index: ch.Index, Score: ch.POverflow, Expected: ch.Expected,
		})
	}
	for _, rf := range m.Feeds {
		if rf.Expected == 0 && rf.POverBudget == 0 {
			continue
		}
		m.Hotspots = append(m.Hotspots, Hotspot{
			Kind: "row", Index: rf.Index, Score: rf.POverBudget, Expected: rf.Expected,
		})
	}
	sort.SliceStable(m.Hotspots, func(i, j int) bool {
		a, b := m.Hotspots[i], m.Hotspots[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Expected != b.Expected {
			return a.Expected > b.Expected
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Index < b.Index
	})
}

// class is one net-degree class of the histogram: count nets of
// degree D.
type class struct {
	degree, count int
}

// demandClasses extracts the D ≥ 2 degree classes in deterministic
// order.  The gridded full-custom variant additionally drops D = 2
// nets: Eq. 13's footnote case, where the two devices abut and connect
// directly without channel wiring.
func demandClasses(s *netlist.Stats, gridded bool) []class {
	var out []class
	for _, d := range s.Degrees() {
		if d < 2 || (gridded && d == 2) {
			continue
		}
		if y := s.DegreeCount[d]; y > 0 {
			out = append(out, class{degree: d, count: y})
		}
	}
	return out
}

func classCount(classes []class) int {
	total := 0
	for _, cl := range classes {
		total += cl.count
	}
	return total
}

// channelProb returns the probability that one net of degree D demands
// a track in channel c under the given model.
func channelProb(model Model, rows, D, c int) (float64, error) {
	if c >= rows {
		return 0, nil // the channel below the bottom row is never used
	}
	switch model {
	case ModelOccupancy:
		// One track above every occupied row.
		return prob.RowOccupancyProb(rows, D)
	case ModelCrossing:
		// A segment where the net crosses the boundary above row c,
		// plus the single-row case wired through its own channel.
		single, err := prob.SingleRowProb(rows, D)
		if err != nil {
			return 0, err
		}
		if c == 0 {
			return single, nil
		}
		cross, err := prob.CrossingProb(rows, D, c)
		if err != nil {
			return 0, err
		}
		return cross + single, nil
	}
	return 0, fmt.Errorf("unknown demand model %d", int(model))
}

// channelDemandDist convolves one binomial per degree class into the
// Poisson-binomial track-demand distribution of channel c.
func channelDemandDist(classes []class, rows, c int, model Model) ([]float64, error) {
	dist := []float64{1} // point mass at zero demand
	for _, cl := range classes {
		p, err := channelProb(model, rows, cl.degree, c)
		if err != nil {
			return nil, err
		}
		if p == 0 {
			continue
		}
		b, err := prob.FeedThroughCountDist(cl.count, p)
		if err != nil {
			return nil, err
		}
		dist = prob.Convolve(dist, b)
	}
	return dist, nil
}

// rowFeedDist convolves the Eq. 10 binomials of every degree class at
// row r's Eq. 5 probability (rows are 0-based here, 1-based in the
// paper's formulas).
func rowFeedDist(classes []class, rows, r int) ([]float64, error) {
	dist := []float64{1}
	for _, cl := range classes {
		p, err := prob.FeedThroughProb(rows, cl.degree, r+1)
		if err != nil {
			return nil, err
		}
		if p == 0 {
			continue
		}
		b, err := prob.FeedThroughCountDist(cl.count, p)
		if err != nil {
			return nil, err
		}
		dist = prob.Convolve(dist, b)
	}
	return dist, nil
}

// MaxUtilization returns the highest channel utilization (0 for an
// empty map).
func (m *Map) MaxUtilization() float64 {
	best := 0.0
	for _, ch := range m.Channels {
		if ch.Utilization > best {
			best = ch.Utilization
		}
	}
	return best
}

// MaxOverflow returns the highest channel overflow probability.
func (m *Map) MaxOverflow() float64 {
	best := 0.0
	for _, ch := range m.Channels {
		if ch.POverflow > best {
			best = ch.POverflow
		}
	}
	return best
}

// HottestChannel returns the index of the hottest channel hotspot, or
// -1 when the map carries no demand.
func (m *Map) HottestChannel() int {
	for _, h := range m.Hotspots {
		if h.Kind == "channel" {
			return h.Index
		}
	}
	return -1
}
