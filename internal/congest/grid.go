package congest

import (
	"context"
	"math"
	"time"

	"maest/internal/netlist"
	"maest/internal/obs"
)

// The gridded full-custom variant of the Eq. 13 model.  The paper's
// Full-Custom estimator charges each net of degree D > 2 a
// two-row/one-track channel (Aⱼ = pitch × ⌈D/2⌉ × w̄) and charges
// two-component nets nothing (the devices abut).  To localize that
// demand, the module's N devices are viewed as a virtual grid of g
// rows (g ≈ √N, the §5 1:1 aspect-ratio assumption), the nets scatter
// over the grid rows under the same Eq. 2 uniform model, and each
// inter-row gutter becomes a channel of the standard machinery — with
// D = 2 nets excluded, matching the Eq. 13 footnote.

// GridRows returns the default virtual row count of the gridded
// full-custom model: ⌈√N⌉, at least 1 — the §5 unit-aspect-ratio grid.
func GridRows(s *netlist.Stats) int {
	g := int(math.Ceil(math.Sqrt(float64(s.N))))
	if g < 1 {
		g = 1
	}
	return g
}

// AnalyzeGrid builds the congestion map of a full-custom module on a
// virtual grid of gridRows rows (0 selects GridRows(s)).  The
// resulting map carries no feed-through pressure — full-custom layouts
// have no feed-through cells — and excludes two-component nets from
// demand, like Eq. 13 itself.
func AnalyzeGrid(s *netlist.Stats, gridRows int, opts Options) (*Map, error) {
	return AnalyzeGridCtx(context.Background(), s, gridRows, opts)
}

// AnalyzeGridCtx is AnalyzeGrid with observability under a
// "congest.grid" span.
func AnalyzeGridCtx(ctx context.Context, s *netlist.Stats, gridRows int, opts Options) (m *Map, err error) {
	_, sp := obs.Start(ctx, "congest.grid")
	sp.SetString("module", s.CircuitName)
	defer func(t0 time.Time) {
		mAnalyzeSec.Observe(time.Since(t0).Seconds())
		if err != nil {
			mAnalyzeErr.Inc()
		} else {
			mAnalyses.Inc()
			sp.SetInt("grid_rows", int64(m.Rows))
			sp.SetFloat("expected_tracks", m.TotalExpectedTracks)
		}
		sp.EndErr(err)
	}(time.Now())
	if gridRows == 0 {
		gridRows = GridRows(s)
	}
	return analyze(s, gridRows, true, opts)
}
