package congest

import (
	"bytes"
	"testing"

	"maest/internal/db"
)

// DBSummary must produce a record that survives the db text format
// round trip inside a validated database.
func TestDBSummary(t *testing.T) {
	s := stats("sum", map[int]int{2: 6, 4: 3})
	m, err := Analyze(s, 4, Options{Model: ModelCrossing})
	if err != nil {
		t.Fatal(err)
	}
	c := m.DBSummary()
	if c.Model != "crossing" || c.Rows != 4 {
		t.Fatalf("summary header = %+v", c)
	}
	if c.PeakUtil != m.MaxUtilization() || c.PeakOverflow != m.MaxOverflow() {
		t.Fatalf("summary peaks = %+v", c)
	}
	if c.HotChannel != m.HottestChannel() || c.ExpectedFeeds != m.TotalExpectedFeeds {
		t.Fatalf("summary detail = %+v", c)
	}

	d := &db.Database{Chip: "c", Modules: []db.Module{{
		Name: "sum", Devices: 8, Nets: 9, Ports: 2,
		Shapes:     []db.Shape{{Label: "sc-rows4", Rows: 4, W: 10, H: 10}},
		Congestion: c,
	}}}
	var buf bytes.Buffer
	if err := db.Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := db.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Modules[0].Congestion
	if got == nil || got.Model != c.Model || got.Rows != c.Rows || got.HotChannel != c.HotChannel {
		t.Fatalf("round-tripped summary = %+v, want %+v", got, c)
	}
}
