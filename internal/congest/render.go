package congest

import (
	"fmt"
	"io"
	"strings"
)

// Render writes the congestion map as a fixed-width text report: the
// per-channel utilization table, the per-row feed-through pressure,
// and the ranked hotspot list.  The output is deterministic so golden
// tests can pin it.
func (m *Map) Render(w io.Writer) error {
	kind := "standard-cell"
	rowsName := "rows"
	if m.Gridded {
		kind = "full-custom grid"
		rowsName = "grid rows"
	}
	if _, err := fmt.Fprintf(w, "congestion map: %s  (%s, %s model, %d %s, %d nets)\n",
		m.Module, kind, m.Model, m.Rows, rowsName, m.Nets); err != nil {
		return err
	}
	fmt.Fprintf(w, "expected tracks %.2f", m.TotalExpectedTracks)
	if !m.Gridded {
		fmt.Fprintf(w, "   expected feed-throughs %.2f", m.TotalExpectedFeeds)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%-8s %9s %4s %6s %8s\n", "channel", "E[tracks]", "cap", "util", "P(over)")
	for _, ch := range m.Channels {
		fmt.Fprintf(w, "%-8d %9.3f %4d %6.2f %8.4f  %s\n",
			ch.Index, ch.Expected, ch.Capacity, ch.Utilization, ch.POverflow, bar(ch.Utilization))
	}
	if len(m.Feeds) > 0 {
		fmt.Fprintf(w, "%-8s %9s %4s %8s\n", "row", "E[feeds]", "bud", "P(over)")
		for _, rf := range m.Feeds {
			fmt.Fprintf(w, "%-8d %9.3f %4d %8.4f  %s\n",
				rf.Index, rf.Expected, rf.Budget, rf.POverBudget, bar(rf.POverBudget))
		}
	}
	if len(m.Hotspots) > 0 {
		fmt.Fprintln(w, "hotspots:")
		top := m.Hotspots
		if len(top) > 5 {
			top = top[:5]
		}
		for i, h := range top {
			if _, err := fmt.Fprintf(w, "  %d. %-7s %-3d  score %.4f  expected %.2f\n",
				i+1, h.Kind, h.Index, h.Score, h.Expected); err != nil {
				return err
			}
		}
	}
	return nil
}

// bar renders v in [0,1+] as a 20-cell utilization bar; values past
// 1.0 saturate.
func bar(v float64) string {
	cells := int(v*20 + 0.5)
	if cells > 20 {
		cells = 20
	}
	if cells < 0 {
		cells = 0
	}
	return strings.Repeat("#", cells) + strings.Repeat(".", 20-cells)
}
