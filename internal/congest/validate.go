package congest

import (
	"math"

	"maest/internal/route"
)

// Validation scores a predicted congestion map against the channel
// assignments an actual routing produced — the congestion analogue of
// the paper's Tables 1–2, which score predicted area against real
// layouts.
type Validation struct {
	Module string
	// Predicted[c] is the map's expected track demand in channel c;
	// Actual[c] is the router's track count there.
	Predicted []float64
	Actual    []int
	// MAE is the mean absolute per-channel track error.
	MAE float64
	// Bias is the mean signed error (predicted − actual): positive
	// means the model overestimates, as the paper's assumption 3
	// predicts it should.
	Bias float64
	// PredictedTotal and ActualTotal are the summed track counts.
	PredictedTotal float64
	ActualTotal    int
}

// ValidateRoute compares a congestion map's expected per-channel
// demand with a routed module's channel track counts.  The map and the
// routing must describe the same row count (the channel vectors must
// line up index-for-index).
func ValidateRoute(m *Map, routed *route.Result) (*Validation, error) {
	if len(m.Channels) != len(routed.ChannelTracks) {
		return nil, anaErr("module %q: map has %d channels, routing has %d",
			m.Module, len(m.Channels), len(routed.ChannelTracks))
	}
	v := &Validation{
		Module:    m.Module,
		Predicted: make([]float64, len(m.Channels)),
		Actual:    append([]int(nil), routed.ChannelTracks...),
	}
	sumAbs, sumSigned := 0.0, 0.0
	for c, ch := range m.Channels {
		v.Predicted[c] = ch.Expected
		v.PredictedTotal += ch.Expected
		v.ActualTotal += routed.ChannelTracks[c]
		diff := ch.Expected - float64(routed.ChannelTracks[c])
		sumAbs += math.Abs(diff)
		sumSigned += diff
	}
	n := float64(len(m.Channels))
	v.MAE = sumAbs / n
	v.Bias = sumSigned / n
	return v, nil
}
