package congest

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"maest/internal/hdl"
	"maest/internal/netlist"
	"maest/internal/place"
	"maest/internal/prob"
	"maest/internal/route"
	"maest/internal/tech"
)

var update = flag.Bool("update", false, "rewrite golden files")

// stats builds a synthetic degree histogram: degrees[d] = y_d.
func stats(name string, degrees map[int]int) *netlist.Stats {
	s := &netlist.Stats{CircuitName: name, N: 8, DegreeCount: map[int]int{}}
	for d, y := range degrees {
		if d >= 2 {
			s.DegreeCount[d] = y
			s.H += y
		}
	}
	return s
}

func TestParseModel(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Model
	}{{"", ModelOccupancy}, {"occupancy", ModelOccupancy}, {"crossing", ModelCrossing}} {
		got, err := ParseModel(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseModel(%q) = %v, %v", c.in, got, err)
		}
		if c.in != "" && got.String() != c.in {
			t.Errorf("String() = %q, want %q", got.String(), c.in)
		}
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Fatal("ParseModel accepted bogus model")
	}
}

// A module with no routable nets must get a well-defined zero-demand
// map: point-mass distributions, zero utilization, zero overflow, no
// hotspots — not NaN.
func TestZeroNetsZeroDemand(t *testing.T) {
	for _, model := range []Model{ModelOccupancy, ModelCrossing} {
		m, err := Analyze(stats("empty", nil), 4, Options{Model: model})
		if err != nil {
			t.Fatal(err)
		}
		if m.TotalExpectedTracks != 0 || m.TotalExpectedFeeds != 0 {
			t.Fatalf("%v: empty module has demand %g/%g", model, m.TotalExpectedTracks, m.TotalExpectedFeeds)
		}
		for _, ch := range m.Channels {
			if len(ch.Demand) != 1 || ch.Demand[0] != 1 {
				t.Fatalf("%v: channel %d demand dist %v, want point mass at 0", model, ch.Index, ch.Demand)
			}
			if ch.Utilization != 0 || ch.POverflow != 0 || math.IsNaN(ch.Utilization) {
				t.Fatalf("%v: channel %d util %g overflow %g", model, ch.Index, ch.Utilization, ch.POverflow)
			}
		}
		if len(m.Hotspots) != 0 {
			t.Fatalf("%v: empty module has hotspots %v", model, m.Hotspots)
		}
	}
}

// A single-row module has no between-row routing: all channel demand
// sits in the one channel above the row, and feed-through pressure is
// exactly zero (satellite regression for the n = 1 corner).
func TestSingleRow(t *testing.T) {
	s := stats("onerow", map[int]int{2: 3, 5: 2})
	for _, model := range []Model{ModelOccupancy, ModelCrossing} {
		m, err := Analyze(s, 1, Options{Model: model})
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Channels) != 2 {
			t.Fatalf("%v: %d channels for 1 row, want 2", model, len(m.Channels))
		}
		// Every net is single-row with probability 1, so channel 0
		// demand is exactly H and channel 1 is structurally empty.
		if got := m.Channels[0].Expected; math.Abs(got-5) > 1e-9 {
			t.Errorf("%v: channel 0 expected %g, want 5", model, got)
		}
		if m.Channels[1].Expected != 0 {
			t.Errorf("%v: below-row channel has demand %g", model, m.Channels[1].Expected)
		}
		if m.TotalExpectedFeeds != 0 {
			t.Errorf("%v: single row has feed pressure %g", model, m.TotalExpectedFeeds)
		}
		for _, rf := range m.Feeds {
			if rf.Expected != 0 || rf.POverBudget != 0 {
				t.Errorf("%v: row %d pressure %g/%g, want 0", model, rf.Index, rf.Expected, rf.POverBudget)
			}
		}
	}
}

// Degenerate D ≫ n inputs must stay finite and normalized (satellite
// regression: the old Eq. 2 evaluation produced probabilities in the
// hundreds at scale).
func TestHugeDegreeStaysFinite(t *testing.T) {
	s := stats("huge", map[int]int{10000: 3, 2: 1})
	for _, model := range []Model{ModelOccupancy, ModelCrossing} {
		m, err := Analyze(s, 3, Options{Model: model})
		if err != nil {
			t.Fatal(err)
		}
		for _, ch := range m.Channels {
			sum := 0.0
			for i, p := range ch.Demand {
				if math.IsNaN(p) || p < 0 || p > 1+1e-9 {
					t.Fatalf("%v: channel %d P(%d) = %g", model, ch.Index, i, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%v: channel %d distribution sums to %g", model, ch.Index, sum)
			}
			if ch.POverflow < 0 || ch.POverflow > 1 {
				t.Fatalf("%v: channel %d overflow %g", model, ch.Index, ch.POverflow)
			}
		}
	}
}

// The occupancy model is a lossless refinement of the estimator: its
// total expected demand reproduces the unrounded Eq. 3 expectation.
func TestOccupancyMatchesEq3(t *testing.T) {
	s := stats("eq3", map[int]int{2: 7, 3: 4, 4: 2, 9: 1})
	for rows := 1; rows <= 7; rows++ {
		m, err := Analyze(s, rows, Options{Model: ModelOccupancy})
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for d, y := range s.DegreeCount {
			e, err := prob.ExpectedRowSpan(rows, d)
			if err != nil {
				t.Fatal(err)
			}
			want += float64(y) * e
		}
		if math.Abs(m.TotalExpectedTracks-want) > 1e-9*math.Max(1, want) {
			t.Errorf("rows=%d: total expected %g, Eq. 3 gives %g", rows, m.TotalExpectedTracks, want)
		}
	}
}

// The crossing model concentrates demand centrally: interior channels
// must carry at least as much expected demand as the edge channel
// above row 0, and the profile must be symmetric about the middle.
func TestCrossingConcentratesCentrally(t *testing.T) {
	s := stats("central", map[int]int{2: 10, 3: 5})
	m, err := Analyze(s, 6, Options{Model: ModelCrossing})
	if err != nil {
		t.Fatal(err)
	}
	interior := m.Channels[1 : len(m.Channels)-1]
	for _, ch := range interior {
		if ch.Expected < m.Channels[0].Expected {
			t.Errorf("interior channel %d (%g) below edge channel 0 (%g)",
				ch.Index, ch.Expected, m.Channels[0].Expected)
		}
	}
	for i, j := 1, len(interior); i < j; i, j = i+1, j-1 {
		a, b := m.Channels[i].Expected, m.Channels[j].Expected
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("crossing profile asymmetric: channel %d = %g, channel %d = %g", i, a, j, b)
		}
	}
	mid := m.Channels[len(m.Channels)/2]
	if mid.Expected <= m.Channels[1].Expected {
		t.Errorf("central channel %g not above near-edge channel %g", mid.Expected, m.Channels[1].Expected)
	}
}

// Feed-through pressure peaks at the paper's central row (Eq. 9's
// worst-case row).
func TestFeedPressurePeaksCentrally(t *testing.T) {
	s := stats("feeds", map[int]int{3: 6, 5: 3})
	m, err := Analyze(s, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	central := prob.CentralRow(7) - 1
	for _, rf := range m.Feeds {
		if rf.Expected > m.Feeds[central].Expected+1e-12 {
			t.Errorf("row %d pressure %g exceeds central row %g", rf.Index, rf.Expected, m.Feeds[central].Expected)
		}
	}
}

func TestHotspotsRanked(t *testing.T) {
	s := stats("rank", map[int]int{2: 8, 4: 4, 6: 2})
	m, err := Analyze(s, 5, Options{Model: ModelCrossing, Capacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Hotspots) == 0 {
		t.Fatal("no hotspots on a loaded module")
	}
	for i := 1; i < len(m.Hotspots); i++ {
		if m.Hotspots[i].Score > m.Hotspots[i-1].Score+1e-12 {
			t.Fatalf("hotspots out of order at %d: %v", i, m.Hotspots)
		}
	}
	if m.HottestChannel() < 0 {
		t.Fatal("HottestChannel found nothing")
	}
}

func TestGridVariant(t *testing.T) {
	s := stats("grid", map[int]int{2: 5, 3: 2, 4: 1})
	s.N = 9 // → 3 grid rows
	m, err := AnalyzeGrid(s, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Gridded || m.Rows != 3 {
		t.Fatalf("gridded=%v rows=%d, want true/3", m.Gridded, m.Rows)
	}
	if len(m.Feeds) != 0 {
		t.Fatal("gridded map has feed-through rows")
	}
	// Eq. 13 footnote: D = 2 nets contribute nothing, so only the
	// 2 + 1 = 3 higher-degree nets are analyzed.
	if m.Nets != 3 {
		t.Fatalf("grid analyzed %d nets, want 3 (D=2 excluded)", m.Nets)
	}
	if m.TotalExpectedTracks <= 0 {
		t.Fatal("grid map carries no demand")
	}
	// All-two-component modules (the Table 1 footnote case) get a
	// zero-demand grid map.
	zero, err := AnalyzeGrid(stats("ladder", map[int]int{2: 9}), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if zero.TotalExpectedTracks != 0 || len(zero.Hotspots) != 0 {
		t.Fatalf("two-component module has grid demand %g", zero.TotalExpectedTracks)
	}
}

func TestAnalyzeRejectsBadInputs(t *testing.T) {
	s := stats("bad", map[int]int{2: 1})
	if _, err := Analyze(s, 0, Options{}); err == nil {
		t.Fatal("rows 0 accepted")
	}
	if _, err := Analyze(s, 3, Options{Capacity: -1}); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := Analyze(s, 3, Options{FeedBudget: -2}); err == nil {
		t.Fatal("negative feed budget accepted")
	}
}

// ValidateRoute on a real placed-and-routed module: channel vectors
// line up, totals agree with their sums, and the error metrics are
// consistent.
func TestValidateRoute(t *testing.T) {
	circ := parseTestdata(t, "demo.mnet")
	p := tech.NMOS25()
	s, err := netlist.Gather(circ, p)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 3
	m, err := Analyze(s, rows, Options{Model: ModelCrossing})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(circ, p, place.Options{Rows: rows, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	routed, err := route.RouteModule(pl, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ValidateRoute(m, routed)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Predicted) != rows+1 || len(v.Actual) != rows+1 {
		t.Fatalf("channel vectors %d/%d, want %d", len(v.Predicted), len(v.Actual), rows+1)
	}
	if v.MAE < math.Abs(v.Bias)-1e-12 {
		t.Fatalf("MAE %g below |bias| %g", v.MAE, v.Bias)
	}
	if v.ActualTotal != routed.TotalTracks {
		t.Fatalf("actual total %d != routed %d", v.ActualTotal, routed.TotalTracks)
	}
	if math.Abs(v.PredictedTotal-m.TotalExpectedTracks) > 1e-9 {
		t.Fatalf("predicted total %g != map total %g", v.PredictedTotal, m.TotalExpectedTracks)
	}

	// Mismatched row counts are rejected.
	m2, err := Analyze(s, rows+1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateRoute(m2, routed); err == nil {
		t.Fatal("mismatched channel counts accepted")
	}
}

// The rendered map for the demo module is pinned as a golden file: any
// change to the distributions, scoring, or ranking surfaces as a diff.
func TestRenderGolden(t *testing.T) {
	circ := parseTestdata(t, "demo.mnet")
	p := tech.NMOS25()
	s, err := netlist.Gather(circ, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, model := range []Model{ModelOccupancy, ModelCrossing} {
		m, err := Analyze(s, 3, Options{Model: model})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Render(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteString("\n")
	}
	g, err := netlist.Gather(circ, p)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := AnalyzeGrid(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := gm.Render(&buf); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("..", "..", "testdata", "golden", "congest_map.txt")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("congestion map differs from golden (run with -update after intentional changes)\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

func parseTestdata(t *testing.T, name string) *netlist.Circuit {
	t.Helper()
	f, err := os.Open(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c, err := hdl.ParseMnet(f)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
