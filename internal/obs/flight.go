package obs

import (
	"sync"
	"time"
)

// The flight recorder is the request-level black box of the serving
// stack: a fixed-size ring of the most recent request records, cheap
// enough to stay on for every request.  Each record carries what an
// operator needs to reconstruct one request after the fact — input
// digest, per-stage durations, a bounded span-tree summary, outcome,
// and cache disposition — without holding the full trace stream that
// a JSONL sink would.
//
// Recording is one short mutex-guarded copy into a pre-allocated
// slot: it never blocks on I/O, never grows, and performs no
// allocations of its own, so it cannot stall the request loop it
// observes.  A nil *Flight is the disabled recorder: every method is
// a no-op, the same convention as the nil *Span fast path.

// FlightStage is one coarse handler-measured stage of a request
// (decode, parse, estimate, …) with its duration.
type FlightStage struct {
	Name   string `json:"stage"`
	Micros int64  `json:"us"`
}

// FlightSpan is one line of a request's span-tree summary: the spans
// the pipeline recorded while answering, flattened with their nesting
// depth.
type FlightSpan struct {
	Name   string `json:"span"`
	Micros int64  `json:"us"`
	Depth  int    `json:"depth,omitempty"`
	Err    string `json:"err,omitempty"`
}

// FlightRecord is one request in the flight recorder.
type FlightRecord struct {
	// Seq is the record's position in the recorder's total intake:
	// strictly increasing, so eviction order is checkable and gaps
	// reveal how much history the ring has dropped.
	Seq uint64 `json:"seq"`
	// ID is the request ID echoed to the client in X-Request-Id.
	ID string `json:"id,omitempty"`
	// Trace, Span, and ParentSpan stitch this hop into a distributed
	// trace (W3C trace context): Trace is shared by every hop, Span is
	// this hop's own id, ParentSpan is the caller's span id from the
	// incoming traceparent header (empty for trace roots).  Matching
	// Trace values across two processes' flight recorders reconstruct
	// one request's journey through a serve fleet.
	Trace      string    `json:"trace,omitempty"`
	Span       string    `json:"span,omitempty"`
	ParentSpan string    `json:"parent_span,omitempty"`
	Time       time.Time `json:"time"`
	Method     string    `json:"method,omitempty"`
	Endpoint   string    `json:"endpoint"`
	Status     int       `json:"status"`
	Micros     int64     `json:"us"`
	// Digest is the content address of the request's input (the cache
	// key), linking the record to cache entries and repeat requests.
	Digest string `json:"digest,omitempty"`
	// Plan is the compiled plan's content address the request resolved
	// to, when the handler knows it — the key that groups persisted
	// traces into per-plan cost profiles.
	Plan     string `json:"plan,omitempty"`
	CacheHit bool   `json:"cache_hit"`
	// StoreHit reports that the answer came from the persistent store
	// tier (a disk hit counts as CacheHit on the wire; this
	// distinguishes the two for cost profiles).
	StoreHit bool `json:"store_hit,omitempty"`
	// AllocBytes and GCAssistMicros are the process-wide allocation
	// and GC-mark-assist deltas over the request window (see
	// obs.RequestCosts) — the "was this request fighting the GC?"
	// signal.  Under concurrency they include neighbouring requests'
	// work.
	AllocBytes     int64         `json:"alloc_bytes,omitempty"`
	GCAssistMicros int64         `json:"gc_assist_us,omitempty"`
	Err            string        `json:"err,omitempty"`
	Stages         []FlightStage `json:"stages,omitempty"`
	Spans          []FlightSpan  `json:"spans,omitempty"`
}

// Flight is the fixed-capacity request ring.  All methods are safe
// for concurrent use; a nil *Flight is a valid disabled recorder.
type Flight struct {
	mu    sync.Mutex
	buf   []FlightRecord
	total uint64 // records ever accepted; next Seq
}

// NewFlight returns a recorder keeping the most recent capacity
// records; capacity < 1 returns nil (disabled).
func NewFlight(capacity int) *Flight {
	if capacity < 1 {
		return nil
	}
	return &Flight{buf: make([]FlightRecord, capacity)}
}

// Record stamps r with the next sequence number and stores it,
// evicting the oldest record once the ring is full.  It returns the
// assigned sequence number (0 on a nil recorder).
func (f *Flight) Record(r FlightRecord) uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	r.Seq = f.total
	f.buf[f.total%uint64(len(f.buf))] = r
	f.total++
	f.mu.Unlock()
	return r.Seq
}

// Cap returns the ring capacity (0 when disabled).
func (f *Flight) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.buf)
}

// Len returns the number of resident records.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.total < uint64(len(f.buf)) {
		return int(f.total)
	}
	return len(f.buf)
}

// Total returns the number of records ever accepted, evicted or not.
func (f *Flight) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Snapshot returns the resident records oldest first (ascending Seq).
func (f *Flight) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := uint64(len(f.buf))
	if f.total < n {
		out := make([]FlightRecord, f.total)
		copy(out, f.buf[:f.total])
		return out
	}
	out := make([]FlightRecord, n)
	start := f.total % n
	copy(out, f.buf[start:])
	copy(out[n-start:], f.buf[:start])
	return out
}

// Slowest returns up to k resident records ordered by descending
// duration — the ring's own top-K, no global state.
func (f *Flight) Slowest(k int) []FlightRecord {
	recs := f.Snapshot()
	if k < 0 {
		k = 0
	}
	// Selection sort of the head: k is small (a debug page), records
	// are few (the ring), so O(k·n) beats pulling in sort for clarity
	// of the tie-break (earlier Seq wins on equal durations).
	if k > len(recs) {
		k = len(recs)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(recs); j++ {
			if recs[j].Micros > recs[best].Micros {
				best = j
			}
		}
		recs[i], recs[best] = recs[best], recs[i]
	}
	return recs[:k]
}

// Collect is a bounded span sink summarizing one request's span tree
// for its flight record: the first capacity spans are kept (in
// completion order), the rest only counted.  Safe for concurrent use.
type Collect struct {
	mu      sync.Mutex
	cap     int
	spans   []FlightSpan
	dropped int
}

// NewCollect returns a collector keeping at most capacity spans
// (capacity < 1 selects a small default).
func NewCollect(capacity int) *Collect {
	if capacity < 1 {
		capacity = 16
	}
	return &Collect{cap: capacity}
}

// Record implements Sink.
func (c *Collect) Record(d *SpanData) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.spans) >= c.cap {
		c.dropped++
		return
	}
	c.spans = append(c.spans, FlightSpan{
		Name:   d.Name,
		Micros: d.Duration.Microseconds(),
		Depth:  d.Depth,
		Err:    d.Err,
	})
}

// Spans returns the collected summary (shared slice; callers treat it
// as immutable once the request is over).
func (c *Collect) Spans() []FlightSpan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spans
}

// Dropped returns how many spans exceeded the summary capacity.
func (c *Collect) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}
