package obs

import (
	"context"
	"io"
	"testing"
)

// BenchmarkSpanDisabled measures the nil-sink fast path every
// instrumented function pays when tracing is off — it must stay
// allocation-free and a few nanoseconds.
func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "estimate")
		sp.SetInt("devices", 42)
		sp.End()
	}
}

// BenchmarkSpanJSONL measures the enabled path end to end (span
// allocation + JSON encoding) for comparison.
func BenchmarkSpanJSONL(b *testing.B) {
	ctx := WithSink(context.Background(), NewJSONL(io.Discard))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "estimate")
		sp.SetInt("devices", 42)
		sp.End()
	}
}

// BenchmarkCounterInc and BenchmarkHistogramObserve measure the
// always-on metric updates the pipeline performs at stage boundaries.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_hist", "", DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0013)
	}
}
