package obs

import (
	"encoding/binary"
	"testing"
)

// traceWithPrefix builds a trace id whose first 8 bytes decode to v —
// the quantity the deterministic baseline rule thresholds on.
func traceWithPrefix(v uint64) [16]byte {
	var t [16]byte
	binary.BigEndian.PutUint64(t[:8], v)
	return t
}

func TestTailSamplerDisabledPolicies(t *testing.T) {
	if s := NewTailSampler(SamplePolicy{}); s != nil {
		t.Fatalf("zero policy: got sampler %+v, want nil", s)
	}
	if s := NewTailSampler(SamplePolicy{Rate: -0.5}); s != nil {
		t.Fatalf("negative rate: got sampler, want nil")
	}
	var nilSampler *TailSampler
	if v := nilSampler.Keep(traceWithPrefix(0), 1e9, true); v != SampleDrop {
		t.Fatalf("nil sampler kept a request: %v", v)
	}
	if got := nilSampler.Stats(); got != (SampleStats{}) {
		t.Fatalf("nil sampler stats = %+v, want zero", got)
	}
	if got := nilSampler.Policy(); got != (SamplePolicy{}) {
		t.Fatalf("nil sampler policy = %+v, want zero", got)
	}
}

func TestTailSamplerNilZeroAllocs(t *testing.T) {
	var s *TailSampler
	tid := traceWithPrefix(^uint64(0))
	allocs := testing.AllocsPerRun(1000, func() {
		s.Keep(tid, 250_000, true)
	})
	if allocs != 0 {
		t.Fatalf("nil sampler Keep allocates %.1f/op, want 0", allocs)
	}
}

func TestTailSamplerVerdictPriority(t *testing.T) {
	s := NewTailSampler(SamplePolicy{Rate: 1, SlowMicros: 100_000, KeepErrors: true})
	tid := traceWithPrefix(0) // below any positive threshold

	// Error beats slow beats baseline even when all three rules match.
	if v := s.Keep(tid, 200_000, true); v != SampleError {
		t.Fatalf("failed slow request: verdict %v, want %v", v, SampleError)
	}
	if v := s.Keep(tid, 200_000, false); v != SampleSlow {
		t.Fatalf("ok slow request: verdict %v, want %v", v, SampleSlow)
	}
	if v := s.Keep(tid, 10, false); v != SampleBaseline {
		t.Fatalf("ok fast request at rate 1: verdict %v, want %v", v, SampleBaseline)
	}

	st := s.Stats()
	want := SampleStats{Seen: 3, Kept: 3, Dropped: 0, Errors: 1, Slow: 1, Baseline: 1}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
}

func TestTailSamplerBaselineDeterministic(t *testing.T) {
	// Rate 0.5 sets the threshold at 2^63: ids below keep, at or above
	// drop — and the answer is the same on every call.
	s := NewTailSampler(SamplePolicy{Rate: 0.5})
	low := traceWithPrefix(1 << 62)
	high := traceWithPrefix(1 << 63)
	for i := 0; i < 3; i++ {
		if v := s.Keep(low, 10, false); v != SampleBaseline {
			t.Fatalf("low id round %d: verdict %v, want baseline", i, v)
		}
		if v := s.Keep(high, 10, false); v != SampleDrop {
			t.Fatalf("high id round %d: verdict %v, want drop", i, v)
		}
	}
	st := s.Stats()
	if st.Seen != 6 || st.Kept != 3 || st.Dropped != 3 || st.Baseline != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTailSamplerRateOneKeepsMaxID(t *testing.T) {
	// Rate 1 must keep even the all-ones trace id, which a plain
	// `< threshold` comparison would drop.
	s := NewTailSampler(SamplePolicy{Rate: 1})
	if v := s.Keep(traceWithPrefix(^uint64(0)), 10, false); v != SampleBaseline {
		t.Fatalf("rate 1 dropped the max trace id: %v", v)
	}
}

func TestTailSamplerErrorsOnlyPolicy(t *testing.T) {
	s := NewTailSampler(SamplePolicy{KeepErrors: true})
	if s == nil {
		t.Fatal("errors-only policy produced a nil sampler")
	}
	if v := s.Keep(traceWithPrefix(0), 10, false); v != SampleDrop {
		t.Fatalf("ok request under errors-only policy: %v, want drop", v)
	}
	if v := s.Keep(traceWithPrefix(0), 10, true); v != SampleError {
		t.Fatalf("failed request under errors-only policy: %v, want error", v)
	}
	// Slow rule disabled at SlowMicros 0: a 10-minute request drops.
	if v := s.Keep(traceWithPrefix(0), 600_000_000, false); v != SampleDrop {
		t.Fatalf("slow request with slow rule off: %v, want drop", v)
	}
}

func TestSampleVerdictString(t *testing.T) {
	cases := map[SampleVerdict]string{
		SampleDrop:         "drop",
		SampleError:        "error",
		SampleSlow:         "slow",
		SampleBaseline:     "baseline",
		SampleVerdict(250): "drop",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("verdict %d: String() = %q, want %q", v, got, want)
		}
	}
}
