package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime telemetry: a runtime/metrics-backed sampler publishing the
// Go runtime's health signals (GC pause quantiles, heap size,
// goroutine count, scheduler latency) into the process metrics
// registry, plus a cheap two-counter read for per-request GC/alloc
// deltas in flight records.  Nothing here runs unless a sampler is
// started or a request-cost read is made, so binaries that do not opt
// in pay nothing — the same contract as the nil span and nil flight
// recorder paths.

const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/gc/pauses:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
	rmAllocBytes = "/gc/heap/allocs:bytes"
	rmGCAssist   = "/cpu/classes/gc/mark/assist:cpu-seconds"
)

// RuntimeSampler periodically reads the Go runtime metrics and
// publishes them as gauges in the Default registry:
//
//	maest_runtime_goroutines
//	maest_runtime_heap_bytes
//	maest_runtime_gc_cycles
//	maest_runtime_gc_pause_p50_seconds / _p99_seconds
//	maest_runtime_sched_latency_p50_seconds / _p99_seconds
//
// A nil *RuntimeSampler is the disabled sampler: every method is a
// no-op.  Start/Stop manage one background goroutine; Sample is safe
// to call directly (and concurrently with the background loop).
type RuntimeSampler struct {
	interval time.Duration

	mu      sync.Mutex // guards samples across Sample callers
	samples []metrics.Sample

	goroutines *Gauge
	heapBytes  *Gauge
	gcCycles   *Gauge
	gcPauseP50 *Gauge
	gcPauseP99 *Gauge
	schedP50   *Gauge
	schedP99   *Gauge

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewRuntimeSampler returns a sampler publishing every interval;
// interval <= 0 returns nil (disabled).  Gauges are registered here —
// not at package init — so binaries without a sampler keep their
// /metrics exposition free of runtime families.
func NewRuntimeSampler(interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		return nil
	}
	names := []string{rmGoroutines, rmHeapBytes, rmGCCycles, rmGCPauses, rmSchedLat}
	samples := make([]metrics.Sample, len(names))
	for i, n := range names {
		samples[i].Name = n
	}
	return &RuntimeSampler{
		interval:   interval,
		samples:    samples,
		goroutines: DefGauge("maest_runtime_goroutines", "live goroutines"),
		heapBytes:  DefGauge("maest_runtime_heap_bytes", "bytes of live heap objects"),
		gcCycles:   DefGauge("maest_runtime_gc_cycles", "completed GC cycles since process start"),
		gcPauseP50: DefGauge("maest_runtime_gc_pause_p50_seconds", "median stop-the-world GC pause"),
		gcPauseP99: DefGauge("maest_runtime_gc_pause_p99_seconds", "p99 stop-the-world GC pause"),
		schedP50:   DefGauge("maest_runtime_sched_latency_p50_seconds", "median goroutine scheduling latency"),
		schedP99:   DefGauge("maest_runtime_sched_latency_p99_seconds", "p99 goroutine scheduling latency"),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// Start launches the background sampling loop (one immediate sample,
// then one per interval).  Starting twice is a no-op.
func (rs *RuntimeSampler) Start() {
	if rs == nil {
		return
	}
	rs.startOnce.Do(func() {
		go func() {
			defer close(rs.done)
			rs.Sample()
			t := time.NewTicker(rs.interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					rs.Sample()
				case <-rs.stop:
					return
				}
			}
		}()
	})
}

// Stop ends the background loop and waits for it to exit.  Stopping a
// never-started or nil sampler is a no-op.
func (rs *RuntimeSampler) Stop() {
	if rs == nil {
		return
	}
	rs.startOnce.Do(func() { close(rs.done) }) // never started: nothing to wait for
	rs.stopOnce.Do(func() { close(rs.stop) })
	<-rs.done
}

// Sample reads the runtime metrics once and updates the gauges.
func (rs *RuntimeSampler) Sample() {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	metrics.Read(rs.samples)
	for _, s := range rs.samples {
		switch s.Name {
		case rmGoroutines:
			rs.goroutines.Set(uint64Value(s))
		case rmHeapBytes:
			rs.heapBytes.Set(uint64Value(s))
		case rmGCCycles:
			rs.gcCycles.Set(uint64Value(s))
		case rmGCPauses:
			if h := histValue(s); h != nil {
				rs.gcPauseP50.Set(runtimeHistQuantile(h, 0.50))
				rs.gcPauseP99.Set(runtimeHistQuantile(h, 0.99))
			}
		case rmSchedLat:
			if h := histValue(s); h != nil {
				rs.schedP50.Set(runtimeHistQuantile(h, 0.50))
				rs.schedP99.Set(runtimeHistQuantile(h, 0.99))
			}
		}
	}
}

func uint64Value(s metrics.Sample) float64 {
	if s.Value.Kind() == metrics.KindUint64 {
		return float64(s.Value.Uint64())
	}
	return 0
}

func histValue(s metrics.Sample) *metrics.Float64Histogram {
	if s.Value.Kind() == metrics.KindFloat64Histogram {
		return s.Value.Float64Histogram()
	}
	return nil
}

// runtimeHistQuantile estimates the q-quantile of a runtime/metrics
// histogram, returning the upper edge of the bucket containing the
// target rank (conservative), clamped to the nearest finite edge so
// the ±Inf sentinel buckets never leak into gauges or JSON.
func runtimeHistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	q = math.Min(math.Max(q, 0), 1)
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if c > 0 && float64(cum) >= rank {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			hi := h.Buckets[i+1]
			if !math.IsInf(hi, 1) {
				return hi
			}
			lo := h.Buckets[i]
			if !math.IsInf(lo, -1) {
				return lo
			}
			return 0
		}
	}
	return 0
}

// RequestCosts is a snapshot of the process's cumulative allocation
// and GC-assist counters.  Two snapshots bracketing a request yield
// the request window's delta via Since.  The counters are
// process-wide, so under concurrency a request's delta includes its
// neighbours' work — still the number an operator wants when a
// latency spike correlates with allocation pressure.
type RequestCosts struct {
	AllocBytes      uint64
	GCAssistSeconds float64
}

// ReadRequestCosts reads the two cost counters.  It is cheap (two
// runtime metric reads, one small allocation) but not free: callers
// on zero-alloc paths must gate it behind their enabled check.
func ReadRequestCosts() RequestCosts {
	s := make([]metrics.Sample, 2)
	s[0].Name = rmAllocBytes
	s[1].Name = rmGCAssist
	metrics.Read(s)
	var rc RequestCosts
	if s[0].Value.Kind() == metrics.KindUint64 {
		rc.AllocBytes = s[0].Value.Uint64()
	}
	if s[1].Value.Kind() == metrics.KindFloat64 {
		rc.GCAssistSeconds = s[1].Value.Float64()
	}
	return rc
}

// Since returns the counter deltas from start to end (clamped at zero
// against counter resets, which do not happen in practice).
func (end RequestCosts) Since(start RequestCosts) RequestCosts {
	var d RequestCosts
	if end.AllocBytes > start.AllocBytes {
		d.AllocBytes = end.AllocBytes - start.AllocBytes
	}
	if end.GCAssistSeconds > start.GCAssistSeconds {
		d.GCAssistSeconds = end.GCAssistSeconds - start.GCAssistSeconds
	}
	return d
}

// RuntimeSummary is a one-shot view of the runtime signals, for
// snapshot consumers (maest-bench) that want the numbers without a
// background sampler or registry round-trip.
type RuntimeSummary struct {
	Goroutines        uint64
	HeapBytes         uint64
	GCCycles          uint64
	GCPauseP50Seconds float64
	GCPauseP99Seconds float64
	SchedLatP99Secs   float64
}

// ReadRuntimeSummary reads the runtime metrics once.
func ReadRuntimeSummary() RuntimeSummary {
	names := []string{rmGoroutines, rmHeapBytes, rmGCCycles, rmGCPauses, rmSchedLat}
	samples := make([]metrics.Sample, len(names))
	for i, n := range names {
		samples[i].Name = n
	}
	metrics.Read(samples)
	var out RuntimeSummary
	for _, s := range samples {
		switch s.Name {
		case rmGoroutines:
			out.Goroutines = uint64(uint64Value(s))
		case rmHeapBytes:
			out.HeapBytes = uint64(uint64Value(s))
		case rmGCCycles:
			out.GCCycles = uint64(uint64Value(s))
		case rmGCPauses:
			if h := histValue(s); h != nil {
				out.GCPauseP50Seconds = runtimeHistQuantile(h, 0.50)
				out.GCPauseP99Seconds = runtimeHistQuantile(h, 0.99)
			}
		case rmSchedLat:
			if h := histValue(s); h != nil {
				out.SchedLatP99Secs = runtimeHistQuantile(h, 0.99)
			}
		}
	}
	return out
}
