package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe
// for concurrent use and never allocate.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the exposition to stay meaningful).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by v (CAS loop; safe concurrently).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: bucket i counts observations ≤ uppers[i], with an
// implicit +Inf bucket).
type Histogram struct {
	name, help string
	uppers     []float64
	counts     []atomic.Int64 // len(uppers)+1; last is +Inf
	sumBits    atomic.Uint64
	count      atomic.Int64
	// exemplars remembers, per bucket, the most recent trace id whose
	// observation landed there (ObserveExemplar only; plain Observe
	// never touches it, keeping the disabled-telemetry path zero-alloc).
	exemplars []atomic.Pointer[Exemplar] // len(uppers)+1, parallel to counts
}

// Exemplar links one histogram bucket to a concrete trace: the most
// recent observation that landed in the bucket, with the trace id to
// look it up by.  A p99 spike on a dashboard becomes one GET
// /debug/trace/{trace_id} instead of a log hunt.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// ExemplarBucket is one bucket's exemplar with its upper bound, the
// shape the /debug JSON carries (+Inf rendered as the string "+Inf"
// upstream; here it is math.Inf(1) for the last bucket).
type ExemplarBucket struct {
	UpperBound float64
	Exemplar   Exemplar
}

// NewHistogram returns an unregistered histogram over the given bucket
// upper bounds (sorted copy).  It exists for per-entity distributions
// — one histogram per compiled plan, say — that must not pollute the
// process registry's exposition.
func NewHistogram(buckets []float64) *Histogram {
	uppers := append([]float64(nil), buckets...)
	sort.Float64s(uppers)
	return &Histogram{
		uppers:    uppers,
		counts:    make([]atomic.Int64, len(uppers)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(uppers)+1),
	}
}

// Observe records one value.  Non-finite values are dropped: a NaN or
// ±Inf observation would poison the sum (and through it Mean and the
// /debug JSON, which cannot encode non-finite numbers) forever.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v) // first upper ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveExemplar records one value like Observe and additionally
// remembers traceID as the landing bucket's exemplar.  It allocates
// (one Exemplar per call), so only the telemetry-enabled request path
// uses it; the disabled path stays on the allocation-free Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.Observe(v)
	if traceID == "" || h.exemplars == nil {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v)
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
}

// Exemplars returns the buckets that currently hold an exemplar,
// upper-bound ascending (the +Inf bucket reports math.Inf(1)).
func (h *Histogram) Exemplars() []ExemplarBucket {
	if h.exemplars == nil {
		return nil
	}
	var out []ExemplarBucket
	for i := range h.exemplars {
		e := h.exemplars[i].Load()
		if e == nil {
			continue
		}
		ub := math.Inf(1)
		if i < len(h.uppers) {
			ub = h.uppers[i]
		}
		out = append(out, ExemplarBucket{UpperBound: ub, Exemplar: *e})
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// Quantile estimates the p-quantile (p clamped to [0, 1]) of the
// observed distribution by linear interpolation within the bucket
// containing the target rank — the same estimate Prometheus's
// histogram_quantile computes server-side, available here without a
// scrape.  The first bucket interpolates from 0 (the histograms all
// record non-negative quantities); ranks landing in the +Inf bucket
// return the largest finite upper bound.  An empty histogram — and a
// NaN p — returns 0.  The answer is always finite: a registered +Inf
// bucket bound is treated as the overflow bucket, so NaN/∞ never leak
// into the /debug JSON (which cannot encode them).
func (h *Histogram) Quantile(p float64) float64 {
	if math.IsNaN(p) {
		return 0
	}
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	p = math.Min(math.Max(p, 0), 1)
	rank := p * float64(total)
	cum, lower := 0.0, 0.0
	for i, upper := range h.uppers {
		c := float64(counts[i])
		if c > 0 && cum+c >= rank {
			if math.IsInf(upper, 1) {
				return lower // caller registered an explicit +Inf bound
			}
			return lower + (upper-lower)*(rank-cum)/c
		}
		cum += c
		if !math.IsInf(upper, 1) {
			lower = upper
		}
	}
	return lower
}

// DefBuckets suit second-scale latencies: the paper's per-module CPU
// budgets (1.5 s / 3 s) fall in the middle of the range.
var DefBuckets = []float64{1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.5, 1, 1.5, 3, 10}

// CountBuckets suit small integer quantities (tracks, feed-throughs,
// rows, iterations).
var CountBuckets = []float64{0, 1, 2, 5, 10, 20, 50, 100, 250, 1000, 10_000, 100_000, 1_000_000}

// RatioBuckets suit fractions in [0, 1] (accept ratios, utilization).
var RatioBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}

// Registry holds the process's metrics. The zero value is not usable;
// call NewRegistry. Get-or-create lookups take a mutex, so hot paths
// hoist metrics into package variables and only pay atomic updates.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the pipeline instruments into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name, help: help}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name, help: help}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (sorted copy) on first use.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(buckets)
		h.name, h.help = name, help
		r.histograms[name] = h
	}
	return h
}

// Reset zeroes every registered metric (tests and long-lived servers
// sampling deltas).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.histograms {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		for i := range h.exemplars {
			h.exemplars[i].Store(nil)
		}
		h.count.Store(0)
		h.sumBits.Store(0)
	}
}

// WritePrometheus emits every metric in the Prometheus text
// exposition format (version 0.0.4), names sorted for stable diffs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	for _, c := range counters {
		if err := writeHeader(w, familyName(c.name), c.help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", c.name, c.Value()); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		if err := writeHeader(w, familyName(g.name), g.help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", g.name, g.Value()); err != nil {
			return err
		}
	}
	for _, h := range hists {
		if err := writeHeader(w, h.name, h.help, "histogram"); err != nil {
			return err
		}
		cum := int64(0)
		for i, ub := range h.uppers {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(ub), cum); err != nil {
				return err
			}
			if err := writeExemplar(w, h, i, formatFloat(ub)); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.uppers)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum); err != nil {
			return err
		}
		if err := writeExemplar(w, h, len(h.uppers), "+Inf"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", h.name, h.Sum(), h.name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// writeExemplar emits one bucket's exemplar as a comment line directly
// under the bucket sample.  The text format (0.0.4) reserves only
// `# HELP` and `# TYPE`; every other comment is ignored by conforming
// parsers, so exemplars ride along without breaking a scrape — the
// native exemplar syntax belongs to OpenMetrics, which this exposition
// deliberately is not.
func writeExemplar(w io.Writer, h *Histogram, bucket int, le string) error {
	if h.exemplars == nil {
		return nil
	}
	e := h.exemplars[bucket].Load()
	if e == nil {
		return nil
	}
	_, err := fmt.Fprintf(w, "# EXEMPLAR %s_bucket{le=%q} trace_id=%s value=%g\n",
		h.name, le, e.TraceID, e.Value)
	return err
}

// familyName strips a baked-in Prometheus label set from a metric
// name: counters and gauges may be registered as `name{k="v",…}`
// (info-style metrics such as maest_build_info), and the HELP/TYPE
// headers must name the family, not the labeled series.
func familyName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func writeHeader(w io.Writer, name, help, typ string) error {
	if help == "" {
		// The exposition format wants a HELP line per family; a metric
		// registered without one still gets a (self-describing) header
		// so conformance checks over the full registry hold.
		help = name
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

func formatFloat(f float64) string { return fmt.Sprintf("%g", f) }

// DefCounter, DefGauge and DefHistogram register into the Default
// registry — the form the instrumented packages use for their
// package-level metric variables.

// DefCounter get-or-creates a counter in the Default registry.
func DefCounter(name, help string) *Counter { return Default.Counter(name, help) }

// DefGauge get-or-creates a gauge in the Default registry.
func DefGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// DefHistogram get-or-creates a histogram in the Default registry.
func DefHistogram(name, help string, buckets []float64) *Histogram {
	return Default.Histogram(name, help, buckets)
}
