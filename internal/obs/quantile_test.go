package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantileEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", DefBuckets)
		for _, q := range []float64{0, 0.5, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Fatalf("empty Quantile(%g) = %g, want 0", q, got)
			}
		}
	})

	t.Run("single bucket", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", []float64{10})
		h.Observe(5)
		h.Observe(7)
		for _, tt := range []struct{ q, want float64 }{{0, 0}, {0.5, 5}, {1, 10}} {
			if got := h.Quantile(tt.q); got != tt.want {
				t.Fatalf("Quantile(%g) = %g, want %g", tt.q, got, tt.want)
			}
		}
	})

	t.Run("q clamped", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", []float64{1, 2})
		h.Observe(0.5)
		if got := h.Quantile(-3); got != h.Quantile(0) {
			t.Fatalf("Quantile(-3) = %g, want clamp to Quantile(0)", got)
		}
		if got := h.Quantile(42); got != h.Quantile(1) {
			t.Fatalf("Quantile(42) = %g, want clamp to Quantile(1)", got)
		}
	})

	t.Run("nan q", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", []float64{1})
		h.Observe(0.5)
		if got := h.Quantile(math.NaN()); got != 0 {
			t.Fatalf("Quantile(NaN) = %g, want 0", got)
		}
	})

	t.Run("overflow bucket stays finite", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", []float64{1, 2})
		h.Observe(100) // lands in the implicit +Inf bucket
		got := h.Quantile(0.99)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("Quantile(0.99) = %g, want finite", got)
		}
		if got != 2 {
			t.Fatalf("Quantile(0.99) = %g, want largest finite upper 2", got)
		}
	})

	t.Run("explicit +Inf bound stays finite", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", []float64{1, math.Inf(1)})
		h.Observe(100)
		got := h.Quantile(0.99)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("Quantile(0.99) = %g, want finite", got)
		}
	})

	t.Run("interpolation", func(t *testing.T) {
		h := NewRegistry().Histogram("h", "", []float64{1, 2, 4})
		for i := 0; i < 4; i++ {
			h.Observe(1.5) // 4 observations in the (1, 2] bucket
		}
		if got := h.Quantile(0.5); got != 1.5 {
			t.Fatalf("Quantile(0.5) = %g, want 1.5 (midpoint of bucket)", got)
		}
	})
}

func TestHistogramObserveRejectsNonFinite(t *testing.T) {
	h := NewRegistry().Histogram("h", "", []float64{1, 2})
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	if h.Count() != 0 {
		t.Fatalf("non-finite observations counted: %d", h.Count())
	}
	h.Observe(1.5)
	if h.Count() != 1 || h.Sum() != 1.5 || h.Mean() != 1.5 {
		t.Fatalf("count=%d sum=%g mean=%g after poisoning attempt, want 1/1.5/1.5",
			h.Count(), h.Sum(), h.Mean())
	}
	if got := h.Quantile(0.5); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("Quantile leaked non-finite %g", got)
	}
}
