package obs

import (
	"math"
	"runtime/metrics"
	"testing"
	"time"
)

func TestRuntimeSamplerDisabled(t *testing.T) {
	var rs *RuntimeSampler
	rs.Start() // all no-ops on nil
	rs.Sample()
	rs.Stop()
	if NewRuntimeSampler(0) != nil || NewRuntimeSampler(-time.Second) != nil {
		t.Fatal("non-positive interval must return a nil (disabled) sampler")
	}
}

func TestRuntimeSamplerPublishesGauges(t *testing.T) {
	rs := NewRuntimeSampler(time.Hour) // interval irrelevant; we call Sample directly
	defer rs.Stop()
	rs.Sample()
	if g := rs.goroutines.Value(); g < 1 {
		t.Fatalf("goroutine gauge = %g, want ≥ 1", g)
	}
	if h := rs.heapBytes.Value(); h <= 0 {
		t.Fatalf("heap gauge = %g, want > 0", h)
	}
	for _, g := range []*Gauge{rs.gcPauseP50, rs.gcPauseP99, rs.schedP50, rs.schedP99} {
		if v := g.Value(); v < 0 || v != v {
			t.Fatalf("quantile gauge = %g, want finite ≥ 0", v)
		}
	}
}

func TestRuntimeSamplerStartStop(t *testing.T) {
	rs := NewRuntimeSampler(time.Millisecond)
	rs.Start()
	rs.Start() // idempotent
	time.Sleep(5 * time.Millisecond)
	rs.Stop()
	rs.Stop() // idempotent
	if g := rs.goroutines.Value(); g < 1 {
		t.Fatalf("background loop never sampled (goroutines = %g)", g)
	}
}

func TestRuntimeSamplerStopWithoutStart(t *testing.T) {
	done := make(chan struct{})
	go func() {
		NewRuntimeSampler(time.Hour).Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop on a never-started sampler hung")
	}
}

func TestRuntimeHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 3, 1, 0},
		Buckets: []float64{0, 0.001, 0.01, 0.1, 1},
	}
	if got := runtimeHistQuantile(h, 0.5); got != 0.01 {
		t.Fatalf("p50 = %g, want 0.01 (upper edge of median bucket)", got)
	}
	if got := runtimeHistQuantile(h, 1); got != 0.1 {
		t.Fatalf("p100 = %g, want 0.1", got)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if got := runtimeHistQuantile(empty, 0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
	// Rank in an +Inf-bounded overflow bucket clamps to the finite lower edge.
	overflow := &metrics.Float64Histogram{
		Counts:  []uint64{0, 2},
		Buckets: []float64{0, 0.5, math.Inf(1)},
	}
	if got := runtimeHistQuantile(overflow, 0.99); got != 0.5 {
		t.Fatalf("overflow-bucket quantile = %g, want 0.5", got)
	}
}

func TestReadRequestCostsDelta(t *testing.T) {
	start := ReadRequestCosts()
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	_ = sink
	d := ReadRequestCosts().Since(start)
	if d.AllocBytes < 64*64<<10 {
		t.Fatalf("alloc delta = %d bytes, want ≥ %d", d.AllocBytes, 64*64<<10)
	}
	if d.GCAssistSeconds < 0 {
		t.Fatalf("gc assist delta = %g, want ≥ 0", d.GCAssistSeconds)
	}
	// Reversed order clamps to zero rather than underflowing.
	if rev := start.Since(ReadRequestCosts()); rev.AllocBytes != 0 {
		t.Fatalf("reversed delta = %+v, want zero", rev)
	}
}

func TestReadRuntimeSummary(t *testing.T) {
	s := ReadRuntimeSummary()
	if s.Goroutines < 1 || s.HeapBytes == 0 {
		t.Fatalf("summary %+v: goroutines/heap unset", s)
	}
	for _, v := range []float64{s.GCPauseP50Seconds, s.GCPauseP99Seconds, s.SchedLatP99Secs} {
		if v < 0 || v != v || v > 1e9 {
			t.Fatalf("summary quantile %g not finite-and-sane", v)
		}
	}
}
