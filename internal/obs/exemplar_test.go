package obs

import (
	"bufio"
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestObserveExemplarBucketPlacement(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})

	h.ObserveExemplar(0.005, "trace-a") // le=0.01 bucket
	h.ObserveExemplar(0.5, "trace-b")   // le=1 bucket
	h.ObserveExemplar(5, "trace-c")     // +Inf bucket

	ex := h.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("got %d exemplars, want 3: %+v", len(ex), ex)
	}
	if ex[0].UpperBound != 0.01 || ex[0].Exemplar.TraceID != "trace-a" {
		t.Fatalf("bucket 0: %+v", ex[0])
	}
	if ex[1].UpperBound != 1 || ex[1].Exemplar.TraceID != "trace-b" {
		t.Fatalf("bucket 1: %+v", ex[1])
	}
	if !math.IsInf(ex[2].UpperBound, 1) || ex[2].Exemplar.TraceID != "trace-c" {
		t.Fatalf("overflow bucket: %+v", ex[2])
	}

	// Most recent observation in a bucket wins.
	h.ObserveExemplar(0.002, "trace-d")
	ex = h.Exemplars()
	if ex[0].Exemplar.TraceID != "trace-d" || ex[0].Exemplar.Value != 0.002 {
		t.Fatalf("exemplar not replaced: %+v", ex[0])
	}

	// The counts agree with plain Observe semantics.
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
}

func TestObserveExemplarEmptyTraceAndNonFinite(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.ObserveExemplar(0.5, "") // observes, no exemplar
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if ex := h.Exemplars(); len(ex) != 0 {
		t.Fatalf("empty trace id stored an exemplar: %+v", ex)
	}
	h.ObserveExemplar(math.NaN(), "trace-x")
	h.ObserveExemplar(math.Inf(1), "trace-y")
	if h.Count() != 1 || len(h.Exemplars()) != 0 {
		t.Fatalf("non-finite observation leaked: count=%d exemplars=%+v",
			h.Count(), h.Exemplars())
	}
}

func TestPlainObserveZeroAllocsWithExemplarsPresent(t *testing.T) {
	// The contract the disabled-telemetry request path depends on:
	// Observe never allocates, even on a histogram that carries
	// exemplars from the enabled path.
	h := NewHistogram(DefBuckets)
	h.ObserveExemplar(0.02, "trace-a")
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.003) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f/op, want 0", allocs)
	}
}

func TestRegistryResetClearsExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_reset_exemplars_seconds", "t", DefBuckets)
	h.ObserveExemplar(0.02, "trace-a")
	if len(h.Exemplars()) == 0 {
		t.Fatal("exemplar not stored")
	}
	r.Reset()
	if ex := h.Exemplars(); len(ex) != 0 {
		t.Fatalf("Reset left exemplars behind: %+v", ex)
	}
}

func TestWritePrometheusEmitsExemplarComments(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_exemplar_latency_seconds", "request latency", []float64{0.01, 0.1})
	h.ObserveExemplar(0.05, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.Observe(0.005) // plain observation: bucket counted, no exemplar

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `# EXEMPLAR test_exemplar_latency_seconds_bucket{le="0.1"} trace_id=4bf92f3577b34da6a3ce929d0e0e4736 value=0.05`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing exemplar line %q:\n%s", want, out)
	}
	if strings.Contains(out, `# EXEMPLAR test_exemplar_latency_seconds_bucket{le="0.01"}`) {
		t.Fatalf("plain Observe minted an exemplar:\n%s", out)
	}
}

// TestExpositionConformance is the parser-roundtrip check over the
// full process registry: every family carries # HELP and # TYPE
// headers, every sample line parses under text-format (0.0.4) rules,
// and histogram families are internally consistent.  It exercises the
// real Default registry — every metric the estimator, store, serve
// and obs layers have registered by init time — rather than a toy one.
func TestExpositionConformance(t *testing.T) {
	// Make sure at least one histogram carries an exemplar so the
	// comment-line path is covered by the parse below.
	Default.Histogram("test_conformance_seconds", "conformance probe", DefBuckets).
		ObserveExemplar(0.02, "deadbeefdeadbeefdeadbeefdeadbeef")

	var buf bytes.Buffer
	if err := Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	type family struct {
		helped, typed bool
		typ           string
		samples       int
	}
	families := make(map[string]*family)
	get := func(name string) *family {
		f, ok := families[name]
		if !ok {
			f = &family{}
			families[name] = f
		}
		return f
	}
	// sampleFamily maps a series name back to its family: histogram
	// series append _bucket/_sum/_count, info-style metrics carry a
	// label set.
	sampleFamily := func(series string) string {
		base := series
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(base, suf)
			if trimmed != base {
				if f, ok := families[trimmed]; ok && f.typ == "histogram" {
					return trimmed
				}
			}
		}
		return base
	}

	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var order []string
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		switch {
		case strings.HasPrefix(text, "# HELP "):
			rest := strings.TrimPrefix(text, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without help text: %q", line, text)
			}
			get(name).helped = true
			order = append(order, name)
		case strings.HasPrefix(text, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(text, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", line, text)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", line, fields[1])
			}
			f := get(fields[0])
			f.typed, f.typ = true, fields[1]
		case strings.HasPrefix(text, "#"):
			// Any other comment (# EXEMPLAR ...) is ignored by 0.0.4
			// parsers; just require the marker shape.
			if !strings.HasPrefix(text, "# ") {
				t.Fatalf("line %d: bare comment %q", line, text)
			}
		case text == "":
			t.Fatalf("line %d: blank line in exposition", line)
		default:
			// Sample line: series value [timestamp].
			fields := strings.Fields(text)
			if len(fields) != 2 {
				t.Fatalf("line %d: sample with %d fields: %q", line, len(fields), text)
			}
			if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
				t.Fatalf("line %d: unparseable value in %q: %v", line, text, err)
			}
			series := fields[0]
			if i := strings.IndexByte(series, '{'); i >= 0 {
				if !strings.HasSuffix(series, "}") {
					t.Fatalf("line %d: unterminated label set: %q", line, text)
				}
				labels := series[i+1 : len(series)-1]
				for _, pair := range splitLabels(labels) {
					k, v, ok := strings.Cut(pair, "=")
					if !ok || k == "" || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
						t.Fatalf("line %d: malformed label %q in %q", line, pair, text)
					}
				}
			}
			fam := sampleFamily(series)
			f, ok := families[fam]
			if !ok {
				t.Fatalf("line %d: sample %q before any header for family %q", line, text, fam)
			}
			f.samples++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(families) == 0 {
		t.Fatal("exposition was empty")
	}
	for _, name := range order {
		f := families[name]
		if !f.helped || !f.typed {
			t.Errorf("family %s: HELP=%v TYPE=%v, want both", name, f.helped, f.typed)
		}
		if f.samples == 0 {
			t.Errorf("family %s: no sample lines", name)
		}
		if f.typ == "histogram" && f.samples < 4 {
			// At minimum: one finite bucket, +Inf bucket, _sum, _count.
			t.Errorf("family %s: histogram with only %d samples", name, f.samples)
		}
	}
}

// splitLabels splits `k1="v1",k2="v2"` on commas outside quotes.  The
// registry never emits commas inside label values today, but the
// parser should not silently depend on that.
func splitLabels(s string) []string {
	var out []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			b.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if b.Len() > 0 {
		out = append(out, b.String())
	}
	return out
}

// TestExpositionHistogramCumulative re-parses one histogram family and
// checks the cumulative-bucket invariant the text format promises.
func TestExpositionHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_cumulative_seconds", "t", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	var infCount, count int64
	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "test_cumulative_seconds_bucket"):
			v, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev {
				t.Fatalf("bucket counts not cumulative: %d after %d", v, prev)
			}
			prev, infCount = v, v
		case strings.HasPrefix(line, "test_cumulative_seconds_count"):
			count, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		}
	}
	if infCount != 5 || count != 5 {
		t.Fatalf("+Inf bucket %d, count %d, want 5/5", infCount, count)
	}
}
