package obs

import (
	"context"
	"strings"
	"testing"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() || !tc.Sampled() {
		t.Fatalf("fresh context invalid or unsampled: %+v", tc)
	}
	hdr := tc.Traceparent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") {
		t.Fatalf("rendered header %q", hdr)
	}
	got, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", hdr, err)
	}
	if got != tc {
		t.Fatalf("round trip: got %+v want %+v", got, tc)
	}
	if got.TraceIDString() != hdr[3:35] || got.SpanIDString() != hdr[36:52] {
		t.Fatalf("id strings do not match header: %q vs %q", got.TraceIDString(), hdr)
	}
}

func TestParseTraceparentSpec(t *testing.T) {
	const valid = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name  string
		in    string
		valid bool
	}{
		{"canonical", valid, true},
		{"unsampled", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", true},
		{"future version", "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true},
		{"empty", "", false},
		{"truncated", valid[:54], false},
		{"version ff", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"version 00 with trailer", valid + "-extra", false},
		{"future version bad separator", "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", false},
		{"uppercase hex", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", false},
		{"zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"zero parent id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},
		{"bad dash position", "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"non-hex flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g", false},
		{"non-hex trace id", "00-4bf92f3577b34da6a3ce929d0e0e473z-00f067aa0ba902b7-01", false},
	}
	for _, tt := range cases {
		tc, err := ParseTraceparent(tt.in)
		if tt.valid && err != nil {
			t.Errorf("%s: unexpected error %v", tt.name, err)
		}
		if !tt.valid && err == nil {
			t.Errorf("%s: parsed %q as %+v, want error", tt.name, tt.in, tc)
		}
		if !tt.valid && tc.Valid() {
			t.Errorf("%s: error path returned valid context %+v", tt.name, tc)
		}
	}
}

func TestTraceContextChild(t *testing.T) {
	root := NewTraceContext()
	child := root.Child()
	if child.TraceID != root.TraceID {
		t.Fatalf("child changed trace id: %x vs %x", child.TraceID, root.TraceID)
	}
	if child.SpanID == root.SpanID {
		t.Fatalf("child reused parent span id %x", child.SpanID)
	}
	if child.Flags != root.Flags {
		t.Fatalf("child changed flags: %x vs %x", child.Flags, root.Flags)
	}
}

func TestTraceContextCtxRoundTrip(t *testing.T) {
	if _, ok := TraceContextFrom(context.Background()); ok {
		t.Fatal("empty context reported a trace context")
	}
	tc := NewTraceContext()
	ctx := WithTraceContext(context.Background(), tc)
	got, ok := TraceContextFrom(ctx)
	if !ok || got != tc {
		t.Fatalf("ctx round trip: got %+v ok=%v", got, ok)
	}
	// An invalid (zero) context stored in ctx must read back as absent.
	if _, ok := TraceContextFrom(WithTraceContext(context.Background(), TraceContext{})); ok {
		t.Fatal("zero trace context reported as present")
	}
}

func TestNewTraceContextUnique(t *testing.T) {
	a, b := NewTraceContext(), NewTraceContext()
	if a.TraceID == b.TraceID || a.SpanID == b.SpanID {
		t.Fatalf("consecutive roots collided: %+v %+v", a, b)
	}
}
