package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// JSONLSink streams each completed span as one JSON line — the
// machine-readable trace format (`-trace FILE` in the CLIs).
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL returns a sink writing one JSON object per span to w.
func NewJSONL(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// jsonSpan is the wire form of a span: flat, stable field names,
// microsecond duration (the pipeline's natural granularity).
type jsonSpan struct {
	Span   string         `json:"span"`
	ID     uint64         `json:"id"`
	Parent uint64         `json:"parent,omitempty"`
	Start  string         `json:"start"`
	Micros int64          `json:"us"`
	Attrs  map[string]any `json:"attrs,omitempty"`
	Err    string         `json:"err,omitempty"`
}

// Record implements Sink.
func (s *JSONLSink) Record(d *SpanData) {
	js := jsonSpan{
		Span:   d.Name,
		ID:     d.ID,
		Parent: d.ParentID,
		Start:  d.Start.UTC().Format(time.RFC3339Nano),
		Micros: d.Duration.Microseconds(),
		Err:    d.Err,
	}
	if len(d.Attrs) > 0 {
		js.Attrs = make(map[string]any, len(d.Attrs))
		for _, a := range d.Attrs {
			js.Attrs[a.Key] = a.Value
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enc.Encode(js) // best-effort: a broken trace file must not fail the run
}

// TreeSink accumulates completed spans and renders them as an
// indented human-readable summary tree — the `-trace` end-of-run
// report.
type TreeSink struct {
	mu    sync.Mutex
	spans []*SpanData
}

// NewTree returns an empty accumulating sink.
func NewTree() *TreeSink { return &TreeSink{} }

// Record implements Sink.
func (s *TreeSink) Record(d *SpanData) {
	s.mu.Lock()
	s.spans = append(s.spans, d)
	s.mu.Unlock()
}

// Len returns the number of recorded spans.
func (s *TreeSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.spans)
}

// WriteTree renders the span forest, roots in start order, children
// indented under their parents:
//
//	estimate 1.8ms  {module=demo devices=6 nets=8}
//	  parse.mnet 103µs  {devices=6}
func (s *TreeSink) WriteTree(w io.Writer) error {
	s.mu.Lock()
	spans := make([]*SpanData, len(s.spans))
	copy(spans, s.spans)
	s.mu.Unlock()

	children := make(map[uint64][]*SpanData, len(spans))
	byID := make(map[uint64]*SpanData, len(spans))
	for _, d := range spans {
		byID[d.ID] = d
	}
	var roots []*SpanData
	for _, d := range spans {
		if d.ParentID != 0 && byID[d.ParentID] != nil {
			children[d.ParentID] = append(children[d.ParentID], d)
		} else {
			roots = append(roots, d)
		}
	}
	order := func(ds []*SpanData) {
		sort.Slice(ds, func(i, j int) bool { return ds[i].Start.Before(ds[j].Start) })
	}
	order(roots)
	var walk func(d *SpanData, depth int) error
	walk = func(d *SpanData, depth int) error {
		if err := writeSpanLine(w, d, depth); err != nil {
			return err
		}
		kids := children[d.ID]
		order(kids)
		for _, k := range kids {
			if err := walk(k, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}

func writeSpanLine(w io.Writer, d *SpanData, depth int) error {
	for i := 0; i < depth; i++ {
		if _, err := io.WriteString(w, "  "); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %s", d.Name, d.Duration.Round(time.Microsecond)); err != nil {
		return err
	}
	if len(d.Attrs) > 0 {
		if _, err := io.WriteString(w, "  {"); err != nil {
			return err
		}
		for i, a := range d.Attrs {
			sep := ""
			if i > 0 {
				sep = " "
			}
			if _, err := fmt.Fprintf(w, "%s%s=%v", sep, a.Key, a.Value); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}"); err != nil {
			return err
		}
	}
	if d.Err != "" {
		if _, err := fmt.Fprintf(w, "  ERROR: %s", d.Err); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// multiSink fans every span out to several sinks.
type multiSink []Sink

// Multi returns a sink recording into every non-nil sink given. With
// zero usable sinks it returns nil (tracing disabled).
func Multi(sinks ...Sink) Sink {
	var ms multiSink
	for _, s := range sinks {
		if s != nil {
			ms = append(ms, s)
		}
	}
	switch len(ms) {
	case 0:
		return nil
	case 1:
		return ms[0]
	default:
		return ms
	}
}

// Record implements Sink.
func (ms multiSink) Record(d *SpanData) {
	for _, s := range ms {
		s.Record(d)
	}
}
