package obs

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func codecRecord() FlightRecord {
	return FlightRecord{
		Seq:            42,
		ID:             "req-000042",
		Trace:          "4bf92f3577b34da6a3ce929d0e0e4736",
		Span:           "00f067aa0ba902b7",
		ParentSpan:     "b7ad6b7169203331",
		Time:           time.Date(2026, 8, 8, 12, 30, 45, 678901234, time.UTC),
		Method:         "POST",
		Endpoint:       "/v1/estimate",
		Status:         200,
		Micros:         1234,
		Digest:         "sha256:abc",
		Plan:           "sha256:def",
		CacheHit:       true,
		StoreHit:       true,
		AllocBytes:     8192,
		GCAssistMicros: 17,
		Err:            "",
		Stages: []FlightStage{
			{Name: "parse", Micros: 100},
			{Name: "estimate", Micros: 900},
		},
		Spans: []FlightSpan{
			{Name: "estimate", Micros: 1000},
			{Name: "distribute", Micros: 400, Depth: 1, Err: "truncated"},
		},
	}
}

func TestTraceCodecRoundTrip(t *testing.T) {
	in := codecRecord()
	buf := EncodeTrace(nil, &in)
	out, err := DecodeTrace(buf)
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	// Time normalizes to UTC wall clock; everything else is identical.
	if !out.Time.Equal(in.Time) {
		t.Fatalf("time: got %v, want %v", out.Time, in.Time)
	}
	in.Time = out.Time
	if out.Seq != in.Seq || out.ID != in.ID || out.Trace != in.Trace ||
		out.Span != in.Span || out.ParentSpan != in.ParentSpan ||
		out.Method != in.Method || out.Endpoint != in.Endpoint ||
		out.Status != in.Status || out.Micros != in.Micros ||
		out.Digest != in.Digest || out.Plan != in.Plan ||
		out.CacheHit != in.CacheHit || out.StoreHit != in.StoreHit ||
		out.AllocBytes != in.AllocBytes || out.GCAssistMicros != in.GCAssistMicros ||
		out.Err != in.Err {
		t.Fatalf("scalar fields differ:\n got %+v\nwant %+v", out, &in)
	}
	if len(out.Stages) != len(in.Stages) {
		t.Fatalf("stages: got %d, want %d", len(out.Stages), len(in.Stages))
	}
	for i := range in.Stages {
		if out.Stages[i] != in.Stages[i] {
			t.Fatalf("stage %d: got %+v, want %+v", i, out.Stages[i], in.Stages[i])
		}
	}
	if len(out.Spans) != len(in.Spans) {
		t.Fatalf("spans: got %d, want %d", len(out.Spans), len(in.Spans))
	}
	for i := range in.Spans {
		if out.Spans[i] != in.Spans[i] {
			t.Fatalf("span %d: got %+v, want %+v", i, out.Spans[i], in.Spans[i])
		}
	}
}

func TestTraceCodecDeterministic(t *testing.T) {
	r := codecRecord()
	a := EncodeTrace(nil, &r)
	b := EncodeTrace(nil, &r)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same record differ")
	}
	// Appending to a prefixed buffer extends it without disturbing the
	// prefix.
	pre := append([]byte("prefix"), a...)
	got := EncodeTrace([]byte("prefix"), &r)
	if !bytes.Equal(got, pre) {
		t.Fatal("EncodeTrace did not append to the supplied buffer")
	}
}

func TestTraceCodecZeroRecord(t *testing.T) {
	var r FlightRecord
	out, err := DecodeTrace(EncodeTrace(nil, &r))
	if err != nil {
		t.Fatalf("zero record: %v", err)
	}
	if out.Seq != 0 || out.Endpoint != "" || len(out.Stages) != 0 || len(out.Spans) != 0 {
		t.Fatalf("zero record decoded to %+v", out)
	}
	// The zero time.Time round-trips through its (out-of-range)
	// UnixNano reading — what matters is that re-encoding is stable,
	// which TestTraceCodecNormalizationIdempotent pins; here just check
	// the decode is deterministic.
	if got, want := out.Time, time.Unix(0, r.Time.UnixNano()).UTC(); !got.Equal(want) {
		t.Fatalf("zero time: got %v, want %v", got, want)
	}
}

func TestTraceCodecNormalizationIdempotent(t *testing.T) {
	// Encode → decode → encode must be a fixed point: the serve layer
	// relies on this to render ring records and disk records
	// byte-identically.
	r := codecRecord()
	r.Time = time.Now() // monotonic reading present
	first := EncodeTrace(nil, &r)
	dec, err := DecodeTrace(first)
	if err != nil {
		t.Fatal(err)
	}
	second := EncodeTrace(nil, dec)
	if !bytes.Equal(first, second) {
		t.Fatal("re-encoding a decoded record changed the bytes")
	}
}

func TestTraceCodecRejectsBadPayloads(t *testing.T) {
	r := codecRecord()
	good := EncodeTrace(nil, &r)

	cases := map[string][]byte{
		"empty":           {},
		"unknown version": append([]byte{TraceCodecVersion + 1}, good[1:]...),
		"truncated":       good[:len(good)/2],
		"trailing bytes":  append(append([]byte(nil), good...), 0xFF),
		"one byte":        {TraceCodecVersion},
	}
	for name, b := range cases {
		if _, err := DecodeTrace(b); !errors.Is(err, ErrTraceCodec) {
			t.Errorf("%s: err = %v, want ErrTraceCodec", name, err)
		}
	}
}

func TestTraceCodecRejectsImplausibleLengths(t *testing.T) {
	// A corrupt string length larger than the remaining payload (or the
	// sanity cap) must fail, not allocate.
	b := []byte{TraceCodecVersion}
	b = append(b, 0x2a) // seq
	// ID length claims 2^20 bytes with nothing behind it.
	b = append(b, 0x80, 0x80, 0x40)
	if _, err := DecodeTrace(b); !errors.Is(err, ErrTraceCodec) {
		t.Fatalf("giant string length: err = %v, want ErrTraceCodec", err)
	}
}

func TestTraceCodecTruncationSweep(t *testing.T) {
	// Every proper prefix of a valid payload must decode to an error,
	// never panic or succeed.
	r := codecRecord()
	good := EncodeTrace(nil, &r)
	for i := 0; i < len(good); i++ {
		if _, err := DecodeTrace(good[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", i, len(good))
		}
	}
}
