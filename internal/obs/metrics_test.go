package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c_total", "") != c {
		t.Fatal("get-or-create returned a different counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "a histogram", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-107) > 1e-9 {
		t.Fatalf("sum = %g, want 107", h.Sum())
	}
	if math.Abs(h.Mean()-21.4) > 1e-9 {
		t.Fatalf("mean = %g, want 21.4", h.Mean())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Cumulative buckets: ≤1 → 2 (0.5 and the boundary value 1),
	// ≤2 → 3, ≤5 → 4, +Inf → 5.
	for _, want := range []string{
		`h_bucket{le="1"} 2`,
		`h_bucket{le="2"} 3`,
		`h_bucket{le="5"} 4`,
		`h_bucket{le="+Inf"} 5`,
		"h_sum 107",
		"h_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{1, 2, 5, 10})
	// 100 observations spread uniformly inside (0, 1]: every quantile
	// interpolates inside the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	cases := []struct{ p, want float64 }{
		{0.5, 0.5},
		{0.9, 0.9},
		{0.99, 0.99},
		{1, 1},
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}

	// Multi-bucket interpolation: 10 obs ≤1, 10 in (1,2], none in
	// (2,5], 10 in (5,10].  p50 is the upper edge of bucket 2; p75
	// lands 25% into the (5,10] bucket.
	h2 := r.Histogram("q2", "", []float64{1, 2, 5, 10})
	for i := 0; i < 10; i++ {
		h2.Observe(0.5)
		h2.Observe(1.5)
		h2.Observe(7)
	}
	if got := h2.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p50 = %g, want 1.5 (midpoint of (1,2] at rank 15)", got)
	}
	if got := h2.Quantile(0.75); math.Abs(got-6.25) > 1e-9 {
		t.Errorf("p75 = %g, want 6.25 (25%% into (5,10])", got)
	}

	// Monotone in p.
	for p := 0.0; p < 1; p += 0.05 {
		if h2.Quantile(p) > h2.Quantile(p+0.05)+1e-12 {
			t.Fatalf("Quantile not monotone at p=%g", p)
		}
	}

	// Ranks in the +Inf bucket clamp to the largest finite bound.
	h3 := r.Histogram("q3", "", []float64{1})
	h3.Observe(50)
	if got := h3.Quantile(0.99); got != 1 {
		t.Errorf("+Inf-bucket quantile = %g, want 1 (largest finite bound)", got)
	}

	// Empty histogram and clamped p.
	h4 := r.Histogram("q4", "", []float64{1})
	if got := h4.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
	if got := h2.Quantile(2); got != h2.Quantile(1) {
		t.Errorf("p>1 not clamped: %g vs %g", got, h2.Quantile(1))
	}
}

func TestBuildInfoMetric(t *testing.T) {
	RegisterBuildInfo()
	RegisterBuildInfo() // idempotent
	var buf bytes.Buffer
	if err := Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE maest_build_info gauge") {
		t.Errorf("exposition missing unlabeled TYPE header for maest_build_info:\n%s", out)
	}
	if !strings.Contains(out, `maest_build_info{goversion="go`) {
		t.Errorf("exposition missing labeled maest_build_info series:\n%s", out)
	}
	if !strings.Contains(out, "} 1\n") {
		t.Errorf("maest_build_info value is not the constant 1:\n%s", out)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("maest_b_total", "second").Inc()
	r.Counter("maest_a_total", "first").Add(2)
	r.Gauge("maest_workers", "worker count").Set(8)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP maest_a_total first\n# TYPE maest_a_total counter\nmaest_a_total 2\n",
		"# TYPE maest_b_total counter\nmaest_b_total 1\n",
		"# TYPE maest_workers gauge\nmaest_workers 8\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sorted by name for stable output.
	if strings.Index(out, "maest_a_total") > strings.Index(out, "maest_b_total") {
		t.Errorf("metrics not sorted:\n%s", out)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1})
	c.Inc()
	g.Set(3)
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("Reset left values: c=%d g=%g hc=%d hs=%g", c.Value(), g.Value(), h.Count(), h.Sum())
	}
}

func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc_total", "")
			g := r.Gauge("conc_gauge", "")
			h := r.Histogram("conc_hist", "", []float64{0.25, 0.5, 0.75})
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) / 4)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("conc_gauge", "").Value(); got != workers*per {
		t.Fatalf("gauge = %g, want %d", got, workers*per)
	}
	if got := r.Histogram("conc_hist", "", nil).Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestMetricUpdateZeroAllocs(t *testing.T) {
	c := NewRegistry().Counter("x_total", "")
	h := NewRegistry().Histogram("h", "", DefBuckets)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(0.001)
	})
	if allocs != 0 {
		t.Fatalf("metric updates allocate %.1f objects per op, want 0", allocs)
	}
}
