package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c_total", "") != c {
		t.Fatal("get-or-create returned a different counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "a histogram", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-107) > 1e-9 {
		t.Fatalf("sum = %g, want 107", h.Sum())
	}
	if math.Abs(h.Mean()-21.4) > 1e-9 {
		t.Fatalf("mean = %g, want 21.4", h.Mean())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Cumulative buckets: ≤1 → 2 (0.5 and the boundary value 1),
	// ≤2 → 3, ≤5 → 4, +Inf → 5.
	for _, want := range []string{
		`h_bucket{le="1"} 2`,
		`h_bucket{le="2"} 3`,
		`h_bucket{le="5"} 4`,
		`h_bucket{le="+Inf"} 5`,
		"h_sum 107",
		"h_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("maest_b_total", "second").Inc()
	r.Counter("maest_a_total", "first").Add(2)
	r.Gauge("maest_workers", "worker count").Set(8)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP maest_a_total first\n# TYPE maest_a_total counter\nmaest_a_total 2\n",
		"# TYPE maest_b_total counter\nmaest_b_total 1\n",
		"# TYPE maest_workers gauge\nmaest_workers 8\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sorted by name for stable output.
	if strings.Index(out, "maest_a_total") > strings.Index(out, "maest_b_total") {
		t.Errorf("metrics not sorted:\n%s", out)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1})
	c.Inc()
	g.Set(3)
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("Reset left values: c=%d g=%g hc=%d hs=%g", c.Value(), g.Value(), h.Count(), h.Sum())
	}
}

func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc_total", "")
			g := r.Gauge("conc_gauge", "")
			h := r.Histogram("conc_hist", "", []float64{0.25, 0.5, 0.75})
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) / 4)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("conc_gauge", "").Value(); got != workers*per {
		t.Fatalf("gauge = %g, want %d", got, workers*per)
	}
	if got := r.Histogram("conc_hist", "", nil).Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestMetricUpdateZeroAllocs(t *testing.T) {
	c := NewRegistry().Counter("x_total", "")
	h := NewRegistry().Histogram("h", "", DefBuckets)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(0.001)
	})
	if allocs != 0 {
		t.Fatalf("metric updates allocate %.1f objects per op, want 0", allocs)
	}
}
