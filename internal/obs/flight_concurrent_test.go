package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestFlightConcurrentWraparound hammers a small ring with concurrent
// writers while readers snapshot across the wrap boundary.  Every
// snapshot must be internally consistent: sequences strictly ascending
// with no duplicates, each record's payload matching the writer that
// produced its sequence number, and length never exceeding capacity.
// Run under -race in verify.sh.
func TestFlightConcurrentWraparound(t *testing.T) {
	const (
		capacity = 8
		writers  = 4
		perW     = 500
		readers  = 3
	)
	f := NewFlight(capacity)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := f.Snapshot()
				if len(snap) > capacity {
					errs <- fmt.Errorf("snapshot longer than capacity: %d", len(snap))
					return
				}
				for i, rec := range snap {
					if i > 0 && rec.Seq != snap[i-1].Seq+1 {
						errs <- fmt.Errorf("snapshot seqs not contiguous: %d after %d",
							rec.Seq, snap[i-1].Seq)
						return
					}
					// Each writer stamps its records with its own
					// endpoint; the record stored under a Seq must be
					// whole (no torn copy mixing two writers' fields).
					if rec.Endpoint != rec.ID {
						errs <- fmt.Errorf("torn record at seq %d: endpoint %q id %q",
							rec.Seq, rec.Endpoint, rec.ID)
						return
					}
				}
			}
		}()
	}

	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			tag := fmt.Sprintf("writer-%d", w)
			for i := 0; i < perW; i++ {
				f.Record(FlightRecord{ID: tag, Endpoint: tag, Status: 200})
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := f.Total(); got != writers*perW {
		t.Fatalf("total = %d, want %d", got, writers*perW)
	}
	if got := f.Len(); got != capacity {
		t.Fatalf("len = %d, want full ring %d", got, capacity)
	}
	snap := f.Snapshot()
	if len(snap) != capacity {
		t.Fatalf("final snapshot %d records, want %d", len(snap), capacity)
	}
	if snap[len(snap)-1].Seq != writers*perW-1 {
		t.Fatalf("final snapshot newest seq = %d, want %d",
			snap[len(snap)-1].Seq, writers*perW-1)
	}
}

// TestFlightSnapshotMidWrap pins the wraparound arithmetic: capacity
// crossed mid-stream must keep snapshots oldest-first with the evicted
// prefix gone.
func TestFlightSnapshotMidWrap(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 6; i++ { // 2 past capacity
		f.Record(FlightRecord{Endpoint: fmt.Sprintf("r%d", i)})
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("len = %d, want 4", len(snap))
	}
	for i, rec := range snap {
		wantSeq := uint64(2 + i)
		if rec.Seq != wantSeq || rec.Endpoint != fmt.Sprintf("r%d", wantSeq) {
			t.Fatalf("snap[%d] = seq %d endpoint %q, want seq %d", i, rec.Seq, rec.Endpoint, wantSeq)
		}
	}
}
