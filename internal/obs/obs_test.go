package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsNoOp(t *testing.T) {
	var sp *Span
	sp.SetInt("a", 1)
	sp.SetFloat("b", 2)
	sp.SetString("c", "x")
	sp.End()
	sp.EndErr(errors.New("boom"))
}

func TestDisabledPathReturnsNilSpan(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "root")
	if sp != nil {
		t.Fatal("span created without a sink")
	}
	if ctx2 != ctx {
		t.Fatal("context rewrapped on the disabled path")
	}
}

func TestDisabledPathZeroAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		_, sp := Start(ctx, "root")
		sp.SetInt("devices", 7)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f objects per op, want 0", allocs)
	}
}

func TestSpanTreePropagation(t *testing.T) {
	tree := NewTree()
	ctx := WithSink(context.Background(), tree)
	ctx, root := Start(ctx, "root")
	root.SetString("module", "demo")
	cctx, child := Start(ctx, "child")
	if _, gc := Start(cctx, "grandchild"); gc == nil {
		t.Fatal("grandchild span not created")
	} else {
		gc.SetInt("n", 3)
		gc.End()
	}
	child.End()
	root.EndErr(errors.New("late failure"))

	if tree.Len() != 3 {
		t.Fatalf("recorded %d spans, want 3", tree.Len())
	}
	var buf bytes.Buffer
	if err := tree.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"root", "  child", "    grandchild", "module=demo", "n=3", "ERROR: late failure"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
	// Children must be indented under the root, not printed as roots.
	if strings.Contains(out, "\nchild") {
		t.Errorf("child rendered as a root:\n%s", out)
	}
}

func TestSinkFrom(t *testing.T) {
	if SinkFrom(context.Background()) != nil {
		t.Fatal("sink found in empty context")
	}
	tree := NewTree()
	ctx := WithSink(context.Background(), tree)
	if SinkFrom(ctx) != Sink(tree) {
		t.Fatal("installed sink not found")
	}
	ctx, sp := Start(ctx, "s")
	defer sp.End()
	if SinkFrom(ctx) != Sink(tree) {
		t.Fatal("sink not reachable through the active span")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	ctx := WithSink(context.Background(), sink)
	ctx, root := Start(ctx, "estimate")
	root.SetString("module", "c17")
	root.SetInt("devices", 6)
	_, child := Start(ctx, "parse")
	child.EndErr(errors.New("bad token"))
	root.End()

	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	// Children end before parents, so the child is first.
	if lines[0]["span"] != "parse" || lines[0]["err"] != "bad token" {
		t.Errorf("child line wrong: %v", lines[0])
	}
	if lines[1]["span"] != "estimate" {
		t.Errorf("root line wrong: %v", lines[1])
	}
	attrs, _ := lines[1]["attrs"].(map[string]any)
	if attrs["module"] != "c17" || attrs["devices"] != float64(6) {
		t.Errorf("root attrs wrong: %v", attrs)
	}
	if lines[0]["parent"] != lines[1]["id"] {
		t.Errorf("child parent %v != root id %v", lines[0]["parent"], lines[1]["id"])
	}
	if _, err := time.Parse(time.RFC3339Nano, lines[1]["start"].(string)); err != nil {
		t.Errorf("start timestamp not RFC3339Nano: %v", err)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tree := NewTree()
	jsonl := NewJSONL(io.Discard)
	ctx := WithSink(context.Background(), Multi(jsonl, tree))
	ctx, root := Start(ctx, "chip")
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, sp := Start(ctx, fmt.Sprintf("mod-%d-%d", w, i))
				sp.SetInt("worker", int64(w))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got, want := tree.Len(), workers*perWorker+1; got != want {
		t.Fatalf("recorded %d spans, want %d", got, want)
	}
}

func TestMultiNilHandling(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of no sinks must be nil")
	}
	tree := NewTree()
	if Multi(nil, tree) != Sink(tree) {
		t.Fatal("Multi of one sink must be that sink")
	}
	ctx, sp := Start(WithSink(context.Background(), Multi(nil, nil)), "x")
	_ = ctx
	if sp != nil {
		t.Fatal("nil multi-sink must disable tracing")
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tree := NewTree()
	_, sp := Start(WithSink(context.Background(), tree), "x")
	sp.End()
	sp.End()
	sp.EndErr(errors.New("late"))
	if tree.Len() != 1 {
		t.Fatalf("span recorded %d times, want 1", tree.Len())
	}
}

func TestProfilingHelpers(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = fmt.Sprintf("%d", i)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, heap} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestSetupCLI(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	prof := filepath.Join(dir, "prof.cpu")
	cli, ctx, err := SetupCLI(context.Background(), trace, true, prof)
	if err != nil {
		t.Fatal(err)
	}
	_, sp := Start(ctx, "work")
	sp.SetInt("n", 1)
	sp.End()
	DefCounter("obs_cli_test_total", "test counter").Inc()
	var out bytes.Buffer
	if err := cli.Close(&out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"span":"work"`) {
		t.Errorf("trace file missing span: %s", data)
	}
	s := out.String()
	if !strings.Contains(s, "work") || !strings.Contains(s, "obs_cli_test_total 1") {
		t.Errorf("Close output missing tree or metrics:\n%s", s)
	}
	for _, p := range []string{prof, prof + ".heap"} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("profile not written: %v", err)
		}
	}
	// nil CLI and disabled CLI are no-ops.
	if err := (*CLI)(nil).Close(&out); err != nil {
		t.Fatal(err)
	}
	cli2, ctx2, err := SetupCLI(context.Background(), "", false, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, sp := Start(ctx2, "x"); sp != nil {
		t.Fatal("disabled CLI created spans")
	}
	before := out.Len()
	if err := cli2.Close(&out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != before {
		t.Fatal("disabled CLI wrote output on Close")
	}
}
