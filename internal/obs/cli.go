package obs

import (
	"context"
	"fmt"
	"io"
	"os"
)

// CLI wires the standard observability flags shared by the maest
// commands (-trace FILE, -metrics, -pprof FILE) into a context and a
// single end-of-run flush. Zero-valued flags cost nothing: the
// returned context is the input context and Close is a no-op.
type CLI struct {
	tree      *TreeSink
	traceFile *os.File
	stopCPU   func() error
	heapPath  string
	metrics   bool
}

// SetupCLI interprets the flag values: trace != "" streams JSONL
// spans to that file ("-" = stdout) and accumulates the summary tree;
// metrics arms the end-of-run Prometheus dump; pprofPath != ""
// CPU-profiles into pprofPath and heap-snapshots into
// pprofPath+".heap" at Close.
func SetupCLI(ctx context.Context, trace string, metrics bool, pprofPath string) (*CLI, context.Context, error) {
	c := &CLI{metrics: metrics}
	if trace != "" {
		var w io.Writer
		if trace == "-" {
			w = os.Stdout
		} else {
			f, err := os.Create(trace)
			if err != nil {
				return nil, ctx, err
			}
			c.traceFile = f
			w = f
		}
		c.tree = NewTree()
		ctx = WithSink(ctx, Multi(NewJSONL(w), c.tree))
	}
	if pprofPath != "" {
		stop, err := StartCPUProfile(pprofPath)
		if err != nil {
			c.Close(io.Discard)
			return nil, ctx, err
		}
		c.stopCPU = stop
		c.heapPath = pprofPath + ".heap"
	}
	return c, ctx, nil
}

// Close flushes everything armed by SetupCLI: it stops the CPU
// profile, snapshots the heap, renders the span summary tree and the
// metrics dump to w (conventionally stderr, keeping stdout clean for
// machine output). Safe to call on a nil receiver and idempotent for
// the file-backed parts.
func (c *CLI) Close(w io.Writer) error {
	if c == nil {
		return nil
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.stopCPU != nil {
		keep(c.stopCPU())
		c.stopCPU = nil
	}
	if c.heapPath != "" {
		keep(WriteHeapProfile(c.heapPath))
		c.heapPath = ""
	}
	if c.tree != nil {
		fmt.Fprintf(w, "--- trace (%d spans) ---\n", c.tree.Len())
		keep(c.tree.WriteTree(w))
	}
	if c.traceFile != nil {
		keep(c.traceFile.Close())
		c.traceFile = nil
	}
	if c.metrics {
		fmt.Fprintln(w, "--- metrics ---")
		keep(Default.WritePrometheus(w))
	}
	return firstErr
}
