// Package obs is the zero-dependency observability layer of the
// estimator: hierarchical wall-clock spans propagated through
// context.Context, a process-wide metrics registry with
// Prometheus-style text exposition, and pprof profiling helpers.
//
// The paper's whole pitch is speed (< 1.5 CPU s per Full-Custom
// module, < 3 CPU s per Standard-Cell module, Tables 1–2), so the
// pipeline must be measurable without being slowed down: when no
// trace sink is installed in the context, Start returns a nil *Span
// whose methods are all no-ops, and the disabled path performs no
// allocations (enforced by this package's tests and benchmarks).
//
// Typical use:
//
//	sink := obs.NewJSONL(file)
//	ctx := obs.WithSink(context.Background(), sink)
//	ctx, sp := obs.Start(ctx, "estimate")
//	sp.SetString("module", name)
//	... work, possibly calling obs.Start(ctx, ...) for children ...
//	sp.End()
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Attr is one key/value pair attached to a span. Value is one of
// string, int64, or float64 — kept as `any` to avoid three parallel
// slices, but never anything else.
type Attr struct {
	Key   string
	Value any
}

// SpanData is the immutable record handed to a Sink when a span ends.
type SpanData struct {
	// ID and ParentID link the span tree; ParentID is 0 for roots.
	ID, ParentID uint64
	Name         string
	Start        time.Time
	Duration     time.Duration
	// Depth is the nesting level (0 for roots) — sinks can indent
	// without reconstructing the tree.
	Depth int
	Attrs []Attr
	// Err holds the error message when the span ended in failure.
	Err string
}

// Sink receives completed spans. Implementations must be safe for
// concurrent use: EstimateChip workers end spans from many
// goroutines.
type Sink interface {
	Record(d *SpanData)
}

// Span is one timed region of the pipeline. A nil *Span is valid and
// every method on it is a no-op, so instrumented code never checks
// for enablement. A non-nil Span must be used by a single goroutine
// (concurrency is expressed by child spans, not by sharing one).
type Span struct {
	sink     Sink
	name     string
	start    time.Time
	id       uint64
	parentID uint64
	depth    int
	attrs    []Attr
	err      string
	ended    bool
}

type (
	spanKey struct{}
	sinkKey struct{}
)

var lastID atomic.Uint64

// WithSink returns a context whose spans are recorded into sink.
// Installing a nil sink disables tracing for the subtree.
func WithSink(ctx context.Context, sink Sink) context.Context {
	return context.WithValue(ctx, sinkKey{}, sink)
}

// SinkFrom returns the sink spans started from ctx would record to
// (nil when tracing is disabled).
func SinkFrom(ctx context.Context) Sink {
	if sp, ok := ctx.Value(spanKey{}).(*Span); ok && sp != nil {
		return sp.sink
	}
	if s, ok := ctx.Value(sinkKey{}).(Sink); ok {
		return s
	}
	return nil
}

// Start begins a span named name as a child of the span in ctx (or a
// root when there is none) and returns a derived context carrying the
// new span. When ctx has no sink installed it returns (ctx, nil)
// without allocating — the disabled fast path.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	var (
		sink     Sink
		parentID uint64
		depth    int
	)
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		sink, parentID, depth = parent.sink, parent.id, parent.depth+1
	} else if s, ok := ctx.Value(sinkKey{}).(Sink); ok {
		sink = s
	}
	if sink == nil {
		return ctx, nil
	}
	sp := &Span{
		sink:     sink,
		name:     name,
		start:    time.Now(),
		id:       lastID.Add(1),
		parentID: parentID,
		depth:    depth,
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SetInt attaches an integer counter to the span.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, v})
}

// SetFloat attaches a float value to the span.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, v})
}

// SetString attaches a string value to the span.
func (s *Span) SetString(key, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, v})
}

// End completes the span and records it into the sink. Ending twice
// records once.
func (s *Span) End() { s.EndErr(nil) }

// EndErr completes the span, tagging it with err when non-nil — the
// usual pattern is `defer func() { sp.EndErr(err) }()` over a named
// return.
func (s *Span) EndErr(err error) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	if err != nil {
		s.err = err.Error()
	}
	s.sink.Record(&SpanData{
		ID:       s.id,
		ParentID: s.parentID,
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Depth:    s.depth,
		Attrs:    s.attrs,
		Err:      s.err,
	})
}
