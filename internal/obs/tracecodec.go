package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// The trace codec: a compact, versioned binary encoding of one
// completed flight record (request outcome + stage timings + bounded
// span-tree summary).  It is the payload format of the persistent
// trace store — JSON would triple the bytes for records that are
// written on every sampled request and only read when an operator
// comes asking.
//
// Layout (all integers varint-encoded, strings as uvarint length +
// bytes):
//
//	version(1) seq id trace span parentSpan timeUnixNano method
//	endpoint status micros digest plan flags(1: bit0 cacheHit,
//	bit1 storeHit) allocBytes gcAssistMicros err
//	nStages {name micros}* nSpans {name micros depth err}*
//
// The contract that matters downstream: EncodeTrace is deterministic
// in the record value, and DecodeTrace(EncodeTrace(r)) normalizes the
// time field to UTC wall time.  The serve layer renders every trace —
// fresh from the flight ring or read back from disk after a restart —
// through a decode, so the two sources produce byte-identical JSON.

// TraceCodecVersion is the current encoding version; the version byte
// leads every payload so a store written by a newer build fails loud
// (ErrTraceCodec) instead of decoding garbage.
const TraceCodecVersion = 1

// ErrTraceCodec marks a payload that does not decode: unknown
// version, truncated field, or implausible length.
var ErrTraceCodec = errors.New("obs: malformed trace payload")

// traceCodecMaxStr bounds one string field so a corrupt length cannot
// demand a giant allocation mid-decode.
const traceCodecMaxStr = 1 << 16

// EncodeTrace appends the record's binary encoding to buf (pass nil
// for a fresh slice) and returns the extended slice.
func EncodeTrace(buf []byte, r *FlightRecord) []byte {
	buf = append(buf, TraceCodecVersion)
	buf = binary.AppendUvarint(buf, r.Seq)
	buf = appendTraceString(buf, r.ID)
	buf = appendTraceString(buf, r.Trace)
	buf = appendTraceString(buf, r.Span)
	buf = appendTraceString(buf, r.ParentSpan)
	buf = binary.AppendVarint(buf, r.Time.UnixNano())
	buf = appendTraceString(buf, r.Method)
	buf = appendTraceString(buf, r.Endpoint)
	buf = binary.AppendVarint(buf, int64(r.Status))
	buf = binary.AppendVarint(buf, r.Micros)
	buf = appendTraceString(buf, r.Digest)
	buf = appendTraceString(buf, r.Plan)
	var flags byte
	if r.CacheHit {
		flags |= 1
	}
	if r.StoreHit {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.AppendVarint(buf, r.AllocBytes)
	buf = binary.AppendVarint(buf, r.GCAssistMicros)
	buf = appendTraceString(buf, r.Err)
	buf = binary.AppendUvarint(buf, uint64(len(r.Stages)))
	for _, st := range r.Stages {
		buf = appendTraceString(buf, st.Name)
		buf = binary.AppendVarint(buf, st.Micros)
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Spans)))
	for _, sp := range r.Spans {
		buf = appendTraceString(buf, sp.Name)
		buf = binary.AppendVarint(buf, sp.Micros)
		buf = binary.AppendVarint(buf, int64(sp.Depth))
		buf = appendTraceString(buf, sp.Err)
	}
	return buf
}

// DecodeTrace decodes one payload produced by EncodeTrace.  The
// record's Time comes back as UTC wall time (the monotonic reading
// does not survive serialization, by design — see the package comment
// on normalization).
func DecodeTrace(b []byte) (*FlightRecord, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrTraceCodec)
	}
	if b[0] != TraceCodecVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrTraceCodec, b[0], TraceCodecVersion)
	}
	d := traceDecoder{b: b[1:]}
	var r FlightRecord
	r.Seq = d.uvarint()
	r.ID = d.str()
	r.Trace = d.str()
	r.Span = d.str()
	r.ParentSpan = d.str()
	r.Time = time.Unix(0, d.varint()).UTC()
	r.Method = d.str()
	r.Endpoint = d.str()
	r.Status = int(d.varint())
	r.Micros = d.varint()
	r.Digest = d.str()
	r.Plan = d.str()
	flags := d.byte()
	r.CacheHit = flags&1 != 0
	r.StoreHit = flags&2 != 0
	r.AllocBytes = d.varint()
	r.GCAssistMicros = d.varint()
	r.Err = d.str()
	if n := d.count(); n > 0 {
		r.Stages = make([]FlightStage, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			var st FlightStage
			st.Name = d.str()
			st.Micros = d.varint()
			r.Stages = append(r.Stages, st)
		}
	}
	if n := d.count(); n > 0 {
		r.Spans = make([]FlightSpan, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			var sp FlightSpan
			sp.Name = d.str()
			sp.Micros = d.varint()
			sp.Depth = int(d.varint())
			sp.Err = d.str()
			r.Spans = append(r.Spans, sp)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrTraceCodec, len(d.b))
	}
	return &r, nil
}

func appendTraceString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// traceDecoder consumes the payload front-to-back, latching the first
// error so field reads stay unconditional.
type traceDecoder struct {
	b   []byte
	err error
}

func (d *traceDecoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s", ErrTraceCodec, what)
	}
}

func (d *traceDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *traceDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *traceDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail("byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *traceDecoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > traceCodecMaxStr || n > uint64(len(d.b)) {
		d.fail("string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// count reads a collection length, rejecting values that could not
// possibly fit the remaining bytes (each element costs ≥ 2 bytes).
func (d *traceDecoder) count() uint64 {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)) {
		d.fail("count")
		return 0
	}
	return n
}
