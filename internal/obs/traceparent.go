package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
)

// W3C Trace Context (traceparent) support: the wire format that lets a
// span tree survive a process boundary.  A floorplanner loop calling
// maest-serve — or a maest-router fronting a shard pool — sends
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// and every hop parses it, roots its own span tree under the incoming
// trace, and re-injects its own span id as the parent for the next
// hop.  The types here are plain values (no allocation to parse or
// compare), so the disabled-telemetry path can stay zero-alloc by
// simply never calling them.

// TraceparentHeader is the canonical W3C header name (HTTP headers
// are case-insensitive; the spec spells it lowercase).
const TraceparentHeader = "traceparent"

// TraceContext is one hop's position in a distributed trace: the
// trace-id shared by every hop, this hop's span-id, and the W3C trace
// flags (bit 0 = sampled).  The zero value is invalid.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

// ErrTraceparent reports a header that does not parse as a W3C
// traceparent.  Callers treat it as "no incoming trace" and mint a
// fresh root.
var ErrTraceparent = errors.New("obs: malformed traceparent header")

// ParseTraceparent parses a W3C traceparent header value.  It is
// strict where the spec is strict: lowercase hex only, version 0xff
// rejected, all-zero trace-id or parent-id rejected, version 00
// exactly 55 bytes.  Unknown future versions are accepted when their
// first four fields parse and any extra content is dash-separated.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, ErrTraceparent
	}
	ver, ok := hexByte(s[0], s[1])
	if !ok || ver == 0xff {
		return tc, ErrTraceparent
	}
	if ver == 0 && len(s) != 55 {
		return tc, ErrTraceparent
	}
	if len(s) > 55 && s[55] != '-' {
		return tc, ErrTraceparent
	}
	var zero bool
	if !hexField(s[3:35], tc.TraceID[:]) {
		return tc, ErrTraceparent
	}
	zero = true
	for _, b := range tc.TraceID {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		return tc, ErrTraceparent
	}
	if !hexField(s[36:52], tc.SpanID[:]) {
		return TraceContext{}, ErrTraceparent
	}
	zero = true
	for _, b := range tc.SpanID {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		return TraceContext{}, ErrTraceparent
	}
	flags, ok := hexByte(s[53], s[54])
	if !ok {
		return TraceContext{}, ErrTraceparent
	}
	tc.Flags = flags
	return tc, nil
}

// hexField decodes exactly len(dst)*2 lowercase hex digits into dst.
func hexField(s string, dst []byte) bool {
	for i := range dst {
		b, ok := hexByte(s[2*i], s[2*i+1])
		if !ok {
			return false
		}
		dst[i] = b
	}
	return true
}

// hexByte decodes two lowercase hex digits (the spec forbids
// uppercase) into one byte.
func hexByte(hi, lo byte) (byte, bool) {
	h, ok := hexNibble(hi)
	if !ok {
		return 0, false
	}
	l, ok := hexNibble(lo)
	if !ok {
		return 0, false
	}
	return h<<4 | l, true
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// Valid reports whether the context carries a usable (non-zero)
// trace-id and span-id.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// Sampled reports the W3C sampled flag (bit 0 of Flags).
func (tc TraceContext) Sampled() bool { return tc.Flags&1 == 1 }

// Traceparent renders the context as a version-00 W3C header value.
func (tc TraceContext) Traceparent() string {
	var buf [55]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hex.Encode(buf[3:35], tc.TraceID[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], tc.SpanID[:])
	buf[52] = '-'
	const digits = "0123456789abcdef"
	buf[53] = digits[tc.Flags>>4]
	buf[54] = digits[tc.Flags&0xf]
	return string(buf[:])
}

// TraceIDString returns the 32-hex-digit trace id.
func (tc TraceContext) TraceIDString() string { return hex.EncodeToString(tc.TraceID[:]) }

// SpanIDString returns the 16-hex-digit span id.
func (tc TraceContext) SpanIDString() string { return hex.EncodeToString(tc.SpanID[:]) }

// NewTraceContext mints a fresh sampled root: random trace-id and
// span-id from crypto/rand.  The all-zero ids the spec forbids are
// statistically unreachable but guarded anyway (a broken entropy
// source degrades to a fixed non-zero id rather than an invalid one).
func NewTraceContext() TraceContext {
	tc := TraceContext{Flags: 1}
	var b [24]byte
	rand.Read(b[:]) //nolint:errcheck // never fails on supported platforms; zero guard below
	copy(tc.TraceID[:], b[:16])
	copy(tc.SpanID[:], b[16:])
	if tc.TraceID == [16]byte{} {
		tc.TraceID[15] = 1
	}
	if tc.SpanID == [8]byte{} {
		tc.SpanID[7] = 1
	}
	return tc
}

// Child returns a context for the next hop or child operation: same
// trace-id and flags, fresh random span-id.
func (tc TraceContext) Child() TraceContext {
	child := tc
	var b [8]byte
	rand.Read(b[:]) //nolint:errcheck // see NewTraceContext
	child.SpanID = b
	if child.SpanID == [8]byte{} {
		child.SpanID[7] = 1
	}
	return child
}

type traceKey struct{}

// WithTraceContext returns a context carrying tc; downstream clients
// (internal/client, the serve proxy) read it back to inject the
// traceparent header into outgoing requests.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceKey{}, tc)
}

// TraceContextFrom returns the trace context installed in ctx, if any.
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}
