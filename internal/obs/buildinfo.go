package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

var buildInfoOnce sync.Once

// RegisterBuildInfo registers the maest_build_info gauge into the
// Default registry: the standard Prometheus info-metric convention — a
// constant 1 whose labels carry the Go runtime version and the module
// version from the embedded build metadata.  Safe to call from every
// entry point; registration happens once.
func RegisterBuildInfo() {
	buildInfoOnce.Do(func() {
		version := "unknown"
		if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
			version = bi.Main.Version
		}
		name := fmt.Sprintf("maest_build_info{goversion=%q,version=%q}",
			runtime.Version(), version)
		DefGauge(name, "build information about this maest binary (value is constant 1)").Set(1)
	})
}
