package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestFlightBasics(t *testing.T) {
	f := NewFlight(4)
	if f.Cap() != 4 || f.Len() != 0 || f.Total() != 0 {
		t.Fatalf("fresh recorder: cap=%d len=%d total=%d", f.Cap(), f.Len(), f.Total())
	}
	for i := 0; i < 3; i++ {
		f.Record(FlightRecord{Endpoint: "/v1/estimate", Micros: int64(i)})
	}
	if f.Len() != 3 || f.Total() != 3 {
		t.Fatalf("after 3 records: len=%d total=%d", f.Len(), f.Total())
	}
	snap := f.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	for i, r := range snap {
		if r.Seq != uint64(i) || r.Micros != int64(i) {
			t.Fatalf("snapshot[%d] = seq %d us %d", i, r.Seq, r.Micros)
		}
	}
}

func TestFlightEvictsOldestInOrder(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 10; i++ {
		f.Record(FlightRecord{Micros: int64(i)})
	}
	if f.Len() != 4 || f.Total() != 10 {
		t.Fatalf("len=%d total=%d, want 4/10", f.Len(), f.Total())
	}
	snap := f.Snapshot()
	// The ring holds exactly the newest 4 records, oldest first, with
	// contiguous sequence numbers — eviction happened in intake order.
	for i, r := range snap {
		wantSeq := uint64(6 + i)
		if r.Seq != wantSeq || r.Micros != int64(wantSeq) {
			t.Fatalf("snapshot[%d] = seq %d us %d, want seq %d", i, r.Seq, r.Micros, wantSeq)
		}
	}
}

func TestFlightSlowest(t *testing.T) {
	f := NewFlight(8)
	durations := []int64{30, 10, 50, 20, 40}
	for _, d := range durations {
		f.Record(FlightRecord{Micros: d})
	}
	top := f.Slowest(3)
	if len(top) != 3 || top[0].Micros != 50 || top[1].Micros != 40 || top[2].Micros != 30 {
		t.Fatalf("slowest = %+v", top)
	}
	if got := f.Slowest(100); len(got) != 5 {
		t.Fatalf("over-asking returned %d records, want all 5", len(got))
	}
	if got := f.Slowest(-1); len(got) != 0 {
		t.Fatalf("negative k returned %d records", len(got))
	}
}

func TestFlightDisabled(t *testing.T) {
	var f *Flight = NewFlight(0)
	if f != nil {
		t.Fatal("capacity 0 should return the nil disabled recorder")
	}
	if seq := f.Record(FlightRecord{}); seq != 0 {
		t.Fatalf("nil Record returned seq %d", seq)
	}
	if f.Len() != 0 || f.Cap() != 0 || f.Total() != 0 || f.Snapshot() != nil || len(f.Slowest(3)) != 0 {
		t.Fatal("nil recorder is not a clean no-op")
	}
}

// TestFlightRecordZeroAllocs pins the recording cost: both the
// disabled (nil) path and the enabled path copy into pre-allocated
// storage without allocating, so the recorder can stay on in the
// request hot loop.
func TestFlightRecordZeroAllocs(t *testing.T) {
	var disabled *Flight
	rec := FlightRecord{Endpoint: "/v1/estimate", Status: 200, Micros: 12}
	if allocs := testing.AllocsPerRun(1000, func() { disabled.Record(rec) }); allocs != 0 {
		t.Fatalf("disabled Record allocates %.1f objects per op, want 0", allocs)
	}
	enabled := NewFlight(64)
	if allocs := testing.AllocsPerRun(1000, func() { enabled.Record(rec) }); allocs != 0 {
		t.Fatalf("enabled Record allocates %.1f objects per op, want 0", allocs)
	}
}

// TestFlightConcurrentHammer drives the ring from many goroutines
// (with concurrent snapshot readers) under the race detector: every
// record is accepted, nothing blocks, and the survivors are exactly
// the newest capacity records in eviction order.
func TestFlightConcurrentHammer(t *testing.T) {
	const (
		writers = 8
		per     = 2000
		cap     = 128
	)
	f := NewFlight(cap)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f.Snapshot()
					f.Slowest(10)
				}
			}
		}()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Record(FlightRecord{Endpoint: "/v1/estimate", Status: 200, Micros: int64(w*per + i)})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hammer took %s — recording is blocking the request path", elapsed)
	}
	if f.Total() != writers*per {
		t.Fatalf("total = %d, want %d (records were dropped or double-counted)", f.Total(), writers*per)
	}
	snap := f.Snapshot()
	if len(snap) != cap {
		t.Fatalf("snapshot len = %d, want %d", len(snap), cap)
	}
	for i, r := range snap {
		want := uint64(writers*per - cap + i)
		if r.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d — eviction order broken", i, r.Seq, want)
		}
	}
}

func TestCollectSummarizesSpanTree(t *testing.T) {
	c := NewCollect(4)
	ctx := WithSink(context.Background(), c)
	ctx, root := Start(ctx, "request")
	_, child := Start(ctx, "parse")
	child.End()
	_, failing := Start(ctx, "estimate")
	failing.EndErr(context.DeadlineExceeded)
	root.End()

	spans := c.Spans()
	if len(spans) != 3 {
		t.Fatalf("collected %d spans, want 3", len(spans))
	}
	// Completion order: children end before the root.
	if spans[0].Name != "parse" || spans[0].Depth != 1 {
		t.Fatalf("spans[0] = %+v", spans[0])
	}
	if spans[1].Name != "estimate" || spans[1].Err == "" {
		t.Fatalf("spans[1] = %+v (error not captured)", spans[1])
	}
	if spans[2].Name != "request" || spans[2].Depth != 0 {
		t.Fatalf("spans[2] = %+v", spans[2])
	}
}

func TestCollectBoundsCapacity(t *testing.T) {
	c := NewCollect(2)
	ctx := WithSink(context.Background(), c)
	for i := 0; i < 5; i++ {
		_, sp := Start(ctx, "s")
		sp.End()
	}
	if len(c.Spans()) != 2 || c.Dropped() != 3 {
		t.Fatalf("kept %d dropped %d, want 2/3", len(c.Spans()), c.Dropped())
	}
}
