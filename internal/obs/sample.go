package obs

import (
	"encoding/binary"
	"sync/atomic"
)

// Tail sampling: the policy that decides which completed requests are
// worth persisting.  Head sampling (decide at the start) cannot know
// which requests will matter; deciding at the end — when the outcome
// and duration are known — keeps every error, every slow-tail request,
// and a deterministic baseline slice of ordinary traffic.
//
// The baseline keep is derived from the trace id, not a random draw:
// uint64(first 8 bytes of the trace id) < rate·2⁶⁴.  Random trace ids
// make this an unbiased rate, and determinism buys two properties a
// coin flip cannot: every hop of a distributed trace makes the same
// decision (a router and its shard keep or drop a trace together,
// so stitched trees are never half-persisted), and tests can pick
// trace ids on either side of the threshold.
//
// A nil *TailSampler is the disabled policy — Keep answers false with
// no allocation and no atomic traffic — matching the nil *Flight and
// nil *Span conventions everywhere else in this package.

// Sampler metrics, process-global like every obs metric family.
var (
	mSampleSeen     = DefCounter("maest_trace_sample_seen_total", "completed requests offered to the tail sampler")
	mSampleKept     = DefCounter("maest_trace_sample_kept_total", "requests the tail sampler kept, any reason")
	mSampleErrors   = DefCounter("maest_trace_sample_kept_error_total", "requests kept because they failed")
	mSampleSlow     = DefCounter("maest_trace_sample_kept_slow_total", "requests kept because they crossed the slow threshold")
	mSampleBaseline = DefCounter("maest_trace_sample_kept_baseline_total", "requests kept by the deterministic baseline rate")
)

// SamplePolicy configures a TailSampler.
type SamplePolicy struct {
	// Rate is the baseline keep fraction in [0, 1] for requests that
	// are neither errors nor slow.  0 keeps none of them; 1 keeps all.
	Rate float64
	// SlowMicros is the duration at or above which a request is always
	// kept.  0 disables the slow-tail rule.
	SlowMicros int64
	// KeepErrors keeps every failed request regardless of Rate.
	KeepErrors bool
}

// SampleVerdict says why a request was kept.
type SampleVerdict uint8

const (
	// SampleDrop is the "not kept" verdict.
	SampleDrop SampleVerdict = iota
	// SampleError kept the request because it failed.
	SampleError
	// SampleSlow kept the request because it crossed the slow threshold.
	SampleSlow
	// SampleBaseline kept the request by the deterministic baseline rate.
	SampleBaseline
)

// String names the verdict for rendering.
func (v SampleVerdict) String() string {
	switch v {
	case SampleError:
		return "error"
	case SampleSlow:
		return "slow"
	case SampleBaseline:
		return "baseline"
	}
	return "drop"
}

// TailSampler applies one SamplePolicy.  All methods are safe for
// concurrent use; a nil *TailSampler keeps nothing and costs nothing.
type TailSampler struct {
	policy    SamplePolicy
	threshold uint64 // baseline keep when uint64(trace[:8]) < threshold

	seen, kept           atomic.Int64
	errors, slow, random atomic.Int64
}

// NewTailSampler returns a sampler for the policy, or nil (disabled)
// when the policy keeps nothing.
func NewTailSampler(p SamplePolicy) *TailSampler {
	if p.Rate <= 0 && p.SlowMicros <= 0 && !p.KeepErrors {
		return nil
	}
	t := &TailSampler{policy: p}
	switch {
	case p.Rate >= 1:
		t.threshold = ^uint64(0)
	case p.Rate > 0:
		t.threshold = uint64(p.Rate * float64(1<<63) * 2)
	}
	return t
}

// Policy returns the sampler's policy (zero value when disabled).
func (t *TailSampler) Policy() SamplePolicy {
	if t == nil {
		return SamplePolicy{}
	}
	return t.policy
}

// Keep decides a completed request's fate: trace is the request's
// trace id, micros its duration, failed whether it ended in an error.
// The rules compose most-severe first — error, then slow, then the
// baseline — so the verdict names the strongest reason.  A nil sampler
// answers SampleDrop without touching any counter.
func (t *TailSampler) Keep(trace [16]byte, micros int64, failed bool) SampleVerdict {
	if t == nil {
		return SampleDrop
	}
	t.seen.Add(1)
	mSampleSeen.Inc()
	v := SampleDrop
	switch {
	case failed && t.policy.KeepErrors:
		v = SampleError
		t.errors.Add(1)
		mSampleErrors.Inc()
	case t.policy.SlowMicros > 0 && micros >= t.policy.SlowMicros:
		v = SampleSlow
		t.slow.Add(1)
		mSampleSlow.Inc()
	case t.threshold == ^uint64(0) || binary.BigEndian.Uint64(trace[:8]) < t.threshold:
		v = SampleBaseline
		t.random.Add(1)
		mSampleBaseline.Inc()
	default:
		return SampleDrop
	}
	t.kept.Add(1)
	mSampleKept.Inc()
	return v
}

// SampleStats is a point-in-time snapshot of one sampler's counters.
type SampleStats struct {
	Seen     int64 `json:"seen"`
	Kept     int64 `json:"kept"`
	Dropped  int64 `json:"dropped"`
	Errors   int64 `json:"kept_error"`
	Slow     int64 `json:"kept_slow"`
	Baseline int64 `json:"kept_baseline"`
}

// Stats snapshots the sampler (zero value when disabled).
func (t *TailSampler) Stats() SampleStats {
	if t == nil {
		return SampleStats{}
	}
	seen, kept := t.seen.Load(), t.kept.Load()
	return SampleStats{
		Seen:     seen,
		Kept:     kept,
		Dropped:  seen - kept,
		Errors:   t.errors.Load(),
		Slow:     t.slow.Load(),
		Baseline: t.random.Load(),
	}
}
