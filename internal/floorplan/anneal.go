package floorplan

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"maest/internal/congest"
	"maest/internal/engine"
	"maest/internal/obs"
)

// Annealer metrics, alongside the planner metrics in floorplan.go:
// move throughput tells whether the budget is spent in the tree
// machinery or the congestion engine, and the memo counters expose
// how well the per-(module, rows) routability cache is amortizing.
var (
	mAnnealIters    = obs.DefCounter("maest_floorplan_anneal_iterations_total", "simulated-annealing moves tried")
	mAnnealAccepted = obs.DefCounter("maest_floorplan_anneal_accepted_total", "annealing moves accepted")
	mRoutLookups    = obs.DefCounter("maest_floorplan_rout_lookups_total", "per-(module, rows) routability queries during search")
	mRoutMemoHits   = obs.DefCounter("maest_floorplan_rout_memo_hits_total", "routability queries answered by the search memo")
)

// planner is the slice of engine.Plan the search core needs: the
// per-channel congestion question.  An interface so tests can score
// synthetic congestion without compiling circuits.
type planner interface {
	Congestion(ctx context.Context, opts ...engine.Option) (*congest.Map, error)
}

// PlanModule pairs a module name with its compiled engine plan — the
// Plan-driven planner's input.  The plan answers both questions the
// search asks: shape candidates (Plan.Candidates) and per-channel
// overflow risk (Plan.Congestion, backed by the shared distribution
// memo).
type PlanModule struct {
	Name string
	Plan *engine.Plan
}

// Default search knobs.  DefaultBudget is sized so a ten-module chip
// anneals in well under a second; DefaultCandidates matches the §7
// experiment's shape-candidate count.
const (
	DefaultBudget     = 2000
	DefaultCandidates = 5
	DefaultSeed       = 1
)

// config is the resolved option set.
type config struct {
	wireWeight    float64
	congestWeight float64
	seed          int64
	budget        int
	candidates    int
	trackSharing  bool
	progress      func(Progress)
}

// Option tunes the Plan-driven planner.
type Option func(*config)

// WithCongestWeight sets the routability weight: the cost of a
// candidate plan is multiplied by (1 + w·routability), where
// routability is the pin-weighted Σ P(overflow) over every module's
// channels at its chosen row count.  Zero (the default) turns
// congestion scoring off.
func WithCongestWeight(w float64) Option { return func(c *config) { c.congestWeight = w } }

// WithWireWeight sets the wire-length weight, the same trade
// PlanOptions.WireWeight expresses for the legacy path: the area term
// becomes area + w·wirelength·√area.  Zero (the default) scores pure
// area.
func WithWireWeight(w float64) Option { return func(c *config) { c.wireWeight = w } }

// WithSeed fixes the annealer's random source.  Plans are
// deterministic in (modules, nets, options, seed): the same inputs
// reproduce the same Plan byte for byte (see WritePlanText).
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithBudget sets the annealing move budget.  Zero or negative
// disables annealing, leaving the deterministic greedy pass (the
// legacy PlanChip behavior).
func WithBudget(n int) Option { return func(c *config) { c.budget = n } }

// WithCandidates sets how many shape candidates to request per module
// (clamped to the module's feasible row range).  Zero selects
// DefaultCandidates.
func WithCandidates(n int) Option { return func(c *config) { c.candidates = n } }

// WithTrackSharing toggles the §7 routing-track-sharing extension for
// candidate generation.  The Plan-driven planner defaults to on, the
// §7-extended configuration the iteration experiment uses.
func WithTrackSharing(on bool) Option { return func(c *config) { c.trackSharing = on } }

// WithProgress installs a progress callback, invoked once per anneal
// move (from the planning goroutine).  The job API uses it to surface
// iteration counts and the current best cost while a plan is being
// annealed; it must be cheap and must not block.
func WithProgress(fn func(Progress)) Option { return func(c *config) { c.progress = fn } }

// Progress is one annealing progress report.
type Progress struct {
	// Iteration counts moves tried so far (1-based); Budget is the
	// configured total.
	Iteration int
	Budget    int
	// Best is the lowest cost seen; Current is the cost of the
	// currently accepted plan.
	Best    float64
	Current float64
}

// PlanModules floor-plans compiled modules: shape candidates come
// from each module's engine.Plan, the slicing search minimizes
//
//	(area + wireWeight·wirelength·√area) · (1 + congestWeight·routability)
//
// and, with a positive budget, a simulated-annealing loop perturbs
// the module clustering order under a fixed seed.  Cancellation is
// checked every anneal move; ctx's error is returned as soon as it
// fires.  The routability term weights each module's Σ P(overflow)
// by its global-net pin count, so congestion in well-connected
// modules hurts more — the early-routability-assessment idea folded
// into the paper's slicing objective.
func PlanModules(ctx context.Context, chip string, mods []PlanModule, nets []Net, opts ...Option) (plan *Plan, err error) {
	cfg := config{
		seed:         DefaultSeed,
		budget:       DefaultBudget,
		candidates:   DefaultCandidates,
		trackSharing: true,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.candidates <= 0 {
		cfg.candidates = DefaultCandidates
	}

	ctx, sp := obs.Start(ctx, "floorplan.anneal")
	sp.SetString("chip", chip)
	sp.SetInt("modules", int64(len(mods)))
	sp.SetInt("budget", int64(cfg.budget))
	sp.SetInt("seed", cfg.seed)
	sp.SetFloat("congest_weight", cfg.congestWeight)
	defer func(t0 time.Time) {
		mPlanSec.Observe(time.Since(t0).Seconds())
		if err == nil {
			mPlans.Inc()
			mPlanBlock.Add(int64(len(plan.Blocks)))
			mPlanUtil.Observe(plan.Utilization())
			sp.SetFloat("cost", plan.Cost)
			sp.SetFloat("routability", plan.Routability)
			sp.SetInt("iterations", int64(plan.Stats.Iterations))
		}
		sp.EndErr(err)
	}(time.Now())

	ms, err := resolveModules(ctx, mods, nets, cfg)
	if err != nil {
		return nil, err
	}
	return run(ctx, chip, ms, nets, cfg)
}

// resolveModules validates the input and asks each module's plan for
// its shape candidates.
func resolveModules(ctx context.Context, mods []PlanModule, nets []Net, cfg config) ([]*mod, error) {
	if len(mods) == 0 {
		return nil, fmt.Errorf("%w: no modules", ErrPlan)
	}
	byName := make(map[string]*mod, len(mods))
	ms := make([]*mod, len(mods))
	for i, pm := range mods {
		if pm.Name == "" {
			return nil, fmt.Errorf("%w: module %d has no name", ErrPlan, i)
		}
		if pm.Plan == nil {
			return nil, fmt.Errorf("%w: module %q has no compiled plan", ErrPlan, pm.Name)
		}
		if byName[pm.Name] != nil {
			return nil, fmt.Errorf("%w: duplicate module %q", ErrPlan, pm.Name)
		}
		// Clamp the candidate request into the module's feasible row
		// range [1, N]; Plan.Candidates is strict and would refuse a
		// count the module cannot honor.
		count := cfg.candidates
		if n := pm.Plan.Stats().N; count > n {
			count = n
		}
		if count < 1 {
			count = 1
		}
		cands, err := pm.Plan.Candidates(ctx,
			engine.WithCandidates(count), engine.WithTrackSharing(cfg.trackSharing))
		if err != nil {
			return nil, fmt.Errorf("%w: module %q: %v", ErrPlan, pm.Name, err)
		}
		shapes := make([]shapeCand, len(cands))
		for si, c := range cands {
			shapes[si] = shapeCand{w: c.Width, h: c.Height, rows: c.Rows}
		}
		m := &mod{name: pm.Name, shapes: shapes, plan: pm.Plan}
		byName[pm.Name] = m
		ms[i] = m
	}
	for _, nt := range nets {
		for _, pin := range nt.Pins {
			m := byName[pin.Module]
			if m == nil {
				return nil, fmt.Errorf("%w: net %q references unknown module %q", ErrPlan, nt.Name, pin.Module)
			}
			m.pins++
		}
	}
	return ms, nil
}

// searcher carries one search's shared state: the routability memo
// (per module and row count — row choice is what the anneal varies,
// so the engine is asked about each (module, rows) pair once) and the
// effort counters.
type searcher struct {
	ctx    context.Context
	chip   string
	nets   []Net
	cfg    config
	byName map[string]*mod
	rout   map[routKey]float64
	stats  SearchStats
}

type routKey struct {
	name string
	rows int
}

// run is the shared search core behind both entry points: greedy
// clustering + slicing combination always, simulated annealing over
// the clustering order when the budget allows.
func run(ctx context.Context, chip string, ms []*mod, nets []Net, cfg config) (*Plan, error) {
	sc := &searcher{
		ctx:    ctx,
		chip:   chip,
		nets:   nets,
		cfg:    cfg,
		byName: make(map[string]*mod, len(ms)),
		rout:   map[routKey]float64{},
	}
	for _, m := range ms {
		sc.byName[m.name] = m
	}
	order := clusterOrder(ms, nets)
	best, err := sc.eval(order)
	if err != nil {
		return nil, err
	}
	sc.stats.InitialCost = best.Cost
	if cfg.budget > 0 && len(order) > 1 {
		if best, err = sc.anneal(order, best); err != nil {
			return nil, err
		}
	}
	sc.stats.FinalCost = best.Cost
	best.Stats = sc.stats
	if err := sc.fillCongestion(best); err != nil {
		return nil, err
	}
	return best, nil
}

// anneal perturbs the clustering order by pairwise swaps under
// Metropolis acceptance with geometric cooling.  Deterministic in the
// seed; cancellation is checked on every move.
func (sc *searcher) anneal(order []*mod, initial *Plan) (*Plan, error) {
	const (
		startTempFrac = 0.2  // initial temperature as a fraction of the initial cost
		endTempFrac   = 1e-4 // final temperature fraction: effectively greedy by the end
	)
	best, cur := initial, initial
	bestCost, curCost := initial.Cost, initial.Cost
	rng := rand.New(rand.NewSource(sc.cfg.seed))
	temp := curCost * startTempFrac
	cool := math.Pow(endTempFrac/startTempFrac, 1/float64(sc.cfg.budget))
	n := len(order)
	for it := 1; it <= sc.cfg.budget; it++ {
		if err := sc.ctx.Err(); err != nil {
			return nil, err
		}
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		order[i], order[j] = order[j], order[i]
		cand, err := sc.eval(order)
		if err != nil {
			return nil, err
		}
		delta := cand.Cost - curCost
		if delta <= 0 || (temp > 0 && rng.Float64() < math.Exp(-delta/temp)) {
			cur, curCost = cand, cand.Cost
			mAnnealAccepted.Inc()
			if curCost < bestCost {
				best, bestCost = cand, curCost
			}
		} else {
			order[i], order[j] = order[j], order[i]
		}
		temp *= cool
		sc.stats.Iterations = it
		mAnnealIters.Inc()
		if sc.cfg.progress != nil {
			sc.cfg.progress(Progress{
				Iteration: it, Budget: sc.cfg.budget,
				Best: bestCost, Current: curCost,
			})
		}
	}
	_ = cur
	return best, nil
}

// eval builds and scores one plan from a module order: pareto'd leaf
// shapes → balanced slicing tree → combined shape lists → the
// cheapest root realization under the configured objective.
func (sc *searcher) eval(order []*mod) (*Plan, error) {
	sc.stats.Evals++
	leaves := make([]*node, len(order))
	for i, m := range order {
		n := &node{leaf: m}
		for si, s := range m.shapes {
			n.combos = append(n.combos, combo{w: s.w, h: s.h, shapeIdx: si})
		}
		n.combos = pareto(n.combos)
		leaves[i] = n
	}
	root := buildTree(leaves)
	combineAll(root)
	if len(root.combos) == 0 {
		return nil, fmt.Errorf("%w: no feasible shape combination", ErrPlan)
	}
	mkPlan := func(idx int) *Plan {
		plan := &Plan{Chip: sc.chip, byName: map[string]*Placed{}}
		plan.Width = root.combos[idx].w
		plan.Height = root.combos[idx].h
		realize(root, idx, 0, 0, plan)
		plan.WireLength = wireLength(sc.nets, plan)
		return plan
	}
	if sc.cfg.wireWeight <= 0 && sc.cfg.congestWeight <= 0 {
		// Pure minimum area: one realization, the legacy PlanChip
		// behavior (first strictly-smaller index wins ties).
		best := 0
		for i, c := range root.combos {
			if c.w*c.h < root.combos[best].w*root.combos[best].h {
				best = i
			}
		}
		plan := mkPlan(best)
		plan.Cost = plan.Area()
		return plan, nil
	}
	// Weighted objective: realize every Pareto root shape and score
	// each.  The √area factor keeps area and wire length commensurable
	// across chip sizes; the congestion factor scales the whole
	// geometric cost so routability trades against silicon directly.
	var best *Plan
	bestScore := math.Inf(1)
	for i := range root.combos {
		p := mkPlan(i)
		if err := sc.score(p); err != nil {
			return nil, err
		}
		if p.Cost < bestScore {
			best, bestScore = p, p.Cost
		}
	}
	return best, nil
}

// score computes a realized plan's objective value, filling Cost and
// Routability.
func (sc *searcher) score(p *Plan) error {
	cost := p.Area()
	if sc.cfg.wireWeight > 0 {
		cost += sc.cfg.wireWeight * p.WireLength * math.Sqrt(p.Area())
	}
	if sc.cfg.congestWeight > 0 {
		r, err := sc.routability(p)
		if err != nil {
			return err
		}
		p.Routability = r
		cost *= 1 + sc.cfg.congestWeight*r
	}
	p.Cost = cost
	return nil
}

// routability sums each Plan-backed module's channel overflow risk at
// its chosen row count, weighted by the module's global-net pin count
// (the channels a global net crosses belong to the modules it pins).
// Memoized per (module, rows): the anneal revisits the same row
// choices constantly, and the engine's congestion answer for a pair
// never changes.
func (sc *searcher) routability(p *Plan) (float64, error) {
	total := 0.0
	for _, b := range p.Blocks {
		m := sc.byName[b.Name]
		if m == nil || m.plan == nil || m.pins == 0 || b.Rows < 1 {
			continue
		}
		k := routKey{name: b.Name, rows: b.Rows}
		sc.stats.RoutLookups++
		mRoutLookups.Inc()
		risk, ok := sc.rout[k]
		if ok {
			sc.stats.RoutMemoHits++
			mRoutMemoHits.Inc()
		} else {
			cm, err := m.plan.Congestion(sc.ctx, engine.WithRows(b.Rows))
			if err != nil {
				return 0, err
			}
			for _, ch := range cm.Channels {
				risk += ch.POverflow
			}
			sc.rout[k] = risk
		}
		total += float64(m.pins) * risk
	}
	return total, nil
}

// fillCongestion records the winning plan's per-channel overflow risk
// for every Plan-backed module — the detail clients of the job API
// read off the final answer.  The engine memoizes per (rows, knobs),
// so these lookups are hits when congestion scoring already ran.
func (sc *searcher) fillCongestion(p *Plan) error {
	for _, b := range p.Blocks {
		m := sc.byName[b.Name]
		if m == nil || m.plan == nil || b.Rows < 1 {
			continue
		}
		cm, err := m.plan.Congestion(sc.ctx, engine.WithRows(b.Rows))
		if err != nil {
			return err
		}
		mc := ModuleCongest{Module: b.Name, Rows: b.Rows}
		for _, ch := range cm.Channels {
			mc.Channels = append(mc.Channels, ChannelRisk{Index: ch.Index, POverflow: ch.POverflow})
			mc.POverflowSum += ch.POverflow
		}
		p.Congestion = append(p.Congestion, mc)
	}
	return nil
}
