package floorplan

import (
	"fmt"
	"math"

	"maest/internal/db"
	"maest/internal/tech"
)

// Global routing: after the floor plan fixes the module slots, the
// chip-level nets still need wiring area between the modules.  The
// paper's database carries exactly these "global interconnections
// for the whole chip" (§3); GlobalRoute estimates their demand on a
// coarse congestion grid so a floor plan can be judged by wiring
// feasibility, not area alone.

// GlobalRouteResult reports the chip-level wiring estimate.
type GlobalRouteResult struct {
	// Grid is the bin count per axis.
	Grid int
	// WireLength is the total routed length in λ (L-shaped routes
	// over a star topology per net).
	WireLength float64
	// Usage[i][j] is the wire length crossing bin (i, j).
	Usage [][]float64
	// MaxCongestion is the worst bin's demanded tracks divided by
	// the bin's track capacity at the process pitch.
	MaxCongestion float64
	// WiringArea is WireLength × track pitch — the extra area a
	// channel-based chip assembly would add between modules.
	WiringArea float64
}

// GlobalRoute routes every database net over the plan with L-shaped
// (one-bend) star routes from each net's first pin, accumulating
// usage on a grid×grid congestion map.
func GlobalRoute(d *db.Database, plan *Plan, p *tech.Process, grid int) (*GlobalRouteResult, error) {
	if grid < 1 {
		return nil, fmt.Errorf("%w: grid %d < 1", ErrPlan, grid)
	}
	if plan.Width <= 0 || plan.Height <= 0 {
		return nil, fmt.Errorf("%w: degenerate plan %gx%g", ErrPlan, plan.Width, plan.Height)
	}
	res := &GlobalRouteResult{Grid: grid}
	res.Usage = make([][]float64, grid)
	for i := range res.Usage {
		res.Usage[i] = make([]float64, grid)
	}
	binW := plan.Width / float64(grid)
	binH := plan.Height / float64(grid)

	center := func(name string) (float64, float64, bool) {
		b := plan.BlockByName(name)
		if b == nil {
			return 0, 0, false
		}
		return b.X + b.W/2, b.Y + b.H/2, true
	}
	for _, net := range d.Nets {
		var sx, sy float64
		first := true
		for _, pin := range net.Pins {
			x, y, ok := center(pin.Module)
			if !ok {
				return nil, fmt.Errorf("%w: net %q references unplaced module %q",
					ErrPlan, net.Name, pin.Module)
			}
			if first {
				sx, sy = x, y
				first = false
				continue
			}
			// L-route: horizontal at sy from sx to x, then vertical
			// at x from sy to y.
			res.addSegment(sx, sy, x, sy, binW, binH)
			res.addSegment(x, sy, x, y, binW, binH)
			res.WireLength += math.Abs(x-sx) + math.Abs(y-sy)
		}
	}
	// Congestion: a bin offers roughly binW/pitch horizontal tracks
	// across binH of height; demanded tracks in a bin ≈ usage/binW
	// horizontal-equivalent wires, each at one pitch.
	pitch := float64(p.TrackPitch)
	capacity := binW * binH / pitch // total wire length a bin can host
	if capacity > 0 {
		for i := range res.Usage {
			for j := range res.Usage[i] {
				cong := res.Usage[i][j] / capacity
				if cong > res.MaxCongestion {
					res.MaxCongestion = cong
				}
			}
		}
	}
	res.WiringArea = res.WireLength * pitch
	return res, nil
}

// addSegment spreads an axis-aligned segment's length over the bins
// it crosses.
func (r *GlobalRouteResult) addSegment(x0, y0, x1, y1, binW, binH float64) {
	if x0 == x1 && y0 == y1 {
		return
	}
	steps := 32 // fine enough for coarse congestion maps
	dx := (x1 - x0) / float64(steps)
	dy := (y1 - y0) / float64(steps)
	segLen := math.Abs(x1-x0) + math.Abs(y1-y0)
	per := segLen / float64(steps)
	for s := 0; s < steps; s++ {
		x := x0 + dx*(float64(s)+0.5)
		y := y0 + dy*(float64(s)+0.5)
		i := clamp(int(x/binW), 0, r.Grid-1)
		j := clamp(int(y/binH), 0, r.Grid-1)
		r.Usage[i][j] += per
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// TotalUsage sums the congestion map; it equals WireLength by
// construction (verified by tests).
func (r *GlobalRouteResult) TotalUsage() float64 {
	sum := 0.0
	for i := range r.Usage {
		for j := range r.Usage[i] {
			sum += r.Usage[i][j]
		}
	}
	return sum
}
