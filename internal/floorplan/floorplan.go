// Package floorplan is the chip floor planner the estimator feeds
// (paper §1, refs. Mason [2] and Ulysses [3]): it takes module shape
// candidates plus global interconnections and produces a slicing
// floor plan, choosing one shape per module.  The planner runs off
// compiled engine.Plans (PlanModules: §4 shape candidates via
// Plan.Candidates, channel overflow risk via Plan.Congestion); the
// legacy internal/db entry points (PlanChip, PlanChipOpt) survive as
// thin shims over the same search core.  It also hosts the §7
// experiment measuring how estimate quality changes the number of
// floor-planning iterations.
package floorplan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"maest/internal/db"
	"maest/internal/obs"
)

// Floor-planner metrics: utilization tells whether the module shape
// estimates tile well; the latency histogram covers the §7
// iteration-loop budget.
var (
	mPlans     = obs.DefCounter("maest_floorplan_total", "completed floor plans")
	mPlanSec   = obs.DefHistogram("maest_floorplan_seconds", "floor-planning latency", obs.DefBuckets)
	mPlanUtil  = obs.DefHistogram("maest_floorplan_utilization_ratio", "chip area utilization of finished plans", obs.RatioBuckets)
	mPlanBlock = obs.DefCounter("maest_floorplan_modules_total", "modules placed by the floor planner")
)

// ErrPlan wraps floor-planning failures.
var ErrPlan = errors.New("floorplan: planning failed")

// Placed is one module's slot in the finished plan.
type Placed struct {
	Name       string
	X, Y, W, H float64
	// ShapeIndex is the index of the chosen candidate in the module's
	// shape list.
	ShapeIndex int
	// Rows is the standard-cell row count behind the chosen shape
	// (0 when the shape carries none, e.g. a naive square).
	Rows int
}

// Plan is a finished slicing floor plan.
type Plan struct {
	Chip   string
	Width  float64
	Height float64
	Blocks []Placed
	// WireLength is the half-perimeter length of the global nets over
	// block centres.
	WireLength float64
	// Routability is the pin-weighted Σ P(overflow) over the channels
	// of every Plan-backed module at its chosen row count — the
	// congestion term of the annealer's objective.  Zero when
	// congestion scoring was off or no module carried a plan.
	Routability float64
	// Cost is the objective value the planner minimized:
	// (area + wireWeight·wirelength·√area) · (1 + congestWeight·routability).
	Cost float64
	// Congestion details the winning plan's per-channel overflow risk
	// for every Plan-backed module (PlanModules path only).
	Congestion []ModuleCongest
	// Stats reports the search effort that produced the plan.
	Stats SearchStats

	byName map[string]*Placed
}

// ModuleCongest is one module's channel overflow risk in the winning
// plan, at the row count the planner chose for it.
type ModuleCongest struct {
	Module string
	Rows   int
	// POverflowSum is Σ P(overflow) over the module's channels.
	POverflowSum float64
	Channels     []ChannelRisk
}

// ChannelRisk is one routing channel's overflow probability.
type ChannelRisk struct {
	Index     int
	POverflow float64
}

// SearchStats reports how hard the planner worked.
type SearchStats struct {
	// Iterations is the number of anneal moves tried (0 for the
	// deterministic greedy path).
	Iterations int
	// Evals is the number of full cost evaluations (tree rebuild +
	// realization + scoring).
	Evals int
	// RoutLookups and RoutMemoHits count the per-(module, rows)
	// routability queries and how many were answered by the search's
	// memo instead of the engine.
	RoutLookups  int
	RoutMemoHits int
	// InitialCost and FinalCost bracket the anneal trajectory.
	InitialCost float64
	FinalCost   float64
}

// Area returns the chip bounding-box area.
func (p *Plan) Area() float64 { return p.Width * p.Height }

// Utilization returns Σ block areas / chip area.
func (p *Plan) Utilization() float64 {
	if p.Area() == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range p.Blocks {
		sum += b.W * b.H
	}
	return sum / p.Area()
}

// BlockByName returns the placed slot of a module, or nil.
func (p *Plan) BlockByName(name string) *Placed { return p.byName[name] }

// Net is one global interconnection between modules, the planner's
// own net shape (decoupled from internal/db so Plan-driven callers
// never build a database).
type Net struct {
	Name string
	Pins []NetPin
}

// NetPin is one connection of a global net.
type NetPin struct {
	Module string
	Port   string
}

// mod is the search core's view of one module: its candidate shapes
// plus, on the Plan-driven path, the compiled plan that answers
// congestion questions and the module's global-net pin count (its
// weight in the routability term).
type mod struct {
	name   string
	shapes []shapeCand
	plan   planner // nil on the legacy db path
	pins   int
}

// shapeCand is one candidate shape of a module.
type shapeCand struct {
	w, h float64
	rows int
}

// shape candidates carried through the slicing combination, with
// back-pointers for reconstruction.
type combo struct {
	w, h float64
	// leaf: shapeIdx ≥ 0.  internal: cut is 'v' or 'h', li/ri select
	// the child combos.
	shapeIdx int
	cut      byte
	li, ri   int
}

type node struct {
	// leaf
	leaf *mod
	// internal
	left, right *node
	combos      []combo
}

// PlanChip floor-plans an estimate database: modules are clustered by
// global connectivity into a balanced slicing tree, each node
// combines child shape lists under both cut directions, and the
// minimum-area root shape is realized.
//
// PlanChip predates the engine.Plan pipeline and is retained as a
// thin shim over the same search core PlanModules drives; new code
// should compile modules with engine.Compile and call PlanModules,
// which adds candidate generation, congestion-aware cost and
// annealing on top of this deterministic greedy pass.
func PlanChip(d *db.Database) (*Plan, error) {
	return PlanChipOpt(d, PlanOptions{})
}

// PlanOptions tunes the legacy planner's objective.
type PlanOptions struct {
	// WireWeight trades chip area against global wire length: every
	// Pareto-optimal root shape is realized and scored as
	// area + WireWeight · wirelength · √area-normalization.  Zero
	// selects pure minimum area (one realization).
	WireWeight float64
}

// PlanChipOpt floor-plans a database with an explicit objective.
// Like PlanChip it is a compatibility shim over the Plan-driven
// search core; see PlanModules for the full objective.
func PlanChipOpt(d *db.Database, opts PlanOptions) (*Plan, error) {
	return PlanChipOptCtx(context.Background(), d, opts)
}

// PlanChipCtx is PlanChip with observability.
func PlanChipCtx(ctx context.Context, d *db.Database) (*Plan, error) {
	return PlanChipOptCtx(ctx, d, PlanOptions{})
}

// PlanChipOptCtx is PlanChipOpt with observability: a "floorplan"
// span carrying the chip dimensions and utilization plus the planner
// metrics.
func PlanChipOptCtx(ctx context.Context, d *db.Database, opts PlanOptions) (plan *Plan, err error) {
	_, sp := obs.Start(ctx, "floorplan")
	sp.SetString("chip", d.Chip)
	sp.SetInt("modules", int64(len(d.Modules)))
	defer func(t0 time.Time) {
		mPlanSec.Observe(time.Since(t0).Seconds())
		if err == nil {
			mPlans.Inc()
			mPlanBlock.Add(int64(len(plan.Blocks)))
			mPlanUtil.Observe(plan.Utilization())
			sp.SetFloat("width", plan.Width)
			sp.SetFloat("height", plan.Height)
			sp.SetFloat("utilization", plan.Utilization())
			sp.SetFloat("wirelength", plan.WireLength)
		}
		sp.EndErr(err)
	}(time.Now())
	return planChipOpt(ctx, d, opts)
}

func planChipOpt(ctx context.Context, d *db.Database, opts PlanOptions) (*Plan, error) {
	if err := db.Validate(d); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPlan, err)
	}
	if len(d.Modules) == 0 {
		return nil, fmt.Errorf("%w: no modules", ErrPlan)
	}
	ms, nets := fromDB(d)
	return run(ctx, d.Chip, ms, nets, config{wireWeight: opts.WireWeight})
}

// fromDB converts a legacy estimate database into the search core's
// module and net shapes, preserving shape order (so ShapeIndex keeps
// indexing the database's candidate list).
func fromDB(d *db.Database) ([]*mod, []Net) {
	ms := make([]*mod, len(d.Modules))
	for i := range d.Modules {
		m := &d.Modules[i]
		shapes := make([]shapeCand, len(m.Shapes))
		for si, s := range m.Shapes {
			shapes[si] = shapeCand{w: s.W, h: s.H, rows: s.Rows}
		}
		ms[i] = &mod{name: m.Name, shapes: shapes}
	}
	nets := make([]Net, len(d.Nets))
	for i, n := range d.Nets {
		pins := make([]NetPin, len(n.Pins))
		for j, p := range n.Pins {
			pins[j] = NetPin{Module: p.Module, Port: p.Port}
		}
		nets[i] = Net{Name: n.Name, Pins: pins}
	}
	return ms, nets
}

// clusterOrder orders modules so strongly connected ones end up
// adjacent in the slicing tree: a greedy chain that always appends
// the unplaced module with the strongest connectivity to the chain's
// tail.
func clusterOrder(ms []*mod, nets []Net) []*mod {
	n := len(ms)
	conn := make(map[string]map[string]int, n)
	for _, m := range ms {
		conn[m.name] = map[string]int{}
	}
	for _, net := range nets {
		for i := 0; i < len(net.Pins); i++ {
			for j := i + 1; j < len(net.Pins); j++ {
				a, b := net.Pins[i].Module, net.Pins[j].Module
				if a == b {
					continue
				}
				conn[a][b]++
				conn[b][a]++
			}
		}
	}
	// Start from the largest module (stable under ties by name).
	idx := make([]*mod, len(ms))
	copy(idx, ms)
	sort.Slice(idx, func(i, j int) bool {
		ai := idx[i].shapes[0].w * idx[i].shapes[0].h
		aj := idx[j].shapes[0].w * idx[j].shapes[0].h
		if ai != aj {
			return ai > aj
		}
		return idx[i].name < idx[j].name
	})
	used := map[string]bool{idx[0].name: true}
	order := []*mod{idx[0]}
	for len(order) < n {
		tail := order[len(order)-1].name
		var best *mod
		bestScore := -1
		for _, m := range idx {
			if used[m.name] {
				continue
			}
			score := conn[tail][m.name]
			if score > bestScore || (score == bestScore && best != nil && m.name < best.name) {
				best, bestScore = m, score
			}
		}
		used[best.name] = true
		order = append(order, best)
	}
	return order
}

// buildTree pairs adjacent nodes level by level into a balanced
// slicing tree.
func buildTree(nodes []*node) *node {
	for len(nodes) > 1 {
		var next []*node
		for i := 0; i < len(nodes); i += 2 {
			if i+1 == len(nodes) {
				next = append(next, nodes[i])
				continue
			}
			next = append(next, &node{left: nodes[i], right: nodes[i+1]})
		}
		nodes = next
	}
	return nodes[0]
}

// maxCombos caps each node's candidate list; pruning keeps the Pareto
// staircase so the cap rarely binds.
const maxCombos = 24

func combineAll(n *node) {
	if n.leaf != nil {
		return
	}
	combineAll(n.left)
	combineAll(n.right)
	var out []combo
	for li, lc := range n.left.combos {
		for ri, rc := range n.right.combos {
			// Vertical cut: side by side.
			out = append(out, combo{
				w: lc.w + rc.w, h: math.Max(lc.h, rc.h),
				shapeIdx: -1, cut: 'v', li: li, ri: ri,
			})
			// Horizontal cut: stacked.
			out = append(out, combo{
				w: math.Max(lc.w, rc.w), h: lc.h + rc.h,
				shapeIdx: -1, cut: 'h', li: li, ri: ri,
			})
		}
	}
	n.combos = pareto(out)
}

// pareto keeps the non-dominated staircase (no other combo has both
// smaller-or-equal width and height), capped at maxCombos entries by
// area.
func pareto(cs []combo) []combo {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].w != cs[j].w {
			return cs[i].w < cs[j].w
		}
		return cs[i].h < cs[j].h
	})
	var out []combo
	for _, c := range cs {
		// Sorted by ascending (w, h): the last kept entry has
		// width ≤ c.w, so it dominates c unless c is strictly
		// shorter.  Kept entries therefore form a staircase of
		// increasing w and decreasing h.
		if len(out) > 0 && c.h >= out[len(out)-1].h {
			continue
		}
		out = append(out, c)
	}
	if len(out) > maxCombos {
		sort.Slice(out, func(i, j int) bool { return out[i].w*out[i].h < out[j].w*out[j].h })
		out = out[:maxCombos]
		sort.Slice(out, func(i, j int) bool { return out[i].w < out[j].w })
	}
	return out
}

// realize walks the tree assigning positions for the chosen combo.
func realize(n *node, comboIdx int, x, y float64, plan *Plan) {
	c := n.combos[comboIdx]
	if n.leaf != nil {
		p := Placed{
			Name: n.leaf.name, X: x, Y: y, W: c.w, H: c.h,
			ShapeIndex: c.shapeIdx, Rows: n.leaf.shapes[c.shapeIdx].rows,
		}
		plan.Blocks = append(plan.Blocks, p)
		plan.byName[p.Name] = &plan.Blocks[len(plan.Blocks)-1]
		return
	}
	realize(n.left, c.li, x, y, plan)
	lc := n.left.combos[c.li]
	if c.cut == 'v' {
		realize(n.right, c.ri, x+lc.w, y, plan)
	} else {
		realize(n.right, c.ri, x, y+lc.h, plan)
	}
}

func wireLength(nets []Net, plan *Plan) float64 {
	total := 0.0
	for _, net := range nets {
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		seen := false
		for _, pin := range net.Pins {
			b := plan.byName[pin.Module]
			if b == nil {
				continue
			}
			cx, cy := b.X+b.W/2, b.Y+b.H/2
			minX, maxX = math.Min(minX, cx), math.Max(maxX, cx)
			minY, maxY = math.Min(minY, cy), math.Max(maxY, cy)
			seen = true
		}
		if seen {
			total += (maxX - minX) + (maxY - minY)
		}
	}
	return total
}
