// Package floorplan is the chip floor planner the estimator feeds
// (paper §1, refs. Mason [2] and Ulysses [3]): it takes the estimate
// database — module shape candidates plus global interconnections —
// and produces a slicing floor plan, choosing one shape per module.
// It also hosts the §7 experiment measuring how estimate quality
// changes the number of floor-planning iterations.
package floorplan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"maest/internal/db"
	"maest/internal/obs"
)

// Floor-planner metrics: utilization tells whether the module shape
// estimates tile well; the latency histogram covers the §7
// iteration-loop budget.
var (
	mPlans     = obs.DefCounter("maest_floorplan_total", "completed floor plans")
	mPlanSec   = obs.DefHistogram("maest_floorplan_seconds", "floor-planning latency", obs.DefBuckets)
	mPlanUtil  = obs.DefHistogram("maest_floorplan_utilization_ratio", "chip area utilization of finished plans", obs.RatioBuckets)
	mPlanBlock = obs.DefCounter("maest_floorplan_modules_total", "modules placed by the floor planner")
)

// ErrPlan wraps floor-planning failures.
var ErrPlan = errors.New("floorplan: planning failed")

// Placed is one module's slot in the finished plan.
type Placed struct {
	Name       string
	X, Y, W, H float64
	// ShapeIndex is the index of the chosen candidate in the module's
	// shape list.
	ShapeIndex int
}

// Plan is a finished slicing floor plan.
type Plan struct {
	Chip   string
	Width  float64
	Height float64
	Blocks []Placed
	// WireLength is the half-perimeter length of the global nets over
	// block centres.
	WireLength float64

	byName map[string]*Placed
}

// Area returns the chip bounding-box area.
func (p *Plan) Area() float64 { return p.Width * p.Height }

// Utilization returns Σ block areas / chip area.
func (p *Plan) Utilization() float64 {
	if p.Area() == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range p.Blocks {
		sum += b.W * b.H
	}
	return sum / p.Area()
}

// BlockByName returns the placed slot of a module, or nil.
func (p *Plan) BlockByName(name string) *Placed { return p.byName[name] }

// shape candidates carried through the slicing combination, with
// back-pointers for reconstruction.
type combo struct {
	w, h float64
	// leaf: shapeIdx ≥ 0.  internal: cut is 'v' or 'h', li/ri select
	// the child combos.
	shapeIdx int
	cut      byte
	li, ri   int
}

type node struct {
	// leaf
	module *db.Module
	// internal
	left, right *node
	combos      []combo
}

// PlanChip floor-plans the database: modules are clustered by global
// connectivity into a balanced slicing tree, each node combines child
// shape lists under both cut directions, and the minimum-area root
// shape is realized.
func PlanChip(d *db.Database) (*Plan, error) {
	return PlanChipOpt(d, PlanOptions{})
}

// PlanOptions tunes the planner's objective.
type PlanOptions struct {
	// WireWeight trades chip area against global wire length: every
	// Pareto-optimal root shape is realized and scored as
	// area + WireWeight · wirelength · √area-normalization.  Zero
	// selects pure minimum area (one realization).
	WireWeight float64
}

// PlanChipOpt floor-plans with an explicit objective.
func PlanChipOpt(d *db.Database, opts PlanOptions) (*Plan, error) {
	return PlanChipOptCtx(context.Background(), d, opts)
}

// PlanChipCtx is PlanChip with observability.
func PlanChipCtx(ctx context.Context, d *db.Database) (*Plan, error) {
	return PlanChipOptCtx(ctx, d, PlanOptions{})
}

// PlanChipOptCtx is PlanChipOpt with observability: a "floorplan"
// span carrying the chip dimensions and utilization plus the planner
// metrics.
func PlanChipOptCtx(ctx context.Context, d *db.Database, opts PlanOptions) (plan *Plan, err error) {
	_, sp := obs.Start(ctx, "floorplan")
	sp.SetString("chip", d.Chip)
	sp.SetInt("modules", int64(len(d.Modules)))
	defer func(t0 time.Time) {
		mPlanSec.Observe(time.Since(t0).Seconds())
		if err == nil {
			mPlans.Inc()
			mPlanBlock.Add(int64(len(plan.Blocks)))
			mPlanUtil.Observe(plan.Utilization())
			sp.SetFloat("width", plan.Width)
			sp.SetFloat("height", plan.Height)
			sp.SetFloat("utilization", plan.Utilization())
			sp.SetFloat("wirelength", plan.WireLength)
		}
		sp.EndErr(err)
	}(time.Now())
	return planChipOpt(d, opts)
}

func planChipOpt(d *db.Database, opts PlanOptions) (*Plan, error) {
	if err := db.Validate(d); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPlan, err)
	}
	if len(d.Modules) == 0 {
		return nil, fmt.Errorf("%w: no modules", ErrPlan)
	}
	order := clusterOrder(d)
	leaves := make([]*node, len(order))
	for i, m := range order {
		n := &node{module: m}
		for si, s := range m.Shapes {
			n.combos = append(n.combos, combo{w: s.W, h: s.H, shapeIdx: si})
		}
		n.combos = pareto(n.combos)
		leaves[i] = n
	}
	root := buildTree(leaves)
	combineAll(root)
	if len(root.combos) == 0 {
		return nil, fmt.Errorf("%w: no feasible shape combination", ErrPlan)
	}
	mkPlan := func(idx int) *Plan {
		plan := &Plan{Chip: d.Chip, byName: map[string]*Placed{}}
		plan.Width = root.combos[idx].w
		plan.Height = root.combos[idx].h
		realize(root, idx, 0, 0, plan)
		plan.WireLength = wireLength(d, plan)
		return plan
	}
	if opts.WireWeight <= 0 {
		best := 0
		for i, c := range root.combos {
			if c.w*c.h < root.combos[best].w*root.combos[best].h {
				best = i
			}
		}
		return mkPlan(best), nil
	}
	// Wirelength-aware: realize every Pareto root shape and score
	// area + weight·wirelength·√area (the √area factor keeps the two
	// terms commensurable across chip sizes).
	var best *Plan
	bestScore := math.Inf(1)
	for i := range root.combos {
		p := mkPlan(i)
		score := p.Area() + opts.WireWeight*p.WireLength*math.Sqrt(p.Area())
		if score < bestScore {
			best, bestScore = p, score
		}
	}
	return best, nil
}

// clusterOrder orders modules so strongly connected ones end up
// adjacent in the slicing tree: a greedy chain that always appends
// the unplaced module with the strongest connectivity to the chain's
// tail.
func clusterOrder(d *db.Database) []*db.Module {
	n := len(d.Modules)
	conn := make(map[string]map[string]int, n)
	for i := range d.Modules {
		conn[d.Modules[i].Name] = map[string]int{}
	}
	for _, net := range d.Nets {
		for i := 0; i < len(net.Pins); i++ {
			for j := i + 1; j < len(net.Pins); j++ {
				a, b := net.Pins[i].Module, net.Pins[j].Module
				if a == b {
					continue
				}
				conn[a][b]++
				conn[b][a]++
			}
		}
	}
	// Start from the largest module (stable under ties by name).
	idx := make([]*db.Module, 0, n)
	for i := range d.Modules {
		idx = append(idx, &d.Modules[i])
	}
	sort.Slice(idx, func(i, j int) bool {
		ai, aj := idx[i].Shapes[0].Area(), idx[j].Shapes[0].Area()
		if ai != aj {
			return ai > aj
		}
		return idx[i].Name < idx[j].Name
	})
	used := map[string]bool{idx[0].Name: true}
	order := []*db.Module{idx[0]}
	for len(order) < n {
		tail := order[len(order)-1].Name
		var best *db.Module
		bestScore := -1
		for _, m := range idx {
			if used[m.Name] {
				continue
			}
			score := conn[tail][m.Name]
			if score > bestScore || (score == bestScore && best != nil && m.Name < best.Name) {
				best, bestScore = m, score
			}
		}
		used[best.Name] = true
		order = append(order, best)
	}
	return order
}

// buildTree pairs adjacent nodes level by level into a balanced
// slicing tree.
func buildTree(nodes []*node) *node {
	for len(nodes) > 1 {
		var next []*node
		for i := 0; i < len(nodes); i += 2 {
			if i+1 == len(nodes) {
				next = append(next, nodes[i])
				continue
			}
			next = append(next, &node{left: nodes[i], right: nodes[i+1]})
		}
		nodes = next
	}
	return nodes[0]
}

// maxCombos caps each node's candidate list; pruning keeps the Pareto
// staircase so the cap rarely binds.
const maxCombos = 24

func combineAll(n *node) {
	if n.module != nil {
		return
	}
	combineAll(n.left)
	combineAll(n.right)
	var out []combo
	for li, lc := range n.left.combos {
		for ri, rc := range n.right.combos {
			// Vertical cut: side by side.
			out = append(out, combo{
				w: lc.w + rc.w, h: math.Max(lc.h, rc.h),
				shapeIdx: -1, cut: 'v', li: li, ri: ri,
			})
			// Horizontal cut: stacked.
			out = append(out, combo{
				w: math.Max(lc.w, rc.w), h: lc.h + rc.h,
				shapeIdx: -1, cut: 'h', li: li, ri: ri,
			})
		}
	}
	n.combos = pareto(out)
}

// pareto keeps the non-dominated staircase (no other combo has both
// smaller-or-equal width and height), capped at maxCombos entries by
// area.
func pareto(cs []combo) []combo {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].w != cs[j].w {
			return cs[i].w < cs[j].w
		}
		return cs[i].h < cs[j].h
	})
	var out []combo
	for _, c := range cs {
		// Sorted by ascending (w, h): the last kept entry has
		// width ≤ c.w, so it dominates c unless c is strictly
		// shorter.  Kept entries therefore form a staircase of
		// increasing w and decreasing h.
		if len(out) > 0 && c.h >= out[len(out)-1].h {
			continue
		}
		out = append(out, c)
	}
	if len(out) > maxCombos {
		sort.Slice(out, func(i, j int) bool { return out[i].w*out[i].h < out[j].w*out[j].h })
		out = out[:maxCombos]
		sort.Slice(out, func(i, j int) bool { return out[i].w < out[j].w })
	}
	return out
}

// realize walks the tree assigning positions for the chosen combo.
func realize(n *node, comboIdx int, x, y float64, plan *Plan) {
	c := n.combos[comboIdx]
	if n.module != nil {
		p := Placed{Name: n.module.Name, X: x, Y: y, W: c.w, H: c.h, ShapeIndex: c.shapeIdx}
		plan.Blocks = append(plan.Blocks, p)
		plan.byName[p.Name] = &plan.Blocks[len(plan.Blocks)-1]
		return
	}
	realize(n.left, c.li, x, y, plan)
	lc := n.left.combos[c.li]
	if c.cut == 'v' {
		realize(n.right, c.ri, x+lc.w, y, plan)
	} else {
		realize(n.right, c.ri, x, y+lc.h, plan)
	}
}

func wireLength(d *db.Database, plan *Plan) float64 {
	total := 0.0
	for _, net := range d.Nets {
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		seen := false
		for _, pin := range net.Pins {
			b := plan.byName[pin.Module]
			if b == nil {
				continue
			}
			cx, cy := b.X+b.W/2, b.Y+b.H/2
			minX, maxX = math.Min(minX, cx), math.Max(maxX, cx)
			minY, maxY = math.Min(minY, cy), math.Max(maxY, cy)
			seen = true
		}
		if seen {
			total += (maxX - minX) + (maxY - minY)
		}
	}
	return total
}
