package floorplan

import (
	"context"
	"fmt"
	"math"

	"maest/internal/baseline"
	"maest/internal/db"
	"maest/internal/engine"
	"maest/internal/gen"
	"maest/internal/layout"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// The §1/§7 claim: "more accurate module aspect ratio estimates will
// significantly reduce the number of floor planning iterations".
// IterationExperiment quantifies it: floor-plan a chip from some
// shape source, then actually lay the modules out; any module whose
// real shape disagrees with its planned slot beyond the tolerance
// forces a re-plan with corrected shapes.  The iteration count is the
// number of plans until every module fits.

// ShapeSource produces candidate shapes for a module — the knob the
// experiment varies (estimator vs. naive guess).
type ShapeSource func(c *netlist.Circuit, p *tech.Process) ([]db.Shape, error)

// EstimatorShapes is the paper's estimator in its §7-extended
// configuration (track sharing on, so the shapes track what a real
// sharing router produces): standard-cell shape candidates across row
// counts.
func EstimatorShapes(c *netlist.Circuit, p *tech.Process) ([]db.Shape, error) {
	res, err := engine.Estimate(context.Background(), c, p, engine.WithTrackSharing(true))
	if err != nil {
		return nil, err
	}
	var out []db.Shape
	for _, sc := range res.SCCandidates {
		out = append(out, db.Shape{
			Label: fmt.Sprintf("sc-rows%d", sc.Rows),
			Rows:  sc.Rows,
			W:     sc.Width,
			H:     sc.Height,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("floorplan: module %q produced no shapes", c.Name)
	}
	return out, nil
}

// NaiveShapes is the designer rule of thumb the estimator replaces: a
// single square of active area × factor.
func NaiveShapes(factor float64) ShapeSource {
	return func(c *netlist.Circuit, p *tech.Process) ([]db.Shape, error) {
		s, err := netlist.Gather(c, p)
		if err != nil {
			return nil, err
		}
		a, err := baseline.Naive(s, factor)
		if err != nil {
			return nil, err
		}
		side := math.Sqrt(a)
		return []db.Shape{{Label: "naive", Rows: 0, W: side, H: side}}, nil
	}
}

// ExperimentResult reports one experiment run.
type ExperimentResult struct {
	// Iterations is the number of floor plans built until all
	// modules fit (≥ 1); it equals MaxIters+1 when the run did not
	// converge.
	Iterations int
	Converged  bool
	// FinalPlan is the accepted (or last) plan.
	FinalPlan *Plan
	// Misfits[i] is the number of modules that failed the fit check
	// after plan i.
	Misfits []int
}

// ExperimentOptions tunes the iteration experiment.
type ExperimentOptions struct {
	// Tolerance is the acceptable relative mismatch between the
	// planned slot and the real layout (both directions).  Zero
	// selects 0.25.
	Tolerance float64
	// MaxIters caps the loop.  Zero selects 12.
	MaxIters int
	// Seed drives the layout engine.
	Seed int64
}

// IterationExperiment runs the re-planning loop for one chip and
// shape source.
func IterationExperiment(chip *gen.Chip, p *tech.Process, src ShapeSource, opts ExperimentOptions) (*ExperimentResult, error) {
	tol := opts.Tolerance
	if tol == 0 {
		tol = 0.25
	}
	maxIters := opts.MaxIters
	if maxIters == 0 {
		maxIters = 12
	}

	// Current shape belief per module.
	shapes := make(map[string][]db.Shape, len(chip.Modules))
	circuits := make(map[string]*netlist.Circuit, len(chip.Modules))
	for _, c := range chip.Modules {
		ss, err := src(c, p)
		if err != nil {
			return nil, fmt.Errorf("floorplan: shapes for %q: %v", c.Name, err)
		}
		shapes[c.Name] = ss
		circuits[c.Name] = c
	}
	// Real layouts are deterministic; cache by (module, rows).
	type layKey struct {
		name string
		rows int
	}
	layCache := map[layKey]*layout.Module{}
	realize := func(name string, rows int) (*layout.Module, error) {
		k := layKey{name, rows}
		if m, ok := layCache[k]; ok {
			return m, nil
		}
		m, err := layout.LayoutStandardCell(circuits[name], p, rows, opts.Seed)
		if err != nil {
			return nil, err
		}
		layCache[k] = m
		return m, nil
	}

	res := &ExperimentResult{}
	for iter := 1; iter <= maxIters; iter++ {
		res.Iterations = iter
		d := &db.Database{Chip: chip.Name}
		for _, c := range chip.Modules {
			sc, err := netlist.Gather(c, p)
			if err != nil {
				return nil, err
			}
			d.Modules = append(d.Modules, db.Module{
				Name: c.Name, Devices: sc.N, Nets: sc.H, Ports: sc.NumPorts,
				Shapes: shapes[c.Name],
			})
		}
		for _, gn := range chip.GlobalNets {
			pins := make([]db.GlobalPin, len(gn.Pins))
			for i, pin := range gn.Pins {
				pins[i] = db.GlobalPin{Module: pin.Module, Port: pin.Port}
			}
			d.Nets = append(d.Nets, db.GlobalNet{Name: gn.Name, Pins: pins})
		}
		plan, err := PlanChip(d)
		if err != nil {
			return nil, err
		}
		res.FinalPlan = plan

		misfits := 0
		for _, b := range plan.Blocks {
			chosen := shapes[b.Name][b.ShapeIndex]
			rows := chosen.Rows
			if rows < 1 {
				rows = bestRowsForShape(circuits[b.Name], p, b.W, b.H)
			}
			real, err := realize(b.Name, rows)
			if err != nil {
				return nil, err
			}
			if fits(b, real, tol) {
				continue
			}
			misfits++
			// Correct the belief: the measured shape at this and
			// neighbouring row counts.
			var corrected []db.Shape
			for _, r := range []int{rows - 1, rows, rows + 1} {
				if r < 1 {
					continue
				}
				m, err := realize(b.Name, r)
				if err != nil {
					return nil, err
				}
				corrected = append(corrected, db.Shape{
					Label: fmt.Sprintf("real-rows%d", r),
					Rows:  r,
					W:     float64(m.Width),
					H:     float64(m.Height),
				})
			}
			shapes[b.Name] = corrected
		}
		res.Misfits = append(res.Misfits, misfits)
		if misfits == 0 {
			res.Converged = true
			return res, nil
		}
	}
	res.Iterations = maxIters + 1
	return res, nil
}

// fits accepts a slot when the real layout neither overflows it nor
// leaves more than the tolerated dead space.
func fits(b Placed, real *layout.Module, tol float64) bool {
	rw, rh := float64(real.Width), float64(real.Height)
	if rw > b.W*(1+tol) || rh > b.H*(1+tol) {
		return false
	}
	slotArea, realArea := b.W*b.H, rw*rh
	return slotArea <= realArea*(1+tol)*(1+tol)
}

// bestRowsForShape picks the row count whose quick shape estimate
// (cell width / rows × stacked rows) comes closest to the target
// aspect ratio.
func bestRowsForShape(c *netlist.Circuit, p *tech.Process, w, h float64) int {
	target := 1.0
	if h > 0 {
		target = w / h
	}
	s, err := netlist.Gather(c, p)
	if err != nil || s.N == 0 {
		return 1
	}
	totalW := s.AvgWidth() * float64(s.N)
	best, bestDiff := 1, math.Inf(1)
	for rows := 1; rows <= 12; rows++ {
		width := totalW / float64(rows)
		height := float64(rows) * float64(p.RowHeight) * 2 // rows + channels
		ar := width / height
		diff := math.Abs(math.Log(ar / target))
		if diff < bestDiff {
			best, bestDiff = rows, diff
		}
	}
	return best
}
