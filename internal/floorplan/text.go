package floorplan

import (
	"bufio"
	"io"
	"strconv"
)

// The determinism contract: a Plan is a pure function of its inputs —
// modules (shapes or compiled plans), nets, options and seed.  The
// search core uses no maps in iteration order, no wall clock and no
// global random state, and every float is carried as float64
// end-to-end, so the same inputs reproduce the same Plan bit for bit
// on a given architecture.  WritePlanText renders that guarantee
// checkable: the canonical text form of two equal plans is
// byte-identical, which is what the golden test and the job API's
// restart test compare.

// WritePlanText writes the canonical text rendering of a plan: one
// header line, then one line per block in placement order, then the
// per-module congestion detail when present.  Floats are rendered in
// Go's shortest round-trip form, so the text is byte-stable exactly
// when the plan is.
func WritePlanText(w io.Writer, p *Plan) error {
	bw := bufio.NewWriter(w)
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	bw.WriteString("floorplan v1 chip " + p.Chip + "\n")
	bw.WriteString("size " + f(p.Width) + " " + f(p.Height) + "\n")
	bw.WriteString("wirelength " + f(p.WireLength) + "\n")
	bw.WriteString("routability " + f(p.Routability) + "\n")
	bw.WriteString("cost " + f(p.Cost) + "\n")
	for _, b := range p.Blocks {
		bw.WriteString("block " + b.Name +
			" " + f(b.X) + " " + f(b.Y) +
			" " + f(b.W) + " " + f(b.H) +
			" shape " + strconv.Itoa(b.ShapeIndex) +
			" rows " + strconv.Itoa(b.Rows) + "\n")
	}
	for _, mc := range p.Congestion {
		bw.WriteString("congest " + mc.Module +
			" rows " + strconv.Itoa(mc.Rows) +
			" sum " + f(mc.POverflowSum) + "\n")
		for _, ch := range mc.Channels {
			bw.WriteString("channel " + mc.Module +
				" " + strconv.Itoa(ch.Index) +
				" " + f(ch.POverflow) + "\n")
		}
	}
	return bw.Flush()
}
