package floorplan

import (
	"bytes"
	"strings"
	"testing"
)

func TestPlanWriteSVG(t *testing.T) {
	plan, err := PlanChip(sampleDB())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, plan, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<title>demo</title>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	for _, b := range plan.Blocks {
		if !strings.Contains(out, ">"+b.Name+"</text>") {
			t.Fatalf("SVG missing label for %q", b.Name)
		}
	}
	// Default scale.
	if err := WriteSVG(&bytes.Buffer{}, plan, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPlanWriteSVGDegenerate(t *testing.T) {
	if err := WriteSVG(&bytes.Buffer{}, &Plan{}, 1); err == nil {
		t.Fatal("degenerate plan accepted")
	}
}
