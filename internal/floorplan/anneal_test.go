package floorplan

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"maest/internal/engine"
	"maest/internal/gen"
	"maest/internal/tech"
)

var update = flag.Bool("update", false, "rewrite golden files")

// annealChip compiles a deterministic random chip into the annealer's
// input shape.
func annealChip(t *testing.T, modules int, seed int64) (string, []PlanModule, []Net, *tech.Process) {
	t.Helper()
	p, err := tech.Lookup("nmos25")
	if err != nil {
		t.Fatal(err)
	}
	chip, err := gen.RandomChip(gen.ChipConfig{
		Name: "anneal-chip", Modules: modules, MinGates: 12, MaxGates: 40, Seed: seed,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	mods := make([]PlanModule, len(chip.Modules))
	for i, c := range chip.Modules {
		pl, err := engine.Compile(c, p)
		if err != nil {
			t.Fatalf("compile %s: %v", c.Name, err)
		}
		mods[i] = PlanModule{Name: c.Name, Plan: pl}
	}
	nets := make([]Net, len(chip.GlobalNets))
	for i, gn := range chip.GlobalNets {
		pins := make([]NetPin, len(gn.Pins))
		for j, pin := range gn.Pins {
			pins[j] = NetPin{Module: pin.Module, Port: pin.Port}
		}
		nets[i] = Net{Name: gn.Name, Pins: pins}
	}
	return chip.Name, mods, nets, p
}

func TestPlanModulesBasics(t *testing.T) {
	name, mods, nets, _ := annealChip(t, 4, 11)
	plan, err := PlanModules(context.Background(), name, mods, nets,
		WithBudget(120), WithSeed(7), WithCongestWeight(1))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chip != name || len(plan.Blocks) != 4 {
		t.Fatalf("plan = %+v", plan)
	}
	// One candidate chosen per module, at a real row count.
	for _, b := range plan.Blocks {
		if b.ShapeIndex < 0 || b.Rows < 1 || b.W <= 0 || b.H <= 0 {
			t.Fatalf("bad block %+v", b)
		}
	}
	if u := plan.Utilization(); u <= 0 || u > 1+1e-9 {
		t.Fatalf("utilization = %g", u)
	}
	if plan.Cost <= 0 {
		t.Fatalf("cost = %g", plan.Cost)
	}
	// Congestion detail covers every Plan-backed module.
	if len(plan.Congestion) != 4 {
		t.Fatalf("congestion detail for %d modules, want 4", len(plan.Congestion))
	}
	for _, mc := range plan.Congestion {
		if mc.Rows < 1 || len(mc.Channels) == 0 {
			t.Fatalf("bad congestion detail %+v", mc)
		}
	}
	if plan.Stats.Iterations != 120 {
		t.Fatalf("iterations = %d, want the full budget", plan.Stats.Iterations)
	}
	if plan.Stats.RoutLookups == 0 || plan.Stats.RoutMemoHits == 0 {
		t.Fatalf("routability memo never exercised: %+v", plan.Stats)
	}
}

func TestPlanModulesDeterministicUnderSeed(t *testing.T) {
	name, mods, nets, _ := annealChip(t, 4, 3)
	render := func() []byte {
		plan, err := PlanModules(context.Background(), name, mods, nets,
			WithBudget(80), WithSeed(42), WithCongestWeight(0.5), WithWireWeight(1))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WritePlanText(&buf, plan); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different plans:\n%s\nvs\n%s", a, b)
	}
}

func TestPlanModulesBudgetZeroIsGreedy(t *testing.T) {
	name, mods, nets, _ := annealChip(t, 3, 5)
	plan, err := PlanModules(context.Background(), name, mods, nets, WithBudget(-1))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.Iterations != 0 {
		t.Fatalf("greedy path annealed: %d iterations", plan.Stats.Iterations)
	}
	if plan.Stats.Evals != 1 {
		t.Fatalf("greedy path evaluated %d times, want 1", plan.Stats.Evals)
	}
	// Area-only objective: cost is the chip area.
	if plan.Cost != plan.Area() {
		t.Fatalf("cost %g != area %g", plan.Cost, plan.Area())
	}
}

func TestPlanModulesAnnealNeverWorseThanGreedy(t *testing.T) {
	name, mods, nets, _ := annealChip(t, 5, 9)
	opts := []Option{WithCongestWeight(1), WithWireWeight(1)}
	greedy, err := PlanModules(context.Background(), name, mods, nets, append(opts, WithBudget(-1))...)
	if err != nil {
		t.Fatal(err)
	}
	annealed, err := PlanModules(context.Background(), name, mods, nets,
		append(opts, WithBudget(150), WithSeed(2))...)
	if err != nil {
		t.Fatal(err)
	}
	if annealed.Cost > greedy.Cost {
		t.Fatalf("anneal regressed: %g > greedy %g", annealed.Cost, greedy.Cost)
	}
}

func TestPlanModulesCancellation(t *testing.T) {
	name, mods, nets, _ := annealChip(t, 3, 1)
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel after the first progress report: the per-move check must
	// surface the context error.
	fired := false
	_, err := PlanModules(ctx, name, mods, nets,
		WithBudget(100000), WithProgress(func(p Progress) {
			if !fired {
				fired = true
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPlanModulesValidation(t *testing.T) {
	name, mods, nets, _ := annealChip(t, 3, 2)
	ctx := context.Background()
	if _, err := PlanModules(ctx, name, nil, nil); !errors.Is(err, ErrPlan) {
		t.Fatalf("empty modules: %v", err)
	}
	dup := append([]PlanModule{mods[0]}, mods...)
	if _, err := PlanModules(ctx, name, dup, nets); !errors.Is(err, ErrPlan) {
		t.Fatalf("duplicate module: %v", err)
	}
	if _, err := PlanModules(ctx, name, []PlanModule{{Name: "m"}}, nil); !errors.Is(err, ErrPlan) {
		t.Fatalf("nil plan: %v", err)
	}
	bad := []Net{{Name: "n", Pins: []NetPin{{Module: "ghost", Port: "p"}}}}
	if _, err := PlanModules(ctx, name, mods, bad); !errors.Is(err, ErrPlan) {
		t.Fatalf("unknown net module: %v", err)
	}
}

func TestPlanModulesProgressReports(t *testing.T) {
	name, mods, nets, _ := annealChip(t, 3, 4)
	var last Progress
	n := 0
	_, err := PlanModules(context.Background(), name, mods, nets,
		WithBudget(25), WithProgress(func(p Progress) { last, n = p, n+1 }))
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 || last.Iteration != 25 || last.Budget != 25 {
		t.Fatalf("progress: %d calls, last %+v", n, last)
	}
	if last.Best <= 0 || last.Current <= 0 {
		t.Fatalf("progress costs missing: %+v", last)
	}
}

// TestGoldenPlanText pins the determinism contract over one §7
// experiment suite: a generated chip, annealed with a fixed seed and
// congestion-scored cost, must reproduce the checked-in plan byte for
// byte.  Run with -update after intentional search changes.
func TestGoldenPlanText(t *testing.T) {
	name, mods, nets, _ := annealChip(t, 4, 88)
	plan, err := PlanModules(context.Background(), name, mods, nets,
		WithBudget(200), WithSeed(1988), WithCongestWeight(1), WithWireWeight(0.5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlanText(&buf, plan); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("..", "..", "testdata", "golden", "floorplan_plan.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("plan differs from golden (run with -update after intentional changes)\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

// TestLegacyShimMatchesSearchCore pins the deprecation contract: the
// db-driven PlanChipOpt shim must produce exactly the plan the search
// core yields for the converted inputs.
func TestLegacyShimMatchesSearchCore(t *testing.T) {
	d := sampleDB()
	legacy, err := PlanChipOpt(d, PlanOptions{WireWeight: 10})
	if err != nil {
		t.Fatal(err)
	}
	ms, nets := fromDB(d)
	direct, err := run(context.Background(), d.Chip, ms, nets, config{wireWeight: 10})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WritePlanText(&a, legacy); err != nil {
		t.Fatal(err)
	}
	if err := WritePlanText(&b, direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("shim diverged from search core:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}
