package floorplan

import (
	"testing"

	"maest/internal/gen"
	"maest/internal/geom"
	"maest/internal/layout"
	"maest/internal/tech"
)

func testChip(t testing.TB, modules int, seed int64) *gen.Chip {
	t.Helper()
	p := tech.NMOS25()
	chip, err := gen.RandomChip(gen.ChipConfig{
		Name: "x", Modules: modules, MinGates: 20, MaxGates: 50, Seed: seed,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

func TestEstimatorShapesSource(t *testing.T) {
	p := tech.NMOS25()
	chip := testChip(t, 3, 1)
	ss, err := EstimatorShapes(chip.Modules[0], p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) == 0 {
		t.Fatal("no shapes")
	}
	for _, s := range ss {
		if s.W <= 0 || s.H <= 0 || s.Rows < 1 {
			t.Fatalf("bad shape %+v", s)
		}
	}
}

func TestNaiveShapesSource(t *testing.T) {
	p := tech.NMOS25()
	chip := testChip(t, 3, 1)
	ss, err := NaiveShapes(1.0)(chip.Modules[0], p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 1 || ss[0].W != ss[0].H {
		t.Fatalf("naive shapes = %+v", ss)
	}
}

func TestIterationExperimentConvergesWithEstimator(t *testing.T) {
	p := tech.NMOS25()
	chip := testChip(t, 4, 7)
	res, err := IterationExperiment(chip, p, EstimatorShapes, ExperimentOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("estimator-driven plan did not converge: misfits %v", res.Misfits)
	}
	if res.FinalPlan == nil || len(res.FinalPlan.Blocks) != 4 {
		t.Fatal("missing final plan")
	}
	if len(res.Misfits) != res.Iterations {
		t.Fatalf("misfit history %v vs iterations %d", res.Misfits, res.Iterations)
	}
}

func TestEstimatorBeatsNaiveOnIterations(t *testing.T) {
	// The paper's headline claim (E10): accurate estimates reduce
	// floor-planning iterations.  The naive active-area guess
	// underestimates badly (no routing area at all), so its plans
	// must be corrected at least as often as the estimator's, and
	// strictly more in aggregate over several chips.
	p := tech.NMOS25()
	totalEst, totalNaive := 0, 0
	for seed := int64(1); seed <= 3; seed++ {
		chip := testChip(t, 4, seed)
		est, err := IterationExperiment(chip, p, EstimatorShapes, ExperimentOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := IterationExperiment(chip, p, NaiveShapes(1.0), ExperimentOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if naive.Iterations < est.Iterations {
			t.Fatalf("seed %d: naive converged faster (%d < %d)",
				seed, naive.Iterations, est.Iterations)
		}
		totalEst += est.Iterations
		totalNaive += naive.Iterations
	}
	if totalNaive <= totalEst {
		t.Fatalf("naive should need more iterations overall: naive=%d est=%d",
			totalNaive, totalEst)
	}
}

func TestFitsTolerance(t *testing.T) {
	slot := Placed{W: 100, H: 100}
	mk := func(w, h geom.Lambda) *layout.Module { return &layout.Module{Width: w, Height: h} }
	cases := []struct {
		name string
		m    *layout.Module
		want bool
	}{
		{"exact", mk(100, 100), true},
		{"slightly larger", mk(110, 110), true},
		{"overflow width", mk(130, 100), false},
		{"overflow height", mk(100, 130), false},
		{"slightly smaller", mk(90, 90), true},
		{"too much dead space", mk(50, 50), false},
	}
	for _, c := range cases {
		if got := fits(slot, c.m, 0.25); got != c.want {
			t.Errorf("%s: fits = %v, want %v", c.name, got, c.want)
		}
	}
}
