package floorplan

import (
	"math"
	"testing"

	"maest/internal/db"
)

func sampleDB() *db.Database {
	return &db.Database{
		Chip: "demo",
		Modules: []db.Module{
			{Name: "a", Devices: 10, Nets: 8, Ports: 4, Shapes: []db.Shape{
				{Label: "s1", Rows: 2, W: 100, H: 50},
				{Label: "s2", Rows: 4, W: 50, H: 100},
			}},
			{Name: "b", Devices: 10, Nets: 8, Ports: 4, Shapes: []db.Shape{
				{Label: "s1", Rows: 2, W: 80, H: 40},
			}},
			{Name: "c", Devices: 10, Nets: 8, Ports: 4, Shapes: []db.Shape{
				{Label: "s1", Rows: 2, W: 60, H: 60},
			}},
		},
		Nets: []db.GlobalNet{
			{Name: "n1", Pins: []db.GlobalPin{{Module: "a", Port: "x"}, {Module: "b", Port: "y"}}},
			{Name: "n2", Pins: []db.GlobalPin{{Module: "b", Port: "z"}, {Module: "c", Port: "w"}}},
		},
	}
}

func TestPlanChipBasics(t *testing.T) {
	plan, err := PlanChip(sampleDB())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chip != "demo" || len(plan.Blocks) != 3 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Width <= 0 || plan.Height <= 0 {
		t.Fatal("degenerate chip")
	}
	if plan.WireLength <= 0 {
		t.Fatal("no wire length computed")
	}
	if u := plan.Utilization(); u <= 0 || u > 1+1e-9 {
		t.Fatalf("utilization = %g", u)
	}
}

func TestPlanBlocksDisjointAndInsideChip(t *testing.T) {
	plan, err := PlanChip(sampleDB())
	if err != nil {
		t.Fatal(err)
	}
	eps := 1e-9
	for i, a := range plan.Blocks {
		if a.X < -eps || a.Y < -eps || a.X+a.W > plan.Width+eps || a.Y+a.H > plan.Height+eps {
			t.Fatalf("block %s outside chip: %+v (chip %gx%g)", a.Name, a, plan.Width, plan.Height)
		}
		for j := i + 1; j < len(plan.Blocks); j++ {
			b := plan.Blocks[j]
			if a.X < b.X+b.W-eps && b.X < a.X+a.W-eps &&
				a.Y < b.Y+b.H-eps && b.Y < a.Y+a.H-eps {
				t.Fatalf("blocks %s and %s overlap", a.Name, b.Name)
			}
		}
	}
}

func TestPlanUsesShapeCandidates(t *testing.T) {
	// With two shapes for module a, the planner must pick a valid
	// index and the slot must match that shape.
	plan, err := PlanChip(sampleDB())
	if err != nil {
		t.Fatal(err)
	}
	a := plan.BlockByName("a")
	if a == nil {
		t.Fatal("module a missing")
	}
	shapes := sampleDB().Modules[0].Shapes
	if a.ShapeIndex < 0 || a.ShapeIndex >= len(shapes) {
		t.Fatalf("shape index = %d", a.ShapeIndex)
	}
	s := shapes[a.ShapeIndex]
	if a.W != s.W || a.H != s.H {
		t.Fatalf("slot %gx%g != shape %gx%g", a.W, a.H, s.W, s.H)
	}
}

func TestPlanSingleModule(t *testing.T) {
	d := &db.Database{
		Chip: "one",
		Modules: []db.Module{{Name: "m", Devices: 1, Nets: 1, Ports: 1,
			Shapes: []db.Shape{{Label: "s", W: 30, H: 20}}}},
	}
	plan, err := PlanChip(d)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Width != 30 || plan.Height != 20 {
		t.Fatalf("plan = %gx%g", plan.Width, plan.Height)
	}
}

func TestPlanRejectsInvalidDB(t *testing.T) {
	d := sampleDB()
	d.Modules[0].Shapes = nil
	if _, err := PlanChip(d); err == nil {
		t.Fatal("shapeless module accepted")
	}
	empty := &db.Database{Chip: "e"}
	if _, err := PlanChip(empty); err == nil {
		t.Fatal("empty database accepted")
	}
}

func TestParetoPruning(t *testing.T) {
	cs := []combo{
		{w: 10, h: 10}, {w: 10, h: 12}, // dominated (same w, taller)
		{w: 12, h: 8}, {w: 20, h: 8}, // second dominated (wider, same h)
		{w: 15, h: 5},
	}
	out := pareto(cs)
	if len(out) != 3 {
		t.Fatalf("pareto kept %d: %+v", len(out), out)
	}
	for i := 1; i < len(out); i++ {
		if out[i].w <= out[i-1].w || out[i].h >= out[i-1].h {
			t.Fatalf("not a staircase: %+v", out)
		}
	}
}

func TestParetoCap(t *testing.T) {
	var cs []combo
	for i := 0; i < 100; i++ {
		cs = append(cs, combo{w: float64(10 + i), h: float64(200 - i)})
	}
	out := pareto(cs)
	if len(out) > maxCombos {
		t.Fatalf("cap not applied: %d", len(out))
	}
}

func TestClusterOrderPutsConnectedAdjacent(t *testing.T) {
	ms, nets := fromDB(sampleDB())
	order := clusterOrder(ms, nets)
	if len(order) != 3 {
		t.Fatalf("order = %d modules", len(order))
	}
	pos := map[string]int{}
	for i, m := range order {
		pos[m.name] = i
	}
	// b connects to both a and c; it must not be separated from both.
	if abs(pos["a"]-pos["b"]) > 1 && abs(pos["b"]-pos["c"]) > 1 {
		t.Fatalf("clustering ignored connectivity: %v", pos)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestWireLengthReflectsDistance(t *testing.T) {
	// Two modules connected by a net: wire length equals the centre
	// distance (half-perimeter).
	d := &db.Database{
		Chip: "two",
		Modules: []db.Module{
			{Name: "a", Devices: 1, Nets: 1, Ports: 1, Shapes: []db.Shape{{Label: "s", W: 10, H: 10}}},
			{Name: "b", Devices: 1, Nets: 1, Ports: 1, Shapes: []db.Shape{{Label: "s", W: 10, H: 10}}},
		},
		Nets: []db.GlobalNet{{Name: "n", Pins: []db.GlobalPin{{Module: "a", Port: "p"}, {Module: "b", Port: "q"}}}},
	}
	plan, err := PlanChip(d)
	if err != nil {
		t.Fatal(err)
	}
	a, b := plan.BlockByName("a"), plan.BlockByName("b")
	want := math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
	if math.Abs(plan.WireLength-want) > 1e-9 {
		t.Fatalf("wirelength = %g, want %g", plan.WireLength, want)
	}
}

func TestPlanChipOptWireAware(t *testing.T) {
	d := sampleDB()
	areaPlan, err := PlanChip(d)
	if err != nil {
		t.Fatal(err)
	}
	wirePlan, err := PlanChipOpt(d, PlanOptions{WireWeight: 10})
	if err != nil {
		t.Fatal(err)
	}
	// The wire-aware plan never has a worse combined score, and the
	// area-only plan never has a larger area.
	if wirePlan.Area() < areaPlan.Area() {
		t.Fatalf("area-only plan not minimal: %g vs %g", areaPlan.Area(), wirePlan.Area())
	}
	scoreOf := func(p *Plan, w float64) float64 {
		return p.Area() + w*p.WireLength*math.Sqrt(p.Area())
	}
	if scoreOf(wirePlan, 10) > scoreOf(areaPlan, 10)+1e-9 {
		t.Fatalf("wire-aware plan scored worse: %g vs %g",
			scoreOf(wirePlan, 10), scoreOf(areaPlan, 10))
	}
	// Both remain legal.
	for _, plan := range []*Plan{areaPlan, wirePlan} {
		if len(plan.Blocks) != 3 || plan.Utilization() <= 0 {
			t.Fatal("degenerate plan")
		}
	}
}
