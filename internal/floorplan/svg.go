package floorplan

import (
	"bufio"
	"fmt"
	"io"
)

// WriteSVG renders a floor plan as a standalone SVG document: module
// slots with their names and the global-net flylines between block
// centres, for quick visual inspection of a plan.
func WriteSVG(w io.Writer, plan *Plan, scale float64) error {
	if plan.Width <= 0 || plan.Height <= 0 {
		return fmt.Errorf("%w: cannot render degenerate plan", ErrPlan)
	}
	if scale <= 0 {
		scale = 1
	}
	bw := bufio.NewWriter(w)
	width := plan.Width * scale
	height := plan.Height * scale
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(bw, "<title>%s</title>\n", plan.Chip)
	fmt.Fprintf(bw, `<rect x="0" y="0" width="%.0f" height="%.0f" fill="#fafafa" stroke="#000"/>`+"\n", width, height)
	for _, b := range plan.Blocks {
		fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#cfe0f5" stroke="#345" stroke-width="1"/>`+"\n",
			b.X*scale, b.Y*scale, b.W*scale, b.H*scale)
		fs := b.H * scale / 6
		if fs > 14 {
			fs = 14
		}
		if fs < 4 {
			fs = 4
		}
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" font-size="%.1f" font-family="monospace" text-anchor="middle">%s</text>`+"\n",
			(b.X+b.W/2)*scale, (b.Y+b.H/2)*scale, fs, b.Name)
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}
