package floorplan

import (
	"math"
	"testing"

	"maest/internal/tech"
)

func TestGlobalRouteConservation(t *testing.T) {
	d := sampleDB()
	plan, err := PlanChip(d)
	if err != nil {
		t.Fatal(err)
	}
	p := tech.NMOS25()
	res, err := GlobalRoute(d, plan, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.WireLength <= 0 {
		t.Fatal("no wire length")
	}
	// Usage conserves wire length.
	if math.Abs(res.TotalUsage()-res.WireLength) > 1e-6*res.WireLength {
		t.Fatalf("usage %g != wirelength %g", res.TotalUsage(), res.WireLength)
	}
	if res.MaxCongestion <= 0 {
		t.Fatal("no congestion recorded")
	}
	if res.WiringArea != res.WireLength*float64(p.TrackPitch) {
		t.Fatal("wiring area inconsistent")
	}
	// Plan wirelength (HPWL) lower-bounds L-route length.
	if res.WireLength < plan.WireLength-1e-9 {
		t.Fatalf("L-routes %g shorter than HPWL %g", res.WireLength, plan.WireLength)
	}
}

func TestGlobalRouteGridSizes(t *testing.T) {
	d := sampleDB()
	plan, err := PlanChip(d)
	if err != nil {
		t.Fatal(err)
	}
	p := tech.NMOS25()
	prevLen := -1.0
	for _, grid := range []int{1, 4, 16} {
		res, err := GlobalRoute(d, plan, p, grid)
		if err != nil {
			t.Fatalf("grid %d: %v", grid, err)
		}
		if prevLen >= 0 && math.Abs(res.WireLength-prevLen) > 1e-9 {
			t.Fatal("wire length depends on grid size")
		}
		prevLen = res.WireLength
		if len(res.Usage) != grid {
			t.Fatalf("grid %d: usage rows %d", grid, len(res.Usage))
		}
	}
}

func TestGlobalRouteErrors(t *testing.T) {
	d := sampleDB()
	plan, err := PlanChip(d)
	if err != nil {
		t.Fatal(err)
	}
	p := tech.NMOS25()
	if _, err := GlobalRoute(d, plan, p, 0); err == nil {
		t.Error("grid 0 accepted")
	}
	if _, err := GlobalRoute(d, &Plan{}, p, 4); err == nil {
		t.Error("degenerate plan accepted")
	}
	// Net referencing an unplaced module.
	d2 := sampleDB()
	d2.Nets[0].Pins[0].Module = "ghost"
	if _, err := GlobalRoute(d2, plan, p, 4); err == nil {
		t.Error("unplaced module accepted")
	}
}
