// Package route is the channel router of the ground-truth layout
// flow: given a row placement it assigns every net's horizontal
// segments to routing-channel tracks, inserting feed-through columns
// where nets cross intermediate rows.  With track sharing enabled it
// packs segments with the classic left-edge algorithm (what a real
// router such as TimberWolf's global router achieves); with sharing
// disabled it dedicates one track per segment, which is exactly the
// paper's upper-bound assumption 3 — the difference between the two
// is the overestimate the paper attributes to ignored track sharing.
package route

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"maest/internal/geom"
	"maest/internal/obs"
	"maest/internal/place"
)

// Router metrics: track and feed-through counts are the quantities
// the estimator predicts (Eqs. 9–12), so the router reports the
// ground-truth side of that comparison.
var (
	mRoutes        = obs.DefCounter("maest_route_total", "completed module routings")
	mRouteSec      = obs.DefHistogram("maest_route_seconds", "per-module routing latency", obs.DefBuckets)
	mRouteSegments = obs.DefCounter("maest_route_segments_total", "routed horizontal segments")
	mRouteTracks   = obs.DefCounter("maest_route_tracks_total", "allocated channel tracks")
	mRouteFeeds    = obs.DefCounter("maest_route_feedthroughs_total", "inserted feed-through columns")
	mChannelTracks = obs.DefHistogram("maest_route_channel_tracks", "track count per routing channel", obs.CountBuckets)
)

// Options configures RouteModule.
type Options struct {
	// TrackSharing packs compatible segments onto shared tracks
	// (left-edge).  When false every segment gets its own track.
	TrackSharing bool
	// AbutAdjacentPairs connects two-pin nets between horizontally
	// adjacent devices in the same row by abutment (diffusion/poly
	// sharing) instead of a channel track.  This is how manual
	// full-custom layouts wire neighbours; standard-cell routing
	// (TimberWolf style) leaves it off.
	AbutAdjacentPairs bool
	// MaxShare caps how many segments may share one track (0 = no
	// cap).  A modern two-metal channel router reaches the density
	// bound (no cap); the single-metal nMOS flows of the paper's era
	// shared tracks only weakly — TimberWolf 3.2-generation layouts
	// are modelled with MaxShare = 2, which reproduces the published
	// estimator-overestimate band.  Ignored unless TrackSharing is
	// set.
	MaxShare int
}

// Result is the routing outcome.
type Result struct {
	// ChannelTracks[c] is the track count of channel c; channel c
	// runs above row c, and channel n (= row count) runs below the
	// last row.
	ChannelTracks []int
	// FeedThroughs[r] counts feed-through columns inserted in row r.
	FeedThroughs []int
	// TotalTracks and TotalFeedThroughs are the sums of the above.
	TotalTracks       int
	TotalFeedThroughs int
	// Segments counts routed horizontal segments (for diagnostics).
	Segments int
}

// ErrRoute wraps routing failures.
var ErrRoute = errors.New("route: routing failed")

// segment is one horizontal wiring interval competing for a track in
// a channel.
type segment struct {
	iv geom.Interval
}

// RouteModule routes every net of the placement's circuit.
func RouteModule(pl *place.Placement, opts Options) (*Result, error) {
	return RouteModuleCtx(context.Background(), pl, opts)
}

// RouteModuleCtx is RouteModule with observability: a "route" span
// carrying the segment/track/feed-through counts plus the router
// metrics.
func RouteModuleCtx(ctx context.Context, pl *place.Placement, opts Options) (res *Result, err error) {
	_, sp := obs.Start(ctx, "route")
	sp.SetString("module", pl.Circuit.Name)
	defer func(t0 time.Time) {
		mRouteSec.Observe(time.Since(t0).Seconds())
		if err == nil {
			mRoutes.Inc()
			mRouteSegments.Add(int64(res.Segments))
			mRouteTracks.Add(int64(res.TotalTracks))
			mRouteFeeds.Add(int64(res.TotalFeedThroughs))
			for _, t := range res.ChannelTracks {
				mChannelTracks.Observe(float64(t))
			}
			sp.SetInt("segments", int64(res.Segments))
			sp.SetInt("tracks", int64(res.TotalTracks))
			sp.SetInt("feedthroughs", int64(res.TotalFeedThroughs))
			sp.SetInt("channels", int64(len(res.ChannelTracks)))
		}
		sp.EndErr(err)
	}(time.Now())
	return routeModule(pl, opts)
}

func routeModule(pl *place.Placement, opts Options) (*Result, error) {
	if err := pl.Check(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRoute, err)
	}
	nRows := len(pl.Rows)
	res := &Result{
		ChannelTracks: make([]int, nRows+1),
		FeedThroughs:  make([]int, nRows),
	}
	channels := make([][]segment, nRows+1)
	xs := pl.Positions()

	for _, net := range pl.Circuit.Nets {
		if net.Degree() < 2 {
			continue
		}
		// Gather pin locations.
		type pin struct {
			x   geom.Lambda
			row int
		}
		pins := make([]pin, 0, net.Degree())
		rmin, rmax := nRows, -1
		for _, dev := range net.Devices {
			d := dev.Index
			p := pin{x: xs[d], row: pl.RowOf[d]}
			pins = append(pins, p)
			if p.row < rmin {
				rmin = p.row
			}
			if p.row > rmax {
				rmax = p.row
			}
		}
		// Spine column: median pin x, the trunk the net crosses rows
		// on.
		spine := medianX(pins, func(p pin) geom.Lambda { return p.x })

		if rmin == rmax {
			if opts.AbutAdjacentPairs && len(pins) == 2 {
				a, b := net.Devices[0].Index, net.Devices[1].Index
				ds := pl.Slot[a] - pl.Slot[b]
				if ds == 1 || ds == -1 {
					continue // neighbours share diffusion, no track
				}
			}
			// Single-row net: one segment in the channel above the
			// row ("even when all Standard-Cells attached to a net
			// are placed in one row, they are usually wired through
			// a routing channel").
			px := make([]geom.Lambda, len(pins))
			for i, p := range pins {
				px[i] = p.x
			}
			channels[rmin] = append(channels[rmin], segment{xsInterval(px)})
			res.Segments++
			continue
		}
		// Feed-throughs in intermediate rows without a pin.
		hasPin := map[int]bool{}
		for _, p := range pins {
			hasPin[p.row] = true
		}
		for r := rmin + 1; r < rmax; r++ {
			if !hasPin[r] {
				res.FeedThroughs[r]++
			}
		}
		// Channel segments: channel c (between rows c-1 and c) for
		// c in rmin+1..rmax carries the spine plus the pins that
		// connect into it: row rmin pins connect downward into
		// channel rmin+1, row rmax pins upward into channel rmax,
		// intermediate-row pins upward into their own channel.
		points := make(map[int][]geom.Lambda)
		for c := rmin + 1; c <= rmax; c++ {
			points[c] = append(points[c], spine)
		}
		for _, p := range pins {
			switch {
			case p.row == rmin:
				points[rmin+1] = append(points[rmin+1], p.x)
			default:
				points[p.row] = append(points[p.row], p.x)
			}
		}
		for c := rmin + 1; c <= rmax; c++ {
			iv := xsInterval(points[c])
			channels[c] = append(channels[c], segment{iv})
			res.Segments++
		}
	}

	for c, segs := range channels {
		if opts.TrackSharing {
			res.ChannelTracks[c] = leftEdge(segs, opts.MaxShare)
		} else {
			res.ChannelTracks[c] = len(segs)
		}
		res.TotalTracks += res.ChannelTracks[c]
	}
	for _, f := range res.FeedThroughs {
		res.TotalFeedThroughs += f
	}
	return res, nil
}

// xsInterval returns the horizontal extent of a point set, at least
// 1λ wide.
func xsInterval(points []geom.Lambda) geom.Interval {
	lo, hi := points[0], points[0]
	for _, x := range points[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1 // a degenerate segment still occupies a column
	}
	return geom.Interval{Lo: lo, Hi: hi}
}

func medianX[T any](items []T, get func(T) geom.Lambda) geom.Lambda {
	vals := make([]geom.Lambda, len(items))
	for i, it := range items {
		vals[i] = get(it)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals[len(vals)/2]
}

// leftEdge packs segments onto the minimum number of tracks ignoring
// vertical constraints: sort by left edge and greedily reuse the
// first track whose last segment ends at or before the new segment's
// start.  With maxShare = 0 the result equals the channel's maximum
// local density; a positive maxShare additionally caps the number of
// segments per track (the era-router model — see Options.MaxShare).
func leftEdge(segs []segment, maxShare int) int {
	if len(segs) == 0 {
		return 0
	}
	sorted := make([]segment, len(segs))
	copy(sorted, segs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].iv.Lo != sorted[j].iv.Lo {
			return sorted[i].iv.Lo < sorted[j].iv.Lo
		}
		return sorted[i].iv.Hi < sorted[j].iv.Hi
	})
	type track struct {
		end   geom.Lambda
		count int
	}
	var tracks []track
	for _, s := range sorted {
		placed := false
		for t := range tracks {
			if tracks[t].end <= s.iv.Lo && (maxShare <= 0 || tracks[t].count < maxShare) {
				tracks[t].end = s.iv.Hi
				tracks[t].count++
				placed = true
				break
			}
		}
		if !placed {
			tracks = append(tracks, track{end: s.iv.Hi, count: 1})
		}
	}
	return len(tracks)
}

// Density returns the maximum number of simultaneously overlapping
// segments among ivs — the lower bound any channel router must meet.
// Exposed for the router's own invariant tests.
func Density(ivs []geom.Interval) int {
	type event struct {
		x     geom.Lambda
		delta int
	}
	evs := make([]event, 0, 2*len(ivs))
	for _, iv := range ivs {
		if iv.Empty() {
			continue
		}
		evs = append(evs, event{iv.Lo, +1}, event{iv.Hi, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].x != evs[j].x {
			return evs[i].x < evs[j].x
		}
		return evs[i].delta < evs[j].delta // close before open at same x
	})
	cur, best := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > best {
			best = cur
		}
	}
	return best
}
