package route

import (
	"fmt"
	"testing"
	"testing/quick"

	"maest/internal/gen"
	"maest/internal/geom"
	"maest/internal/netlist"
	"maest/internal/place"
	"maest/internal/tech"
)

func placed(t testing.TB, gates, rows int, seed int64) *place.Placement {
	t.Helper()
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: fmt.Sprintf("r%d", gates), Gates: gates, Inputs: 5, Outputs: 4, Seed: seed,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(c, p, place.Options{Rows: rows, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestRouteModuleBasics(t *testing.T) {
	pl := placed(t, 60, 3, 1)
	res, err := RouteModule(pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ChannelTracks) != 4 {
		t.Fatalf("channels = %d, want rows+1 = 4", len(res.ChannelTracks))
	}
	if len(res.FeedThroughs) != 3 {
		t.Fatalf("feedthrough rows = %d, want 3", len(res.FeedThroughs))
	}
	if res.TotalTracks <= 0 || res.Segments <= 0 {
		t.Fatalf("empty routing: %+v", res)
	}
	sum := 0
	for _, c := range res.ChannelTracks {
		sum += c
	}
	if sum != res.TotalTracks {
		t.Fatalf("TotalTracks %d != channel sum %d", res.TotalTracks, sum)
	}
}

func TestSharingNeverWorse(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		pl := placed(t, 50, 3, seed)
		plain, err := RouteModule(pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		shared, err := RouteModule(pl, Options{TrackSharing: true})
		if err != nil {
			t.Fatal(err)
		}
		if shared.TotalTracks > plain.TotalTracks {
			t.Fatalf("seed %d: sharing used more tracks (%d > %d)",
				seed, shared.TotalTracks, plain.TotalTracks)
		}
		if shared.TotalFeedThroughs != plain.TotalFeedThroughs {
			t.Fatalf("seed %d: sharing changed feed-throughs", seed)
		}
		for c := range plain.ChannelTracks {
			if shared.ChannelTracks[c] > plain.ChannelTracks[c] {
				t.Fatalf("seed %d channel %d: sharing worse", seed, c)
			}
		}
	}
}

func TestSingleRowRouting(t *testing.T) {
	// All nets in one row: one segment each in channel 0, no
	// feed-throughs.
	pl := placed(t, 20, 1, 2)
	res, err := RouteModule(pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFeedThroughs != 0 {
		t.Fatalf("single row has %d feed-throughs", res.TotalFeedThroughs)
	}
	if res.ChannelTracks[1] != 0 {
		t.Fatalf("channel below single row should be empty, has %d tracks", res.ChannelTracks[1])
	}
	s, err := netlist.Gather(pl.Circuit, tech.NMOS25())
	if err != nil {
		t.Fatal(err)
	}
	if res.ChannelTracks[0] != s.H {
		t.Fatalf("one track per routable net expected: %d != H=%d", res.ChannelTracks[0], s.H)
	}
}

func TestFeedThroughInsertion(t *testing.T) {
	// Hand-built: a 2-pin net between row 0 and row 2 must insert a
	// feed-through in row 1.
	p := tech.NMOS25()
	b := netlist.NewBuilder("ft")
	b.AddDevice("g0", "INV", "a", "x")
	b.AddDevice("g1", "INV", "b", "c") // filler in row 1
	b.AddDevice("g2", "INV", "x", "y")
	b.AddPort("pa", netlist.In, "a")
	b.AddPort("pb", netlist.In, "b")
	b.AddPort("pc", netlist.Out, "c")
	b.AddPort("py", netlist.Out, "y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(c, p, place.Options{Rows: 3, Seed: 1, Moves: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin initial deal: g0->row0, g1->row1, g2->row2.
	if pl.RowOf[0] != 0 || pl.RowOf[2] != 2 {
		t.Skip("initial deal changed; rewrite fixture")
	}
	res, err := RouteModule(pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FeedThroughs[1] != 1 {
		t.Fatalf("feedthroughs in row 1 = %d, want 1", res.FeedThroughs[1])
	}
	// Net x crosses channels 1 and 2: each carries a segment.
	if res.ChannelTracks[1] == 0 || res.ChannelTracks[2] == 0 {
		t.Fatalf("crossing channels empty: %v", res.ChannelTracks)
	}
}

func TestNoFeedThroughWhenPinInIntermediateRow(t *testing.T) {
	// A 3-pin net with a pin in the middle row crosses without a
	// feed-through.
	p := tech.NMOS25()
	b := netlist.NewBuilder("mid")
	b.AddDevice("g0", "INV", "x", "a")
	b.AddDevice("g1", "INV", "x", "b")
	b.AddDevice("g2", "INV", "x", "c")
	b.AddDevice("gd", "INV", "d", "x")
	b.AddPort("pd", netlist.In, "d")
	b.AddPort("pa", netlist.Out, "a")
	b.AddPort("pb", netlist.Out, "b")
	b.AddPort("pc", netlist.Out, "c")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(c, p, place.Options{Rows: 3, Seed: 1, Moves: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Net x touches g0(row0), g1(row1), g2(row2), gd(row0): middle
	// row has a pin.
	res, err := RouteModule(pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFeedThroughs != 0 {
		t.Fatalf("unexpected feed-throughs: %v", res.FeedThroughs)
	}
}

func TestLeftEdgeEqualsDensity(t *testing.T) {
	// Left-edge without vertical constraints achieves exactly the
	// channel density.
	f := func(raw []uint16) bool {
		var segs []segment
		var ivs []geom.Interval
		for i := 0; i+1 < len(raw); i += 2 {
			lo := geom.Lambda(raw[i] % 500)
			hi := lo + geom.Lambda(raw[i+1]%50) + 1
			iv := geom.Interval{Lo: lo, Hi: hi}
			segs = append(segs, segment{iv})
			ivs = append(ivs, iv)
		}
		return leftEdge(segs, 0) == Density(ivs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDensity(t *testing.T) {
	ivs := []geom.Interval{{Lo: 0, Hi: 10}, {Lo: 5, Hi: 15}, {Lo: 10, Hi: 20}, {Lo: 0, Hi: 3}}
	if d := Density(ivs); d != 2 {
		t.Fatalf("density = %d, want 2", d)
	}
	ivs = append(ivs, geom.Interval{Lo: 1, Hi: 12})
	if d := Density(ivs); d != 3 {
		t.Fatalf("density = %d, want 3", d)
	}
	if d := Density(nil); d != 0 {
		t.Fatalf("density(nil) = %d", d)
	}
	// Touching intervals do not overlap.
	if d := Density([]geom.Interval{{Lo: 0, Hi: 5}, {Lo: 5, Hi: 9}}); d != 1 {
		t.Fatalf("touching density = %d, want 1", d)
	}
}

func TestRouteRejectsBrokenPlacement(t *testing.T) {
	pl := placed(t, 10, 2, 3)
	pl.RowOf[0] = 1 // corrupt the index map
	if _, err := RouteModule(pl, Options{}); err == nil {
		t.Fatal("corrupted placement accepted")
	}
}
