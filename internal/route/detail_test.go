package route

import (
	"testing"

	"maest/internal/gen"
	"maest/internal/geom"
	"maest/internal/netlist"
	"maest/internal/place"
	"maest/internal/tech"
)

func TestDetailRouteValidates(t *testing.T) {
	for _, cfg := range []struct {
		gates, rows int
		seed        int64
	}{
		{20, 1, 1}, {40, 2, 2}, {60, 3, 3}, {80, 5, 4}, {120, 6, 5},
	} {
		pl := placed(t, cfg.gates, cfg.rows, cfg.seed)
		d, err := DetailRoute(pl)
		if err != nil {
			t.Fatalf("gates=%d rows=%d: %v", cfg.gates, cfg.rows, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("gates=%d rows=%d: %v", cfg.gates, cfg.rows, err)
		}
		if len(d.Channels) != cfg.rows+1 {
			t.Fatalf("channels = %d, want %d", len(d.Channels), cfg.rows+1)
		}
		if d.TotalTracks == 0 {
			t.Fatal("no tracks used")
		}
	}
}

func TestDetailRouteTrackCountsAtLeastDensity(t *testing.T) {
	// Detailed routing can never beat the undetailed density-optimal
	// left-edge count.
	for seed := int64(1); seed <= 4; seed++ {
		pl := placed(t, 50, 3, seed)
		coarse, err := RouteModule(pl, Options{TrackSharing: true})
		if err != nil {
			t.Fatal(err)
		}
		det, err := DetailRoute(pl)
		if err != nil {
			t.Fatal(err)
		}
		if det.TotalTracks < coarse.TotalTracks {
			t.Fatalf("seed %d: detailed %d tracks < density bound %d",
				seed, det.TotalTracks, coarse.TotalTracks)
		}
	}
}

func TestDetailRouteEveryNetRouted(t *testing.T) {
	pl := placed(t, 40, 3, 7)
	d, err := DetailRoute(pl)
	if err != nil {
		t.Fatal(err)
	}
	routed := map[*netlist.Net]bool{}
	for _, ch := range d.Channels {
		for _, w := range ch.Wires {
			routed[w.Net] = true
		}
	}
	for _, n := range pl.Circuit.Nets {
		if n.Degree() >= 2 && !routed[n] {
			t.Errorf("net %q not routed", n.Name)
		}
	}
}

func TestDetailRouteVerticalConstraintForced(t *testing.T) {
	// Construct a channel where net A enters from the top and net B
	// from the bottom at the same column: A's trunk must sit above
	// B's.  Two rows, two identical-width cells per row so centres
	// align column-wise.
	p := tech.NMOS25()
	b := netlist.NewBuilder("vc")
	// Column 0: g0 (row0) over g2 (row1); column 1: g1 over g3.
	b.AddDevice("g0", "INV", "a", "x") // row 0
	b.AddDevice("g2", "INV", "x", "q") // row 1 -> net x spans rows at column 0
	b.AddDevice("g1", "INV", "q", "y") // row 0
	b.AddDevice("g3", "INV", "y", "z") // row 1 -> net y spans rows at column 1
	b.AddPort("pa", netlist.In, "a")
	b.AddPort("pz", netlist.Out, "z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(c, p, place.Options{Rows: 2, Seed: 1, Moves: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := DetailRoute(pl)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDetailRouteDeterministic(t *testing.T) {
	pl := placed(t, 60, 4, 9)
	a, err := DetailRoute(pl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DetailRoute(pl)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTracks != b.TotalTracks || a.TotalDoglegs != b.TotalDoglegs {
		t.Fatal("detailed routing not deterministic")
	}
	for i := range a.Channels {
		if len(a.Channels[i].Wires) != len(b.Channels[i].Wires) {
			t.Fatalf("channel %d wire counts differ", i)
		}
	}
}

func TestDetailRouteSuiteCircuits(t *testing.T) {
	p := tech.NMOS25()
	suite, err := gen.StandardCellSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range suite {
		for rows := 1; rows <= 5; rows++ {
			pl, err := place.Place(c, p, place.Options{Rows: rows, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			d, err := DetailRoute(pl)
			if err != nil {
				t.Fatalf("%s rows=%d: %v", c.Name, rows, err)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("%s rows=%d: %v", c.Name, rows, err)
			}
		}
	}
}

func TestDetailRouteRejectsBrokenPlacement(t *testing.T) {
	pl := placed(t, 10, 2, 3)
	pl.RowOf[0] = 1
	if _, err := DetailRoute(pl); err == nil {
		t.Fatal("corrupted placement accepted")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	mkNet := func(name string) *netlist.Net { return &netlist.Net{Name: name} }
	// Overlapping trunks on one track.
	d := &Detailed{Channels: []Channel{{
		Index:  0,
		Tracks: 1,
		Wires: []Wire{
			{Net: mkNet("a"), Track: 0, Span: geom.Interval{Lo: 0, Hi: 10}},
			{Net: mkNet("b"), Track: 0, Span: geom.Interval{Lo: 5, Hi: 15}},
		},
	}}}
	if err := d.Validate(); err == nil {
		t.Error("overlapping trunks accepted")
	}
	// Track index out of range.
	d2 := &Detailed{Channels: []Channel{{
		Index: 0, Tracks: 1,
		Wires: []Wire{{Net: mkNet("a"), Track: 3, Span: geom.Interval{Lo: 0, Hi: 4}}},
	}}}
	if err := d2.Validate(); err == nil {
		t.Error("out-of-range track accepted")
	}
	// Drop outside span.
	d3 := &Detailed{Channels: []Channel{{
		Index: 0, Tracks: 1,
		Wires: []Wire{{Net: mkNet("a"), Track: 0, Span: geom.Interval{Lo: 0, Hi: 4},
			TopDrops: []geom.Lambda{9}}},
	}}}
	if err := d3.Validate(); err == nil {
		t.Error("out-of-span drop accepted")
	}
	// Vertical short: bottom wire above top wire at shared column.
	na, nb := mkNet("a"), mkNet("b")
	d4 := &Detailed{Channels: []Channel{{
		Index: 0, Tracks: 2,
		Wires: []Wire{
			{Net: na, Track: 1, Span: geom.Interval{Lo: 0, Hi: 10}, TopDrops: []geom.Lambda{5}},
			{Net: nb, Track: 0, Span: geom.Interval{Lo: 0, Hi: 10}, BottomDrops: []geom.Lambda{5}},
		},
	}}}
	if err := d4.Validate(); err == nil {
		t.Error("vertical short accepted")
	}
}

func TestFindCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 cycle.
	above := [][]int{{1}, {2}, {0}}
	if c := findCycle(above, 3); c < 0 {
		t.Fatal("cycle not found")
	}
	// DAG.
	dag := [][]int{{1, 2}, {2}, nil}
	if c := findCycle(dag, 3); c >= 0 {
		t.Fatalf("false cycle at %d", c)
	}
	if c := findCycle(nil, 0); c >= 0 {
		t.Fatal("empty graph cycle")
	}
}

func BenchmarkDetailRoute(b *testing.B) {
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "det", Gates: 100, Inputs: 8, Outputs: 6, Seed: 1,
	}, p)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := place.Place(c, p, place.Options{Rows: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DetailRoute(pl); err != nil {
			b.Fatal(err)
		}
	}
}
