package route

import (
	"errors"
	"fmt"
	"sort"

	"maest/internal/geom"
	"maest/internal/netlist"
	"maest/internal/place"
)

// Detailed routing: beyond track *counts*, DetailRoute assigns every
// net segment to a concrete track and column positions, honouring the
// vertical constraints of classic two-layer channel routing (a pin
// entering the channel from the top must reach its trunk above any
// trunk whose net has a pin at the same column on the bottom edge —
// otherwise the two vertical wires would short).  Cyclic constraints
// are broken with doglegs: the offending segment is split at one of
// its pin columns.  This is the Hashimoto–Stevens constrained
// left-edge family of algorithms the paper's era used for nMOS
// channels.

// ErrDetail wraps detailed-routing failures.
var ErrDetail = errors.New("route: detailed routing failed")

// Wire is one horizontal trunk on a channel track, with the vertical
// drop columns that connect it to pins and feed-throughs.
type Wire struct {
	// Net is the routed net.
	Net *netlist.Net
	// Track is the 0-based track index from the channel top.
	Track int
	// Span is the trunk's horizontal extent.
	Span geom.Interval
	// TopDrops and BottomDrops are the columns where verticals leave
	// the trunk toward the upper and lower channel edge.
	TopDrops, BottomDrops []geom.Lambda
}

// Channel is one fully routed channel.
type Channel struct {
	// Index is the channel position: channel c runs above row c.
	Index int
	// Tracks is the number of tracks used.
	Tracks int
	// Wires lists the placed trunks.
	Wires []Wire
	// Doglegs counts constraint-cycle splits performed.
	Doglegs int
}

// Detailed is the full detailed-routing result.
type Detailed struct {
	Channels []Channel
	// TotalTracks sums the channel track counts.
	TotalTracks int
	// TotalDoglegs counts all splits.
	TotalDoglegs int
}

// chanSegment is a trunk candidate before track assignment.
type chanSegment struct {
	net  *netlist.Net
	span geom.Interval
	// top/bottom hold the vertical columns entering from each edge.
	top, bottom []geom.Lambda
}

// DetailRoute performs detailed channel routing over a placement.
// Pin-to-channel assignment follows the same policy as RouteModule,
// so DetailRoute's track counts are a refinement (never smaller in
// aggregate than the density bound, usually equal or slightly above
// it when doglegs are needed).
func DetailRoute(pl *place.Placement) (*Detailed, error) {
	if err := pl.Check(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDetail, err)
	}
	nRows := len(pl.Rows)
	pinCols := pl.PinColumns()
	segs := make(map[int]map[*netlist.Net]*chanSegment) // channel -> net -> segment
	seg := func(c int, n *netlist.Net) *chanSegment {
		if segs[c] == nil {
			segs[c] = map[*netlist.Net]*chanSegment{}
		}
		s := segs[c][n]
		if s == nil {
			s = &chanSegment{net: n, span: geom.Interval{Lo: 1 << 40, Hi: -(1 << 40)}}
			segs[c][n] = s
		}
		return s
	}
	grow := func(s *chanSegment, x geom.Lambda) {
		if x < s.span.Lo {
			s.span.Lo = x
		}
		if x > s.span.Hi {
			s.span.Hi = x
		}
	}

	for _, net := range pl.Circuit.Nets {
		if net.Degree() < 2 {
			continue
		}
		type pin struct {
			x   geom.Lambda
			row int
		}
		pins := make([]pin, 0, net.Degree())
		rmin, rmax := nRows, -1
		for _, dev := range net.Devices {
			d := dev.Index
			for k, pnet := range dev.Pins {
				if pnet != net {
					continue
				}
				p := pin{x: pinCols[d][k], row: pl.RowOf[d]}
				pins = append(pins, p)
				if p.row < rmin {
					rmin = p.row
				}
				if p.row > rmax {
					rmax = p.row
				}
			}
		}
		spine := medianX(pins, func(p pin) geom.Lambda { return p.x })

		if rmin == rmax {
			// Single-row net: trunk in the channel above the row,
			// all pins enter from below the channel (the row's top
			// edge).
			s := seg(rmin, net)
			for _, p := range pins {
				grow(s, p.x)
				s.bottom = append(s.bottom, p.x)
			}
			continue
		}
		// Multi-row: the spine crosses channels rmin+1..rmax; pins
		// enter their channel per the RouteModule policy.
		for c := rmin + 1; c <= rmax; c++ {
			s := seg(c, net)
			grow(s, spine)
			// The spine continues through: it leaves via both edges
			// except at the extremes.
			if c > rmin+1 {
				s.top = append(s.top, spine)
			}
			if c < rmax {
				s.bottom = append(s.bottom, spine)
			}
		}
		for _, p := range pins {
			switch {
			case p.row == rmin:
				s := seg(rmin+1, net)
				grow(s, p.x)
				s.top = append(s.top, p.x) // pin on the channel's upper edge
			default:
				s := seg(p.row, net)
				grow(s, p.x)
				s.bottom = append(s.bottom, p.x) // pin on the lower edge... see note
			}
		}
	}

	out := &Detailed{}
	for c := 0; c <= nRows; c++ {
		chSegs := segs[c]
		ch := Channel{Index: c}
		if len(chSegs) > 0 {
			list := make([]*chanSegment, 0, len(chSegs))
			for _, s := range chSegs {
				if s.span.Hi == s.span.Lo {
					s.span.Hi++
				}
				list = append(list, s)
			}
			var err error
			ch, err = routeChannel(c, list)
			if err != nil {
				return nil, err
			}
		}
		out.Channels = append(out.Channels, ch)
		out.TotalTracks += ch.Tracks
		out.TotalDoglegs += ch.Doglegs
	}
	return out, nil
}

// routeChannel assigns one channel's segments to tracks under the
// vertical constraint graph.
func routeChannel(index int, list []*chanSegment) (Channel, error) {
	// Deterministic order.
	sort.Slice(list, func(i, j int) bool {
		if list[i].span.Lo != list[j].span.Lo {
			return list[i].span.Lo < list[j].span.Lo
		}
		return list[i].net.Name < list[j].net.Name
	})
	// Two interacting repairs run to a joint fixpoint:
	//
	//  1. Same-edge collisions — different nets entering a channel
	//     from the same edge within a vertical pitch would short;
	//     the later drop jogs sideways.
	//  2. Vertical-constraint cycles — resolved by jogging one of
	//     the cycle's shared columns (the classic dogleg move).
	//
	// Each repair can disturb the other, so alternate until both are
	// clean; every jog moves a column strictly right and the budget
	// is fixed up front, so the loop terminates.
	doglegs := 0
	maxJogs := 8*len(list) + 16
	var above [][]int
	for pass := 0; ; pass++ {
		if pass > maxJogs {
			return Channel{}, fmt.Errorf("%w: channel %d: vertical repairs did not converge", ErrDetail, index)
		}
		if err := resolveEdgeCollisions(index, list); err != nil {
			return Channel{}, err
		}
		above = buildConstraints(list)
		u, v := findCycleEdge(above, len(list))
		if u < 0 {
			break
		}
		// Edge (v above u) exists because v has a top drop and u a
		// bottom drop at some shared column; jog u's bottom drop.
		if !jogSharedColumn(list[u], list[v]) {
			// Fall back to jogging v's top drop.
			if !jogSharedColumnTop(list[v], list[u]) {
				return Channel{}, fmt.Errorf("%w: channel %d: cannot jog constraint cycle", ErrDetail, index)
			}
		}
		doglegs++
	}
	// Constrained left-edge: fill tracks top to bottom; a segment is
	// eligible for the current track when all its must-be-above
	// segments are already placed on strictly higher tracks.
	placedTrack := make([]int, len(list))
	for i := range placedTrack {
		placedTrack[i] = -1
	}
	remaining := len(list)
	ch := Channel{Index: index}
	for track := 0; remaining > 0; track++ {
		if track > 2*len(list)+4 {
			return Channel{}, fmt.Errorf("%w: channel %d: track assignment did not converge", ErrDetail, index)
		}
		var lastEnd geom.Lambda = -(1 << 40)
		for i, s := range list {
			if placedTrack[i] >= 0 {
				continue
			}
			ok := s.span.Lo >= lastEnd
			for _, a := range above[i] {
				if placedTrack[a] < 0 || placedTrack[a] >= track {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			placedTrack[i] = track
			lastEnd = s.span.Hi
			remaining--
			ch.Wires = append(ch.Wires, Wire{
				Net:         s.net,
				Track:       track,
				Span:        s.span,
				TopDrops:    append([]geom.Lambda(nil), s.top...),
				BottomDrops: append([]geom.Lambda(nil), s.bottom...),
			})
		}
		ch.Tracks = track + 1
	}
	return ch, nil
}

// resolveEdgeCollisions shifts drop columns so no two different nets
// share a column on the same channel edge.  Deterministic: segments
// are processed in list order, columns claimed first-come.
func resolveEdgeCollisions(index int, list []*chanSegment) error {
	// Verticals are 2λ wide, so a drop at column x occupies [x, x+2):
	// different nets must keep their drop columns ≥ 2λ apart.
	for _, edge := range []bool{true, false} { // true = top edge
		owner := map[geom.Lambda]*chanSegment{}
		conflict := func(s *chanSegment, x geom.Lambda) bool {
			for dx := geom.Lambda(-1); dx <= 1; dx++ {
				if o, taken := owner[x+dx]; taken && o != s && o.net != s.net {
					return true
				}
			}
			return false
		}
		for _, s := range list {
			cols := s.top
			if !edge {
				cols = s.bottom
			}
			for i, x := range cols {
				budget := 0
				for conflict(s, x) {
					if budget++; budget > 4096 {
						return fmt.Errorf("%w: channel %d: cannot resolve edge collisions", ErrDetail, index)
					}
					x += 2 // jog one full vertical pitch and retry
				}
				cols[i] = x
				owner[x], owner[x+1] = s, s
				if s.span.Hi < x {
					s.span.Hi = x
				}
			}
		}
	}
	return nil
}

// buildConstraints derives the must-be-above relation from shared
// drop columns.
func buildConstraints(list []*chanSegment) [][]int {
	above := make([][]int, len(list))
	colTop := map[geom.Lambda][]int{}
	colBot := map[geom.Lambda][]int{}
	for i, s := range list {
		for _, x := range s.top {
			colTop[x] = append(colTop[x], i)
		}
		for _, x := range s.bottom {
			colBot[x] = append(colBot[x], i)
		}
	}
	for x, tops := range colTop {
		for _, t := range tops {
			// A vertical occupies [x, x+2): a top drop constrains any
			// different-net bottom drop within one column.
			for dx := geom.Lambda(-1); dx <= 1; dx++ {
				for _, b := range colBot[x+dx] {
					if t != b && list[t].net != list[b].net {
						above[b] = append(above[b], t)
					}
				}
			}
		}
	}
	return above
}

// findCycleEdge returns an edge (u, v) with v ∈ above[u] lying on a
// constraint cycle, or (-1, -1).
func findCycleEdge(above [][]int, n int) (int, int) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	var eu, ev = -1, -1
	var dfs func(int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range above[u] {
			if v >= n {
				continue
			}
			if color[v] == gray {
				eu, ev = u, v
				return true
			}
			if color[v] == white && dfs(v) {
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < n; u++ {
		if color[u] == white && dfs(u) {
			return eu, ev
		}
	}
	return -1, -1
}

// jogSharedColumn moves one of u's bottom drops that collides with a
// top drop of v one vertical pitch to the right, reporting success.
// Collision means the 2λ footprints touch: |x − y| ≤ 1.
func jogSharedColumn(u, v *chanSegment) bool {
	for i, x := range u.bottom {
		for _, y := range v.top {
			if x-y <= 1 && y-x <= 1 {
				u.bottom[i] = x + 2
				if u.span.Hi < x+2 {
					u.span.Hi = x + 2
				}
				return true
			}
		}
	}
	return false
}

// jogSharedColumnTop moves one of v's top drops that collides with a
// bottom drop of u one vertical pitch to the right.
func jogSharedColumnTop(v, u *chanSegment) bool {
	for i, x := range v.top {
		for _, y := range u.bottom {
			if x-y <= 1 && y-x <= 1 {
				v.top[i] = x + 2
				if v.span.Hi < x+2 {
					v.span.Hi = x + 2
				}
				return true
			}
		}
	}
	return false
}

// findCycle returns the index of a node on some cycle of the
// must-be-above relation, or -1.
func findCycle(above [][]int, n int) int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	var hit int = -1
	var dfs func(int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range above[u] {
			if v >= n {
				continue
			}
			if color[v] == gray {
				hit = v
				return true
			}
			if color[v] == white && dfs(v) {
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < n; u++ {
		if color[u] == white && dfs(u) {
			return hit
		}
	}
	return -1
}

// Validate checks the detailed routing invariants: trunks on one
// track never overlap, vertical constraints are satisfied, and every
// drop column lies within its trunk's span.
func (d *Detailed) Validate() error {
	for _, ch := range d.Channels {
		byTrack := map[int][]Wire{}
		for _, w := range ch.Wires {
			if w.Track < 0 || w.Track >= ch.Tracks {
				return fmt.Errorf("%w: channel %d: wire of %q on track %d of %d",
					ErrDetail, ch.Index, w.Net.Name, w.Track, ch.Tracks)
			}
			for _, x := range w.TopDrops {
				if x < w.Span.Lo || x > w.Span.Hi {
					return fmt.Errorf("%w: channel %d: top drop %d outside span %v",
						ErrDetail, ch.Index, x, w.Span)
				}
			}
			for _, x := range w.BottomDrops {
				if x < w.Span.Lo || x > w.Span.Hi {
					return fmt.Errorf("%w: channel %d: bottom drop %d outside span %v",
						ErrDetail, ch.Index, x, w.Span)
				}
			}
			byTrack[w.Track] = append(byTrack[w.Track], w)
		}
		for t, wires := range byTrack {
			sort.Slice(wires, func(i, j int) bool { return wires[i].Span.Lo < wires[j].Span.Lo })
			for i := 1; i < len(wires); i++ {
				if wires[i].Span.Lo < wires[i-1].Span.Hi {
					return fmt.Errorf("%w: channel %d track %d: trunks of %q and %q overlap",
						ErrDetail, ch.Index, t, wires[i-1].Net.Name, wires[i].Net.Name)
				}
			}
		}
		// Vertical constraints: for every column with a top drop of
		// wire A and a bottom drop of wire B (different nets), A must
		// be on a strictly smaller track index (nearer the top).
		tops := map[geom.Lambda][]Wire{}
		bots := map[geom.Lambda][]Wire{}
		for _, w := range ch.Wires {
			for _, x := range w.TopDrops {
				tops[x] = append(tops[x], w)
			}
			for _, x := range w.BottomDrops {
				bots[x] = append(bots[x], w)
			}
		}
		for x, ts := range tops {
			for _, tw := range ts {
				for _, bw := range bots[x] {
					if tw.Net == bw.Net {
						continue
					}
					if tw.Track >= bw.Track {
						return fmt.Errorf("%w: channel %d column %d: vertical short between %q (track %d) and %q (track %d)",
							ErrDetail, ch.Index, x, tw.Net.Name, tw.Track, bw.Net.Name, bw.Track)
					}
				}
			}
		}
	}
	return nil
}
