// Package gen produces the workloads the benches and experiments run
// on: deterministic reconstructions of the paper's evaluation
// circuits (five Full-Custom modules in the spirit of the Newkirk &
// Mathews examples, two Standard-Cell modules for the TimberWolf
// comparison), plus seeded random netlist generators for parameter
// sweeps and the multi-module chips used by the floor-planning
// experiment.
package gen

import (
	"fmt"
	"math/rand"

	"maest/internal/cells"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// RandomConfig parameterizes RandomCircuit.
type RandomConfig struct {
	// Name names the module.
	Name string
	// Gates is the number of logic gates to place.
	Gates int
	// Inputs and Outputs are the external port counts.
	Inputs, Outputs int
	// Locality in (0,1] biases input selection toward recently
	// created nets; smaller values produce longer, higher-fanout
	// nets.  Zero selects the default 0.5.
	Locality float64
	// Seed drives the deterministic RNG.
	Seed int64
}

// gateMix is the weighted gate-type palette for random circuits,
// chosen to resemble mapped control logic: inverter-rich with mixed
// fan-ins and a sprinkle of state.
var gateMix = []struct {
	f      cells.Func
	fanin  int
	weight int
}{
	{cells.FuncNot, 1, 20},
	{cells.FuncNand, 2, 25},
	{cells.FuncNor, 2, 15},
	{cells.FuncNand, 3, 10},
	{cells.FuncNor, 3, 6},
	{cells.FuncNand, 4, 4},
	{cells.FuncXor, 2, 8},
	{cells.FuncBuf, 1, 4},
	{cells.FuncDFF, 1, 8},
}

// RandomCircuit generates a seeded random gate-level circuit mapped
// onto the process's cell library.  The same config always yields the
// same circuit.
func RandomCircuit(cfg RandomConfig, p *tech.Process) (*netlist.Circuit, error) {
	if cfg.Gates < 1 {
		return nil, fmt.Errorf("gen: need at least 1 gate, got %d", cfg.Gates)
	}
	if cfg.Inputs < 1 {
		return nil, fmt.Errorf("gen: need at least 1 input, got %d", cfg.Inputs)
	}
	if cfg.Outputs < 0 {
		return nil, fmt.Errorf("gen: negative output count %d", cfg.Outputs)
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("rand%d", cfg.Gates)
	}
	locality := cfg.Locality
	if locality == 0 {
		locality = 0.5
	}
	if locality < 0 || locality > 1 {
		return nil, fmt.Errorf("gen: locality %g outside (0,1]", locality)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := netlist.NewBuilder(name)
	m := cells.NewMapper(p, b)

	totalWeight := 0
	for _, g := range gateMix {
		totalWeight += g.weight
	}

	nets := make([]string, 0, cfg.Inputs+cfg.Gates)
	for i := 0; i < cfg.Inputs; i++ {
		in := fmt.Sprintf("i%d", i)
		b.AddPort(in, netlist.In, in)
		nets = append(nets, in)
	}
	// pick selects a driver net with geometric recency bias: start
	// from a small window over the newest nets and keep doubling it
	// with probability 1−locality, then choose uniformly inside.
	pick := func() string {
		window := 8
		for window < len(nets) && rng.Float64() > locality {
			window *= 2
		}
		if window > len(nets) {
			window = len(nets)
		}
		return nets[len(nets)-1-rng.Intn(window)]
	}

	for g := 0; g < cfg.Gates; g++ {
		w := rng.Intn(totalWeight)
		var choice int
		for i, gm := range gateMix {
			if w < gm.weight {
				choice = i
				break
			}
			w -= gm.weight
		}
		gm := gateMix[choice]
		ins := make([]string, gm.fanin)
		for i := range ins {
			ins[i] = pick()
		}
		out := fmt.Sprintf("w%d", g)
		if err := m.Gate(fmt.Sprintf("u%d", g), gm.f, ins, out); err != nil {
			return nil, fmt.Errorf("gen: %v", err)
		}
		nets = append(nets, out)
	}
	// Attach output ports to the most recent distinct nets.
	for i := 0; i < cfg.Outputs && i < cfg.Gates; i++ {
		out := fmt.Sprintf("w%d", cfg.Gates-1-i)
		b.AddPort("o"+out, netlist.Out, out)
	}
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("gen: %v", err)
	}
	return c, nil
}

// Chain returns a k-inverter chain (k ≥ 1): the simplest 2-component
// net workload.
func Chain(name string, k int, p *tech.Process) (*netlist.Circuit, error) {
	if k < 1 {
		return nil, fmt.Errorf("gen: chain needs k ≥ 1, got %d", k)
	}
	if _, err := p.Device("INV"); err != nil {
		return nil, fmt.Errorf("gen: %v", err)
	}
	b := netlist.NewBuilder(name)
	for i := 0; i < k; i++ {
		b.AddDevice(fmt.Sprintf("g%d", i), "INV",
			fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	b.AddPort("in", netlist.In, "n0")
	b.AddPort("out", netlist.Out, fmt.Sprintf("n%d", k))
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("gen: %v", err)
	}
	return c, nil
}
