package gen

import (
	"fmt"
	"math/rand"

	"maest/internal/netlist"
	"maest/internal/tech"
)

// Chip is a multi-module design: the unit of work for the floor
// planner (paper §1: "the chip is partitioned into large modules
// which are laid out independently").
type Chip struct {
	Name string
	// Modules are the partitioned blocks, each estimated separately.
	Modules []*netlist.Circuit
	// GlobalNets are the inter-module connections the floor planner
	// optimizes wire length over.
	GlobalNets []GlobalNet
}

// GlobalNet is one chip-level net connecting ports of different
// modules.
type GlobalNet struct {
	Name string
	Pins []GlobalPin
}

// GlobalPin names one endpoint of a global net.
type GlobalPin struct {
	Module string
	Port   string
}

// ChipConfig parameterizes RandomChip.
type ChipConfig struct {
	Name string
	// Modules is the number of blocks (≥ 2).
	Modules int
	// MinGates and MaxGates bound each block's random size.
	MinGates, MaxGates int
	// Seed drives the deterministic RNG.
	Seed int64
}

// RandomChip generates a chip of random modules plus two-pin global
// nets wiring module outputs to other modules' inputs, leaving some
// ports as chip pads.  The same config always yields the same chip.
func RandomChip(cfg ChipConfig, p *tech.Process) (*Chip, error) {
	if cfg.Modules < 2 {
		return nil, fmt.Errorf("gen: chip needs ≥ 2 modules, got %d", cfg.Modules)
	}
	if cfg.MinGates < 1 || cfg.MaxGates < cfg.MinGates {
		return nil, fmt.Errorf("gen: bad gate bounds [%d,%d]", cfg.MinGates, cfg.MaxGates)
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("chip%d", cfg.Modules)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	chip := &Chip{Name: name}
	type portRef struct{ module, port string }
	var outs, ins []portRef
	for i := 0; i < cfg.Modules; i++ {
		gates := cfg.MinGates + rng.Intn(cfg.MaxGates-cfg.MinGates+1)
		mc := RandomConfig{
			Name:    fmt.Sprintf("%s_m%d", name, i),
			Gates:   gates,
			Inputs:  3 + rng.Intn(6),
			Outputs: 2 + rng.Intn(5),
			Seed:    cfg.Seed*1000 + int64(i),
		}
		c, err := RandomCircuit(mc, p)
		if err != nil {
			return nil, err
		}
		chip.Modules = append(chip.Modules, c)
		for _, port := range c.Ports {
			ref := portRef{c.Name, port.Name}
			if port.Dir == netlist.Out {
				outs = append(outs, ref)
			} else {
				ins = append(ins, ref)
			}
		}
	}
	// Wire ~70% of inputs to random outputs of other modules.
	rng.Shuffle(len(ins), func(i, j int) { ins[i], ins[j] = ins[j], ins[i] })
	netSeq := 0
	for _, in := range ins {
		if rng.Float64() > 0.7 || len(outs) == 0 {
			continue // stays a chip pad
		}
		// Pick a driver from a different module if possible.
		var candidates []portRef
		for _, o := range outs {
			if o.module != in.module {
				candidates = append(candidates, o)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		drv := candidates[rng.Intn(len(candidates))]
		netSeq++
		chip.GlobalNets = append(chip.GlobalNets, GlobalNet{
			Name: fmt.Sprintf("gn%d", netSeq),
			Pins: []GlobalPin{
				{Module: drv.module, Port: drv.port},
				{Module: in.module, Port: in.port},
			},
		})
	}
	return chip, nil
}
