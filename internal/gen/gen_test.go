package gen

import (
	"testing"

	"maest/internal/netlist"
	"maest/internal/tech"
)

func TestRandomCircuitDeterministic(t *testing.T) {
	p := tech.NMOS25()
	cfg := RandomConfig{Name: "r", Gates: 50, Inputs: 5, Outputs: 4, Seed: 7}
	a, err := RandomCircuit(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomCircuit(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumDevices() != b.NumDevices() || a.NumNets() != b.NumNets() {
		t.Fatal("same seed produced different circuits")
	}
	for i := range a.Devices {
		if a.Devices[i].Type != b.Devices[i].Type {
			t.Fatalf("device %d type differs", i)
		}
	}
	c, err := RandomCircuit(RandomConfig{Name: "r", Gates: 50, Inputs: 5, Outputs: 4, Seed: 8}, p)
	if err != nil {
		t.Fatal(err)
	}
	same := a.NumNets() == c.NumNets()
	if same {
		diff := false
		for i := range a.Devices {
			if a.Devices[i].Type != c.Devices[i].Type {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestRandomCircuitShape(t *testing.T) {
	p := tech.NMOS25()
	c, err := RandomCircuit(RandomConfig{Gates: 80, Inputs: 6, Outputs: 5, Seed: 11}, p)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDevices() < 80 {
		t.Fatalf("N = %d, want ≥ 80 (mapping may add cells)", c.NumDevices())
	}
	if c.NumPorts() != 11 {
		t.Fatalf("ports = %d, want 11", c.NumPorts())
	}
	s, err := netlist.Gather(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.H == 0 || s.MaxDegree < 2 {
		t.Fatalf("uninteresting circuit: H=%d maxD=%d", s.H, s.MaxDegree)
	}
}

func TestRandomCircuitValidation(t *testing.T) {
	p := tech.NMOS25()
	bad := []RandomConfig{
		{Gates: 0, Inputs: 2},
		{Gates: 5, Inputs: 0},
		{Gates: 5, Inputs: 2, Outputs: -1},
		{Gates: 5, Inputs: 2, Locality: 2},
		{Gates: 5, Inputs: 2, Locality: -0.5},
	}
	for i, cfg := range bad {
		if _, err := RandomCircuit(cfg, p); err == nil {
			t.Errorf("case %d: accepted bad config", i)
		}
	}
}

func TestChain(t *testing.T) {
	p := tech.NMOS25()
	c, err := Chain("ch", 10, p)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDevices() != 10 || c.NumPorts() != 2 {
		t.Fatalf("chain shape: N=%d ports=%d", c.NumDevices(), c.NumPorts())
	}
	if _, err := Chain("ch", 0, p); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestFullCustomSuite(t *testing.T) {
	p := tech.NMOS25()
	suite, err := FullCustomSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 5 {
		t.Fatalf("suite has %d modules, want 5", len(suite))
	}
	for _, c := range suite {
		if c.NumDevices() == 0 {
			t.Errorf("%s: empty", c.Name)
		}
		for _, d := range c.Devices {
			dt, err := p.Device(d.Type)
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			if dt.Class != tech.ClassTransistor {
				t.Errorf("%s: device %q is not a transistor", c.Name, d.Name)
			}
		}
	}
	// The pass ladder is the all-2-component-net module.
	ladder := suite[0]
	s, err := netlist.Gather(ladder, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxDegree > 2 {
		t.Fatalf("pass ladder has a net of degree %d", s.MaxDegree)
	}
}

func TestStandardCellSuite(t *testing.T) {
	p := tech.NMOS25()
	suite, err := StandardCellSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 2 {
		t.Fatalf("suite has %d modules, want 2", len(suite))
	}
	if suite[0].NumDevices() >= suite[1].NumDevices() {
		t.Fatal("suite should be ordered small, large")
	}
	for _, c := range suite {
		for _, d := range c.Devices {
			dt, err := p.Device(d.Type)
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			if dt.Class != tech.ClassCell {
				t.Errorf("%s: non-cell device %q", c.Name, d.Name)
			}
		}
	}
}

func TestSuiteBuildersIndividually(t *testing.T) {
	p := tech.NMOS25()
	if _, err := PassLadder("l", 0, p); err == nil {
		t.Error("ladder k=0 accepted")
	}
	if _, err := ShiftRegister("s", 0, p); err == nil {
		t.Error("shift k=0 accepted")
	}
	rs, err := RSLatch("rs", p)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumDevices() != 2 {
		t.Fatalf("RS latch has %d devices", rs.NumDevices())
	}
	fa, err := FullAdder("fa", p)
	if err != nil {
		t.Fatal(err)
	}
	if fa.NumDevices() != 5 || fa.NumPorts() != 5 {
		t.Fatalf("full adder: N=%d ports=%d", fa.NumDevices(), fa.NumPorts())
	}
	dec, err := Decoder2("dec", p)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumDevices() != 6 {
		t.Fatalf("decoder: N=%d", dec.NumDevices())
	}
	sr, err := ShiftRegister("sr", 4, p)
	if err != nil {
		t.Fatal(err)
	}
	clk := sr.NetByName("clk")
	if clk == nil || clk.Degree() != 4 {
		t.Fatalf("shift register clk degree = %v", clk)
	}
}

func TestRandomChip(t *testing.T) {
	p := tech.NMOS25()
	cfg := ChipConfig{Name: "chip", Modules: 6, MinGates: 20, MaxGates: 60, Seed: 3}
	chip, err := RandomChip(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(chip.Modules) != 6 {
		t.Fatalf("modules = %d", len(chip.Modules))
	}
	if len(chip.GlobalNets) == 0 {
		t.Fatal("no global nets generated")
	}
	// Global net endpoints must reference real module ports, across
	// different modules.
	byName := map[string]*netlist.Circuit{}
	for _, m := range chip.Modules {
		byName[m.Name] = m
	}
	for _, gn := range chip.GlobalNets {
		if len(gn.Pins) < 2 {
			t.Fatalf("net %s has %d pins", gn.Name, len(gn.Pins))
		}
		if gn.Pins[0].Module == gn.Pins[1].Module {
			t.Fatalf("net %s is intra-module", gn.Name)
		}
		for _, pin := range gn.Pins {
			m := byName[pin.Module]
			if m == nil {
				t.Fatalf("net %s references unknown module %q", gn.Name, pin.Module)
			}
			if m.PortByName(pin.Port) == nil {
				t.Fatalf("net %s references unknown port %s.%s", gn.Name, pin.Module, pin.Port)
			}
		}
	}
	// Deterministic.
	chip2, err := RandomChip(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(chip2.GlobalNets) != len(chip.GlobalNets) {
		t.Fatal("chip generation not deterministic")
	}
	// Validation.
	if _, err := RandomChip(ChipConfig{Modules: 1, MinGates: 1, MaxGates: 2}, p); err == nil {
		t.Error("1 module accepted")
	}
	if _, err := RandomChip(ChipConfig{Modules: 3, MinGates: 5, MaxGates: 2}, p); err == nil {
		t.Error("bad gate bounds accepted")
	}
}
