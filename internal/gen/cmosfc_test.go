package gen

import (
	"testing"

	"maest/internal/tech"
)

func TestFullCustomSuiteCMOS(t *testing.T) {
	p := tech.CMOS30()
	suite, err := FullCustomSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 5 {
		t.Fatalf("suite = %d", len(suite))
	}
	for _, c := range suite {
		for _, d := range c.Devices {
			dt, err := p.Device(d.Type)
			if err != nil || dt.Class != tech.ClassTransistor {
				t.Fatalf("%s: device %q not a CMOS transistor", c.Name, d.Name)
			}
		}
	}
}
