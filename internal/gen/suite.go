package gen

import (
	"fmt"

	"maest/internal/cells"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// The paper's Table 1 evaluates five small-to-moderate Full-Custom
// nMOS modules taken from Newkirk & Mathews' design library (the scan
// garbles the exact counts; see DESIGN.md §3).  FullCustomSuite
// rebuilds five modules of the same character at transistor level:
//
//	fc-passladder  a pass-transistor ladder whose nets are all
//	               two-component — the footnote case with zero
//	               estimated wire area
//	fc-rslatch     a cross-coupled NAND RS latch
//	fc-fulladder   a 1-bit full adder
//	fc-decoder2    a 2-to-4 decoder
//	fc-shift4      a 4-bit shift register (clock net degree 4)
//
// All but the ladder are authored at gate level and lowered through
// cells.ExpandTransistors, the same path a designer's schematic would
// take.

// FullCustomSuite returns the five Table-1-style transistor-level
// modules for the given process.
func FullCustomSuite(p *tech.Process) ([]*netlist.Circuit, error) {
	ladder, err := PassLadder("fc-passladder", 8, p)
	if err != nil {
		return nil, err
	}
	out := []*netlist.Circuit{ladder}
	for _, mk := range []func(string, *tech.Process) (*netlist.Circuit, error){
		named("fc-rslatch", RSLatch),
		named("fc-fulladder", FullAdder),
		named("fc-decoder2", Decoder2),
		named("fc-shift4", func(name string, p *tech.Process) (*netlist.Circuit, error) {
			return ShiftRegister(name, 4, p)
		}),
	} {
		c, err := mk("", p)
		if err != nil {
			return nil, err
		}
		x, err := cells.ExpandTransistors(c, p)
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
	return out, nil
}

func named(name string, mk func(string, *tech.Process) (*netlist.Circuit, error)) func(string, *tech.Process) (*netlist.Circuit, error) {
	return func(_ string, p *tech.Process) (*netlist.Circuit, error) { return mk(name, p) }
}

// StandardCellSuite returns the two Table-2-style gate-level modules.
// Like the paper's two Rutgers nMOS designs they are small control
// blocks — at this scale the estimator's one-net-per-track upper
// bound lands in the published +42%…+70% overestimate band against
// era-quality routing (larger designs drift further above it, which
// the paper itself predicts: sharing is "especially significant in
// larger designs").
func StandardCellSuite(p *tech.Process) ([]*netlist.Circuit, error) {
	small, err := RandomCircuit(RandomConfig{
		Name: "sc-exp1", Gates: 18, Inputs: 5, Outputs: 4, Seed: 1988, Locality: 0.9,
	}, p)
	if err != nil {
		return nil, err
	}
	large, err := RandomCircuit(RandomConfig{
		Name: "sc-exp2", Gates: 24, Inputs: 5, Outputs: 4, Seed: 54, Locality: 0.9,
	}, p)
	if err != nil {
		return nil, err
	}
	return []*netlist.Circuit{small, large}, nil
}

// PassLadder builds a k-stage pass-transistor ladder directly at
// transistor level; every net touches at most two devices, so the
// Full-Custom estimator assigns it zero wire area (the Table 1
// footnote case).
func PassLadder(name string, k int, p *tech.Process) (*netlist.Circuit, error) {
	if k < 1 {
		return nil, fmt.Errorf("gen: ladder needs k ≥ 1, got %d", k)
	}
	txType, err := passTransistorType(p)
	if err != nil {
		return nil, err
	}
	b := netlist.NewBuilder(name)
	for i := 0; i < k; i++ {
		g := fmt.Sprintf("sel%d", i)
		b.AddDevice(fmt.Sprintf("m%d", i), txType,
			g, fmt.Sprintf("s%d", i), fmt.Sprintf("s%d", i+1))
		b.AddPort("p"+g, netlist.In, g)
	}
	b.AddPort("pin", netlist.In, "s0")
	b.AddPort("pout", netlist.Out, fmt.Sprintf("s%d", k))
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("gen: %v", err)
	}
	return c, nil
}

func passTransistorType(p *tech.Process) (string, error) {
	for _, cand := range []string{"ENH", "NFET"} {
		if d, err := p.Device(cand); err == nil && d.Class == tech.ClassTransistor {
			return cand, nil
		}
	}
	return "", fmt.Errorf("gen: process %q has no pass-transistor device", p.Name)
}

// RSLatch builds the classic cross-coupled NAND RS latch at gate
// level.
func RSLatch(name string, p *tech.Process) (*netlist.Circuit, error) {
	b := netlist.NewBuilder(name)
	m := cells.NewMapper(p, b)
	if err := m.Gate("u_q", cells.FuncNand, []string{"sn", "qn"}, "q"); err != nil {
		return nil, err
	}
	if err := m.Gate("u_qn", cells.FuncNand, []string{"rn", "q"}, "qn"); err != nil {
		return nil, err
	}
	b.AddPort("sn", netlist.In, "sn")
	b.AddPort("rn", netlist.In, "rn")
	b.AddPort("q", netlist.Out, "q")
	b.AddPort("qn", netlist.Out, "qn")
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("gen: %v", err)
	}
	return c, nil
}

// FullAdder builds a 1-bit full adder: sum = a⊕b⊕cin,
// cout = NAND(NAND(a,b), NAND(cin, a⊕b)).
func FullAdder(name string, p *tech.Process) (*netlist.Circuit, error) {
	b := netlist.NewBuilder(name)
	m := cells.NewMapper(p, b)
	steps := []struct {
		name string
		f    cells.Func
		ins  []string
		out  string
	}{
		{"u_x1", cells.FuncXor, []string{"a", "b"}, "axb"},
		{"u_x2", cells.FuncXor, []string{"axb", "cin"}, "sum"},
		{"u_n1", cells.FuncNand, []string{"a", "b"}, "n1"},
		{"u_n2", cells.FuncNand, []string{"cin", "axb"}, "n2"},
		{"u_n3", cells.FuncNand, []string{"n1", "n2"}, "cout"},
	}
	for _, s := range steps {
		if err := m.Gate(s.name, s.f, s.ins, s.out); err != nil {
			return nil, err
		}
	}
	for _, in := range []string{"a", "b", "cin"} {
		b.AddPort(in, netlist.In, in)
	}
	b.AddPort("sum", netlist.Out, "sum")
	b.AddPort("cout", netlist.Out, "cout")
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("gen: %v", err)
	}
	return c, nil
}

// Decoder2 builds a 2-to-4 decoder: two input inverters and four
// 2-input NOR gates.
func Decoder2(name string, p *tech.Process) (*netlist.Circuit, error) {
	b := netlist.NewBuilder(name)
	m := cells.NewMapper(p, b)
	if err := m.Gate("u_ia", cells.FuncNot, []string{"a"}, "an"); err != nil {
		return nil, err
	}
	if err := m.Gate("u_ib", cells.FuncNot, []string{"b"}, "bn"); err != nil {
		return nil, err
	}
	outs := []struct {
		name string
		ins  []string
		out  string
	}{
		{"u_y0", []string{"a", "b"}, "y0"},
		{"u_y1", []string{"an", "b"}, "y1"},
		{"u_y2", []string{"a", "bn"}, "y2"},
		{"u_y3", []string{"an", "bn"}, "y3"},
	}
	for _, o := range outs {
		if err := m.Gate(o.name, cells.FuncNor, o.ins, o.out); err != nil {
			return nil, err
		}
	}
	b.AddPort("a", netlist.In, "a")
	b.AddPort("b", netlist.In, "b")
	for i := 0; i < 4; i++ {
		y := fmt.Sprintf("y%d", i)
		b.AddPort(y, netlist.Out, y)
	}
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("gen: %v", err)
	}
	return c, nil
}

// ShiftRegister builds a k-bit DFF shift register with a shared clock
// net (degree k), the canonical moderate-degree-net workload.
func ShiftRegister(name string, k int, p *tech.Process) (*netlist.Circuit, error) {
	if k < 1 {
		return nil, fmt.Errorf("gen: shift register needs k ≥ 1, got %d", k)
	}
	b := netlist.NewBuilder(name)
	m := cells.NewMapper(p, b)
	for i := 0; i < k; i++ {
		in := fmt.Sprintf("q%d", i)
		if i == 0 {
			in = "din"
		}
		out := fmt.Sprintf("q%d", i+1)
		if err := m.Gate(fmt.Sprintf("u_ff%d", i), cells.FuncDFF, []string{in, "clk"}, out); err != nil {
			return nil, err
		}
	}
	b.AddPort("din", netlist.In, "din")
	b.AddPort("clk", netlist.In, "clk")
	b.AddPort("dout", netlist.Out, fmt.Sprintf("q%d", k))
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("gen: %v", err)
	}
	return c, nil
}
