// Package sim is a combinational gate-level logic simulator.  Its job
// in this repository is verification: the technology mapper rewrites
// generic gates into library-cell networks (NAND trees, XOR chains,
// MUX decompositions), and the simulator proves those rewrites
// function-preserving by exhaustive truth-table comparison — the
// equivalence check any credible netlist-transforming tool ships
// with.
package sim

import (
	"errors"
	"fmt"

	"maest/internal/cells"
	"maest/internal/netlist"
)

// ErrSim wraps simulation failures.
var ErrSim = errors.New("sim: simulation failed")

// Eval evaluates a combinational circuit on the given input
// assignment (net name → value).  Every primary input net (driven by
// no device output) must be assigned; sequential cells and
// combinational cycles are rejected.  The result maps every net to
// its computed value.
func Eval(c *netlist.Circuit, inputs map[string]bool) (map[string]bool, error) {
	// Driver analysis: each device's last pin is its output.
	driverOf := map[*netlist.Net]*netlist.Device{}
	for _, d := range c.Devices {
		if len(d.Pins) < 2 {
			return nil, fmt.Errorf("%w: device %q has no output pin", ErrSim, d.Name)
		}
		out := d.Pins[len(d.Pins)-1]
		if out == nil {
			continue // unloaded output drives nothing observable
		}
		if prev, dup := driverOf[out]; dup {
			return nil, fmt.Errorf("%w: net %q driven by both %q and %q",
				ErrSim, out.Name, prev.Name, d.Name)
		}
		driverOf[out] = d
	}
	values := map[string]bool{}
	for name, v := range inputs {
		n := c.NetByName(name)
		if n == nil {
			return nil, fmt.Errorf("%w: unknown input net %q", ErrSim, name)
		}
		if _, driven := driverOf[n]; driven {
			return nil, fmt.Errorf("%w: net %q is driven but assigned as input", ErrSim, name)
		}
		values[name] = v
	}
	// Check all primary inputs assigned.
	for _, n := range c.Nets {
		if _, driven := driverOf[n]; driven {
			continue
		}
		if _, ok := values[n.Name]; !ok && n.PinCount > 0 {
			return nil, fmt.Errorf("%w: primary input %q unassigned", ErrSim, n.Name)
		}
	}
	// Evaluate devices with memoized recursion; gray-marking detects
	// combinational cycles.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := map[*netlist.Device]int{}
	var evalNet func(n *netlist.Net) (bool, error)
	var evalDev func(d *netlist.Device) (bool, error)
	evalNet = func(n *netlist.Net) (bool, error) {
		if v, ok := values[n.Name]; ok {
			return v, nil
		}
		d, driven := driverOf[n]
		if !driven {
			return false, fmt.Errorf("%w: net %q has no value", ErrSim, n.Name)
		}
		return evalDev(d)
	}
	evalDev = func(d *netlist.Device) (bool, error) {
		out := d.Pins[len(d.Pins)-1]
		if v, ok := values[out.Name]; ok {
			return v, nil
		}
		switch state[d] {
		case gray:
			return false, fmt.Errorf("%w: combinational cycle through %q", ErrSim, d.Name)
		case black:
			return values[out.Name], nil
		}
		state[d] = gray
		v, err := evalCell(d, evalNet)
		if err != nil {
			return false, err
		}
		state[d] = black
		values[out.Name] = v
		return v, nil
	}
	for _, d := range c.Devices {
		out := d.Pins[len(d.Pins)-1]
		if out == nil {
			continue
		}
		if _, err := evalDev(d); err != nil {
			return nil, err
		}
	}
	return values, nil
}

// evalCell computes one cell's output from its input nets.
func evalCell(d *netlist.Device, evalNet func(*netlist.Net) (bool, error)) (bool, error) {
	f, _, err := cells.CellFunc(d.Type)
	if err != nil {
		return false, fmt.Errorf("%w: device %q: %v", ErrSim, d.Name, err)
	}
	if f == cells.FuncDFF || f == cells.FuncLatch {
		return false, fmt.Errorf("%w: device %q is sequential; Eval is combinational only", ErrSim, d.Name)
	}
	var ins []bool
	for _, n := range d.Pins[:len(d.Pins)-1] {
		if n == nil {
			return false, fmt.Errorf("%w: device %q has an unconnected input", ErrSim, d.Name)
		}
		v, err := evalNet(n)
		if err != nil {
			return false, err
		}
		ins = append(ins, v)
	}
	if len(ins) == 0 {
		return false, fmt.Errorf("%w: device %q has no inputs", ErrSim, d.Name)
	}
	if d.Type == "AOI22" {
		if len(ins) != 4 {
			return false, fmt.Errorf("%w: AOI22 %q has %d inputs", ErrSim, d.Name, len(ins))
		}
		return !((ins[0] && ins[1]) || (ins[2] && ins[3])), nil
	}
	return EvalFunc(f, ins)
}

// EvalFunc computes a generic gate function over its inputs — the
// specification the mapper's output is checked against.
func EvalFunc(f cells.Func, ins []bool) (bool, error) {
	switch f {
	case cells.FuncBuf:
		return ins[0], nil
	case cells.FuncNot:
		return !ins[0], nil
	case cells.FuncAnd, cells.FuncNand:
		acc := true
		for _, v := range ins {
			acc = acc && v
		}
		if f == cells.FuncNand {
			return !acc, nil
		}
		return acc, nil
	case cells.FuncOr, cells.FuncNor:
		acc := false
		for _, v := range ins {
			acc = acc || v
		}
		if f == cells.FuncNor {
			return !acc, nil
		}
		return acc, nil
	case cells.FuncXor, cells.FuncXnor:
		acc := false
		for _, v := range ins {
			acc = acc != v
		}
		if f == cells.FuncXnor {
			return !acc, nil
		}
		return acc, nil
	case cells.FuncMux:
		if len(ins) != 3 {
			return false, fmt.Errorf("%w: MUX needs 3 inputs, got %d", ErrSim, len(ins))
		}
		if ins[0] {
			return ins[1], nil
		}
		return ins[2], nil
	default:
		return false, fmt.Errorf("%w: no evaluation for %v", ErrSim, f)
	}
}
