package sim

import (
	"fmt"
	"testing"

	"maest/internal/cells"
	"maest/internal/netlist"
	"maest/internal/tech"
)

func TestEvalBasicGates(t *testing.T) {
	b := netlist.NewBuilder("g")
	b.AddDevice("g1", "NAND2", "a", "b", "n1")
	b.AddDevice("g2", "INV", "n1", "y")
	b.AddPort("a", netlist.In, "a")
	b.AddPort("b", netlist.In, "b")
	b.AddPort("y", netlist.Out, "y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// y = a AND b.
	for _, tc := range []struct{ a, b, want bool }{
		{false, false, false}, {true, false, false},
		{false, true, false}, {true, true, true},
	} {
		vals, err := Eval(c, map[string]bool{"a": tc.a, "b": tc.b})
		if err != nil {
			t.Fatal(err)
		}
		if vals["y"] != tc.want {
			t.Fatalf("a=%v b=%v: y=%v", tc.a, tc.b, vals["y"])
		}
	}
}

func TestEvalErrors(t *testing.T) {
	mk := func(build func(b *netlist.Builder)) *netlist.Circuit {
		b := netlist.NewBuilder("e")
		build(b)
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// Missing input.
	c1 := mk(func(b *netlist.Builder) {
		b.AddDevice("g1", "INV", "a", "y")
		b.AddPort("pa", netlist.In, "a")
	})
	if _, err := Eval(c1, map[string]bool{}); err == nil {
		t.Error("unassigned input accepted")
	}
	// Unknown input name.
	if _, err := Eval(c1, map[string]bool{"zzz": true}); err == nil {
		t.Error("unknown input accepted")
	}
	// Assigning a driven net.
	if _, err := Eval(c1, map[string]bool{"a": true, "y": false}); err == nil {
		t.Error("driven net assignment accepted")
	}
	// Multiple drivers.
	c2 := mk(func(b *netlist.Builder) {
		b.AddDevice("g1", "INV", "a", "y")
		b.AddDevice("g2", "INV", "b", "y")
		b.AddPort("pa", netlist.In, "a")
		b.AddPort("pb", netlist.In, "b")
	})
	if _, err := Eval(c2, map[string]bool{"a": true, "b": false}); err == nil {
		t.Error("multi-driven net accepted")
	}
	// Combinational cycle (cross-coupled NANDs).
	c3 := mk(func(b *netlist.Builder) {
		b.AddDevice("g1", "NAND2", "s", "qn", "q")
		b.AddDevice("g2", "NAND2", "r", "q", "qn")
		b.AddPort("ps", netlist.In, "s")
		b.AddPort("pr", netlist.In, "r")
	})
	if _, err := Eval(c3, map[string]bool{"s": true, "r": true}); err == nil {
		t.Error("combinational cycle accepted")
	}
	// Sequential cell.
	c4 := mk(func(b *netlist.Builder) {
		b.AddDevice("f1", "DFF", "d", "clk", "q")
		b.AddPort("pd", netlist.In, "d")
		b.AddPort("pc", netlist.In, "clk")
	})
	if _, err := Eval(c4, map[string]bool{"d": true, "clk": false}); err == nil {
		t.Error("sequential cell accepted")
	}
	// Unconnected input pin.
	c5 := mk(func(b *netlist.Builder) {
		b.AddDevice("g1", "NAND2", "a", "", "y")
		b.AddPort("pa", netlist.In, "a")
	})
	if _, err := Eval(c5, map[string]bool{"a": true}); err == nil {
		t.Error("open input accepted")
	}
}

// TestMapperFunctionEquivalence is the headline verification: every
// generic gate function the mapper supports, at every fan-in, maps to
// a library network computing the same truth table — on the full
// library and on crippled libraries that force decompositions.
func TestMapperFunctionEquivalence(t *testing.T) {
	full := tech.NMOS25()
	noMux := full.Clone()
	delete(noMux.Devices, "MUX2")
	noWide := full.Clone() // force NAND/NOR trees
	delete(noWide.Devices, "NAND3")
	delete(noWide.Devices, "NAND4")
	delete(noWide.Devices, "NOR3")
	libs := map[string]*tech.Process{"full": full, "noMux": noMux, "noWide": noWide}

	cases := []struct {
		f      cells.Func
		fanins []int
	}{
		{cells.FuncBuf, []int{1}},
		{cells.FuncNot, []int{1}},
		{cells.FuncAnd, []int{1, 2, 3, 5, 8}},
		{cells.FuncNand, []int{1, 2, 3, 4, 6, 8}},
		{cells.FuncOr, []int{1, 2, 4, 7}},
		{cells.FuncNor, []int{2, 3, 5, 8}},
		{cells.FuncXor, []int{2, 3, 5}},
		{cells.FuncXnor, []int{2, 4}},
		{cells.FuncMux, []int{3}},
	}
	for libName, lib := range libs {
		for _, tc := range cases {
			for _, k := range tc.fanins {
				circ, ins, out := mapGate(t, lib, tc.f, k)
				for vec := 0; vec < 1<<k; vec++ {
					assign := map[string]bool{}
					var bits []bool
					for i, in := range ins {
						v := vec&(1<<i) != 0
						assign[in] = v
						bits = append(bits, v)
					}
					want, err := EvalFunc(tc.f, bits)
					if err != nil {
						t.Fatal(err)
					}
					vals, err := Eval(circ, assign)
					if err != nil {
						t.Fatalf("%s %v/%d vec %b: %v", libName, tc.f, k, vec, err)
					}
					if vals[out] != want {
						t.Fatalf("%s: %v fan-in %d: wrong output for input %0*b: got %v want %v",
							libName, tc.f, k, k, vec, vals[out], want)
					}
				}
			}
		}
	}
}

func mapGate(t *testing.T, p *tech.Process, f cells.Func, fanin int) (*netlist.Circuit, []string, string) {
	t.Helper()
	b := netlist.NewBuilder("eq")
	m := cells.NewMapper(p, b)
	ins := make([]string, fanin)
	for i := range ins {
		ins[i] = fmt.Sprintf("x%d", i)
		b.AddPort("p"+ins[i], netlist.In, ins[i])
	}
	if err := m.Gate("g", f, ins, "y"); err != nil {
		t.Fatalf("map %v/%d: %v", f, fanin, err)
	}
	b.AddPort("py", netlist.Out, "y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, ins, "y"
}

func TestAOI22Semantics(t *testing.T) {
	b := netlist.NewBuilder("aoi")
	b.AddDevice("u1", "AOI22", "a", "b", "c", "d", "y")
	for _, in := range []string{"a", "b", "c", "d"} {
		b.AddPort("p"+in, netlist.In, in)
	}
	b.AddPort("py", netlist.Out, "y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for vec := 0; vec < 16; vec++ {
		a, bb, cc, d := vec&1 != 0, vec&2 != 0, vec&4 != 0, vec&8 != 0
		vals, err := Eval(c, map[string]bool{"a": a, "b": bb, "c": cc, "d": d})
		if err != nil {
			t.Fatal(err)
		}
		want := !((a && bb) || (cc && d))
		if vals["y"] != want {
			t.Fatalf("AOI22(%v,%v,%v,%v) = %v, want %v", a, bb, cc, d, vals["y"], want)
		}
	}
}

func TestEvalFuncErrors(t *testing.T) {
	if _, err := EvalFunc(cells.FuncMux, []bool{true}); err == nil {
		t.Error("short MUX accepted")
	}
	if _, err := EvalFunc(cells.FuncDFF, []bool{true}); err == nil {
		t.Error("sequential function accepted")
	}
}
