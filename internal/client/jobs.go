package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"maest/internal/serve"
)

// The floorplan job API: submit is asynchronous (the server answers
// 202 with a job id before the anneal starts), so the client wraps the
// submit/poll/cancel lifecycle — including WaitJob, the poll loop a
// CLI or CI harness wants.

// DefaultPollInterval is WaitJob's default delay between polls.
const DefaultPollInterval = 50 * time.Millisecond

// FloorplanSubmit answers POST /v1/floorplan.  Both 202 (a new job
// accepted) and 200 (a duplicate of a known job, or a finished record
// rehydrated from the store) are successes; everything else — 429 when
// the queue is full, with the Retry-After hint in the *APIError — is
// an error.
func (c *Client) FloorplanSubmit(ctx context.Context, req serve.FloorplanRequest) (*serve.JobResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encode: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/floorplan", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.inject(ctx, hreq)
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, decodeAPIError(resp)
	}
	var job serve.JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return nil, fmt.Errorf("client: decode /v1/floorplan: %w", err)
	}
	return &job, nil
}

// Job answers GET /v1/jobs/{id}: the job's current lifecycle snapshot.
func (c *Client) Job(ctx context.Context, id string) (*serve.JobResponse, error) {
	var job serve.JobResponse
	if err := c.get(ctx, "/v1/jobs/"+id, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// CancelJob answers DELETE /v1/jobs/{id}.  Cancelling a terminal job
// is a no-op that returns its snapshot, so the call is idempotent.
func (c *Client) CancelJob(ctx context.Context, id string) (*serve.JobResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	c.inject(ctx, req)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var job serve.JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return nil, fmt.Errorf("client: decode cancel: %w", err)
	}
	return &job, nil
}

// JobTerminal reports whether state is one of the three terminal job
// states (done, failed, cancelled).
func JobTerminal(state string) bool {
	switch state {
	case serve.JobDone, serve.JobFailed, serve.JobCancelled:
		return true
	}
	return false
}

// ErrJobFailed marks a WaitJob that ended in the failed or cancelled
// state; the returned snapshot carries the detail.
var ErrJobFailed = errors.New("client: floorplan job did not finish")

// WaitJob polls GET /v1/jobs/{id} every interval (0 = the default)
// until the job is terminal or ctx expires.  A job ending failed or
// cancelled returns its final snapshot alongside an error wrapping
// ErrJobFailed, so callers can both branch on the outcome and show
// the server's message.  An optional progress callback observes every
// non-terminal snapshot.
func (c *Client) WaitJob(ctx context.Context, id string, interval time.Duration, progress func(*serve.JobResponse)) (*serve.JobResponse, error) {
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if JobTerminal(job.State) {
			if job.State != serve.JobDone {
				return job, fmt.Errorf("%w: job %s is %s: %s", ErrJobFailed, id, job.State, job.Error)
			}
			return job, nil
		}
		if progress != nil {
			progress(job)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-tick.C:
		}
	}
}
