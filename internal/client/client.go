// Package client is the Go client for maest-serve: typed wrappers
// over the /v1 wire format with W3C trace-context injection, so a
// floorplanner loop (or the future maest-router) calling the service
// participates in the same distributed trace as the hops it calls.
//
// Trace propagation: every request carries a traceparent header.  If
// the caller's context holds an obs.TraceContext (installed with
// obs.WithTraceContext — e.g. inside a serve handler, or minted by the
// caller for a whole floorplan iteration), that context is injected
// as-is, making its span id the server's parent; otherwise the client
// mints a fresh root per request.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"maest/internal/obs"
	"maest/internal/serve"
)

// Client calls one maest-serve instance.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the serve instance at base (e.g.
// "http://localhost:8080").
func New(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 60 * time.Second},
	}
}

// WithHTTPClient replaces the underlying HTTP client (tests, custom
// transports, tighter timeouts) and returns the client for chaining.
func (c *Client) WithHTTPClient(h *http.Client) *Client {
	c.http = h
	return c
}

// APIError is a non-2xx answer from the service, carrying the
// structured error body — including the request and trace IDs the
// server minted, which is what an operator asks for first.
type APIError struct {
	Status     int
	Message    string
	RequestID  string
	TraceID    string
	RetryAfter int // seconds, from a 429's Retry-After hint (0 = none)
}

func (e *APIError) Error() string {
	msg := fmt.Sprintf("client: %d: %s", e.Status, e.Message)
	if e.RequestID != "" {
		msg += " (request " + e.RequestID + ")"
	}
	return msg
}

// Estimate answers POST /v1/estimate for one circuit.
func (c *Client) Estimate(ctx context.Context, req serve.EstimateRequest) (*serve.EstimateResponse, error) {
	var resp serve.EstimateResponse
	if err := c.post(ctx, "/v1/estimate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// EstimateDelta answers POST /v1/estimate/delta: an ECO edit script
// against a plan a prior answer named in its "plan" field.  When the
// parent has aged out of the server's plan cache the call fails with
// a 404 (see IsUnknownParent); the fallback is a full Estimate, whose
// answer mints a fresh plan key to chain from.
func (c *Client) EstimateDelta(ctx context.Context, req serve.DeltaRequest) (*serve.EstimateResponse, error) {
	var resp serve.EstimateResponse
	if err := c.post(ctx, "/v1/estimate/delta", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// IsUnknownParent reports whether err is the service's "parent plan
// not found" answer to EstimateDelta — the one error an ECO loop
// handles specially, by re-estimating in full.
func IsUnknownParent(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound
}

// EstimateBatch answers POST /v1/estimate/batch for a chip's worth of
// circuits.
func (c *Client) EstimateBatch(ctx context.Context, req serve.BatchRequest) (*serve.BatchResponse, error) {
	var resp serve.BatchResponse
	if err := c.post(ctx, "/v1/estimate/batch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Congestion answers POST /v1/congestion for one circuit.
func (c *Client) Congestion(ctx context.Context, req serve.CongestionRequest) (*serve.CongestionResponse, error) {
	var resp serve.CongestionResponse
	if err := c.post(ctx, "/v1/congestion", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health answers GET /healthz.  A degraded service (503) returns the
// parsed health body and a nil error: the caller asked for health and
// got it; only transport and decode failures are errors.
func (c *Client) Health(ctx context.Context) (*serve.HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	c.inject(ctx, req)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("client: decode health: %w", err)
	}
	return &h, nil
}

// DebugStore answers GET /debug/store: the persistent store's full
// statistics snapshot.  The endpoint lives on the debug listener, so
// construct the client against `-debug-addr` (the /healthz Store block
// on the service port carries the abridged form).
func (c *Client) DebugStore(ctx context.Context) (*serve.DebugStoreResponse, error) {
	var d serve.DebugStoreResponse
	if err := c.get(ctx, "/debug/store", &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// DebugTrace answers GET /debug/trace/{trace_id}: one trace's full
// stitched span tree, from the persistent trace store and the flight
// ring.  Like DebugStore, the endpoint lives on the debug listener.
func (c *Client) DebugTrace(ctx context.Context, traceID string) (*serve.DebugTraceResponse, error) {
	var d serve.DebugTraceResponse
	if err := c.get(ctx, "/debug/trace/"+url.PathEscape(traceID), &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// TraceQuery filters a DebugTraces index scan; the zero value asks for
// the most recent traces.
type TraceQuery struct {
	// Endpoint restricts the scan to one endpoint ("" = all).
	Endpoint string
	// MinMillis drops hops faster than this many milliseconds.
	MinMillis int
	// SinceUnix drops hops older than this Unix-seconds stamp (0 = no
	// lower bound).
	SinceUnix int64
	// Limit caps the answer (0 = the server default of 100).
	Limit int
}

// DebugTraces answers GET /debug/traces: the persisted-trace index,
// newest first.
func (c *Client) DebugTraces(ctx context.Context, q TraceQuery) (*serve.DebugTracesResponse, error) {
	v := url.Values{}
	if q.Endpoint != "" {
		v.Set("endpoint", q.Endpoint)
	}
	if q.MinMillis > 0 {
		v.Set("min_ms", strconv.Itoa(q.MinMillis))
	}
	if q.SinceUnix > 0 {
		v.Set("since", strconv.FormatInt(q.SinceUnix, 10))
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	path := "/debug/traces"
	if enc := v.Encode(); enc != "" {
		path += "?" + enc
	}
	var d serve.DebugTracesResponse
	if err := c.get(ctx, path, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// DebugPlans answers GET /debug/plans: per-plan cost profiles ordered
// by request count.
func (c *Client) DebugPlans(ctx context.Context) (*serve.DebugPlansResponse, error) {
	var d serve.DebugPlansResponse
	if err := c.get(ctx, "/debug/plans", &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// get fetches one debug endpoint and decodes the 200 answer into out.
func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	c.inject(ctx, req)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s: %w", path, err)
	}
	return nil
}

// Metrics returns the raw Prometheus text exposition from /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(b))}
	}
	return string(b), nil
}

// post sends one JSON request and decodes the 200 answer into out.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encode: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	c.inject(ctx, req)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s: %w", path, err)
	}
	return nil
}

// inject sets the outgoing traceparent: the caller's context verbatim
// when one is installed (its span id becomes the server's parent —
// what stitches a multi-request floorplan iteration under one span),
// else a fresh root for this request.
func (c *Client) inject(ctx context.Context, req *http.Request) {
	tc, ok := obs.TraceContextFrom(ctx)
	if !ok {
		tc = obs.NewTraceContext()
	}
	req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
}

// decodeAPIError turns a non-2xx response into an *APIError, keeping
// the body readable even when it is not the structured JSON shape.
func decodeAPIError(resp *http.Response) error {
	apiErr := &APIError{Status: resp.StatusCode}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		apiErr.RetryAfter = ra
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		apiErr.Message = fmt.Sprintf("unreadable error body: %v", err)
		return apiErr
	}
	var e serve.ErrorResponse
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		apiErr.Message = e.Error
		apiErr.RequestID = e.RequestID
		apiErr.TraceID = e.TraceID
	} else {
		apiErr.Message = strings.TrimSpace(string(b))
	}
	return apiErr
}
