package client

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"maest/internal/serve"
)

// jobModule builds one chained-inverter module body.
func jobModule(name string, stages int) serve.ModuleInput {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\nport in a\n", name)
	prev := "a"
	for i := 0; i < stages; i++ {
		next := fmt.Sprintf("n%d", i)
		fmt.Fprintf(&b, "device g%d INV %s %s\n", i, prev, next)
		prev = next
	}
	fmt.Fprintf(&b, "port out %s\nend\n", prev)
	return serve.ModuleInput{Netlist: b.String()}
}

func jobRequest(budget int, seed int64) serve.FloorplanRequest {
	return serve.FloorplanRequest{
		Chip: "client-chip",
		Modules: []serve.ModuleInput{
			jobModule("ca", 3), jobModule("cb", 5), jobModule("cc", 7),
		},
		Nets: []serve.GlobalNetBody{
			{Name: "n0", Pins: []serve.GlobalPinBody{
				{Module: "ca", Port: "out"}, {Module: "cb", Port: "in"},
			}},
			{Name: "n1", Pins: []serve.GlobalPinBody{
				{Module: "cb", Port: "out"}, {Module: "cc", Port: "in"},
			}},
		},
		CongestWeight: 1,
		Budget:        budget,
		Seed:          seed,
	}
}

func TestFloorplanSubmitAndWait(t *testing.T) {
	s, c := startServe(t, serve.Options{})
	t.Cleanup(s.FlushStore)
	ctx := context.Background()
	sub, err := c.FloorplanSubmit(ctx, jobRequest(80, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.ID) != 64 || JobTerminal(sub.State) {
		t.Fatalf("submit answered %+v", sub)
	}
	var sawProgress bool
	fin, err := c.WaitJob(ctx, sub.ID, time.Millisecond, func(j *serve.JobResponse) {
		sawProgress = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != serve.JobDone || fin.Result == nil {
		t.Fatalf("wait answered %+v", fin)
	}
	if len(fin.Result.Blocks) != 3 || len(fin.Result.Congestion) != 3 {
		t.Fatalf("thin result: %+v", fin.Result)
	}
	_ = sawProgress // progress fires only if the poll catches the anneal mid-flight

	// Resubmitting the identical request answers the finished job.
	again, err := c.FloorplanSubmit(ctx, jobRequest(80, 1))
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != sub.ID || again.State != serve.JobDone {
		t.Fatalf("duplicate submit answered %+v", again)
	}
}

func TestCancelJobViaClient(t *testing.T) {
	s, c := startServe(t, serve.Options{})
	t.Cleanup(s.FlushStore)
	ctx := context.Background()
	sub, err := c.FloorplanSubmit(ctx, jobRequest(50_000_000, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Cancel as soon as the job is running (or still queued — both
	// transition to cancelled).
	cancelled, err := c.CancelJob(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cancelled.State != serve.JobCancelled {
		t.Fatalf("cancel answered state %q", cancelled.State)
	}
	// WaitJob on a cancelled job surfaces ErrJobFailed with the
	// snapshot attached.
	fin, err := c.WaitJob(ctx, sub.ID, time.Millisecond, nil)
	if !errors.Is(err, ErrJobFailed) {
		t.Fatalf("wait on cancelled job: %v", err)
	}
	if fin == nil || fin.State != serve.JobCancelled {
		t.Fatalf("wait snapshot %+v", fin)
	}
}

func TestJobErrorsViaClient(t *testing.T) {
	s, c := startServe(t, serve.Options{})
	t.Cleanup(s.FlushStore)
	ctx := context.Background()
	if _, err := c.Job(ctx, strings.Repeat("ab", 32)); err == nil {
		t.Fatal("unknown job id did not error")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != 404 {
			t.Fatalf("unknown job: %v", err)
		}
	}
	if _, err := c.CancelJob(ctx, "not-a-key"); err == nil {
		t.Fatal("malformed job id did not error")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != 400 {
			t.Fatalf("malformed id: %v", err)
		}
	}
	if _, err := c.FloorplanSubmit(ctx, serve.FloorplanRequest{}); err == nil {
		t.Fatal("empty floorplan submit did not error")
	}
}

func TestQueueFullSurfacesRetryAfter(t *testing.T) {
	s, c := startServe(t, serve.Options{JobWorkers: 1, JobQueue: 1})
	t.Cleanup(s.FlushStore)
	ctx := context.Background()
	subA, err := c.FloorplanSubmit(ctx, jobRequest(50_000_000, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick A up so B occupies the queue slot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := c.Job(ctx, subA.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == serve.JobAnnealing {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job A stuck in %q", j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	subB, err := c.FloorplanSubmit(ctx, jobRequest(50_000_000, 11))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.FloorplanSubmit(ctx, jobRequest(50_000_000, 12))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 429 {
		t.Fatalf("third submit: %v", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("429 without Retry-After hint: %+v", apiErr)
	}
	for _, id := range []string{subB.ID, subA.ID} {
		if _, err := c.CancelJob(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
}
