package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"maest/internal/obs"
	"maest/internal/serve"
	"maest/internal/store"
)

// startTraceServe boots a serve instance persisting every trace, plus
// both listeners: the API socket and the debug socket the trace
// endpoints live on.
func startTraceServe(t *testing.T) (*serve.Server, *Client, *Client) {
	t.Helper()
	st, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Options{
		FlightSize: 16,
		TraceStore: st,
		Sample:     obs.SamplePolicy{Rate: 1, SlowMicros: 100_000, KeepErrors: true},
	})
	api := httptest.NewServer(s)
	dbg := httptest.NewServer(s.DebugHandler())
	t.Cleanup(func() {
		api.Close()
		dbg.Close()
		s.FlushTraces()
		st.Close()
	})
	return s, New(api.URL), New(dbg.URL)
}

func TestDebugTracesIndexAndFilters(t *testing.T) {
	s, c, dc := startTraceServe(t)
	ctx := context.Background()
	src := testdata(t, "demo.mnet")

	if _, err := c.Estimate(ctx, serve.EstimateRequest{Netlist: src}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Estimate(ctx, serve.EstimateRequest{Netlist: src}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Congestion(ctx, serve.CongestionRequest{Netlist: src, Rows: 3}); err != nil {
		t.Fatal(err)
	}
	s.SyncTraces()

	resp, err := dc.DebugTraces(ctx, TraceQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Enabled || resp.Stats == nil || len(resp.Traces) != 3 {
		t.Fatalf("index scan: %+v", resp)
	}
	// Newest first: congestion was the last request.
	if resp.Traces[0].Endpoint != "/v1/congestion" {
		t.Fatalf("scan order: %+v", resp.Traces)
	}

	byEndpoint, err := dc.DebugTraces(ctx, TraceQuery{Endpoint: "/v1/estimate"})
	if err != nil {
		t.Fatal(err)
	}
	if len(byEndpoint.Traces) != 2 {
		t.Fatalf("endpoint filter: %+v", byEndpoint.Traces)
	}
	if slow, _ := dc.DebugTraces(ctx, TraceQuery{MinMillis: 60_000}); len(slow.Traces) != 0 {
		t.Fatalf("min-ms filter leaked: %+v", slow.Traces)
	}
	if capped, _ := dc.DebugTraces(ctx, TraceQuery{Limit: 1}); len(capped.Traces) != 1 {
		t.Fatalf("limit: %+v", capped.Traces)
	}
	future := time.Now().Add(time.Hour).Unix()
	if since, _ := dc.DebugTraces(ctx, TraceQuery{SinceUnix: future}); len(since.Traces) != 0 {
		t.Fatalf("since filter leaked: %+v", since.Traces)
	}
}

func TestDebugTraceSpanTree(t *testing.T) {
	s, c, dc := startTraceServe(t)
	ctx := context.Background()
	if _, err := c.Estimate(ctx, serve.EstimateRequest{Netlist: testdata(t, "demo.mnet")}); err != nil {
		t.Fatal(err)
	}
	s.SyncTraces()

	idx, err := dc.DebugTraces(ctx, TraceQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Traces) != 1 {
		t.Fatalf("index: %+v", idx.Traces)
	}
	id := idx.Traces[0].TraceID

	tr, err := dc.DebugTrace(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Found || tr.TraceID != id || len(tr.Hops) != 1 {
		t.Fatalf("trace: %+v", tr)
	}
	hop := tr.Hops[0]
	if hop.Trace != id || hop.Endpoint != "/v1/estimate" || hop.Status != 200 {
		t.Fatalf("hop: %+v", hop)
	}

	missing, err := dc.DebugTrace(ctx, "ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	if missing.Found || len(missing.Hops) != 0 {
		t.Fatalf("unknown trace: %+v", missing)
	}
}

func TestDebugPlans(t *testing.T) {
	s, c, dc := startTraceServe(t)
	ctx := context.Background()
	est, err := c.Estimate(ctx, serve.EstimateRequest{Netlist: testdata(t, "demo.mnet")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Estimate(ctx, serve.EstimateRequest{Netlist: testdata(t, "demo.mnet")}); err != nil {
		t.Fatal(err)
	}
	s.SyncTraces()

	resp, err := dc.DebugPlans(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Enabled || len(resp.Plans) != 1 {
		t.Fatalf("plans: %+v", resp)
	}
	p := resp.Plans[0]
	if p.Plan != est.Plan {
		t.Fatalf("profile plan %s, want the estimate's %s", p.Plan, est.Plan)
	}
	if p.Requests != 2 || p.CacheHits != 1 {
		t.Fatalf("profile counters: %+v", p)
	}
}

func TestDebugEndpointsDisabled(t *testing.T) {
	s := serve.New(serve.Options{})
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()
	dc := New(dbg.URL)
	ctx := context.Background()

	idx, err := dc.DebugTraces(ctx, TraceQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Enabled || len(idx.Traces) != 0 {
		t.Fatalf("traces without a store: %+v", idx)
	}
	plans, err := dc.DebugPlans(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plans.Enabled || len(plans.Plans) != 0 {
		t.Fatalf("plans without telemetry: %+v", plans)
	}
}

func TestDebugGetSurfacesAPIError(t *testing.T) {
	// The debug endpoints live on the debug listener only; asking the
	// API socket is a 404 that must surface as a typed APIError.
	_, c := startServe(t, serve.Options{FlightSize: 4})
	_, err := c.DebugTraces(context.Background(), TraceQuery{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("err = %v, want a 404 APIError", err)
	}
}
