package client

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maest/internal/obs"
	"maest/internal/serve"
)

func testdata(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func startServe(t *testing.T, opts serve.Options) (*serve.Server, *Client) {
	t.Helper()
	s := serve.New(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, New(ts.URL)
}

func TestEstimateRoundTrip(t *testing.T) {
	s, c := startServe(t, serve.Options{FlightSize: 16})
	resp, err := c.Estimate(context.Background(), serve.EstimateRequest{
		Netlist: testdata(t, "demo.mnet"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Module == "" || resp.Key == "" {
		t.Fatalf("thin response: %+v", resp)
	}
	// The minted-root traceparent must appear in the server's flight
	// record, parented under the client's per-request root span.
	recs := s.Flight().Snapshot()
	if len(recs) != 1 {
		t.Fatalf("flight records = %d, want 1", len(recs))
	}
	if recs[0].Trace == "" || recs[0].Span == "" || recs[0].ParentSpan == "" {
		t.Fatalf("flight record missing trace fields: %+v", recs[0])
	}
}

func TestExplicitTraceContextInjected(t *testing.T) {
	s, c := startServe(t, serve.Options{FlightSize: 16})
	root := obs.NewTraceContext()
	ctx := obs.WithTraceContext(context.Background(), root)
	if _, err := c.Estimate(ctx, serve.EstimateRequest{Netlist: testdata(t, "demo.mnet")}); err != nil {
		t.Fatal(err)
	}
	recs := s.Flight().Snapshot()
	if len(recs) != 1 {
		t.Fatalf("flight records = %d, want 1", len(recs))
	}
	if recs[0].Trace != root.TraceIDString() {
		t.Fatalf("server trace %s, want caller's %s", recs[0].Trace, root.TraceIDString())
	}
	if recs[0].ParentSpan != root.SpanIDString() {
		t.Fatalf("server parent span %s, want caller's span %s", recs[0].ParentSpan, root.SpanIDString())
	}
	if recs[0].Span == root.SpanIDString() {
		t.Fatal("server reused the caller's span id instead of minting its own")
	}
}

func TestBatchAndCongestion(t *testing.T) {
	_, c := startServe(t, serve.Options{})
	ctx := context.Background()
	batch, err := c.EstimateBatch(ctx, serve.BatchRequest{
		Modules: []serve.ModuleInput{
			{Netlist: testdata(t, "demo.mnet")},
			{Netlist: testdata(t, "ladder.mnet")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Modules) != 2 {
		t.Fatalf("batch answered %d modules, want 2", len(batch.Modules))
	}
	cong, err := c.Congestion(ctx, serve.CongestionRequest{Netlist: testdata(t, "demo.mnet")})
	if err != nil {
		t.Fatal(err)
	}
	if len(cong.Channels) == 0 {
		t.Fatalf("congestion answered no channels: %+v", cong)
	}
}

// TestEstimateDeltaChain walks the ECO loop an estimator client runs:
// full estimate once, then chain edits plan-key to plan-key, falling
// back to a full estimate when the parent is unknown.
func TestEstimateDeltaChain(t *testing.T) {
	_, c := startServe(t, serve.Options{})
	ctx := context.Background()
	base, err := c.Estimate(ctx, serve.EstimateRequest{Netlist: testdata(t, "demo.mnet")})
	if err != nil {
		t.Fatal(err)
	}
	if base.Plan == "" {
		t.Fatal("estimate answer carries no plan key to chain from")
	}
	d1, err := c.EstimateDelta(ctx, serve.DeltaRequest{
		Parent: base.Plan,
		Edits:  []serve.EditBody{{Op: "remove_cell", Name: "g2"}, {Op: "connect_pin", Device: "g4", Net: "n1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.EstimateDelta(ctx, serve.DeltaRequest{
		Parent: d1.Plan,
		Edits:  []serve.EditBody{{Op: "add_cell", Name: "g9", Type: "INV", Nets: []string{"n2", "y"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Plan == d1.Plan || d2.SC == nil || d2.SC.Area <= 0 {
		t.Fatalf("chained delta answered %+v", d2)
	}

	// An aged-out parent is the one failure the loop handles specially.
	_, err = c.EstimateDelta(ctx, serve.DeltaRequest{Parent: strings.Repeat("00", 32)})
	if !IsUnknownParent(err) {
		t.Fatalf("unknown parent answered %v, want the 404 fallback signal", err)
	}
	if IsUnknownParent(nil) {
		t.Fatal("IsUnknownParent(nil)")
	}
}

func TestAPIErrorCarriesIDs(t *testing.T) {
	_, c := startServe(t, serve.Options{FlightSize: 16})
	_, err := c.Estimate(context.Background(), serve.EstimateRequest{Netlist: "not a netlist"})
	if err == nil {
		t.Fatal("bad netlist did not error")
	}
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("error type %T, want *APIError", err)
	}
	if apiErr.Status != 400 {
		t.Fatalf("status = %d, want 400", apiErr.Status)
	}
	if apiErr.RequestID == "" || apiErr.TraceID == "" {
		t.Fatalf("error body missing correlation IDs: %+v", apiErr)
	}
	if !strings.Contains(apiErr.Error(), apiErr.RequestID) {
		t.Fatalf("Error() %q does not mention the request id", apiErr.Error())
	}
}

func TestHealth(t *testing.T) {
	_, c := startServe(t, serve.Options{})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Watchdog != nil {
		t.Fatalf("health = %+v, want ok with no watchdog block", h)
	}
}

func TestMetrics(t *testing.T) {
	_, c := startServe(t, serve.Options{})
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "maest_serve_requests_total") {
		t.Fatal("metrics exposition missing maest_serve_requests_total")
	}
}
