package layout

import (
	"fmt"
	"sort"

	"maest/internal/geom"
	"maest/internal/place"
	"maest/internal/route"
	"maest/internal/tech"
)

// Geometry is the concrete mask-level-ish view of a finished module:
// cell outlines, feed-through columns, and the routed wires from the
// detailed channel router, on the λ grid with y growing downward from
// the module's top edge.

// Layer identifies the abstract mask layer of a rectangle.
type Layer string

// Layers emitted by BuildGeometry (nMOS-style CIF layer codes).
const (
	// LayerCell is a placed device outline.
	LayerCell Layer = "NB"
	// LayerMetal carries horizontal channel trunks.
	LayerMetal Layer = "NM"
	// LayerPoly carries vertical drops between trunks and cell edges.
	LayerPoly Layer = "NP"
	// LayerFeedThrough marks feed-through columns crossing a row.
	LayerFeedThrough Layer = "NF"
)

// GeoRect is one named rectangle on a layer.
type GeoRect struct {
	Layer Layer
	// Name carries the device instance or net the rectangle belongs
	// to.
	Name string
	Box  geom.Rect
}

// Geometry is a module's full rectangle list.
type Geometry struct {
	Name   string
	Bounds geom.Rect
	Rects  []GeoRect
}

// CountLayer returns how many rectangles sit on the given layer.
func (g *Geometry) CountLayer(l Layer) int {
	n := 0
	for _, r := range g.Rects {
		if r.Layer == l {
			n++
		}
	}
	return n
}

// BuildGeometry lays the placement and its detailed routing onto
// concrete coordinates: channel c is stacked above row c, trunks
// occupy tracks top-down at the process track pitch, vertical drops
// run from each trunk to the channel edge they serve, and feed-through
// columns are appended at the right end of their row.
func BuildGeometry(pl *place.Placement, det *route.Detailed, p *tech.Process) (*Geometry, error) {
	if err := pl.Check(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLayout, err)
	}
	nRows := len(pl.Rows)
	if len(det.Channels) != nRows+1 {
		return nil, fmt.Errorf("%w: routing has %d channels for %d rows",
			ErrLayout, len(det.Channels), nRows)
	}
	if err := det.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLayout, err)
	}
	g := &Geometry{Name: pl.Circuit.Name}
	wireW := p.TrackPitch / 2
	if wireW < 1 {
		wireW = 1
	}

	// Vertical stacking: channel 0, row 0, channel 1, row 1, ...
	chTop := make([]geom.Lambda, nRows+1)   // y of each channel's top
	chBot := make([]geom.Lambda, nRows+1)   // y of each channel's bottom
	rowTop := make([]geom.Lambda, nRows)    // y of each row's top
	rowBottom := make([]geom.Lambda, nRows) // y of each row's bottom
	y := geom.Lambda(0)
	for c := 0; c <= nRows; c++ {
		chTop[c] = y
		y += geom.Lambda(det.Channels[c].Tracks) * p.TrackPitch
		chBot[c] = y
		if c < nRows {
			rowTop[c] = y
			y += pl.RowHeight(c)
			rowBottom[c] = y
		}
	}
	height := y

	// Cells.
	width := geom.Lambda(0)
	for r, row := range pl.Rows {
		var x geom.Lambda
		for _, d := range row {
			w := pl.DeviceWidth(d)
			h := pl.DeviceHeight(d)
			g.Rects = append(g.Rects, GeoRect{
				Layer: LayerCell,
				Name:  pl.Circuit.Devices[d].Name,
				Box:   geom.RectWH(x, rowTop[r], w, h),
			})
			x += w
		}
		if x > width {
			width = x
		}
	}

	// Wires.  Remember each net's drop columns per channel edge so
	// row crossings (feed-throughs) can be reconstructed below.
	type edgeKey struct {
		net     string
		channel int
	}
	bottomsOf := map[edgeKey]map[geom.Lambda]bool{}
	topsOf := map[edgeKey]map[geom.Lambda]bool{}
	for c, ch := range det.Channels {
		for _, w := range ch.Wires {
			trunkY := chTop[c] + geom.Lambda(w.Track)*p.TrackPitch
			g.Rects = append(g.Rects, GeoRect{
				Layer: LayerMetal,
				Name:  w.Net.Name,
				Box:   geom.RectWH(w.Span.Lo, trunkY, w.Span.Len(), wireW),
			})
			for _, x := range w.TopDrops {
				g.Rects = append(g.Rects, GeoRect{
					Layer: LayerPoly,
					Name:  w.Net.Name,
					Box:   geom.NewRect(x, chTop[c], x+2, trunkY+wireW),
				})
				k := edgeKey{w.Net.Name, c}
				if topsOf[k] == nil {
					topsOf[k] = map[geom.Lambda]bool{}
				}
				topsOf[k][x] = true
				if x+2 > width {
					width = x + 2
				}
			}
			for _, x := range w.BottomDrops {
				g.Rects = append(g.Rects, GeoRect{
					Layer: LayerPoly,
					Name:  w.Net.Name,
					Box:   geom.NewRect(x, trunkY, x+2, chBot[c]),
				})
				k := edgeKey{w.Net.Name, c}
				if bottomsOf[k] == nil {
					bottomsOf[k] = map[geom.Lambda]bool{}
				}
				bottomsOf[k][x] = true
				if x+2 > width {
					width = x + 2
				}
			}
			if right := w.Span.Hi; right > width {
				width = right
			}
		}
	}
	// Feed-throughs: a net leaving channel c downward and entering
	// channel c+1 from the top at the same column crosses row c.
	for k, cols := range bottomsOf {
		if k.channel >= nRows {
			continue
		}
		for x := range cols {
			if topsOf[edgeKey{k.net, k.channel + 1}][x] {
				g.Rects = append(g.Rects, GeoRect{
					Layer: LayerFeedThrough,
					Name:  k.net,
					Box:   geom.NewRect(x, rowTop[k.channel], x+2, rowBottom[k.channel]),
				})
			}
		}
	}
	if width == 0 || height == 0 {
		return nil, fmt.Errorf("%w: module %q produced empty geometry", ErrLayout, pl.Circuit.Name)
	}
	g.Bounds = geom.NewRect(0, 0, width, height)
	for _, r := range g.Rects {
		if r.Box.Intersect(g.Bounds) != r.Box {
			return nil, fmt.Errorf("%w: %s rect %q %v escapes bounds %v",
				ErrLayout, r.Layer, r.Name, r.Box, g.Bounds)
		}
	}
	// Deterministic rectangle order for serialization and golden
	// tests (feed-through reconstruction iterates maps).
	sort.Slice(g.Rects, func(i, j int) bool {
		a, b := g.Rects[i], g.Rects[j]
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Box.Min != b.Box.Min {
			if a.Box.Min.Y != b.Box.Min.Y {
				return a.Box.Min.Y < b.Box.Min.Y
			}
			return a.Box.Min.X < b.Box.Min.X
		}
		if a.Box.Max.Y != b.Box.Max.Y {
			return a.Box.Max.Y < b.Box.Max.Y
		}
		return a.Box.Max.X < b.Box.Max.X
	})
	return g, nil
}

// CheckCellsDisjoint verifies that no two cell outlines overlap — the
// basic legality invariant of any placement-derived geometry.
func (g *Geometry) CheckCellsDisjoint() error {
	var cells []GeoRect
	for _, r := range g.Rects {
		if r.Layer == LayerCell {
			cells = append(cells, r)
		}
	}
	for i := 0; i < len(cells); i++ {
		for j := i + 1; j < len(cells); j++ {
			if cells[i].Box.Intersects(cells[j].Box) {
				return fmt.Errorf("%w: cells %q and %q overlap",
					ErrLayout, cells[i].Name, cells[j].Name)
			}
		}
	}
	return nil
}
