package layout

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"maest/internal/geom"
	"maest/internal/tech"
)

// CIF (Caltech Intermediate Form) is the interchange format of the
// paper's design era; WriteCIF emits a module's geometry as one CIF
// symbol and ReadCIF parses the subset WriteCIF produces (DS/9/L/B/
// DF/C/E plus comments), enough for round-trips and for viewing in a
// period tool.
//
// Coordinates: CIF's unit is 0.01 µm.  Geometry is on the λ grid with
// y growing downward; CIF's y grows upward, so boxes are flipped
// about the module's top edge.  The DS scale factor a/b converts λ to
// CIF units: a = LambdaNM/10, b = 1 (half-λ centres are expressed by
// doubling: a = LambdaNM/20 would lose precision for odd LambdaNM, so
// WriteCIF emits centre coordinates in half-λ and sets b = 2).

// WriteCIF serializes g as a CIF file.
func WriteCIF(w io.Writer, g *Geometry, p *tech.Process) error {
	if p.LambdaNM%10 != 0 {
		return fmt.Errorf("%w: λ = %d nm is not a multiple of the 10 nm CIF unit", ErrLayout, p.LambdaNM)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "(maest layout of %s, process %s, lambda %d nm);\n", g.Name, p.Name, p.LambdaNM)
	fmt.Fprintf(bw, "DS 1 %d 2;\n", p.LambdaNM/10)
	fmt.Fprintf(bw, "9 %s;\n", g.Name)
	var current Layer
	topY := g.Bounds.Max.Y
	for _, r := range g.Rects {
		if r.Layer != current {
			fmt.Fprintf(bw, "L %s;\n", r.Layer)
			current = r.Layer
		}
		// Centre in half-λ, y flipped.
		cx := r.Box.Min.X + r.Box.Max.X
		cy := 2*topY - (r.Box.Min.Y + r.Box.Max.Y)
		fmt.Fprintf(bw, "B %d %d %d %d;\n", 2*r.Box.Width(), 2*r.Box.Height(), cx, cy)
	}
	fmt.Fprintln(bw, "DF;")
	fmt.Fprintln(bw, "C 1;")
	fmt.Fprintln(bw, "E")
	return bw.Flush()
}

// CIFBox is one parsed CIF box, in the file's raw (pre-scale)
// coordinates.
type CIFBox struct {
	Layer        string
	W, H, CX, CY int64
}

// CIFFile is the parsed subset of a CIF file.
type CIFFile struct {
	Name    string
	ScaleA  int
	ScaleB  int
	Boxes   []CIFBox
	Defined bool
}

// ReadCIF parses the WriteCIF subset of CIF.
func ReadCIF(r io.Reader) (*CIFFile, error) {
	// CIF statements are ';'-terminated; comments are parenthesized.
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: read CIF: %v", ErrLayout, err)
	}
	text := stripCIFComments(string(data))
	f := &CIFFile{}
	layer := ""
	sawEnd := false
	for _, stmt := range strings.Split(text, ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		if sawEnd {
			return nil, fmt.Errorf("%w: CIF content after E", ErrLayout)
		}
		fields := strings.Fields(stmt)
		switch fields[0] {
		case "DS":
			if f.Defined {
				return nil, fmt.Errorf("%w: nested CIF symbol definition", ErrLayout)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("%w: bad DS statement %q", ErrLayout, stmt)
			}
			a, err1 := strconv.Atoi(fields[2])
			b, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || a <= 0 || b <= 0 {
				return nil, fmt.Errorf("%w: bad DS scale in %q", ErrLayout, stmt)
			}
			f.ScaleA, f.ScaleB = a, b
			f.Defined = true
		case "9":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: bad name statement %q", ErrLayout, stmt)
			}
			f.Name = fields[1]
		case "L":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: bad layer statement %q", ErrLayout, stmt)
			}
			layer = fields[1]
		case "B":
			if len(fields) != 5 {
				return nil, fmt.Errorf("%w: bad box statement %q", ErrLayout, stmt)
			}
			if layer == "" {
				return nil, fmt.Errorf("%w: box before any layer", ErrLayout)
			}
			var nums [4]int64
			for i, fd := range fields[1:] {
				v, err := strconv.ParseInt(fd, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%w: bad box coordinate %q", ErrLayout, fd)
				}
				nums[i] = v
			}
			if nums[0] <= 0 || nums[1] <= 0 {
				return nil, fmt.Errorf("%w: non-positive box size in %q", ErrLayout, stmt)
			}
			f.Boxes = append(f.Boxes, CIFBox{Layer: layer, W: nums[0], H: nums[1], CX: nums[2], CY: nums[3]})
		case "DF", "C":
			// end of symbol / top-level call: nothing to record
		case "E":
			sawEnd = true
		default:
			return nil, fmt.Errorf("%w: unsupported CIF statement %q", ErrLayout, stmt)
		}
	}
	if !sawEnd {
		return nil, fmt.Errorf("%w: CIF missing E terminator", ErrLayout)
	}
	if !f.Defined {
		return nil, fmt.Errorf("%w: CIF has no symbol definition", ErrLayout)
	}
	return f, nil
}

// Geometry reconstructs the λ-grid geometry from a parsed CIF file
// written by WriteCIF (scale b must be 2, i.e. half-λ coordinates).
func (f *CIFFile) Geometry() (*Geometry, error) {
	if f.ScaleB != 2 {
		return nil, fmt.Errorf("%w: CIF scale denominator %d (want 2, maest convention)", ErrLayout, f.ScaleB)
	}
	g := &Geometry{Name: f.Name}
	// First pass: find the top edge to un-flip y.
	var maxTop int64
	for _, b := range f.Boxes {
		if top := b.CY + b.H/2; top > maxTop {
			maxTop = top
		}
	}
	for _, b := range f.Boxes {
		if b.W%2 != 0 || b.H%2 != 0 {
			return nil, fmt.Errorf("%w: CIF box size not on the λ grid", ErrLayout)
		}
		w, h := b.W/2, b.H/2
		minX := (b.CX - w) / 2
		// y flip: CIF cy measured up from bottom; module y measured
		// down from maxTop.
		minY := (maxTop - (b.CY + h)) / 2
		g.Rects = append(g.Rects, GeoRect{
			Layer: Layer(b.Layer),
			Box:   geom.RectWH(geom.Lambda(minX), geom.Lambda(minY), geom.Lambda(w), geom.Lambda(h)),
		})
		g.Bounds = g.Bounds.Union(g.Rects[len(g.Rects)-1].Box)
	}
	return g, nil
}

// stripCIFComments removes (possibly nested) parenthesized comments.
func stripCIFComments(s string) string {
	var out strings.Builder
	depth := 0
	for _, r := range s {
		switch {
		case r == '(':
			depth++
		case r == ')':
			if depth > 0 {
				depth--
			}
		case depth == 0:
			out.WriteRune(r)
		}
	}
	return out.String()
}
