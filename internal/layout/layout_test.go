package layout

import (
	"testing"

	"maest/internal/gen"
	"maest/internal/geom"
	"maest/internal/netlist"
	"maest/internal/place"
	"maest/internal/route"
	"maest/internal/tech"
)

func TestLayoutStandardCell(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "lsc", Gates: 60, Inputs: 6, Outputs: 4, Seed: 5,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := LayoutStandardCell(c, p, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Width <= 0 || m.Height <= 0 {
		t.Fatalf("module = %+v", m)
	}
	if m.Area() != geom.Mul(m.Width, m.Height) {
		t.Fatalf("area mismatch")
	}
	// Height must cover the three rows plus all channels.
	minHeight := 3 * p.RowHeight
	if m.Height < minHeight {
		t.Fatalf("height %d below row stack %d", m.Height, minHeight)
	}
	// Width must be at least the widest row of raw cells.
	if m.AspectRatio() <= 0 {
		t.Fatal("bad aspect ratio")
	}
}

func TestAssembleShapeValidation(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.Chain("ch", 6, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(c, p, place.Options{Rows: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := route.RouteModule(pl, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssembleStandardCell(pl, rr, p); err != nil {
		t.Fatal(err)
	}
	// Mismatched routing result.
	bad := *rr
	bad.ChannelTracks = bad.ChannelTracks[:1]
	if _, err := AssembleStandardCell(pl, &bad, p); err == nil {
		t.Fatal("mismatched routing accepted")
	}
}

func TestFeedThroughsWidenRows(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "ftw", Gates: 80, Inputs: 6, Outputs: 4, Seed: 9,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(c, p, place.Options{Rows: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := route.RouteModule(pl, route.Options{TrackSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := AssembleStandardCell(pl, rr, p)
	if err != nil {
		t.Fatal(err)
	}
	for r := range pl.Rows {
		want := pl.RowWidth(r) + geom.Lambda(rr.FeedThroughs[r])*p.FeedThroughWidth
		if m.RowWidths[r] != want {
			t.Fatalf("row %d width %d, want %d", r, m.RowWidths[r], want)
		}
	}
}

func TestSynthesizeFullCustom(t *testing.T) {
	p := tech.NMOS25()
	suite, err := gen.FullCustomSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range suite {
		m, err := SynthesizeFullCustom(c, p, 11)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if m.Width <= 0 || m.Height <= 0 {
			t.Fatalf("%s: degenerate %dx%d", c.Name, m.Width, m.Height)
		}
		// The synthesizer must beat or match the worst single-row
		// strip layout.
		strip, err := LayoutStandardCell(c, p, 1, 11)
		if err != nil {
			t.Fatal(err)
		}
		if m.Area() > strip.Area() {
			t.Fatalf("%s: synthesized area %d worse than 1-row strip %d",
				c.Name, m.Area(), strip.Area())
		}
	}
}

func TestSynthesizeRejectsCellCircuits(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.Chain("cells", 5, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SynthesizeFullCustom(c, p, 1); err == nil {
		t.Fatal("cell-level circuit accepted")
	}
	// Unknown device type.
	b := netlist.NewBuilder("u")
	b.AddDevice("m0", "NOPE", "a", "b", "c")
	b.AddDevice("m1", "ENH", "c", "b", "a")
	cu, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SynthesizeFullCustom(cu, p, 1); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.PassLadder("lad", 10, p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := SynthesizeFullCustom(c, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynthesizeFullCustom(c, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Area() != b.Area() || a.Rows != b.Rows {
		t.Fatal("synthesis not deterministic")
	}
}
