package layout

import (
	"strings"
	"testing"
)

// FuzzReadCIF checks the CIF reader never panics and that accepted
// files reconstruct to geometry without error when the maest scale
// convention holds.
func FuzzReadCIF(f *testing.F) {
	f.Add("DS 1 250 2;\n9 m;\nL NM;\nB 2 2 1 1;\nDF;\nC 1;\nE")
	f.Add("(comment) DS 1 250 2; DF; E")
	f.Add("E")
	f.Add("DS 1 0 2; E")
	f.Add("B 1 1 1 1;")
	f.Fuzz(func(t *testing.T, input string) {
		cf, err := ReadCIF(strings.NewReader(input))
		if err != nil {
			return
		}
		if cf.ScaleB == 2 {
			if _, err := cf.Geometry(); err != nil {
				// Off-grid boxes are a legitimate rejection.
				return
			}
		}
	})
}
