package layout

import (
	"fmt"
	"sort"

	"maest/internal/geom"
	"maest/internal/tech"
)

// DRC is a design-rule checker over module geometry: it verifies the
// spacing rules the layout engine is supposed to respect, catching
// regressions in track placement, drop emission, or stacking.
//
// Rules checked (all in λ):
//
//	metal–metal   spacing ≥ trackPitch − wireWidth between trunks of
//	              different nets on the same track row
//	poly–poly     different-net vertical drops may not overlap
//	cell–cell     cells may not overlap (placement legality)
//	bounds        everything inside the module bounding box
type DRCViolation struct {
	Rule string
	A, B GeoRect
}

// String implements fmt.Stringer.
func (v DRCViolation) String() string {
	return fmt.Sprintf("%s: %s %q %v vs %s %q %v",
		v.Rule, v.A.Layer, v.A.Name, v.A.Box, v.B.Layer, v.B.Name, v.B.Box)
}

// CheckDRC runs all rules and returns every violation found (nil when
// clean).
func CheckDRC(g *Geometry, p *tech.Process) []DRCViolation {
	var out []DRCViolation
	// Bounds.
	for _, r := range g.Rects {
		if r.Box.Intersect(g.Bounds) != r.Box {
			out = append(out, DRCViolation{Rule: "bounds", A: r, B: GeoRect{Layer: "BOUNDS", Box: g.Bounds}})
		}
	}
	// Cell overlaps.
	out = append(out, pairRule(g, LayerCell, "cell-overlap", func(a, b GeoRect) bool {
		return a.Box.Intersects(b.Box)
	})...)
	// Different-net metal overlap (same-net overlap is a legal join).
	out = append(out, pairRule(g, LayerMetal, "metal-short", func(a, b GeoRect) bool {
		return a.Name != b.Name && a.Box.Intersects(b.Box)
	})...)
	// Different-net poly overlap.
	out = append(out, pairRule(g, LayerPoly, "poly-short", func(a, b GeoRect) bool {
		return a.Name != b.Name && a.Box.Intersects(b.Box)
	})...)
	return out
}

// pairRule applies a predicate to every pair of rects on one layer,
// using a sweep over x to avoid the full quadratic blowup.
func pairRule(g *Geometry, layer Layer, rule string, bad func(a, b GeoRect) bool) []DRCViolation {
	var rects []GeoRect
	for _, r := range g.Rects {
		if r.Layer == layer {
			rects = append(rects, r)
		}
	}
	sort.Slice(rects, func(i, j int) bool { return rects[i].Box.Min.X < rects[j].Box.Min.X })
	var out []DRCViolation
	for i := range rects {
		for j := i + 1; j < len(rects); j++ {
			if rects[j].Box.Min.X >= rects[i].Box.Max.X {
				break // sweep: no later rect can overlap in x
			}
			if bad(rects[i], rects[j]) {
				out = append(out, DRCViolation{Rule: rule, A: rects[i], B: rects[j]})
			}
		}
	}
	return out
}

// MinMetalSpacing returns the smallest horizontal gap between
// different-net metal trunks sharing a track (same y extent), or -1
// when no such pair exists — a quantitative health metric for the
// router's track packing.
func MinMetalSpacing(g *Geometry) geom.Lambda {
	byY := map[geom.Lambda][]GeoRect{}
	for _, r := range g.Rects {
		if r.Layer == LayerMetal {
			byY[r.Box.Min.Y] = append(byY[r.Box.Min.Y], r)
		}
	}
	min := geom.Lambda(-1)
	for _, rects := range byY {
		sort.Slice(rects, func(i, j int) bool { return rects[i].Box.Min.X < rects[j].Box.Min.X })
		for i := 1; i < len(rects); i++ {
			if rects[i].Name == rects[i-1].Name {
				continue
			}
			gap := rects[i].Box.Min.X - rects[i-1].Box.Max.X
			if min < 0 || gap < min {
				min = gap
			}
		}
	}
	return min
}
