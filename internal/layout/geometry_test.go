package layout

import (
	"bytes"
	"strings"
	"testing"

	"maest/internal/gen"
	"maest/internal/place"
	"maest/internal/route"
	"maest/internal/tech"
)

func buildGeo(t testing.TB, gates, rows int, seed int64) (*Geometry, *tech.Process) {
	t.Helper()
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "geo", Gates: gates, Inputs: 6, Outputs: 4, Seed: seed,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(c, p, place.Options{Rows: rows, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	det, err := route.DetailRoute(pl)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGeometry(pl, det, p)
	if err != nil {
		t.Fatal(err)
	}
	return g, p
}

func TestBuildGeometryInvariants(t *testing.T) {
	for _, cfg := range []struct {
		gates, rows int
		seed        int64
	}{{20, 1, 1}, {40, 2, 2}, {60, 3, 3}, {90, 4, 4}} {
		g, _ := buildGeo(t, cfg.gates, cfg.rows, cfg.seed)
		if g.Bounds.Empty() {
			t.Fatal("empty bounds")
		}
		if err := g.CheckCellsDisjoint(); err != nil {
			t.Fatalf("gates=%d rows=%d: %v", cfg.gates, cfg.rows, err)
		}
		if got := g.CountLayer(LayerCell); got < cfg.gates {
			t.Fatalf("cells on layer = %d, want ≥ %d", got, cfg.gates)
		}
		if g.CountLayer(LayerMetal) == 0 || g.CountLayer(LayerPoly) == 0 {
			t.Fatal("missing wire layers")
		}
		for _, r := range g.Rects {
			if r.Box.Empty() {
				t.Fatalf("empty rect %+v", r)
			}
			if r.Box.Intersect(g.Bounds) != r.Box {
				t.Fatalf("rect %+v escapes bounds %v", r, g.Bounds)
			}
		}
	}
}

func TestBuildGeometryDeterministic(t *testing.T) {
	a, _ := buildGeo(t, 50, 3, 7)
	b, _ := buildGeo(t, 50, 3, 7)
	if len(a.Rects) != len(b.Rects) || a.Bounds != b.Bounds {
		t.Fatal("geometry not deterministic")
	}
	for i := range a.Rects {
		if a.Rects[i] != b.Rects[i] {
			t.Fatalf("rect %d differs", i)
		}
	}
}

func TestBuildGeometryFeedThroughs(t *testing.T) {
	// A 3+-row layout of a random circuit usually needs feed-throughs;
	// when the coarse router reports some, geometry must mark the rows.
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "ft", Gates: 80, Inputs: 6, Outputs: 4, Seed: 11, Locality: 0.3,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(c, p, place.Options{Rows: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := route.RouteModule(pl, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	det, err := route.DetailRoute(pl)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGeometry(pl, det, p)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.TotalFeedThroughs > 0 && g.CountLayer(LayerFeedThrough) == 0 {
		t.Fatalf("coarse router saw %d feed-throughs, geometry emitted none",
			coarse.TotalFeedThroughs)
	}
}

func TestBuildGeometryShapeMismatch(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.Chain("c", 6, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(c, p, place.Options{Rows: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	det, err := route.DetailRoute(pl)
	if err != nil {
		t.Fatal(err)
	}
	bad := *det
	bad.Channels = bad.Channels[:1]
	if _, err := BuildGeometry(pl, &bad, p); err == nil {
		t.Fatal("mismatched channels accepted")
	}
}

func TestCIFRoundTrip(t *testing.T) {
	g, p := buildGeo(t, 40, 3, 5)
	var buf bytes.Buffer
	if err := WriteCIF(&buf, g, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DS 1 250 2;", "9 geo;", "L NB;", "DF;", "E"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CIF missing %q:\n%s", want, out[:min(len(out), 400)])
		}
	}
	f, err := ReadCIF(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "geo" || f.ScaleA != 250 || f.ScaleB != 2 {
		t.Fatalf("parsed header %+v", f)
	}
	if len(f.Boxes) != len(g.Rects) {
		t.Fatalf("boxes = %d, want %d", len(f.Boxes), len(g.Rects))
	}
	back, err := f.Geometry()
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rects) != len(g.Rects) {
		t.Fatalf("round trip rects = %d, want %d", len(back.Rects), len(g.Rects))
	}
	// Boxes are preserved exactly (same order: WriteCIF preserves
	// Rects order and ReadCIF is sequential), modulo the y-flip
	// origin, which cancels when the tallest rect touches y=0 — it
	// does, because channel 0 starts at the top edge.  Compare
	// against re-sorted original coordinates.
	for i := range back.Rects {
		if back.Rects[i].Layer != g.Rects[i].Layer {
			t.Fatalf("rect %d layer %q != %q", i, back.Rects[i].Layer, g.Rects[i].Layer)
		}
		if back.Rects[i].Box.Width() != g.Rects[i].Box.Width() ||
			back.Rects[i].Box.Height() != g.Rects[i].Box.Height() {
			t.Fatalf("rect %d size changed: %v -> %v", i, g.Rects[i].Box, back.Rects[i].Box)
		}
		if back.Rects[i].Box.Min.X != g.Rects[i].Box.Min.X {
			t.Fatalf("rect %d x changed: %v -> %v", i, g.Rects[i].Box, back.Rects[i].Box)
		}
	}
}

func TestCIFYFlipConsistency(t *testing.T) {
	// The y extents must be preserved as a set after the flip: the
	// multiset of heights and of (top-referenced) y spans matches.
	g, p := buildGeo(t, 30, 2, 9)
	var buf bytes.Buffer
	if err := WriteCIF(&buf, g, p); err != nil {
		t.Fatal(err)
	}
	f, err := ReadCIF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	back, err := f.Geometry()
	if err != nil {
		t.Fatal(err)
	}
	// The flip origin is the max top among rects; rect 0's layer
	// NB cell at the first row should retain its y within bounds.
	if back.Bounds.Height() > g.Bounds.Height() {
		t.Fatalf("height grew: %d -> %d", g.Bounds.Height(), back.Bounds.Height())
	}
}

func TestReadCIFRejectsMalformed(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"no E", "DS 1 250 2;\nDF;\n"},
		{"no DS", "L NM;\nB 2 2 1 1;\nE"},
		{"nested DS", "DS 1 250 2;\nDS 2 250 2;\nDF;\nE"},
		{"bad DS", "DS 1 x 2;\nDF;\nE"},
		{"short DS", "DS 1 250;\nDF;\nE"},
		{"box before layer", "DS 1 250 2;\nB 2 2 1 1;\nDF;\nE"},
		{"bad box", "DS 1 250 2;\nL NM;\nB 2 2 1;\nDF;\nE"},
		{"bad box coord", "DS 1 250 2;\nL NM;\nB 2 2 1 z;\nDF;\nE"},
		{"zero box", "DS 1 250 2;\nL NM;\nB 0 2 1 1;\nDF;\nE"},
		{"unknown stmt", "DS 1 250 2;\nW 1 2 3;\nDF;\nE"},
		{"content after E", "DS 1 250 2;\nDF;\nE;\nL NM"},
		{"bad layer stmt", "DS 1 250 2;\nL;\nDF;\nE"},
		{"bad name stmt", "DS 1 250 2;\n9;\nDF;\nE"},
	}
	for _, c := range cases {
		if _, err := ReadCIF(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted malformed CIF", c.name)
		}
	}
}

func TestWriteCIFRejectsOffGridLambda(t *testing.T) {
	g, _ := buildGeo(t, 10, 1, 1)
	p := tech.NMOS25()
	p.LambdaNM = 2505 // not a multiple of 10 nm
	if err := WriteCIF(&bytes.Buffer{}, g, p); err == nil {
		t.Fatal("off-grid lambda accepted")
	}
}

func TestStripCIFComments(t *testing.T) {
	in := "(outer (nested) comment) DS 1 2 3; (x) E"
	out := stripCIFComments(in)
	if strings.Contains(out, "comment") || !strings.Contains(out, "DS 1 2 3") {
		t.Fatalf("stripped = %q", out)
	}
}

func TestCIFGeometryScaleGuard(t *testing.T) {
	f := &CIFFile{ScaleA: 250, ScaleB: 1, Defined: true,
		Boxes: []CIFBox{{Layer: "NM", W: 2, H: 2, CX: 1, CY: 1}}}
	if _, err := f.Geometry(); err == nil {
		t.Fatal("wrong scale denominator accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
