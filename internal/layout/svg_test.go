package layout

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteSVG(t *testing.T) {
	g, _ := buildGeo(t, 30, 2, 3)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, g, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<title>geo</title>", "#3366cc", "#bbbbbb"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// One rect per geometry rect plus the background.
	if got := strings.Count(out, "<rect"); got != len(g.Rects)+1 {
		t.Fatalf("rect count = %d, want %d", got, len(g.Rects)+1)
	}
}

func TestWriteSVGScale(t *testing.T) {
	g, _ := buildGeo(t, 10, 1, 1)
	var a, b bytes.Buffer
	if err := WriteSVG(&a, g, 1); err != nil {
		t.Fatal(err)
	}
	if err := WriteSVG(&b, g, 4); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || b.Len() == 0 || a.String() == b.String() {
		t.Fatal("scale had no effect")
	}
}

func TestWriteSVGEmpty(t *testing.T) {
	if err := WriteSVG(&bytes.Buffer{}, &Geometry{Name: "e"}, 2); err == nil {
		t.Fatal("empty geometry accepted")
	}
}

func TestStyleForUnknownLayer(t *testing.T) {
	fill, op := styleFor(Layer("XX"))
	if fill == "" || op == "" {
		t.Fatal("unknown layer has no style")
	}
}
