package layout

import (
	"strings"
	"testing"

	"maest/internal/geom"
)

func TestDRCCleanOnEngineOutput(t *testing.T) {
	// The layout engine's own geometry must be DRC-clean at several
	// shapes and seeds.
	for _, cfg := range []struct {
		gates, rows int
		seed        int64
	}{{30, 2, 1}, {60, 3, 2}, {90, 5, 3}} {
		g, p := buildGeo(t, cfg.gates, cfg.rows, cfg.seed)
		if vs := CheckDRC(g, p); len(vs) != 0 {
			t.Fatalf("gates=%d rows=%d: %d violations, first: %s",
				cfg.gates, cfg.rows, len(vs), vs[0])
		}
	}
}

func TestDRCCatchesInjectedViolations(t *testing.T) {
	g, p := buildGeo(t, 30, 2, 1)
	// Inject a metal short: duplicate an existing metal rect under a
	// different net name.
	var metal *GeoRect
	for i := range g.Rects {
		if g.Rects[i].Layer == LayerMetal {
			metal = &g.Rects[i]
			break
		}
	}
	if metal == nil {
		t.Fatal("no metal in geometry")
	}
	bad := *metal
	bad.Name = "intruder"
	g.Rects = append(g.Rects, bad)
	vs := CheckDRC(g, p)
	found := false
	for _, v := range vs {
		if v.Rule == "metal-short" {
			found = true
		}
	}
	if !found {
		t.Fatalf("injected metal short not reported: %v", vs)
	}
	if !strings.Contains(vs[0].String(), vs[0].Rule) {
		t.Fatal("violation String() missing rule")
	}
}

func TestDRCCatchesCellOverlapAndBounds(t *testing.T) {
	g, p := buildGeo(t, 20, 1, 2)
	var cell *GeoRect
	for i := range g.Rects {
		if g.Rects[i].Layer == LayerCell {
			cell = &g.Rects[i]
			break
		}
	}
	over := *cell
	over.Name = "clone"
	over.Box = over.Box.Translate(geom.Point{X: 1})
	g.Rects = append(g.Rects, over)
	out := GeoRect{Layer: LayerPoly, Name: "escape",
		Box: geom.RectWH(g.Bounds.Max.X+5, 0, 2, 2)}
	g.Rects = append(g.Rects, out)
	rules := map[string]bool{}
	for _, v := range CheckDRC(g, p) {
		rules[v.Rule] = true
	}
	if !rules["cell-overlap"] || !rules["bounds"] {
		t.Fatalf("missing expected violations: %v", rules)
	}
}

func TestMinMetalSpacing(t *testing.T) {
	g := &Geometry{
		Bounds: geom.NewRect(0, 0, 100, 100),
		Rects: []GeoRect{
			{Layer: LayerMetal, Name: "a", Box: geom.NewRect(0, 10, 20, 13)},
			{Layer: LayerMetal, Name: "b", Box: geom.NewRect(27, 10, 50, 13)},
			{Layer: LayerMetal, Name: "a", Box: geom.NewRect(60, 10, 70, 13)}, // same net as first
			{Layer: LayerMetal, Name: "c", Box: geom.NewRect(0, 50, 10, 53)},  // different track
		},
	}
	if got := MinMetalSpacing(g); got != 7 {
		t.Fatalf("spacing = %d, want 7", got)
	}
	empty := &Geometry{Bounds: geom.NewRect(0, 0, 10, 10)}
	if got := MinMetalSpacing(empty); got != -1 {
		t.Fatalf("empty spacing = %d, want -1", got)
	}
}

func TestEngineMetalSpacingNonNegative(t *testing.T) {
	g, _ := buildGeo(t, 80, 4, 5)
	if got := MinMetalSpacing(g); got < 0 {
		// -1 means no different-net pairs share a track; fine.
		return
	} else if got == 0 {
		t.Fatal("touching different-net trunks on one track")
	}
}
