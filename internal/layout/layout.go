// Package layout turns placement and routing results into concrete
// module geometry — the "real" areas the estimator is compared
// against.  AssembleStandardCell plays the role of the paper's
// TimberWolf layouts (Table 2); SynthesizeFullCustom stands in for
// the manually created Newkirk & Mathews layouts (Table 1) by
// actually constructing a transistor-row layout and measuring it.
package layout

import (
	"context"
	"errors"
	"fmt"

	"maest/internal/geom"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/place"
	"maest/internal/route"
	"maest/internal/tech"
)

// ErrLayout wraps layout failures.
var ErrLayout = errors.New("layout: layout failed")

// Module is a finished module layout's measured geometry.
type Module struct {
	Name   string
	Rows   int
	Width  geom.Lambda
	Height geom.Lambda
	// RowWidths includes inserted feed-through columns.
	RowWidths []geom.Lambda
	// ChannelTracks records each channel's final track count.
	ChannelTracks []int
	// FeedThroughs is the total number of inserted feed-through
	// columns.
	FeedThroughs int
	// WireLength is the placement's half-perimeter wire length.
	WireLength geom.Lambda
}

// Area returns the module's bounding-box area in λ².
func (m *Module) Area() geom.Area { return geom.Mul(m.Width, m.Height) }

// AspectRatio returns width / height.
func (m *Module) AspectRatio() float64 {
	if m.Height == 0 {
		return 0
	}
	return float64(m.Width) / float64(m.Height)
}

// AssembleStandardCell measures the module produced by a placement
// and its routing:
//
//	width  = max over rows of (cell widths + feed-through columns)
//	height = Σ row heights + Σ channel tracks × track pitch
func AssembleStandardCell(pl *place.Placement, rr *route.Result, p *tech.Process) (*Module, error) {
	return assemble(pl, rr, p, p.TrackPitch, p.FeedThroughWidth)
}

// assemble measures the module with explicit channel-track pitch and
// feed-through width: the metal pitch and feed-through cells of
// standard-cell channels, or the tighter poly/diffusion pitch (and
// over-the-device metal crossings, costing no feed-through column)
// that manual full-custom wiring achieves.
func assemble(pl *place.Placement, rr *route.Result, p *tech.Process, pitch, ftWidth geom.Lambda) (*Module, error) {
	if err := pl.Check(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLayout, err)
	}
	if len(rr.FeedThroughs) != len(pl.Rows) || len(rr.ChannelTracks) != len(pl.Rows)+1 {
		return nil, fmt.Errorf("%w: routing result shape does not match placement (%d rows, %d ft rows, %d channels)",
			ErrLayout, len(pl.Rows), len(rr.FeedThroughs), len(rr.ChannelTracks))
	}
	m := &Module{
		Name:          pl.Circuit.Name,
		Rows:          len(pl.Rows),
		RowWidths:     make([]geom.Lambda, len(pl.Rows)),
		ChannelTracks: append([]int(nil), rr.ChannelTracks...),
		FeedThroughs:  rr.TotalFeedThroughs,
		WireLength:    pl.WireLength(),
	}
	for r := range pl.Rows {
		w := pl.RowWidth(r) + geom.Lambda(rr.FeedThroughs[r])*ftWidth
		m.RowWidths[r] = w
		if w > m.Width {
			m.Width = w
		}
		m.Height += pl.RowHeight(r)
	}
	for _, tracks := range rr.ChannelTracks {
		if tracks > 0 {
			m.Height += geom.Lambda(tracks) * pitch
		}
	}
	if m.Width == 0 || m.Height == 0 {
		return nil, fmt.Errorf("%w: module %q has degenerate size %dx%d",
			ErrLayout, m.Name, m.Width, m.Height)
	}
	return m, nil
}

// LayoutStandardCell is the full ground-truth flow for one row count:
// place (simulated annealing), route with the era-router sharing
// model (TimberWolf 3.2-generation layouts shared tracks weakly in
// single-metal nMOS; see route.Options.MaxShare), and measure.
func LayoutStandardCell(c *netlist.Circuit, p *tech.Process, rows int, seed int64) (*Module, error) {
	return LayoutStandardCellCtx(context.Background(), c, p, rows, seed)
}

// LayoutStandardCellCtx is LayoutStandardCell with observability: a
// "layout.sc" span parenting the place and route spans.
func LayoutStandardCellCtx(ctx context.Context, c *netlist.Circuit, p *tech.Process, rows int, seed int64) (m *Module, err error) {
	ctx, sp := obs.Start(ctx, "layout.sc")
	sp.SetString("module", c.Name)
	sp.SetInt("rows", int64(rows))
	defer func() {
		if m != nil {
			sp.SetInt("width", int64(m.Width))
			sp.SetInt("height", int64(m.Height))
		}
		sp.EndErr(err)
	}()
	pl, err := place.PlaceCtx(ctx, c, p, place.Options{Rows: rows, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLayout, err)
	}
	rr, err := route.RouteModuleCtx(ctx, pl, route.Options{TrackSharing: true, MaxShare: 2})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLayout, err)
	}
	return AssembleStandardCell(pl, rr, p)
}

// SynthesizeFullCustom constructs a transistor-level layout the way a
// careful manual designer would shape a small module: it sweeps
// candidate row counts, places each with annealing, routes with track
// sharing, and keeps the minimum-area result (ties broken toward
// squareness).  The circuit must be transistor-level.
func SynthesizeFullCustom(c *netlist.Circuit, p *tech.Process, seed int64) (*Module, error) {
	return SynthesizeFullCustomCtx(context.Background(), c, p, seed)
}

// SynthesizeFullCustomCtx is SynthesizeFullCustom with observability:
// a "layout.fc" span parenting one place/route pair per candidate row
// count.
func SynthesizeFullCustomCtx(ctx context.Context, c *netlist.Circuit, p *tech.Process, seed int64) (m *Module, err error) {
	ctx, sp := obs.Start(ctx, "layout.fc")
	sp.SetString("module", c.Name)
	defer func() {
		if m != nil {
			sp.SetInt("rows", int64(m.Rows))
			sp.SetInt("width", int64(m.Width))
			sp.SetInt("height", int64(m.Height))
		}
		sp.EndErr(err)
	}()
	return synthesizeFullCustom(ctx, c, p, seed)
}

func synthesizeFullCustom(ctx context.Context, c *netlist.Circuit, p *tech.Process, seed int64) (*Module, error) {
	if c.NumDevices() == 0 {
		return nil, fmt.Errorf("%w: circuit %q has no devices", ErrLayout, c.Name)
	}
	for _, d := range c.Devices {
		dt, err := p.Device(d.Type)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrLayout, err)
		}
		if dt.Class != tech.ClassTransistor {
			return nil, fmt.Errorf("%w: %q is not transistor-level (device %q is a %s)",
				ErrLayout, c.Name, d.Name, dt.Class)
		}
	}
	maxRows := isqrt(c.NumDevices()) + 2
	var best *Module
	for rows := 1; rows <= maxRows; rows++ {
		pl, err := place.PlaceCtx(ctx, c, p, place.Options{Rows: rows, Seed: seed + int64(rows)})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrLayout, err)
		}
		// Manual-style full-custom wiring: share tracks and abut
		// adjacent two-pin neighbours (diffusion sharing).
		rr, err := route.RouteModuleCtx(ctx, pl, route.Options{TrackSharing: true, AbutAdjacentPairs: true})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrLayout, err)
		}
		// Manual layouts wire local hops in poly/diffusion at roughly
		// half the metal pitch and cross rows in metal over the
		// devices rather than through feed-through columns.
		m, err := assemble(pl, rr, p, (p.TrackPitch+1)/2, 0)
		if err != nil {
			return nil, err
		}
		if best == nil || m.Area() < best.Area() ||
			(m.Area() == best.Area() && squarer(m, best)) {
			best = m
		}
	}
	return best, nil
}

func squarer(a, b *Module) bool {
	return absf(a.AspectRatio()-1) < absf(b.AspectRatio()-1)
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
