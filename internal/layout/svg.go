package layout

import (
	"bufio"
	"fmt"
	"io"
)

// WriteSVG renders a module geometry as a standalone SVG document —
// cells in grey, metal trunks in blue, poly drops in red,
// feed-through columns in gold — for quick visual inspection of the
// layout engine's output.  One λ maps to `scale` SVG user units
// (default 2 when scale ≤ 0).
func WriteSVG(w io.Writer, g *Geometry, scale int) error {
	if g.Bounds.Empty() {
		return fmt.Errorf("%w: cannot render empty geometry", ErrLayout)
	}
	if scale <= 0 {
		scale = 2
	}
	s := int64(scale)
	bw := bufio.NewWriter(w)
	width := int64(g.Bounds.Width()) * s
	height := int64(g.Bounds.Height()) * s
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(bw, "<title>%s</title>\n", g.Name)
	fmt.Fprintf(bw, `<rect x="0" y="0" width="%d" height="%d" fill="#ffffff"/>`+"\n", width, height)
	for _, r := range g.Rects {
		fill, opacity := styleFor(r.Layer)
		fmt.Fprintf(bw, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="%s" stroke="#333" stroke-width="0.5"><title>%s %s</title></rect>`+"\n",
			int64(r.Box.Min.X)*s, int64(r.Box.Min.Y)*s,
			int64(r.Box.Width())*s, int64(r.Box.Height())*s,
			fill, opacity, r.Layer, r.Name)
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}

func styleFor(l Layer) (fill, opacity string) {
	switch l {
	case LayerCell:
		return "#bbbbbb", "0.9"
	case LayerMetal:
		return "#3366cc", "0.8"
	case LayerPoly:
		return "#cc3333", "0.8"
	case LayerFeedThrough:
		return "#ddaa22", "0.8"
	default:
		return "#999999", "0.5"
	}
}
