package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"maest/internal/netlist"
)

// Fiduccia–Mattheyses bipartitioning: the classic linear-time min-cut
// improvement pass (gain buckets, tentative move sequence, best-prefix
// rollback), used here to drive the Rent-exponent analysis with
// placement-quality partitions instead of traversal-order chunks.

// Bipart is a two-way partition of a device subset.
type Bipart struct {
	// Side[d] reports the side of device d (only meaningful for
	// devices in the partitioned subset).
	Side map[int]bool
	// CutNets is the number of nets with pins on both sides.
	CutNets int
	// Passes is the number of FM passes run before convergence.
	Passes int
}

// fmInstance carries one partition problem: a subset of devices and
// the nets among them.
type fmInstance struct {
	c       *netlist.Circuit
	devices []int
	inSet   map[int]bool
	// nets with ≥ 2 subset devices, as device-index lists.
	nets [][]int
	// netsOf[d] lists net indices touching device d.
	netsOf map[int][]int
}

func newFMInstance(c *netlist.Circuit, devices []int) *fmInstance {
	inst := &fmInstance{
		c:       c,
		devices: append([]int(nil), devices...),
		inSet:   make(map[int]bool, len(devices)),
		netsOf:  map[int][]int{},
	}
	for _, d := range devices {
		inst.inSet[d] = true
	}
	for _, n := range c.Nets {
		var members []int
		for _, dev := range n.Devices {
			if inst.inSet[dev.Index] {
				members = append(members, dev.Index)
			}
		}
		if len(members) < 2 {
			continue
		}
		idx := len(inst.nets)
		inst.nets = append(inst.nets, members)
		for _, d := range members {
			inst.netsOf[d] = append(inst.netsOf[d], idx)
		}
	}
	return inst
}

// Bipartition splits the device subset into two balanced halves with
// minimum net cut (FM passes until no pass improves).  The subset
// must contain at least 2 devices; nil selects all devices.
// Balance tolerance: side sizes differ by at most 1 + |subset|/16.
func Bipartition(c *netlist.Circuit, subset []int, seed int64) (*Bipart, error) {
	if subset == nil {
		subset = make([]int, c.NumDevices())
		for i := range subset {
			subset[i] = i
		}
	}
	if len(subset) < 2 {
		return nil, fmt.Errorf("%w: bipartition needs ≥ 2 devices, got %d", ErrMetrics, len(subset))
	}
	inst := newFMInstance(c, subset)
	rng := rand.New(rand.NewSource(seed))

	// Initial partition: random balanced split (deterministic via
	// seed).
	order := append([]int(nil), inst.devices...)
	sort.Ints(order)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	side := make(map[int]bool, len(order))
	for i, d := range order {
		side[d] = i >= len(order)/2
	}

	maxImb := 1 + len(subset)/16
	passes := 0
	for ; passes < 24; passes++ {
		improved := inst.fmPass(side, maxImb)
		if !improved {
			break
		}
	}
	return &Bipart{Side: side, CutNets: inst.cut(side), Passes: passes}, nil
}

// cut counts nets spanning both sides.
func (inst *fmInstance) cut(side map[int]bool) int {
	cut := 0
	for _, members := range inst.nets {
		a, b := false, false
		for _, d := range members {
			if side[d] {
				b = true
			} else {
				a = true
			}
		}
		if a && b {
			cut++
		}
	}
	return cut
}

// gain returns the cut reduction of moving d to the other side.
func (inst *fmInstance) gain(d int, side map[int]bool) int {
	g := 0
	for _, ni := range inst.netsOf[d] {
		same, other := 0, 0
		for _, m := range inst.nets[ni] {
			if m == d {
				continue
			}
			if side[m] == side[d] {
				same++
			} else {
				other++
			}
		}
		if same == 0 {
			g++ // net becomes uncut
		}
		if other == 0 {
			g-- // net becomes cut
		}
	}
	return g
}

// fmPass performs one FM pass: tentatively move every device once in
// greedy gain order (respecting balance), then keep the best prefix.
// Reports whether the cut improved.
func (inst *fmInstance) fmPass(side map[int]bool, maxImb int) bool {
	n := len(inst.devices)
	locked := make(map[int]bool, n)
	sizeA, sizeB := 0, 0
	for _, d := range inst.devices {
		if side[d] {
			sizeB++
		} else {
			sizeA++
		}
	}
	type move struct {
		dev  int
		gain int
	}
	var seq []move
	cum, best, bestAt := 0, 0, -1
	for step := 0; step < n; step++ {
		// Select the max-gain unlocked device whose move keeps
		// balance.  (A bucket structure makes this O(1); the linear
		// scan keeps the code transparent at module scale.)
		bestDev, bestGain := -1, -1<<30
		for _, d := range inst.devices {
			if locked[d] {
				continue
			}
			fromA := !side[d]
			na, nb := sizeA, sizeB
			if fromA {
				na, nb = na-1, nb+1
			} else {
				na, nb = na+1, nb-1
			}
			if abs(na-nb) > maxImb {
				continue
			}
			if g := inst.gain(d, side); g > bestGain || (g == bestGain && d < bestDev) {
				bestDev, bestGain = d, g
			}
		}
		if bestDev < 0 {
			break
		}
		// Apply tentatively.
		if side[bestDev] {
			sizeB--
			sizeA++
		} else {
			sizeA--
			sizeB++
		}
		side[bestDev] = !side[bestDev]
		locked[bestDev] = true
		seq = append(seq, move{bestDev, bestGain})
		cum += bestGain
		if cum > best {
			best, bestAt = cum, len(seq)-1
		}
	}
	// Roll back past the best prefix.
	for i := len(seq) - 1; i > bestAt; i-- {
		side[seq[i].dev] = !side[seq[i].dev]
	}
	return best > 0
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// RentFM estimates the Rent exponent with recursive FM bisection —
// the partition-quality counterpart to Rent's traversal-order
// chunking.  Levels whose partitions fall below 2 devices stop the
// recursion.
func RentFM(c *netlist.Circuit, seed int64) (*RentResult, error) {
	n := c.NumDevices()
	if n < 8 {
		return nil, fmt.Errorf("%w: need ≥ 8 devices, got %d", ErrMetrics, n)
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	levels := map[int][]float64{} // approximate block size -> pin counts
	var recurse func(subset []int, depth int) error
	recurse = func(subset []int, depth int) error {
		if len(subset) < 2 || depth > 24 {
			return nil
		}
		levels[len(subset)] = append(levels[len(subset)],
			float64(externalNets(c, subset)))
		if len(subset) < 4 {
			return nil
		}
		bp, err := Bipartition(c, subset, seed+int64(depth))
		if err != nil {
			return err
		}
		var a, b []int
		for _, d := range subset {
			if bp.Side[d] {
				b = append(b, d)
			} else {
				a = append(a, d)
			}
		}
		if len(a) == 0 || len(b) == 0 {
			return nil
		}
		if err := recurse(a, depth+1); err != nil {
			return err
		}
		return recurse(b, depth+1)
	}
	if err := recurse(all, 0); err != nil {
		return nil, err
	}
	var samples []RentSample
	for size, pins := range levels {
		sum := 0.0
		for _, p := range pins {
			sum += p
		}
		samples = append(samples, RentSample{
			Blocks: float64(size),
			Pins:   sum / float64(len(pins)),
		})
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].Blocks > samples[j].Blocks })
	return fitRent(samples, n)
}

// fitRent runs the Region-II-excluded log-log fit shared by both Rent
// estimators.
func fitRent(samples []RentSample, n int) (*RentResult, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("%w: only %d levels", ErrMetrics, len(samples))
	}
	var xs, ys []float64
	for _, s := range samples {
		if s.Pins <= 0 || s.Blocks > float64(n)/4 {
			continue
		}
		xs = append(xs, math.Log(s.Blocks))
		ys = append(ys, math.Log(s.Pins))
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("%w: not enough non-degenerate levels", ErrMetrics)
	}
	slope, intercept, r2 := fitLine(xs, ys)
	return &RentResult{
		Exponent:    slope,
		Coefficient: math.Exp(intercept),
		R2:          r2,
		Samples:     samples,
	}, nil
}
