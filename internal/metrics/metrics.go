// Package metrics computes interconnect-complexity statistics of a
// circuit: net-degree distributions, pin counts, and an empirical
// Rent exponent from recursive bisection.  The estimator's accuracy
// depends on exactly these properties (the paper's probability model
// assumes uniform placement; Rent-like locality is what real
// placements exploit), so the sweeps report them alongside estimation
// error.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"maest/internal/netlist"
)

// ErrMetrics wraps analysis failures.
var ErrMetrics = errors.New("metrics: analysis failed")

// DegreeStats summarizes the net-degree distribution.
type DegreeStats struct {
	// RoutableNets counts nets with ≥ 2 distinct devices.
	RoutableNets int
	// MeanDegree and MaxDegree describe routable nets.
	MeanDegree float64
	MaxDegree  int
	// TotalPins counts device pin connections on routable nets.
	TotalPins int
	// Histogram maps degree D to the number of nets.
	Histogram map[int]int
}

// Degrees computes the degree statistics of a circuit.
func Degrees(c *netlist.Circuit) *DegreeStats {
	s := &DegreeStats{Histogram: map[int]int{}}
	sum := 0
	for _, n := range c.Nets {
		d := n.Degree()
		if d < 2 {
			continue
		}
		s.RoutableNets++
		s.Histogram[d]++
		sum += d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		s.TotalPins += n.PinCount
	}
	if s.RoutableNets > 0 {
		s.MeanDegree = float64(sum) / float64(s.RoutableNets)
	}
	return s
}

// RentSample is one bisection level's observation.
type RentSample struct {
	// Blocks is the mean devices per partition at this level.
	Blocks float64
	// Pins is the mean external-net count per partition.
	Pins float64
}

// RentResult is the fitted Rent's-rule model P = k·Bʳ.
type RentResult struct {
	// Exponent is r, Coefficient is k.
	Exponent, Coefficient float64
	// R2 is the log-log fit quality.
	R2 float64
	// Samples holds the per-level observations the fit used.
	Samples []RentSample
}

// Rent estimates the circuit's Rent exponent by recursive bisection:
// devices are ordered by breadth-first connectivity traversal (so
// related logic stays together, as a placer would keep it), each
// level splits every partition in half, and the external-pin count
// of each partition is measured.  At least 8 devices are required to
// produce the two fit points a power law needs.
func Rent(c *netlist.Circuit) (*RentResult, error) {
	n := c.NumDevices()
	if n < 8 {
		return nil, fmt.Errorf("%w: need ≥ 8 devices, got %d", ErrMetrics, n)
	}
	order := bfsOrder(c)
	var samples []RentSample
	for size := n; size >= 2; size = (size + 1) / 2 {
		// Partition the BFS order into chunks of `size`.
		var pinsSum float64
		parts := 0
		for lo := 0; lo < n; lo += size {
			hi := lo + size
			if hi > n {
				hi = n
			}
			if hi-lo < 2 {
				continue
			}
			pinsSum += float64(externalNets(c, order[lo:hi]))
			parts++
		}
		if parts == 0 {
			continue
		}
		samples = append(samples, RentSample{
			Blocks: float64(size),
			Pins:   pinsSum / float64(parts),
		})
		if size == 2 {
			break
		}
	}
	if len(samples) < 2 {
		return nil, fmt.Errorf("%w: only %d bisection levels", ErrMetrics, len(samples))
	}
	// Fit log P = log k + r log B, ignoring zero-pin samples and the
	// top levels near module size — Rent's classical "Region II",
	// where pin limitation flattens the power law and which the
	// literature excludes from exponent fits.
	var xs, ys []float64
	for _, s := range samples {
		if s.Pins <= 0 || s.Blocks > float64(n)/4 {
			continue
		}
		xs = append(xs, math.Log(s.Blocks))
		ys = append(ys, math.Log(s.Pins))
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("%w: not enough non-degenerate levels", ErrMetrics)
	}
	slope, intercept, r2 := fitLine(xs, ys)
	return &RentResult{
		Exponent:    slope,
		Coefficient: math.Exp(intercept),
		R2:          r2,
		Samples:     samples,
	}, nil
}

// bfsOrder returns device indices in breadth-first connectivity
// order, deterministic via index tie-breaking.
func bfsOrder(c *netlist.Circuit) []int {
	n := c.NumDevices()
	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			d := queue[0]
			queue = queue[1:]
			order = append(order, d)
			var neigh []int
			for _, net := range c.Devices[d].Pins {
				if net == nil || net.Degree() > 16 {
					continue // skip huge nets (clock-like) for locality
				}
				for _, dev := range net.Devices {
					if !visited[dev.Index] {
						visited[dev.Index] = true
						neigh = append(neigh, dev.Index)
					}
				}
			}
			sort.Ints(neigh)
			queue = append(queue, neigh...)
		}
	}
	return order
}

// externalNets counts the nets that cross the boundary of the device
// subset (or reach a module port).
func externalNets(c *netlist.Circuit, subset []int) int {
	in := map[int]bool{}
	for _, d := range subset {
		in[d] = true
	}
	count := 0
	for _, net := range c.Nets {
		if net.Degree() == 0 {
			continue
		}
		inside, outside := false, net.External()
		for _, dev := range net.Devices {
			if in[dev.Index] {
				inside = true
			} else {
				outside = true
			}
		}
		if inside && outside {
			count++
		}
	}
	return count
}

// fitLine is simple 1-D ordinary least squares returning slope,
// intercept and R².
func fitLine(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := intercept + slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	if ssTot == 0 {
		return slope, intercept, 1
	}
	return slope, intercept, 1 - ssRes/ssTot
}
