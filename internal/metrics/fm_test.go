package metrics

import (
	"testing"

	"maest/internal/gen"
	"maest/internal/netlist"
	"maest/internal/tech"
)

func TestBipartitionChain(t *testing.T) {
	// A chain's optimal balanced bipartition cuts exactly one net.
	p := tech.NMOS25()
	c, err := gen.Chain("ch", 32, p)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := Bipartition(c, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bp.CutNets > 3 {
		t.Fatalf("chain cut = %d, want near-optimal (1)", bp.CutNets)
	}
	// Balance.
	a, b := 0, 0
	for d := 0; d < c.NumDevices(); d++ {
		if bp.Side[d] {
			b++
		} else {
			a++
		}
	}
	if abs(a-b) > 1+32/16 {
		t.Fatalf("imbalanced: %d vs %d", a, b)
	}
}

func TestBipartitionImprovesOverRandom(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "r", Gates: 80, Inputs: 6, Outputs: 5, Seed: 3,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := Bipartition(c, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the unimproved random split: re-run the
	// instance's initial state by measuring a random side map.
	inst := newFMInstance(c, allDevices(c))
	randomSide := map[int]bool{}
	for i, d := range inst.devices {
		randomSide[d] = i%2 == 1
	}
	if bp.CutNets >= inst.cut(randomSide) {
		t.Fatalf("FM cut %d not better than alternating split %d",
			bp.CutNets, inst.cut(randomSide))
	}
	if bp.Passes < 1 {
		t.Fatal("no FM passes ran")
	}
}

func allDevices(c *netlist.Circuit) []int {
	out := make([]int, c.NumDevices())
	for i := range out {
		out[i] = i
	}
	return out
}

func TestBipartitionSubset(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.Chain("ch", 20, p)
	if err != nil {
		t.Fatal(err)
	}
	subset := []int{0, 1, 2, 3, 4, 5}
	bp, err := Bipartition(c, subset, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range subset {
		if _, ok := bp.Side[d]; !ok {
			t.Fatalf("device %d unassigned", d)
		}
	}
}

func TestBipartitionErrors(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.Chain("ch", 5, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bipartition(c, []int{0}, 1); err == nil {
		t.Fatal("singleton subset accepted")
	}
}

func TestBipartitionDeterministic(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "d", Gates: 40, Inputs: 5, Outputs: 4, Seed: 9,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Bipartition(c, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bipartition(c, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.CutNets != b.CutNets {
		t.Fatal("bipartition not deterministic")
	}
}

func TestRentFM(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "rent", Gates: 150, Inputs: 8, Outputs: 6, Seed: 4,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RentFM(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exponent < 0.1 || r.Exponent > 1.0 {
		t.Fatalf("FM Rent exponent = %.2f implausible", r.Exponent)
	}
	// FM partitions cut fewer nets than traversal chunks, so the FM
	// exponent fit must be at least as good on the same circuit
	// class (compare R², loosely).
	rb, err := Rent(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.R2 < rb.R2-0.35 {
		t.Fatalf("FM fit R²=%.2f much worse than chunked %.2f", r.R2, rb.R2)
	}
	// Chain still near zero.
	chain, err := gen.Chain("ch", 64, p)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := RentFM(chain, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Exponent > 0.35 {
		t.Fatalf("chain FM Rent = %.2f, want near 0", rc.Exponent)
	}
}

func TestRentFMTooSmall(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.Chain("t", 4, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RentFM(c, 1); err == nil {
		t.Fatal("tiny circuit accepted")
	}
}
