package metrics

import (
	"math"
	"testing"

	"maest/internal/gen"
	"maest/internal/netlist"
	"maest/internal/tech"
)

func TestDegrees(t *testing.T) {
	b := netlist.NewBuilder("d")
	b.AddDevice("g1", "NAND2", "a", "b", "x")
	b.AddDevice("g2", "INV", "x", "y")
	b.AddDevice("g3", "INV", "x", "z")
	b.AddDevice("g4", "NAND2", "y", "z", "q")
	b.AddPort("pa", netlist.In, "a")
	b.AddPort("pb", netlist.In, "b")
	b.AddPort("pq", netlist.Out, "q")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := Degrees(c)
	// Routable nets: x(3), y(2), z(2); a,b,q are degree 1.
	if s.RoutableNets != 3 {
		t.Fatalf("routable = %d", s.RoutableNets)
	}
	if s.MaxDegree != 3 {
		t.Fatalf("max = %d", s.MaxDegree)
	}
	if math.Abs(s.MeanDegree-7.0/3) > 1e-12 {
		t.Fatalf("mean = %g", s.MeanDegree)
	}
	if s.Histogram[2] != 2 || s.Histogram[3] != 1 {
		t.Fatalf("hist = %v", s.Histogram)
	}
}

func TestDegreesEmptyish(t *testing.T) {
	b := netlist.NewBuilder("e")
	b.AddDevice("g1", "INV", "a", "b")
	b.AddPort("pa", netlist.In, "a")
	b.AddPort("pb", netlist.Out, "b")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := Degrees(c)
	if s.RoutableNets != 0 || s.MeanDegree != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRentOnChain(t *testing.T) {
	// A chain has boundary pins independent of block size: the Rent
	// exponent of a 1-D chain is ~0 (constant external pins per
	// block interior).
	p := tech.NMOS25()
	c, err := gen.Chain("ch", 64, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Rent(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exponent > 0.3 {
		t.Fatalf("chain Rent exponent = %.2f, want near 0", r.Exponent)
	}
	if len(r.Samples) < 3 {
		t.Fatalf("samples = %d", len(r.Samples))
	}
}

func TestRentOnRandomLogic(t *testing.T) {
	// Random mapped logic lands in the classic 0.4–0.85 band.
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "r", Gates: 200, Inputs: 8, Outputs: 6, Seed: 5,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Rent(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exponent < 0.2 || r.Exponent > 0.95 {
		t.Fatalf("Rent exponent = %.2f outside plausible band", r.Exponent)
	}
	if r.R2 < 0.5 {
		t.Fatalf("log-log fit R² = %.2f too poor", r.R2)
	}
	if r.Coefficient <= 0 {
		t.Fatalf("coefficient = %g", r.Coefficient)
	}
}

func TestRentOrderingEffect(t *testing.T) {
	// Lower-locality circuits should not have a *smaller* exponent
	// than a chain.
	p := tech.NMOS25()
	chain, err := gen.Chain("ch", 64, p)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Rent(chain)
	if err != nil {
		t.Fatal(err)
	}
	messy, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "m", Gates: 64, Inputs: 6, Outputs: 4, Seed: 5, Locality: 0.2,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Rent(messy)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Exponent < rc.Exponent-0.05 {
		t.Fatalf("messy exponent %.2f below chain %.2f", rm.Exponent, rc.Exponent)
	}
}

func TestRentTooSmall(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.Chain("tiny", 4, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Rent(c); err == nil {
		t.Fatal("tiny circuit accepted")
	}
}

func TestFitLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept, r2 := fitLine(xs, ys)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Fatalf("fit = %g %g %g", slope, intercept, r2)
	}
	// Degenerate x.
	s2, _, r22 := fitLine([]float64{1, 1}, []float64{2, 4})
	if s2 != 0 || r22 != 0 {
		t.Fatalf("degenerate fit = %g %g", s2, r22)
	}
	// Constant y.
	_, _, r23 := fitLine([]float64{1, 2}, []float64{5, 5})
	if r23 != 1 {
		t.Fatalf("constant-y R² = %g", r23)
	}
}

func TestBFSOrderCoversAll(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "b", Gates: 50, Inputs: 5, Outputs: 4, Seed: 7,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	order := bfsOrder(c)
	if len(order) != c.NumDevices() {
		t.Fatalf("order covers %d of %d", len(order), c.NumDevices())
	}
	seen := map[int]bool{}
	for _, d := range order {
		if seen[d] {
			t.Fatalf("device %d visited twice", d)
		}
		seen[d] = true
	}
}

func TestExternalNets(t *testing.T) {
	b := netlist.NewBuilder("x")
	b.AddDevice("g1", "INV", "a", "m")
	b.AddDevice("g2", "INV", "m", "z")
	b.AddPort("pa", netlist.In, "a")
	b.AddPort("pz", netlist.Out, "z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Subset {g1}: net m crosses (g1 in, g2 out), net a reaches a
	// port -> 2 external.
	if got := externalNets(c, []int{0}); got != 2 {
		t.Fatalf("external = %d, want 2", got)
	}
	// Whole circuit: a and z reach ports, m is internal -> 2.
	if got := externalNets(c, []int{0, 1}); got != 2 {
		t.Fatalf("external = %d, want 2", got)
	}
}
