package tech

import (
	"fmt"
	"sort"

	"maest/internal/geom"
)

// Built-in processes.  NMOS25 reconstructs the paper's evaluation
// technology: nMOS, λ = 2.5 µm, Mead–Conway design rules (Newkirk &
// Mathews library for the full-custom experiments, the Rutgers nMOS
// standard-cell library for the TimberWolf experiments).  CMOS30 is a
// generic two-metal CMOS process demonstrating that the estimator
// "deals with different chip fabrication technologies" (§1).
//
// Cell widths follow typical λ-rule library footprints: an nMOS
// inverter is roughly 14λ wide in a 40λ-tall row, with each additional
// series/parallel transistor adding 6–8λ.  Feed-through and track
// pitches are the classic 7λ metal pitch (3λ wire + 4λ space).

// NMOS25 returns a fresh copy of the built-in nMOS λ=2.5µm process.
func NMOS25() *Process {
	p := &Process{
		Name:             "nmos25",
		LambdaNM:         2500,
		RowHeight:        40,
		TrackPitch:       7,
		FeedThroughWidth: 7,
		PortPitch:        8,
	}
	for _, d := range []Device{
		// Full-custom transistor footprints (gate + contacts).
		{Name: "ENH", Class: ClassTransistor, Width: 8, Height: 8, Pins: 3},
		{Name: "DEP", Class: ClassTransistor, Width: 8, Height: 10, Pins: 3},
		{Name: "ENHW", Class: ClassTransistor, Width: 12, Height: 8, Pins: 3}, // wide driver
		// Standard cells.
		{Name: "INV", Class: ClassCell, Width: 14, Height: 40, Pins: 2},
		{Name: "BUF", Class: ClassCell, Width: 20, Height: 40, Pins: 2},
		{Name: "NAND2", Class: ClassCell, Width: 18, Height: 40, Pins: 3},
		{Name: "NAND3", Class: ClassCell, Width: 24, Height: 40, Pins: 4},
		{Name: "NAND4", Class: ClassCell, Width: 30, Height: 40, Pins: 5},
		{Name: "NOR2", Class: ClassCell, Width: 18, Height: 40, Pins: 3},
		{Name: "NOR3", Class: ClassCell, Width: 24, Height: 40, Pins: 4},
		{Name: "AOI22", Class: ClassCell, Width: 28, Height: 40, Pins: 5},
		{Name: "XOR2", Class: ClassCell, Width: 34, Height: 40, Pins: 3},
		{Name: "MUX2", Class: ClassCell, Width: 30, Height: 40, Pins: 4},
		{Name: "DLATCH", Class: ClassCell, Width: 44, Height: 40, Pins: 3},
		{Name: "DFF", Class: ClassCell, Width: 56, Height: 40, Pins: 3},
	} {
		p.AddDevice(d)
	}
	return p
}

// CMOS30 returns a fresh copy of the built-in generic 3 µm CMOS
// process.
func CMOS30() *Process {
	p := &Process{
		Name:             "cmos30",
		LambdaNM:         1500,
		RowHeight:        50,
		TrackPitch:       8,
		FeedThroughWidth: 8,
		PortPitch:        10,
	}
	for _, d := range []Device{
		{Name: "NFET", Class: ClassTransistor, Width: 9, Height: 9, Pins: 3},
		{Name: "PFET", Class: ClassTransistor, Width: 9, Height: 13, Pins: 3},
		{Name: "INV", Class: ClassCell, Width: 12, Height: 50, Pins: 2},
		{Name: "BUF", Class: ClassCell, Width: 18, Height: 50, Pins: 2},
		{Name: "NAND2", Class: ClassCell, Width: 16, Height: 50, Pins: 3},
		{Name: "NAND3", Class: ClassCell, Width: 21, Height: 50, Pins: 4},
		{Name: "NAND4", Class: ClassCell, Width: 26, Height: 50, Pins: 5},
		{Name: "NOR2", Class: ClassCell, Width: 16, Height: 50, Pins: 3},
		{Name: "NOR3", Class: ClassCell, Width: 21, Height: 50, Pins: 4},
		{Name: "AOI22", Class: ClassCell, Width: 24, Height: 50, Pins: 5},
		{Name: "XOR2", Class: ClassCell, Width: 30, Height: 50, Pins: 3},
		{Name: "MUX2", Class: ClassCell, Width: 26, Height: 50, Pins: 4},
		{Name: "DLATCH", Class: ClassCell, Width: 38, Height: 50, Pins: 3},
		{Name: "DFF", Class: ClassCell, Width: 48, Height: 50, Pins: 3},
	} {
		p.AddDevice(d)
	}
	return p
}

var builtins = map[string]func() *Process{
	"nmos25": NMOS25,
	"cmos30": CMOS30,
}

// Lookup returns a fresh copy of a built-in process by name.
func Lookup(name string) (*Process, error) {
	mk, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("tech: unknown built-in process %q (have %v)", name, BuiltinNames())
	}
	return mk(), nil
}

// BuiltinNames lists the registered built-in processes in sorted order.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MinChannelHeight returns the height of a routing channel carrying the
// given number of tracks, in λ.
func (p *Process) MinChannelHeight(tracks int) geom.Lambda {
	if tracks <= 0 {
		return 0
	}
	return geom.Lambda(tracks) * p.TrackPitch
}
