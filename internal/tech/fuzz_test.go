package tech

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks the process parser never panics and successful
// parses survive a write/read cycle unchanged in count.
func FuzzRead(f *testing.F) {
	var sample bytes.Buffer
	if err := Write(&sample, NMOS25()); err != nil {
		f.Fatal(err)
	}
	f.Add(sample.String())
	f.Add("process p\nend\n")
	f.Add("device X cell 1 2 3\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		procs, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		for _, p := range procs {
			if err := Write(&buf, p); err != nil {
				t.Fatalf("write of parsed process failed: %v", err)
			}
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(back) != len(procs) {
			t.Fatalf("round trip changed process count")
		}
	})
}
