// Package tech models the fabrication-process database the estimator
// consumes (paper §3, Fig. 1).
//
// The paper keeps "multiple process data bases ... to describe various
// VLSI technologies"; each records the areas of the different device
// types, the height of the standard-cell rows and the value of λ, the
// maximum allowable mask misalignment.  This package provides that
// database as a value type, two built-in processes (the nMOS λ = 2.5 µm
// Mead–Conway process of Table 1 and a generic CMOS process), and a
// line-oriented text serialization so processes can be stored on disk
// and swapped without recompiling — the paper's requirement that the
// estimator "can easily be adjusted to cope with new chip fabrication
// processes".
package tech

import (
	"errors"
	"fmt"
	"sort"

	"maest/internal/geom"
)

// DeviceClass distinguishes the two layout methodologies' primitives:
// standard cells occupy a full row height, while full-custom transistors
// have free rectangular footprints.
type DeviceClass int

const (
	// ClassCell is a standard cell: fixed height (the row height),
	// variable width.
	ClassCell DeviceClass = iota
	// ClassTransistor is a full-custom transistor footprint.
	ClassTransistor
)

// String implements fmt.Stringer.
func (c DeviceClass) String() string {
	switch c {
	case ClassCell:
		return "cell"
	case ClassTransistor:
		return "transistor"
	default:
		return fmt.Sprintf("DeviceClass(%d)", int(c))
	}
}

// Device describes one device type available in a process: its name,
// class, and bounding-box footprint in λ.  Pins is the number of signal
// terminals the device exposes (used when expanding gates to
// transistors and when synthesizing layouts).
type Device struct {
	Name   string
	Class  DeviceClass
	Width  geom.Lambda
	Height geom.Lambda
	Pins   int
}

// Area returns the active-area footprint of the device in λ².
func (d Device) Area() geom.Area { return geom.Mul(d.Width, d.Height) }

// Process is one fabrication-technology database entry.
type Process struct {
	// Name identifies the process, e.g. "nmos25".
	Name string
	// LambdaNM is the physical length of 1 λ in nanometres (2500 for
	// the paper's nMOS process).  It only matters when converting λ²
	// results to physical units; all estimation happens in λ.
	LambdaNM int
	// RowHeight is the standard-cell row height in λ.
	RowHeight geom.Lambda
	// TrackPitch is the centre-to-centre pitch of one routing track in
	// λ.  Eq. 12 of the paper adds track counts to row heights; that
	// sum is dimensionally consistent only with an implied per-track
	// pitch, which this field makes explicit.
	TrackPitch geom.Lambda
	// FeedThroughWidth is the width f_w of one feed-through column
	// crossing a cell row (Eq. 12).
	FeedThroughWidth geom.Lambda
	// PortPitch is the edge length one I/O port consumes, used by the
	// aspect-ratio control criterion of §5 ("all input and output
	// ports must fit along one of the layout edges").
	PortPitch geom.Lambda
	// Devices lists the device types fabricable in this process,
	// keyed by name.
	Devices map[string]Device
}

// Clone returns a deep copy of p so callers can derive modified
// processes without aliasing the registry's builtins.
func (p *Process) Clone() *Process {
	q := *p
	q.Devices = make(map[string]Device, len(p.Devices))
	for k, v := range p.Devices {
		q.Devices[k] = v
	}
	return &q
}

// Device returns the named device type.
func (p *Process) Device(name string) (Device, error) {
	d, ok := p.Devices[name]
	if !ok {
		return Device{}, fmt.Errorf("tech: process %q has no device %q", p.Name, name)
	}
	return d, nil
}

// AddDevice registers (or replaces) a device type.
func (p *Process) AddDevice(d Device) {
	if p.Devices == nil {
		p.Devices = make(map[string]Device)
	}
	p.Devices[d.Name] = d
}

// DeviceNames returns the device type names in sorted order, for
// deterministic serialization and reporting.
func (p *Process) DeviceNames() []string {
	names := make([]string, 0, len(p.Devices))
	for n := range p.Devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ErrInvalidProcess wraps all Validate failures.
var ErrInvalidProcess = errors.New("tech: invalid process")

// Validate checks the structural invariants every estimator entry point
// relies on.  It reports the first violation found.
func (p *Process) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidProcess, fmt.Sprintf(format, args...))
	}
	if p.Name == "" {
		return fail("empty process name")
	}
	if p.LambdaNM <= 0 {
		return fail("process %q: lambda_nm must be positive, got %d", p.Name, p.LambdaNM)
	}
	if p.RowHeight <= 0 {
		return fail("process %q: row_height must be positive, got %d", p.Name, p.RowHeight)
	}
	if p.TrackPitch <= 0 {
		return fail("process %q: track_pitch must be positive, got %d", p.Name, p.TrackPitch)
	}
	if p.FeedThroughWidth <= 0 {
		return fail("process %q: feedthrough_width must be positive, got %d", p.Name, p.FeedThroughWidth)
	}
	if p.PortPitch <= 0 {
		return fail("process %q: port_pitch must be positive, got %d", p.Name, p.PortPitch)
	}
	if len(p.Devices) == 0 {
		return fail("process %q: no device types", p.Name)
	}
	for name, d := range p.Devices {
		if name != d.Name {
			return fail("process %q: device map key %q != device name %q", p.Name, name, d.Name)
		}
		if d.Width <= 0 || d.Height <= 0 {
			return fail("process %q: device %q has non-positive footprint %dx%d",
				p.Name, name, d.Width, d.Height)
		}
		if d.Pins < 0 {
			return fail("process %q: device %q has negative pin count", p.Name, name)
		}
		if d.Class == ClassCell && d.Height != p.RowHeight {
			return fail("process %q: cell %q height %d != row height %d",
				p.Name, name, d.Height, p.RowHeight)
		}
	}
	return nil
}
