package tech

import (
	"math"
	"testing"
)

func TestRescale(t *testing.T) {
	p := NMOS25()
	q, err := p.Rescale("nmos12", 1250)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "nmos12" || q.LambdaNM != 1250 {
		t.Fatalf("rescaled = %+v", q)
	}
	// λ-denominated geometry is invariant.
	if q.RowHeight != p.RowHeight || q.TrackPitch != p.TrackPitch {
		t.Fatal("λ fields changed under rescale")
	}
	if q.Devices["INV"].Width != p.Devices["INV"].Width {
		t.Fatal("device footprints changed under rescale")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if p.LambdaNM != 2500 {
		t.Fatal("rescale mutated the source process")
	}
	if _, err := p.Rescale("x", 0); err == nil {
		t.Error("lambda 0 accepted")
	}
	if _, err := p.Rescale("", 100); err == nil {
		t.Error("empty name accepted")
	}
}

func TestPhysicalConversions(t *testing.T) {
	p := NMOS25() // λ = 2.5 µm
	if got := p.MicronsPerLambda(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("µm/λ = %g", got)
	}
	// 100 λ² = 100 × 6.25 µm² = 625 µm².
	if got := p.PhysicalArea(100); math.Abs(got-625) > 1e-9 {
		t.Fatalf("area = %g", got)
	}
	if got := p.PhysicalLength(40); math.Abs(got-100) > 1e-9 {
		t.Fatalf("length = %g", got)
	}
	// A 2x shrink quarters physical area for the same λ² figure.
	q, err := p.Rescale("half", 1250)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.PhysicalArea(100); math.Abs(got-625.0/4) > 1e-9 {
		t.Fatalf("shrunk area = %g", got)
	}
}
