package tech

import (
	"fmt"

	"maest/internal/geom"
)

// λ-based scaling: the whole point of the Mead–Conway methodology is
// that layouts and estimates expressed in λ survive a process shrink
// unchanged — only the physical conversion factor moves.  Rescale
// derives a shrunk/grown process; the physical helpers convert λ²
// results to square microns for reporting.

// Rescale returns a copy of p with λ set to newLambdaNM.  All
// λ-denominated fields (row height, pitches, device footprints) are
// unchanged — that is the methodology's invariance — so estimates in
// λ² are identical and only physical areas change.
func (p *Process) Rescale(name string, newLambdaNM int) (*Process, error) {
	if newLambdaNM <= 0 {
		return nil, fmt.Errorf("%w: lambda %d nm must be positive", ErrInvalidProcess, newLambdaNM)
	}
	if name == "" {
		return nil, fmt.Errorf("%w: empty name for rescaled process", ErrInvalidProcess)
	}
	q := p.Clone()
	q.Name = name
	q.LambdaNM = newLambdaNM
	return q, nil
}

// MicronsPerLambda returns λ in microns.
func (p *Process) MicronsPerLambda() float64 { return float64(p.LambdaNM) / 1000 }

// PhysicalArea converts a λ² area to square microns under this
// process.
func (p *Process) PhysicalArea(a float64) float64 {
	m := p.MicronsPerLambda()
	return a * m * m
}

// PhysicalLength converts a λ length to microns.
func (p *Process) PhysicalLength(l geom.Lambda) float64 {
	return float64(l) * p.MicronsPerLambda()
}
