package tech

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"maest/internal/geom"
)

// The on-disk process format is line-oriented:
//
//	# comment
//	process nmos25
//	lambda_nm 2500
//	row_height 40
//	track_pitch 7
//	feedthrough_width 7
//	port_pitch 8
//	device INV cell 14 40 2
//	device ENH transistor 8 8 3
//	end
//
// Field order before the device list is free; "end" closes the process.
// A file may contain several processes.

// Write serializes p in the text format.
func Write(w io.Writer, p *Process) error {
	_, err := w.Write(Append(nil, p))
	return err
}

// Append serializes p in the text format onto dst and returns the
// extended slice.  It is the allocation-light form of Write: content
// hashes (engine.PlanHash and the serving-layer cache keys) fold the
// process serialization into every digest, so this runs on the ECO
// hot path where fmt-based rendering showed up as a quarter of the
// per-edit cost.
func Append(dst []byte, p *Process) []byte {
	dst = append(dst, "process "...)
	dst = append(dst, p.Name...)
	dst = appendIntField(dst, "\nlambda_nm ", int64(p.LambdaNM))
	dst = appendIntField(dst, "\nrow_height ", int64(p.RowHeight))
	dst = appendIntField(dst, "\ntrack_pitch ", int64(p.TrackPitch))
	dst = appendIntField(dst, "\nfeedthrough_width ", int64(p.FeedThroughWidth))
	dst = appendIntField(dst, "\nport_pitch ", int64(p.PortPitch))
	dst = append(dst, '\n')
	for _, name := range p.DeviceNames() {
		d := p.Devices[name]
		dst = append(dst, "device "...)
		dst = append(dst, d.Name...)
		dst = append(dst, ' ')
		dst = append(dst, d.Class.String()...)
		dst = strconv.AppendInt(append(dst, ' '), int64(d.Width), 10)
		dst = strconv.AppendInt(append(dst, ' '), int64(d.Height), 10)
		dst = strconv.AppendInt(append(dst, ' '), int64(d.Pins), 10)
		dst = append(dst, '\n')
	}
	return append(dst, "end\n"...)
}

func appendIntField(dst []byte, key string, v int64) []byte {
	return strconv.AppendInt(append(dst, key...), v, 10)
}

// Read parses every process in r.  Each parsed process is validated.
func Read(r io.Reader) ([]*Process, error) {
	sc := bufio.NewScanner(r)
	var (
		procs []*Process
		cur   *Process
		line  int
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		key := fields[0]
		if cur == nil && key != "process" {
			return nil, fmt.Errorf("tech: line %d: %q outside a process block", line, key)
		}
		switch key {
		case "process":
			if cur != nil {
				return nil, fmt.Errorf("tech: line %d: nested process block", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("tech: line %d: want 'process <name>'", line)
			}
			cur = &Process{Name: fields[1], Devices: map[string]Device{}}
		case "lambda_nm":
			v, err := intField(fields, line)
			if err != nil {
				return nil, err
			}
			cur.LambdaNM = v
		case "row_height":
			v, err := intField(fields, line)
			if err != nil {
				return nil, err
			}
			cur.RowHeight = geom.Lambda(v)
		case "track_pitch":
			v, err := intField(fields, line)
			if err != nil {
				return nil, err
			}
			cur.TrackPitch = geom.Lambda(v)
		case "feedthrough_width":
			v, err := intField(fields, line)
			if err != nil {
				return nil, err
			}
			cur.FeedThroughWidth = geom.Lambda(v)
		case "port_pitch":
			v, err := intField(fields, line)
			if err != nil {
				return nil, err
			}
			cur.PortPitch = geom.Lambda(v)
		case "device":
			d, err := parseDevice(fields, line)
			if err != nil {
				return nil, err
			}
			if _, dup := cur.Devices[d.Name]; dup {
				return nil, fmt.Errorf("tech: line %d: duplicate device %q", line, d.Name)
			}
			cur.AddDevice(d)
		case "end":
			if err := cur.Validate(); err != nil {
				return nil, fmt.Errorf("tech: line %d: %w", line, err)
			}
			procs = append(procs, cur)
			cur = nil
		default:
			return nil, fmt.Errorf("tech: line %d: unknown directive %q", line, key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tech: read: %w", err)
	}
	if cur != nil {
		return nil, fmt.Errorf("tech: process %q not closed with 'end'", cur.Name)
	}
	if len(procs) == 0 {
		return nil, fmt.Errorf("tech: no process blocks found")
	}
	return procs, nil
}

// ReadOne parses r and requires exactly one process.
func ReadOne(r io.Reader) (*Process, error) {
	procs, err := Read(r)
	if err != nil {
		return nil, err
	}
	if len(procs) != 1 {
		return nil, fmt.Errorf("tech: want exactly one process, file has %d", len(procs))
	}
	return procs[0], nil
}

func intField(fields []string, line int) (int, error) {
	if len(fields) != 2 {
		return 0, fmt.Errorf("tech: line %d: want '%s <int>'", line, fields[0])
	}
	v, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, fmt.Errorf("tech: line %d: bad integer %q: %v", line, fields[1], err)
	}
	return v, nil
}

func parseDevice(fields []string, line int) (Device, error) {
	if len(fields) != 6 {
		return Device{}, fmt.Errorf("tech: line %d: want 'device <name> <class> <w> <h> <pins>'", line)
	}
	var class DeviceClass
	switch fields[2] {
	case "cell":
		class = ClassCell
	case "transistor":
		class = ClassTransistor
	default:
		return Device{}, fmt.Errorf("tech: line %d: unknown device class %q", line, fields[2])
	}
	nums := make([]int, 3)
	for i, f := range fields[3:] {
		v, err := strconv.Atoi(f)
		if err != nil {
			return Device{}, fmt.Errorf("tech: line %d: bad integer %q: %v", line, f, err)
		}
		nums[i] = v
	}
	return Device{
		Name:   fields[1],
		Class:  class,
		Width:  geom.Lambda(nums[0]),
		Height: geom.Lambda(nums[1]),
		Pins:   nums[2],
	}, nil
}
