package tech

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestBuiltinsValidate(t *testing.T) {
	for _, name := range BuiltinNames() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", name, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("unobtainium"); err == nil {
		t.Fatal("expected error for unknown process")
	}
}

func TestLookupReturnsFreshCopies(t *testing.T) {
	a, _ := Lookup("nmos25")
	b, _ := Lookup("nmos25")
	a.Devices["INV"] = Device{Name: "INV", Class: ClassCell, Width: 999, Height: 40, Pins: 2}
	if b.Devices["INV"].Width == 999 {
		t.Fatal("Lookup aliases builtin device maps")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := NMOS25()
	q := p.Clone()
	q.AddDevice(Device{Name: "ZZZ", Class: ClassTransistor, Width: 1, Height: 1, Pins: 2})
	if _, ok := p.Devices["ZZZ"]; ok {
		t.Fatal("Clone shares device map")
	}
}

func TestDeviceLookup(t *testing.T) {
	p := NMOS25()
	d, err := p.Device("NAND2")
	if err != nil {
		t.Fatal(err)
	}
	if d.Width != 18 || d.Height != p.RowHeight {
		t.Fatalf("NAND2 = %+v", d)
	}
	if d.Area() != 18*40 {
		t.Fatalf("NAND2 area = %d", d.Area())
	}
	if _, err := p.Device("missing"); err == nil {
		t.Fatal("expected error for missing device")
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	mk := func(mutate func(*Process)) *Process {
		p := NMOS25()
		mutate(p)
		return p
	}
	cases := []struct {
		name string
		p    *Process
	}{
		{"empty name", mk(func(p *Process) { p.Name = "" })},
		{"bad lambda", mk(func(p *Process) { p.LambdaNM = 0 })},
		{"bad row height", mk(func(p *Process) { p.RowHeight = -1 })},
		{"bad track pitch", mk(func(p *Process) { p.TrackPitch = 0 })},
		{"bad ft width", mk(func(p *Process) { p.FeedThroughWidth = 0 })},
		{"bad port pitch", mk(func(p *Process) { p.PortPitch = 0 })},
		{"no devices", mk(func(p *Process) { p.Devices = nil })},
		{"key mismatch", mk(func(p *Process) {
			p.Devices["WRONG"] = Device{Name: "INV", Class: ClassCell, Width: 14, Height: 40}
		})},
		{"zero footprint", mk(func(p *Process) {
			p.Devices["BAD"] = Device{Name: "BAD", Class: ClassTransistor, Width: 0, Height: 4}
		})},
		{"negative pins", mk(func(p *Process) {
			p.Devices["BAD"] = Device{Name: "BAD", Class: ClassTransistor, Width: 4, Height: 4, Pins: -1}
		})},
		{"cell height mismatch", mk(func(p *Process) {
			p.Devices["BAD"] = Device{Name: "BAD", Class: ClassCell, Width: 4, Height: 4, Pins: 2}
		})},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if err == nil {
			t.Errorf("%s: Validate passed, want failure", c.name)
			continue
		}
		if !errors.Is(err, ErrInvalidProcess) {
			t.Errorf("%s: error not wrapped in ErrInvalidProcess: %v", c.name, err)
		}
	}
}

func TestDeviceNamesSorted(t *testing.T) {
	p := NMOS25()
	names := p.DeviceNames()
	if len(names) != len(p.Devices) {
		t.Fatalf("got %d names, want %d", len(names), len(p.Devices))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, name := range BuiltinNames() {
		orig, _ := Lookup(name)
		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			t.Fatalf("Write(%s): %v", name, err)
		}
		back, err := ReadOne(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadOne(%s): %v\ninput:\n%s", name, err, buf.String())
		}
		if !reflect.DeepEqual(orig, back) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", name, back, orig)
		}
	}
}

func TestReadMultipleProcesses(t *testing.T) {
	var buf bytes.Buffer
	a, _ := Lookup("nmos25")
	b, _ := Lookup("cmos30")
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	procs, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 2 || procs[0].Name != "nmos25" || procs[1].Name != "cmos30" {
		t.Fatalf("got %d procs", len(procs))
	}
	if _, err := ReadOne(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ReadOne should reject two-process input")
	}
}

func TestReadRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"directive outside block", "lambda_nm 2500\n"},
		{"nested process", "process a\nprocess b\n"},
		{"unknown directive", "process a\nwombat 3\nend\n"},
		{"bad int", "process a\nlambda_nm many\nend\n"},
		{"missing arg", "process a\nlambda_nm\nend\n"},
		{"unclosed", "process a\nlambda_nm 2500\n"},
		{"bad device class", "process a\ndevice X blob 1 2 3\nend\n"},
		{"short device", "process a\ndevice X cell 1 2\nend\n"},
		{"bad device int", "process a\ndevice X cell one 2 3\nend\n"},
		{"duplicate device", "process a\nlambda_nm 1\nrow_height 4\ntrack_pitch 1\nfeedthrough_width 1\nport_pitch 1\ndevice X cell 1 4 2\ndevice X cell 1 4 2\nend\n"},
		{"invalid on end", "process a\nend\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: Read accepted malformed input", c.name)
		}
	}
}

func TestReadSkipsCommentsAndBlankLines(t *testing.T) {
	in := `
# a comment
process tiny

lambda_nm 1000
row_height 10
track_pitch 2
# mid-block comment
feedthrough_width 2
port_pitch 2
device T transistor 2 2 3
end
`
	p, err := ReadOne(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "tiny" || len(p.Devices) != 1 {
		t.Fatalf("parsed %+v", p)
	}
}

func TestMinChannelHeight(t *testing.T) {
	p := NMOS25()
	if got := p.MinChannelHeight(0); got != 0 {
		t.Fatalf("0 tracks -> %d", got)
	}
	if got := p.MinChannelHeight(-3); got != 0 {
		t.Fatalf("negative tracks -> %d", got)
	}
	if got := p.MinChannelHeight(5); got != 35 {
		t.Fatalf("5 tracks -> %d, want 35", got)
	}
}

func TestDeviceClassString(t *testing.T) {
	if ClassCell.String() != "cell" || ClassTransistor.String() != "transistor" {
		t.Fatal("DeviceClass.String mismatch")
	}
	if DeviceClass(42).String() != "DeviceClass(42)" {
		t.Fatal("unknown class String mismatch")
	}
}
