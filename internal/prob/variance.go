package prob

import (
	"fmt"
	"math"
)

// The paper works purely in expectations (E(i), E(M)).  The variance
// functions below extend it with second moments, so callers can
// attach confidence intervals to track and feed-through estimates —
// a natural "additional experiments" item from §7.

// RowSpanVariance returns Var(i) of the Eq. 2 distribution.
func RowSpanVariance(n, D int) (float64, error) {
	dist, err := RowSpanDist(n, D)
	if err != nil {
		return 0, err
	}
	mean, m2 := 0.0, 0.0
	for i, p := range dist {
		v := float64(i + 1)
		mean += v * p
		m2 += v * v * p
	}
	variance := m2 - mean*mean
	if variance < 0 {
		variance = 0 // numeric guard
	}
	return variance, nil
}

// FeedThroughCountVariance returns Var(M) of the Eq. 10 binomial law:
// H·p·(1−p).
func FeedThroughCountVariance(H int, p float64) (float64, error) {
	if H < 0 {
		return 0, fmt.Errorf("prob: FeedThroughCountVariance needs H ≥ 0, got %d", H)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("prob: probability %g outside [0,1]", p)
	}
	return float64(H) * p * (1 - p), nil
}

// TrackInterval returns a mean ± z·σ interval for the total track
// count of a net-degree histogram over n rows, treating nets as
// independent.  degreeCount maps D to yᵢ.  The returned bounds are
// clamped to ≥ 0.
func TrackInterval(n int, degreeCount map[int]int, z float64) (mean, lo, hi float64, err error) {
	if z < 0 {
		return 0, 0, 0, fmt.Errorf("prob: negative z %g", z)
	}
	variance := 0.0
	for d, y := range degreeCount {
		e, err := ExpectedRowSpan(n, d)
		if err != nil {
			return 0, 0, 0, err
		}
		v, err := RowSpanVariance(n, d)
		if err != nil {
			return 0, 0, 0, err
		}
		mean += float64(y) * e
		variance += float64(y) * v
	}
	sigma := math.Sqrt(variance)
	lo = mean - z*sigma
	if lo < 0 {
		lo = 0
	}
	hi = mean + z*sigma
	return mean, lo, hi, nil
}
