package prob

import (
	"fmt"
	"math/rand"
)

// The Monte Carlo estimators below replay the paper's placement model
// literally: each of a net's D components lands in one of n rows
// independently and uniformly.  They exist to validate the closed
// forms (the paper's own "numerical simulation results") and to power
// the simulation benches.

// SimulateRowSpan estimates E(i), the mean number of distinct rows
// occupied by a net under the paper's placement model.  Eq. 2
// truncates its exponent to k = min(n, D) — "there are only n
// components which are placed in rows with the probability of 1/n;
// the remaining components are placed in any row" — so for D > n only
// min(n, D) components are placed at random here.  Use
// SimulateRowSpanExact for the untruncated occupancy process; the
// tests quantify the bias between the two.
func SimulateRowSpan(rng *rand.Rand, n, D, trials int) (float64, error) {
	if n < 1 || D < 1 {
		return 0, fmt.Errorf("prob: SimulateRowSpan needs n,D ≥ 1, got n=%d D=%d", n, D)
	}
	if D > n {
		D = n
	}
	return SimulateRowSpanExact(rng, n, D, trials)
}

// SimulateRowSpanExact estimates the mean number of distinct rows
// occupied by all D components placed uniformly over n rows, with no
// paper-model truncation.
func SimulateRowSpanExact(rng *rand.Rand, n, D, trials int) (float64, error) {
	if n < 1 || D < 1 {
		return 0, fmt.Errorf("prob: SimulateRowSpanExact needs n,D ≥ 1, got n=%d D=%d", n, D)
	}
	if trials < 1 {
		return 0, fmt.Errorf("prob: need trials ≥ 1, got %d", trials)
	}
	occupied := make([]bool, n)
	sum := 0
	for t := 0; t < trials; t++ {
		for r := range occupied {
			occupied[r] = false
		}
		span := 0
		for c := 0; c < D; c++ {
			r := rng.Intn(n)
			if !occupied[r] {
				occupied[r] = true
				span++
			}
		}
		sum += span
	}
	return float64(sum) / float64(trials), nil
}

// SimulateFeedThrough estimates the probability that a D-component
// net placed uniformly over n rows needs a feed-through in row i
// (1-based): at least one component above and one below.
func SimulateFeedThrough(rng *rand.Rand, n, D, i, trials int) (float64, error) {
	if err := checkRow(n, i); err != nil {
		return 0, err
	}
	if D < 1 {
		return 0, fmt.Errorf("prob: SimulateFeedThrough needs D ≥ 1, got %d", D)
	}
	if trials < 1 {
		return 0, fmt.Errorf("prob: need trials ≥ 1, got %d", trials)
	}
	hits := 0
	for t := 0; t < trials; t++ {
		above, below := false, false
		for c := 0; c < D; c++ {
			r := rng.Intn(n) + 1
			if r < i {
				above = true
			} else if r > i {
				below = true
			}
		}
		if above && below {
			hits++
		}
	}
	return float64(hits) / float64(trials), nil
}

// SimulateRowSpanDist estimates the full Eq. 2 distribution; index
// i-1 holds the observed frequency of spanning exactly i rows.  Like
// SimulateRowSpan it applies the paper's k = min(n, D) truncation.
func SimulateRowSpanDist(rng *rand.Rand, n, D, trials int) ([]float64, error) {
	if n < 1 || D < 1 {
		return nil, fmt.Errorf("prob: SimulateRowSpanDist needs n,D ≥ 1, got n=%d D=%d", n, D)
	}
	if D > n {
		D = n
	}
	if trials < 1 {
		return nil, fmt.Errorf("prob: need trials ≥ 1, got %d", trials)
	}
	imax := n
	if D < n {
		imax = D
	}
	counts := make([]int, imax)
	occupied := make([]bool, n)
	for t := 0; t < trials; t++ {
		for r := range occupied {
			occupied[r] = false
		}
		span := 0
		for c := 0; c < D; c++ {
			r := rng.Intn(n)
			if !occupied[r] {
				occupied[r] = true
				span++
			}
		}
		counts[span-1]++
	}
	dist := make([]float64, imax)
	for i, c := range counts {
		dist[i] = float64(c) / float64(trials)
	}
	return dist, nil
}

// ArgmaxFeedThroughRow returns the row index (1-based) maximizing the
// analytic feed-through probability for a D-component net over n
// rows, used to verify the paper's central-row theorem.
func ArgmaxFeedThroughRow(n, D int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("prob: need n ≥ 1, got %d", n)
	}
	best, bestP := 1, -1.0
	for i := 1; i <= n; i++ {
		p, err := FeedThroughProb(n, D, i)
		if err != nil {
			return 0, err
		}
		if p > bestP {
			best, bestP = i, p
		}
	}
	return best, nil
}
