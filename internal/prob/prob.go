// Package prob implements the probabilistic machinery of §4.1 of the
// paper: the distribution of the number of rows a net's D components
// span when placed uniformly over n standard-cell rows (Eqs. 2–3),
// the probability that a net contributes a feed-through to a given
// row (Eqs. 4–9), and the distribution and expectation of the number
// of feed-throughs in the central row across all H nets (Eqs. 10–11).
//
// Every closed form has a Monte Carlo counterpart in montecarlo.go;
// the tests require them to agree, reproducing the paper's "numerical
// simulation results".
package prob

import (
	"fmt"
	"math"
)

// Binomial returns C(n, k) as a float64, using log-gamma for large
// arguments so callers can work at any circuit scale.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k == 0 || k == n {
		return 1
	}
	if k > n-k {
		k = n - k
	}
	if n <= 60 {
		// Exact in float64 for small n.
		res := 1.0
		for i := 1; i <= k; i++ {
			res = res * float64(n-k+i) / float64(i)
		}
		return math.Round(res)
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return math.Exp(lg - lk - lnk)
}

// RowSpanDist returns Eq. 2: dist[i-1] is the probability that the D
// components of a net land in exactly i of the n rows, for
// i = 1..min(n, D), under the paper's uniform-placement model with
// exponent k = min(n, D).
//
// Eq. 2's printed form is the alternating inclusion–exclusion sum
// P(i) = C(n,i)·[(i/n)ᵏ − Σ_{j<i} C(i,j)·q_j], whose terms grow like
// C(n,i) while the result stays in [0,1] — catastrophic cancellation
// for n beyond a few dozen rows (probabilities in the hundreds were
// observed at n = 200).  The same distribution is therefore evaluated
// by the forward occupancy chain — drop the k components one at a
// time; each lands in an already-occupied row with probability i/n —
//
//	P_{t+1}(i) = P_t(i)·i/n + P_t(i−1)·(n−i+1)/n,
//
// whose terms are all positive, so it is unconditionally stable at
// any scale and agrees with Eq. 2 exactly in exact arithmetic.
func RowSpanDist(n, D int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("prob: RowSpanDist needs n ≥ 1, got %d", n)
	}
	if D < 1 {
		return nil, fmt.Errorf("prob: RowSpanDist needs D ≥ 1, got %d", D)
	}
	k := n
	if D < n {
		k = D
	}
	// cur[i] = P(exactly i rows occupied after t components placed).
	cur := make([]float64, k+1)
	next := make([]float64, k+1)
	cur[0] = 1
	fn := float64(n)
	for t := 0; t < k; t++ {
		for i := range next {
			next[i] = 0
		}
		for i, p := range cur {
			if p == 0 {
				continue
			}
			next[i] += p * float64(i) / fn
			if i < k {
				next[i+1] += p * float64(n-i) / fn
			}
		}
		cur, next = next, cur
	}
	return cur[1:], nil
}

// ExpectedRowSpan returns Eq. 3's expectation E(i) = Σ i·P_rows(i),
// before rounding.
func ExpectedRowSpan(n, D int) (float64, error) {
	dist, err := RowSpanDist(n, D)
	if err != nil {
		return 0, err
	}
	e := 0.0
	for i, p := range dist {
		e += float64(i+1) * p
	}
	return e, nil
}

// TracksForNet returns the paper's per-net track count: E(i) rounded
// up to the next higher integer ("E(i) should be rounded up").
func TracksForNet(n, D int) (int, error) {
	e, err := ExpectedRowSpan(n, D)
	if err != nil {
		return 0, err
	}
	return int(math.Ceil(e - 1e-9)), nil
}

// FeedThroughProb returns the probability that a net of D components,
// placed uniformly over n rows, requires a feed-through in row i
// (1-based): at least one component strictly above row i and at least
// one strictly below.  This is the closed form of the paper's Eq. 5
// double sum (see FeedThroughProbPaper):
//
//	P = 1 − (i/n)ᴰ − ((n−i+1)/n)ᴰ + (1/n)ᴰ
//
// ("no component below" ∪ "no component above", inclusion–exclusion).
func FeedThroughProb(n, D, i int) (float64, error) {
	if err := checkRow(n, i); err != nil {
		return 0, err
	}
	if D < 2 {
		return 0, nil
	}
	fn := float64(n)
	pNoBelow := math.Pow(float64(i)/fn, float64(D))
	pNoAbove := math.Pow(float64(n-i+1)/fn, float64(D))
	pOnlyRowI := math.Pow(1/fn, float64(D))
	p := 1 - pNoBelow - pNoAbove + pOnlyRowI
	if p < 0 {
		p = 0
	}
	return p, nil
}

// FeedThroughProbPaper evaluates Eqs. 4–5 exactly as printed: the sum
// over l (components placed in row i) of C(D,l)(1/n)ˡ times the sum
// over j (components above) of C(D−l,j)((i−1)/n)ʲ((n−i)/n)^(D−l−j),
// with j running 1..D−l−1 and l running 0..D−2.  It must equal
// FeedThroughProb; the tests enforce that.
func FeedThroughProbPaper(n, D, i int) (float64, error) {
	if err := checkRow(n, i); err != nil {
		return 0, err
	}
	if D < 2 {
		return 0, nil
	}
	fn := float64(n)
	pAbove := float64(i-1) / fn
	pBelow := float64(n-i) / fn
	pIn := 1 / fn
	total := 0.0
	for l := 0; l <= D-2; l++ {
		z := 0.0
		for j := 1; j <= D-l-1; j++ {
			z += Binomial(D-l, j) *
				math.Pow(pAbove, float64(j)) *
				math.Pow(pBelow, float64(D-l-j))
		}
		total += Binomial(D, l) * math.Pow(pIn, float64(l)) * z
	}
	return total, nil
}

// CentralRow returns the paper's most-feed-through-probable row index
// i = (n+1)/2 (1-based; for even n this is the upper-middle row, per
// the integer division in the paper's formula).
func CentralRow(n int) int { return (n + 1) / 2 }

// CentralFeedThroughProb returns Eq. 9: the two-component-net model
// probability of a feed-through in the central row,
//
//	P = 2·((n−1)/(2n))² = (n−1)²/(2n²),
//
// which tends to the paper's P_max = 0.5 as n → ∞.
func CentralFeedThroughProb(n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("prob: CentralFeedThroughProb needs n ≥ 1, got %d", n)
	}
	fn := float64(n)
	return (fn - 1) * (fn - 1) / (2 * fn * fn), nil
}

// FeedThroughCountDist returns Eq. 10: dist[M] is the probability of
// exactly M of the H nets contributing a feed-through to the central
// row, each independently with probability p (binomial law,
// M = 0..H).
func FeedThroughCountDist(H int, p float64) ([]float64, error) {
	if H < 0 {
		return nil, fmt.Errorf("prob: FeedThroughCountDist needs H ≥ 0, got %d", H)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("prob: feed-through probability %g outside [0,1]", p)
	}
	dist := make([]float64, H+1)
	// Iterate in log space to stay finite for large H.
	lp, lq := math.Log(p), math.Log(1-p)
	for m := 0; m <= H; m++ {
		switch {
		case p == 0:
			if m == 0 {
				dist[m] = 1
			}
		case p == 1:
			if m == H {
				dist[m] = 1
			}
		default:
			lg1, _ := math.Lgamma(float64(H + 1))
			lg2, _ := math.Lgamma(float64(m + 1))
			lg3, _ := math.Lgamma(float64(H - m + 1))
			dist[m] = math.Exp(lg1 - lg2 - lg3 + float64(m)*lp + float64(H-m)*lq)
		}
	}
	return dist, nil
}

// ExpectedFeedThroughs returns Eq. 11's E(M) = Σ M·P(M) before
// rounding.  It equals H·p analytically; computing the sum keeps the
// implementation aligned with the paper's derivation (the identity is
// property-tested).
func ExpectedFeedThroughs(H int, p float64) (float64, error) {
	dist, err := FeedThroughCountDist(H, p)
	if err != nil {
		return 0, err
	}
	e := 0.0
	for m, pm := range dist {
		e += float64(m) * pm
	}
	return e, nil
}

// FeedThroughsCeil returns E(M) rounded up to an integer, the value
// Eq. 12 consumes.
func FeedThroughsCeil(H int, p float64) (int, error) {
	e, err := ExpectedFeedThroughs(H, p)
	if err != nil {
		return 0, err
	}
	return int(math.Ceil(e - 1e-9)), nil
}

func checkRow(n, i int) error {
	if n < 1 {
		return fmt.Errorf("prob: need n ≥ 1, got %d", n)
	}
	if i < 1 || i > n {
		return fmt.Errorf("prob: row %d outside 1..%d", i, n)
	}
	return nil
}
