package prob

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 1, 5}, {5, 2, 10},
		{10, 3, 120}, {52, 5, 2598960}, {5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialLargeMatchesPascal(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) must hold to high relative
	// accuracy across the Lgamma switchover (n > 60).
	for _, n := range []int{61, 80, 120, 200} {
		for _, k := range []int{1, 2, n / 3, n / 2} {
			got := Binomial(n, k)
			want := Binomial(n-1, k-1) + Binomial(n-1, k)
			if rel := math.Abs(got-want) / want; rel > 1e-9 {
				t.Errorf("Pascal identity fails at C(%d,%d): rel err %g", n, k, rel)
			}
		}
	}
}

func TestBinomialSymmetry(t *testing.T) {
	f := func(n uint8, k uint8) bool {
		nn := int(n%100) + 1
		kk := int(k) % (nn + 1)
		a, b := Binomial(nn, kk), Binomial(nn, nn-kk)
		if a == 0 && b == 0 {
			return true
		}
		return math.Abs(a-b)/math.Max(a, b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowSpanDistSumsToOne(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 20} {
		for _, D := range []int{1, 2, 3, 5, 10, 40, 200} {
			dist, err := RowSpanDist(n, D)
			if err != nil {
				t.Fatalf("n=%d D=%d: %v", n, D, err)
			}
			sum := 0.0
			for _, p := range dist {
				if p < -1e-12 {
					t.Fatalf("n=%d D=%d: negative probability %g", n, D, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("n=%d D=%d: distribution sums to %g", n, D, sum)
			}
		}
	}
}

func TestRowSpanDistKnownValues(t *testing.T) {
	// n=2, D=2: P(1 row) = 2/4, P(2 rows) = 2/4.
	dist, err := RowSpanDist(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist[0]-0.5) > 1e-12 || math.Abs(dist[1]-0.5) > 1e-12 {
		t.Fatalf("n=2 D=2 dist = %v", dist)
	}
	// n=3, D=2: P(1) = 3/9, P(2) = 6/9.
	dist, err = RowSpanDist(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist[0]-1.0/3) > 1e-12 || math.Abs(dist[1]-2.0/3) > 1e-12 {
		t.Fatalf("n=3 D=2 dist = %v", dist)
	}
	// D=1 spans exactly one row.
	dist, err = RowSpanDist(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 1 || math.Abs(dist[0]-1) > 1e-12 {
		t.Fatalf("n=7 D=1 dist = %v", dist)
	}
	// n=1: everything is in the single row.
	dist, err = RowSpanDist(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 1 || math.Abs(dist[0]-1) > 1e-12 {
		t.Fatalf("n=1 D=9 dist = %v", dist)
	}
}

func TestRowSpanDistErrors(t *testing.T) {
	if _, err := RowSpanDist(0, 3); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RowSpanDist(3, 0); err == nil {
		t.Error("D=0 accepted")
	}
	if _, err := ExpectedRowSpan(0, 1); err == nil {
		t.Error("ExpectedRowSpan n=0 accepted")
	}
	if _, err := TracksForNet(-1, 2); err == nil {
		t.Error("TracksForNet n=-1 accepted")
	}
}

func TestExpectedRowSpanBounds(t *testing.T) {
	f := func(nn, dd uint8) bool {
		n := int(nn%20) + 1
		D := int(dd%20) + 1
		e, err := ExpectedRowSpan(n, D)
		if err != nil {
			return false
		}
		lim := float64(min(n, D))
		return e >= 1-1e-9 && e <= lim+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedRowSpanExactOccupancy(t *testing.T) {
	// For D ≤ n the expected number of occupied rows has the exact
	// occupancy formula n(1 − (1−1/n)^D); the paper's Eq. 2/3 must
	// agree when its truncation k = min(n,D) is inactive.
	for _, c := range []struct{ n, D int }{{5, 2}, {5, 5}, {10, 3}, {8, 8}, {30, 7}} {
		e, err := ExpectedRowSpan(c.n, c.D)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(c.n) * (1 - math.Pow(1-1/float64(c.n), float64(c.D)))
		if math.Abs(e-want) > 1e-9 {
			t.Errorf("n=%d D=%d: E = %g, occupancy formula %g", c.n, c.D, e, want)
		}
	}
}

func TestTracksForNetRoundsUp(t *testing.T) {
	// n=3, D=2: E = 1*(1/3) + 2*(2/3) = 5/3 -> 2 tracks.
	tr, err := TracksForNet(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr != 2 {
		t.Fatalf("tracks = %d, want 2", tr)
	}
	// D=1: E = 1 -> exactly 1 (integral expectations must not round
	// up an extra step).
	tr, err = TracksForNet(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr != 1 {
		t.Fatalf("tracks(D=1) = %d, want 1", tr)
	}
}

func TestFeedThroughProbMatchesPaperSum(t *testing.T) {
	for n := 2; n <= 12; n++ {
		for D := 2; D <= 9; D++ {
			for i := 1; i <= n; i++ {
				closed, err := FeedThroughProb(n, D, i)
				if err != nil {
					t.Fatal(err)
				}
				paper, err := FeedThroughProbPaper(n, D, i)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(closed-paper) > 1e-9 {
					t.Fatalf("n=%d D=%d i=%d: closed %g != paper %g", n, D, i, closed, paper)
				}
			}
		}
	}
}

func TestFeedThroughProbEdges(t *testing.T) {
	// With n=1 no feed-through is possible.
	p, err := FeedThroughProb(1, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("n=1 p = %g", p)
	}
	// D<2 cannot split above/below.
	p, err = FeedThroughProb(5, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("D=1 p = %g", p)
	}
	// Row out of range.
	if _, err := FeedThroughProb(5, 3, 0); err == nil {
		t.Error("row 0 accepted")
	}
	if _, err := FeedThroughProb(5, 3, 6); err == nil {
		t.Error("row n+1 accepted")
	}
	if _, err := FeedThroughProbPaper(5, 3, 0); err == nil {
		t.Error("paper form: row 0 accepted")
	}
}

func TestFeedThroughMonotonicInD(t *testing.T) {
	// More components can only make an above/below split likelier.
	for n := 3; n <= 9; n++ {
		i := CentralRow(n)
		prev := -1.0
		for D := 2; D <= 30; D++ {
			p, err := FeedThroughProb(n, D, i)
			if err != nil {
				t.Fatal(err)
			}
			if p < prev-1e-12 {
				t.Fatalf("n=%d: P decreased from %g to %g at D=%d", n, prev, p, D)
			}
			prev = p
		}
	}
}

func TestCentralRowTheorem(t *testing.T) {
	// The paper's claim: the central row maximizes the feed-through
	// probability for every D ("regardless of the value of D").
	for n := 2; n <= 15; n++ {
		for D := 2; D <= 10; D++ {
			best, err := ArgmaxFeedThroughRow(n, D)
			if err != nil {
				t.Fatal(err)
			}
			central := CentralRow(n)
			bestP, _ := FeedThroughProb(n, D, best)
			centralP, _ := FeedThroughProb(n, D, central)
			if math.Abs(bestP-centralP) > 1e-12 {
				t.Errorf("n=%d D=%d: argmax row %d (P=%g) beats central %d (P=%g)",
					n, D, best, bestP, central, centralP)
			}
		}
	}
}

func TestCentralRowIndex(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 9: 5, 10: 5}
	for n, want := range cases {
		if got := CentralRow(n); got != want {
			t.Errorf("CentralRow(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCentralFeedThroughProbEq9(t *testing.T) {
	// Eq. 9 closed form: (n−1)²/(2n²).
	p, err := CentralFeedThroughProb(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-4.0/18.0) > 1e-12 {
		t.Fatalf("n=3: p = %g, want 2/9", p)
	}
	// Must equal the general formula at D=2, i=central, for odd n
	// (the two-component model the paper derives it from).
	for _, n := range []int{3, 5, 7, 9, 21, 101} {
		eq9, _ := CentralFeedThroughProb(n)
		gen, _ := FeedThroughProb(n, 2, CentralRow(n))
		if math.Abs(eq9-gen) > 1e-12 {
			t.Errorf("n=%d: Eq.9 %g != general %g", n, eq9, gen)
		}
	}
	if _, err := CentralFeedThroughProb(0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestEq9Limit(t *testing.T) {
	// P → 0.5 as n → ∞ (the paper's P_max-feed-th).
	p6, _ := CentralFeedThroughProb(1_000_000)
	if math.Abs(p6-0.5) > 1e-5 {
		t.Fatalf("limit: p(1e6) = %g", p6)
	}
	// And monotone increasing in n.
	prev := -1.0
	for n := 1; n < 200; n++ {
		p, _ := CentralFeedThroughProb(n)
		if p < prev {
			t.Fatalf("Eq.9 not monotone at n=%d", n)
		}
		prev = p
	}
}

func TestFeedThroughCountDist(t *testing.T) {
	dist, err := FeedThroughCountDist(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for m := range want {
		if math.Abs(dist[m]-want[m]) > 1e-12 {
			t.Fatalf("P(M=%d) = %g, want %g", m, dist[m], want[m])
		}
	}
	// Degenerate p values.
	d0, _ := FeedThroughCountDist(3, 0)
	if d0[0] != 1 || d0[1] != 0 {
		t.Fatalf("p=0 dist = %v", d0)
	}
	d1, _ := FeedThroughCountDist(3, 1)
	if d1[3] != 1 || d1[0] != 0 {
		t.Fatalf("p=1 dist = %v", d1)
	}
	// Errors.
	if _, err := FeedThroughCountDist(-1, 0.5); err == nil {
		t.Error("H=-1 accepted")
	}
	if _, err := FeedThroughCountDist(3, 1.5); err == nil {
		t.Error("p=1.5 accepted")
	}
}

func TestExpectedFeedThroughsEqualsHp(t *testing.T) {
	// E(M) from the Eq. 11 sum must equal H·p (binomial mean).
	f := func(hh uint8, pp uint16) bool {
		H := int(hh % 200)
		p := float64(pp%1000) / 1000
		e, err := ExpectedFeedThroughs(H, p)
		if err != nil {
			return false
		}
		return math.Abs(e-float64(H)*p) < 1e-6*math.Max(1, float64(H))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFeedThroughsCeil(t *testing.T) {
	// H=10, p=2/9 (n=3): E = 20/9 ≈ 2.22 -> 3.
	p, _ := CentralFeedThroughProb(3)
	m, err := FeedThroughsCeil(10, p)
	if err != nil {
		t.Fatal(err)
	}
	if m != 3 {
		t.Fatalf("E(M) ceil = %d, want 3", m)
	}
	// Integral expectation must not round an extra step.
	m, err = FeedThroughsCeil(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 {
		t.Fatalf("E(M)=2 rounded to %d", m)
	}
	if _, err := FeedThroughsCeil(-2, 0.5); err == nil {
		t.Error("H=-2 accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
