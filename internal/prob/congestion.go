package prob

import (
	"fmt"
	"math"
)

// This file extends the §4.1 machinery from single expectations to the
// primitives a congestion analysis needs: where a net's demand lands,
// not just how much of it there is.  Two placement-marginal
// probabilities (row occupancy and boundary crossing) and a
// distribution convolution turn the Eq. 2–3 / Eq. 10 expectation math
// into full per-channel demand distributions (see internal/congest).

// RowOccupancyProb returns the probability that one fixed row receives
// at least one of a net's D components under the paper's
// uniform-placement model over n rows:
//
//	P(occupied) = 1 − ((n−1)/n)ᵏ,   k = min(n, D),
//
// with the same exponent cap Eq. 2 applies.  Summed over the n rows
// this equals Eq. 3's expected row span E(i) exactly (linearity of
// expectation over row-occupancy indicators); the property tests pin
// that identity against the Eq. 2 recurrence.
func RowOccupancyProb(n, D int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("prob: RowOccupancyProb needs n ≥ 1, got %d", n)
	}
	if D < 1 {
		return 0, fmt.Errorf("prob: RowOccupancyProb needs D ≥ 1, got %d", D)
	}
	return 1 - math.Pow(float64(n-1)/float64(n), float64(capExp(n, D))), nil
}

// capExp is Eq. 2's exponent cap k = min(n, D): beyond n components
// the paper's scatter model saturates.
func capExp(n, D int) int {
	if D < n {
		return D
	}
	return n
}

// CrossingProb returns the probability that a net of D components
// crosses the channel boundary with c rows above it (c in 1..n−1):
// at least one component in the top c rows and at least one in the
// bottom n−c rows,
//
//	P(cross c) = 1 − (c/n)ᵏ − ((n−c)/n)ᵏ,   k = min(n, D),
//
// the two-sided analogue of the Eq. 5 feed-through event, with Eq. 2's
// exponent cap.  For n = 1 there are no interior boundaries and every
// c is rejected.
func CrossingProb(n, D, c int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("prob: CrossingProb needs n ≥ 1, got %d", n)
	}
	if D < 1 {
		return 0, fmt.Errorf("prob: CrossingProb needs D ≥ 1, got %d", D)
	}
	if c < 1 || c > n-1 {
		return 0, fmt.Errorf("prob: boundary %d outside 1..%d", c, n-1)
	}
	fn, k := float64(n), float64(capExp(n, D))
	p := 1 - math.Pow(float64(c)/fn, k) - math.Pow(float64(n-c)/fn, k)
	if p < 0 {
		p = 0 // cancellation residue for D = 1
	}
	return p, nil
}

// SingleRowProb returns the probability that all D components of a net
// land in one fixed row: (1/n)ᵏ with k = min(n, D).  Such a net is
// still wired through the adjacent channel ("even when all
// Standard-Cells attached to a net are placed in one row, they are
// usually wired through a routing channel"), so it contributes channel
// demand without crossing any boundary.
func SingleRowProb(n, D int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("prob: SingleRowProb needs n ≥ 1, got %d", n)
	}
	if D < 1 {
		return 0, fmt.Errorf("prob: SingleRowProb needs D ≥ 1, got %d", D)
	}
	return math.Pow(1/float64(n), float64(capExp(n, D))), nil
}

// convolveTailEps is the probability mass below which trailing
// distribution entries are trimmed after a convolution.  Trimming
// keeps Poisson-binomial convolutions over many net classes from
// growing past the support that carries any usable mass.
const convolveTailEps = 1e-15

// Convolve returns the distribution of X+Y for independent X ~ a and
// Y ~ b (index = value, starting at 0).  Either operand may be nil or
// empty, meaning the point mass at 0.  Trailing entries whose total
// mass is below 1e-15 are trimmed.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 {
		a = []float64{1}
	}
	if len(b) == 0 {
		b = []float64{1}
	}
	out := make([]float64, len(a)+len(b)-1)
	for i, pa := range a {
		if pa == 0 {
			continue
		}
		for j, pb := range b {
			out[i+j] += pa * pb
		}
	}
	return trimTail(out)
}

// trimTail drops trailing entries carrying negligible total mass,
// always keeping index 0.
func trimTail(dist []float64) []float64 {
	tail := 0.0
	end := len(dist)
	for end > 1 {
		if tail+dist[end-1] > convolveTailEps {
			break
		}
		tail += dist[end-1]
		end--
	}
	return dist[:end]
}

// TailProb returns P(X > k) for X ~ dist (index = value).  Negative k
// returns 1; k beyond the support returns 0.  The sum runs from the
// high end so the many tiny tail terms accumulate before the large
// ones subtract — the result is clamped to [0,1] regardless.
func TailProb(dist []float64, k int) float64 {
	if k < 0 {
		return 1
	}
	p := 0.0
	for i := len(dist) - 1; i > k; i-- {
		p += dist[i]
	}
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// DistMean returns Σ i·dist[i], the expectation of a distribution over
// 0..len−1.
func DistMean(dist []float64) float64 {
	e := 0.0
	for i, p := range dist {
		e += float64(i) * p
	}
	return e
}
