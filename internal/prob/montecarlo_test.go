package prob

import (
	"math"
	"math/rand"
	"testing"
)

const mcTrials = 200_000

// mcTol returns a ~5σ binomial-proportion tolerance for the trial
// count, so the comparisons are tight but not flaky.
func mcTol(p float64) float64 {
	return 5*math.Sqrt(p*(1-p)/float64(mcTrials)) + 1e-4
}

func TestSimulateRowSpanMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ n, D int }{{2, 2}, {3, 2}, {4, 5}, {6, 3}, {8, 8}, {5, 12}} {
		analytic, err := ExpectedRowSpan(c.n, c.D)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := SimulateRowSpan(rng, c.n, c.D, mcTrials)
		if err != nil {
			t.Fatal(err)
		}
		// Span variance is below n²/4; allow 5σ of a conservative
		// bound.
		tol := 5 * float64(c.n) / 2 / math.Sqrt(mcTrials)
		if math.Abs(sim-analytic) > tol {
			t.Errorf("n=%d D=%d: sim %g vs analytic %g (tol %g)", c.n, c.D, sim, analytic, tol)
		}
	}
}

func TestPaperTruncationUnderestimatesSpan(t *testing.T) {
	// For D > n the paper's k = min(n, D) truncation underestimates
	// the true expected occupancy n(1 − (1−1/n)^D).  Quantify it so
	// the heuristic's bias is on record.
	rng := rand.New(rand.NewSource(3))
	for _, c := range []struct{ n, D int }{{4, 5}, {5, 12}, {3, 9}} {
		paperE, err := ExpectedRowSpan(c.n, c.D)
		if err != nil {
			t.Fatal(err)
		}
		trueE, err := SimulateRowSpanExact(rng, c.n, c.D, mcTrials)
		if err != nil {
			t.Fatal(err)
		}
		if paperE >= trueE {
			t.Errorf("n=%d D=%d: paper model E=%g should underestimate true E=%g",
				c.n, c.D, paperE, trueE)
		}
		exact := float64(c.n) * (1 - math.Pow(1-1/float64(c.n), float64(c.D)))
		tol := 5 * float64(c.n) / 2 / math.Sqrt(mcTrials)
		if math.Abs(trueE-exact) > tol {
			t.Errorf("n=%d D=%d: simulated true E=%g vs occupancy formula %g",
				c.n, c.D, trueE, exact)
		}
	}
}

func TestSimulateRowSpanDistMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []struct{ n, D int }{{3, 2}, {4, 4}, {5, 3}} {
		analytic, err := RowSpanDist(c.n, c.D)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := SimulateRowSpanDist(rng, c.n, c.D, mcTrials)
		if err != nil {
			t.Fatal(err)
		}
		if len(sim) != len(analytic) {
			t.Fatalf("n=%d D=%d: length mismatch %d vs %d", c.n, c.D, len(sim), len(analytic))
		}
		for i := range sim {
			if math.Abs(sim[i]-analytic[i]) > mcTol(analytic[i]) {
				t.Errorf("n=%d D=%d i=%d: sim %g vs analytic %g", c.n, c.D, i+1, sim[i], analytic[i])
			}
		}
	}
}

func TestSimulateFeedThroughMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, c := range []struct{ n, D, i int }{
		{3, 2, 2}, {5, 2, 3}, {5, 4, 3}, {5, 4, 1}, {7, 3, 4}, {9, 6, 2},
	} {
		analytic, err := FeedThroughProb(c.n, c.D, c.i)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := SimulateFeedThrough(rng, c.n, c.D, c.i, mcTrials)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sim-analytic) > mcTol(analytic) {
			t.Errorf("n=%d D=%d i=%d: sim %g vs analytic %g", c.n, c.D, c.i, sim, analytic)
		}
	}
}

func TestSimulateCentralRowClaim(t *testing.T) {
	// Simulated replication of the paper's numerical experiment: the
	// central row collects the most feed-throughs.
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{3, 5, 7} {
		for _, D := range []int{2, 4} {
			bestRow, bestP := 0, -1.0
			for i := 1; i <= n; i++ {
				p, err := SimulateFeedThrough(rng, n, D, i, mcTrials/4)
				if err != nil {
					t.Fatal(err)
				}
				if p > bestP {
					bestRow, bestP = i, p
				}
			}
			if bestRow != CentralRow(n) {
				t.Errorf("n=%d D=%d: simulated argmax row %d, want central %d",
					n, D, bestRow, CentralRow(n))
			}
		}
	}
}

func TestArgmaxFeedThroughRow(t *testing.T) {
	row, err := ArgmaxFeedThroughRow(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if row != 5 {
		t.Fatalf("argmax = %d, want 5", row)
	}
	if _, err := ArgmaxFeedThroughRow(0, 3); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestSimulatorInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := SimulateRowSpan(rng, 0, 2, 10); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := SimulateRowSpan(rng, 2, 2, 0); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := SimulateFeedThrough(rng, 3, 0, 2, 10); err == nil {
		t.Error("D=0 accepted")
	}
	if _, err := SimulateFeedThrough(rng, 3, 2, 9, 10); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := SimulateFeedThrough(rng, 3, 2, 2, 0); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := SimulateRowSpanDist(rng, 0, 2, 10); err == nil {
		t.Error("dist n=0 accepted")
	}
	if _, err := SimulateRowSpanDist(rng, 2, 2, 0); err == nil {
		t.Error("dist trials=0 accepted")
	}
}
