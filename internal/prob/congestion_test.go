package prob

import (
	"math"
	"testing"
)

// The occupancy identity: summing the row-occupancy probability over
// the n rows must reproduce Eq. 3's expected row span from the Eq. 2
// recurrence, for every (n, D) — linearity of expectation over
// occupancy indicators.
func TestRowOccupancyMatchesExpectedRowSpan(t *testing.T) {
	for n := 1; n <= 12; n++ {
		for _, D := range []int{1, 2, 3, 5, 8, 13, 40, 200} {
			occ, err := RowOccupancyProb(n, D)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ExpectedRowSpan(n, D)
			if err != nil {
				t.Fatal(err)
			}
			got := float64(n) * occ
			if math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Errorf("n=%d D=%d: n·P(occupied) = %g, E(i) = %g", n, D, got, want)
			}
		}
	}
}

func TestCrossingProb(t *testing.T) {
	// Symmetry: crossing with c rows above equals crossing with c
	// rows below.
	for n := 2; n <= 10; n++ {
		for D := 1; D <= 20; D++ {
			for c := 1; c < n; c++ {
				p, err := CrossingProb(n, D, c)
				if err != nil {
					t.Fatal(err)
				}
				q, err := CrossingProb(n, D, n-c)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(p-q) > 1e-12 {
					t.Fatalf("n=%d D=%d: cross(%d)=%g != cross(%d)=%g", n, D, c, p, n-c, q)
				}
				if p < 0 || p > 1 {
					t.Fatalf("n=%d D=%d c=%d: probability %g outside [0,1]", n, D, c, p)
				}
			}
		}
	}
	// A one-component net crosses nothing.
	if p, err := CrossingProb(5, 1, 2); err != nil || p != 0 {
		t.Fatalf("CrossingProb(5,1,2) = %g, %v; want 0, nil", p, err)
	}
	// n = 1 has no interior boundary at all.
	if _, err := CrossingProb(1, 3, 1); err == nil {
		t.Fatal("CrossingProb(1,3,1) accepted a boundary that does not exist")
	}
	// Two components over two rows land on opposite sides half the
	// time: 1 − 2·(1/2)² = 1/2.
	p, err := CrossingProb(2, 2, 1)
	if err != nil || math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("CrossingProb(2,2,1) = %g, %v; want 0.5", p, err)
	}
}

func TestSingleRowProb(t *testing.T) {
	p, err := SingleRowProb(4, 3)
	if err != nil || math.Abs(p-1.0/64) > 1e-15 {
		t.Fatalf("SingleRowProb(4,3) = %g, %v; want 1/64", p, err)
	}
	// With one row everything is single-row.
	p, err = SingleRowProb(1, 7)
	if err != nil || p != 1 {
		t.Fatalf("SingleRowProb(1,7) = %g, %v; want 1", p, err)
	}
}

// Convolving two binomials with the same success probability must give
// the binomial over the summed trial count.
func TestConvolveBinomialIdentity(t *testing.T) {
	const p = 0.37
	a, err := FeedThroughCountDist(5, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FeedThroughCountDist(8, p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FeedThroughCountDist(13, p)
	if err != nil {
		t.Fatal(err)
	}
	got := Convolve(a, b)
	if len(got) != len(want) {
		t.Fatalf("convolution support %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("P(%d) = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestConvolveEmptyIsPointMass(t *testing.T) {
	d := []float64{0.25, 0.75}
	for _, got := range [][]float64{Convolve(nil, d), Convolve(d, nil)} {
		if len(got) != 2 || got[0] != 0.25 || got[1] != 0.75 {
			t.Fatalf("convolution with point mass changed the distribution: %v", got)
		}
	}
}

func TestTailProb(t *testing.T) {
	dist := []float64{0.5, 0.3, 0.2}
	cases := []struct {
		k    int
		want float64
	}{{-1, 1}, {0, 0.5}, {1, 0.2}, {2, 0}, {10, 0}}
	for _, c := range cases {
		if got := TailProb(dist, c.k); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("TailProb(%d) = %g, want %g", c.k, got, c.want)
		}
	}
}

func TestDistMean(t *testing.T) {
	if got := DistMean([]float64{0.5, 0.3, 0.2}); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("DistMean = %g, want 0.7", got)
	}
}

// Satellite regression: the Eq. 2–3 machinery and the new marginals
// must stay well-defined (no NaN, no panic, normalized) for the
// degenerate corners a congestion caller can feed them — a single row
// (no channels between rows) and D far beyond the row count.
func TestDegenerateInputsStayFinite(t *testing.T) {
	cases := []struct{ n, D int }{
		{1, 1}, {1, 2}, {1, 1000},
		{3, 10000}, {7, 99999},
		{200, 12345},
	}
	for _, c := range cases {
		dist, err := RowSpanDist(c.n, c.D)
		if err != nil {
			t.Fatalf("RowSpanDist(%d,%d): %v", c.n, c.D, err)
		}
		sum := 0.0
		for i, p := range dist {
			if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1+1e-9 {
				t.Fatalf("RowSpanDist(%d,%d)[%d] = %g", c.n, c.D, i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("RowSpanDist(%d,%d) sums to %g", c.n, c.D, sum)
		}
		e, err := ExpectedRowSpan(c.n, c.D)
		if err != nil || math.IsNaN(e) || e < 1-1e-9 || e > float64(c.n)+1e-9 {
			t.Errorf("ExpectedRowSpan(%d,%d) = %g, %v", c.n, c.D, e, err)
		}
		occ, err := RowOccupancyProb(c.n, c.D)
		if err != nil || math.IsNaN(occ) || occ < 0 || occ > 1 {
			t.Errorf("RowOccupancyProb(%d,%d) = %g, %v", c.n, c.D, occ, err)
		}
	}
	// A single row admits no feed-throughs: the Eq. 5 closed form must
	// return exactly zero, not NaN.
	for _, D := range []int{2, 3, 50} {
		p, err := FeedThroughProb(1, D, 1)
		if err != nil || p != 0 {
			t.Errorf("FeedThroughProb(1,%d,1) = %g, %v; want 0", D, p, err)
		}
	}
}
