package prob

import (
	"math"
	"math/rand"
	"testing"
)

func TestRowSpanVarianceKnown(t *testing.T) {
	// n=2, D=2: i ∈ {1,2} each with p=1/2 -> Var = 1/4.
	v, err := RowSpanVariance(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.25) > 1e-12 {
		t.Fatalf("Var = %g, want 0.25", v)
	}
	// D=1: deterministic, Var = 0.
	v, err = RowSpanVariance(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("Var(D=1) = %g", v)
	}
	if _, err := RowSpanVariance(0, 2); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestRowSpanVarianceMatchesMC(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, c := range []struct{ n, d int }{{3, 2}, {5, 4}, {8, 6}} {
		analytic, err := RowSpanVariance(c.n, c.d)
		if err != nil {
			t.Fatal(err)
		}
		// MC variance.
		const trials = 100_000
		occupied := make([]bool, c.n)
		var sum, sum2 float64
		for i := 0; i < trials; i++ {
			for r := range occupied {
				occupied[r] = false
			}
			span := 0
			for k := 0; k < c.d; k++ {
				r := rng.Intn(c.n)
				if !occupied[r] {
					occupied[r] = true
					span++
				}
			}
			sum += float64(span)
			sum2 += float64(span) * float64(span)
		}
		mc := sum2/trials - (sum/trials)*(sum/trials)
		if math.Abs(mc-analytic) > 0.05*math.Max(analytic, 0.1)+0.01 {
			t.Errorf("n=%d D=%d: MC var %g vs analytic %g", c.n, c.d, mc, analytic)
		}
	}
}

func TestFeedThroughCountVariance(t *testing.T) {
	v, err := FeedThroughCountVariance(100, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-21) > 1e-12 {
		t.Fatalf("Var = %g, want 21", v)
	}
	if _, err := FeedThroughCountVariance(-1, 0.3); err == nil {
		t.Error("H=-1 accepted")
	}
	if _, err := FeedThroughCountVariance(5, 2); err == nil {
		t.Error("p=2 accepted")
	}
}

func TestTrackInterval(t *testing.T) {
	deg := map[int]int{2: 10, 4: 5}
	mean, lo, hi, err := TrackInterval(4, deg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo <= mean && mean <= hi) {
		t.Fatalf("interval ordering broken: %g %g %g", lo, mean, hi)
	}
	// Mean matches the direct sum.
	e2, _ := ExpectedRowSpan(4, 2)
	e4, _ := ExpectedRowSpan(4, 4)
	want := 10*e2 + 5*e4
	if math.Abs(mean-want) > 1e-12 {
		t.Fatalf("mean = %g, want %g", mean, want)
	}
	// z=0 collapses the interval.
	m0, lo0, hi0, err := TrackInterval(4, deg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lo0 != m0 || hi0 != m0 {
		t.Fatal("z=0 interval not degenerate")
	}
	// Errors.
	if _, _, _, err := TrackInterval(4, deg, -1); err == nil {
		t.Error("negative z accepted")
	}
	if _, _, _, err := TrackInterval(0, deg, 1); err == nil {
		t.Error("n=0 accepted")
	}
	// Clamping at zero.
	_, loC, _, err := TrackInterval(2, map[int]int{2: 1}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if loC < 0 {
		t.Fatal("lower bound not clamped")
	}
}
