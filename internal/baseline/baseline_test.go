package baseline

import (
	"math"
	"math/rand"
	"testing"

	"maest/internal/gen"
	"maest/internal/netlist"
	"maest/internal/tech"
)

func stats(t testing.TB, gates int, seed int64) (*netlist.Circuit, *netlist.Stats) {
	t.Helper()
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "b", Gates: gates, Inputs: 5, Outputs: 4, Seed: seed,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := netlist.Gather(c, p)
	if err != nil {
		t.Fatal(err)
	}
	return c, s
}

func TestNaive(t *testing.T) {
	_, s := stats(t, 30, 1)
	a, err := Naive(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != 2*float64(s.ExactDeviceArea) {
		t.Fatalf("naive = %g", a)
	}
	if _, err := Naive(s, 0); err == nil {
		t.Error("factor 0 accepted")
	}
	var empty netlist.Stats
	if _, err := Naive(&empty, 2); err == nil {
		t.Error("empty stats accepted")
	}
}

func TestPLESTCalibrationAndEstimate(t *testing.T) {
	p := tech.NMOS25()
	train, trainStats := stats(t, 50, 2)
	_ = trainStats
	model, err := CalibratePLEST([]*netlist.Circuit{train}, p, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if model.Density <= 0 {
		t.Fatalf("density = %g", model.Density)
	}
	_, s := stats(t, 60, 3)
	est, err := model.Estimate(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est <= float64(s.ExactDeviceArea) {
		t.Fatalf("PLEST estimate %g below active area %d", est, s.ExactDeviceArea)
	}
	// Errors.
	if _, err := CalibratePLEST(nil, p, 3, 1); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := CalibratePLEST([]*netlist.Circuit{train}, p, 0, 1); err == nil {
		t.Error("rows=0 accepted")
	}
	if _, err := model.Estimate(s, 0); err == nil {
		t.Error("estimate rows=0 accepted")
	}
	var empty netlist.Stats
	if _, err := model.Estimate(&empty, 2); err == nil {
		t.Error("empty stats accepted")
	}
}

func TestPLAModel(t *testing.T) {
	p := tech.NMOS25()
	q := PLA{Inputs: 4, Outputs: 3, Terms: 10}
	a, err := q.Area(p)
	if err != nil {
		t.Fatal(err)
	}
	// width = (2*4+3)*7 + 80 = 157; height = 10*7 + 80 = 150.
	if math.Abs(a-157*150) > 1e-9 {
		t.Fatalf("area = %g, want %d", a, 157*150)
	}
	if q.Functions() != 7 {
		t.Fatalf("functions = %d", q.Functions())
	}
	if q.Devices() <= 0 {
		t.Fatal("device model empty")
	}
	if _, err := (PLA{Inputs: 0, Outputs: 1, Terms: 1}).Area(p); err == nil {
		t.Error("degenerate PLA accepted")
	}
}

func TestGerveshiLinearity(t *testing.T) {
	// Reproduce the Gerveshi observation: PLA area is (nearly)
	// linear in (#functions, #devices).  Fit the model on random PLA
	// shapes and require a high R².
	p := tech.NMOS25()
	rng := rand.New(rand.NewSource(4))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 120; i++ {
		q := PLA{
			Inputs:  2 + rng.Intn(12),
			Outputs: 1 + rng.Intn(8),
			Terms:   4 + rng.Intn(40),
		}
		a, err := q.Area(p)
		if err != nil {
			t.Fatal(err)
		}
		xs = append(xs, []float64{float64(q.Functions()), float64(q.Devices())})
		ys = append(ys, a)
	}
	coeffs, r2, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if len(coeffs) != 3 {
		t.Fatalf("coeffs = %v", coeffs)
	}
	if r2 < 0.85 {
		t.Fatalf("PLA area not linear enough: R² = %g", r2)
	}
}

func TestFitLinearExact(t *testing.T) {
	// y = 3 + 2x₁ − x₂ recovered exactly.
	xs := [][]float64{{0, 0}, {1, 0}, {0, 1}, {2, 3}, {5, 1}, {4, 4}}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x[0] - x[1]
	}
	coeffs, r2, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1}
	for i := range want {
		if math.Abs(coeffs[i]-want[i]) > 1e-9 {
			t.Fatalf("coeffs = %v, want %v", coeffs, want)
		}
	}
	if math.Abs(r2-1) > 1e-12 {
		t.Fatalf("R² = %g", r2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, _, err := FitLinear(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, _, err := FitLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := FitLinear([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, _, err := FitLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined fit accepted")
	}
	// Collinear regressors -> singular.
	xs := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	ys := []float64{1, 2, 3, 4}
	if _, _, err := FitLinear(xs, ys); err == nil {
		t.Error("singular system accepted")
	}
}

func TestFitLinearConstantTarget(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}}
	ys := []float64{5, 5, 5}
	coeffs, r2, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coeffs[0]-5) > 1e-9 || math.Abs(coeffs[1]) > 1e-9 {
		t.Fatalf("coeffs = %v", coeffs)
	}
	if r2 != 1 {
		t.Fatalf("R² = %g for perfect constant fit", r2)
	}
}
