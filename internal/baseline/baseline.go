// Package baseline implements the comparators the paper positions
// itself against (§2):
//
//   - a naive active-area×factor rule of thumb (the "experienced
//     designer" guess the estimator is meant to replace),
//   - a PLEST-style estimator [Kurdahi & Parker] that predicts
//     standard-cell area from the local wiring density — which is only
//     measurable after physical layout, the circular dependency the
//     paper criticizes; we calibrate it from our own layout engine,
//   - the Gerveshi PLA observation [ref. 1] that PLA module area is
//     linear in the number of basic logic functions and devices,
//     reproduced with a gridded PLA area model plus a least-squares
//     fit.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"maest/internal/layout"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// ErrBaseline wraps baseline estimation failures.
var ErrBaseline = errors.New("baseline: estimation failed")

// Naive returns the rule-of-thumb estimate: active device area
// multiplied by a routing factor (factor 2 is the folklore "routing
// doubles the area").
func Naive(s *netlist.Stats, factor float64) (float64, error) {
	if factor <= 0 {
		return 0, fmt.Errorf("%w: factor %g must be positive", ErrBaseline, factor)
	}
	if s.N == 0 {
		return 0, fmt.Errorf("%w: no devices", ErrBaseline)
	}
	return float64(s.ExactDeviceArea) * factor, nil
}

// PLESTModel is a density-calibrated standard-cell area model: it
// assumes every routing channel carries Density tracks on average.
type PLESTModel struct {
	Proc *tech.Process
	// Density is the average per-channel track count per routable
	// net, measured from finished layouts.
	Density float64
}

// CalibratePLEST measures the average channel density from real
// layouts of the given training circuits — the step that requires
// finished physical layout and makes this class of estimator unusable
// at floor-planning time (the paper's point).
func CalibratePLEST(train []*netlist.Circuit, p *tech.Process, rows int, seed int64) (*PLESTModel, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("%w: PLEST calibration needs training circuits", ErrBaseline)
	}
	if rows < 1 {
		return nil, fmt.Errorf("%w: rows %d < 1", ErrBaseline, rows)
	}
	totTracksPerNet := 0.0
	for _, c := range train {
		m, err := layout.LayoutStandardCell(c, p, rows, seed)
		if err != nil {
			return nil, fmt.Errorf("%w: calibrating on %q: %v", ErrBaseline, c.Name, err)
		}
		s, err := netlist.Gather(c, p)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBaseline, err)
		}
		if s.H == 0 {
			continue
		}
		tracks := 0
		for _, t := range m.ChannelTracks {
			tracks += t
		}
		totTracksPerNet += float64(tracks) / float64(s.H)
	}
	return &PLESTModel{Proc: p, Density: totTracksPerNet / float64(len(train))}, nil
}

// Estimate predicts the standard-cell module area for the given row
// count: cell rows plus channels of Density·H tracks spread over the
// n+1 channels.
func (m *PLESTModel) Estimate(s *netlist.Stats, rows int) (float64, error) {
	if rows < 1 {
		return 0, fmt.Errorf("%w: rows %d < 1", ErrBaseline, rows)
	}
	if s.N == 0 {
		return 0, fmt.Errorf("%w: no devices", ErrBaseline)
	}
	width := s.AvgWidth() * float64(s.N) / float64(rows)
	tracks := m.Density * float64(s.H)
	height := float64(rows)*float64(m.Proc.RowHeight) + tracks*float64(m.Proc.TrackPitch)
	return width * height, nil
}

// PLA models a programmable logic array for the Gerveshi linear-area
// observation: Inputs and Outputs are the basic logic function
// counts, Terms the product-term rows.
type PLA struct {
	Inputs, Outputs, Terms int
}

// Devices returns the device count of the PLA personality matrix
// model: every input appears true and complemented in the AND plane,
// every output column in the OR plane, at ~50% programmed density,
// plus one driver per input and output.
func (q PLA) Devices() int {
	andPlane := 2 * q.Inputs * q.Terms
	orPlane := q.Outputs * q.Terms
	return (andPlane+orPlane)/2 + q.Inputs + q.Outputs
}

// Functions returns the number of basic logic functions (Gerveshi's
// first regressor): the implemented input and output columns.
func (q PLA) Functions() int { return q.Inputs + q.Outputs }

// Area returns the gridded PLA area in λ² under the given process:
// column pitch per input pair and output, row pitch per product term,
// plus fixed driver overhead bands.
func (q PLA) Area(p *tech.Process) (float64, error) {
	if q.Inputs < 1 || q.Outputs < 1 || q.Terms < 1 {
		return 0, fmt.Errorf("%w: PLA needs positive inputs/outputs/terms, got %+v", ErrBaseline, q)
	}
	colPitch := float64(p.TrackPitch)
	rowPitch := float64(p.TrackPitch)
	width := float64(2*q.Inputs+q.Outputs)*colPitch + 2*float64(p.RowHeight)
	height := float64(q.Terms)*rowPitch + 2*float64(p.RowHeight)
	return width * height, nil
}

// FitLinear fits y ≈ β₀ + Σ βᵢ·xᵢ by ordinary least squares (normal
// equations, Gaussian elimination with partial pivoting) and returns
// the coefficients (β₀ first) and the R² of the fit.
func FitLinear(xs [][]float64, ys []float64) (coeffs []float64, r2 float64, err error) {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return nil, 0, fmt.Errorf("%w: need matching non-empty samples, got %d/%d", ErrBaseline, n, len(ys))
	}
	k := len(xs[0])
	for _, row := range xs {
		if len(row) != k {
			return nil, 0, fmt.Errorf("%w: ragged design matrix", ErrBaseline)
		}
	}
	dim := k + 1
	if n < dim {
		return nil, 0, fmt.Errorf("%w: %d samples cannot identify %d coefficients", ErrBaseline, n, dim)
	}
	// Build normal equations AᵀA β = Aᵀy with an intercept column.
	ata := make([][]float64, dim)
	for i := range ata {
		ata[i] = make([]float64, dim+1)
	}
	row := make([]float64, dim)
	for s := 0; s < n; s++ {
		row[0] = 1
		copy(row[1:], xs[s])
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				ata[i][j] += row[i] * row[j]
			}
			ata[i][dim] += row[i] * ys[s]
		}
	}
	coeffs, err = solve(ata)
	if err != nil {
		return nil, 0, err
	}
	// R².
	meanY := 0.0
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(n)
	ssRes, ssTot := 0.0, 0.0
	for s := 0; s < n; s++ {
		pred := coeffs[0]
		for i, x := range xs[s] {
			pred += coeffs[i+1] * x
		}
		ssRes += (ys[s] - pred) * (ys[s] - pred)
		ssTot += (ys[s] - meanY) * (ys[s] - meanY)
	}
	if ssTot == 0 {
		r2 = 1
	} else {
		r2 = 1 - ssRes/ssTot
	}
	return coeffs, r2, nil
}

// solve performs in-place Gaussian elimination on the augmented
// matrix and returns the solution vector.
func solve(m [][]float64) ([]float64, error) {
	dim := len(m)
	for col := 0; col < dim; col++ {
		pivot := col
		for r := col + 1; r < dim; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("%w: singular normal equations (collinear regressors)", ErrBaseline)
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < dim; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= dim; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, dim)
	for i := range out {
		out[i] = m[i][dim] / m[i][i]
	}
	return out, nil
}
