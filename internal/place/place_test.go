package place

import (
	"fmt"
	"testing"

	"maest/internal/gen"
	"maest/internal/geom"
	"maest/internal/netlist"
	"maest/internal/tech"
)

func circuit(t testing.TB, gates int, seed int64) *netlist.Circuit {
	t.Helper()
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: fmt.Sprintf("c%d", gates), Gates: gates, Inputs: 5, Outputs: 4, Seed: seed,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPlaceLegal(t *testing.T) {
	p := tech.NMOS25()
	c := circuit(t, 60, 1)
	for _, rows := range []int{1, 2, 3, 5} {
		pl, err := Place(c, p, Options{Rows: rows, Seed: 42})
		if err != nil {
			t.Fatalf("rows=%d: %v", rows, err)
		}
		if err := pl.Check(); err != nil {
			t.Fatalf("rows=%d: %v", rows, err)
		}
		if len(pl.Rows) != rows {
			t.Fatalf("rows=%d: got %d", rows, len(pl.Rows))
		}
	}
}

func TestPlaceDeterministic(t *testing.T) {
	p := tech.NMOS25()
	c := circuit(t, 40, 2)
	a, err := Place(c, p, Options{Rows: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(c, p, Options{Rows: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.WireLength() != b.WireLength() {
		t.Fatal("same seed produced different placements")
	}
	for d := range a.RowOf {
		if a.RowOf[d] != b.RowOf[d] || a.Slot[d] != b.Slot[d] {
			t.Fatal("same seed produced different device positions")
		}
	}
}

func TestAnnealingImprovesWireLength(t *testing.T) {
	p := tech.NMOS25()
	c := circuit(t, 80, 3)
	// Zero-move placement = initial round-robin deal.
	initial, err := Place(c, p, Options{Rows: 4, Seed: 9, Moves: 1})
	if err != nil {
		t.Fatal(err)
	}
	annealed, err := Place(c, p, Options{Rows: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if annealed.WireLength() >= initial.WireLength() {
		t.Fatalf("annealing did not improve: %d >= %d",
			annealed.WireLength(), initial.WireLength())
	}
}

func TestRowBalance(t *testing.T) {
	p := tech.NMOS25()
	c := circuit(t, 90, 4)
	pl, err := Place(c, p, Options{Rows: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var maxW, minW = pl.RowWidth(0), pl.RowWidth(0)
	for r := 1; r < 3; r++ {
		w := pl.RowWidth(r)
		if w > maxW {
			maxW = w
		}
		if w < minW {
			minW = w
		}
	}
	if minW == 0 {
		t.Fatal("a row ended up empty")
	}
	if float64(maxW) > 1.8*float64(minW) {
		t.Fatalf("rows badly imbalanced: %d vs %d", maxW, minW)
	}
}

func TestPlaceErrors(t *testing.T) {
	p := tech.NMOS25()
	c := circuit(t, 10, 6)
	if _, err := Place(c, p, Options{Rows: 0}); err == nil {
		t.Error("rows=0 accepted")
	}
	// Unknown device type.
	b := netlist.NewBuilder("bad")
	b.AddDevice("g1", "NOPE", "a", "b")
	b.AddDevice("g2", "INV", "b", "a")
	bad, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Place(bad, p, Options{Rows: 2}); err == nil {
		t.Error("unknown device type accepted")
	}
}

func TestSwapAndMovePrimitives(t *testing.T) {
	p := tech.NMOS25()
	c := circuit(t, 12, 8)
	pl, err := Place(c, p, Options{Rows: 3, Seed: 1, Moves: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Check(); err != nil {
		t.Fatal(err)
	}
	pl.swap(0, 5)
	if err := pl.Check(); err != nil {
		t.Fatalf("after swap: %v", err)
	}
	pl.swap(0, 5)
	pl.move(3, 0, 0)
	if err := pl.Check(); err != nil {
		t.Fatalf("after move: %v", err)
	}
	if pl.RowOf[3] != 0 || pl.Slot[3] != 0 {
		t.Fatal("move did not place device at target")
	}
	// Move within the same row.
	r := pl.RowOf[3]
	pl.move(3, r, len(pl.Rows[r]))
	if err := pl.Check(); err != nil {
		t.Fatalf("after same-row move: %v", err)
	}
}

func TestPositionsMatchRowOrder(t *testing.T) {
	p := tech.NMOS25()
	c := circuit(t, 30, 9)
	pl, err := Place(c, p, Options{Rows: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	xs := pl.Positions()
	// Each row's device centres must be strictly increasing and
	// consistent with widths.
	for r, row := range pl.Rows {
		var x int64
		for _, d := range row {
			w := int64(pl.DeviceWidth(d))
			wantCenter := x + w/2
			if int64(xs[d]) != wantCenter {
				t.Fatalf("row %d device %d: centre %d, want %d", r, d, xs[d], wantCenter)
			}
			x += w
		}
	}
}

func TestRowHeightTransistorRows(t *testing.T) {
	// Full-custom reuse: transistor rows take the tallest device.
	p := tech.NMOS25()
	b := netlist.NewBuilder("fc")
	b.AddDevice("m0", "ENH", "a", "", "x") // 8x8
	b.AddDevice("m1", "DEP", "x", "x", "") // 8x10
	b.AddPort("pa", netlist.In, "a")
	b.AddPort("px", netlist.Out, "x")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Place(c, p, Options{Rows: 1, Seed: 3, Moves: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pl.RowHeight(0) != 10 {
		t.Fatalf("row height = %d, want 10 (tallest transistor)", pl.RowHeight(0))
	}
}

func TestAnnealChainQuality(t *testing.T) {
	// A k-inverter chain in one row has a known optimal wire length:
	// consecutive cells adjacent, each 2-pin net spanning one cell
	// pitch (14λ).  The annealer must get within 2x of optimal.
	p := tech.NMOS25()
	c, err := gen.Chain("q", 24, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Place(c, p, Options{Rows: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: 23 internal nets × 14λ span.
	optimal := geom.Lambda(23 * 14)
	if wl := pl.WireLength(); wl > 2*optimal {
		t.Fatalf("annealed chain WL %d > 2× optimal %d", wl, optimal)
	}
}
