// Package place is the standard-cell placement engine that produces
// the "real" layouts the estimator is judged against — our stand-in
// for the TimberWolf 3.2 placements of the paper's Table 2.  Like
// TimberWolf it assigns cells to rows and orders them within rows by
// simulated annealing over half-perimeter wire length, with a penalty
// keeping row lengths balanced.
package place

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"maest/internal/geom"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/tech"
)

// Annealing metrics: iteration throughput, accept ratio, and cost
// improvement are what separate "the schedule converged" from "the
// schedule burned CPU" — the TimberWolf-side half of the paper's
// timing comparison.
var (
	mPlacements     = obs.DefCounter("maest_place_total", "completed placements")
	mPlaceSec       = obs.DefHistogram("maest_place_seconds", "placement latency", obs.DefBuckets)
	mAnnealMoves    = obs.DefCounter("maest_anneal_moves_total", "proposed annealing moves")
	mAnnealAccepted = obs.DefCounter("maest_anneal_accepted_total", "accepted annealing moves")
	mAnnealAccept   = obs.DefHistogram("maest_anneal_accept_ratio", "per-placement accepted/proposed move ratio", obs.RatioBuckets)
	mAnnealImprove  = obs.DefHistogram("maest_anneal_cost_improvement_ratio", "per-placement (initial-final)/initial cost improvement", obs.RatioBuckets)
)

// Options configures Place.
type Options struct {
	// Rows is the number of rows (≥ 1).
	Rows int
	// Seed drives the deterministic annealing RNG.
	Seed int64
	// Moves caps the number of annealing moves; 0 selects an
	// automatic budget proportional to circuit size.
	Moves int
}

// Placement is a legal row assignment and ordering of every device.
type Placement struct {
	Circuit *netlist.Circuit
	Proc    *tech.Process
	// Rows holds the device indices of each row, in left-to-right
	// order.
	Rows [][]int
	// RowOf and Slot locate each device: Rows[RowOf[d]][Slot[d]] == d.
	RowOf, Slot []int
	// widths caches per-device widths; heights per-device heights.
	widths, heights []geom.Lambda
}

// ErrPlace wraps placement failures.
var ErrPlace = errors.New("place: placement failed")

// Place builds a balanced initial placement and improves it with
// simulated annealing.  The result is deterministic for a given
// (circuit, options) pair.
func Place(c *netlist.Circuit, p *tech.Process, opts Options) (*Placement, error) {
	return PlaceCtx(context.Background(), c, p, opts)
}

// PlaceCtx is Place with observability: a "place" span carrying the
// annealing statistics (moves, accept ratio, cost trajectory) plus
// the placement metrics.  Tracing does not perturb the anneal — the
// RNG stream and move sequence are identical with and without a sink.
func PlaceCtx(ctx context.Context, c *netlist.Circuit, p *tech.Process, opts Options) (pl *Placement, err error) {
	_, sp := obs.Start(ctx, "place")
	sp.SetString("module", c.Name)
	defer func(t0 time.Time) {
		mPlaceSec.Observe(time.Since(t0).Seconds())
		if err == nil {
			mPlacements.Inc()
		}
		sp.EndErr(err)
	}(time.Now())
	pl, st, err := place(c, p, opts)
	if err != nil {
		return nil, err
	}
	sp.SetInt("devices", int64(c.NumDevices()))
	sp.SetInt("rows", int64(opts.Rows))
	sp.SetInt("moves", int64(st.proposed))
	sp.SetInt("accepted", int64(st.accepted))
	sp.SetFloat("cost_initial", st.costInitial)
	sp.SetFloat("cost_final", st.costFinal)
	if len(st.trajectory) > 0 {
		sp.SetString("cost_trajectory", formatTrajectory(st.trajectory))
	}
	mAnnealMoves.Add(int64(st.proposed))
	mAnnealAccepted.Add(int64(st.accepted))
	if st.proposed > 0 {
		mAnnealAccept.Observe(float64(st.accepted) / float64(st.proposed))
	}
	if st.costInitial > 0 {
		mAnnealImprove.Observe((st.costInitial - st.costFinal) / st.costInitial)
	}
	return pl, nil
}

// formatTrajectory renders sampled anneal costs as "c0→c1→…" for the
// span attribute.
func formatTrajectory(costs []float64) string {
	var b strings.Builder
	for i, c := range costs {
		if i > 0 {
			b.WriteString("→")
		}
		fmt.Fprintf(&b, "%.0f", c)
	}
	return b.String()
}

func place(c *netlist.Circuit, p *tech.Process, opts Options) (*Placement, annealStats, error) {
	if opts.Rows < 1 {
		return nil, annealStats{}, fmt.Errorf("%w: need ≥ 1 row, got %d", ErrPlace, opts.Rows)
	}
	if c.NumDevices() == 0 {
		return nil, annealStats{}, fmt.Errorf("%w: circuit %q has no devices", ErrPlace, c.Name)
	}
	widths, heights, err := netlist.DeviceDims(c, p)
	if err != nil {
		return nil, annealStats{}, fmt.Errorf("%w: %v", ErrPlace, err)
	}
	pl := &Placement{
		Circuit: c,
		Proc:    p,
		Rows:    make([][]int, opts.Rows),
		RowOf:   make([]int, c.NumDevices()),
		Slot:    make([]int, c.NumDevices()),
		widths:  widths,
		heights: heights,
	}
	// Initial placement: deal devices round-robin into rows in index
	// order, which balances both count and (statistically) width.
	for i := range c.Devices {
		r := i % opts.Rows
		pl.RowOf[i] = r
		pl.Slot[i] = len(pl.Rows[r])
		pl.Rows[r] = append(pl.Rows[r], i)
	}
	st := pl.anneal(opts)
	return pl, st, nil
}

// DeviceWidth returns the cached width of device d.
func (pl *Placement) DeviceWidth(d int) geom.Lambda { return pl.widths[d] }

// DeviceHeight returns the cached height of device d.
func (pl *Placement) DeviceHeight(d int) geom.Lambda { return pl.heights[d] }

// RowWidth returns the summed device width of row r (no feed-throughs).
func (pl *Placement) RowWidth(r int) geom.Lambda {
	var w geom.Lambda
	for _, d := range pl.Rows[r] {
		w += pl.widths[d]
	}
	return w
}

// RowHeight returns the height of row r: the process row height for
// cell rows, or the tallest device for transistor rows (full-custom
// synthesis reuses this placer).
func (pl *Placement) RowHeight(r int) geom.Lambda {
	h := geom.Lambda(0)
	for _, d := range pl.Rows[r] {
		if pl.heights[d] > h {
			h = pl.heights[d]
		}
	}
	if h == 0 {
		h = pl.Proc.RowHeight // empty row keeps nominal pitch
	}
	return h
}

// positions returns, for each device, the x of its centre given the
// current row orders.
func (pl *Placement) positions() []geom.Lambda {
	xs := make([]geom.Lambda, len(pl.RowOf))
	for _, row := range pl.Rows {
		var x geom.Lambda
		for _, d := range row {
			xs[d] = x + pl.widths[d]/2
			x += pl.widths[d]
		}
	}
	return xs
}

// rowCenters returns the y of each row's centre line, stacking rows
// with one nominal channel pitch between them (the exact channel
// heights only matter to the router; the placer just needs a
// consistent vertical metric).
func (pl *Placement) rowCenters() []geom.Lambda {
	ys := make([]geom.Lambda, len(pl.Rows))
	var y geom.Lambda
	for r := range pl.Rows {
		h := pl.RowHeight(r)
		ys[r] = y + h/2
		y += h + pl.Proc.TrackPitch*4 // nominal channel allowance
	}
	return ys
}

// WireLength returns the total half-perimeter wire length of the
// placement, the annealing objective.
func (pl *Placement) WireLength() geom.Lambda {
	xs := pl.positions()
	ys := pl.rowCenters()
	var total geom.Lambda
	for _, n := range pl.Circuit.Nets {
		if n.Degree() < 2 {
			continue
		}
		total += netHPWL(n, pl, xs, ys)
	}
	return total
}

func netHPWL(n *netlist.Net, pl *Placement, xs, ys []geom.Lambda) geom.Lambda {
	first := n.Devices[0].Index
	minX, maxX := xs[first], xs[first]
	minY, maxY := ys[pl.RowOf[first]], ys[pl.RowOf[first]]
	for _, dev := range n.Devices[1:] {
		d := dev.Index
		x, y := xs[d], ys[pl.RowOf[d]]
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	return (maxX - minX) + (maxY - minY)
}

// cost is the annealing objective: wire length plus a quadratic
// penalty on row-width imbalance (TimberWolf's row-length control).
func (pl *Placement) cost() float64 {
	wl := float64(pl.WireLength())
	var total, maxW float64
	for r := range pl.Rows {
		w := float64(pl.RowWidth(r))
		total += w
		if w > maxW {
			maxW = w
		}
	}
	mean := total / float64(len(pl.Rows))
	imbalance := 0.0
	for r := range pl.Rows {
		d := float64(pl.RowWidth(r)) - mean
		imbalance += d * d
	}
	return wl + imbalance/math.Max(mean, 1)
}

// annealStats summarizes one annealing run for the observability
// layer: move counts, endpoint costs, and a downsampled cost
// trajectory.
type annealStats struct {
	proposed, accepted     int
	costInitial, costFinal float64
	trajectory             []float64
}

// trajectorySamples bounds the sampled cost-trajectory length so span
// attributes stay readable regardless of the move budget.
const trajectorySamples = 9

// anneal improves the placement with a classic geometric-cooling
// schedule over two move types: swap two devices, or pop a device
// into a random slot of a random row.
func (pl *Placement) anneal(opts Options) annealStats {
	n := len(pl.RowOf)
	if n < 2 || len(pl.Rows) == 0 {
		return annealStats{}
	}
	moves := opts.Moves
	if moves == 0 {
		moves = 200 * n
		if moves > 400_000 {
			moves = 400_000
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	cur := pl.cost()
	st := annealStats{costInitial: cur, trajectory: []float64{cur}}
	stride := moves / trajectorySamples
	if stride == 0 {
		stride = 1
	}
	// Initial temperature: a fraction of current cost so early moves
	// are mostly accepted.
	temp := math.Max(cur*0.05, 1)
	cooling := math.Pow(1e-4, 1/float64(moves)) // reach 1e-4·T0 at the end
	for it := 0; it < moves; it++ {
		var undo func()
		if rng.Intn(2) == 0 {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			pl.swap(a, b)
			undo = func() { pl.swap(a, b) }
		} else {
			d := rng.Intn(n)
			fromRow, fromSlot := pl.RowOf[d], pl.Slot[d]
			toRow := rng.Intn(len(pl.Rows))
			toSlot := 0
			if len(pl.Rows[toRow]) > 0 {
				toSlot = rng.Intn(len(pl.Rows[toRow]) + 1)
			}
			if toRow == fromRow && (toSlot == fromSlot || toSlot == fromSlot+1) {
				continue
			}
			pl.move(d, toRow, toSlot)
			// Re-inserting at the original slot restores the original
			// order: only d moved, so the row minus d is unchanged.
			undo = func() { pl.move(d, fromRow, fromSlot) }
		}
		st.proposed++
		next := pl.cost()
		delta := next - cur
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			cur = next
			st.accepted++
		} else {
			undo()
		}
		if st.proposed%stride == 0 {
			st.trajectory = append(st.trajectory, cur)
		}
		temp *= cooling
	}
	st.costFinal = cur
	if st.trajectory[len(st.trajectory)-1] != cur {
		st.trajectory = append(st.trajectory, cur)
	}
	return st
}

// swap exchanges the positions of devices a and b.
func (pl *Placement) swap(a, b int) {
	ra, sa := pl.RowOf[a], pl.Slot[a]
	rb, sb := pl.RowOf[b], pl.Slot[b]
	pl.Rows[ra][sa], pl.Rows[rb][sb] = b, a
	pl.RowOf[a], pl.RowOf[b] = rb, ra
	pl.Slot[a], pl.Slot[b] = sb, sa
}

// move removes device d from its row and inserts it at slot of row r.
func (pl *Placement) move(d, r, slot int) {
	fr, fs := pl.RowOf[d], pl.Slot[d]
	row := pl.Rows[fr]
	row = append(row[:fs], row[fs+1:]...)
	pl.Rows[fr] = row
	for i := fs; i < len(row); i++ {
		pl.Slot[row[i]] = i
	}
	if r == fr && slot > len(pl.Rows[r]) {
		slot = len(pl.Rows[r])
	}
	dst := pl.Rows[r]
	if slot > len(dst) {
		slot = len(dst)
	}
	dst = append(dst, 0)
	copy(dst[slot+1:], dst[slot:])
	dst[slot] = d
	pl.Rows[r] = dst
	for i := slot; i < len(dst); i++ {
		pl.Slot[dst[i]] = i
	}
	pl.RowOf[d] = r
}

// Check validates the placement invariants: every device appears in
// exactly one row slot and the index maps agree with the row lists.
func (pl *Placement) Check() error {
	seen := make([]bool, len(pl.RowOf))
	for r, row := range pl.Rows {
		for s, d := range row {
			if d < 0 || d >= len(seen) {
				return fmt.Errorf("%w: row %d slot %d holds bad device %d", ErrPlace, r, s, d)
			}
			if seen[d] {
				return fmt.Errorf("%w: device %d placed twice", ErrPlace, d)
			}
			seen[d] = true
			if pl.RowOf[d] != r || pl.Slot[d] != s {
				return fmt.Errorf("%w: device %d index maps disagree (row %d/%d slot %d/%d)",
					ErrPlace, d, pl.RowOf[d], r, pl.Slot[d], s)
			}
		}
	}
	for d, ok := range seen {
		if !ok {
			return fmt.Errorf("%w: device %d not placed", ErrPlace, d)
		}
	}
	return nil
}

// PinPosition returns the (x, row) location of device d's connection
// point: the cell centre on the λ grid.
func (pl *Placement) PinPosition(d int) (x geom.Lambda, row int) {
	xs := pl.positions() // small circuits: recompute is fine for callers
	return xs[d], pl.RowOf[d]
}

// Positions exposes all device centre x coordinates (index = device).
func (pl *Placement) Positions() []geom.Lambda { return pl.positions() }

// PinColumns returns, for each device, the x column of each of its
// pins: pins are spread evenly across the cell width (pin k of an
// np-pin cell sits at left + (k+1)·w/(np+1)), as real cell layouts
// stagger their terminals.  The detailed router uses these columns so
// different nets entering one cell do not share a vertical.
func (pl *Placement) PinColumns() [][]geom.Lambda {
	lefts := make([]geom.Lambda, len(pl.RowOf))
	for _, row := range pl.Rows {
		var x geom.Lambda
		for _, d := range row {
			lefts[d] = x
			x += pl.widths[d]
		}
	}
	out := make([][]geom.Lambda, len(pl.RowOf))
	for d, dev := range pl.Circuit.Devices {
		np := len(dev.Pins)
		cols := make([]geom.Lambda, np)
		for k := 0; k < np; k++ {
			cols[k] = lefts[d] + pl.widths[d]*geom.Lambda(k+1)/geom.Lambda(np+1)
		}
		out[d] = cols
	}
	return out
}
