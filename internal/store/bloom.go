package store

import "encoding/binary"

// bloom is a split-block-free classic Bloom filter sized at build
// time for the segment's distinct-key count (~10 bits and 7 hash
// probes per key, ≈1% false positives).  The keys here are already
// SHA-256 content addresses — uniformly distributed by construction —
// so the two 64-bit halves of the key itself serve as the
// double-hashing pair; no extra hashing pass is needed.
type bloom struct {
	bits []uint64
	k    int
}

// bloomHashes derives the double-hashing pair (h1 + i·h2) from a
// content address and its namespace.  h2 is forced odd so successive
// probes cycle through the whole bit space.
func bloomHashes(ns Namespace, key Key) (uint64, uint64) {
	h1 := binary.LittleEndian.Uint64(key[0:8]) ^ (uint64(ns) * 0x9e3779b97f4a7c15)
	h2 := binary.LittleEndian.Uint64(key[8:16]) | 1
	return h1, h2
}

// newBloom sizes a filter for n expected keys.
func newBloom(n int) *bloom {
	if n < 1 {
		n = 1
	}
	words := (n*10 + 63) / 64
	return &bloom{bits: make([]uint64, words), k: 7}
}

func (b *bloom) add(h1, h2 uint64) {
	m := uint64(len(b.bits)) * 64
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

// mayContain reports whether the key might be in the segment; false
// is definitive and lets a miss skip the segment without touching
// disk.
func (b *bloom) mayContain(h1, h2 uint64) bool {
	m := uint64(len(b.bits)) * 64
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
