package store

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Compaction rewrites one sealed segment at a time, keeping only the
// records that still matter and dropping superseded or tombstoned
// ones.  A record survives iff:
//
//   - it is its segment's LAST record for its (ns, key) — earlier
//     in-segment writes are shadowed — and
//   - no newer segment (sealed or the WAL) holds the key — otherwise
//     the newer record wins globally — and
//   - if it is a tombstone, some OLDER segment still holds the key;
//     a tombstone shadowing nothing is dead weight.
//
// The kept records are written to a temp file and atomically renamed
// to a NEW highest sequence number.  Moving survivors to the newest
// log position is safe precisely because the keep rules make them
// global winners: no other segment holds a newer record for their
// keys, so their position in the log order is irrelevant.

// Compact synchronously compacts every sealed segment holding any
// garbage at all, returning how many segments were rewritten or
// dropped.  The background compactor uses the same machinery with the
// configured garbage threshold; Compact is the operator's big hammer
// (the maest-store CLI calls it).
func (s *Store) Compact() (int, error) {
	total := 0
	for {
		n, err := s.compactOnce(0)
		total += n
		if err != nil || n == 0 {
			return total, err
		}
	}
}

// compactOnce compacts the oldest sealed segment whose garbage ratio
// is at least minGarbage (and is positive), returning 1 if a segment
// was rewritten or dropped and 0 if none qualified.
func (s *Store) compactOnce(minGarbage float64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	ci := -1
	for i, seg := range s.sealed {
		if seg.garbage <= 0 {
			continue
		}
		if float64(seg.garbage)/float64(seg.size) >= minGarbage {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, nil
	}
	if err := s.compactSegment(ci); err != nil {
		return 0, err
	}
	s.nCompactions.Add(1)
	mCompact.Inc()
	s.lastCompaction = time.Now()
	gLastCompat.Set(float64(s.lastCompaction.Unix()))
	s.enforceIndexBudget()
	s.publishGauges()
	return 1, nil
}

// compactSegment rewrites s.sealed[ci] per the keep rules.  Caller
// holds the write lock.
func (s *Store) compactSegment(ci int) error {
	cand := s.sealed[ci]

	// Exact membership of every NEWER segment: a key present in any of
	// them supersedes the candidate's record.  Cold segments are
	// reindexed into throwaway maps (compaction needs exactness, not
	// bloom maybes).
	newer := make(map[idxKey]struct{})
	for ik := range s.wal.index {
		newer[ik] = struct{}{}
	}
	for _, seg := range s.sealed[ci+1:] {
		idx, err := seg.reindex()
		if err != nil {
			return err
		}
		for ik := range idx {
			newer[ik] = struct{}{}
		}
	}

	buf, err := os.ReadFile(cand.path)
	if err != nil {
		return err
	}
	// Pass 1: the candidate's own last-record-per-key map.
	last := make(map[idxKey]int64, cand.distinct)
	if _, err := scanBytes(buf, func(r *record, off, size int64) {
		last[idxKey{r.ns, r.key}] = off
	}); err != nil {
		return err
	}

	// olderHolds answers "does any segment older than the candidate
	// still hold this key" — the tombstone retention question.  Exact:
	// segment.lookup scans on a bloom maybe.
	olderHolds := func(ik idxKey) (bool, error) {
		for i := ci - 1; i >= 0; i-- {
			if _, found, _, err := s.sealed[i].lookup(ik); err != nil {
				return false, err
			} else if found {
				return true, nil
			}
		}
		return false, nil
	}

	// Pass 2: re-encode the survivors.  appendRecord is deterministic,
	// so a surviving record's bytes are identical to its original
	// encoding — byte-identity of served payloads is preserved across
	// compaction.
	out := []byte(segMagic)
	kept := int64(0)
	var keepErr error
	if _, err := scanBytes(buf, func(r *record, off, size int64) {
		if keepErr != nil {
			return
		}
		ik := idxKey{r.ns, r.key}
		if last[ik] != off {
			return // shadowed within the segment
		}
		if _, ok := newer[ik]; ok {
			return // shadowed by a newer segment
		}
		if r.tombstone {
			held, err := olderHolds(ik)
			if err != nil {
				keepErr = err
				return
			}
			if !held {
				return // tombstone over nothing
			}
		}
		out = appendRecord(out, r)
		kept++
	}); err != nil {
		return err
	}
	if keepErr != nil {
		return keepErr
	}

	if kept == 0 {
		// Nothing survives: drop the segment outright.
		s.sealed = append(s.sealed[:ci], s.sealed[ci+1:]...)
		cand.close()
		if err := os.Remove(cand.path); err != nil {
			return err
		}
		return syncDir(s.opts.Dir)
	}

	seq := s.nextSeq
	s.nextSeq++
	tmpPath := filepath.Join(s.opts.Dir, segName(seq)+tmpExt)
	if err := writeFileSync(tmpPath, out); err != nil {
		return err
	}
	finalPath := filepath.Join(s.opts.Dir, segName(seq))
	if err := os.Rename(tmpPath, finalPath); err != nil {
		return err
	}
	if err := syncDir(s.opts.Dir); err != nil {
		return err
	}
	replacement, corrupt, err := loadSegment(finalPath, seq)
	if err != nil {
		return err
	}
	if corrupt > 0 {
		// We just wrote and verified this file; corruption here means
		// the disk is failing under us.
		s.degraded.Store(true)
		s.nCorrupt.Add(corrupt)
		mCorrupt.Add(corrupt)
	}
	s.sealed = append(s.sealed[:ci], s.sealed[ci+1:]...)
	s.sealed = append(s.sealed, replacement) // highest seq = newest
	cand.close()
	if err := os.Remove(cand.path); err != nil {
		return err
	}
	return syncDir(s.opts.Dir)
}

// writeFileSync writes data to path and fsyncs before closing, so the
// subsequent rename publishes a fully durable file.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SegmentInfo is one segment's line in a verification report.
type SegmentInfo struct {
	Name    string `json:"name"`
	Seq     uint64 `json:"seq"`
	WAL     bool   `json:"wal,omitempty"`
	Bytes   int64  `json:"bytes"`
	Records int64  `json:"records"`
	Keys    int64  `json:"keys"`
	Garbage int64  `json:"garbage_bytes"`
	Cold    bool   `json:"cold,omitempty"`
	// Corrupt counts unreadable regions found by the full re-scan;
	// Torn reports a file that ends mid-record.
	Corrupt int64 `json:"corrupt,omitempty"`
	Torn    bool  `json:"torn,omitempty"`
}

// VerifyReport is the result of a full-store checksum verification.
type VerifyReport struct {
	Segments []SegmentInfo `json:"segments"`
	Records  int64         `json:"records"`
	Bytes    int64         `json:"bytes"`
	Corrupt  int64         `json:"corrupt"`
	Clean    bool          `json:"clean"`
}

// Verify re-reads and re-checksums every record in every segment
// (including the WAL), reporting per-segment totals.  It takes the
// read lock, so writes pause while it runs.
func (s *Store) Verify() (*VerifyReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	rep := &VerifyReport{}
	scanOne := func(seg *segment, wal bool) error {
		info := SegmentInfo{
			Name:    filepath.Base(seg.path),
			Seq:     seg.seq,
			WAL:     wal,
			Bytes:   seg.size,
			Garbage: seg.garbage,
			Cold:    !wal && seg.index == nil,
		}
		keys := make(map[idxKey]struct{})
		out, err := scanFile(seg.path, func(r *record, off, size int64) {
			info.Records++
			keys[idxKey{r.ns, r.key}] = struct{}{}
		})
		if err != nil {
			// Header-level corruption: the whole file is unreadable.
			info.Corrupt = 1
		} else {
			info.Corrupt = out.corrupt
			info.Torn = out.torn
			if wal && out.torn {
				// The in-memory WAL can legitimately be ahead of a
				// concurrent scan only if writes were running; under the
				// read lock they are not, so a torn WAL is real.
				info.Corrupt++
			}
		}
		info.Keys = int64(len(keys))
		rep.Segments = append(rep.Segments, info)
		rep.Records += info.Records
		rep.Bytes += info.Bytes
		rep.Corrupt += info.Corrupt
		return nil
	}
	for _, seg := range s.sealed {
		if err := scanOne(seg, false); err != nil {
			return nil, err
		}
	}
	if err := scanOne(s.wal, true); err != nil {
		return nil, err
	}
	rep.Clean = rep.Corrupt == 0
	return rep, nil
}

// String renders the report the way the maest-store CLI prints it.
func (r *VerifyReport) String() string {
	s := ""
	for _, seg := range r.Segments {
		state := "ok"
		switch {
		case seg.Corrupt > 0:
			state = fmt.Sprintf("CORRUPT(%d)", seg.Corrupt)
		case seg.Torn:
			state = "TORN"
		case seg.Cold:
			state = "ok (cold)"
		}
		s += fmt.Sprintf("%-14s %10d B %8d rec %8d keys %10d garbage  %s\n",
			seg.Name, seg.Bytes, seg.Records, seg.Keys, seg.Garbage, state)
	}
	verdict := "clean"
	if !r.Clean {
		verdict = fmt.Sprintf("%d corrupt records", r.Corrupt)
	}
	s += fmt.Sprintf("total: %d records, %d bytes, %s\n", r.Records, r.Bytes, verdict)
	return s
}
