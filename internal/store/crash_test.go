package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The crash-safety contract: a store killed mid-append reopens
// cleanly, the torn final record is detected by checksum/shape and
// truncated — never served — and every surviving record round-trips
// byte-identical to what was originally written.
//
// These tests simulate the kill by doing what a crash does to an
// append-only file: cutting it at an arbitrary byte, or leaving a
// half-written tail of garbage.  Because appends are sequential
// WriteAt calls, every crash state is some prefix of the full file
// (plus, on weird filesystems, trailing junk after the last synced
// prefix — covered by the garbage-tail cases).

// writeCrashFixture builds a store with n records and returns its WAL
// path plus the expected payloads.  SegmentBytes is huge so nothing
// seals: the WAL is where torn tails happen.
func writeCrashFixture(t *testing.T, dir string, n int) string {
	t.Helper()
	s, err := Open(Options{Dir: dir, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Put(NSResult, testKey(i), testVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, walName)
}

// reopenAndCheck reopens the store and verifies every key either
// misses or round-trips exactly; returns the number of hits.
func reopenAndCheck(t *testing.T, dir string, n int) (hits int, st Stats) {
	t.Helper()
	s, err := Open(Options{Dir: dir, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatalf("reopen after simulated crash: %v", err)
	}
	defer s.Close()
	for i := 0; i < n; i++ {
		got, ok, err := s.Get(NSResult, testKey(i))
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !ok {
			continue
		}
		if !bytes.Equal(got, testVal(i)) {
			t.Fatalf("surviving record %d not byte-identical: %q vs %q", i, got, testVal(i))
		}
		hits++
	}
	return hits, s.Stats()
}

func TestKillMidWriteEveryCut(t *testing.T) {
	// Build one fixture, then replay a crash at EVERY byte offset of
	// the final record and a sample of offsets across earlier ones.
	base := t.TempDir()
	walPath := writeCrashFixture(t, base, 8)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Locate record boundaries by scanning.
	var bounds []int64 // end offset of each record
	if _, err := scanBytes(full, func(r *record, off, size int64) {
		bounds = append(bounds, off+size)
	}); err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 8 {
		t.Fatalf("fixture has %d records, want 8", len(bounds))
	}

	lastStart := bounds[6]
	cuts := []int64{}
	for c := lastStart; c < int64(len(full)); c++ {
		cuts = append(cuts, c) // every byte of the torn final record
	}
	for c := int64(len(segMagic)); c < lastStart; c += 37 {
		cuts = append(cuts, c) // strided sample of earlier crash points
	}

	for _, cut := range cuts {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, walName), full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			hits, st := reopenAndCheck(t, dir, 8)
			// Exactly the records wholly before the cut survive.
			want := 0
			for _, b := range bounds {
				if b <= cut {
					want++
				}
			}
			if hits != want {
				t.Fatalf("cut at %d: %d hits, want %d", cut, hits, want)
			}
			// A prefix cut is always a torn tail or a clean boundary;
			// degraded is reserved for real corruption.
			if st.Degraded {
				t.Fatalf("cut at %d marked store degraded: %+v", cut, st)
			}
		})
	}
}

func TestKillMidWriteTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	walPath := writeCrashFixture(t, dir, 5)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the last record in half.
	var lastOff int64
	scanBytes(full, func(r *record, off, size int64) { lastOff = off })
	cut := lastOff + (int64(len(full))-lastOff)/2
	if err := os.Truncate(walPath, cut); err != nil {
		t.Fatal(err)
	}

	hits, st := reopenAndCheck(t, dir, 5)
	if hits != 4 {
		t.Fatalf("%d survivors, want 4", hits)
	}
	if st.TruncatedTails == 0 {
		t.Fatal("torn tail not counted")
	}
	if st.Degraded {
		t.Fatal("torn tail is a crash signature, not corruption; store must not be degraded")
	}
	// The file itself must have been truncated back to the good prefix
	// so the next append lands at a valid offset.
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != lastOff {
		t.Fatalf("WAL size %d after reopen, want %d", info.Size(), lastOff)
	}
}

func TestKillMidWriteGarbageTail(t *testing.T) {
	// A crash on some filesystems leaves allocated-but-unwritten junk
	// past the last real record.  The CRC must reject it and the
	// reopen must truncate it away.
	dir := t.TempDir()
	walPath := writeCrashFixture(t, dir, 5)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte{0xDE, 0xAD}, 300)
	if err := os.WriteFile(walPath, append(full, junk...), 0o644); err != nil {
		t.Fatal(err)
	}
	hits, _ := reopenAndCheck(t, dir, 5)
	if hits != 5 {
		t.Fatalf("%d survivors, want all 5", hits)
	}
	info, _ := os.Stat(walPath)
	if info.Size() != int64(len(full)) {
		t.Fatalf("garbage tail not truncated: %d vs %d", info.Size(), len(full))
	}
}

func TestKillMidWriteThenAppendContinues(t *testing.T) {
	// After a torn-tail recovery the store must keep working: new
	// appends land where the truncation left off and survive the next
	// reopen.
	dir := t.TempDir()
	walPath := writeCrashFixture(t, dir, 5)
	full, _ := os.ReadFile(walPath)
	os.Truncate(walPath, int64(len(full))-3)

	s, err := Open(Options{Dir: dir, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		if err := s.Put(NSResult, testKey(i), testVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Re-write the record the crash destroyed.
	if err := s.Put(NSResult, testKey(4), testVal(4)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	hits, st := reopenAndCheck(t, dir, 15)
	if hits != 10 { // keys 0..4 and 10..14
		t.Fatalf("%d survivors, want 10 (stats %+v)", hits, st)
	}
}

func TestKillDuringSealLeavesConsistentStore(t *testing.T) {
	// A crash between WAL fsync and rename leaves... the WAL (rename
	// is atomic: old name or new name, never both/neither).  A crash
	// mid-compaction leaves a .tmp that reopen removes.  Simulate the
	// latter and prove the store ignores it.
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Put(NSResult, testKey(i), testVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	tmp := filepath.Join(dir, segName(99)+tmpExt)
	if err := os.WriteFile(tmp, []byte("half-written compaction output"), 0o644); err != nil {
		t.Fatal(err)
	}
	hits, st := reopenAndCheck(t, dir, 100)
	if hits != 100 {
		t.Fatalf("%d survivors, want 100", hits)
	}
	if st.Degraded {
		t.Fatalf("leftover .tmp degraded the store: %+v", st)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover .tmp not cleaned up on reopen")
	}
}

func TestZeroByteWAL(t *testing.T) {
	// Crash between create and header write: 0-byte WAL.  Must reopen
	// clean (nothing was ever acknowledged).
	dir := t.TempDir()
	writeCrashFixture(t, dir, 0)
	os.Truncate(filepath.Join(dir, walName), 0)
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen with 0-byte WAL: %v", err)
	}
	defer s.Close()
	if s.Stats().Degraded {
		t.Fatal("0-byte WAL marked degraded")
	}
	if err := s.Put(NSResult, testKey(1), testVal(1)); err != nil {
		t.Fatal(err)
	}
}
