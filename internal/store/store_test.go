package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// testKey derives a deterministic content address the way the rest of
// the system does: by hashing a canonical rendering.
func testKey(i int) Key {
	return sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
}

func testVal(i int) []byte {
	return []byte(fmt.Sprintf(`{"module":"m%d","area":%d.5}`, i, i*100))
}

func openTest(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, ns Namespace, i int) {
	t.Helper()
	if err := s.Put(ns, testKey(i), testVal(i)); err != nil {
		t.Fatalf("Put %d: %v", i, err)
	}
}

func mustGet(t *testing.T, s *Store, ns Namespace, i int) {
	t.Helper()
	got, ok, err := s.Get(ns, testKey(i))
	if err != nil {
		t.Fatalf("Get %d: %v", i, err)
	}
	if !ok {
		t.Fatalf("Get %d: miss, want hit", i)
	}
	if !bytes.Equal(got, testVal(i)) {
		t.Fatalf("Get %d: payload %q, want %q", i, got, testVal(i))
	}
}

func TestPutGetDelete(t *testing.T) {
	s := openTest(t, Options{})
	for i := 0; i < 100; i++ {
		mustPut(t, s, NSResult, i)
	}
	for i := 0; i < 100; i++ {
		mustGet(t, s, NSResult, i)
	}
	// A key written in one namespace must be invisible in another.
	if _, ok, _ := s.Get(NSCongest, testKey(1)); ok {
		t.Fatal("namespace leak: NSResult key visible under NSCongest")
	}
	// Overwrite supersedes.
	if err := s.Put(NSResult, testKey(5), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.Get(NSResult, testKey(5))
	if !ok || string(got) != "v2" {
		t.Fatalf("after overwrite: %q ok=%v", got, ok)
	}
	// Delete tombstones.
	if err := s.Delete(NSResult, testKey(7)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(NSResult, testKey(7)); ok {
		t.Fatal("deleted key still resolves")
	}
	st := s.Stats()
	if st.Deletes != 1 || st.Puts != 101 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir, SegmentBytes: 4 << 10})
	for i := 0; i < 200; i++ {
		mustPut(t, s, NSResult, i)
	}
	s.Delete(NSResult, testKey(3))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openTest(t, Options{Dir: dir, SegmentBytes: 4 << 10})
	for i := 0; i < 200; i++ {
		if i == 3 {
			if _, ok, _ := s2.Get(NSResult, testKey(3)); ok {
				t.Fatal("tombstone lost across reopen")
			}
			continue
		}
		mustGet(t, s2, NSResult, i)
	}
	if st := s2.Stats(); st.Segments == 0 {
		t.Fatalf("expected sealed segments after 200 puts at 4 KiB, got %+v", st)
	}
	if st := s2.Stats(); st.Degraded {
		t.Fatal("clean reopen marked degraded")
	}
}

func TestSealingAndSegmentFiles(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir, SegmentBytes: 2 << 10})
	for i := 0; i < 100; i++ {
		mustPut(t, s, NSResult, i)
	}
	names, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 2 {
		t.Fatalf("want several sealed segments, got %v", names)
	}
	// Every record must remain reachable across the WAL/sealed split.
	for i := 0; i < 100; i++ {
		mustGet(t, s, NSResult, i)
	}
}

func TestColdSegmentBloomPath(t *testing.T) {
	dir := t.TempDir()
	// IndexKeys=1 forces every sealed segment cold immediately.
	s := openTest(t, Options{Dir: dir, SegmentBytes: 2 << 10, IndexKeys: 1})
	for i := 0; i < 120; i++ {
		mustPut(t, s, NSResult, i)
	}
	st := s.Stats()
	if st.ColdSegments == 0 {
		t.Fatalf("want cold segments under IndexKeys=1, got %+v", st)
	}
	// Hits on cold keys must still return exact payloads (scan path).
	for i := 0; i < 120; i++ {
		mustGet(t, s, NSResult, i)
	}
	if got := s.Stats(); got.ColdScans == 0 {
		t.Fatalf("expected cold scans, got %+v", got)
	}
	// Misses on absent keys should mostly skip cold segments via bloom;
	// correctness here is just that they miss.
	for i := 1000; i < 1050; i++ {
		if _, ok, err := s.Get(NSResult, testKey(i)); err != nil || ok {
			t.Fatalf("absent key %d: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestEvictionBudget(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir, SegmentBytes: 2 << 10, MaxBytes: 8 << 10})
	for i := 0; i < 500; i++ {
		mustPut(t, s, NSResult, i)
	}
	st := s.Stats()
	if st.Bytes > 8<<10 {
		t.Fatalf("store exceeds budget: %d bytes", st.Bytes)
	}
	if st.EvictedSegments == 0 {
		t.Fatalf("expected evictions, got %+v", st)
	}
	// Recent keys survive; the oldest are gone (cache semantics).
	mustGet(t, s, NSResult, 499)
	if _, ok, _ := s.Get(NSResult, testKey(0)); ok {
		t.Fatal("oldest key survived a budget 60x smaller than the data")
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir, SegmentBytes: 2 << 10})
	// Write the same small key set over and over: almost everything is
	// garbage once sealed.
	for round := 0; round < 30; round++ {
		for i := 0; i < 10; i++ {
			if err := s.Put(NSResult, testKey(i), []byte(fmt.Sprintf("round-%d-key-%d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := s.Stats()
	n, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if n == 0 {
		t.Fatalf("no segments compacted; stats before: %+v", before)
	}
	after := s.Stats()
	if after.Bytes >= before.Bytes {
		t.Fatalf("compaction did not shrink the store: %d -> %d", before.Bytes, after.Bytes)
	}
	// Every key must still resolve to its LAST written value.
	for i := 0; i < 10; i++ {
		got, ok, err := s.Get(NSResult, testKey(i))
		if err != nil || !ok {
			t.Fatalf("key %d after compaction: ok=%v err=%v", i, ok, err)
		}
		want := fmt.Sprintf("round-29-key-%d", i)
		if string(got) != want {
			t.Fatalf("key %d: %q, want %q", i, got, want)
		}
	}
	// And survive a reopen.
	s.Close()
	s2 := openTest(t, Options{Dir: dir, SegmentBytes: 2 << 10})
	for i := 0; i < 10; i++ {
		got, ok, _ := s2.Get(NSResult, testKey(i))
		if !ok || string(got) != fmt.Sprintf("round-29-key-%d", i) {
			t.Fatalf("key %d lost across compaction+reopen: %q ok=%v", i, got, ok)
		}
	}
}

func TestCompactionDropsTombstones(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so puts and tombstones land in separate segments.
	s := openTest(t, Options{Dir: dir, SegmentBytes: 512})
	for i := 0; i < 20; i++ {
		mustPut(t, s, NSResult, i)
	}
	for i := 0; i < 20; i++ {
		if err := s.Delete(NSResult, testKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Force the WAL to seal so the tombstones become compactable.
	for i := 100; i < 120; i++ {
		mustPut(t, s, NSResult, i)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Repeat until stable: each pass can expose new garbage as
	// tombstones move past the records they shadow.
	for pass := 0; pass < 10; pass++ {
		n, err := s.Compact()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	for i := 0; i < 20; i++ {
		if _, ok, _ := s.Get(NSResult, testKey(i)); ok {
			t.Fatalf("deleted key %d resurrected by compaction", i)
		}
	}
	for i := 100; i < 120; i++ {
		mustGet(t, s, NSResult, i)
	}
}

func TestVerifyClean(t *testing.T) {
	s := openTest(t, Options{SegmentBytes: 2 << 10})
	for i := 0; i < 50; i++ {
		mustPut(t, s, NSResult, i)
	}
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("fresh store not clean: %s", rep)
	}
	if rep.Records != 50 {
		t.Fatalf("verify counted %d records, want 50", rep.Records)
	}
}

func TestCorruptSealedRecordNeverServed(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir, SegmentBytes: 1 << 10})
	for i := 0; i < 60; i++ {
		mustPut(t, s, NSResult, i)
	}
	s.Close()

	// Flip a byte in the middle of the first sealed segment's payload
	// region.
	names, _, err := listSegments(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("listSegments: %v %v", names, err)
	}
	path := filepath.Join(dir, names[0])
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, Options{Dir: dir, SegmentBytes: 1 << 10})
	st := s2.Stats()
	if !st.Degraded || st.CorruptRecords == 0 {
		t.Fatalf("corruption not surfaced: %+v", st)
	}
	// Every Get must either hit with the exact original payload or
	// miss — never return mangled bytes.
	for i := 0; i < 60; i++ {
		got, ok, err := s2.Get(NSResult, testKey(i))
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if ok && !bytes.Equal(got, testVal(i)) {
			t.Fatalf("corrupt payload served for key %d: %q", i, got)
		}
	}
	rep, err := s2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean {
		t.Fatal("Verify calls a corrupted store clean")
	}
}

func TestBitRotAfterOpenCaughtAtRead(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir, SegmentBytes: 1 << 10})
	for i := 0; i < 60; i++ {
		mustPut(t, s, NSResult, i)
	}
	// Rot a sealed segment BEHIND the open store's back: the index
	// still points at the record, so only the read-time CRC can save
	// us.
	names, _, err := listSegments(dir)
	if err != nil || len(names) == 0 {
		t.Fatal("no sealed segments")
	}
	path := filepath.Join(dir, names[0])
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := f.Stat()
	one := make([]byte, 1)
	if _, err := f.ReadAt(one, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0xFF
	if _, err := f.WriteAt(one, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	misses := 0
	for i := 0; i < 60; i++ {
		got, ok, err := s.Get(NSResult, testKey(i))
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !ok {
			misses++
			continue
		}
		if !bytes.Equal(got, testVal(i)) {
			t.Fatalf("rotten payload served for key %d", i)
		}
	}
	if misses == 0 {
		t.Fatal("bit flip changed nothing — test not exercising the read path")
	}
	if st := s.Stats(); !st.Degraded {
		t.Fatal("read-time corruption did not latch degraded")
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := openTest(t, Options{})
	mustPut(t, s, NSResult, 1)
	s.Close()
	if _, _, err := s.Get(NSResult, testKey(1)); err != ErrClosed {
		t.Fatalf("Get after close: %v", err)
	}
	if err := s.Put(NSResult, testKey(2), nil); err != ErrClosed {
		t.Fatalf("Put after close: %v", err)
	}
	if _, err := s.Verify(); err != ErrClosed {
		t.Fatalf("Verify after close: %v", err)
	}
	// Double close is a no-op.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestHas(t *testing.T) {
	s := openTest(t, Options{})
	mustPut(t, s, NSPlanMeta, 1)
	ok, err := s.Has(NSPlanMeta, testKey(1))
	if err != nil || !ok {
		t.Fatalf("Has present: %v %v", ok, err)
	}
	ok, err = s.Has(NSPlanMeta, testKey(2))
	if err != nil || ok {
		t.Fatalf("Has absent: %v %v", ok, err)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	s := openTest(t, Options{SegmentBytes: 2 << 10, IndexKeys: 32})
	const keys = 64
	done := make(chan struct{})
	var readers sync.WaitGroup
	go func() {
		defer close(done)
		for round := 0; round < 20; round++ {
			for i := 0; i < keys; i++ {
				if err := s.Put(NSResult, testKey(i), testVal(i)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}
	}()
	for j := 0; j < 4; j++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for i := 0; i < keys; i++ {
					got, ok, err := s.Get(NSResult, testKey(i))
					if err != nil {
						t.Errorf("Get: %v", err)
						return
					}
					if ok && !bytes.Equal(got, testVal(i)) {
						t.Errorf("torn read for key %d", i)
						return
					}
				}
			}
		}()
	}
	<-done
	readers.Wait()
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		mustGet(t, s, NSResult, i)
	}
}

func TestPayloadCap(t *testing.T) {
	s := openTest(t, Options{})
	if err := s.Put(NSResult, testKey(1), make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := newBloom(1000)
	keys := make([]Key, 1000)
	for i := range keys {
		keys[i] = testKey(i)
		b.add(bloomHashes(NSResult, keys[i]))
	}
	for i, k := range keys {
		if !b.mayContain(bloomHashes(NSResult, k)) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	// False-positive rate sanity: absent keys should mostly be skipped.
	fp := 0
	for i := 10000; i < 11000; i++ {
		if b.mayContain(bloomHashes(NSResult, testKey(i))) {
			fp++
		}
	}
	if fp > 100 { // ~1% expected; 10% is a broken filter
		t.Fatalf("bloom false-positive rate %d/1000", fp)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, tc := range []record{
		{ns: NSResult, key: testKey(1), payload: []byte("hello")},
		{ns: NSCongest, key: testKey(2), payload: nil},
		{ns: NSPlanMeta, key: testKey(3), payload: bytes.Repeat([]byte{0xFF}, 4096)},
		{ns: NSResult, key: testKey(4), tombstone: true},
	} {
		buf := appendRecord(nil, &tc)
		got, n, err := decodeRecord(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != int64(len(buf)) {
			t.Fatalf("size %d, want %d", n, len(buf))
		}
		if got.ns != tc.ns || got.key != tc.key || got.tombstone != tc.tombstone || !bytes.Equal(got.payload, tc.payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, tc)
		}
	}
}

func TestDecodeRejectsLyingLength(t *testing.T) {
	r := &record{ns: NSResult, key: testKey(1), payload: []byte("abcdef")}
	buf := appendRecord(nil, r)
	// Claim a shorter payload: CRC must catch the lie (the bytes at the
	// shifted CRC position are payload bytes, not the right checksum).
	binary.LittleEndian.PutUint32(buf[2:6], 2)
	if _, _, err := decodeRecord(buf); err == nil {
		t.Fatal("shortened length field accepted")
	}
	// Claim a huge payload: must fail shape validation, not allocate.
	binary.LittleEndian.PutUint32(buf[2:6], MaxPayload+1)
	if _, _, err := decodeRecord(buf); err == nil {
		t.Fatal("oversized length field accepted")
	}
}
