package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzRecord drives the on-disk record codec with arbitrary bytes.
// The properties under test:
//
//  1. decodeRecord never panics, whatever the input.
//  2. It never accepts a record whose checksum does not verify — a
//     successful decode implies the CRC-32C over the decoded extent
//     matches, so corrupt payloads cannot be served.
//  3. A successful decode re-encodes to exactly the bytes it was
//     decoded from (the codec is canonical), so anything the scanner
//     replays round-trips byte-identical.
//  4. Claimed sizes are honest: the decoded extent lies within the
//     input and its payload length matches the header.
func FuzzRecord(f *testing.F) {
	// Seed with valid encodings of each shape...
	key := sha256.Sum256([]byte("seed"))
	f.Add(appendRecord(nil, &record{ns: NSResult, key: key, payload: []byte(`{"area":42.5}`)}))
	f.Add(appendRecord(nil, &record{ns: NSCongest, key: key, payload: nil}))
	f.Add(appendRecord(nil, &record{ns: NSPlanMeta, key: key, tombstone: true}))
	// ...and classic liars: truncations, flipped bits, wild lengths.
	valid := appendRecord(nil, &record{ns: NSResult, key: key, payload: []byte("payload")})
	f.Add(valid[:len(valid)-1])
	flipped := bytes.Clone(valid)
	flipped[recHeaderLen+5] ^= 0x01
	f.Add(flipped)
	wild := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(wild[2:6], 0xFFFFFFFF)
	f.Add(wild)
	f.Add([]byte{})
	f.Add([]byte(segMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := decodeRecord(data)
		if err != nil {
			if r != nil || n != 0 {
				t.Fatalf("error return leaked a record: r=%v n=%d", r, n)
			}
			return
		}
		if n < recOverhead || n > int64(len(data)) {
			t.Fatalf("decoded size %d outside input of %d bytes", n, len(data))
		}
		if int64(recOverhead+len(r.payload)) != n {
			t.Fatalf("payload %d bytes inconsistent with size %d", len(r.payload), n)
		}
		if r.tombstone && len(r.payload) != 0 {
			t.Fatal("tombstone decoded with a payload")
		}
		// The checksum over the accepted extent must actually verify —
		// acceptance without a matching CRC would let corruption through.
		want := binary.LittleEndian.Uint32(data[n-crcLen : n])
		if crc32.Checksum(data[:n-crcLen], castagnoli) != want {
			t.Fatal("decodeRecord accepted a record whose CRC does not verify")
		}
		// Canonical codec: re-encoding reproduces the input extent.
		re := appendRecord(nil, r)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in: %x\nout: %x", data[:n], re)
		}
	})
}

// FuzzScan drives the whole-segment scanner with arbitrary images:
// it must never panic, never replay an invalid record, and goodSize
// must always bound a replayable prefix.
func FuzzScan(f *testing.F) {
	key := sha256.Sum256([]byte("scan-seed"))
	img := []byte(segMagic)
	img = appendRecord(img, &record{ns: NSResult, key: key, payload: []byte("a")})
	img = appendRecord(img, &record{ns: NSCongest, key: key, payload: []byte("bb")})
	f.Add(img)
	f.Add(img[:len(img)-3])
	f.Add([]byte(segMagic))
	f.Add([]byte("NOTMAGIC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var replayed int64
		out, err := scanBytes(data, func(r *record, off, size int64) {
			if off+size > int64(len(data)) {
				t.Fatalf("replayed record extends past input: off=%d size=%d len=%d", off, size, len(data))
			}
			// Every replayed record must independently re-verify.
			if _, _, derr := decodeRecord(data[off : off+size]); derr != nil {
				t.Fatalf("scanner replayed an invalid record: %v", derr)
			}
			replayed++
		})
		if err != nil {
			return // bad magic: nothing replayed, nothing to check
		}
		if out.goodSize > int64(len(data)) || out.goodSize < int64(len(segMagic)) {
			t.Fatalf("goodSize %d outside [%d, %d]", out.goodSize, len(segMagic), len(data))
		}
		// Rescanning the good prefix must replay exactly the same count
		// with no torn/corrupt tail — the prefix is self-consistent.
		var again int64
		out2, err := scanBytes(data[:out.goodSize], func(*record, int64, int64) { again++ })
		if err != nil || out2.torn || out2.corrupt != 0 || again != replayed {
			t.Fatalf("good prefix not clean: err=%v torn=%v corrupt=%d replayed %d/%d",
				err, out2.torn, out2.corrupt, again, replayed)
		}
	})
}
