// Package store is the persistent plan store: an embedded,
// stdlib-only, disk-backed database of estimate results, congestion
// maps, and compiled-plan metadata, keyed by the SHA-256 content
// addresses the engine and serving layer already mint.  It exists so
// a restarted maest-serve warm-starts from everything it (or a prior
// fleet member sharing the directory) ever computed, instead of
// re-paying compile+execute for the repeat-heavy floorplanner
// workload.
//
// Design: an append-only log of length-prefixed, CRC-32C-checksummed
// records, split into segments.  Appends go to a WAL (`active.wal`);
// when it reaches the segment size it is fsynced and atomically
// renamed to a sealed, immutable `NNNNNNNN.seg` (write-temp-then-
// rename).  Open rebuilds an in-memory hash index by scanning every
// segment; beyond a configurable index budget the oldest segments
// demote their index to a per-segment Bloom filter, so misses still
// skip them at memory speed while the store itself scales past RAM.
// Background compaction rewrites segments whose superseded/tombstoned
// garbage crosses a threshold, and a byte budget evicts the oldest
// sealed segments wholesale (the store is a cache of recomputable
// results; losing the oldest is the documented policy, not a fault).
//
// Crash-safety contract: a record is either fully on disk and
// checksummed, or it is detected (torn tail, CRC mismatch) on reopen
// and truncated — a corrupt payload is never served.  Every read
// re-verifies the record checksum, so bit rot after open is caught at
// serve time too.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"maest/internal/obs"
)

// The maest_store_* metrics.  Process-global in the internal/obs
// style: every store in the process reports here (counters aggregate;
// gauges reflect the most recent store to update, which in production
// is the only one).
var (
	mHits       = obs.DefCounter("maest_store_hits_total", "store lookups answered from disk")
	mMisses     = obs.DefCounter("maest_store_misses_total", "store lookups that found nothing")
	mPuts       = obs.DefCounter("maest_store_puts_total", "records appended")
	mDeletes    = obs.DefCounter("maest_store_deletes_total", "tombstones appended")
	mSeals      = obs.DefCounter("maest_store_seals_total", "WAL segments sealed")
	mCompact    = obs.DefCounter("maest_store_compactions_total", "segment compactions completed")
	mEvicted    = obs.DefCounter("maest_store_evicted_segments_total", "sealed segments evicted by the byte budget")
	mCorrupt    = obs.DefCounter("maest_store_corrupt_records_skipped_total", "corrupt records detected and skipped, never served")
	mTruncated  = obs.DefCounter("maest_store_torn_tails_truncated_total", "torn WAL tails truncated on reopen")
	mColdScans  = obs.DefCounter("maest_store_cold_scans_total", "lookups that scanned a demoted (cold) segment after a bloom maybe")
	gBytes      = obs.DefGauge("maest_store_bytes", "total bytes across WAL and sealed segments")
	gSegments   = obs.DefGauge("maest_store_segments", "sealed segment count")
	gRecords    = obs.DefGauge("maest_store_records", "log records across all segments")
	gGarbage    = obs.DefGauge("maest_store_garbage_bytes", "bytes of superseded/tombstoned records awaiting compaction")
	gIndexKeys  = obs.DefGauge("maest_store_indexed_keys", "keys resident in the in-memory hash index")
	gLastCompat = obs.DefGauge("maest_store_last_compaction_unix_seconds", "wall time of the last completed compaction")
)

// ErrClosed is returned by every operation on a closed store.
var ErrClosed = errors.New("store: closed")

// Options configures Open.  The zero value (plus a Dir) selects
// production defaults: 1 GiB byte budget, 8 MiB segments, 2M indexed
// keys, fsync on seal only, compaction at 50% garbage.
type Options struct {
	// Dir is the store directory, created if missing.
	Dir string
	// MaxBytes is the total size budget; when sealed+WAL bytes exceed
	// it the oldest sealed segments are evicted whole.  0 selects
	// 1 GiB; negative disables eviction.
	MaxBytes int64
	// SegmentBytes is the WAL size at which it seals.  0 selects 8 MiB.
	SegmentBytes int64
	// IndexKeys budgets the in-memory hash index; beyond it the oldest
	// sealed segments demote to bloom-filter-only ("cold").  0 selects
	// 2^21 (~2M keys); negative keeps every segment indexed.
	IndexKeys int
	// SyncEveryPut fsyncs the WAL after every append.  Off by default:
	// the durability unit is the sealed segment, and the crash contract
	// for the WAL tail is detect-and-truncate, not never-lose.
	SyncEveryPut bool
	// CompactMinGarbage is the garbage/size ratio at which a sealed
	// segment becomes a compaction candidate.  0 selects 0.5.
	CompactMinGarbage float64
}

func (o Options) withDefaults() Options {
	if o.MaxBytes == 0 {
		o.MaxBytes = 1 << 30
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SegmentBytes < int64(len(segMagic))+recOverhead {
		o.SegmentBytes = int64(len(segMagic)) + recOverhead
	}
	if o.IndexKeys == 0 {
		o.IndexKeys = 1 << 21
	}
	if o.CompactMinGarbage == 0 {
		o.CompactMinGarbage = 0.5
	}
	return o
}

// Store is one open store directory.  All methods are safe for
// concurrent use.
type Store struct {
	opts Options

	mu      sync.RWMutex
	wal     *segment   // active append target; index always resident
	sealed  []*segment // oldest first
	nextSeq uint64
	closed  bool

	// degraded is latched when corrupt records were detected (at open
	// or at read time): the store keeps serving everything that
	// verifies, but operators should know the disk lied once.
	// Atomic (like the counters below) because Get mutates it under
	// the read lock.
	degraded atomic.Bool

	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup

	// Per-store counters, mirrored into the process-global metrics, so
	// Stats() is meaningful with several stores in one process (tests,
	// the bench harness).
	nHits, nMisses, nPuts, nDeletes  atomic.Int64
	nCompactions, nEvicted, nCorrupt atomic.Int64
	nTruncated, nColdScans           atomic.Int64
	lastCompaction                   time.Time // guarded by mu
}

// Open opens (creating if needed) the store under opts.Dir, rebuilds
// the in-memory index from the segment files, truncates a torn WAL
// tail, and starts the background compactor.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("store: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		opts:      opts,
		compactCh: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}

	names, seqs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		seg, corrupt, err := loadSegment(filepath.Join(opts.Dir, name), seqs[i])
		if err != nil {
			s.closeAll()
			return nil, fmt.Errorf("store: segment %s: %w", name, err)
		}
		if corrupt > 0 {
			s.degraded.Store(true)
			s.nCorrupt.Add(corrupt)
			mCorrupt.Add(corrupt)
		}
		s.sealed = append(s.sealed, seg)
		if seg.seq >= s.nextSeq {
			s.nextSeq = seg.seq + 1
		}
	}
	if err := s.openWAL(); err != nil {
		s.closeAll()
		return nil, err
	}
	s.accountCrossSegmentGarbage()
	s.enforceIndexBudget()
	s.evictOverBudget()
	s.publishGauges()

	s.wg.Add(1)
	go s.compactor()
	return s, nil
}

// openWAL opens or creates the active segment, truncating a torn
// tail so the append point sits just past the last valid record.
func (s *Store) openWAL() error {
	path := filepath.Join(s.opts.Dir, walName)
	buf, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return s.createWAL(path)
	case err != nil:
		return err
	}

	if len(buf) < len(segMagic) && string(buf) == segMagic[:len(buf)] {
		// A crash between creating the WAL and syncing its header
		// leaves a truncated magic.  That's a torn header, not
		// corruption: no record was ever acknowledged.
		s.nTruncated.Add(1)
		mTruncated.Inc()
		os.Remove(path)
		return s.createWAL(path)
	}

	wal := &segment{path: path, index: make(map[idxKey]recLoc)}
	out, err := scanBytes(buf, func(r *record, off, size int64) {
		wal.records++
		ik := idxKey{r.ns, r.key}
		if old, ok := wal.index[ik]; ok {
			wal.garbage += old.size
		}
		wal.index[ik] = recLoc{off: off, size: size, tombstone: r.tombstone}
	})
	if err != nil {
		// The WAL header itself is gone (empty or foreign file): the
		// whole file is unusable.  Start fresh rather than refuse to
		// open — durable data lives in the sealed segments.
		s.degraded.Store(true)
		s.nCorrupt.Add(1)
		mCorrupt.Inc()
		os.Remove(path)
		return s.createWAL(path)
	}
	if out.torn || out.corrupt > 0 {
		// The crash contract: a torn or corrupt tail is cut off so it
		// can never be served; everything before it survives.
		s.nTruncated.Add(1)
		mTruncated.Inc()
		if out.corrupt > 0 {
			s.nCorrupt.Add(out.corrupt)
			mCorrupt.Add(out.corrupt)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(out.goodSize); err != nil {
		f.Close()
		return err
	}
	wal.f = f
	wal.size = out.goodSize
	wal.distinct = int64(len(wal.index))
	wal.filter = newBloom(maxInt(len(wal.index), 64))
	for ik := range wal.index {
		wal.filter.add(bloomHashes(ik.ns, ik.key))
	}
	s.wal = wal
	return nil
}

// createWAL writes a fresh active segment holding only the magic.
func (s *Store) createWAL(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	s.wal = &segment{
		path:   path,
		f:      f,
		size:   int64(len(segMagic)),
		index:  make(map[idxKey]recLoc),
		filter: newBloom(64),
	}
	return syncDir(s.opts.Dir)
}

// accountCrossSegmentGarbage charges every record shadowed by a newer
// segment to its own segment's garbage counter, so compaction
// candidates surface immediately after a reopen.
func (s *Store) accountCrossSegmentGarbage() {
	seen := make(map[idxKey]struct{}, len(s.wal.index))
	for ik := range s.wal.index {
		seen[ik] = struct{}{}
	}
	for i := len(s.sealed) - 1; i >= 0; i-- {
		seg := s.sealed[i]
		for ik, loc := range seg.index {
			if _, shadowed := seen[ik]; shadowed {
				seg.garbage += loc.size
			} else {
				seen[ik] = struct{}{}
			}
		}
	}
}

// Get returns the newest stored value for (ns, key).  A tombstone, a
// missing key, and a value that fails its checksum all answer
// ok=false (the last also latches degraded and counts the corrupt
// record); err is reserved for I/O failures.
func (s *Store) Get(ns Namespace, key Key) (val []byte, ok bool, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	ik := idxKey{ns, key}
	loc, seg, scanned, err := s.locate(ik)
	if scanned {
		s.nColdScans.Add(1)
		mColdScans.Inc()
	}
	if err != nil {
		return nil, false, err
	}
	if seg == nil || loc.tombstone {
		s.nMisses.Add(1)
		mMisses.Inc()
		return nil, false, nil
	}
	r, err := readRecordAt(seg.f, loc.off, loc.size)
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			// The disk lied after open.  Never serve it; answer a miss
			// so the caller recomputes.
			s.degraded.Store(true)
			s.nCorrupt.Add(1)
			mCorrupt.Inc()
			s.nMisses.Add(1)
			mMisses.Inc()
			return nil, false, nil
		}
		return nil, false, err
	}
	if r.ns != ns || r.key != key || r.tombstone {
		// An indexed location that decodes to a different record means
		// the index and file disagree — treat as corruption.
		s.degraded.Store(true)
		s.nCorrupt.Add(1)
		mCorrupt.Inc()
		s.nMisses.Add(1)
		mMisses.Inc()
		return nil, false, nil
	}
	s.nHits.Add(1)
	mHits.Inc()
	out := make([]byte, len(r.payload))
	copy(out, r.payload)
	return out, true, nil
}

// Scan visits the newest live record of every key in ns, in no
// particular key order.  Supersede and tombstone semantics match Get:
// a key written twice yields only its newest payload, a tombstoned key
// is skipped.  Records that fail their checksum are skipped (latching
// degraded) rather than aborting the scan — a scan is how a trace
// index rebuilds after a restart, and one rotten record must not erase
// the rest of the history.  fn returning an error stops the scan and
// returns that error; the payload passed to fn is the caller's to
// keep.
//
// The scan holds the store's read lock throughout: appends block until
// it finishes, so it belongs at open/rebuild time and in offline
// tools, not on a request path.
func (s *Store) Scan(ns Namespace, fn func(key Key, payload []byte) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	// Pass 1: resolve each key's newest location, oldest segment first
	// so later segments (and finally the WAL) supersede.
	type winner struct {
		seg *segment
		loc recLoc
	}
	winners := make(map[Key]winner)
	for _, seg := range s.sealed {
		idx, err := seg.reindex()
		if err != nil {
			return err
		}
		for ik, loc := range idx {
			if ik.ns == ns {
				winners[ik.key] = winner{seg, loc}
			}
		}
	}
	for ik, loc := range s.wal.index {
		if ik.ns == ns {
			winners[ik.key] = winner{s.wal, loc}
		}
	}
	// Pass 2: read and verify each winner.
	for key, w := range winners {
		if w.loc.tombstone {
			continue
		}
		r, err := readRecordAt(w.seg.f, w.loc.off, w.loc.size)
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				s.degraded.Store(true)
				s.nCorrupt.Add(1)
				mCorrupt.Inc()
				continue
			}
			return err
		}
		if r.ns != ns || r.key != key || r.tombstone {
			s.degraded.Store(true)
			s.nCorrupt.Add(1)
			mCorrupt.Inc()
			continue
		}
		payload := make([]byte, len(r.payload))
		copy(payload, r.payload)
		if err := fn(key, payload); err != nil {
			return err
		}
	}
	return nil
}

// Has reports whether (ns, key) resolves to a live value, without
// reading the payload (the final checksum pass is skipped, so a Has
// true can still become a Get miss on a rotten disk).
func (s *Store) Has(ns Namespace, key Key) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false, ErrClosed
	}
	loc, seg, scanned, err := s.locate(idxKey{ns, key})
	if scanned {
		s.nColdScans.Add(1)
		mColdScans.Inc()
	}
	if err != nil {
		return false, err
	}
	return seg != nil && !loc.tombstone, nil
}

// locate resolves (ns, key) to the newest record holding it: the WAL
// first, then sealed segments newest→oldest.  seg == nil means the
// key is nowhere.  Caller holds at least the read lock.
func (s *Store) locate(ik idxKey) (recLoc, *segment, bool, error) {
	coldScanned := false
	if loc, ok := s.wal.index[ik]; ok {
		return loc, s.wal, false, nil
	}
	for i := len(s.sealed) - 1; i >= 0; i-- {
		seg := s.sealed[i]
		loc, found, scanned, err := seg.lookup(ik)
		coldScanned = coldScanned || scanned
		if err != nil {
			return recLoc{}, nil, coldScanned, err
		}
		if found {
			return loc, seg, coldScanned, nil
		}
	}
	return recLoc{}, nil, coldScanned, nil
}

// Put stores val under (ns, key), superseding any earlier record.
func (s *Store) Put(ns Namespace, key Key, val []byte) error {
	if len(val) > MaxPayload {
		return fmt.Errorf("store: payload %d bytes exceeds %d cap", len(val), MaxPayload)
	}
	return s.append(&record{ns: ns, key: key, payload: val})
}

// Delete tombstones (ns, key): subsequent Gets miss, and compaction
// eventually drops both the tombstone and the records it shadows.
func (s *Store) Delete(ns Namespace, key Key) error {
	return s.append(&record{ns: ns, key: key, tombstone: true})
}

func (s *Store) append(r *record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	buf := appendRecord(make([]byte, 0, r.size()), r)
	if _, err := s.wal.f.WriteAt(buf, s.wal.size); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if s.opts.SyncEveryPut {
		if err := s.wal.f.Sync(); err != nil {
			return err
		}
	}
	ik := idxKey{r.ns, r.key}
	loc := recLoc{off: s.wal.size, size: r.size(), tombstone: r.tombstone}
	s.wal.size += r.size()
	s.wal.records++
	if old, ok := s.wal.index[ik]; ok {
		s.wal.garbage += old.size
	} else {
		s.wal.distinct++
		// The key is new to the WAL; whatever indexed sealed segment
		// holds it now carries garbage.  Cold segments are skipped —
		// scanning them per put would defeat the demotion — so their
		// garbage is undercounted until compaction or reopen recounts.
		for i := len(s.sealed) - 1; i >= 0; i-- {
			if seg := s.sealed[i]; seg.index != nil {
				if prev, ok := seg.index[ik]; ok {
					seg.garbage += prev.size
					break
				}
			}
		}
	}
	s.wal.index[ik] = loc
	s.wal.filter.add(bloomHashes(r.ns, r.key))
	if r.tombstone {
		s.nDeletes.Add(1)
		mDeletes.Inc()
	} else {
		s.nPuts.Add(1)
		mPuts.Inc()
	}

	if s.wal.size >= s.opts.SegmentBytes {
		if err := s.seal(); err != nil {
			return err
		}
	}
	s.evictOverBudget()
	s.publishGauges()
	return nil
}

// seal turns the WAL into a sealed segment: fsync, atomic rename to
// its NNNNNNNN.seg name, fresh WAL.  Caller holds the write lock.
func (s *Store) seal() error {
	if s.wal.records == 0 {
		return nil
	}
	if err := s.wal.f.Sync(); err != nil {
		return err
	}
	if err := s.wal.f.Close(); err != nil {
		return err
	}
	seq := s.nextSeq
	s.nextSeq++
	sealedPath := filepath.Join(s.opts.Dir, segName(seq))
	if err := os.Rename(s.wal.path, sealedPath); err != nil {
		return err
	}
	if err := syncDir(s.opts.Dir); err != nil {
		return err
	}
	f, err := os.Open(sealedPath)
	if err != nil {
		return err
	}
	sealed := s.wal
	sealed.seq = seq
	sealed.path = sealedPath
	sealed.f = f
	s.sealed = append(s.sealed, sealed)
	mSeals.Inc()

	if err := s.createWAL(filepath.Join(s.opts.Dir, walName)); err != nil {
		return err
	}
	s.enforceIndexBudget()
	s.evictOverBudget()
	s.signalCompact()
	return nil
}

// enforceIndexBudget demotes the oldest indexed sealed segments until
// the resident index fits the key budget.  Caller holds the write
// lock.
func (s *Store) enforceIndexBudget() {
	if s.opts.IndexKeys < 0 {
		return
	}
	total := int64(len(s.wal.index))
	for _, seg := range s.sealed {
		if seg.index != nil {
			total += int64(len(seg.index))
		}
	}
	for _, seg := range s.sealed { // oldest first
		if total <= int64(s.opts.IndexKeys) {
			break
		}
		if seg.index != nil {
			total -= int64(len(seg.index))
			seg.demote()
		}
	}
}

// evictOverBudget drops the oldest sealed segments while the store
// exceeds its byte budget.  Caller holds the write lock.
func (s *Store) evictOverBudget() {
	if s.opts.MaxBytes < 0 {
		return
	}
	for len(s.sealed) > 0 && s.totalBytes() > s.opts.MaxBytes {
		oldest := s.sealed[0]
		s.sealed = s.sealed[1:]
		oldest.close()
		os.Remove(oldest.path)
		s.nEvicted.Add(1)
		mEvicted.Inc()
	}
}

func (s *Store) totalBytes() int64 {
	total := s.wal.size
	for _, seg := range s.sealed {
		total += seg.size
	}
	return total
}

func (s *Store) totalRecords() int64 {
	total := s.wal.records
	for _, seg := range s.sealed {
		total += seg.records
	}
	return total
}

func (s *Store) totalGarbage() int64 {
	total := s.wal.garbage
	for _, seg := range s.sealed {
		total += seg.garbage
	}
	return total
}

func (s *Store) indexedKeys() int64 {
	total := int64(len(s.wal.index))
	for _, seg := range s.sealed {
		if seg.index != nil {
			total += int64(len(seg.index))
		}
	}
	return total
}

// publishGauges pushes the size gauges.  Caller holds a lock.
func (s *Store) publishGauges() {
	gBytes.Set(float64(s.totalBytes()))
	gSegments.Set(float64(len(s.sealed)))
	gRecords.Set(float64(s.totalRecords()))
	gGarbage.Set(float64(s.totalGarbage()))
	gIndexKeys.Set(float64(s.indexedKeys()))
}

// signalCompact nudges the background compactor without blocking.
func (s *Store) signalCompact() {
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
}

// compactor is the background compaction loop: each nudge compacts
// candidate segments until none qualify.
func (s *Store) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.compactCh:
			for {
				n, err := s.compactOnce(s.opts.CompactMinGarbage)
				if err != nil || n == 0 {
					break
				}
			}
		}
	}
}

// Stats is a point-in-time snapshot of the store's state.
type Stats struct {
	Dir      string `json:"dir"`
	Degraded bool   `json:"degraded"`
	// Segments counts sealed segments; the WAL is extra.
	Segments     int   `json:"segments"`
	ColdSegments int   `json:"cold_segments"`
	Bytes        int64 `json:"bytes"`
	WALBytes     int64 `json:"wal_bytes"`
	Records      int64 `json:"records"`
	GarbageBytes int64 `json:"garbage_bytes"`
	IndexedKeys  int64 `json:"indexed_keys"`

	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	Puts            int64 `json:"puts"`
	Deletes         int64 `json:"deletes"`
	ColdScans       int64 `json:"cold_scans"`
	Compactions     int64 `json:"compactions"`
	EvictedSegments int64 `json:"evicted_segments"`
	CorruptRecords  int64 `json:"corrupt_records_skipped"`
	TruncatedTails  int64 `json:"torn_tails_truncated"`
	// LastCompactionUnix is 0 until a compaction completes.
	LastCompactionUnix int64 `json:"last_compaction_unix,omitempty"`
}

// Stats returns the current snapshot.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cold := 0
	for _, seg := range s.sealed {
		if seg.index == nil {
			cold++
		}
	}
	st := Stats{
		Dir:             s.opts.Dir,
		Degraded:        s.degraded.Load(),
		Segments:        len(s.sealed),
		ColdSegments:    cold,
		Bytes:           s.totalBytes(),
		WALBytes:        s.wal.size,
		Records:         s.totalRecords(),
		GarbageBytes:    s.totalGarbage(),
		IndexedKeys:     s.indexedKeys(),
		Hits:            s.nHits.Load(),
		Misses:          s.nMisses.Load(),
		Puts:            s.nPuts.Load(),
		Deletes:         s.nDeletes.Load(),
		ColdScans:       s.nColdScans.Load(),
		Compactions:     s.nCompactions.Load(),
		EvictedSegments: s.nEvicted.Load(),
		CorruptRecords:  s.nCorrupt.Load(),
		TruncatedTails:  s.nTruncated.Load(),
	}
	if !s.lastCompaction.IsZero() {
		st.LastCompactionUnix = s.lastCompaction.Unix()
	}
	return st
}

// Sync flushes the WAL to disk.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.wal.f.Sync()
}

// Close flushes the WAL, stops the background compactor, and closes
// every file.  The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.wal.f.Sync()
	s.closed = true
	s.mu.Unlock()

	close(s.done)
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeAll()
	return err
}

// closeAll closes every open file handle.  Caller holds the write
// lock (or owns the store exclusively during a failed Open).
func (s *Store) closeAll() {
	if s.wal != nil {
		s.wal.close()
	}
	for _, seg := range s.sealed {
		seg.close()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
