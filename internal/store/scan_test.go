package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func scanAll(t *testing.T, s *Store, ns Namespace) map[Key][]byte {
	t.Helper()
	out := make(map[Key][]byte)
	if err := s.Scan(ns, func(key Key, payload []byte) error {
		if _, dup := out[key]; dup {
			t.Fatalf("Scan yielded key %x twice", key[:8])
		}
		out[key] = payload
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return out
}

func TestScanNamespaceIsolationAndSupersede(t *testing.T) {
	s := openTest(t, Options{})
	for i := 0; i < 20; i++ {
		mustPut(t, s, NSTrace, i)
	}
	for i := 0; i < 5; i++ {
		mustPut(t, s, NSResult, 100+i)
	}
	// Overwrite: only the newest version may surface.
	if err := s.Put(NSTrace, testKey(3), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// Tombstone: deleted keys never surface.
	if err := s.Delete(NSTrace, testKey(7)); err != nil {
		t.Fatal(err)
	}

	got := scanAll(t, s, NSTrace)
	if len(got) != 19 {
		t.Fatalf("scanned %d keys, want 19", len(got))
	}
	if _, ok := got[testKey(7)]; ok {
		t.Fatal("tombstoned key surfaced in Scan")
	}
	if v := got[testKey(3)]; string(v) != "v2" {
		t.Fatalf("superseded key yielded %q, want v2", v)
	}
	for i := 0; i < 20; i++ {
		if i == 3 || i == 7 {
			continue
		}
		if !bytes.Equal(got[testKey(i)], testVal(i)) {
			t.Fatalf("key %d: payload %q, want %q", i, got[testKey(i)], testVal(i))
		}
	}
	// The other namespace is untouched by the NSTrace scan and scans
	// independently.
	if other := scanAll(t, s, NSResult); len(other) != 5 {
		t.Fatalf("NSResult scan saw %d keys, want 5", len(other))
	}
}

func TestScanSpansSealedSegmentsAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir, SegmentBytes: 1 << 10})
	for i := 0; i < 80; i++ {
		mustPut(t, s, NSTrace, i)
	}
	if st := s.Stats(); st.Segments == 0 {
		t.Fatalf("test needs sealed segments, got %+v", st)
	}
	if got := scanAll(t, s, NSTrace); len(got) != 80 {
		t.Fatalf("live store: scanned %d, want 80", len(got))
	}
	s.Close()

	// Reopened store: sealed segments are cold (index dropped), so
	// Scan must reindex them on the fly.
	s2 := openTest(t, Options{Dir: dir, SegmentBytes: 1 << 10})
	got := scanAll(t, s2, NSTrace)
	if len(got) != 80 {
		t.Fatalf("reopened store: scanned %d, want 80", len(got))
	}
	for i := 0; i < 80; i++ {
		if !bytes.Equal(got[testKey(i)], testVal(i)) {
			t.Fatalf("key %d payload mismatch after reopen", i)
		}
	}
}

func TestScanSkipsCorruptRecordsAndDegrades(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir, SegmentBytes: 1 << 10})
	for i := 0; i < 60; i++ {
		mustPut(t, s, NSTrace, i)
	}
	s.Close()

	names, _, err := listSegments(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("listSegments: %v %v", names, err)
	}
	path := filepath.Join(dir, names[0])
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, Options{Dir: dir, SegmentBytes: 1 << 10})
	got := scanAll(t, s2, NSTrace)
	if len(got) >= 60 {
		t.Fatalf("scan of a corrupted store yielded all %d records", len(got))
	}
	// Whatever did surface must be byte-exact; the corrupt record is
	// skipped, not served mangled.
	for i := 0; i < 60; i++ {
		if v, ok := got[testKey(i)]; ok && !bytes.Equal(v, testVal(i)) {
			t.Fatalf("scan served mangled payload for key %d", i)
		}
	}
	if st := s2.Stats(); !st.Degraded {
		t.Fatal("scan over corruption did not latch degraded")
	}
}

func TestScanPropagatesCallbackError(t *testing.T) {
	s := openTest(t, Options{})
	for i := 0; i < 10; i++ {
		mustPut(t, s, NSTrace, i)
	}
	sentinel := errors.New("stop here")
	calls := 0
	err := s.Scan(NSTrace, func(Key, []byte) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the callback's sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after returning an error", calls)
	}
}

func TestScanEmptyAndClosed(t *testing.T) {
	s := openTest(t, Options{})
	if got := scanAll(t, s, NSTrace); len(got) != 0 {
		t.Fatalf("empty store scan yielded %d keys", len(got))
	}
	s.Close()
	err := s.Scan(NSTrace, func(Key, []byte) error { return nil })
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("scan after Close: err = %v, want ErrClosed", err)
	}
}

func TestScanPayloadIsACopy(t *testing.T) {
	// Scan hands the callback its own copy: mutating it must not
	// poison a later Get of the same key.
	s := openTest(t, Options{})
	mustPut(t, s, NSTrace, 1)
	if err := s.Scan(NSTrace, func(_ Key, payload []byte) error {
		for i := range payload {
			payload[i] = 0xAA
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	mustGet(t, s, NSTrace, 1)
}
