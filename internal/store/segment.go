package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A segment is one log file.  The store holds exactly one active
// segment (the WAL, `active.wal`, append target) and any number of
// sealed segments (`NNNNNNNN.seg`, immutable).  Sealing is
// write-temp-then-rename: the WAL is fsynced and atomically renamed
// to its sealed name, so a sealed segment is either fully present
// under its final name or still the WAL — never half of each.
type segment struct {
	seq  uint64 // position in the log order; higher = newer
	path string
	f    *os.File
	size int64

	// index maps (ns, key) → the segment's LAST record for that key.
	// nil on a demoted ("cold") segment: lookups then go through the
	// bloom filter and, on a maybe, a file scan.  The active segment
	// is never demoted.
	index map[idxKey]recLoc
	// filter is the segment's Bloom filter over every (ns, key) it
	// contains.  Built incrementally on the active segment so sealing
	// costs nothing; rebuilt from the open-time scan for sealed ones.
	filter *bloom

	// records counts log records in the file; distinct counts index
	// entries (kept when the index is demoted).
	records  int64
	distinct int64
	// garbage accumulates the encoded bytes of records superseded by
	// later writes or tombstones; compaction candidates are picked by
	// garbage/size ratio.
	garbage int64
}

// idxKey is the full lookup key: namespace byte + content address.
type idxKey struct {
	ns  Namespace
	key Key
}

// recLoc locates one record inside its segment.
type recLoc struct {
	off       int64 // record start offset (including header)
	size      int64 // full encoded size
	tombstone bool
}

const (
	walName = "active.wal"
	segExt  = ".seg"
	tmpExt  = ".tmp"
)

func segName(seq uint64) string { return fmt.Sprintf("%08d%s", seq, segExt) }

// parseSegSeq extracts the sequence number from a sealed segment file
// name; ok is false for anything that is not NNNNNNNN.seg.
func parseSegSeq(name string) (uint64, bool) {
	base := strings.TrimSuffix(name, segExt)
	if base == name || len(base) == 0 {
		return 0, false
	}
	seq, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the sealed segment files under dir in log
// order (oldest first) and removes leftover temporaries from an
// interrupted seal or compaction.
func listSegments(dir string) ([]string, []uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type nameSeq struct {
		name string
		seq  uint64
	}
	var segs []nameSeq
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, tmpExt) {
			// A crash mid-compaction leaves a .tmp; the rename never
			// happened, so the file is dead weight.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if seq, ok := parseSegSeq(name); ok {
			segs = append(segs, nameSeq{name, seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	names := make([]string, len(segs))
	seqs := make([]uint64, len(segs))
	for i, s := range segs {
		names[i], seqs[i] = s.name, s.seq
	}
	return names, seqs, nil
}

// scanOutcome summarizes one segment scan.
type scanOutcome struct {
	// goodSize is the byte offset just past the last valid record.
	goodSize int64
	// corrupt is 1 when a record failed validation mid-file (a corrupt
	// length field forbids resynchronizing, so the unknown remainder
	// is abandoned and counted once).
	corrupt int64
	// torn reports that the file ended mid-record (crash signature).
	torn bool
}

// scanBytes replays every valid record of a segment image into visit
// (in log order).  It stops at the first record that fails
// validation: a short tail is reported as torn (the caller truncates
// a WAL, tolerates a sealed file), and a checksum/shape failure as
// corrupt.  The CRC guarantees nothing invalid is ever replayed.
func scanBytes(buf []byte, visit func(r *record, off, size int64)) (scanOutcome, error) {
	if len(buf) < len(segMagic) || string(buf[:len(segMagic)]) != segMagic {
		return scanOutcome{}, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	out := scanOutcome{goodSize: int64(len(segMagic))}
	off := int64(len(buf[:len(segMagic)]))
	for off < int64(len(buf)) {
		r, n, err := decodeRecord(buf[off:])
		if err != nil {
			if errors.Is(err, errShort) {
				out.torn = true
			} else {
				out.corrupt = 1
			}
			return out, nil
		}
		visit(r, off, n)
		off += n
		out.goodSize = off
	}
	return out, nil
}

// scanFile is scanBytes over a whole file read into memory.  Cold
// lookups and compaction use it instead of seeking a shared fd, so
// concurrent readers never race on a file offset.
func scanFile(path string, visit func(r *record, off, size int64)) (scanOutcome, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return scanOutcome{}, err
	}
	return scanBytes(buf, visit)
}

// loadSegment opens and scans one sealed segment, building its
// in-memory index and bloom filter.  Corruption inside a sealed
// segment cannot be truncated away (the file is immutable and records
// after the bad region are unreachable); the valid prefix is served
// and the store marks itself degraded.
func loadSegment(path string, seq uint64) (*segment, int64, error) {
	seg := &segment{seq: seq, path: path, index: make(map[idxKey]recLoc)}
	out, err := scanFile(path, func(r *record, off, size int64) {
		seg.records++
		ik := idxKey{r.ns, r.key}
		if old, ok := seg.index[ik]; ok {
			seg.garbage += old.size
		}
		seg.index[ik] = recLoc{off: off, size: size, tombstone: r.tombstone}
	})
	if err != nil {
		return nil, 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	seg.f = f
	seg.size = out.goodSize
	seg.distinct = int64(len(seg.index))
	seg.filter = newBloom(len(seg.index))
	for ik := range seg.index {
		seg.filter.add(bloomHashes(ik.ns, ik.key))
	}
	corrupt := out.corrupt
	if out.torn {
		// A sealed segment should never be torn (sealing syncs before
		// the rename); treat a torn tail in one as corruption too.
		corrupt++
	}
	return seg, corrupt, nil
}

// lookup resolves a key inside this segment: via the index when
// resident, else bloom filter + file scan.  found=false means the
// segment definitively does not hold the key (and the caller probes
// the next-older segment).  scanned reports that the cold path
// touched the disk, for the metrics.
func (s *segment) lookup(ik idxKey) (loc recLoc, found bool, scanned bool, err error) {
	if s.index != nil {
		loc, found = s.index[ik]
		return loc, found, false, nil
	}
	if !s.filter.mayContain(bloomHashes(ik.ns, ik.key)) {
		return recLoc{}, false, false, nil
	}
	// Cold segment, bloom maybe: scan for the LAST record matching the
	// key (later appends supersede).  Bloom false positives land here
	// too; they scan and find nothing.
	_, err = scanFile(s.path, func(r *record, off, size int64) {
		if r.ns == ik.ns && r.key == ik.key {
			loc = recLoc{off: off, size: size, tombstone: r.tombstone}
			found = true
		}
	})
	if err != nil {
		return recLoc{}, false, true, err
	}
	return loc, found, true, nil
}

// reindex rebuilds a demoted segment's index map (compaction needs
// exact membership, not bloom maybes).  The result is returned rather
// than installed so the segment stays cold.
func (s *segment) reindex() (map[idxKey]recLoc, error) {
	if s.index != nil {
		return s.index, nil
	}
	m := make(map[idxKey]recLoc, s.distinct)
	_, err := scanFile(s.path, func(r *record, off, size int64) {
		m[idxKey{r.ns, r.key}] = recLoc{off: off, size: size, tombstone: r.tombstone}
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// demote drops the segment's index map, keeping the bloom filter: the
// segment's keys stop costing index memory and misses still skip it
// in O(1).
func (s *segment) demote() {
	s.index = nil
}

func (s *segment) close() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
