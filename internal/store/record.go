package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The on-disk record codec.  Every segment file is the magic header
// followed by a sequence of records:
//
//	kind(1) ns(1) payloadLen(4 LE) key(32) payload(payloadLen) crc(4 LE)
//
// The CRC-32C checksum covers everything before it (kind, namespace,
// length, key, payload), so a torn or bit-rotten record — including a
// length field pointing past the true payload — fails verification
// instead of being served.  Records are immutable once written; a key
// written again later in the log supersedes every earlier record for
// it, and a tombstone (kindTombstone, zero payload) supersedes with
// "deleted".

const (
	// segMagic opens every segment file (WAL and sealed alike); a file
	// without it is rejected wholesale rather than scanned.
	segMagic = "MAESTST1"

	kindPut       = 1
	kindTombstone = 2

	// recHeaderLen is kind+ns+payloadLen, the fixed prefix before the key.
	recHeaderLen = 1 + 1 + 4
	// recOverhead is everything but the payload.
	recOverhead = recHeaderLen + KeyLen + crcLen
	crcLen      = 4

	// MaxPayload bounds one record's payload.  The estimate and
	// congestion documents the serving layer stores are kilobytes; the
	// cap exists so a corrupt length field cannot demand a giant
	// allocation during a scan.
	MaxPayload = 16 << 20
)

// KeyLen is the content-address width: SHA-256, matching the plan and
// result keys the engine and serving layer already mint.
const KeyLen = 32

// Key is one content address.
type Key = [KeyLen]byte

// Namespace separates the key spaces sharing one store.  The engine's
// content addresses are already domain-separated by construction
// (plan hashes, estimate keys, and congestion keys hash different
// canonical renderings), but the namespace byte makes the separation
// structural: a congestion record can never be decoded as an estimate.
type Namespace byte

const (
	// NSResult holds serialized estimate results (serve.CacheKey keyed).
	NSResult Namespace = 1
	// NSCongest holds serialized congestion maps (serve.CongestKey keyed).
	NSCongest Namespace = 2
	// NSPlanMeta holds compiled-plan metadata (engine.PlanHash keyed).
	NSPlanMeta Namespace = 3
	// NSTrace holds sampled request traces (obs.EncodeTrace payloads),
	// keyed by trace id (16 bytes) + span id (8 bytes) + zero padding —
	// one record per hop, so a distributed trace's hops share a key
	// prefix and stitch back together on read.
	NSTrace Namespace = 4
	// NSFloorplan holds finished floorplan job records (serve job-id
	// keyed: the SHA-256 of the canonical request content), so a
	// completed plan survives a server restart and GET /v1/jobs/{id}
	// can rehydrate it from disk.
	NSFloorplan Namespace = 5
)

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a record (or segment header) that failed
// structural validation or its checksum.  Scanners use it to decide
// between truncating a torn WAL tail and skipping a rotten sealed
// region.
var ErrCorrupt = errors.New("store: corrupt record")

// errShort marks a record cut off by the end of the file: not enough
// bytes remain for the shape its header promises.  A short final
// record is the signature of a crash mid-append.
var errShort = errors.New("store: short record")

// record is one decoded log entry.
type record struct {
	ns        Namespace
	key       Key
	payload   []byte
	tombstone bool
}

// size returns the record's encoded length in bytes.
func (r *record) size() int64 { return int64(recOverhead + len(r.payload)) }

// appendRecord encodes r onto buf and returns the extended slice.
func appendRecord(buf []byte, r *record) []byte {
	start := len(buf)
	kind := byte(kindPut)
	if r.tombstone {
		kind = kindTombstone
	}
	buf = append(buf, kind, byte(r.ns))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.payload)))
	buf = append(buf, r.key[:]...)
	buf = append(buf, r.payload...)
	crc := crc32.Checksum(buf[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// decodeRecord decodes one record from the front of b, returning the
// record and its encoded size.  Errors:
//
//   - errShort: b ends before the record does (a torn final append)
//   - ErrCorrupt: the shape is invalid (unknown kind, oversized or
//     non-empty-tombstone length) or the checksum fails
//
// The returned payload aliases b; callers that outlive b must copy.
func decodeRecord(b []byte) (*record, int64, error) {
	if len(b) < recOverhead {
		return nil, 0, errShort
	}
	kind := b[0]
	ns := Namespace(b[1])
	payLen := binary.LittleEndian.Uint32(b[2:6])
	switch kind {
	case kindPut:
	case kindTombstone:
		if payLen != 0 {
			return nil, 0, fmt.Errorf("%w: tombstone with %d payload bytes", ErrCorrupt, payLen)
		}
	default:
		return nil, 0, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
	if payLen > MaxPayload {
		return nil, 0, fmt.Errorf("%w: payload length %d exceeds cap", ErrCorrupt, payLen)
	}
	total := recOverhead + int(payLen)
	if len(b) < total {
		return nil, 0, errShort
	}
	want := binary.LittleEndian.Uint32(b[total-crcLen : total])
	if crc32.Checksum(b[:total-crcLen], castagnoli) != want {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := &record{ns: ns, tombstone: kind == kindTombstone}
	copy(r.key[:], b[recHeaderLen:recHeaderLen+KeyLen])
	r.payload = b[recHeaderLen+KeyLen : total-crcLen]
	return r, int64(total), nil
}

// readRecordAt reads and CRC-verifies the record of known encoded
// size at off.  Every disk read in the store goes through here, so
// bit rot after open is caught at serve time, not just at scan time.
func readRecordAt(f io.ReaderAt, off, size int64) (*record, error) {
	if size < recOverhead || size > recOverhead+MaxPayload {
		return nil, fmt.Errorf("%w: implausible record size %d", ErrCorrupt, size)
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("store: read record: %w", err)
	}
	r, n, err := decodeRecord(buf)
	if err != nil {
		return nil, err
	}
	if n != size {
		return nil, fmt.Errorf("%w: record size %d, indexed %d", ErrCorrupt, n, size)
	}
	return r, nil
}
