package netlist

import (
	"fmt"
	"sort"

	"maest/internal/geom"
	"maest/internal/tech"
)

// Stats gathers exactly the quantities §4 of the paper parameterizes
// the estimator with:
//
//	N   the number of devices
//	H   the number of (routable, D ≥ 2) nets
//	Wᵢ  the width of each distinct device type
//	Xᵢ  the number of devices sharing that width
//	yᵢ  the number of nets having i components
//
// plus the derived averages W_avg (Eq. 1) and H_avg, total exact
// device area, and the port count that drives the §5 aspect-ratio
// control criterion.
type Stats struct {
	// CircuitName records which module the stats describe.
	CircuitName string
	// N is the device count.
	N int
	// H is the number of routable nets: nets connecting at least two
	// distinct devices.  Single-pin nets carry no interconnect and
	// are excluded (counted in DegenerateNets instead).
	H int
	// DegenerateNets counts nets with fewer than two distinct
	// devices.
	DegenerateNets int
	// NumPorts is the number of external I/O ports.
	NumPorts int
	// WidthCount maps each distinct device width Wᵢ to its
	// multiplicity Xᵢ.
	WidthCount map[geom.Lambda]int
	// DegreeCount maps each net component count D to yᵢ, the number
	// of nets with that many components.  Only D ≥ 2 appears.
	DegreeCount map[int]int
	// MaxDegree is the largest net component count (0 when H = 0).
	MaxDegree int
	// ExactDeviceArea is Σ width×height over devices, in λ².
	ExactDeviceArea geom.Area
	// SumWidth and SumHeight accumulate device dimensions for the
	// average-device model of §4.2.
	SumWidth, SumHeight geom.Lambda
}

// AvgWidth returns W_avg = Σ XᵢWᵢ / N (Eq. 1) as a float to avoid
// compounding rounding before it enters the area formulas.
func (s *Stats) AvgWidth() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.SumWidth) / float64(s.N)
}

// AvgHeight returns h_avg, the average device height used by the
// Full-Custom average-area mode (Eq. 13).
func (s *Stats) AvgHeight() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.SumHeight) / float64(s.N)
}

// AvgDeviceArea returns W_avg × h_avg in λ².
func (s *Stats) AvgDeviceArea() float64 { return s.AvgWidth() * s.AvgHeight() }

// Degrees returns the distinct net component counts in ascending
// order, for deterministic iteration over yᵢ.
func (s *Stats) Degrees() []int {
	ds := make([]int, 0, len(s.DegreeCount))
	for d := range s.DegreeCount {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	return ds
}

// Widths returns the distinct device widths in ascending order.
func (s *Stats) Widths() []geom.Lambda {
	ws := make([]geom.Lambda, 0, len(s.WidthCount))
	for w := range s.WidthCount {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	return ws
}

// Gather scans the circuit against the process database, resolving
// device dimensions, and returns the estimator inputs.  It fails if a
// device instance references a type the process cannot fabricate —
// the schematic and process database are the estimator's two input
// files (Fig. 1), and a mismatch between them is a user error worth
// reporting precisely.
func Gather(c *Circuit, p *tech.Process) (*Stats, error) {
	s := &Stats{
		CircuitName: c.Name,
		N:           len(c.Devices),
		NumPorts:    len(c.Ports),
		WidthCount:  map[geom.Lambda]int{},
		DegreeCount: map[int]int{},
	}
	for _, dev := range c.Devices {
		dt, err := p.Device(dev.Type)
		if err != nil {
			return nil, fmt.Errorf("netlist: device %q: %w", dev.Name, err)
		}
		s.WidthCount[dt.Width]++
		s.SumWidth += dt.Width
		s.SumHeight += dt.Height
		s.ExactDeviceArea += dt.Area()
	}
	for _, n := range c.Nets {
		d := n.Degree()
		if d < 2 {
			s.DegenerateNets++
			continue
		}
		s.H++
		s.DegreeCount[d]++
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	return s, nil
}

// DeviceDims resolves the width/height of every device instance in
// order; the layout engines use it to avoid re-resolving types per
// operation.
func DeviceDims(c *Circuit, p *tech.Process) ([]geom.Lambda, []geom.Lambda, error) {
	ws := make([]geom.Lambda, len(c.Devices))
	hs := make([]geom.Lambda, len(c.Devices))
	for i, dev := range c.Devices {
		dt, err := p.Device(dev.Type)
		if err != nil {
			return nil, nil, fmt.Errorf("netlist: device %q: %w", dev.Name, err)
		}
		ws[i] = dt.Width
		hs[i] = dt.Height
	}
	return ws, hs, nil
}
