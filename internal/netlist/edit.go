package netlist

// This file is the mutation support behind the engine's ECO edit
// algebra (engine.Edit / Plan.Delta): a deep Clone plus a small set of
// structural mutators that preserve every invariant the Builder
// establishes — contiguous Index fields, interning maps (when
// present), distinct Net.Devices lists in first-connection order, and
// PinCount accounting.  The estimator's incremental re-compilation edits a
// *clone* of a compiled circuit, never the original (a compiled Plan
// shares its circuit, so mutating it in place would corrupt the Plan).
//
// One invariant matters beyond bookkeeping: every net of a valid
// circuit is reachable from its canonical rendering (it carries a
// device pin or a port), so a circuit's canonical form determines its
// statistics.  The mutators preserve it by pruning nets that end up
// with no pins and no ports, and by refusing to create dangling nets.

import "fmt"

// Clone returns a deep copy of the circuit: fresh Device/Net/Port
// values with all cross-references rewired into the copy.  Element
// order — and therefore the canonical rendering, the gathered
// statistics, and every float-summation order downstream — is
// preserved exactly.  Cross-references are rewired through the
// contiguous Index fields (not pointer maps), the element structs
// come from three bulk allocations, and the by-name indexes are left
// nil (lookups scan) — Clone runs once per ECO edit, so its constant
// factors are the incremental path's floor.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{
		Name:    c.Name,
		Devices: make([]*Device, len(c.Devices)),
		Nets:    make([]*Net, len(c.Nets)),
		Ports:   make([]*Port, len(c.Ports)),
		// The by-name maps stay nil: lookups scan (see Circuit), which
		// is far cheaper per edit script than three map rebuilds.
	}
	// netOf/devOf map an original element's Index to its copy; Index
	// values are dense in [0, len) by the Builder/mutator invariant.
	netOf := make([]*Net, len(c.Nets))
	netArr := make([]Net, len(c.Nets))
	for i, n := range c.Nets {
		cp := &netArr[i]
		cp.Index, cp.Name, cp.PinCount = n.Index, n.Name, n.PinCount
		out.Nets[i] = cp
		netOf[n.Index] = cp
	}
	devOf := make([]*Device, len(c.Devices))
	devArr := make([]Device, len(c.Devices))
	// One arena per cross-reference kind instead of a slice per
	// element; sub-slices are carved full-capacity so a later append
	// (ConnectPin adding a pin) copies out instead of clobbering a
	// neighbor.
	totalPins, totalOnNet := 0, 0
	for _, d := range c.Devices {
		totalPins += len(d.Pins)
	}
	for _, n := range c.Nets {
		totalOnNet += len(n.Devices)
	}
	pinArena := make([]*Net, totalPins)
	onNetArena := make([]*Device, totalOnNet)
	for i, d := range c.Devices {
		cp := &devArr[i]
		cp.Index, cp.Name, cp.Type = d.Index, d.Name, d.Type
		if d.Pins != nil {
			cp.Pins = pinArena[:len(d.Pins):len(d.Pins)]
			pinArena = pinArena[len(d.Pins):]
			for j, p := range d.Pins {
				if p != nil {
					cp.Pins[j] = netOf[p.Index]
				}
			}
		}
		out.Devices[i] = cp
		devOf[d.Index] = cp
	}
	for i, n := range c.Nets {
		cp := out.Nets[i]
		if n.Devices != nil {
			cp.Devices = onNetArena[:len(n.Devices):len(n.Devices)]
			onNetArena = onNetArena[len(n.Devices):]
			for j, d := range n.Devices {
				cp.Devices[j] = devOf[d.Index]
			}
		}
	}
	portArr := make([]Port, len(c.Ports))
	for i, p := range c.Ports {
		cp := &portArr[i]
		cp.Name, cp.Dir = p.Name, p.Dir
		if p.Net != nil {
			cp.Net = netOf[p.Net.Index]
		}
		out.Ports[i] = cp
		if cp.Net != nil {
			cp.Net.Ports = append(cp.Net.Ports, cp)
		}
	}
	return out
}

// editErr wraps structural-edit failures under ErrInvalidCircuit so
// callers dispatching on errors.Is treat a bad edit exactly like a bad
// source netlist.
func editErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidCircuit, fmt.Sprintf(format, args...))
}

// internNet returns the named net, creating (and appending) it when
// absent.
func (c *Circuit) internNet(name string) *Net {
	if n := c.NetByName(name); n != nil {
		return n
	}
	n := &Net{Index: len(c.Nets), Name: name}
	c.Nets = append(c.Nets, n)
	if c.netByName != nil {
		c.netByName[name] = n
	}
	return n
}

// AddDevice appends an instance of the given type connected to the
// named nets in pin order, creating nets as needed (Builder.AddDevice
// semantics: an empty net name leaves that pin unconnected).
func (c *Circuit) AddDevice(name, typ string, netNames ...string) (*Device, error) {
	if name == "" {
		return nil, editErr("empty device name")
	}
	if typ == "" {
		return nil, editErr("device %q: empty type", name)
	}
	if c.DeviceByName(name) != nil {
		return nil, editErr("duplicate device %q", name)
	}
	d := &Device{Index: len(c.Devices), Name: name, Type: typ}
	for _, netName := range netNames {
		if netName == "" {
			d.Pins = append(d.Pins, nil)
			continue
		}
		n := c.internNet(netName)
		d.Pins = append(d.Pins, n)
		n.PinCount++
		if !containsDevice(n.Devices, d) {
			n.Devices = append(n.Devices, d)
		}
	}
	c.Devices = append(c.Devices, d)
	if c.deviceByName != nil {
		c.deviceByName[name] = d
	}
	return d, nil
}

// RemoveDevice deletes the named instance and every pin it
// contributed.  Nets left with no pins and no ports are pruned (they
// would be invisible to the canonical rendering otherwise); nets kept
// alive by other devices or by ports survive with reduced degree.
func (c *Circuit) RemoveDevice(name string) error {
	d := c.DeviceByName(name)
	if d == nil {
		return editErr("unknown device %q", name)
	}
	if len(c.Devices) == 1 {
		return editErr("removing device %q would empty module %q", name, c.Name)
	}
	for _, n := range d.Pins {
		if n == nil {
			continue
		}
		n.PinCount--
	}
	for _, n := range distinctNets(d.Pins) {
		n.Devices = removeDevice(n.Devices, d)
	}
	c.Devices = append(c.Devices[:d.Index], c.Devices[d.Index+1:]...)
	if c.deviceByName != nil {
		delete(c.deviceByName, name)
	}
	for i := d.Index; i < len(c.Devices); i++ {
		c.Devices[i].Index = i
	}
	c.pruneNets(distinctNets(d.Pins))
	return nil
}

// AddNet creates a new net connecting the named devices, appending one
// pin per listed device (a device listed twice gains two pins but
// counts once toward the degree).  At least one device is required — a
// pinless, portless net would be dangling.
func (c *Circuit) AddNet(name string, deviceNames ...string) (*Net, error) {
	if name == "" {
		return nil, editErr("empty net name")
	}
	if c.NetByName(name) != nil {
		return nil, editErr("duplicate net %q", name)
	}
	if len(deviceNames) == 0 {
		return nil, editErr("net %q would be dangling (no devices)", name)
	}
	devs := make([]*Device, len(deviceNames))
	for i, dn := range deviceNames {
		d := c.DeviceByName(dn)
		if d == nil {
			return nil, editErr("net %q: unknown device %q", name, dn)
		}
		devs[i] = d
	}
	n := c.internNet(name)
	for _, d := range devs {
		d.Pins = append(d.Pins, n)
		n.PinCount++
		if !containsDevice(n.Devices, d) {
			n.Devices = append(n.Devices, d)
		}
	}
	return n, nil
}

// RemoveNet deletes the named net and every device pin on it.  A net
// reaching a module port cannot be removed (the port would dangle);
// disconnect its pins instead.
func (c *Circuit) RemoveNet(name string) error {
	n := c.NetByName(name)
	if n == nil {
		return editErr("unknown net %q", name)
	}
	if n.External() {
		return editErr("net %q carries %d port(s); remove the ports first", name, len(n.Ports))
	}
	for _, d := range n.Devices {
		d.Pins = removePinsOn(d.Pins, n)
	}
	c.deleteNet(n)
	return nil
}

// ConnectPin adds one pin connecting the named device to the named
// net, creating the net when absent — the degree-raising half of a
// "change net degree" edit.
func (c *Circuit) ConnectPin(device, net string) error {
	d := c.DeviceByName(device)
	if d == nil {
		return editErr("unknown device %q", device)
	}
	if net == "" {
		return editErr("device %q: empty net name", device)
	}
	n := c.internNet(net)
	d.Pins = append(d.Pins, n)
	n.PinCount++
	if !containsDevice(n.Devices, d) {
		n.Devices = append(n.Devices, d)
	}
	return nil
}

// DisconnectPin removes the named device's last pin on the named net —
// the degree-lowering half of a "change net degree" edit.  When that
// was the device's only pin on the net, the device leaves the net's
// component list; a net left with no pins and no ports is pruned.
func (c *Circuit) DisconnectPin(device, net string) error {
	d := c.DeviceByName(device)
	if d == nil {
		return editErr("unknown device %q", device)
	}
	n := c.NetByName(net)
	if n == nil {
		return editErr("unknown net %q", net)
	}
	at := -1
	for i := len(d.Pins) - 1; i >= 0; i-- {
		if d.Pins[i] == n {
			at = i
			break
		}
	}
	if at < 0 {
		return editErr("device %q has no pin on net %q", device, net)
	}
	d.Pins = append(d.Pins[:at], d.Pins[at+1:]...)
	n.PinCount--
	if !pinsContain(d.Pins, n) {
		n.Devices = removeDevice(n.Devices, d)
	}
	c.pruneNets([]*Net{n})
	return nil
}

// pruneNets drops every listed net that ended up with no pins and no
// ports, preserving the order (and reindexing) of the survivors.
func (c *Circuit) pruneNets(nets []*Net) {
	for _, n := range nets {
		if n.PinCount == 0 && !n.External() {
			c.deleteNet(n)
		}
	}
}

// deleteNet removes one net from the slice and interning map,
// reindexing the nets behind it.
func (c *Circuit) deleteNet(n *Net) {
	c.Nets = append(c.Nets[:n.Index], c.Nets[n.Index+1:]...)
	if c.netByName != nil {
		delete(c.netByName, n.Name)
	}
	for i := n.Index; i < len(c.Nets); i++ {
		c.Nets[i].Index = i
	}
}

// distinctNets returns the non-nil distinct nets of a pin list, in
// first-appearance order.
func distinctNets(pins []*Net) []*Net {
	var out []*Net
	for _, n := range pins {
		if n == nil {
			continue
		}
		seen := false
		for _, m := range out {
			if m == n {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, n)
		}
	}
	return out
}

// removeDevice deletes one device from a component list, preserving
// the order of the rest.
func removeDevice(ds []*Device, d *Device) []*Device {
	for i, x := range ds {
		if x == d {
			return append(ds[:i], ds[i+1:]...)
		}
	}
	return ds
}

// removePinsOn deletes every pin referencing the net, preserving the
// order (and nil pins) of the rest.
func removePinsOn(pins []*Net, n *Net) []*Net {
	out := pins[:0]
	for _, p := range pins {
		if p != n {
			out = append(out, p)
		}
	}
	return out
}

// pinsContain reports whether any pin references the net.
func pinsContain(pins []*Net, n *Net) bool {
	for _, p := range pins {
		if p == n {
			return true
		}
	}
	return false
}
