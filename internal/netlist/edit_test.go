package netlist

import (
	"errors"
	"testing"
)

// checkInvariants verifies everything the Builder establishes and the
// mutators promise to preserve: contiguous indices, consistent name
// lookup (through the interning maps when present, scans otherwise),
// PinCount accounting, distinct component lists, and no dangling
// (pinless, portless) nets.
func checkInvariants(t *testing.T, c *Circuit) {
	t.Helper()
	for i, d := range c.Devices {
		if d.Index != i {
			t.Fatalf("device %q index %d at position %d", d.Name, d.Index, i)
		}
		if c.DeviceByName(d.Name) != d {
			t.Fatalf("device %q does not resolve to itself", d.Name)
		}
	}
	if c.deviceByName != nil && len(c.deviceByName) != len(c.Devices) {
		t.Fatalf("%d interned devices, %d listed", len(c.deviceByName), len(c.Devices))
	}
	pinCount := map[*Net]int{}
	onNet := map[*Net]map[*Device]bool{}
	for _, d := range c.Devices {
		for _, n := range d.Pins {
			if n == nil {
				continue
			}
			pinCount[n]++
			if onNet[n] == nil {
				onNet[n] = map[*Device]bool{}
			}
			onNet[n][d] = true
		}
	}
	for i, n := range c.Nets {
		if n.Index != i {
			t.Fatalf("net %q index %d at position %d", n.Name, n.Index, i)
		}
		if c.NetByName(n.Name) != n {
			t.Fatalf("net %q does not resolve to itself", n.Name)
		}
		if n.PinCount != pinCount[n] {
			t.Fatalf("net %q PinCount %d, actual pins %d", n.Name, n.PinCount, pinCount[n])
		}
		if len(n.Devices) != len(onNet[n]) {
			t.Fatalf("net %q lists %d components, actual %d", n.Name, len(n.Devices), len(onNet[n]))
		}
		for _, d := range n.Devices {
			if !onNet[n][d] {
				t.Fatalf("net %q lists component %q without a pin", n.Name, d.Name)
			}
		}
		if n.PinCount == 0 && !n.External() {
			t.Fatalf("net %q is dangling (no pins, no ports)", n.Name)
		}
	}
	if c.netByName != nil && len(c.netByName) != len(c.Nets) {
		t.Fatalf("%d interned nets, %d listed", len(c.netByName), len(c.Nets))
	}
}

func TestCloneIsDeepAndExact(t *testing.T) {
	c := buildSmall(t)
	cp := c.Clone()
	checkInvariants(t, cp)
	if cp.NumDevices() != c.NumDevices() || cp.NumNets() != c.NumNets() || cp.NumPorts() != c.NumPorts() {
		t.Fatal("clone changed element counts")
	}
	for i, d := range c.Devices {
		cd := cp.Devices[i]
		if cd == d {
			t.Fatalf("device %q shared between clone and original", d.Name)
		}
		if cd.Name != d.Name || cd.Type != d.Type || len(cd.Pins) != len(d.Pins) {
			t.Fatalf("device %q cloned wrong", d.Name)
		}
		for j, p := range d.Pins {
			if (p == nil) != (cd.Pins[j] == nil) {
				t.Fatalf("device %q pin %d nil-ness changed", d.Name, j)
			}
			if p != nil && cd.Pins[j].Name != p.Name {
				t.Fatalf("device %q pin %d rewired", d.Name, j)
			}
			if p != nil && cd.Pins[j] == p {
				t.Fatalf("device %q pin %d aliases the original net", d.Name, j)
			}
		}
	}
	for i, p := range c.Ports {
		if cp.Ports[i].Net == p.Net {
			t.Fatalf("port %q net aliases the original", p.Name)
		}
		if cp.Ports[i].Net.Name != p.Net.Name {
			t.Fatalf("port %q rewired", p.Name)
		}
	}
	// Mutating the clone leaves the original untouched.
	if err := cp.RemoveDevice("g2"); err != nil {
		t.Fatal(err)
	}
	if c.DeviceByName("g2") == nil || c.NetByName("n2") == nil {
		t.Fatal("mutating the clone reached the original")
	}
	checkInvariants(t, c)
}

func TestClonePreservesNilPins(t *testing.T) {
	b := NewBuilder("m")
	b.AddDevice("g1", "INV", "a", "")
	b.AddDevice("g2", "INV", "a", "y")
	b.AddPort("py", Out, "y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cp := c.Clone()
	if cp.DeviceByName("g1").Pins[1] != nil {
		t.Fatal("unconnected pin became connected in the clone")
	}
	checkInvariants(t, cp)
}

func TestAddDevice(t *testing.T) {
	c := buildSmall(t)
	d, err := c.AddDevice("g5", "XOR2", "n1", "", "z")
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
	if d.Index != 4 || d.Pins[1] != nil {
		t.Fatalf("appended device wrong: index %d", d.Index)
	}
	if c.NetByName("n1").Degree() != 4 {
		t.Fatalf("n1 degree %d after new pin, want 4", c.NetByName("n1").Degree())
	}
	if z := c.NetByName("z"); z == nil || z.Degree() != 1 {
		t.Fatal("new net z not created with degree 1")
	}
	// A device listed on the same net twice gains two pins but counts
	// once toward the degree.
	if _, err := c.AddDevice("g6", "BUF", "w", "w"); err != nil {
		t.Fatal(err)
	}
	w := c.NetByName("w")
	if w.PinCount != 2 || w.Degree() != 1 {
		t.Fatalf("double-connected net: pins %d degree %d, want 2 and 1", w.PinCount, w.Degree())
	}
	checkInvariants(t, c)
	for _, bad := range []struct{ name, typ string }{
		{"", "INV"}, {"g7", ""}, {"g1", "INV"},
	} {
		if _, err := c.AddDevice(bad.name, bad.typ); err == nil {
			t.Fatalf("AddDevice(%q, %q) accepted", bad.name, bad.typ)
		} else if !errors.Is(err, ErrInvalidCircuit) {
			t.Fatalf("edit error not under ErrInvalidCircuit: %v", err)
		}
	}
}

func TestRemoveDevice(t *testing.T) {
	c := buildSmall(t)
	// g2 (INV n1 n2): n1 survives with lower degree, n2 survives via
	// g4's pin.
	if err := c.RemoveDevice("g2"); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
	if c.DeviceByName("g2") != nil {
		t.Fatal("g2 still interned")
	}
	if got := c.NetByName("n1").Degree(); got != 2 {
		t.Fatalf("n1 degree %d, want 2", got)
	}
	if n2 := c.NetByName("n2"); n2 == nil || n2.Degree() != 1 {
		t.Fatal("n2 should survive on g4's pin")
	}
	// Indices re-run contiguously.
	if c.Devices[1].Name != "g3" || c.Devices[1].Index != 1 {
		t.Fatalf("reindex broken: %q at 1 with index %d", c.Devices[1].Name, c.Devices[1].Index)
	}
	if err := c.RemoveDevice("ghost"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestRemoveDevicePrunesExclusiveNets(t *testing.T) {
	b := NewBuilder("m")
	b.AddDevice("g1", "INV", "a", "mid")
	b.AddDevice("g2", "INV", "mid", "y")
	b.AddPort("pa", In, "a")
	b.AddPort("py", Out, "y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Removing g2 leaves mid with only g1's pin (kept), y with no pins
	// but a port (kept).
	if err := c.RemoveDevice("g2"); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
	if c.NetByName("mid") == nil {
		t.Fatal("mid pruned while g1 still pins it")
	}
	if c.NetByName("y") == nil {
		t.Fatal("external net y pruned")
	}
	// Now g1 is the last device; removal must be refused (an empty
	// module has no canonical statistics).
	if err := c.RemoveDevice("g1"); err == nil {
		t.Fatal("removing the last device accepted")
	}
}

func TestAddNet(t *testing.T) {
	c := buildSmall(t)
	n, err := c.AddNet("bus", "g1", "g4", "g1")
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
	if n.PinCount != 3 || n.Degree() != 2 {
		t.Fatalf("bus: pins %d degree %d, want 3 and 2", n.PinCount, n.Degree())
	}
	for _, bad := range []struct {
		name string
		devs []string
	}{
		{"", []string{"g1"}},
		{"n1", []string{"g1"}},     // duplicate net
		{"lone", nil},              // dangling
		{"bad", []string{"ghost"}}, // unknown device
	} {
		if _, err := c.AddNet(bad.name, bad.devs...); err == nil {
			t.Fatalf("AddNet(%q, %v) accepted", bad.name, bad.devs)
		}
	}
	checkInvariants(t, c)
}

func TestRemoveNet(t *testing.T) {
	c := buildSmall(t)
	if err := c.RemoveNet("n1"); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
	if c.NetByName("n1") != nil {
		t.Fatal("n1 still interned")
	}
	for _, name := range []string{"g1", "g2", "g3"} {
		for _, p := range c.DeviceByName(name).Pins {
			if p != nil && p.Name == "n1" {
				t.Fatalf("%s kept a pin on the removed net", name)
			}
		}
	}
	// g1's pin list shrank rather than gaining a nil.
	if got := len(c.DeviceByName("g1").Pins); got != 2 {
		t.Fatalf("g1 has %d pins, want 2", got)
	}
	if err := c.RemoveNet("b"); err == nil {
		t.Fatal("external net removal accepted")
	}
	if err := c.RemoveNet("ghost"); err == nil {
		t.Fatal("unknown net accepted")
	}
}

func TestConnectDisconnectPin(t *testing.T) {
	c := buildSmall(t)
	if err := c.ConnectPin("g2", "n3"); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
	if got := c.NetByName("n3").Degree(); got != 3 {
		t.Fatalf("n3 degree %d, want 3", got)
	}
	if err := c.DisconnectPin("g2", "n3"); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
	if got := c.NetByName("n3").Degree(); got != 2 {
		t.Fatalf("n3 degree %d after disconnect, want 2", got)
	}
	// Disconnecting the only pin of an internal single-pin net prunes
	// the net entirely.
	if err := c.ConnectPin("g2", "tmp"); err != nil {
		t.Fatal(err)
	}
	if err := c.DisconnectPin("g2", "tmp"); err != nil {
		t.Fatal(err)
	}
	if c.NetByName("tmp") != nil {
		t.Fatal("pinless internal net survived")
	}
	checkInvariants(t, c)
	// A double-connected device stays a component until its last pin
	// on the net goes.
	if err := c.ConnectPin("g2", "n1"); err != nil { // second pin on n1
		t.Fatal(err)
	}
	if err := c.DisconnectPin("g2", "n1"); err != nil {
		t.Fatal(err)
	}
	if got := c.NetByName("n1").Degree(); got != 3 {
		t.Fatalf("n1 degree %d, want 3 (g2 still pinned once)", got)
	}
	checkInvariants(t, c)
	if err := c.DisconnectPin("g1", "y"); err == nil {
		t.Fatal("disconnecting a pin that does not exist accepted")
	}
	if err := c.ConnectPin("ghost", "n1"); err == nil {
		t.Fatal("unknown device accepted")
	}
	if err := c.DisconnectPin("g1", "ghost"); err == nil {
		t.Fatal("unknown net accepted")
	}
}

func TestEditErrorsWrapInvalidCircuit(t *testing.T) {
	c := buildSmall(t)
	for name, err := range map[string]error{
		"RemoveDevice": c.RemoveDevice("ghost"),
		"RemoveNet":    c.RemoveNet("ghost"),
		"ConnectPin":   c.ConnectPin("ghost", "n1"),
		"Disconnect":   c.DisconnectPin("g1", "ghost"),
	} {
		if err == nil {
			t.Fatalf("%s: no error", name)
		}
		if !errors.Is(err, ErrInvalidCircuit) {
			t.Fatalf("%s: error %v not under ErrInvalidCircuit", name, err)
		}
	}
}
