package netlist

import (
	"errors"
	"strings"
	"testing"
)

// buildSmall returns a 4-gate circuit used by several tests:
//
//	a, b -> g1(NAND2) -> n1
//	n1   -> g2(INV)   -> n2
//	n1,b -> g3(NOR2)  -> n3
//	n2,n3-> g4(NAND2) -> y
func buildSmall(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("small")
	b.AddDevice("g1", "NAND2", "a", "b", "n1")
	b.AddDevice("g2", "INV", "n1", "n2")
	b.AddDevice("g3", "NOR2", "n1", "b", "n3")
	b.AddDevice("g4", "NAND2", "n2", "n3", "y")
	b.AddPort("a", In, "a")
	b.AddPort("b", In, "b")
	b.AddPort("y", Out, "y")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func TestBuilderBasics(t *testing.T) {
	c := buildSmall(t)
	if c.NumDevices() != 4 {
		t.Fatalf("N = %d", c.NumDevices())
	}
	if c.NumPorts() != 3 {
		t.Fatalf("ports = %d", c.NumPorts())
	}
	// Nets: a b n1 n2 n3 y = 6.
	if c.NumNets() != 6 {
		t.Fatalf("nets = %d", c.NumNets())
	}
	n1 := c.NetByName("n1")
	if n1 == nil || n1.Degree() != 3 {
		t.Fatalf("n1 degree = %v", n1)
	}
	if n1.External() {
		t.Fatal("n1 should be internal")
	}
	a := c.NetByName("a")
	if !a.External() || a.Degree() != 1 {
		t.Fatalf("a: external=%v degree=%d", a.External(), a.Degree())
	}
	if c.DeviceByName("g3").Type != "NOR2" {
		t.Fatal("device lookup broken")
	}
	if c.PortByName("y").Dir != Out {
		t.Fatal("port lookup broken")
	}
}

func TestNetDeviceDedup(t *testing.T) {
	b := NewBuilder("dedup")
	// g1 connects to net x twice (e.g. a gate with tied inputs).
	b.AddDevice("g1", "NAND2", "x", "x", "z")
	b.AddDevice("g2", "INV", "z", "q")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	x := c.NetByName("x")
	if x.Degree() != 1 {
		t.Fatalf("x degree = %d, want 1 (distinct devices)", x.Degree())
	}
	if x.PinCount != 2 {
		t.Fatalf("x pin count = %d, want 2", x.PinCount)
	}
}

func TestUnconnectedPin(t *testing.T) {
	b := NewBuilder("nc")
	d := b.AddDevice("g1", "NAND2", "a", "", "y")
	b.AddDevice("g2", "INV", "y", "a")
	if d.Pins[1] != nil {
		t.Fatal("empty net name should leave pin nil")
	}
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
	}{
		{"no devices", func(b *Builder) {}},
		{"empty device name", func(b *Builder) { b.AddDevice("", "INV", "a", "b") }},
		{"empty type", func(b *Builder) { b.AddDevice("g", "", "a", "b") }},
		{"dup device", func(b *Builder) {
			b.AddDevice("g", "INV", "a", "b")
			b.AddDevice("g", "INV", "b", "c")
		}},
		{"dup port", func(b *Builder) {
			b.AddDevice("g", "INV", "a", "b")
			b.AddPort("p", In, "a")
			b.AddPort("p", In, "b")
		}},
		{"empty port name", func(b *Builder) {
			b.AddDevice("g", "INV", "a", "b")
			b.AddPort("", In, "a")
		}},
	}
	for _, c := range cases {
		b := NewBuilder("t")
		c.build(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: Build succeeded, want error", c.name)
		} else if !errors.Is(err, ErrInvalidCircuit) {
			t.Errorf("%s: error not wrapped: %v", c.name, err)
		}
	}
}

func TestEmptyCircuitName(t *testing.T) {
	b := NewBuilder("")
	b.AddDevice("g", "INV", "a", "b")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for empty circuit name")
	}
}

func TestErrorListTruncation(t *testing.T) {
	b := NewBuilder("many")
	for i := 0; i < 12; i++ {
		b.AddDevice("", "INV", "a") // 12 identical failures
	}
	_, err := b.Build()
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "and") || !strings.Contains(err.Error(), "more") {
		t.Fatalf("long error list not truncated: %v", err)
	}
}

func TestTypeHistogram(t *testing.T) {
	c := buildSmall(t)
	h := c.TypeHistogram()
	if h["NAND2"] != 2 || h["INV"] != 1 || h["NOR2"] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	names := c.TypeNames()
	want := []string{"INV", "NAND2", "NOR2"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestPortDirParseAndString(t *testing.T) {
	for _, d := range []PortDir{In, Out, InOut} {
		got, err := ParsePortDir(d.String())
		if err != nil || got != d {
			t.Fatalf("round trip %v: %v %v", d, got, err)
		}
	}
	if _, err := ParsePortDir("sideways"); err == nil {
		t.Fatal("expected parse error")
	}
	if PortDir(9).String() != "PortDir(9)" {
		t.Fatal("unknown dir String mismatch")
	}
}
