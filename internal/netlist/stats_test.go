package netlist

import (
	"math"
	"testing"

	"maest/internal/tech"
)

func TestGatherSmall(t *testing.T) {
	c := buildSmall(t)
	p := tech.NMOS25()
	s, err := Gather(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.CircuitName != "small" {
		t.Fatalf("name = %q", s.CircuitName)
	}
	if s.N != 4 {
		t.Fatalf("N = %d", s.N)
	}
	if s.NumPorts != 3 {
		t.Fatalf("ports = %d", s.NumPorts)
	}
	// Routable nets: b(deg2: g1,g3), n1(deg3), n2(deg2), n3(deg2).
	// Degenerate: a(deg1), y(deg1).
	if s.H != 4 {
		t.Fatalf("H = %d", s.H)
	}
	if s.DegenerateNets != 2 {
		t.Fatalf("degenerate = %d", s.DegenerateNets)
	}
	if s.DegreeCount[2] != 3 || s.DegreeCount[3] != 1 {
		t.Fatalf("yi = %v", s.DegreeCount)
	}
	if s.MaxDegree != 3 {
		t.Fatalf("max degree = %d", s.MaxDegree)
	}
	// Widths: NAND2=18 (x2), INV=14 (x1), NOR2=18 (x1) -> 18:3, 14:1.
	if s.WidthCount[18] != 3 || s.WidthCount[14] != 1 {
		t.Fatalf("Xi = %v", s.WidthCount)
	}
	// Eq. 1: Wavg = (3*18 + 1*14)/4 = 17.
	if got := s.AvgWidth(); math.Abs(got-17) > 1e-12 {
		t.Fatalf("Wavg = %g", got)
	}
	if got := s.AvgHeight(); math.Abs(got-40) > 1e-12 {
		t.Fatalf("Havg = %g", got)
	}
	if got := s.AvgDeviceArea(); math.Abs(got-17*40) > 1e-9 {
		t.Fatalf("avg device area = %g", got)
	}
	// Exact area: (18+14+18+18)*40 = 68*40 = 2720.
	if s.ExactDeviceArea != 2720 {
		t.Fatalf("exact device area = %d", s.ExactDeviceArea)
	}
}

func TestGatherUnknownDeviceType(t *testing.T) {
	b := NewBuilder("bad")
	b.AddDevice("g1", "FLUXCAP", "a", "b")
	b.AddDevice("g2", "INV", "b", "a")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Gather(c, tech.NMOS25()); err == nil {
		t.Fatal("expected error for unknown device type")
	}
}

func TestStatsSortedAccessors(t *testing.T) {
	c := buildSmall(t)
	s, err := Gather(c, tech.NMOS25())
	if err != nil {
		t.Fatal(err)
	}
	ds := s.Degrees()
	for i := 1; i < len(ds); i++ {
		if ds[i-1] >= ds[i] {
			t.Fatalf("degrees not sorted: %v", ds)
		}
	}
	ws := s.Widths()
	for i := 1; i < len(ws); i++ {
		if ws[i-1] >= ws[i] {
			t.Fatalf("widths not sorted: %v", ws)
		}
	}
}

func TestStatsZeroValueAverages(t *testing.T) {
	var s Stats
	if s.AvgWidth() != 0 || s.AvgHeight() != 0 || s.AvgDeviceArea() != 0 {
		t.Fatal("zero stats should give zero averages, not NaN")
	}
}

func TestDeviceDims(t *testing.T) {
	c := buildSmall(t)
	ws, hs, err := DeviceDims(c, tech.NMOS25())
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 || len(hs) != 4 {
		t.Fatalf("lengths %d %d", len(ws), len(hs))
	}
	if ws[0] != 18 || ws[1] != 14 || hs[0] != 40 {
		t.Fatalf("dims = %v %v", ws, hs)
	}

	b := NewBuilder("bad")
	b.AddDevice("g1", "NOPE", "a", "b")
	b.AddDevice("g2", "INV", "b", "a")
	bad, _ := b.Build()
	if _, _, err := DeviceDims(bad, tech.NMOS25()); err == nil {
		t.Fatal("expected error for unknown type")
	}
}
