// Package netlist models the circuit schematic the estimator analyses
// (paper §3): devices, signal nets, and external I/O ports.
//
// The estimator never needs transistor-level electrical detail — only
// the structural quantities of §4: the number of devices N, the number
// of nets H, each device's type (hence width Wᵢ from the process
// database), the multiplicity Xᵢ of each width, the number of external
// ports, and yᵢ, the number of nets having each component count D.
// This package provides the structure plus a validating builder; the
// derived statistics live in stats.go.
package netlist

import (
	"errors"
	"fmt"
	"sort"
)

// PortDir is the direction of an external port.
type PortDir int

const (
	// In is a module input.
	In PortDir = iota
	// Out is a module output.
	Out
	// InOut is a bidirectional port.
	InOut
)

// String implements fmt.Stringer.
func (d PortDir) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	default:
		return fmt.Sprintf("PortDir(%d)", int(d))
	}
}

// ParsePortDir converts the textual form used by the HDL front end.
func ParsePortDir(s string) (PortDir, error) {
	switch s {
	case "in":
		return In, nil
	case "out":
		return Out, nil
	case "inout":
		return InOut, nil
	default:
		return 0, fmt.Errorf("netlist: unknown port direction %q", s)
	}
}

// Device is one placed instance: a standard cell or a full-custom
// transistor, depending on the layout methodology in force.
type Device struct {
	// Index is the position of the device in Circuit.Devices.
	Index int
	// Name is the unique instance name.
	Name string
	// Type names the device type in the process database.
	Type string
	// Pins lists the nets this device connects to, in pin order.  A
	// pin may be nil (unconnected).
	Pins []*Net
}

// Net is one signal net.
type Net struct {
	// Index is the position of the net in Circuit.Nets.
	Index int
	// Name is the unique net name.
	Name string
	// Devices lists the distinct devices attached to the net, in
	// first-connection order.
	Devices []*Device
	// PinCount is the total number of device pins on the net (a
	// device connecting twice contributes twice here but once to
	// Devices).
	PinCount int
	// Ports lists external ports driven by or driving this net.
	Ports []*Port
}

// Degree returns D, the number of components (distinct devices) in the
// net — the quantity the paper's probability machinery is written in.
func (n *Net) Degree() int { return len(n.Devices) }

// External reports whether the net reaches a module port.
func (n *Net) External() bool { return len(n.Ports) > 0 }

// Port is an external I/O terminal of the module.
type Port struct {
	Name string
	Dir  PortDir
	Net  *Net
}

// Circuit is a flat module netlist.
type Circuit struct {
	Name    string
	Devices []*Device
	Nets    []*Net
	Ports   []*Port

	// The by-name interning maps are an optional index: the Builder
	// populates them, but Clone leaves them nil and every lookup falls
	// back to a linear scan.  An ECO edit resolves a handful of names
	// per script, so rebuilding three maps per clone cost more than
	// every scan it saved; leaving clones unindexed is also what keeps
	// lookups on shared (read-only) circuits race-free.  When non-nil,
	// a map is complete and exact — the mutators keep it so.
	deviceByName map[string]*Device
	netByName    map[string]*Net
	portByName   map[string]*Port
}

// DeviceByName returns the named device instance, or nil.
func (c *Circuit) DeviceByName(name string) *Device {
	if c.deviceByName != nil {
		return c.deviceByName[name]
	}
	for _, d := range c.Devices {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// NetByName returns the named net, or nil.
func (c *Circuit) NetByName(name string) *Net {
	if c.netByName != nil {
		return c.netByName[name]
	}
	for _, n := range c.Nets {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// PortByName returns the named port, or nil.
func (c *Circuit) PortByName(name string) *Port {
	if c.portByName != nil {
		return c.portByName[name]
	}
	for _, p := range c.Ports {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// NumDevices returns N.
func (c *Circuit) NumDevices() int { return len(c.Devices) }

// NumNets returns the total net count, including degenerate nets.
func (c *Circuit) NumNets() int { return len(c.Nets) }

// NumPorts returns the external port count.
func (c *Circuit) NumPorts() int { return len(c.Ports) }

// ErrInvalidCircuit wraps all builder validation failures.
var ErrInvalidCircuit = errors.New("netlist: invalid circuit")

// Builder incrementally assembles a Circuit, interning nets by name.
// All errors are deferred to Build so construction code stays linear.
type Builder struct {
	c    *Circuit
	errs []error
}

// NewBuilder starts a circuit with the given module name.
func NewBuilder(name string) *Builder {
	return &Builder{c: &Circuit{
		Name:         name,
		deviceByName: map[string]*Device{},
		netByName:    map[string]*Net{},
		portByName:   map[string]*Port{},
	}}
}

func (b *Builder) fail(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Net interns (creating if necessary) the named net.
func (b *Builder) Net(name string) *Net {
	if name == "" {
		b.fail("empty net name")
		return nil
	}
	if n, ok := b.c.netByName[name]; ok {
		return n
	}
	n := &Net{Index: len(b.c.Nets), Name: name}
	b.c.Nets = append(b.c.Nets, n)
	b.c.netByName[name] = n
	return n
}

// AddDevice adds an instance of the given type connected to the named
// nets, in pin order.  An empty net name leaves that pin unconnected.
func (b *Builder) AddDevice(name, typ string, nets ...string) *Device {
	if name == "" {
		b.fail("empty device name")
		return nil
	}
	if typ == "" {
		b.fail("device %q: empty type", name)
		return nil
	}
	if _, dup := b.c.deviceByName[name]; dup {
		b.fail("duplicate device %q", name)
		return nil
	}
	d := &Device{Index: len(b.c.Devices), Name: name, Type: typ}
	for _, netName := range nets {
		if netName == "" {
			d.Pins = append(d.Pins, nil)
			continue
		}
		n := b.Net(netName)
		d.Pins = append(d.Pins, n)
		n.PinCount++
		if !containsDevice(n.Devices, d) {
			n.Devices = append(n.Devices, d)
		}
	}
	b.c.Devices = append(b.c.Devices, d)
	b.c.deviceByName[name] = d
	return d
}

func containsDevice(ds []*Device, d *Device) bool {
	for _, x := range ds {
		if x == d {
			return true
		}
	}
	return false
}

// AddPort declares an external port on the named net (interned if
// new).
func (b *Builder) AddPort(name string, dir PortDir, netName string) *Port {
	if name == "" {
		b.fail("empty port name")
		return nil
	}
	if _, dup := b.c.portByName[name]; dup {
		b.fail("duplicate port %q", name)
		return nil
	}
	n := b.Net(netName)
	if n == nil {
		return nil
	}
	p := &Port{Name: name, Dir: dir, Net: n}
	n.Ports = append(n.Ports, p)
	b.c.Ports = append(b.c.Ports, p)
	b.c.portByName[name] = p
	return p
}

// Build validates and returns the circuit.  After Build the builder
// must not be reused.
func (b *Builder) Build() (*Circuit, error) {
	if b.c.Name == "" {
		b.fail("empty circuit name")
	}
	if len(b.c.Devices) == 0 {
		b.fail("circuit %q has no devices", b.c.Name)
	}
	for _, n := range b.c.Nets {
		if n.PinCount == 0 && !n.External() {
			b.fail("net %q is dangling (no pins, no ports)", n.Name)
		}
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("%w: %s", ErrInvalidCircuit, joinErrs(b.errs))
	}
	return b.c, nil
}

func joinErrs(errs []error) string {
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	return fmt.Sprintf("%d problem(s): %s", len(errs), joinLimited(msgs, 8))
}

func joinLimited(msgs []string, limit int) string {
	if len(msgs) > limit {
		msgs = append(msgs[:limit:limit], fmt.Sprintf("... and %d more", len(msgs)-limit))
	}
	out := ""
	for i, m := range msgs {
		if i > 0 {
			out += "; "
		}
		out += m
	}
	return out
}

// TypeHistogram counts device instances by type name, sorted output via
// TypeNames.
func (c *Circuit) TypeHistogram() map[string]int {
	h := make(map[string]int)
	for _, d := range c.Devices {
		h[d.Type]++
	}
	return h
}

// TypeNames returns the distinct device type names in sorted order.
func (c *Circuit) TypeNames() []string {
	h := c.TypeHistogram()
	names := make([]string, 0, len(h))
	for n := range h {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
