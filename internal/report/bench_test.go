package report

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"maest/internal/tech"
)

// TestBuildAccuracyMatchesGoldens reruns both table experiments at
// the golden seed and checks the measured errors land on the golden
// values (within print precision of the rendered tables).  It shares
// the golden tests' plan cache: the suites are identical, so every
// module here is a cache hit exercising plan reuse rather than a
// duplicate compile.
func TestBuildAccuracyMatchesGoldens(t *testing.T) {
	p := tech.NMOS25()
	snap, err := BuildAccuracyCtx(context.Background(),
		filepath.Join("..", "..", "testdata", "golden"), p, 1, testCompile)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Process != "nmos25" || snap.Seed != 1 {
		t.Fatalf("snapshot header: %+v", snap)
	}
	// 5 Table-1 modules × {exact, average} + 5 Table-2 configs.
	if len(snap.Modules) != 15 {
		t.Fatalf("got %d accuracy entries, want 15", len(snap.Modules))
	}
	// Goldens render with one decimal, so a faithful rerun can drift
	// by at most half a unit in the last place.
	if snap.MaxDriftPP > 0.05+1e-9 {
		t.Fatalf("max drift %.4fpp exceeds print precision", snap.MaxDriftPP)
	}
	tables := map[int]int{}
	for _, m := range snap.Modules {
		tables[m.Table]++
		if m.Config == "" || m.Module == "" {
			t.Fatalf("entry missing identity: %+v", m)
		}
	}
	if tables[1] != 10 || tables[2] != 5 {
		t.Fatalf("table split %v, want 10/5", tables)
	}
}

func TestBenchSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := &BenchSnapshot{
		Schema: BenchSchema, Label: "test", CreatedAt: "2026-08-06T00:00:00Z",
		GoVersion: "go0.0",
		Accuracy: AccuracySnapshot{Seed: 1, Process: "nmos25", MaxDriftPP: 0.02,
			Modules: []ModuleAccuracy{{Table: 1, Module: "m", Config: "exact",
				ErrPct: -25.9, GoldenPct: -25.9}}},
		Perf: PerfSnapshot{EstimateNsPerOp: 123, EstimateOps: 4,
			Endpoints: []EndpointPerf{{Endpoint: "/v1/estimate", Count: 10,
				P50Micros: 100, P90Micros: 200, P99Micros: 300}}},
	}
	if err := WriteBenchSnapshot(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "test" || got.Schema != BenchSchema ||
		len(got.Accuracy.Modules) != 1 || got.Perf.EstimateNsPerOp != 123 {
		t.Fatalf("round trip: %+v", got)
	}
}

// TestCompareBenchFlagsInjectedRegression is the acceptance test for
// the -compare contract: a snapshot with artificially worsened drift
// must be reported, while the identity comparison stays clean.
func TestCompareBenchFlagsInjectedRegression(t *testing.T) {
	ref := &BenchSnapshot{Schema: BenchSchema,
		Accuracy: AccuracySnapshot{Modules: []ModuleAccuracy{
			{Table: 1, Module: "fc-a", Config: "exact", ErrPct: -25.9, GoldenPct: -25.9, DriftPP: 0},
			{Table: 2, Module: "sc-b", Config: "rows=4", ErrPct: 98.8, GoldenPct: 98.8, DriftPP: 0},
		}},
		Perf: PerfSnapshot{EstimateNsPerOp: 1000,
			Endpoints: []EndpointPerf{{Endpoint: "/v1/estimate", P99Micros: 500}}},
	}

	if msgs := CompareBench(ref, ref, 0.5, 0); len(msgs) != 0 {
		t.Fatalf("self-compare not clean: %v", msgs)
	}

	// Inject an accuracy regression: fc-a now estimates 3pp further
	// from the golden than the reference run did.
	bad := *ref
	bad.Accuracy.Modules = append([]ModuleAccuracy(nil), ref.Accuracy.Modules...)
	bad.Accuracy.Modules[0] = ModuleAccuracy{Table: 1, Module: "fc-a", Config: "exact",
		ErrPct: -28.9, GoldenPct: -25.9, DriftPP: 3.0}
	msgs := CompareBench(ref, &bad, 0.5, 0)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "fc-a/exact") {
		t.Fatalf("injected drift not flagged: %v", msgs)
	}

	// A missing module is a regression too.
	short := *ref
	short.Accuracy.Modules = ref.Accuracy.Modules[:1]
	if msgs := CompareBench(ref, &short, 0.5, 0); len(msgs) != 1 ||
		!strings.Contains(msgs[0], "missing") {
		t.Fatalf("missing module not flagged: %v", msgs)
	}

	// Schema bumps refuse to compare rather than mislead.
	future := *ref
	future.Schema = BenchSchema + 1
	if msgs := CompareBench(ref, &future, 0.5, 0); len(msgs) != 1 ||
		!strings.Contains(msgs[0], "schema") {
		t.Fatalf("schema mismatch not flagged: %v", msgs)
	}

	// Perf compare is opt-in: the same slowdown passes at perfTol 0
	// and fails when a tolerance is set.
	slow := *ref
	slow.Perf = PerfSnapshot{EstimateNsPerOp: 5000,
		Endpoints: []EndpointPerf{{Endpoint: "/v1/estimate", P99Micros: 5000}}}
	if msgs := CompareBench(ref, &slow, 0.5, 0); len(msgs) != 0 {
		t.Fatalf("perf compared despite perfTol 0: %v", msgs)
	}
	msgs = CompareBench(ref, &slow, 0.5, 0.25)
	if len(msgs) != 2 {
		t.Fatalf("slowdown at +400%% flagged %d regressions, want 2 (ns/op and p99): %v", len(msgs), msgs)
	}
}

func TestParseGoldenTables(t *testing.T) {
	g1, err := parseGoldenTable1(filepath.Join("..", "..", "testdata", "golden", "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) != 5 {
		t.Fatalf("table 1 golden has %d modules, want 5", len(g1))
	}
	if g, ok := g1["fc-rslatch_xtor"]; !ok || g.errExact != -25.9 || g.errAverage != -25.9 {
		t.Fatalf("fc-rslatch_xtor golden: %+v ok=%v", g, ok)
	}
	g2, err := parseGoldenTable2(filepath.Join("..", "..", "testdata", "golden", "table2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g2) != 5 {
		t.Fatalf("table 2 golden has %d configs, want 5", len(g2))
	}
	if over, ok := g2["sc-exp1/rows=4"]; !ok || over != 98.8 {
		t.Fatalf("sc-exp1/rows=4 golden: %v ok=%v", over, ok)
	}
}
