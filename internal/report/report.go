// Package report renders the evaluation artifacts: a plain-text table
// writer in the style of the paper's Tables 1 and 2, and the drivers
// that regenerate those tables by running the estimator against the
// ground-truth layout engine on the reconstructed benchmark suites.
package report

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered-ready grid of strings.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t.Title != "" {
		fmt.Fprintln(bw, t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(bw, "  ")
			}
			fmt.Fprintf(bw, "%-*s", widths[i], c)
		}
		fmt.Fprintln(bw)
	}
	line(t.Header)
	var total int
	for _, w := range widths {
		total += w + 2
	}
	fmt.Fprintln(bw, strings.Repeat("-", max(total-2, 1)))
	for _, row := range t.Rows {
		line(row)
	}
	return bw.Flush()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
