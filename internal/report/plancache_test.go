package report

import (
	"context"
	"sync"
	"testing"

	"maest/internal/engine"
	"maest/internal/gen"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// testCompile is the package's shared plan resolver: the golden-table
// and accuracy tests all estimate the same generated suites, and each
// used to recompile every module from scratch.  Caching by plan hash
// compiles each (circuit, process) once per `go test` run and serves
// the rest from the same *Plan — the exact reuse path the serving
// layer's plan cache exercises, so the second consumer's memoized
// executions get test traffic too.
var (
	testPlansMu sync.Mutex
	testPlans   = map[engine.Hash]*engine.Plan{}
)

func testCompile(ctx context.Context, c *netlist.Circuit, p *tech.Process) (*engine.Plan, error) {
	h := engine.PlanHash(c, p)
	testPlansMu.Lock()
	pl, ok := testPlans[h]
	testPlansMu.Unlock()
	if ok {
		return pl, nil
	}
	pl, err := engine.CompileCtx(ctx, c, p)
	if err != nil {
		return nil, err
	}
	testPlansMu.Lock()
	testPlans[h] = pl
	testPlansMu.Unlock()
	return pl, nil
}

// The cache must hand back the identical plan for a recompile of the
// same circuit — otherwise the tests above silently stop exercising
// plan reuse.
func TestSharedPlanCacheReuses(t *testing.T) {
	p := tech.NMOS25()
	suite, err := gen.FullCustomSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, err := testCompile(ctx, suite[0], p)
	if err != nil {
		t.Fatal(err)
	}
	again, err := testCompile(ctx, suite[0], p)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatal("shared cache recompiled an identical circuit")
	}
}
