package report

import (
	"context"
	"fmt"

	"maest/internal/engine"
	"maest/internal/gen"
	"maest/internal/layout"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// CompileFunc resolves a circuit to a compiled plan.  The experiments
// default to engine.CompileCtx; callers with a plan cache (the serve
// accuracy watchdog) inject their own resolver so probe traffic flows
// through — and warms — the same cache production requests use.
type CompileFunc func(ctx context.Context, c *netlist.Circuit, p *tech.Process) (*engine.Plan, error)

// resolveCompile defaults a nil CompileFunc.
func resolveCompile(fn CompileFunc) CompileFunc {
	if fn != nil {
		return fn
	}
	return func(ctx context.Context, c *netlist.Circuit, p *tech.Process) (*engine.Plan, error) {
		return engine.CompileCtx(ctx, c, p)
	}
}

// FCRow is one Table 1 line: a Full-Custom module's estimates (both
// device-area modes) against its synthesized layout.
type FCRow struct {
	Module                   string
	Devices, Nets, Ports     int
	DeviceArea               float64
	WireAreaExact, WireAvg   float64
	TotalExact, TotalAverage float64
	RealArea                 float64
	ErrExact, ErrAverage     float64 // signed relative error
	AspectExact, AspectAvg   float64
	RealAspect               float64
}

// RunTable1 regenerates the Table 1 experiment: estimate each module
// of the Full-Custom suite with exact and average device areas and
// compare against the synthesized ground-truth layout.
func RunTable1(p *tech.Process, seed int64) ([]FCRow, error) {
	return RunTable1Ctx(context.Background(), p, seed, nil)
}

// RunTable1Ctx is RunTable1 with a caller context and an optional plan
// resolver (nil = engine.CompileCtx).
func RunTable1Ctx(ctx context.Context, p *tech.Process, seed int64, compile CompileFunc) ([]FCRow, error) {
	suite, err := gen.FullCustomSuite(p)
	if err != nil {
		return nil, err
	}
	compile = resolveCompile(compile)
	var rows []FCRow
	for _, c := range suite {
		// One compile per module covers both device-area modes: the
		// gathered statistics and transistor expansion are shared.
		pl, err := compile(ctx, c, p)
		if err != nil {
			return nil, err
		}
		s := pl.Stats()
		exact, err := pl.EstimateFullCustom(ctx, engine.WithFCMode(engine.FCExactAreas))
		if err != nil {
			return nil, err
		}
		avg, err := pl.EstimateFullCustom(ctx, engine.WithFCMode(engine.FCAverageAreas))
		if err != nil {
			return nil, err
		}
		real, err := layout.SynthesizeFullCustom(c, p, seed)
		if err != nil {
			return nil, err
		}
		realArea := float64(real.Area())
		rows = append(rows, FCRow{
			Module:        c.Name,
			Devices:       s.N,
			Nets:          s.H,
			Ports:         s.NumPorts,
			DeviceArea:    float64(s.ExactDeviceArea),
			WireAreaExact: exact.WireArea,
			WireAvg:       avg.WireArea,
			TotalExact:    exact.Area,
			TotalAverage:  avg.Area,
			RealArea:      realArea,
			ErrExact:      exact.Area/realArea - 1,
			ErrAverage:    avg.Area/realArea - 1,
			AspectExact:   exact.AspectRatio,
			AspectAvg:     avg.AspectRatio,
			RealAspect:    real.AspectRatio(),
		})
	}
	return rows, nil
}

// Table1 renders Table 1 rows in the paper's column layout.
func Table1(rows []FCRow) *Table {
	t := &Table{
		Title: "Table 1: Full-Custom Module Layout Area Estimates (λ²)",
		Header: []string{"Module", "Dev", "Nets", "Ports", "DevArea",
			"WireEst(ex)", "WireEst(av)", "TotalEst(ex)", "TotalEst(av)",
			"Real", "Err(ex)%", "Err(av)%", "AR(ex)", "AR(av)", "AR(real)"},
	}
	for _, r := range rows {
		t.AddRow(r.Module, r.Devices, r.Nets, r.Ports, r.DeviceArea,
			r.WireAreaExact, r.WireAvg, r.TotalExact, r.TotalAverage,
			r.RealArea, pct(r.ErrExact), pct(r.ErrAverage),
			r.AspectExact, r.AspectAvg, r.RealAspect)
	}
	return t
}

// SCRow is one Table 2 line: a Standard-Cell module estimated at a
// fixed row count against its placed-and-routed layout.
type SCRow struct {
	Module          string
	Rows            int
	Devices, Ports  int
	EstWidth        float64
	EstHeight       float64
	TracksEstimated int
	TracksReal      int
	EstArea         float64
	RealArea        float64
	Overestimate    float64 // est/real - 1
	EstAspect       float64
	RealAspect      float64
	SharedEstArea   float64 // §7 track-sharing extension estimate
	SharedOverest   float64
}

// Table2RowCounts mirrors the paper's experiment structure: three row
// configurations for the first module, two for the second.
var Table2RowCounts = [][]int{{4, 5, 6}, {5, 6}}

// RunTable2 regenerates the Table 2 experiment over the Standard-Cell
// suite.
func RunTable2(p *tech.Process, seed int64) ([]SCRow, error) {
	return RunTable2Ctx(context.Background(), p, seed, nil)
}

// RunTable2Ctx is RunTable2 with a caller context and an optional plan
// resolver (nil = engine.CompileCtx).
func RunTable2Ctx(ctx context.Context, p *tech.Process, seed int64, compile CompileFunc) ([]SCRow, error) {
	suite, err := gen.StandardCellSuite(p)
	if err != nil {
		return nil, err
	}
	if len(suite) != len(Table2RowCounts) {
		return nil, fmt.Errorf("report: suite size %d != row-count plan %d",
			len(suite), len(Table2RowCounts))
	}
	compile = resolveCompile(compile)
	var rows []SCRow
	for i, c := range suite {
		// One compile per module covers every row configuration and
		// the sharing ablation; each variant is a memoized execution
		// against the same plan.
		pl, err := compile(ctx, c, p)
		if err != nil {
			return nil, err
		}
		s := pl.Stats()
		for _, n := range Table2RowCounts[i] {
			est, err := pl.EstimateStandardCell(ctx, engine.WithRows(n))
			if err != nil {
				return nil, err
			}
			shared, err := pl.EstimateStandardCell(ctx, engine.WithRows(n), engine.WithTrackSharing(true))
			if err != nil {
				return nil, err
			}
			real, err := layout.LayoutStandardCell(c, p, n, seed)
			if err != nil {
				return nil, err
			}
			tracksReal := 0
			for _, tr := range real.ChannelTracks {
				tracksReal += tr
			}
			realArea := float64(real.Area())
			rows = append(rows, SCRow{
				Module:          c.Name,
				Rows:            n,
				Devices:         s.N,
				Ports:           s.NumPorts,
				EstWidth:        est.Width,
				EstHeight:       est.Height,
				TracksEstimated: est.Tracks,
				TracksReal:      tracksReal,
				EstArea:         est.Area,
				RealArea:        realArea,
				Overestimate:    est.Area/realArea - 1,
				EstAspect:       est.AspectRatio,
				RealAspect:      real.AspectRatio(),
				SharedEstArea:   shared.Area,
				SharedOverest:   shared.Area/realArea - 1,
			})
		}
	}
	return rows, nil
}

// Table2 renders Table 2 rows in the paper's column layout, extended
// with the §7 track-sharing ablation columns.
func Table2(rows []SCRow) *Table {
	t := &Table{
		Title: "Table 2: Standard-Cell Module Layout Area Estimates (λ²)",
		Header: []string{"Module", "Rows", "Dev", "Ports", "EstH", "EstW",
			"TrkEst", "TrkReal", "EstArea", "RealArea", "Over%",
			"AR(est)", "AR(real)", "SharedEst", "SharedOver%"},
	}
	for _, r := range rows {
		t.AddRow(r.Module, r.Rows, r.Devices, r.Ports, r.EstHeight, r.EstWidth,
			r.TracksEstimated, r.TracksReal, r.EstArea, r.RealArea,
			pct(r.Overestimate), r.EstAspect, r.RealAspect,
			r.SharedEstArea, pct(r.SharedOverest))
	}
	return t
}

func pct(v float64) string { return fmt.Sprintf("%+.1f", v*100) }
