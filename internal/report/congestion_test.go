package report

import (
	"bytes"
	"testing"

	"maest/internal/tech"
)

// The congestion validation is deterministic (seeded suites, seeded
// placement); the golden file pins the per-channel MAE of the crossing
// model against the spine router on both experiment suites.
func TestCongestValidationGolden(t *testing.T) {
	rows, err := RunCongestValidation(tech.NMOS25(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("validation produced no rows")
	}
	for _, r := range rows {
		if r.MAE < 0 || r.PeakOverflow < 0 || r.PeakOverflow > 1 {
			t.Fatalf("row out of range: %+v", r)
		}
		if r.ActualTracks < 0 || r.PredictedTracks < 0 {
			t.Fatalf("negative track totals: %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := CongestTable(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "congest_validation.txt", buf.Bytes())
}
