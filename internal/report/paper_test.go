package report

import (
	"bytes"
	"testing"

	"maest/internal/core"
	"maest/internal/gen"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// TestPaperTables is the paper-anchored regression net: it runs the
// reconstructed Table 1 and Table 2 module suites through the
// estimator alone (no layout engine, so it stays fast enough for
// every test run) and pins the full numeric output as a golden file.
// Every quantity the paper derives flows into these numbers — the
// row-span expectation (Eqs. 2–3), the feed-through probabilities
// (Eqs. 4–11), the Standard-Cell area and aspect ratio (Eqs. 12/14),
// and the Full-Custom bound (Eq. 13) — so perturbing any constant in
// that chain shifts a cell and fails the diff.  Regenerate with
// `go test ./internal/report -run TestPaperTables -update` after
// intentional model changes.
func TestPaperTables(t *testing.T) {
	p := tech.NMOS25()
	var buf bytes.Buffer

	fcSuite, err := gen.FullCustomSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	fc := &Table{
		Title: "Full-Custom estimates (Eq. 13), nmos25",
		Header: []string{"module", "devices", "nets", "mode",
			"device area", "wire area", "area", "width", "height", "aspect"},
	}
	for _, c := range fcSuite {
		s, err := netlist.Gather(c, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []core.FCMode{core.FCExactAreas, core.FCAverageAreas} {
			est, err := core.EstimateFullCustom(c, p, mode)
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			fc.AddRow(c.Name, s.N, s.H, est.Mode.String(),
				est.DeviceArea, est.WireArea, est.Area,
				est.Width, est.Height, est.AspectRatio)
		}
	}
	if err := fc.Render(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\n")

	scSuite, err := gen.StandardCellSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(scSuite) != len(Table2RowCounts) {
		t.Fatalf("suite has %d modules, row-count plan has %d",
			len(scSuite), len(Table2RowCounts))
	}
	sc := &Table{
		Title: "Standard-Cell estimates (Eqs. 2-12, 14), nmos25",
		Header: []string{"module", "gates", "nets", "rows", "sharing",
			"tracks", "feeds", "width", "height", "area", "aspect"},
	}
	for i, c := range scSuite {
		s, err := netlist.Gather(c, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range Table2RowCounts[i] {
			for _, sharing := range []bool{false, true} {
				est, err := core.EstimateStandardCell(s, p,
					core.SCOptions{Rows: n, TrackSharing: sharing})
				if err != nil {
					t.Fatalf("%s rows=%d: %v", c.Name, n, err)
				}
				sc.AddRow(c.Name, s.N, s.H, est.Rows, est.TrackSharing,
					est.Tracks, est.FeedThroughs,
					est.Width, est.Height, est.Area, est.AspectRatio)
			}
		}
	}
	if err := sc.Render(&buf); err != nil {
		t.Fatal(err)
	}

	checkGolden(t, "paper_estimates.txt", buf.Bytes())
}
