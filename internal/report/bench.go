package report

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"maest/internal/tech"
)

// The continuous-benchmark snapshot: a machine-readable record of how
// accurate (vs the paper's Table 1/2 goldens) and how fast the
// estimator is right now.  `maest-bench` emits one BENCH_<label>.json
// per run and compares it against a checked-in reference so accuracy
// drift and perf regressions fail CI instead of rotting silently.

// BenchSchema versions the snapshot layout; CompareBench refuses to
// diff snapshots from different schemas.
const BenchSchema = 1

// BenchSnapshot is the top-level BENCH_<label>.json document.
type BenchSnapshot struct {
	Schema    int              `json:"schema"`
	Label     string           `json:"label"`
	CreatedAt string           `json:"created_at"` // RFC 3339
	GoVersion string           `json:"go_version"`
	Accuracy  AccuracySnapshot `json:"accuracy"`
	Perf      PerfSnapshot     `json:"perf"`
	// Runtime captures the Go runtime's state at snapshot time.  It is
	// informational context for perf numbers (a run with heavy GC
	// pressure reads differently), optional so older references stay
	// comparable under the same schema, and ignored by CompareBench.
	Runtime *RuntimeSnapshot `json:"runtime,omitempty"`
	// Eco records the incremental (ECO) re-estimation benchmark —
	// present when the run asked for it, optional so references
	// without it stay comparable.
	Eco *EcoSnapshot `json:"eco,omitempty"`
	// Store records the persistent-store benchmark (-store): present
	// when the run asked for it, informational like Runtime (machine-
	// dependent, so CompareBench ignores it).
	Store *StoreSnapshot `json:"store,omitempty"`
	// Telemetry records the request-telemetry overhead benchmark
	// (-telemetry): present when the run asked for it, informational
	// like Runtime and Store (machine-dependent, so CompareBench
	// ignores it and older references stay comparable under the same
	// schema).
	Telemetry *TelemetrySnapshot `json:"telemetry,omitempty"`
	// Floorplan records the Plan-driven annealer benchmark
	// (-floorplan): present when the run asked for it, informational
	// like Runtime, Store and Telemetry (machine-dependent, so
	// CompareBench ignores it and older references stay comparable
	// under the same schema).
	Floorplan *FloorplanSnapshot `json:"floorplan,omitempty"`
}

// FloorplanSnapshot is the annealer benchmark block: a generated chip
// floor-planned twice — greedy (budget 0) and annealed — with the
// congestion-scored cost, measuring the search's throughput and how
// much cost the anneal recovered over the greedy baseline.
type FloorplanSnapshot struct {
	Modules int   `json:"modules"`
	Budget  int   `json:"budget"`
	Seed    int64 `json:"seed"`
	// NsPerMove is the annealed run's wall time over its move budget.
	NsPerMove  int64   `json:"ns_per_move"`
	GreedyCost float64 `json:"greedy_cost"`
	AnnealCost float64 `json:"anneal_cost"`
	// CostGainPct is (greedy-anneal)/greedy — how much of the cost the
	// anneal recovered; never negative (the search keeps the best).
	CostGainPct float64 `json:"cost_gain_pct"`
	// Routability memo effectiveness over the annealed run.
	RoutLookups  int     `json:"rout_lookups"`
	RoutMemoHits int     `json:"rout_memo_hits"`
	MemoHitRatio float64 `json:"memo_hit_ratio"`
}

// TelemetrySnapshot is the telemetry-overhead benchmark block: the
// same request log replayed against the service bare (no flight
// recorder, no sampler, no trace store) and fully instrumented
// (flight ring + tail sampler at rate 1.0 + persistent trace store),
// plus the allocation pin on the disabled path — the structural
// guarantee that telemetry costs nothing when it is off.
type TelemetrySnapshot struct {
	Requests int `json:"requests"`
	// BareNsPerReq and SampledNsPerReq are mean end-to-end request
	// times over the replay, telemetry off vs fully on.
	BareNsPerReq    int64 `json:"bare_ns_per_req"`
	SampledNsPerReq int64 `json:"sampled_ns_per_req"`
	// OverheadPct is (sampled-bare)/bare.  Noisy on a loaded machine;
	// the honest number is the alloc pin below, which is exact.
	OverheadPct float64 `json:"overhead_pct"`
	// DisabledPathAllocs is allocs/op of the sampling-disabled fast
	// path (nil sampler keep + histogram observe); the run fails if it
	// is not exactly 0.
	DisabledPathAllocs float64 `json:"disabled_path_allocs"`
	// Trace-store counters after the sampled pass.
	TracesSeen    int64 `json:"traces_seen"`
	TracesKept    int64 `json:"traces_kept"`
	TracesDropped int64 `json:"traces_dropped"`
	StoreBytes    int64 `json:"store_bytes"`
	StoreRecords  int64 `json:"store_records"`
}

// StoreSnapshot is the persistent-store benchmark block: a request
// log replayed twice against the real HTTP service over the same
// store directory.  The cold pass starts with an empty store, so its
// first-hit time is the full compute path; the warm pass restarts the
// service (empty LRUs) against the now-populated directory, so its
// first-hit time is a disk read.  The hit ratio is store hits over
// replayed requests in the warm pass — repeats within the pass land
// in the rehydrated LRU, which is the intended production shape.
type StoreSnapshot struct {
	Requests       int     `json:"requests"`
	Modules        int     `json:"modules"`
	ColdFirstHitUs float64 `json:"cold_first_hit_us"`
	WarmFirstHitUs float64 `json:"warm_first_hit_us"`
	// WarmSpeedup is ColdFirstHitUs / WarmFirstHitUs.
	WarmSpeedup float64 `json:"warm_speedup"`
	StoreHits   int64   `json:"store_hits"`
	StoreMisses int64   `json:"store_misses"`
	HitRatio    float64 `json:"hit_ratio"`
}

// EcoSnapshot is the incremental-re-estimation benchmark block: the
// same edit sequence replayed through the from-scratch route (parse-
// equivalent circuit, cold distribution memo, full compile) and the
// Plan.Delta route (shared §3 statistics, warm process-wide memo).
// HashMismatches counts edit steps where the two routes disagreed on
// the child plan's content address — any nonzero value is a
// correctness failure, not a perf number.
type EcoSnapshot struct {
	Modules        int     `json:"modules"`
	Edits          int     `json:"edits_per_module"`
	FullNsPerEdit  int64   `json:"full_ns_per_edit"`
	DeltaNsPerEdit int64   `json:"delta_ns_per_edit"`
	Speedup        float64 `json:"speedup"`
	HashMismatches int     `json:"hash_mismatches"`
}

// RuntimeSnapshot is the runtime-telemetry block of a bench snapshot.
type RuntimeSnapshot struct {
	Goroutines        uint64  `json:"goroutines"`
	HeapBytes         uint64  `json:"heap_bytes"`
	GCCycles          uint64  `json:"gc_cycles"`
	GCPauseP50Seconds float64 `json:"gc_pause_p50_seconds"`
	GCPauseP99Seconds float64 `json:"gc_pause_p99_seconds"`
	SchedLatP99Secs   float64 `json:"sched_latency_p99_seconds"`
}

// AccuracySnapshot records per-module estimation error alongside the
// golden (paper-anchored) error, so drift is separable from the
// paper-matching baseline error the model is expected to have.
type AccuracySnapshot struct {
	Seed    int64  `json:"seed"`
	Process string `json:"process"`
	// MaxDriftPP is the largest |ErrPct - GoldenPct| across modules,
	// in percentage points — the single number to watch.
	MaxDriftPP float64          `json:"max_drift_pp"`
	Modules    []ModuleAccuracy `json:"modules"`
}

// ModuleAccuracy is one module×configuration accuracy measurement.
type ModuleAccuracy struct {
	Table  int    `json:"table"`  // 1 or 2
	Module string `json:"module"` // e.g. fc-rslatch_xtor, sc-exp1
	// Config names the estimation mode: "exact"/"average" device
	// areas for Table 1, "rows=N" for Table 2.
	Config    string  `json:"config"`
	ErrPct    float64 `json:"err_pct"`    // measured signed error, percent
	GoldenPct float64 `json:"golden_pct"` // the checked-in golden's error
	DriftPP   float64 `json:"drift_pp"`   // |ErrPct - GoldenPct|
}

// PerfSnapshot records estimator throughput and service latency.
type PerfSnapshot struct {
	// EstimateNsPerOp is wall time per full suite estimation pass
	// (parse→gather→estimate for every generated module).
	EstimateNsPerOp int64          `json:"estimate_ns_per_op"`
	EstimateOps     int            `json:"estimate_ops"`
	Endpoints       []EndpointPerf `json:"endpoints"`
}

// EndpointPerf is the serve-pipeline latency distribution of one
// endpoint, measured end-to-end over a real socket.
type EndpointPerf struct {
	Endpoint  string  `json:"endpoint"`
	Count     int64   `json:"count"`
	MeanUs    float64 `json:"mean_us"`
	P50Micros float64 `json:"p50_us"`
	P90Micros float64 `json:"p90_us"`
	P99Micros float64 `json:"p99_us"`
}

// BuildAccuracy reruns the Table 1 and Table 2 experiments and diffs
// each module's error percentage against the golden tables under
// goldenDir (testdata/golden/table{1,2}.txt).
func BuildAccuracy(goldenDir string, p *tech.Process, seed int64) (AccuracySnapshot, error) {
	return BuildAccuracyCtx(context.Background(), goldenDir, p, seed, nil)
}

// BuildAccuracyCtx is BuildAccuracy with a caller context and an
// optional plan resolver (nil = engine.CompileCtx) — the serve
// accuracy watchdog passes its live plan cache here so every probe
// exercises the serving stack's own compilation path.
func BuildAccuracyCtx(ctx context.Context, goldenDir string, p *tech.Process, seed int64, compile CompileFunc) (AccuracySnapshot, error) {
	snap := AccuracySnapshot{Seed: seed, Process: p.Name}

	golden1, err := parseGoldenTable1(filepath.Join(goldenDir, "table1.txt"))
	if err != nil {
		return snap, err
	}
	golden2, err := parseGoldenTable2(filepath.Join(goldenDir, "table2.txt"))
	if err != nil {
		return snap, err
	}

	rows1, err := RunTable1Ctx(ctx, p, seed, compile)
	if err != nil {
		return snap, fmt.Errorf("bench: table 1: %w", err)
	}
	for _, r := range rows1 {
		g, ok := golden1[r.Module]
		if !ok {
			return snap, fmt.Errorf("bench: module %q not in golden table 1", r.Module)
		}
		snap.add(ModuleAccuracy{Table: 1, Module: r.Module, Config: "exact",
			ErrPct: r.ErrExact * 100, GoldenPct: g.errExact})
		snap.add(ModuleAccuracy{Table: 1, Module: r.Module, Config: "average",
			ErrPct: r.ErrAverage * 100, GoldenPct: g.errAverage})
	}

	rows2, err := RunTable2Ctx(ctx, p, seed, compile)
	if err != nil {
		return snap, fmt.Errorf("bench: table 2: %w", err)
	}
	for _, r := range rows2 {
		key := fmt.Sprintf("%s/rows=%d", r.Module, r.Rows)
		g, ok := golden2[key]
		if !ok {
			return snap, fmt.Errorf("bench: config %q not in golden table 2", key)
		}
		snap.add(ModuleAccuracy{Table: 2, Module: r.Module,
			Config: fmt.Sprintf("rows=%d", r.Rows),
			ErrPct: r.Overestimate * 100, GoldenPct: g})
	}
	return snap, nil
}

func (a *AccuracySnapshot) add(m ModuleAccuracy) {
	m.DriftPP = math.Abs(m.ErrPct - m.GoldenPct)
	if m.DriftPP > a.MaxDriftPP {
		a.MaxDriftPP = m.DriftPP
	}
	a.Modules = append(a.Modules, m)
}

type goldenErrs struct{ errExact, errAverage float64 }

// goldenRows yields the data lines of a rendered golden table,
// skipping the title, header, and dashed separator.
func goldenRows(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bench: golden: %w", err)
	}
	defer f.Close()
	var rows [][]string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "Table") ||
			strings.HasPrefix(line, "Module") || strings.HasPrefix(line, "---") {
			continue
		}
		rows = append(rows, strings.Fields(line))
	}
	return rows, sc.Err()
}

func goldenPct(field string) (float64, error) {
	return strconv.ParseFloat(strings.TrimPrefix(field, "+"), 64)
}

// parseGoldenTable1 maps module name → golden Err(ex)%/Err(av)%
// (columns 10 and 11 of the Table 1 layout).
func parseGoldenTable1(path string) (map[string]goldenErrs, error) {
	rows, err := goldenRows(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]goldenErrs, len(rows))
	for _, f := range rows {
		if len(f) < 12 {
			return nil, fmt.Errorf("bench: short table 1 row %v", f)
		}
		ex, err := goldenPct(f[10])
		if err != nil {
			return nil, fmt.Errorf("bench: table 1 Err(ex) %q: %w", f[10], err)
		}
		av, err := goldenPct(f[11])
		if err != nil {
			return nil, fmt.Errorf("bench: table 1 Err(av) %q: %w", f[11], err)
		}
		out[f[0]] = goldenErrs{errExact: ex, errAverage: av}
	}
	return out, nil
}

// parseGoldenTable2 maps "module/rows=N" → golden Over% (column 10 of
// the Table 2 layout).
func parseGoldenTable2(path string) (map[string]float64, error) {
	rows, err := goldenRows(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(rows))
	for _, f := range rows {
		if len(f) < 11 {
			return nil, fmt.Errorf("bench: short table 2 row %v", f)
		}
		over, err := goldenPct(f[10])
		if err != nil {
			return nil, fmt.Errorf("bench: table 2 Over%% %q: %w", f[10], err)
		}
		out[fmt.Sprintf("%s/rows=%d", f[0], atoiOr(f[1]))] = over
	}
	return out, nil
}

func atoiOr(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

// WriteBenchSnapshot writes the snapshot as indented JSON.
func WriteBenchSnapshot(path string, s *BenchSnapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadBenchSnapshot loads a snapshot written by WriteBenchSnapshot.
func ReadBenchSnapshot(path string) (*BenchSnapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s BenchSnapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &s, nil
}

// CompareBench diffs a new snapshot against a reference and returns
// one message per regression (empty = clean).
//
// Accuracy regresses when a module's drift from golden grows by more
// than tolPP percentage points beyond the reference drift, or when a
// reference module disappears.  Perf is compared only when perfTol
// is positive (it is machine-dependent, so CI keeps it off): the
// estimator ns/op and every endpoint p99 may grow by at most the
// given fraction (0.25 = +25%).
func CompareBench(old, new *BenchSnapshot, tolPP, perfTol float64) []string {
	if old.Schema != new.Schema {
		return []string{fmt.Sprintf("schema mismatch: reference %d vs new %d (regenerate the reference)",
			old.Schema, new.Schema)}
	}
	regressions := CompareAccuracy(&old.Accuracy, &new.Accuracy, tolPP)

	if perfTol > 0 {
		if old.Perf.EstimateNsPerOp > 0 {
			limit := float64(old.Perf.EstimateNsPerOp) * (1 + perfTol)
			if float64(new.Perf.EstimateNsPerOp) > limit {
				regressions = append(regressions, fmt.Sprintf(
					"perf: estimator %d ns/op exceeds reference %d ns/op by more than %.0f%%",
					new.Perf.EstimateNsPerOp, old.Perf.EstimateNsPerOp, perfTol*100))
			}
		}
		oldEp := make(map[string]EndpointPerf, len(old.Perf.Endpoints))
		for _, ep := range old.Perf.Endpoints {
			oldEp[ep.Endpoint] = ep
		}
		for _, ep := range new.Perf.Endpoints {
			ref, ok := oldEp[ep.Endpoint]
			if !ok || ref.P99Micros <= 0 {
				continue
			}
			if ep.P99Micros > ref.P99Micros*(1+perfTol) {
				regressions = append(regressions, fmt.Sprintf(
					"perf: %s p99 %.0fus exceeds reference %.0fus by more than %.0f%%",
					ep.Endpoint, ep.P99Micros, ref.P99Micros, perfTol*100))
			}
		}
	}
	if new.Eco != nil {
		// Bit-identity is a hard gate regardless of perf tolerances.
		if new.Eco.HashMismatches > 0 {
			regressions = append(regressions, fmt.Sprintf(
				"eco: %d edit steps diverged from the recompile route (bit-identity broken)",
				new.Eco.HashMismatches))
		}
		if perfTol > 0 && old.Eco != nil && old.Eco.Speedup > 0 &&
			new.Eco.Speedup < old.Eco.Speedup*(1-perfTol) {
			regressions = append(regressions, fmt.Sprintf(
				"eco: speedup %.1fx fell below reference %.1fx by more than %.0f%%",
				new.Eco.Speedup, old.Eco.Speedup, perfTol*100))
		}
	}
	return regressions
}

// CompareAccuracy diffs a fresh accuracy snapshot against a reference
// and returns one message per regression (empty = clean): a module
// whose drift from golden grew by more than tolPP percentage points
// beyond the reference drift, or a reference module missing from the
// fresh snapshot.  CompareBench and the serve accuracy watchdog share
// this judgement.
func CompareAccuracy(old, new *AccuracySnapshot, tolPP float64) []string {
	var regressions []string
	newModules := make(map[string]ModuleAccuracy, len(new.Modules))
	for _, m := range new.Modules {
		newModules[m.Module+"/"+m.Config] = m
	}
	var keys []string
	oldModules := make(map[string]ModuleAccuracy, len(old.Modules))
	for _, m := range old.Modules {
		k := m.Module + "/" + m.Config
		oldModules[k] = m
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		om := oldModules[k]
		nm, ok := newModules[k]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("accuracy: %s missing from new snapshot", k))
			continue
		}
		if nm.DriftPP > om.DriftPP+tolPP {
			regressions = append(regressions, fmt.Sprintf(
				"accuracy: %s drifted to %.2fpp from golden (reference %.2fpp, tolerance %.2fpp): err %+.2f%% vs golden %+.2f%%",
				k, nm.DriftPP, om.DriftPP, tolPP, nm.ErrPct, nm.GoldenPct))
		}
	}
	return regressions
}
