package report

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"maest/internal/tech"
)

var update = flag.Bool("update", false, "rewrite golden files")

func goldenPath(name string) string {
	return filepath.Join("..", "..", "testdata", "golden", name)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden (run with -update after intentional changes)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// The rendered evaluation tables are fully deterministic (seeded
// generators, seeded annealing); golden files pin them so model or
// engine regressions surface as diffs.  Both tests resolve plans
// through the package's shared testCompile cache — the accuracy test
// reruns the same suites, so recompiling here would be pure waste.
func TestTable1Golden(t *testing.T) {
	rows, err := RunTable1Ctx(context.Background(), tech.NMOS25(), 1, testCompile)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Table1(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1.txt", buf.Bytes())
}

func TestTable2Golden(t *testing.T) {
	rows, err := RunTable2Ctx(context.Background(), tech.NMOS25(), 1, testCompile)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Table2(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table2.txt", buf.Bytes())
}
