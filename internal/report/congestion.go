package report

import (
	"maest/internal/congest"
	"maest/internal/gen"
	"maest/internal/netlist"
	"maest/internal/place"
	"maest/internal/route"
	"maest/internal/tech"
)

// CongestRow is one congestion-validation line: a module's predicted
// per-channel track densities (crossing model) scored against the
// channel assignments the spine router actually produced.
type CongestRow struct {
	Module string
	Rows   int
	// PredictedTracks is the map's total expected track demand;
	// ActualTracks is the router's total.
	PredictedTracks float64
	ActualTracks    int
	// MAE is the mean absolute per-channel track error, Bias the
	// signed mean (positive = the model over-predicts).
	MAE  float64
	Bias float64
	// PeakUtil / PeakOverflow / HotChannel summarize the predicted
	// map's risk picture.
	PeakUtil     float64
	PeakOverflow float64
	HotChannel   int
}

// RunCongestValidation scores the crossing-model congestion maps
// against routed layouts over both experiment suites: every Table 2
// standard-cell configuration, plus the Table 1 full-custom modules
// placed and routed at their ⌈√N⌉ grid row count.
func RunCongestValidation(p *tech.Process, seed int64) ([]CongestRow, error) {
	var rows []CongestRow

	scSuite, err := gen.StandardCellSuite(p)
	if err != nil {
		return nil, err
	}
	for i, c := range scSuite {
		if i >= len(Table2RowCounts) {
			break
		}
		for _, n := range Table2RowCounts[i] {
			row, err := congestRow(c, p, n, seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}

	fcSuite, err := gen.FullCustomSuite(p)
	if err != nil {
		return nil, err
	}
	for _, c := range fcSuite {
		s, err := netlist.Gather(c, p)
		if err != nil {
			return nil, err
		}
		row, err := congestRow(c, p, congest.GridRows(s), seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// congestRow analyzes, places, routes, and validates one module at a
// fixed row count.
func congestRow(c *netlist.Circuit, p *tech.Process, n int, seed int64) (CongestRow, error) {
	s, err := netlist.Gather(c, p)
	if err != nil {
		return CongestRow{}, err
	}
	m, err := congest.Analyze(s, n, congest.Options{Model: congest.ModelCrossing})
	if err != nil {
		return CongestRow{}, err
	}
	pl, err := place.Place(c, p, place.Options{Rows: n, Seed: seed})
	if err != nil {
		return CongestRow{}, err
	}
	routed, err := route.RouteModule(pl, route.Options{})
	if err != nil {
		return CongestRow{}, err
	}
	v, err := congest.ValidateRoute(m, routed)
	if err != nil {
		return CongestRow{}, err
	}
	return CongestRow{
		Module:          c.Name,
		Rows:            n,
		PredictedTracks: v.PredictedTotal,
		ActualTracks:    v.ActualTotal,
		MAE:             v.MAE,
		Bias:            v.Bias,
		PeakUtil:        m.MaxUtilization(),
		PeakOverflow:    m.MaxOverflow(),
		HotChannel:      m.HottestChannel(),
	}, nil
}

// CongestTable renders the congestion validation in the evaluation
// report's table layout.
func CongestTable(rows []CongestRow) *Table {
	t := &Table{
		Title: "Congestion validation: predicted channel densities vs. routed tracks",
		Header: []string{"Module", "Rows", "TrkPred", "TrkReal",
			"MAE/ch", "Bias/ch", "PeakUtil", "PeakP(over)", "HotCh"},
	}
	for _, r := range rows {
		t.AddRow(r.Module, r.Rows, r.PredictedTracks, r.ActualTracks,
			r.MAE, r.Bias, r.PeakUtil, r.PeakOverflow, r.HotChannel)
	}
	return t
}
