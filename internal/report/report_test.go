package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"maest/internal/tech"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "bbbb", "c"},
	}
	tab.AddRow(1, "x", 3.14159)
	tab.AddRow("longer", 2.0, 12345.6)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	if !strings.Contains(out, "demo") || !strings.Contains(out, "3.14") {
		t.Fatalf("missing content:\n%s", out)
	}
	// Large floats render without decimals.
	if !strings.Contains(out, "12346") {
		t.Fatalf("large float formatting:\n%s", out)
	}
}

func TestRunTable1ShapeClaims(t *testing.T) {
	p := tech.NMOS25()
	rows, err := RunTable1(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
	// The pass-ladder module (all 2-component nets) must have zero
	// estimated wire area — the paper's footnote.
	if rows[0].Module != "fc-passladder" || rows[0].WireAreaExact != 0 {
		t.Fatalf("footnote case broken: %+v", rows[0])
	}
	for _, r := range rows {
		if r.RealArea <= 0 || r.TotalExact <= 0 || r.TotalAverage <= 0 {
			t.Fatalf("%s: degenerate areas %+v", r.Module, r)
		}
		// Paper's shape: estimates are close for small modules —
		// every error within a ±35% band (paper: −17%…+26%) and the
		// suite mean |error| near the paper's 12%.
		if math.Abs(r.ErrExact) > 0.35 {
			t.Errorf("%s: exact-mode error %.1f%% outside band", r.Module, r.ErrExact*100)
		}
	}
	mean := 0.0
	for _, r := range rows {
		mean += math.Abs(r.ErrExact)
	}
	mean /= float64(len(rows))
	if mean > 0.25 {
		t.Errorf("mean |error| %.1f%% too large for the Table 1 claim", mean*100)
	}
	// Rendering works.
	var buf bytes.Buffer
	if err := Table1(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fc-fulladder") {
		t.Fatal("table missing module")
	}
}

func TestRunTable2ShapeClaims(t *testing.T) {
	p := tech.NMOS25()
	rows, err := RunTable2(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // 3 + 2 configurations
		t.Fatalf("Table 2 has %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		// The estimator is an upper bound: overestimates, never
		// under.
		if r.Overestimate <= 0 {
			t.Errorf("%s rows=%d: estimator did not overestimate (%.1f%%)",
				r.Module, r.Rows, r.Overestimate*100)
		}
		if r.TracksEstimated <= r.TracksReal {
			t.Errorf("%s rows=%d: estimated tracks %d not above real %d",
				r.Module, r.Rows, r.TracksEstimated, r.TracksReal)
		}
		// The §7 sharing extension must cut the overestimate.
		if r.SharedOverest >= r.Overestimate {
			t.Errorf("%s rows=%d: sharing did not reduce overestimate", r.Module, r.Rows)
		}
	}
	var buf bytes.Buffer
	if err := Table2(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sc-exp1") {
		t.Fatal("table missing module")
	}
}
