package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/tech"
)

// Chip-scale metrics: the worker pool is the throughput engine of the
// "estimate every module, then floor-plan" workflow, so its
// utilization is what tells whether the pipeline runs as fast as the
// hardware allows.
var (
	mChips       = obs.DefCounter("maest_chip_estimates_total", "completed chip-level estimate runs")
	mChipModules = obs.DefCounter("maest_chip_modules_total", "modules estimated through the chip worker pool")
	mChipWorkers = obs.DefGauge("maest_chip_workers", "worker count of the most recent chip estimate")
	mChipWorkSec = obs.DefHistogram("maest_chip_wall_seconds", "chip estimate wall-clock latency", obs.DefBuckets)
	mChipUtil    = obs.DefHistogram("maest_chip_worker_utilization_ratio", "per-worker busy fraction of a chip estimate", obs.RatioBuckets)
)

// EstimateChip estimates every module of a partitioned chip
// concurrently — the paper's workflow estimates each module
// independently before floor planning, which parallelizes perfectly.
// Results are returned in module order.  When several modules fail,
// every failure is reported (errors.Join), each tagged with its
// module name.  workers ≤ 0 selects GOMAXPROCS.
func EstimateChip(modules []*netlist.Circuit, p *tech.Process, opts SCOptions, workers int) ([]*Result, error) {
	return EstimateChipCtx(context.Background(), modules, p, opts, workers)
}

// EstimateChipCtx is EstimateChip with observability: an
// "estimate_chip" span parenting one "estimate" span per module, and
// worker-pool utilization metrics.
func EstimateChipCtx(ctx context.Context, modules []*netlist.Circuit, p *tech.Process, opts SCOptions, workers int) (res []*Result, err error) {
	ctx, sp := obs.Start(ctx, "estimate_chip")
	defer func() { sp.EndErr(err) }()
	if len(modules) == 0 {
		return nil, estErr("chip has no modules")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(modules) {
		workers = len(modules)
	}
	sp.SetInt("modules", int64(len(modules)))
	sp.SetInt("workers", int64(workers))

	results := make([]*Result, len(modules))
	errs := make([]error, len(modules))
	busy := make([]time.Duration, workers)
	idx := make(chan int)
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				// Cancellation check per module: a module already
				// estimating runs to completion (the estimator is not
				// preemptible), but unstarted ones are skipped so the
				// pool winds down promptly.
				if ctx.Err() != nil {
					continue
				}
				// Each worker uses its own process copy: estimation
				// only reads the process, but a private clone keeps
				// the API contract obvious and race-detector clean
				// even if callers mutate theirs concurrently.
				start := time.Now()
				results[i], errs[i] = EstimateCtx(ctx, modules[i], p.Clone(), opts)
				busy[w] += time.Since(start)
			}
		}(w)
	}
feed:
	for i := range modules {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if cerr := ctx.Err(); cerr != nil {
		// Surface the cancellation itself: partial results are not
		// a usable chip estimate, and module errors observed after
		// the deadline are noise.
		sp.SetString("cancelled", cerr.Error())
		return nil, cerr
	}

	wall := time.Since(t0)
	mChips.Inc()
	mChipModules.Add(int64(len(modules)))
	mChipWorkers.Set(float64(workers))
	mChipWorkSec.Observe(wall.Seconds())
	if wall > 0 {
		var util float64
		for _, b := range busy {
			r := b.Seconds() / wall.Seconds()
			mChipUtil.Observe(r)
			util += r
		}
		sp.SetFloat("utilization", util/float64(workers))
	}

	// Aggregate every module failure — a multi-module run must be
	// diagnosable in one pass, not one lowest-index error at a time.
	var failures []error
	for i, e := range errs {
		if e != nil {
			failures = append(failures, fmt.Errorf("%w (module %q)", e, modules[i].Name))
		}
	}
	if len(failures) > 0 {
		sp.SetInt("failed_modules", int64(len(failures)))
		return nil, errors.Join(failures...)
	}
	return results, nil
}
