package core

import (
	"fmt"
	"runtime"
	"sync"

	"maest/internal/netlist"
	"maest/internal/tech"
)

// EstimateChip estimates every module of a partitioned chip
// concurrently — the paper's workflow estimates each module
// independently before floor planning, which parallelizes perfectly.
// Results are returned in module order; the first (lowest-index)
// failure is reported.  workers ≤ 0 selects GOMAXPROCS.
func EstimateChip(modules []*netlist.Circuit, p *tech.Process, opts SCOptions, workers int) ([]*Result, error) {
	if len(modules) == 0 {
		return nil, estErr("chip has no modules")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(modules) {
		workers = len(modules)
	}
	results := make([]*Result, len(modules))
	errs := make([]error, len(modules))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// Each worker uses its own process copy: estimation
				// only reads the process, but a private clone keeps
				// the API contract obvious and race-detector clean
				// even if callers mutate theirs concurrently.
				results[i], errs[i] = Estimate(modules[i], p.Clone(), opts)
			}
		}()
	}
	for i := range modules {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%w (module %q)", err, modules[i].Name)
		}
	}
	return results, nil
}
