package core

import (
	"math"

	"maest/internal/geom"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// FCMode selects which device-area model Eq. 13 runs with; the paper
// performs the estimation "first ... using exact device areas and
// again ... using the average device area" (Table 1 reports both).
type FCMode int

const (
	// FCExactAreas uses each device type's exact footprint.
	FCExactAreas FCMode = iota
	// FCAverageAreas uses N × W_avg × h_avg.
	FCAverageAreas
)

// String implements fmt.Stringer.
func (m FCMode) String() string {
	if m == FCExactAreas {
		return "exact"
	}
	return "average"
}

// FCEstimate is the Full-Custom estimation result (lengths in λ,
// areas in λ²).
type FCEstimate struct {
	Module string
	Mode   FCMode
	// DeviceArea is the active-device contribution.
	DeviceArea float64
	// WireArea is Σ Aⱼ, the per-net minimum interconnection areas.
	WireArea float64
	// Area is the Eq. 13 total.
	Area float64
	// Width and Height realize the §5 aspect-ratio algorithm: 1:1
	// unless the port perimeter forces a stretch.
	Width, Height float64
	// AspectRatio is Width / Height.
	AspectRatio float64
}

// EstimateFullCustom runs the §4.2 minimum-interconnection-area model
// on a transistor-level circuit.  Per-net interconnect follows the
// paper's two-row/one-track-channel model: the net's D devices are
// assumed split into two rows of ⌈D/2⌉ with a single-track channel
// between them, so
//
//	Aⱼ = trackPitch × ⌈D/2⌉ × w̄(net),
//
// where w̄ is the mean width of the net's devices (exact mode) or the
// module-wide W_avg (average mode).  Two-component nets contribute
// nothing — the two devices abut and connect directly, matching the
// Table 1 footnote ("All nets in this module were two-component nets,
// and therefore contributed nothing to wire area").
func EstimateFullCustom(c *netlist.Circuit, p *tech.Process, mode FCMode) (*FCEstimate, error) {
	if err := p.Validate(); err != nil {
		return nil, estErr("full-custom %q: %v", c.Name, err)
	}
	if mode != FCExactAreas && mode != FCAverageAreas {
		return nil, estErr("full-custom %q: unknown mode %d", c.Name, int(mode))
	}
	s, err := netlist.Gather(c, p)
	if err != nil {
		return nil, estErr("full-custom %q: %v", c.Name, err)
	}
	if s.N == 0 {
		return nil, estErr("full-custom %q: no devices", c.Name)
	}
	widths, _, err := netlist.DeviceDims(c, p)
	if err != nil {
		return nil, estErr("full-custom %q: %v", c.Name, err)
	}

	deviceArea := float64(s.ExactDeviceArea)
	if mode == FCAverageAreas {
		deviceArea = float64(s.N) * s.AvgDeviceArea()
	}

	wire := 0.0
	pitch := float64(p.TrackPitch)
	for _, net := range c.Nets {
		d := net.Degree()
		if d <= 2 {
			continue
		}
		var w float64
		if mode == FCExactAreas {
			sum := geom.Lambda(0)
			for _, dev := range net.Devices {
				sum += widths[dev.Index]
			}
			w = float64(sum) / float64(d)
		} else {
			w = s.AvgWidth()
		}
		rowLen := math.Ceil(float64(d)/2) * w
		wire += pitch * rowLen
	}

	total := deviceArea + wire
	width, height := fitPorts(total, float64(s.NumPorts)*float64(p.PortPitch))
	est := &FCEstimate{
		Module:     c.Name,
		Mode:       mode,
		DeviceArea: deviceArea,
		WireArea:   wire,
		Area:       total,
		Width:      width,
		Height:     height,
	}
	if height > 0 {
		est.AspectRatio = width / height
	}
	return est, nil
}

// fitPorts implements the §5 Full-Custom aspect-ratio algorithm:
// assume 1:1 (side = √area); if the total port length exceeds the
// side, stretch the module so one edge carries all ports (width =
// port length, height = area / width).
func fitPorts(area, portLen float64) (width, height float64) {
	if area <= 0 {
		return 0, 0
	}
	side := math.Sqrt(area)
	if portLen <= side {
		return side, side
	}
	return portLen, area / portLen
}
