package core

import (
	"errors"
	"testing"

	"maest/internal/netlist"
	"maest/internal/tech"
)

// The strict candidate contract: every degenerate request maps to a
// defined, branchable error class, and every class still tags the
// generic ErrEstimate so existing errors.Is call sites (the serving
// layer's 422 mapping) keep working.

func TestCandidatesCountError(t *testing.T) {
	s := gatherChain(t, 10)
	p := tech.NMOS25()
	for _, count := range []int{0, -1, -5} {
		_, err := EstimateStandardCellCandidates(s, p, SCOptions{}, count)
		if !errors.Is(err, ErrCandidateCount) {
			t.Errorf("count=%d: err = %v, want ErrCandidateCount", count, err)
		}
		if !errors.Is(err, ErrEstimate) {
			t.Errorf("count=%d: error not tagged ErrEstimate: %v", count, err)
		}
	}
}

func TestCandidatesRangeError(t *testing.T) {
	// A 3-device module has feasible row counts 1..3: asking for more
	// candidates than that range is a defined error, not a short or
	// duplicated slice.
	s := gatherChain(t, 3)
	p := tech.NMOS25()
	for _, count := range []int{4, 5, 100} {
		_, err := EstimateStandardCellCandidates(s, p, SCOptions{}, count)
		if !errors.Is(err, ErrCandidateRange) {
			t.Errorf("count=%d: err = %v, want ErrCandidateRange", count, err)
		}
		if !errors.Is(err, ErrEstimate) {
			t.Errorf("count=%d: error not tagged ErrEstimate: %v", count, err)
		}
	}
	// The boundary itself is fine.
	cands, err := EstimateStandardCellCandidates(s, p, SCOptions{}, 3)
	if err != nil {
		t.Fatalf("count=N rejected: %v", err)
	}
	if len(cands) != 3 {
		t.Fatalf("got %d candidates, want 3", len(cands))
	}
}

func TestCandidatesPortInfeasible(t *testing.T) {
	// Inflate the port count until no candidate shape offers enough
	// perimeter: the strict contract returns a defined error instead
	// of a slice of useless shapes.
	s := gatherChain(t, 10)
	heavy := *s
	heavy.NumPorts = 100_000
	p := tech.NMOS25()
	_, err := EstimateStandardCellCandidates(&heavy, p, SCOptions{}, 5)
	if !errors.Is(err, ErrPortInfeasible) {
		t.Fatalf("err = %v, want ErrPortInfeasible", err)
	}
	if !errors.Is(err, ErrEstimate) {
		t.Fatalf("error not tagged ErrEstimate: %v", err)
	}
}

// The lenient sweep kernel keeps the historical pipeline behavior the
// strict surface departs from: degenerate windows clamp instead of
// erroring, so a bundle estimate of a tiny module still gets shapes.
func TestSweepClampsWindow(t *testing.T) {
	p := tech.NMOS25()
	b := netlist.NewBuilder("tiny")
	b.AddPort("pa", netlist.In, "a")
	b.AddDevice("g", "INV", "a", "y")
	b.AddPort("py", netlist.Out, "y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := netlist.Gather(c, p)
	if err != nil {
		t.Fatal(err)
	}
	// One device, five candidates: the sweep walks rows 1..5 exactly
	// as the pipeline always has.
	cands, err := SweepStandardCellShapes(s, p, SCOptions{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 5 {
		t.Fatalf("got %d candidates, want 5", len(cands))
	}
	for i, est := range cands {
		if est.Rows != i+1 {
			t.Fatalf("candidate %d at rows=%d, want %d", i, est.Rows, i+1)
		}
	}
	// The strict surface rejects the same request.
	if _, err := EstimateStandardCellCandidates(s, p, SCOptions{}, 5); !errors.Is(err, ErrCandidateRange) {
		t.Fatalf("strict surface accepted count > N: %v", err)
	}
}
