package core

import (
	"fmt"
	"math"
	"testing"

	"maest/internal/netlist"
	"maest/internal/tech"
)

// buildFC returns a transistor-level circuit with one D-component net
// plus per-device gate nets:
//
//	shared net "s" connects the drains of D ENH transistors.
func buildFC(t testing.TB, d int) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder(fmt.Sprintf("fc%d", d))
	for i := 0; i < d; i++ {
		g := fmt.Sprintf("g%d", i)
		b.AddDevice(fmt.Sprintf("m%d", i), "ENH", g, "", "s")
		b.AddPort("p"+g, netlist.In, g)
	}
	b.AddPort("ps", netlist.Out, "s")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEstimateFullCustomByHand(t *testing.T) {
	// 5 ENH transistors (8x8), one 5-component net, nMOS.
	// Device area (exact) = 5*64 = 320.
	// Wire: D=5 -> ceil(5/2)=3 devices long, mean width 8,
	// A = 7 * 3 * 8 = 168.
	c := buildFC(t, 5)
	p := tech.NMOS25()
	est, err := EstimateFullCustom(c, p, FCExactAreas)
	if err != nil {
		t.Fatal(err)
	}
	if est.DeviceArea != 320 {
		t.Fatalf("device area = %g", est.DeviceArea)
	}
	if math.Abs(est.WireArea-168) > 1e-9 {
		t.Fatalf("wire area = %g, want 168", est.WireArea)
	}
	if math.Abs(est.Area-488) > 1e-9 {
		t.Fatalf("total = %g", est.Area)
	}
	// Average mode: all devices identical -> same numbers.
	avg, err := EstimateFullCustom(c, p, FCAverageAreas)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg.Area-est.Area) > 1e-9 {
		t.Fatalf("uniform circuit: avg %g != exact %g", avg.Area, est.Area)
	}
	if est.Mode.String() != "exact" || avg.Mode.String() != "average" {
		t.Fatal("mode strings wrong")
	}
}

func TestTwoComponentNetsContributeNothing(t *testing.T) {
	// The Table 1 footnote: a module whose nets are all two-component
	// has zero estimated wire area.
	b := netlist.NewBuilder("pairs")
	b.AddDevice("m0", "ENH", "a", "", "x")
	b.AddDevice("m1", "DEP", "x", "x", "")
	b.AddDevice("m2", "ENH", "x", "", "y")
	b.AddDevice("m3", "DEP", "y", "y", "")
	b.AddPort("pa", netlist.In, "a")
	b.AddPort("py", netlist.Out, "y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Net degrees: a=1, x: m0,m1,m2 -> 3! adjust: use chain where x
	// connects only two devices.
	est, err := EstimateFullCustom(c, tech.NMOS25(), FCExactAreas)
	if err != nil {
		t.Fatal(err)
	}
	// x has 3 distinct devices, so it does contribute; y has 2 and
	// contributes nothing.  Verify only the 3-net contributes.
	// x widths: ENH(8), DEP(8), ENH(8) -> mean 8; ceil(3/2)=2 -> 7*2*8=112.
	if math.Abs(est.WireArea-112) > 1e-9 {
		t.Fatalf("wire area = %g, want 112 (only the 3-component net)", est.WireArea)
	}

	// Now a pure 2-component-net module.
	b2 := netlist.NewBuilder("pure2")
	b2.AddDevice("m0", "ENH", "a", "", "x")
	b2.AddDevice("m1", "DEP", "x", "x", "")
	b2.AddPort("pa", netlist.In, "a")
	b2.AddPort("px", netlist.Out, "x")
	c2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	est2, err := EstimateFullCustom(c2, tech.NMOS25(), FCExactAreas)
	if err != nil {
		t.Fatal(err)
	}
	if est2.WireArea != 0 {
		t.Fatalf("two-component module wire area = %g, want 0", est2.WireArea)
	}
	if est2.Area != est2.DeviceArea {
		t.Fatal("total should equal device area")
	}
}

func TestFullCustomAspectRatio(t *testing.T) {
	// Few ports: 1:1.
	c := buildFC(t, 4)
	p := tech.NMOS25()
	est, err := EstimateFullCustom(c, p, FCExactAreas)
	if err != nil {
		t.Fatal(err)
	}
	side := math.Sqrt(est.Area)
	portLen := float64(5) * float64(p.PortPitch) // 4 gate ports + 1 out = 40
	if portLen <= side {
		if est.AspectRatio != 1 {
			t.Fatalf("aspect = %g, want 1:1", est.AspectRatio)
		}
	} else {
		if math.Abs(est.Width-portLen) > 1e-9 {
			t.Fatalf("width = %g, want port length %g", est.Width, portLen)
		}
	}
	// Many ports force a stretch.
	cBig := buildFC(t, 30) // 31 ports * 8λ = 248λ port length
	estBig, err := EstimateFullCustom(cBig, p, FCExactAreas)
	if err != nil {
		t.Fatal(err)
	}
	wantPort := float64(31) * float64(p.PortPitch)
	if math.Sqrt(estBig.Area) >= wantPort {
		t.Skip("geometry no longer forces a stretch; adjust test circuit")
	}
	if math.Abs(estBig.Width-wantPort) > 1e-9 {
		t.Fatalf("width = %g, want %g", estBig.Width, wantPort)
	}
	if math.Abs(estBig.Width*estBig.Height-estBig.Area) > 1e-6 {
		t.Fatal("width*height != area after stretch")
	}
	if estBig.AspectRatio <= 1 {
		t.Fatalf("stretched aspect = %g, want > 1", estBig.AspectRatio)
	}
}

func TestAverageVsExactDiffer(t *testing.T) {
	// Mixed device widths: exact and average modes must differ on a
	// circuit whose wide devices cluster on the high-degree net.
	b := netlist.NewBuilder("mixed")
	b.AddDevice("m0", "ENHW", "g0", "", "s") // wide (12λ)
	b.AddDevice("m1", "ENHW", "g1", "", "s")
	b.AddDevice("m2", "ENHW", "g2", "", "s")
	b.AddDevice("m3", "ENH", "s", "", "q") // narrow (8λ)
	b.AddDevice("m4", "DEP", "q", "q", "")
	b.AddPort("pg0", netlist.In, "g0")
	b.AddPort("pq", netlist.Out, "q")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := tech.NMOS25()
	exact, err := EstimateFullCustom(c, p, FCExactAreas)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := EstimateFullCustom(c, p, FCAverageAreas)
	if err != nil {
		t.Fatal(err)
	}
	// Net s: devices m0,m1,m2,m3 -> D=4, exact mean width =
	// (12+12+12+8)/4 = 11; module Wavg = (3*12+8+8)/5 = 10.4.
	wantExact := 7.0 * 2 * 11
	if math.Abs(exact.WireArea-wantExact) > 1e-9 {
		t.Fatalf("exact wire = %g, want %g", exact.WireArea, wantExact)
	}
	wantAvg := 7.0 * 2 * 10.4
	if math.Abs(avg.WireArea-wantAvg) > 1e-9 {
		t.Fatalf("avg wire = %g, want %g", avg.WireArea, wantAvg)
	}
	if exact.WireArea == avg.WireArea {
		t.Fatal("modes should differ on this circuit")
	}
}

func TestEstimateFullCustomErrors(t *testing.T) {
	c := buildFC(t, 3)
	p := tech.NMOS25()
	if _, err := EstimateFullCustom(c, p, FCMode(9)); err == nil {
		t.Error("bad mode accepted")
	}
	bad := p.Clone()
	bad.RowHeight = 0
	if _, err := EstimateFullCustom(c, bad, FCExactAreas); err == nil {
		t.Error("invalid process accepted")
	}
	// Unknown device type.
	b := netlist.NewBuilder("u")
	b.AddDevice("m0", "WARP", "a", "b", "c")
	b.AddDevice("m1", "ENH", "c", "b", "a")
	cu, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateFullCustom(cu, p, FCExactAreas); err == nil {
		t.Error("unknown device type accepted")
	}
}
