package core

import "maest/internal/netlist"

// Result bundles everything the Fig. 1 pipeline produces for one
// module: both methodologies' area and aspect-ratio estimates, the
// candidate shapes, and the statistics they were computed from.  It
// is the record handed to the floor-planner database.
//
// Results are assembled by the engine (internal/engine), which owns
// the orchestration that used to live here; core keeps the type so
// the database layer can consume it without importing the engine.
type Result struct {
	Module string
	Stats  *netlist.Stats
	// SC holds the Standard-Cell estimate; nil when the circuit is
	// transistor-level only (no standard-cell methodology applies).
	SC *SCEstimate
	// SCCandidates holds the §7 multi-shape output (nil when SC is).
	SCCandidates []*SCEstimate
	// FCExact and FCAverage are the two Table-1 device-area modes.
	FCExact   *FCEstimate
	FCAverage *FCEstimate
}
