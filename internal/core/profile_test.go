package core

import (
	"math"
	"testing"

	"maest/internal/netlist"
	"maest/internal/prob"
	"maest/internal/tech"
)

func TestFeedThroughRowProfileShape(t *testing.T) {
	s := gatherChain(t, 30)
	for _, n := range []int{2, 3, 5, 8} {
		prof, err := FeedThroughRowProfile(s, n)
		if err != nil {
			t.Fatal(err)
		}
		if prof.Rows != n || len(prof.PerRow) != n {
			t.Fatalf("n=%d: shape %d/%d", n, prof.Rows, len(prof.PerRow))
		}
		// The theorem: the central row carries the maximum.
		central := prob.CentralRow(n)
		maxRow, maxVal := 1, prof.PerRow[0]
		for i, v := range prof.PerRow {
			if v > maxVal {
				maxRow, maxVal = i+1, v
			}
		}
		if math.Abs(prof.PerRow[central-1]-maxVal) > 1e-12 {
			t.Fatalf("n=%d: max at row %d (%g), central %d has %g",
				n, maxRow, maxVal, central, prof.PerRow[central-1])
		}
		// For a pure 2-pin-net workload (this chain) the paper's
		// central-row bound dominates the per-row expectation.
		if prof.Max() > prof.Central+1e-9 {
			t.Fatalf("n=%d: profile max %g above central bound %g",
				n, prof.Max(), prof.Central)
		}
		// Symmetry: row i and row n+1−i are mirror images.
		for i := 0; i < n/2; i++ {
			if math.Abs(prof.PerRow[i]-prof.PerRow[n-1-i]) > 1e-9 {
				t.Fatalf("n=%d: profile not symmetric at %d", n, i)
			}
		}
		// Totals positive for multi-row.
		if n >= 3 && prof.Total() <= 0 {
			t.Fatalf("n=%d: zero total", n)
		}
	}
}

func TestFeedThroughRowProfileErrors(t *testing.T) {
	s := gatherChain(t, 10)
	if _, err := FeedThroughRowProfile(s, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestFeedThroughRowProfileSingleRow(t *testing.T) {
	// With one row no net ever crosses a row boundary, so every
	// per-row expectation (and the central bound) collapses to zero.
	s := gatherChain(t, 10)
	prof, err := FeedThroughRowProfile(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Rows != 1 || len(prof.PerRow) != 1 {
		t.Fatalf("shape %d/%d", prof.Rows, len(prof.PerRow))
	}
	if prof.PerRow[0] != 0 {
		t.Fatalf("single-row expectation = %g, want 0", prof.PerRow[0])
	}
	if prof.Max() != 0 || prof.Total() != 0 {
		t.Fatalf("Max=%g Total=%g, want 0", prof.Max(), prof.Total())
	}
}

func TestFeedThroughRowProfileEmptyHistogram(t *testing.T) {
	// A module with no multi-terminal nets: the profile is all zero,
	// but the paper's central bound (H·pc) still reflects H.
	s := &netlist.Stats{CircuitName: "empty", N: 5, H: 7}
	prof, err := FeedThroughRowProfile(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range prof.PerRow {
		if v != 0 {
			t.Fatalf("row %d expectation = %g, want 0", i+1, v)
		}
	}
	pc, err := prob.CentralFeedThroughProb(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(prof.Central-7*pc) > 1e-12 {
		t.Fatalf("central = %g, want %g", prof.Central, 7*pc)
	}
}

func TestFeedThroughRowProfileDegreeAboveRows(t *testing.T) {
	// Net degree above the row count is legal (many cells share a
	// row); the profile must stay finite and follow Eq. 4/5: edge
	// rows can never host a feed-through (nothing above row 1 or
	// below row n), the middle row carries a positive expectation.
	s := &netlist.Stats{
		CircuitName: "wide", N: 12, H: 8,
		DegreeCount: map[int]int{5: 4},
	}
	prof, err := FeedThroughRowProfile(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if prof.PerRow[0] > 1e-12 || prof.PerRow[2] > 1e-12 {
		t.Fatalf("edge rows nonzero: %v", prof.PerRow)
	}
	mid := prof.PerRow[1]
	if mid <= 0 || math.IsNaN(mid) || math.IsInf(mid, 0) {
		t.Fatalf("middle row expectation = %g", mid)
	}
	p5, err := prob.FeedThroughProb(3, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mid-4*p5) > 1e-12 {
		t.Fatalf("middle row = %g, want %g", mid, 4*p5)
	}
}

func TestEstimateStandardCellProfiled(t *testing.T) {
	p := tech.NMOS25()
	s := gatherChain(t, 40)
	base, err := EstimateStandardCell(s, p, SCOptions{Rows: 4})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := EstimateStandardCellProfiled(s, p, SCOptions{Rows: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Profiled feed-through count never exceeds the paper's bound.
	if prof.FeedThroughs > base.FeedThroughs {
		t.Fatalf("profiled %d > base %d", prof.FeedThroughs, base.FeedThroughs)
	}
	if prof.Area > base.Area+1e-9 {
		t.Fatalf("profiled area %g > base %g", prof.Area, base.Area)
	}
	// Height (tracks) unchanged: the refinement only touches width.
	if prof.Height != base.Height || prof.Tracks != base.Tracks {
		t.Fatal("profile changed the track model")
	}
	if math.Abs(prof.Area-prof.Width*prof.Height) > 1e-6 {
		t.Fatal("area decomposition broken")
	}
}

func TestProfiledSingleRow(t *testing.T) {
	p := tech.NMOS25()
	s := gatherChain(t, 10)
	prof, err := EstimateStandardCellProfiled(s, p, SCOptions{Rows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if prof.FeedThroughs != 0 {
		t.Fatalf("single row profiled feed-throughs = %d", prof.FeedThroughs)
	}
}

func TestProfileMatchesMixedDegrees(t *testing.T) {
	// Hand-check on a mixed histogram: n=3, y2=4, y5=2.
	s := &netlist.Stats{
		CircuitName: "mix", N: 10, H: 6,
		DegreeCount: map[int]int{2: 4, 5: 2},
	}
	prof, err := FeedThroughRowProfile(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := prob.FeedThroughProb(3, 2, 2)
	p5, _ := prob.FeedThroughProb(3, 5, 2)
	want := 4*p2 + 2*p5
	if math.Abs(prof.PerRow[1]-want) > 1e-12 {
		t.Fatalf("central row = %g, want %g", prof.PerRow[1], want)
	}
}

func TestProfileExceedsCentralForHighDegreeNets(t *testing.T) {
	// The flip side of the two-component simplification: a workload
	// of high-degree nets has a per-row feed-through expectation
	// above the Eq. 9 bound.
	s := &netlist.Stats{
		CircuitName: "highd", N: 40, H: 10,
		DegreeCount: map[int]int{8: 10},
	}
	prof, err := FeedThroughRowProfile(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Max() <= prof.Central {
		t.Fatalf("high-degree profile max %g should exceed central bound %g",
			prof.Max(), prof.Central)
	}
}
