package core

import (
	"fmt"
	"testing"

	"maest/internal/gen"
	"maest/internal/geom"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// Property and metamorphic tests: instead of pinning numbers, these
// pin the *shape* of the estimator's response to controlled input
// perturbations — the qualitative claims §4–§5 of the paper argue
// from, which survive any re-tuning of process constants.

// chainStats gathers estimator inputs for a k-stage inverter chain.
func chainStats(t *testing.T, k int, p *tech.Process) *netlist.Stats {
	t.Helper()
	b := netlist.NewBuilder(fmt.Sprintf("chain%d", k))
	b.AddPort("pa", netlist.In, "n0")
	for i := 0; i < k; i++ {
		b.AddDevice(fmt.Sprintf("g%d", i), "INV",
			fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	b.AddPort("py", netlist.Out, fmt.Sprintf("n%d", k))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := netlist.Gather(c, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// copyStats deep-copies estimator inputs so a test can perturb one
// §4 quantity while holding the rest fixed.
func copyStats(s *netlist.Stats) *netlist.Stats {
	c := *s
	c.WidthCount = make(map[geom.Lambda]int, len(s.WidthCount))
	for k, v := range s.WidthCount {
		c.WidthCount[k] = v
	}
	c.DegreeCount = make(map[int]int, len(s.DegreeCount))
	for k, v := range s.DegreeCount {
		c.DegreeCount[k] = v
	}
	return &c
}

// TestSCAreaMonotoneInGates pins Eq. 12's response to module size:
// with the row count held fixed, adding gates to a module never
// shrinks the estimated area (cell length grows with N, Eq. 1/12).
func TestSCAreaMonotoneInGates(t *testing.T) {
	p, err := tech.Lookup("nmos25")
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range []int{1, 3, 5} {
		prev := -1.0
		for _, k := range []int{2, 4, 8, 16, 32, 64} {
			s := chainStats(t, k, p)
			est, err := EstimateStandardCell(s, p, SCOptions{Rows: rows})
			if err != nil {
				t.Fatalf("rows=%d k=%d: %v", rows, k, err)
			}
			if est.Area < prev {
				t.Fatalf("rows=%d: area dropped from %.1f to %.1f when gates grew to %d",
					rows, prev, est.Area, k)
			}
			prev = est.Area
		}
	}
}

// TestSCAreaMonotoneInNets holds devices fixed and adds routable
// nets to the §4 histogram directly: track demand (Eqs. 2–3) and the
// feed-through count (Eq. 11) both grow with H, so area must not
// shrink.  Sharing on or off, the direction is the same.
func TestSCAreaMonotoneInNets(t *testing.T) {
	p, err := tech.Lookup("nmos25")
	if err != nil {
		t.Fatal(err)
	}
	base := chainStats(t, 24, p)
	for _, sharing := range []bool{false, true} {
		for _, rows := range []int{2, 4, 6} {
			prev := -1.0
			for extra := 0; extra <= 24; extra += 4 {
				s := copyStats(base)
				s.H += extra
				s.DegreeCount[2] += extra
				est, err := EstimateStandardCell(s, p, SCOptions{Rows: rows, TrackSharing: sharing})
				if err != nil {
					t.Fatalf("sharing=%v rows=%d extra=%d: %v", sharing, rows, extra, err)
				}
				if est.Area < prev {
					t.Fatalf("sharing=%v rows=%d: area dropped from %.1f to %.1f at %d extra nets",
						sharing, rows, prev, est.Area, extra)
				}
				prev = est.Area
			}
		}
	}
}

// TestFeedThroughRowDecreasesWithRows pins the Eq. 4/5 geometry: a
// net must cross row i for row i to need a feed-through, and once the
// module has spread past that row (n ≥ 2i keeps the row at or below
// the centre), adding further rows only moves components apart —
// row i's expected feed-through count is non-increasing in n.
func TestFeedThroughRowDecreasesWithRows(t *testing.T) {
	p, err := tech.Lookup("nmos25")
	if err != nil {
		t.Fatal(err)
	}
	suite, err := gen.StandardCellSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range suite {
		s, err := netlist.Gather(c, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range []int{1, 2, 3} {
			prev := -1.0
			for n := 2 * i; n <= 2*i+12; n++ {
				prof, err := FeedThroughRowProfile(s, n)
				if err != nil {
					t.Fatalf("%s n=%d: %v", c.Name, n, err)
				}
				got := prof.PerRow[i-1]
				if prev >= 0 && got > prev+1e-9 {
					t.Fatalf("%s row %d: E[feed-throughs] rose from %.6f to %.6f at n=%d",
						c.Name, i, prev, got, n)
				}
				prev = got
			}
		}
	}
}

// TestFCExactLowerBound pins Eq. 13's structure: the estimated
// Full-Custom area is device area plus non-negative wire area, so it
// can never fall below the exact silicon the devices themselves need.
func TestFCExactLowerBound(t *testing.T) {
	p, err := tech.Lookup("nmos25")
	if err != nil {
		t.Fatal(err)
	}
	suite, err := gen.FullCustomSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range suite {
		s, err := netlist.Gather(c, p)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := EstimateFullCustom(c, p, FCExactAreas)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if fc.WireArea < 0 {
			t.Fatalf("%s: negative wire area %.1f", c.Name, fc.WireArea)
		}
		if lb := float64(s.ExactDeviceArea); fc.Area < lb {
			t.Fatalf("%s: estimated area %.1f below device-area lower bound %.1f",
				c.Name, fc.Area, lb)
		}
	}
}
