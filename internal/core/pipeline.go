package core

import (
	"io"

	"maest/internal/cells"
	"maest/internal/hdl"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// Result bundles everything the Fig. 1 pipeline produces for one
// module: both methodologies' area and aspect-ratio estimates, the
// candidate shapes, and the statistics they were computed from.  It
// is the record handed to the floor-planner database.
type Result struct {
	Module string
	Stats  *netlist.Stats
	// SC holds the Standard-Cell estimate; nil when the circuit is
	// transistor-level only (no standard-cell methodology applies).
	SC *SCEstimate
	// SCCandidates holds the §7 multi-shape output (nil when SC is).
	SCCandidates []*SCEstimate
	// FCExact and FCAverage are the two Table-1 device-area modes.
	FCExact   *FCEstimate
	FCAverage *FCEstimate
}

// Estimate runs the full estimator on a circuit: Standard-Cell on the
// gate level (when the circuit is built from library cells) and
// Full-Custom on the transistor level (expanding cells to transistors
// when necessary).  Mixing cells and transistors in one module is
// rejected: the paper mixes methodologies between modules of a chip,
// never inside one module.
func Estimate(c *netlist.Circuit, p *tech.Process, opts SCOptions) (*Result, error) {
	nCells, nTransistors := 0, 0
	for _, d := range c.Devices {
		dt, err := p.Device(d.Type)
		if err != nil {
			return nil, estErr("module %q: %v", c.Name, err)
		}
		if dt.Class == tech.ClassCell {
			nCells++
		} else {
			nTransistors++
		}
	}
	if nCells > 0 && nTransistors > 0 {
		return nil, estErr("module %q mixes %d cells and %d transistors; estimate them as separate modules",
			c.Name, nCells, nTransistors)
	}

	res := &Result{Module: c.Name}
	s, err := netlist.Gather(c, p)
	if err != nil {
		return nil, estErr("module %q: %v", c.Name, err)
	}
	res.Stats = s

	fcCircuit := c
	if nCells > 0 {
		sc, err := EstimateStandardCell(s, p, opts)
		if err != nil {
			return nil, err
		}
		res.SC = sc
		cand, err := EstimateStandardCellCandidates(s, p, opts, 5)
		if err != nil {
			return nil, err
		}
		res.SCCandidates = cand
		fcCircuit, err = cells.ExpandTransistors(c, p)
		if err != nil {
			return nil, estErr("module %q: %v", c.Name, err)
		}
	}
	if res.FCExact, err = EstimateFullCustom(fcCircuit, p, FCExactAreas); err != nil {
		return nil, err
	}
	if res.FCAverage, err = EstimateFullCustom(fcCircuit, p, FCAverageAreas); err != nil {
		return nil, err
	}
	return res, nil
}

// Pipeline is the end-to-end Fig. 1 flow: parse the circuit schematic
// (.mnet) from r, combine it with the fabrication-process database,
// and produce the estimate record for the floor planner.
func Pipeline(r io.Reader, p *tech.Process, opts SCOptions) (*Result, error) {
	c, err := hdl.ParseMnet(r)
	if err != nil {
		return nil, estErr("pipeline: %v", err)
	}
	return Estimate(c, p, opts)
}
