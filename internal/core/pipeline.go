package core

import (
	"context"
	"io"
	"time"

	"maest/internal/cells"
	"maest/internal/hdl"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/tech"
)

// Estimator stage metrics: the paper's Tables 1–2 sell the estimator
// on per-module CPU time, so the latency histogram is the headline
// figure; the counters catch error rates under chip-scale load.
var (
	mEstimates   = obs.DefCounter("maest_estimate_total", "completed module estimates")
	mEstimateErr = obs.DefCounter("maest_estimate_errors_total", "failed module estimates")
	mEstimateSec = obs.DefHistogram("maest_estimate_seconds", "per-module estimate latency", obs.DefBuckets)
)

// Result bundles everything the Fig. 1 pipeline produces for one
// module: both methodologies' area and aspect-ratio estimates, the
// candidate shapes, and the statistics they were computed from.  It
// is the record handed to the floor-planner database.
type Result struct {
	Module string
	Stats  *netlist.Stats
	// SC holds the Standard-Cell estimate; nil when the circuit is
	// transistor-level only (no standard-cell methodology applies).
	SC *SCEstimate
	// SCCandidates holds the §7 multi-shape output (nil when SC is).
	SCCandidates []*SCEstimate
	// FCExact and FCAverage are the two Table-1 device-area modes.
	FCExact   *FCEstimate
	FCAverage *FCEstimate
}

// Estimate runs the full estimator on a circuit: Standard-Cell on the
// gate level (when the circuit is built from library cells) and
// Full-Custom on the transistor level (expanding cells to transistors
// when necessary).  Mixing cells and transistors in one module is
// rejected: the paper mixes methodologies between modules of a chip,
// never inside one module.
func Estimate(c *netlist.Circuit, p *tech.Process, opts SCOptions) (*Result, error) {
	return EstimateCtx(context.Background(), c, p, opts)
}

// EstimateCtx is Estimate with observability: it opens an "estimate"
// span (with "sc" and "fc" children) in the context's trace and
// records the latency and outcome metrics.
func EstimateCtx(ctx context.Context, c *netlist.Circuit, p *tech.Process, opts SCOptions) (res *Result, err error) {
	ctx, sp := obs.Start(ctx, "estimate")
	sp.SetString("module", c.Name)
	defer func(t0 time.Time) {
		mEstimateSec.Observe(time.Since(t0).Seconds())
		if err != nil {
			mEstimateErr.Inc()
		} else {
			mEstimates.Inc()
		}
		sp.EndErr(err)
	}(time.Now())

	nCells, nTransistors := 0, 0
	for _, d := range c.Devices {
		dt, err := p.Device(d.Type)
		if err != nil {
			return nil, estErr("module %q: %v", c.Name, err)
		}
		if dt.Class == tech.ClassCell {
			nCells++
		} else {
			nTransistors++
		}
	}
	if nCells > 0 && nTransistors > 0 {
		return nil, estErr("module %q mixes %d cells and %d transistors; estimate them as separate modules",
			c.Name, nCells, nTransistors)
	}

	res = &Result{Module: c.Name}
	s, err := netlist.Gather(c, p)
	if err != nil {
		return nil, estErr("module %q: %v", c.Name, err)
	}
	res.Stats = s
	sp.SetInt("devices", int64(s.N))
	sp.SetInt("nets", int64(s.H))

	fcCircuit := c
	if nCells > 0 {
		if err := estimateSC(ctx, res, s, p, opts); err != nil {
			return nil, err
		}
		fcCircuit, err = cells.ExpandTransistors(c, p)
		if err != nil {
			return nil, estErr("module %q: %v", c.Name, err)
		}
	}
	if err := estimateFC(ctx, res, fcCircuit, p); err != nil {
		return nil, err
	}
	return res, nil
}

// estimateSC runs the §4.1 Standard-Cell side under its own span.
func estimateSC(ctx context.Context, res *Result, s *netlist.Stats, p *tech.Process, opts SCOptions) (err error) {
	_, sp := obs.Start(ctx, "estimate.sc")
	defer func() { sp.EndErr(err) }()
	sc, err := EstimateStandardCell(s, p, opts)
	if err != nil {
		return err
	}
	res.SC = sc
	sp.SetInt("rows", int64(sc.Rows))
	sp.SetInt("tracks", int64(sc.Tracks))
	sp.SetInt("feedthroughs", int64(sc.FeedThroughs))
	sp.SetFloat("area", sc.Area)
	cand, err := EstimateStandardCellCandidates(s, p, opts, 5)
	if err != nil {
		return err
	}
	res.SCCandidates = cand
	sp.SetInt("candidates", int64(len(cand)))
	return nil
}

// estimateFC runs the §4.2 Full-Custom side (both device-area modes)
// under its own span.
func estimateFC(ctx context.Context, res *Result, c *netlist.Circuit, p *tech.Process) (err error) {
	_, sp := obs.Start(ctx, "estimate.fc")
	defer func() { sp.EndErr(err) }()
	if res.FCExact, err = EstimateFullCustom(c, p, FCExactAreas); err != nil {
		return err
	}
	if res.FCAverage, err = EstimateFullCustom(c, p, FCAverageAreas); err != nil {
		return err
	}
	sp.SetFloat("area_exact", res.FCExact.Area)
	sp.SetFloat("area_average", res.FCAverage.Area)
	return nil
}

// Pipeline is the end-to-end Fig. 1 flow: parse the circuit schematic
// (.mnet) from r, combine it with the fabrication-process database,
// and produce the estimate record for the floor planner.
func Pipeline(r io.Reader, p *tech.Process, opts SCOptions) (*Result, error) {
	return PipelineCtx(context.Background(), r, p, opts)
}

// PipelineCtx is Pipeline with observability: a "pipeline" span whose
// children cover the parse and estimate stages.
func PipelineCtx(ctx context.Context, r io.Reader, p *tech.Process, opts SCOptions) (res *Result, err error) {
	ctx, sp := obs.Start(ctx, "pipeline")
	defer func() { sp.EndErr(err) }()
	c, err := hdl.ParseMnetCtx(ctx, r)
	if err != nil {
		return nil, estErr("pipeline: %v", err)
	}
	return EstimateCtx(ctx, c, p, opts)
}
