package core

import (
	"fmt"
	"strings"
	"testing"

	"maest/internal/gen"
	"maest/internal/netlist"
	"maest/internal/tech"
)

func chipModules(t testing.TB, n int) []*netlist.Circuit {
	t.Helper()
	p := tech.NMOS25()
	var out []*netlist.Circuit
	for i := 0; i < n; i++ {
		c, err := gen.RandomCircuit(gen.RandomConfig{
			Name: fmt.Sprintf("m%d", i), Gates: 30 + i*5, Inputs: 4, Outputs: 3, Seed: int64(i + 1),
		}, p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
	return out
}

func TestEstimateChipMatchesSequential(t *testing.T) {
	p := tech.NMOS25()
	mods := chipModules(t, 6)
	par, err := EstimateChip(mods, p, SCOptions{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(mods) {
		t.Fatalf("results = %d", len(par))
	}
	for i, c := range mods {
		seq, err := Estimate(c, p, SCOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if par[i].Module != c.Name {
			t.Fatalf("result %d is for %q, want %q", i, par[i].Module, c.Name)
		}
		if par[i].SC.Area != seq.SC.Area || par[i].FCExact.Area != seq.FCExact.Area {
			t.Fatalf("module %q: parallel and sequential estimates differ", c.Name)
		}
	}
}

func TestEstimateChipWorkerClamping(t *testing.T) {
	p := tech.NMOS25()
	mods := chipModules(t, 2)
	for _, workers := range []int{-1, 0, 1, 16} {
		res, err := EstimateChip(mods, p, SCOptions{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != 2 {
			t.Fatalf("workers=%d: %d results", workers, len(res))
		}
	}
}

func TestEstimateChipErrors(t *testing.T) {
	p := tech.NMOS25()
	if _, err := EstimateChip(nil, p, SCOptions{}, 2); err == nil {
		t.Error("empty chip accepted")
	}
	// One bad module (unknown type) fails the whole chip with its
	// name in the error.
	b := netlist.NewBuilder("bad")
	b.AddDevice("g1", "WARP", "a", "b")
	b.AddDevice("g2", "INV", "b", "a")
	bad, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mods := append(chipModules(t, 2), bad)
	if _, err := EstimateChip(mods, p, SCOptions{}, 4); err == nil {
		t.Error("bad module accepted")
	}
}

func badModule(t *testing.T, name string) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder(name)
	b.AddDevice("g1", "WARP", "a", "b")
	b.AddDevice("g2", "INV", "b", "a")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEstimateChipAggregatesAllErrors(t *testing.T) {
	// Every failing module must be named in the joined error, not
	// just the lowest-index one.
	p := tech.NMOS25()
	mods := chipModules(t, 2)
	mods = append(mods, badModule(t, "badA"))
	mods = append(mods, badModule(t, "badB"))
	_, err := EstimateChip(mods, p, SCOptions{}, 4)
	if err == nil {
		t.Fatal("bad modules accepted")
	}
	for _, name := range []string{"badA", "badB"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("joined error missing module %q: %v", name, err)
		}
	}
}
