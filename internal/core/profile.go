package core

import (
	"context"
	"math"

	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/prob"
	"maest/internal/tech"
)

// Feed-through profile metrics: how often the per-row refinement is
// computed and how its totals distribute — the signal the
// early-routability work (Kar et al.) consumes.
var (
	mProfiles     = obs.DefCounter("maest_feedthrough_profiles_total", "computed per-row feed-through profiles")
	mProfileMax   = obs.DefHistogram("maest_feedthrough_profile_max", "max per-row expected feed-through count", obs.CountBuckets)
	mProfileTotal = obs.DefHistogram("maest_feedthrough_profile_sum", "total expected feed-through count over all rows", obs.CountBuckets)
)

// FeedThroughProfile is a refinement the paper's future-work section
// invites: instead of modelling every row with the central row's
// feed-through expectation (Eqs. 9–11 use the two-component-net
// central-row bound for all rows), compute the expected feed-through
// count of *each* row from the full Eq. 4/5 probability at that row,
// summed over the real net-degree histogram.  Row i's expected width
// is then its own cell width plus its own feed-through columns, and
// the module width is the widest row — a tighter Eq. 12 width term.
type FeedThroughProfile struct {
	Rows int
	// PerRow[i] is the expected feed-through count of row i+1.
	PerRow []float64
	// Central is the paper's single-row model for comparison.
	Central float64
}

// FeedThroughRowProfile computes the per-row expected feed-through
// counts for a module's net-degree histogram over n rows.
func FeedThroughRowProfile(s *netlist.Stats, n int) (*FeedThroughProfile, error) {
	if n < 1 {
		return nil, estErr("profile %q: rows %d < 1", s.CircuitName, n)
	}
	prof := &FeedThroughProfile{Rows: n, PerRow: make([]float64, n)}
	for i := 1; i <= n; i++ {
		total := 0.0
		for _, d := range s.Degrees() {
			p, err := prob.FeedThroughProb(n, d, i)
			if err != nil {
				return nil, estErr("profile %q: %v", s.CircuitName, err)
			}
			total += float64(s.DegreeCount[d]) * p
		}
		prof.PerRow[i-1] = total
	}
	pc, err := prob.CentralFeedThroughProb(n)
	if err != nil {
		return nil, estErr("profile %q: %v", s.CircuitName, err)
	}
	prof.Central = float64(s.H) * pc
	mProfiles.Inc()
	mProfileMax.Observe(prof.Max())
	mProfileTotal.Observe(prof.Total())
	return prof, nil
}

// Max returns the largest per-row expectation (always the central
// row, by the paper's theorem).
func (f *FeedThroughProfile) Max() float64 {
	m := 0.0
	for _, v := range f.PerRow {
		if v > m {
			m = v
		}
	}
	return m
}

// Total returns the expected feed-through count over all rows — what
// the layout engine's feed-through insertion should average to.
func (f *FeedThroughProfile) Total() float64 {
	t := 0.0
	for _, v := range f.PerRow {
		t += v
	}
	return t
}

// EstimateStandardCellProfiled runs the Standard-Cell estimator with
// the per-row feed-through width term: width = W_avg·N/n +
// ⌈max-row E(M_i)⌉·f_w, everything else per Eq. 12.  For workloads of
// two-component nets the paper's central-row model upper-bounds the
// profile, so the profiled estimate is tighter; for high-degree nets
// the relationship flips — the two-component simplification of Eq. 9
// *under*-counts their feed-throughs (Eq. 5's probability grows with
// D), which the profile corrects.
func EstimateStandardCellProfiled(s *netlist.Stats, p *tech.Process, opts SCOptions) (*SCEstimate, error) {
	return EstimateStandardCellProfiledCtx(context.Background(), s, p, opts)
}

// EstimateStandardCellProfiledCtx is EstimateStandardCellProfiled
// under an "estimate.sc_profiled" span carrying the profile's
// headline numbers.
func EstimateStandardCellProfiledCtx(ctx context.Context, s *netlist.Stats, p *tech.Process, opts SCOptions) (est *SCEstimate, err error) {
	_, sp := obs.Start(ctx, "estimate.sc_profiled")
	sp.SetString("module", s.CircuitName)
	defer func() {
		if est != nil {
			sp.SetInt("rows", int64(est.Rows))
			sp.SetInt("feedthroughs", int64(est.FeedThroughs))
			sp.SetFloat("area", est.Area)
		}
		sp.EndErr(err)
	}()
	return estimateStandardCellProfiled(s, p, opts)
}

func estimateStandardCellProfiled(s *netlist.Stats, p *tech.Process, opts SCOptions) (*SCEstimate, error) {
	base, err := EstimateStandardCell(s, p, opts)
	if err != nil {
		return nil, err
	}
	prof, err := FeedThroughRowProfile(s, base.Rows)
	if err != nil {
		return nil, err
	}
	m := int(math.Ceil(prof.Max() - 1e-9))
	if base.Rows == 1 {
		m = 0
	}
	est := *base
	est.FeedThroughs = m
	est.Width = est.CellLength + float64(m)*float64(p.FeedThroughWidth)
	est.Area = est.Width * est.Height
	if est.Height > 0 {
		est.AspectRatio = est.Width / est.Height
	}
	return &est, nil
}
