// Package core implements the paper's contribution: the module area
// estimator for the Standard-Cell (§4.1) and Full-Custom (§4.2)
// layout methodologies, with the aspect-ratio estimation of §5 and
// the §7 future-work extensions (routing-track sharing, multiple
// aspect-ratio candidates), plus the Fig. 1 input/output pipeline.
package core

import (
	"errors"
	"fmt"
	"math"

	"maest/internal/netlist"
	"maest/internal/prob"
	"maest/internal/tech"
)

// ErrEstimate wraps all estimation failures.
var ErrEstimate = errors.New("core: estimation failed")

// Defined candidate-sweep failures, each also wrapping ErrEstimate so
// existing errors.Is(err, ErrEstimate) dispatch (e.g. the serving
// layer's 422 mapping) keeps working.
var (
	// ErrCandidateCount reports a non-positive candidate count.
	ErrCandidateCount = errors.New("non-positive candidate count")
	// ErrCandidateRange reports a candidate count larger than the
	// feasible row range 1..N (a row needs at least one cell).
	ErrCandidateRange = errors.New("candidate count exceeds feasible row range")
	// ErrPortInfeasible reports that no candidate shape offers an edge
	// long enough for the module's I/O ports (§5 control criterion).
	ErrPortInfeasible = errors.New("ports fit no candidate perimeter")
)

func estErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrEstimate, fmt.Sprintf(format, args...))
}

// candErr wraps a defined candidate failure under ErrEstimate.
func candErr(sentinel error, format string, args ...any) error {
	return fmt.Errorf("%w: %w: %s", ErrEstimate, sentinel, fmt.Sprintf(format, args...))
}

// SCOptions configures the Standard-Cell estimator.
type SCOptions struct {
	// Rows fixes the number of standard-cell rows n.  Zero selects
	// the initial row count with the §5 algorithm (and lets the port
	// constraint adjust it).
	Rows int
	// TrackSharing enables the §7 future-work extension: instead of
	// dedicating a full track to every net segment (paper assumption
	// 3, which yields an upper bound), track demand is discounted by
	// each segment's expected horizontal span so disjoint segments
	// share tracks.
	TrackSharing bool
	// Spans optionally overrides where the Eq. 2–3 row-span quantities
	// come from.  An implementation must return exactly what
	// internal/prob computes for the same (n, D) — the engine's
	// process-wide distribution memo qualifies, since it caches prob's
	// own outputs.  nil computes directly.
	Spans RowSpans
}

// RowSpans supplies the Eq. 2–3 row-span quantities the Standard-Cell
// track model is built on: E(i), the expected number of rows a
// degree-D net spans over n rows, and its per-net track round-up.
// Implementations must be bit-identical to prob.ExpectedRowSpan /
// prob.TracksForNet; the interface exists so a caller can memoize
// those computations across modules and edit states.
type RowSpans interface {
	ExpectedRowSpan(n, d int) (float64, error)
	TracksForNet(n, d int) (int, error)
}

// FeedThroughMemo is an optional extension of RowSpans: a Spans
// implementation that also provides it overrides where Eq. 11's
// rounded feed-through expectation comes from, under the same
// contract — the result must be bit-identical to
// prob.FeedThroughsCeil(h, p).  Eq. 11 honors the paper's derivation
// by summing the full Eq. 10 binomial law, which is the costliest
// term of a warm estimate and a pure function of (H, p) — ideal memo
// material.
type FeedThroughMemo interface {
	FeedThroughsCeil(h int, p float64) (int, error)
}

// feedThroughsCeil resolves Eq. 11 through the optional memo.
func feedThroughsCeil(spans RowSpans, h int, p float64) (int, error) {
	if m, ok := spans.(FeedThroughMemo); ok {
		return m.FeedThroughsCeil(h, p)
	}
	return prob.FeedThroughsCeil(h, p)
}

// SCEstimate is the Standard-Cell estimation result.  Lengths are in
// λ (as float64: the estimate is a statistical quantity, only the
// paper-mandated roundings are applied), areas in λ².
type SCEstimate struct {
	Module string
	// Rows is the row count n the estimate is for.
	Rows int
	// Tracks is the expectation value of the total number of routing
	// tracks, Σ yᵢ·E(i) (after Eq. 3's round-up per net class).
	Tracks int
	// FeedThroughs is E(M), Eq. 11, rounded up.
	FeedThroughs int
	// CellLength is W_avg·N/n, the active-cell portion of a row.
	CellLength float64
	// Width is the full row length: CellLength + E(M)·f_w.
	Width float64
	// Height is n·rowHeight + Tracks·trackPitch.
	Height float64
	// Area = Width × Height (Eq. 12).
	Area float64
	// AspectRatio is Width / Height (Eq. 14).
	AspectRatio float64
	// TrackSharing records whether the extension was active.
	TrackSharing bool
	// PortFeasible reports the §5 control criterion: the module's
	// I/O ports fit along one of the layout edges (the longer one).
	PortFeasible bool
}

// EstimateStandardCell runs the §4.1 algorithm on the gathered
// statistics.  The circuit must contain at least one device; all
// other degeneracies (no routable nets, no ports) estimate cleanly.
func EstimateStandardCell(s *netlist.Stats, p *tech.Process, opts SCOptions) (*SCEstimate, error) {
	if err := p.Validate(); err != nil {
		return nil, estErr("standard-cell %q: %v", s.CircuitName, err)
	}
	if s.N <= 0 {
		return nil, estErr("standard-cell %q: no devices", s.CircuitName)
	}
	n := opts.Rows
	if n < 0 {
		return nil, estErr("standard-cell %q: negative row count %d", s.CircuitName, n)
	}
	if n == 0 {
		n = initialRows(s, p)
	}
	return estimateSCForRows(s, p, n, opts.TrackSharing, opts.Spans)
}

// estimateSCForRows evaluates Eq. 12 for a fixed row count.
func estimateSCForRows(s *netlist.Stats, p *tech.Process, n int, sharing bool, spans RowSpans) (*SCEstimate, error) {
	if n < 1 {
		return nil, estErr("standard-cell %q: row count %d < 1", s.CircuitName, n)
	}
	tracks, err := expectedTracks(s, n, sharing, spans)
	if err != nil {
		return nil, estErr("standard-cell %q: %v", s.CircuitName, err)
	}
	pFT, err := prob.CentralFeedThroughProb(n)
	if err != nil {
		return nil, estErr("standard-cell %q: %v", s.CircuitName, err)
	}
	m, err := feedThroughsCeil(spans, s.H, pFT)
	if err != nil {
		return nil, estErr("standard-cell %q: %v", s.CircuitName, err)
	}
	if n == 1 {
		// A single row has no row above/below to separate; no
		// feed-throughs are possible.
		m = 0
	}
	cellLen := s.AvgWidth() * float64(s.N) / float64(n)
	width := cellLen + float64(m)*float64(p.FeedThroughWidth)
	height := float64(n)*float64(p.RowHeight) + float64(tracks)*float64(p.TrackPitch)
	est := &SCEstimate{
		Module:       s.CircuitName,
		Rows:         n,
		Tracks:       tracks,
		FeedThroughs: m,
		CellLength:   cellLen,
		Width:        width,
		Height:       height,
		Area:         width * height,
		TrackSharing: sharing,
	}
	if height > 0 {
		est.AspectRatio = width / height
	}
	portLen := float64(s.NumPorts) * float64(p.PortPitch)
	est.PortFeasible = portLen <= math.Max(width, height)
	return est, nil
}

// expectedTracks computes Σ yᵢ·E(i) over the net-degree histogram
// (Eqs. 2–3 applied to all nets).  With sharing enabled, each net
// class's track demand is discounted by the expected horizontal span
// fraction of its segments before the final round-up, modelling
// multiple disjoint segments sharing one physical track.
func expectedTracks(s *netlist.Stats, n int, sharing bool, spans RowSpans) (int, error) {
	if !sharing {
		total := 0
		for _, d := range s.Degrees() {
			t, err := tracksForNet(spans, n, d)
			if err != nil {
				return 0, err
			}
			total += s.DegreeCount[d] * t
		}
		return total, nil
	}
	demand := 0.0
	for _, d := range s.Degrees() {
		e, err := expectedRowSpan(spans, n, d)
		if err != nil {
			return 0, err
		}
		demand += float64(s.DegreeCount[d]) * e * spanFraction(d, n)
	}
	return int(math.Ceil(demand - 1e-9)), nil
}

// tracksForNet and expectedRowSpan route one row-span lookup through
// the optional provider, defaulting to the direct prob computation.
func tracksForNet(spans RowSpans, n, d int) (int, error) {
	if spans != nil {
		return spans.TracksForNet(n, d)
	}
	return prob.TracksForNet(n, d)
}

func expectedRowSpan(spans RowSpans, n, d int) (float64, error) {
	if spans != nil {
		return spans.ExpectedRowSpan(n, d)
	}
	return prob.ExpectedRowSpan(n, d)
}

// spanFraction estimates what fraction of a row's length one channel
// segment of a degree-D net occupies.  The pins falling into one
// channel are roughly D/E(i) ≈ D/min(n,D) of the net's pins; k points
// uniform on a unit row span (k−1)/(k+1) of it in expectation.
func spanFraction(d, n int) float64 {
	k := float64(d)
	if d > n {
		k = k / float64(min(d, n)) // average pins per occupied row
		if k < 2 {
			k = 2
		}
	}
	return (k - 1) / (k + 1)
}

// InitialRows exposes the §5 row-count initialization for callers that
// analyze a module without running a full estimate (the congestion
// endpoint's automatic row selection).
func InitialRows(s *netlist.Stats, p *tech.Process) int { return initialRows(s, p) }

// initialRows implements the §5 row-count initialization: start with
// i = 2, set n = ⌈√(activeCellArea)/(i·rowHeight)⌉, and shrink n
// (by incrementing i) until the active-cell row length accommodates
// every I/O port along one edge.
func initialRows(s *netlist.Stats, p *tech.Process) int {
	cellArea := float64(s.ExactDeviceArea)
	if cellArea <= 0 {
		return 1
	}
	rowH := float64(p.RowHeight)
	portLen := float64(s.NumPorts) * float64(p.PortPitch)
	side := math.Sqrt(cellArea)
	for i := 2; ; i++ {
		n := int(math.Ceil(side / (float64(i) * rowH)))
		if n < 1 {
			n = 1
		}
		rowLen := cellArea / (float64(n) * rowH)
		if rowLen >= portLen || n == 1 {
			return n
		}
	}
}

// EstimateStandardCellCandidates implements the §7 extension of
// returning several (row count, area, aspect ratio) candidates so the
// floor planner can pick a module shape.  It evaluates `count` row
// values centred on the §5 initial row count (or opts.Rows when
// fixed), clamped into the feasible row range 1..N, in increasing row
// order.  Degenerate requests return defined errors rather than a
// short or useless slice: ErrCandidateCount for count ≤ 0,
// ErrCandidateRange when count exceeds the feasible range, and
// ErrPortInfeasible when no candidate offers an edge long enough for
// the module's ports.
func EstimateStandardCellCandidates(s *netlist.Stats, p *tech.Process, opts SCOptions, count int) ([]*SCEstimate, error) {
	if count < 1 {
		return nil, candErr(ErrCandidateCount, "standard-cell %q: candidate count %d < 1", s.CircuitName, count)
	}
	if s.N <= 0 {
		return nil, estErr("standard-cell %q: no devices", s.CircuitName)
	}
	if count > s.N {
		return nil, candErr(ErrCandidateRange,
			"standard-cell %q: %d candidates over feasible rows 1..%d", s.CircuitName, count, s.N)
	}
	out, err := SweepStandardCellShapes(s, p, opts, count)
	if err != nil {
		return nil, err
	}
	for _, est := range out {
		if est.PortFeasible {
			return out, nil
		}
	}
	return nil, candErr(ErrPortInfeasible,
		"standard-cell %q: %d ports fit no edge of %d candidate shapes", s.CircuitName, s.NumPorts, count)
}

// SweepStandardCellShapes is the unchecked kernel behind
// EstimateStandardCellCandidates: it evaluates count row values
// centred on the §5 initial row count (or opts.Rows when fixed) with
// the window clamped into [1, N] when the module has at least count
// feasible rows, and clamped only at 1 otherwise.  No feasibility
// errors are raised — degenerate modules still produce shapes, which
// is what the bundled Result of a full estimate relies on.
func SweepStandardCellShapes(s *netlist.Stats, p *tech.Process, opts SCOptions, count int) ([]*SCEstimate, error) {
	if count < 1 {
		return nil, candErr(ErrCandidateCount, "standard-cell %q: candidate count %d < 1", s.CircuitName, count)
	}
	if s.N <= 0 {
		return nil, estErr("standard-cell %q: no devices", s.CircuitName)
	}
	base := opts.Rows
	if base == 0 {
		base = initialRows(s, p)
	}
	lo := base - count/2
	if count <= s.N && lo+count-1 > s.N {
		lo = s.N - count + 1
	}
	if lo < 1 {
		lo = 1
	}
	var out []*SCEstimate
	for n := lo; len(out) < count; n++ {
		est, err := estimateSCForRows(s, p, n, opts.TrackSharing, opts.Spans)
		if err != nil {
			return nil, err
		}
		out = append(out, est)
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
