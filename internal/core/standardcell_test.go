package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"maest/internal/netlist"
	"maest/internal/prob"
	"maest/internal/tech"
)

// buildChain returns a standard-cell chain circuit: k INVs in series
// with input/output ports, giving k-1 two-component nets.
func buildChain(t testing.TB, k int) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder(fmt.Sprintf("chain%d", k))
	for i := 0; i < k; i++ {
		b.AddDevice(fmt.Sprintf("g%d", i), "INV",
			fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	b.AddPort("in", netlist.In, "n0")
	b.AddPort("out", netlist.Out, fmt.Sprintf("n%d", k))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func gatherChain(t testing.TB, k int) *netlist.Stats {
	t.Helper()
	s, err := netlist.Gather(buildChain(t, k), tech.NMOS25())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEstimateStandardCellByHand(t *testing.T) {
	// 8-inverter chain, forced to 2 rows, nMOS process.
	// N=8, Wavg=14, H=7 two-component nets.
	// E(i | n=2, D=2) = 1*(1/2)+2*(1/2) = 1.5 -> 2 tracks per net
	// -> 14 tracks total.
	// p_ft(n=2) = (2-1)^2/(2*4) = 1/8; E(M) = 7/8 -> ceil = 1.
	// Width = 14*8/2 + 1*7 = 63.
	// Height = 2*40 + 14*7 = 178.
	s := gatherChain(t, 8)
	est, err := EstimateStandardCell(s, tech.NMOS25(), SCOptions{Rows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if est.Rows != 2 {
		t.Fatalf("rows = %d", est.Rows)
	}
	if est.Tracks != 14 {
		t.Fatalf("tracks = %d, want 14", est.Tracks)
	}
	if est.FeedThroughs != 1 {
		t.Fatalf("feedthroughs = %d, want 1", est.FeedThroughs)
	}
	if math.Abs(est.CellLength-56) > 1e-9 {
		t.Fatalf("cell length = %g, want 56", est.CellLength)
	}
	if math.Abs(est.Width-63) > 1e-9 {
		t.Fatalf("width = %g, want 63", est.Width)
	}
	if math.Abs(est.Height-178) > 1e-9 {
		t.Fatalf("height = %g, want 178", est.Height)
	}
	if math.Abs(est.Area-63*178) > 1e-6 {
		t.Fatalf("area = %g", est.Area)
	}
	if math.Abs(est.AspectRatio-63.0/178.0) > 1e-12 {
		t.Fatalf("aspect = %g", est.AspectRatio)
	}
}

func TestEstimateStandardCellSingleRow(t *testing.T) {
	s := gatherChain(t, 4)
	est, err := EstimateStandardCell(s, tech.NMOS25(), SCOptions{Rows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est.FeedThroughs != 0 {
		t.Fatalf("single row cannot have feed-throughs, got %d", est.FeedThroughs)
	}
	// Every net spans exactly 1 row -> 1 track each.
	if est.Tracks != 3 {
		t.Fatalf("tracks = %d, want 3", est.Tracks)
	}
}

func TestAreaDecreasesWithMoreRows(t *testing.T) {
	// Table 2 observation: "the area estimate decreased as the number
	// of rows increased".  Under Eq. 12 the decrease sets in once the
	// per-net track expectation E(i) saturates at min(n, D) — for the
	// 2-component nets of a chain that is n ≥ 2 (going from one row
	// to two first *adds* a track per net).
	s := gatherChain(t, 60)
	prev := math.Inf(1)
	for n := 2; n <= 6; n++ {
		est, err := EstimateStandardCell(s, tech.NMOS25(), SCOptions{Rows: n})
		if err != nil {
			t.Fatal(err)
		}
		if n > 2 && est.Area >= prev {
			t.Fatalf("area did not decrease at n=%d: %g >= %g", n, est.Area, prev)
		}
		prev = est.Area
	}
}

func TestTrackSharingReducesTracks(t *testing.T) {
	s := gatherChain(t, 40)
	plain, err := EstimateStandardCell(s, tech.NMOS25(), SCOptions{Rows: 3})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := EstimateStandardCell(s, tech.NMOS25(), SCOptions{Rows: 3, TrackSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	if !shared.TrackSharing || plain.TrackSharing {
		t.Fatal("TrackSharing flag not recorded")
	}
	if shared.Tracks >= plain.Tracks {
		t.Fatalf("sharing did not reduce tracks: %d >= %d", shared.Tracks, plain.Tracks)
	}
	if shared.Area >= plain.Area {
		t.Fatalf("sharing did not reduce area: %g >= %g", shared.Area, plain.Area)
	}
}

func TestAutoRowSelectionRespectsPorts(t *testing.T) {
	// A port-heavy module must stretch rows until the ports fit.
	b := netlist.NewBuilder("porty")
	for i := 0; i < 10; i++ {
		in := fmt.Sprintf("i%d", i)
		out := fmt.Sprintf("o%d", i)
		b.AddDevice(fmt.Sprintf("g%d", i), "INV", in, out)
		b.AddPort("p"+in, netlist.In, in)
		b.AddPort("p"+out, netlist.Out, out)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := tech.NMOS25()
	s, err := netlist.Gather(c, p)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateStandardCell(s, p, SCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	portLen := float64(s.NumPorts) * float64(p.PortPitch)
	if est.CellLength < portLen && est.Rows != 1 {
		t.Fatalf("rows=%d leaves cell length %g < port length %g",
			est.Rows, est.CellLength, portLen)
	}
}

func TestEstimateStandardCellErrors(t *testing.T) {
	s := gatherChain(t, 4)
	p := tech.NMOS25()
	if _, err := EstimateStandardCell(s, p, SCOptions{Rows: -1}); err == nil {
		t.Error("negative rows accepted")
	}
	var empty netlist.Stats
	if _, err := EstimateStandardCell(&empty, p, SCOptions{}); err == nil {
		t.Error("empty stats accepted")
	}
	bad := p.Clone()
	bad.TrackPitch = 0
	if _, err := EstimateStandardCell(s, bad, SCOptions{}); err == nil {
		t.Error("invalid process accepted")
	}
}

func TestEstimateCandidates(t *testing.T) {
	s := gatherChain(t, 30)
	p := tech.NMOS25()
	cands, err := EstimateStandardCellCandidates(s, p, SCOptions{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 5 {
		t.Fatalf("got %d candidates", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Rows != cands[i-1].Rows+1 {
			t.Fatalf("rows not consecutive: %d after %d", cands[i].Rows, cands[i-1].Rows)
		}
	}
	// Around a fixed base.
	cands, err = EstimateStandardCellCandidates(s, p, SCOptions{Rows: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Rows != 2 || cands[3].Rows != 5 {
		t.Fatalf("rows = %d..%d, want 2..5", cands[0].Rows, cands[3].Rows)
	}
	if _, err := EstimateStandardCellCandidates(s, p, SCOptions{}, 0); err == nil {
		t.Error("count=0 accepted")
	}
	var empty netlist.Stats
	if _, err := EstimateStandardCellCandidates(&empty, p, SCOptions{}, 3); err == nil {
		t.Error("empty stats accepted")
	}
}

func TestSCEstimateConsistencyProperty(t *testing.T) {
	// For any chain size and row count: area = width*height, the
	// track count matches the analytic expectation, and width covers
	// the active cells.
	p := tech.NMOS25()
	f := func(kk, nn uint8) bool {
		k := int(kk%40) + 2
		n := int(nn%8) + 1
		s := gatherChain(t, k)
		est, err := EstimateStandardCell(s, p, SCOptions{Rows: n})
		if err != nil {
			return false
		}
		if math.Abs(est.Area-est.Width*est.Height) > 1e-6 {
			return false
		}
		perNet, err := prob.TracksForNet(n, 2)
		if err != nil {
			return false
		}
		if est.Tracks != perNet*(k-1) {
			return false
		}
		return est.Width >= est.CellLength-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPortFeasibleFlag(t *testing.T) {
	p := tech.NMOS25()
	// Few ports on a wide module: feasible.
	s := gatherChain(t, 40)
	est, err := EstimateStandardCell(s, p, SCOptions{Rows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !est.PortFeasible {
		t.Fatalf("2-port chain should be feasible (width %g)", est.Width)
	}
	// Pathological port load: force infeasibility by inflating the
	// port count beyond both edges.
	heavy := *s
	heavy.NumPorts = 10_000
	est2, err := EstimateStandardCell(&heavy, p, SCOptions{Rows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if est2.PortFeasible {
		t.Fatal("10k ports reported feasible")
	}
}
