package engine

import (
	"fmt"

	"maest/internal/netlist"
	"maest/internal/tech"
)

// Edit is one step of the ECO edit algebra Plan.Delta consumes: a
// typed, validated description of a netlist change (add/remove net,
// change net degree via connect/disconnect, add/remove cell), an
// execute-knob change (resize rows), or a process swap.  Values are
// built with the constructor functions below; the interface is sealed
// so Delta's incremental-invalidation analysis is exhaustive.
//
// Edits are applied in order.  Structural edits operate on a clone of
// the plan's circuit — the parent plan is never mutated.
type Edit interface {
	fmt.Stringer
	isEdit()
}

// effects accumulates what a structural edit script touched, for
// Delta's incremental statistics update: the nets whose degree may
// have changed and the signed per-type device count changes.
type effects struct {
	nets    []string
	netSeen map[string]bool
	devs    []deviceDelta
}

// deviceDelta is one signed device-population change: sign +1 for an
// added instance of the type, -1 for a removed one.
type deviceDelta struct {
	typ  string
	sign int
}

func (e *effects) touchNet(name string) {
	if e.netSeen == nil {
		e.netSeen = make(map[string]bool)
	}
	if e.netSeen[name] {
		return
	}
	e.netSeen[name] = true
	e.nets = append(e.nets, name)
}

// circuitEdit is the structural subset of the algebra: edits that
// mutate the cloned circuit and report what they touched.
type circuitEdit interface {
	Edit
	apply(c *netlist.Circuit, eff *effects) error
}

type addNetEdit struct {
	name    string
	devices []string
}

func (e addNetEdit) isEdit() {}
func (e addNetEdit) String() string {
	return fmt.Sprintf("add net %q (%d pins)", e.name, len(e.devices))
}
func (e addNetEdit) apply(c *netlist.Circuit, eff *effects) error {
	if _, err := c.AddNet(e.name, e.devices...); err != nil {
		return err
	}
	eff.touchNet(e.name)
	return nil
}

// AddNet creates a new net connecting the named devices (one pin per
// listed device; a device listed twice gains two pins but counts once
// toward the degree D).  At least one device is required.
func AddNet(name string, devices ...string) Edit { return addNetEdit{name: name, devices: devices} }

type removeNetEdit struct{ name string }

func (e removeNetEdit) isEdit()        {}
func (e removeNetEdit) String() string { return fmt.Sprintf("remove net %q", e.name) }
func (e removeNetEdit) apply(c *netlist.Circuit, eff *effects) error {
	if err := c.RemoveNet(e.name); err != nil {
		return err
	}
	eff.touchNet(e.name)
	return nil
}

// RemoveNet deletes the named net and every device pin on it.  Nets
// reaching a module port cannot be removed.
func RemoveNet(name string) Edit { return removeNetEdit{name: name} }

type connectPinEdit struct{ device, net string }

func (e connectPinEdit) isEdit() {}
func (e connectPinEdit) String() string {
	return fmt.Sprintf("connect %q to net %q", e.device, e.net)
}
func (e connectPinEdit) apply(c *netlist.Circuit, eff *effects) error {
	if err := c.ConnectPin(e.device, e.net); err != nil {
		return err
	}
	eff.touchNet(e.net)
	return nil
}

// ConnectPin adds one pin connecting the named device to the named
// net (created when absent) — the degree-raising half of a "change
// net degree" edit.
func ConnectPin(device, net string) Edit { return connectPinEdit{device: device, net: net} }

type disconnectPinEdit struct{ device, net string }

func (e disconnectPinEdit) isEdit() {}
func (e disconnectPinEdit) String() string {
	return fmt.Sprintf("disconnect %q from net %q", e.device, e.net)
}
func (e disconnectPinEdit) apply(c *netlist.Circuit, eff *effects) error {
	if err := c.DisconnectPin(e.device, e.net); err != nil {
		return err
	}
	eff.touchNet(e.net)
	return nil
}

// DisconnectPin removes the named device's last pin on the named net
// — the degree-lowering half of a "change net degree" edit.  A net
// left with no pins and no ports is pruned.
func DisconnectPin(device, net string) Edit { return disconnectPinEdit{device: device, net: net} }

type addCellEdit struct {
	name, typ string
	nets      []string
}

func (e addCellEdit) isEdit() {}
func (e addCellEdit) String() string {
	return fmt.Sprintf("add cell %q type %q (%d pins)", e.name, e.typ, len(e.nets))
}
func (e addCellEdit) apply(c *netlist.Circuit, eff *effects) error {
	if _, err := c.AddDevice(e.name, e.typ, e.nets...); err != nil {
		return err
	}
	for _, n := range e.nets {
		if n != "" {
			eff.touchNet(n)
		}
	}
	eff.devs = append(eff.devs, deviceDelta{typ: e.typ, sign: +1})
	return nil
}

// AddCell adds a device instance of the given type connected to the
// named nets in pin order (nets are created as needed; an empty name
// leaves the pin unconnected).  "Cell" is the ECO vocabulary — the
// edit works identically for transistor-level modules, and Delta
// re-checks the cell/transistor methodology split either way.
func AddCell(name, typ string, nets ...string) Edit {
	return addCellEdit{name: name, typ: typ, nets: nets}
}

type removeCellEdit struct{ name string }

func (e removeCellEdit) isEdit()        {}
func (e removeCellEdit) String() string { return fmt.Sprintf("remove cell %q", e.name) }
func (e removeCellEdit) apply(c *netlist.Circuit, eff *effects) error {
	// Capture the type and the attached nets before the device goes:
	// the incremental statistics need the type's dimensions debited and
	// every touched net's degree re-bucketed.
	d := c.DeviceByName(e.name)
	if d != nil {
		for _, n := range d.Pins {
			if n != nil {
				eff.touchNet(n.Name)
			}
		}
	}
	if err := c.RemoveDevice(e.name); err != nil {
		return err
	}
	eff.devs = append(eff.devs, deviceDelta{typ: d.Type, sign: -1})
	return nil
}

// RemoveCell deletes the named device instance and every pin it
// contributed; nets left with no pins and no ports are pruned.
// Removing the last device of a module is rejected.
func RemoveCell(name string) Edit { return removeCellEdit{name: name} }

type resizeRowsEdit struct{ rows int }

func (e resizeRowsEdit) isEdit()        {}
func (e resizeRowsEdit) String() string { return fmt.Sprintf("resize to %d rows", e.rows) }

// ResizeRows overrides the §5 initial row count of the child plan: it
// changes no circuit structure, only the row count the child's
// execute methods default to, so Delta(ResizeRows(n)) is equivalent
// to a full recompile with WithRows(n) passed to every default-row
// call.  The row-dependent Eq. 2–11 terms re-resolve through the
// shared distribution memo.  Rows must be at least 1; the last
// ResizeRows in a script wins.
func ResizeRows(rows int) Edit { return resizeRowsEdit{rows: rows} }

type swapProcessEdit struct{ proc *tech.Process }

func (e swapProcessEdit) isEdit() {}
func (e swapProcessEdit) String() string {
	name := "<nil>"
	if e.proc != nil {
		name = e.proc.Name
	}
	return fmt.Sprintf("swap process to %q", name)
}

// SwapProcess retargets the module at a different process.  A process
// swap invalidates every device dimension, Eq. 12–14 constant, and
// distribution at once, so it is outside the incremental algebra:
// Delta falls back to a full recompile (the result is still correct
// and content-addressed, just not incremental).
func SwapProcess(p *tech.Process) Edit { return swapProcessEdit{proc: p} }

// ApplyEdits applies a script's structural edits, in order, to a
// clone of the circuit and returns the result; c itself is never
// mutated.  ResizeRows and SwapProcess edits carry no structural
// change and are validated only.  This is the reference route the
// differential tests compare Plan.Delta against: Delta(c, script) is
// bit-identical to Compile(ApplyEdits(c, script)).
func ApplyEdits(c *netlist.Circuit, edits ...Edit) (*netlist.Circuit, error) {
	out, _, err := applyScript(c, edits)
	return out, err
}

// applyScript is ApplyEdits plus the touched-net/device-delta effects
// Delta's incremental statistics update consumes.
func applyScript(c *netlist.Circuit, edits []Edit) (*netlist.Circuit, *effects, error) {
	out := c.Clone()
	eff := &effects{}
	for _, e := range edits {
		switch e := e.(type) {
		case resizeRowsEdit:
			if e.rows < 1 {
				return nil, nil, estErr("module %q: resize to %d rows; need at least 1", c.Name, e.rows)
			}
		case swapProcessEdit:
			if e.proc == nil {
				return nil, nil, estErr("module %q: swap to nil process", c.Name)
			}
		case circuitEdit:
			if err := e.apply(out, eff); err != nil {
				return nil, nil, err
			}
		default:
			// Unreachable while the interface stays sealed; kept so a
			// future edit kind fails loudly instead of silently no-oping.
			return nil, nil, estErr("module %q: unsupported edit %v", c.Name, e)
		}
	}
	return out, eff, nil
}
