package engine

import "maest/internal/engine/distmemo"

// memoSpans routes the standard-cell kernel's Eq. 2–3 row-span
// lookups through the process-wide distribution memo.  distmemo
// caches and returns exactly what internal/prob computed for the same
// (n, D), so results are bit-identical with the memo hot or cold; it
// only changes how often the forward occupancy chain actually runs.
type memoSpans struct{}

func (memoSpans) ExpectedRowSpan(n, d int) (float64, error) { return distmemo.ExpectedRowSpan(n, d) }
func (memoSpans) TracksForNet(n, d int) (int, error)        { return distmemo.TracksForNet(n, d) }

// FeedThroughsCeil implements core.FeedThroughMemo, routing Eq. 11's
// feed-through expectation through the process-wide memo as well.
func (memoSpans) FeedThroughsCeil(h int, p float64) (int, error) {
	return distmemo.FeedThroughsCeil(h, p)
}
