package engine

import (
	"context"
	"time"

	"maest/internal/core"
	"maest/internal/geom"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/tech"
)

// Incremental-recompilation metrics: the fallback ratio tells whether
// callers' edit scripts actually stay inside the incremental algebra,
// and the latency histogram is the ECO loop's edit-to-answer number.
var (
	mDeltas        = obs.DefCounter("maest_delta_total", "completed incremental plan deltas")
	mDeltaErr      = obs.DefCounter("maest_delta_errors_total", "failed incremental plan deltas")
	mDeltaFallback = obs.DefCounter("maest_delta_fallback_total", "plan deltas that fell back to a full recompile")
	mDeltaSec      = obs.DefHistogram("maest_delta_seconds", "incremental plan delta latency", obs.DefBuckets)
)

// Delta produces the Plan for this plan's circuit with the edit
// script applied, reusing every compiled intermediate the script
// provably does not touch.  The result is a first-class Plan —
// content-addressed, immutable, concurrency-safe — and is
// bit-identical (same hash, same results from every execute method)
// to compiling the edited circuit from scratch; the differential
// harness in delta_diff_test.go enforces that contract.
//
// What is reused: the process clone and its Eq. 12–14 scale factors,
// and every §3 statistic outside the edit's footprint — device edits
// adjust the width histogram and area sums by the touched types only,
// net edits re-bucket only the touched nets' degree classes.  The
// Eq. 2–11 distributions are not plan state (they live in the
// process-wide distmemo), so an edit that preserves the degree
// histogram re-estimates on memo hits alone.
//
// SwapProcess is outside the incremental algebra and falls back to a
// full recompile (counted by maest_delta_fallback_total).  An empty
// or validation-only script returns the receiver itself.
func (pl *Plan) Delta(edits ...Edit) (*Plan, error) {
	return pl.DeltaCtx(context.Background(), edits...)
}

// DeltaCtx is Delta with observability: a "delta" span plus the delta
// metrics.
func (pl *Plan) DeltaCtx(ctx context.Context, edits ...Edit) (np *Plan, err error) {
	ctx, sp := obs.Start(ctx, "delta")
	sp.SetString("module", pl.circ.Name)
	sp.SetInt("edits", int64(len(edits)))
	defer func(t0 time.Time) {
		mDeltaSec.Observe(time.Since(t0).Seconds())
		if err != nil {
			mDeltaErr.Inc()
		} else {
			mDeltas.Inc()
			sp.SetString("plan", np.hash.String()[:12])
		}
		sp.EndErr(err)
	}(time.Now())

	rows, structural := 0, false
	var newProc *tech.Process
	for _, e := range edits {
		switch e := e.(type) {
		case resizeRowsEdit:
			if e.rows < 1 {
				return nil, estErr("module %q: resize to %d rows; need at least 1", pl.circ.Name, e.rows)
			}
			rows = e.rows
		case swapProcessEdit:
			if e.proc == nil {
				return nil, estErr("module %q: swap to nil process", pl.circ.Name)
			}
			newProc = e.proc
		default:
			structural = true
		}
	}

	if !structural && newProc == nil {
		if rows == 0 {
			// Empty (or validation-only) script: the parent already is
			// the answer, memos and all.
			return pl, nil
		}
		return pl.childWithRows(rows), nil
	}

	edited := pl.circ
	var eff *effects
	if structural {
		if edited, eff, err = applyScript(pl.circ, edits); err != nil {
			return nil, err
		}
	}

	if newProc != nil {
		// A process swap invalidates every device dimension, Eq. 12–14
		// constant, and distribution at once — outside the incremental
		// algebra, so pay for a full recompile.
		mDeltaFallback.Inc()
		sp.SetInt("fallback", 1)
		if np, err = CompileCtx(ctx, edited, newProc); err != nil {
			return nil, err
		}
		np.defaultRows = rows
		return np, nil
	}

	s, nCells, nTransistors, err := pl.deltaStats(edited, eff)
	if err != nil {
		return nil, err
	}
	if nCells > 0 && nTransistors > 0 {
		return nil, estErr("module %q mixes %d cells and %d transistors; estimate them as separate modules",
			edited.Name, nCells, nTransistors)
	}
	// The edit algebra never touches ports, so the parent's port order
	// always carries over; the device order survives any script that
	// added and removed nothing (pin rewires, net edits).
	canonPorts, canonDevs := pl.canonPorts, pl.canonDevs
	if len(eff.devs) != 0 {
		_, canonDevs = canonOrders(edited)
	}
	np = &Plan{
		circ:         edited,
		proc:         pl.proc, // shared: the compiled process clone is immutable
		procBlob:     pl.procBlob,
		stats:        s,
		hash:         hashOrdered(edited, pl.procBlob, canonPorts, canonDevs),
		canonPorts:   canonPorts,
		canonDevs:    canonDevs,
		cellLevel:    nCells > 0,
		nCells:       nCells,
		nTransistors: nTransistors,
		defaultRows:  rows,
		initialRows:  core.InitialRows(s, pl.proc),
		consts: Constants{
			RowHeight:        float64(pl.proc.RowHeight),
			TrackPitch:       float64(pl.proc.TrackPitch),
			FeedThroughWidth: float64(pl.proc.FeedThroughWidth),
			PortPitch:        float64(pl.proc.PortPitch),
			AvgDeviceWidth:   s.AvgWidth(),
			AvgDeviceHeight:  s.AvgHeight(),
		},
	}
	np.initMemos()
	sp.SetInt("devices", int64(s.N))
	sp.SetInt("nets", int64(s.H))
	return np, nil
}

// childWithRows is the rows-only delta: same circuit, process,
// statistics, and hash — only the default row count differs.  The
// memo tables start empty; the parent's entries would all be valid
// (they are keyed by resolved rows), but sharing mutex-guarded maps
// across plans is not worth the coupling.
func (pl *Plan) childWithRows(rows int) *Plan {
	np := &Plan{
		circ:         pl.circ,
		proc:         pl.proc,
		procBlob:     pl.procBlob,
		stats:        pl.stats,
		hash:         pl.hash,
		canonPorts:   pl.canonPorts,
		canonDevs:    pl.canonDevs,
		cellLevel:    pl.cellLevel,
		nCells:       pl.nCells,
		nTransistors: pl.nTransistors,
		defaultRows:  rows,
		initialRows:  pl.initialRows,
		consts:       pl.consts,
	}
	np.initMemos()
	return np
}

// deltaStats produces the edited circuit's §3 statistics by adjusting
// the parent's, touching only what the script's effects name: the
// device-population sums are moved by each added/removed type's
// dimensions, and each touched net is debited at its old degree and
// credited at its new one.  The result must equal netlist.Gather over
// the edited circuit field-for-field — the delta tests check exactly
// that.
func (pl *Plan) deltaStats(edited *netlist.Circuit, eff *effects) (*netlist.Stats, int, int, error) {
	s := cloneStats(pl.stats)
	nCells, nTransistors := pl.nCells, pl.nTransistors
	for _, dd := range eff.devs {
		dt, err := pl.proc.Device(dd.typ)
		if err != nil {
			return nil, 0, 0, estErr("module %q: %v", edited.Name, err)
		}
		if dd.sign > 0 {
			s.N++
			s.WidthCount[dt.Width]++
			s.SumWidth += dt.Width
			s.SumHeight += dt.Height
			s.ExactDeviceArea += dt.Area()
		} else {
			s.N--
			s.WidthCount[dt.Width]--
			if s.WidthCount[dt.Width] == 0 {
				delete(s.WidthCount, dt.Width)
			}
			s.SumWidth -= dt.Width
			s.SumHeight -= dt.Height
			s.ExactDeviceArea -= dt.Area()
		}
		if dt.Class == tech.ClassCell {
			nCells += dd.sign
		} else {
			nTransistors += dd.sign
		}
	}
	for _, name := range eff.nets {
		od, nd := netDegree(pl.circ, name), netDegree(edited, name)
		if od == nd {
			continue
		}
		debitDegree(s, od)
		creditDegree(s, nd)
	}
	s.MaxDegree = 0
	for d := range s.DegreeCount {
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	return s, nCells, nTransistors, nil
}

// netDegree returns the named net's component count, or -1 when the
// circuit has no such net.
func netDegree(c *netlist.Circuit, name string) int {
	if n := c.NetByName(name); n != nil {
		return n.Degree()
	}
	return -1
}

// debitDegree removes one net of the given degree from the histogram
// buckets (a negative degree means the net did not exist).
func debitDegree(s *netlist.Stats, d int) {
	switch {
	case d < 0:
	case d < 2:
		s.DegenerateNets--
	default:
		s.H--
		s.DegreeCount[d]--
		if s.DegreeCount[d] == 0 {
			delete(s.DegreeCount, d)
		}
	}
}

// creditDegree adds one net of the given degree to the histogram
// buckets.
func creditDegree(s *netlist.Stats, d int) {
	switch {
	case d < 0:
	case d < 2:
		s.DegenerateNets++
	default:
		s.H++
		s.DegreeCount[d]++
	}
}

// cloneStats deep-copies the mutable parts of a Stats (the two
// histogram maps); scalar fields copy by value.
func cloneStats(s *netlist.Stats) *netlist.Stats {
	cp := *s
	cp.WidthCount = make(map[geom.Lambda]int, len(s.WidthCount))
	for k, v := range s.WidthCount {
		cp.WidthCount[k] = v
	}
	cp.DegreeCount = make(map[int]int, len(s.DegreeCount))
	for k, v := range s.DegreeCount {
		cp.DegreeCount[k] = v
	}
	return &cp
}
