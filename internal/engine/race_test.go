package engine

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"maest/internal/gen"
	"maest/internal/tech"
)

// TestPlanConcurrentHammer shares one compiled plan across many
// goroutines mixing every execute method at overlapping knobs — the
// serving layer's steady state, where /v1/estimate, /v1/congestion,
// and the batch pool all hold the same cached plan.  Run under
// -race (CI does) this pins the Plan's concurrency contract; the
// result comparisons pin that racing duplicate computations are
// idempotent.
func TestPlanConcurrentHammer(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "hammer", Gates: 40, Inputs: 5, Outputs: 4, Seed: 9,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(c, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Reference answers, computed single-threaded on a second plan of
	// the same circuit.
	ref, err := Compile(c, p)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := ref.Estimate(ctx, WithRows(3))
	if err != nil {
		t.Fatal(err)
	}
	wantMap, err := ref.Congestion(ctx, WithRows(3))
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 5 {
				case 0:
					res, err := pl.Estimate(ctx, WithRows(3))
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(res, wantRes) {
						t.Error("concurrent Estimate diverged from sequential result")
						return
					}
				case 1:
					m, err := pl.Congestion(ctx, WithRows(3))
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(m, wantMap) {
						t.Error("concurrent Congestion diverged from sequential result")
						return
					}
				case 2:
					if _, err := pl.EstimateFullCustom(ctx); err != nil {
						errs <- err
						return
					}
				case 3:
					if _, err := pl.Candidates(ctx, WithRows(3), WithCandidates(5)); err != nil {
						errs <- err
						return
					}
				case 4:
					if _, err := pl.Congestion(ctx, WithRows(3), WithGridded(false), WithCapacity(40+i%3)); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
