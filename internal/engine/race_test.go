package engine

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"maest/internal/congest"
	"maest/internal/core"
	"maest/internal/engine/distmemo"
	"maest/internal/gen"
	"maest/internal/tech"
)

// TestPlanConcurrentHammer shares one compiled plan across many
// goroutines mixing every execute method at overlapping knobs — the
// serving layer's steady state, where /v1/estimate, /v1/congestion,
// and the batch pool all hold the same cached plan.  Run under
// -race (CI does) this pins the Plan's concurrency contract; the
// result comparisons pin that racing duplicate computations are
// idempotent.
func TestPlanConcurrentHammer(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "hammer", Gates: 40, Inputs: 5, Outputs: 4, Seed: 9,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(c, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Reference answers, computed single-threaded on a second plan of
	// the same circuit.
	ref, err := Compile(c, p)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := ref.Estimate(ctx, WithRows(3))
	if err != nil {
		t.Fatal(err)
	}
	wantMap, err := ref.Congestion(ctx, WithRows(3))
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 5 {
				case 0:
					res, err := pl.Estimate(ctx, WithRows(3))
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(res, wantRes) {
						t.Error("concurrent Estimate diverged from sequential result")
						return
					}
				case 1:
					m, err := pl.Congestion(ctx, WithRows(3))
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(m, wantMap) {
						t.Error("concurrent Congestion diverged from sequential result")
						return
					}
				case 2:
					if _, err := pl.EstimateFullCustom(ctx); err != nil {
						errs <- err
						return
					}
				case 3:
					if _, err := pl.Candidates(ctx, WithRows(3), WithCandidates(5)); err != nil {
						errs <- err
						return
					}
				case 4:
					if _, err := pl.Congestion(ctx, WithRows(3), WithGridded(false), WithCapacity(40+i%3)); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDeltaConcurrentHammer extends the hammer to the ECO loop's
// steady state: many goroutines building Delta children off one
// shared parent, executing them, recompiling the same circuits from
// scratch, and purging the process-wide distribution memo mid-flight.
// Under -race this pins the shared memo's concurrency contract; the
// result comparisons pin that a purge (or a racing duplicate store)
// can change only where numbers come from, never what they are.
func TestDeltaConcurrentHammer(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "ecohammer", Gates: 30, Inputs: 5, Outputs: 4, Seed: 11,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(c, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	d0 := c.Devices[0].Name
	d1 := c.Devices[1].Name
	scripts := [][]Edit{
		{ConnectPin(d0, "hz_a"), ConnectPin(d1, "hz_a")},
		{AddCell("hz_g1", "INV", "hz_b", "hz_c"), ConnectPin(d0, "hz_b")},
		{RemoveCell(d1)},
		{AddNet("hz_n", d0, d1)},
		{ResizeRows(4)},
		{ConnectPin(d1, "hz_c"), ResizeRows(3)},
	}

	// Reference answers, computed sequentially via the recompile route.
	refRes := make([]*core.Result, len(scripts))
	refMap := make([]*congest.Map, len(scripts))
	for i, script := range scripts {
		edited, err := ApplyEdits(c, script...)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Compile(edited, p)
		if err != nil {
			t.Fatal(err)
		}
		var opts []Option
		if rows := scriptRows(script); rows > 0 {
			opts = append(opts, WithRows(rows))
		}
		if refRes[i], err = ref.Estimate(ctx, opts...); err != nil {
			t.Fatal(err)
		}
		if refMap[i], err = ref.Congestion(ctx, opts...); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 16
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				idx := (w + i) % len(scripts)
				switch (w + i) % 5 {
				case 0, 1:
					child, err := pl.Delta(scripts[idx]...)
					if err != nil {
						errs <- err
						return
					}
					res, err := child.Estimate(ctx)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(res, refRes[idx]) {
						t.Error("concurrent Delta estimate diverged from sequential recompile")
						return
					}
					m, err := child.Congestion(ctx)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(m, refMap[idx]) {
						t.Error("concurrent Delta congestion diverged from sequential recompile")
						return
					}
				case 2:
					edited, err := ApplyEdits(c, scripts[idx]...)
					if err != nil {
						errs <- err
						return
					}
					if _, err := Compile(edited, p); err != nil {
						errs <- err
						return
					}
				case 3:
					if _, err := pl.Estimate(ctx); err != nil {
						errs <- err
						return
					}
					if _, err := pl.Congestion(ctx, WithRows(3)); err != nil {
						errs <- err
						return
					}
				case 4:
					distmemo.Metrics()
					if (w+i)%15 == 4 {
						distmemo.Purge()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
