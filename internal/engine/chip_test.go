package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"maest/internal/gen"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/tech"
)

func chipModules(t testing.TB, n int) []*netlist.Circuit {
	t.Helper()
	p := tech.NMOS25()
	var out []*netlist.Circuit
	for i := 0; i < n; i++ {
		c, err := gen.RandomCircuit(gen.RandomConfig{
			Name: fmt.Sprintf("m%d", i), Gates: 30 + i*5, Inputs: 4, Outputs: 3, Seed: int64(i + 1),
		}, p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
	return out
}

func TestEstimateChipMatchesSequential(t *testing.T) {
	p := tech.NMOS25()
	mods := chipModules(t, 6)
	par, err := EstimateChip(context.Background(), mods, p, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(mods) {
		t.Fatalf("results = %d", len(par))
	}
	for i, c := range mods {
		seq, err := Estimate(context.Background(), c, p)
		if err != nil {
			t.Fatal(err)
		}
		if par[i].Module != c.Name {
			t.Fatalf("result %d is for %q, want %q", i, par[i].Module, c.Name)
		}
		if par[i].SC.Area != seq.SC.Area || par[i].FCExact.Area != seq.FCExact.Area {
			t.Fatalf("module %q: parallel and sequential estimates differ", c.Name)
		}
	}
}

func TestEstimateChipWorkerClamping(t *testing.T) {
	p := tech.NMOS25()
	mods := chipModules(t, 2)
	for _, workers := range []int{-1, 0, 1, 16} {
		res, err := EstimateChip(context.Background(), mods, p, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != 2 {
			t.Fatalf("workers=%d: %d results", workers, len(res))
		}
	}
}

func TestEstimateChipErrors(t *testing.T) {
	p := tech.NMOS25()
	if _, err := EstimateChip(context.Background(), nil, p, WithWorkers(2)); err == nil {
		t.Error("empty chip accepted")
	}
	// One bad module (unknown type) fails the whole chip with its
	// name in the error.
	b := netlist.NewBuilder("bad")
	b.AddDevice("g1", "WARP", "a", "b")
	b.AddDevice("g2", "INV", "b", "a")
	bad, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mods := append(chipModules(t, 2), bad)
	if _, err := EstimateChip(context.Background(), mods, p, WithWorkers(4)); err == nil {
		t.Error("bad module accepted")
	}
}

func badModule(t *testing.T, name string) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder(name)
	b.AddDevice("g1", "WARP", "a", "b")
	b.AddDevice("g2", "INV", "b", "a")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEstimateChipAggregatesAllErrors(t *testing.T) {
	// Every failing module must be named in the joined error, not
	// just the lowest-index one.
	p := tech.NMOS25()
	mods := chipModules(t, 2)
	mods = append(mods, badModule(t, "badA"))
	mods = append(mods, badModule(t, "badB"))
	_, err := EstimateChip(context.Background(), mods, p, WithWorkers(4))
	if err == nil {
		t.Fatal("bad modules accepted")
	}
	for _, name := range []string{"badA", "badB"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("joined error missing module %q: %v", name, err)
		}
	}
}

// cancelSink cancels a context after n "estimate" spans have
// completed — a deterministic way to cancel EstimateChip mid-pool.
type cancelSink struct {
	mu     sync.Mutex
	after  int
	seen   int
	cancel context.CancelFunc
}

func (s *cancelSink) Record(d *obs.SpanData) {
	if d.Name != "estimate" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen++
	if s.seen == s.after {
		s.cancel()
	}
}

// Cancellation mid-pool: unstarted modules are skipped and ctx.Err()
// is surfaced, not an aggregate of per-module failures.
func TestEstimateChipCancelledMidPool(t *testing.T) {
	p := tech.NMOS25()
	mods := chipModules(t, 16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancelSink{after: 1, cancel: cancel}
	ctx = obs.WithSink(ctx, sink)

	// One worker: after the first module's span ends the context is
	// cancelled, so the pool must skip (nearly) all remaining work.
	res, err := EstimateChip(ctx, mods, p, WithWorkers(1))
	if res != nil {
		t.Fatal("cancelled chip estimate returned results")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	sink.mu.Lock()
	estimated := sink.seen
	sink.mu.Unlock()
	// The module in flight at cancel time may complete; everything
	// queued behind it must not run.
	if estimated > 2 {
		t.Fatalf("%d modules estimated after cancellation, want ≤ 2", estimated)
	}
}

// A context cancelled before the call estimates nothing.
func TestEstimateChipCancelledUpFront(t *testing.T) {
	p := tech.NMOS25()
	mods := chipModules(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	count := &countSink{}
	if _, err := EstimateChip(obs.WithSink(ctx, count), mods, p, WithWorkers(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := count.estimates(); n != 0 {
		t.Fatalf("%d modules estimated under a dead context", n)
	}
}

// countSink counts completed "estimate" spans.
type countSink struct {
	mu sync.Mutex
	n  int
}

func (s *countSink) Record(d *obs.SpanData) {
	if d.Name != "estimate" {
		return
	}
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func (s *countSink) estimates() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Deadline expiry mid-pool surfaces DeadlineExceeded (the serving
// layer maps this to 504).
func TestEstimateChipDeadline(t *testing.T) {
	p := tech.NMOS25()
	mods := chipModules(t, 8)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if _, err := EstimateChip(ctx, mods, p, WithWorkers(2)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
