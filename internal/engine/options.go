package engine

import (
	"maest/internal/congest"
	"maest/internal/core"
)

// Options is the single consolidated knob set of every execute
// method, replacing the SCOptions / FCMode / workers / analysis-knob
// parameter sprawl of the per-package entry points.  The zero value
// reproduces each entry point's historical defaults: §5 automatic
// rows, no track sharing, exact device areas, GOMAXPROCS workers, the
// occupancy demand model with derived capacity and feed budget, and
// five candidate shapes.
type Options struct {
	// Rows fixes the standard-cell row count n (0 = the §5 initial
	// row count).  For Congestion it is the analyzed row count (0 =
	// §5 rows, or the ⌈√N⌉ grid when Gridded).
	Rows int
	// TrackSharing enables the §7 track-sharing extension.
	TrackSharing bool
	// FCMode selects exact or average device areas for
	// EstimateFullCustom (Table 1's two modes).
	FCMode core.FCMode
	// Workers sizes the chip-level worker pool (≤ 0 = GOMAXPROCS).
	Workers int
	// CongestModel selects the congestion demand accounting.
	CongestModel congest.Model
	// Capacity is the per-channel track capacity (0 = derived).
	Capacity int
	// FeedBudget is the per-row feed-through budget (0 = derived).
	FeedBudget int
	// Gridded selects the gridded full-custom congestion variant.
	Gridded bool
	// Candidates is the shape count Plan.Candidates returns.
	Candidates int
}

// Option mutates one Options field; execute methods take any number.
type Option func(*Options)

// Full-Custom device-area modes, re-exported so engine callers can
// build WithFCMode options without importing the core kernels.
const (
	FCExactAreas   = core.FCExactAreas
	FCAverageAreas = core.FCAverageAreas
)

// build resolves a functional-option list over the defaults.  The
// empty list returns the defaults without taking an address: passing
// &o to the option closures forces o onto the heap, and the warm
// execute path (memoized estimate behind the serving cache) must stay
// allocation-free.
func build(opts []Option) Options {
	if len(opts) == 0 {
		return Options{Candidates: 5}
	}
	o := Options{Candidates: 5}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithRows fixes the standard-cell (or congestion) row count.
func WithRows(n int) Option { return func(o *Options) { o.Rows = n } }

// WithTrackSharing toggles the §7 track-sharing extension.
func WithTrackSharing(on bool) Option { return func(o *Options) { o.TrackSharing = on } }

// WithFCMode selects the full-custom device-area mode.
func WithFCMode(m core.FCMode) Option { return func(o *Options) { o.FCMode = m } }

// WithWorkers sizes the chip-level worker pool.
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithCongestModel selects the congestion demand model.
func WithCongestModel(m congest.Model) Option { return func(o *Options) { o.CongestModel = m } }

// WithCapacity fixes the per-channel track capacity.
func WithCapacity(c int) Option { return func(o *Options) { o.Capacity = c } }

// WithFeedBudget fixes the per-row feed-through budget.
func WithFeedBudget(b int) Option { return func(o *Options) { o.FeedBudget = b } }

// WithGridded selects the gridded full-custom congestion variant.
func WithGridded(on bool) Option { return func(o *Options) { o.Gridded = on } }

// WithCandidates sets the candidate shape count.
func WithCandidates(n int) Option { return func(o *Options) { o.Candidates = n } }

// SCOptions converts the engine knobs to the core kernel's option
// struct, routing the kernel's row-span lookups through the
// process-wide distribution memo.
func (o Options) SCOptions() core.SCOptions {
	return core.SCOptions{Rows: o.Rows, TrackSharing: o.TrackSharing, Spans: memoSpans{}}
}

// CongestOptions converts the engine knobs to the congestion
// subsystem's option struct.
func (o Options) CongestOptions() congest.Options {
	return congest.Options{Model: o.CongestModel, Capacity: o.Capacity, FeedBudget: o.FeedBudget}
}
