package engine

import (
	"context"
	"strings"
	"testing"

	"maest/internal/netlist"
	"maest/internal/tech"
)

const pipeMnet = `
module demo
port in a
port in b
port out y
device g1 NAND2 a b n1
device g2 INV n1 n2
device g3 NOR2 n1 b n3
device g4 NAND2 n2 n3 y
end
`

func TestPipelineEndToEnd(t *testing.T) {
	p := tech.NMOS25()
	res, err := Pipeline(context.Background(), strings.NewReader(pipeMnet), p, WithRows(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Module != "demo" {
		t.Fatalf("module = %q", res.Module)
	}
	if res.SC == nil || res.FCExact == nil || res.FCAverage == nil {
		t.Fatal("pipeline missing estimates")
	}
	if len(res.SCCandidates) != 5 {
		t.Fatalf("candidates = %d", len(res.SCCandidates))
	}
	if res.Stats.N != 4 {
		t.Fatalf("stats N = %d", res.Stats.N)
	}
	// The full-custom estimate runs on the expanded transistor
	// netlist, which has more devices than the gate netlist.
	if res.FCExact.DeviceArea <= 0 || res.FCExact.Area < res.FCExact.DeviceArea {
		t.Fatal("full-custom estimate inconsistent")
	}
	if res.SC.Area <= 0 {
		t.Fatal("standard-cell estimate empty")
	}
}

func TestPipelineParseFailure(t *testing.T) {
	if _, err := Pipeline(context.Background(), strings.NewReader("not a module"), tech.NMOS25()); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestEstimateTransistorLevelCircuit(t *testing.T) {
	// A transistor-level module gets no standard-cell estimate.
	b := netlist.NewBuilder("xtors")
	b.AddDevice("m0", "ENH", "a", "", "x")
	b.AddDevice("m1", "DEP", "x", "x", "")
	b.AddPort("pa", netlist.In, "a")
	b.AddPort("px", netlist.Out, "x")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Estimate(context.Background(), c, tech.NMOS25())
	if err != nil {
		t.Fatal(err)
	}
	if res.SC != nil || res.SCCandidates != nil {
		t.Fatal("transistor circuit should have no SC estimate")
	}
	if res.FCExact == nil || res.FCAverage == nil {
		t.Fatal("missing FC estimates")
	}
}

func TestEstimateRejectsMixedModule(t *testing.T) {
	b := netlist.NewBuilder("mixed")
	b.AddDevice("g1", "INV", "a", "b")
	b.AddDevice("m1", "ENH", "b", "", "c")
	b.AddPort("pa", netlist.In, "a")
	b.AddPort("pc", netlist.Out, "c")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Estimate(context.Background(), c, tech.NMOS25()); err == nil {
		t.Fatal("mixed module accepted")
	}
}

func TestEstimateUnknownType(t *testing.T) {
	b := netlist.NewBuilder("u")
	b.AddDevice("g1", "NOPE", "a", "b")
	b.AddDevice("g2", "INV", "b", "a")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Estimate(context.Background(), c, tech.NMOS25()); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestEstimateCMOSProcess(t *testing.T) {
	// The estimator must "deal with different chip fabrication
	// technologies": the same RTL shape estimates under CMOS too.
	p := tech.CMOS30()
	res, err := Pipeline(context.Background(), strings.NewReader(pipeMnet), p, WithRows(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.SC == nil || res.SC.Area <= 0 || res.FCExact.Area <= 0 {
		t.Fatal("CMOS estimation failed")
	}
}
