package engine

import (
	"context"
	"testing"

	"maest/internal/engine/distmemo"
	"maest/internal/gen"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// deltaAllocCeiling is the allocation budget for deriving one child
// plan from a single pin-rewire edit on the 160-gate benchmark module.
// The clone arenas, inherited canonical orders, and cached process
// blob hold the measured figure around 45 objects; the ceiling leaves
// headroom for normal churn while catching a regression back toward
// the naive clone-and-recompile cost (several hundred objects).
const deltaAllocCeiling = 96

// benchEcoModule builds the module the delta benchmarks edit: the same
// shape maest-bench's -eco gate replays, at its middle size.
func benchEcoModule(b *testing.B, p *tech.Process) *netlist.Circuit {
	b.Helper()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "bench_eco", Gates: 160, Inputs: 5, Outputs: 4, Seed: 21,
	}, p)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// toggleEdit alternates connecting and disconnecting one pin on a
// scratch net, so a chain of deltas stays bounded while every step
// still dirties a net and re-runs the §3 statistics patch.
func toggleEdit(dev string, step int) Edit {
	if step%2 == 0 {
		return ConnectPin(dev, "eco_hot")
	}
	return DisconnectPin(dev, "eco_hot")
}

// BenchmarkDeltaSingleEdit pins the cost of Plan.Delta itself for one
// pin-rewire edit: circuit clone, mutation, statistics patch, and the
// canonical re-hash with inherited sort orders.  This is the fixed
// overhead every incremental re-estimate pays before any distribution
// work, so it is held to an explicit allocation ceiling.
func BenchmarkDeltaSingleEdit(b *testing.B) {
	p := tech.NMOS25()
	c := benchEcoModule(b, p)
	pl, err := Compile(c, p)
	if err != nil {
		b.Fatal(err)
	}
	dev := c.Devices[0].Name
	cur := pl
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		np, err := cur.Delta(toggleEdit(dev, i))
		if err != nil {
			b.Fatal(err)
		}
		cur = np
	}
	b.StopTimer()
	step := 0
	if allocs := testing.AllocsPerRun(100, func() {
		np, err := cur.Delta(toggleEdit(dev, step))
		if err != nil {
			b.Fatal(err)
		}
		cur = np
		step++
	}); allocs > deltaAllocCeiling {
		b.Fatalf("Delta allocates %.0f objects per edit, ceiling %d", allocs, deltaAllocCeiling)
	}
}

// BenchmarkDeltaReEstimate times the full incremental re-estimate op —
// Delta plus the child's Eq. 12 standard-cell estimate and Eq. 2–11
// congestion analysis — with the distribution memo warm, exactly the
// per-edit work maest-bench's -eco gate measures on its delta route.
func BenchmarkDeltaReEstimate(b *testing.B) {
	p := tech.NMOS25()
	c := benchEcoModule(b, p)
	ctx := context.Background()
	pl, err := Compile(c, p)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pl.EstimateStandardCell(ctx); err != nil {
		b.Fatal(err)
	}
	if _, err := pl.Congestion(ctx); err != nil {
		b.Fatal(err)
	}
	dev := c.Devices[0].Name
	cur := pl
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		np, err := cur.Delta(toggleEdit(dev, i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := np.EstimateStandardCell(ctx); err != nil {
			b.Fatal(err)
		}
		if _, err := np.Congestion(ctx); err != nil {
			b.Fatal(err)
		}
		cur = np
	}
}

// BenchmarkFullReEstimate times the same op down the from-scratch
// route — ApplyEdits, Compile, estimate, congestion, memo purged per
// step like a cold process.  Comparing its ns/op against
// BenchmarkDeltaReEstimate reproduces the speedup maest-bench -eco
// gates in CI.
func BenchmarkFullReEstimate(b *testing.B) {
	p := tech.NMOS25()
	c := benchEcoModule(b, p)
	ctx := context.Background()
	dev := c.Devices[0].Name
	cur := c
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distmemo.Purge()
		next, err := ApplyEdits(cur, toggleEdit(dev, i))
		if err != nil {
			b.Fatal(err)
		}
		pl, err := Compile(next, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pl.EstimateStandardCell(ctx); err != nil {
			b.Fatal(err)
		}
		if _, err := pl.Congestion(ctx); err != nil {
			b.Fatal(err)
		}
		cur = next
	}
}
