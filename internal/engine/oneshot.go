package engine

import (
	"context"
	"io"

	"maest/internal/core"
	"maest/internal/hdl"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/tech"
)

// Estimate is the one-shot convenience over Compile + Plan.Estimate
// for callers that will not reuse the plan.  Anything answering more
// than one question about the same circuit should Compile once and
// hold the Plan instead.
func Estimate(ctx context.Context, c *netlist.Circuit, p *tech.Process, opts ...Option) (*core.Result, error) {
	pl, err := CompileCtx(ctx, c, p)
	if err != nil {
		return nil, err
	}
	return pl.estimate(ctx, build(opts))
}

// Pipeline is the end-to-end Fig. 1 flow: parse the circuit schematic
// (.mnet) from r, compile it against the fabrication-process
// database, and produce the estimate record for the floor planner —
// under a "pipeline" span covering the parse, compile, and estimate
// stages.
func Pipeline(ctx context.Context, r io.Reader, p *tech.Process, opts ...Option) (res *core.Result, err error) {
	ctx, sp := obs.Start(ctx, "pipeline")
	defer func() { sp.EndErr(err) }()
	c, err := hdl.ParseMnetCtx(ctx, r)
	if err != nil {
		return nil, estErr("pipeline: %v", err)
	}
	return Estimate(ctx, c, p, opts...)
}
