package engine

// FuzzPlanDelta drives Plan.Delta with fuzzer-chosen netlists and
// byte-encoded edit scripts.  The invariants are Delta's whole
// contract, checked on every input: never panic, agree with the
// recompile route on whether the script errors, and — when it
// succeeds without a process swap — produce the recompile's exact
// content address and statistics.
//
// Seed corpus: every golden netlist under testdata (.bench and .mnet)
// paired with hand-written scripts covering each opcode.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"maest/internal/hdl"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// decodeScript interprets fuzz bytes as an edit script against the
// base circuit: 3-byte opcodes indexing into the circuit's device,
// net, and type vocabularies, with out-of-vocabulary probes (bogus
// names, bogus types, zero rows, nil process) mixed in by the byte
// values themselves.
func decodeScript(data []byte, base *netlist.Circuit) []Edit {
	devName := func(b byte) string {
		if int(b)%7 == 6 {
			return "fz_ghost"
		}
		return base.Devices[int(b)%len(base.Devices)].Name
	}
	netName := func(b byte) string {
		if len(base.Nets) == 0 || int(b)%5 == 4 {
			return fmt.Sprintf("fz_n%d", b)
		}
		return base.Nets[int(b)%len(base.Nets)].Name
	}
	var types []string
	seen := map[string]bool{}
	for _, d := range base.Devices {
		if !seen[d.Type] {
			seen[d.Type] = true
			types = append(types, d.Type)
		}
	}

	var script []Edit
	for i := 0; i+2 < len(data) && len(script) < 8; i += 3 {
		op, x, y := data[i], data[i+1], data[i+2]
		switch op % 8 {
		case 0:
			script = append(script, ConnectPin(devName(x), netName(y)))
		case 1:
			script = append(script, DisconnectPin(devName(x), netName(y)))
		case 2:
			typ := "BOGUS_TYPE"
			if int(x)%4 != 3 {
				typ = types[int(x)%len(types)]
			}
			script = append(script, AddCell(fmt.Sprintf("fz_d%d", i), typ, netName(y)))
		case 3:
			script = append(script, RemoveCell(devName(x)))
		case 4:
			script = append(script, AddNet(fmt.Sprintf("fz_n%d_%d", i, x), devName(y)))
		case 5:
			script = append(script, RemoveNet(netName(x)))
		case 6:
			script = append(script, ResizeRows(int(x)%7)) // 0 is the invalid probe
		case 7:
			switch x % 3 {
			case 0:
				script = append(script, SwapProcess(tech.CMOS30()))
			case 1:
				script = append(script, SwapProcess(tech.NMOS25()))
			default:
				script = append(script, SwapProcess(nil))
			}
		}
	}
	return script
}

func FuzzPlanDelta(f *testing.F) {
	var sources [][]byte
	for _, file := range []string{"c17.bench", "rand180.bench", "demo.mnet", "ladder.mnet"} {
		src, err := os.ReadFile(filepath.Join("..", "..", "testdata", file))
		if err != nil {
			f.Fatal(err)
		}
		sources = append(sources, src)
	}
	scripts := [][]byte{
		{0, 1, 2},                            // connect
		{1, 0, 0, 0, 0, 1},                   // disconnect then connect
		{2, 0, 1, 3, 6, 0},                   // add cell, remove ghost
		{4, 9, 0, 5, 2, 0},                   // add net, remove net
		{6, 3, 0},                            // resize rows
		{6, 0, 0},                            // resize to 0 (invalid)
		{7, 0, 0},                            // swap process (fallback)
		{7, 2, 0},                            // swap to nil (invalid)
		{2, 3, 1},                            // bogus device type
		{0, 6, 1, 3, 0, 0, 5, 1, 0, 6, 2, 0}, // mixed script
	}
	for _, src := range sources {
		for _, sc := range scripts {
			f.Add(src, sc)
		}
	}

	f.Fuzz(func(t *testing.T, src, raw []byte) {
		p := tech.NMOS25()
		base, err := hdl.ParseMnet(bytes.NewReader(src))
		if err != nil {
			if base, err = hdl.ParseBench(bytes.NewReader(src), "fz", p); err != nil {
				return // not a parseable netlist; nothing to check
			}
		}
		pl, err := Compile(base, p)
		if err != nil {
			return
		}
		script := decodeScript(raw, base)

		a, errA := pl.Delta(script...)
		edited, errB := ApplyEdits(pl.Circuit(), script...)
		var b *Plan
		if errB == nil {
			b, errB = Compile(edited, scriptProc(script, p))
		}
		if (errA == nil) != (errB == nil) {
			t.Fatalf("error parity broken for [%s]:\n  Delta:     %v\n  recompile: %v",
				scriptString(script), errA, errB)
		}
		if errA != nil {
			return
		}
		if a.Hash() != b.Hash() {
			t.Fatalf("content address diverged for [%s]:\n  delta:     %s\n  recompile: %s",
				scriptString(script), a.Hash(), b.Hash())
		}
		if !reflect.DeepEqual(a.Stats(), b.Stats()) {
			t.Fatalf("stats diverged for [%s]:\n  delta:     %+v\n  recompile: %+v",
				scriptString(script), a.Stats(), b.Stats())
		}
		if g, err := netlist.Gather(a.Circuit(), a.Process()); err != nil {
			t.Fatalf("Gather over delta circuit: %v", err)
		} else if !reflect.DeepEqual(a.Stats(), g) {
			t.Fatalf("incremental stats diverged from Gather for [%s]", scriptString(script))
		}
	})
}
