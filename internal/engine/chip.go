package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"maest/internal/core"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/tech"
)

// Chip-scale metrics: the worker pool is the throughput engine of the
// "estimate every module, then floor-plan" workflow, so its
// utilization is what tells whether the pipeline runs as fast as the
// hardware allows.  Metric names predate the move from internal/core.
var (
	mChips       = obs.DefCounter("maest_chip_estimates_total", "completed chip-level estimate runs")
	mChipModules = obs.DefCounter("maest_chip_modules_total", "modules estimated through the chip worker pool")
	mChipWorkers = obs.DefGauge("maest_chip_workers", "worker count of the most recent chip estimate")
	mChipWorkSec = obs.DefHistogram("maest_chip_wall_seconds", "chip estimate wall-clock latency", obs.DefBuckets)
	mChipUtil    = obs.DefHistogram("maest_chip_worker_utilization_ratio", "per-worker busy fraction of a chip estimate", obs.RatioBuckets)
)

// EstimateChip compiles and estimates every module of a partitioned
// chip concurrently — the paper's workflow estimates each module
// independently before floor planning, which parallelizes perfectly.
// Results are returned in module order.  When several modules fail,
// every failure is reported (errors.Join), each tagged with its
// module name.  Honored options: WithRows, WithTrackSharing,
// WithWorkers (≤ 0 selects GOMAXPROCS).
func EstimateChip(ctx context.Context, modules []*netlist.Circuit, p *tech.Process, opts ...Option) ([]*core.Result, error) {
	o := build(opts)
	return chipPool(ctx, len(modules), o.Workers,
		func(ctx context.Context, i int) (*core.Result, error) {
			// Compile clones the process per plan, so the pool needs
			// no per-worker clone to stay race-clean under callers
			// that mutate theirs concurrently.
			pl, err := CompileCtx(ctx, modules[i], p)
			if err != nil {
				return nil, err
			}
			return pl.estimate(ctx, o)
		},
		func(i int) string { return modules[i].Name })
}

// EstimatePlans is EstimateChip over already-compiled plans: the
// serving layer's batch endpoint compiles (or cache-hits) each module
// first, then fans the estimation out here.  Results are returned in
// plan order.
func EstimatePlans(ctx context.Context, plans []*Plan, opts ...Option) ([]*core.Result, error) {
	o := build(opts)
	return chipPool(ctx, len(plans), o.Workers,
		func(ctx context.Context, i int) (*core.Result, error) {
			return plans[i].estimate(ctx, o)
		},
		func(i int) string { return plans[i].circ.Name })
}

// chipPool is the shared worker pool: an "estimate_chip" span
// parenting one estimate per module, prompt cancellation (modules not
// yet started are skipped; the pool surfaces ctx.Err itself), full
// failure aggregation, and worker-utilization metrics.
func chipPool(ctx context.Context, n, workers int, work func(context.Context, int) (*core.Result, error), name func(int) string) (res []*core.Result, err error) {
	ctx, sp := obs.Start(ctx, "estimate_chip")
	defer func() { sp.EndErr(err) }()
	if n == 0 {
		return nil, estErr("chip has no modules")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	sp.SetInt("modules", int64(n))
	sp.SetInt("workers", int64(workers))

	results := make([]*core.Result, n)
	errs := make([]error, n)
	busy := make([]time.Duration, workers)
	idx := make(chan int)
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				// Cancellation check per module: a module already
				// estimating runs to completion (the estimator is not
				// preemptible), but unstarted ones are skipped so the
				// pool winds down promptly.
				if ctx.Err() != nil {
					continue
				}
				start := time.Now()
				results[i], errs[i] = work(ctx, i)
				busy[w] += time.Since(start)
			}
		}(w)
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if cerr := ctx.Err(); cerr != nil {
		// Surface the cancellation itself: partial results are not
		// a usable chip estimate, and module errors observed after
		// the deadline are noise.
		sp.SetString("cancelled", cerr.Error())
		return nil, cerr
	}

	wall := time.Since(t0)
	mChips.Inc()
	mChipModules.Add(int64(n))
	mChipWorkers.Set(float64(workers))
	mChipWorkSec.Observe(wall.Seconds())
	if wall > 0 {
		var util float64
		for _, b := range busy {
			r := b.Seconds() / wall.Seconds()
			mChipUtil.Observe(r)
			util += r
		}
		sp.SetFloat("utilization", util/float64(workers))
	}

	// Aggregate every module failure — a multi-module run must be
	// diagnosable in one pass, not one lowest-index error at a time.
	var failures []error
	for i, e := range errs {
		if e != nil {
			failures = append(failures, fmt.Errorf("%w (module %q)", e, name(i)))
		}
	}
	if len(failures) > 0 {
		sp.SetInt("failed_modules", int64(len(failures)))
		return nil, errors.Join(failures...)
	}
	return results, nil
}
