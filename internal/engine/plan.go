package engine

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"maest/internal/cells"
	"maest/internal/congest"
	"maest/internal/core"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/tech"
)

// Hash is the content address of a Plan: SHA-256 over the canonical
// circuit rendering plus the full process serialization.  Two plans
// with equal hashes produce bit-identical results from every execute
// method, so a cache may serve either from the other's work.
type Hash [sha256.Size]byte

// String returns the hash in hex, for logs and cache keys.
func (h Hash) String() string { return fmt.Sprintf("%x", h[:]) }

// PlanHash computes the content address Compile would assign, without
// compiling.  Caches probe with this before paying for compilation.
func PlanHash(c *netlist.Circuit, p *tech.Process) Hash {
	return hashWithProcBlob(c, tech.Append(nil, p))
}

// hashWithProcBlob is PlanHash with the process serialization already
// rendered.  The process is invariant across a whole Delta chain, so
// every child hash reuses the parent's rendered bytes instead of
// re-serializing the device library per edit.
func hashWithProcBlob(c *netlist.Circuit, procBlob []byte) Hash {
	ports, devs := canonOrders(c)
	return hashOrdered(c, procBlob, ports, devs)
}

// hashOrdered is the innermost hash: canonical orders and process
// bytes already known, one pooled rendering buffer, one SHA-256.
func hashOrdered(c *netlist.Circuit, procBlob []byte, ports, devs []int32) Hash {
	buf := hashBufPool.Get().(*[]byte)
	b := appendCanonicalOrdered((*buf)[:0], c, ports, devs)
	b = append(b, procBlob...)
	out := Hash(sha256.Sum256(b))
	*buf = b
	hashBufPool.Put(buf)
	return out
}

// hashBufPool recycles the rendering buffers behind hashWithProcBlob:
// the ECO loop hashes one circuit per edit, and growing a fresh
// multi-KB buffer each time dominated the delta profile.
var hashBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// WriteCanonicalCircuit emits a deterministic, order-normalized
// rendering of the circuit: ports and devices sorted by name, so the
// rendering (and every hash derived from it) is invariant under
// comments, whitespace, and declaration order in the source netlist.
// It is close to .mnet but not identical: generated "$" names are
// allowed even though WriteMnet refuses to emit them.
func WriteCanonicalCircuit(w io.Writer, c *netlist.Circuit) {
	w.Write(AppendCanonicalCircuit(nil, c))
}

// AppendCanonicalCircuit appends the canonical rendering to dst and
// returns the extended slice.  This is the form the content-hash hot
// paths use; the bytes are identical to WriteCanonicalCircuit's.
func AppendCanonicalCircuit(dst []byte, c *netlist.Circuit) []byte {
	ports, devs := canonOrders(c)
	return appendCanonicalOrdered(dst, c, ports, devs)
}

// canonOrders computes the canonical (name-sorted) visit order of a
// circuit's ports and devices, as positions into the respective
// slices.  Names are unique, so each permutation is unique — which is
// what lets a Delta child reuse its parent's orders whenever the edit
// script left the element sets alone (the common ECO case: the edit
// algebra never touches ports, and pin rewires never touch the device
// list), skipping the O(N log N) re-sort per edit.
func canonOrders(c *netlist.Circuit) (ports, devs []int32) {
	ports = make([]int32, len(c.Ports))
	for i := range ports {
		ports[i] = int32(i)
	}
	sort.Slice(ports, func(i, j int) bool { return c.Ports[ports[i]].Name < c.Ports[ports[j]].Name })
	devs = make([]int32, len(c.Devices))
	for i := range devs {
		devs[i] = int32(i)
	}
	sort.Slice(devs, func(i, j int) bool { return c.Devices[devs[i]].Name < c.Devices[devs[j]].Name })
	return ports, devs
}

// appendCanonicalOrdered is AppendCanonicalCircuit with the sorted
// orders already known.
func appendCanonicalOrdered(dst []byte, c *netlist.Circuit, ports, devs []int32) []byte {
	dst = append(dst, "module "...)
	dst = append(dst, c.Name...)
	dst = append(dst, '\n')
	for _, i := range ports {
		p := c.Ports[i]
		dst = append(dst, "port "...)
		dst = append(dst, p.Name...)
		dst = append(dst, ' ')
		dst = append(dst, p.Dir.String()...)
		dst = append(dst, ' ')
		dst = append(dst, p.Net.Name...)
		dst = append(dst, '\n')
	}
	for _, i := range devs {
		d := c.Devices[i]
		dst = append(dst, "device "...)
		dst = append(dst, d.Name...)
		dst = append(dst, ' ')
		dst = append(dst, d.Type...)
		for _, n := range d.Pins {
			if n == nil {
				dst = append(dst, " -"...)
			} else {
				dst = append(dst, ' ')
				dst = append(dst, n.Name...)
			}
		}
		dst = append(dst, '\n')
	}
	return dst
}

// Constants are the process-derived scale factors of Eq. 12–14,
// resolved once at compile time (lengths in λ).
type Constants struct {
	// RowHeight is the standard-cell row height of Eq. 12's n·h term.
	RowHeight float64
	// TrackPitch scales routing tracks into channel height (Eq. 12)
	// and full-custom wiring area (Eq. 13).
	TrackPitch float64
	// FeedThroughWidth is f_w, the width of one feed-through column.
	FeedThroughWidth float64
	// PortPitch spaces module ports along an edge (§5 control
	// criterion).
	PortPitch float64
	// AvgDeviceWidth is W_avg, the module's mean device width.
	AvgDeviceWidth float64
	// AvgDeviceHeight is the module's mean device height.
	AvgDeviceHeight float64
}

// memo keys.  Every execute result is memoized under the knobs it
// depends on — nothing more, so e.g. a congestion map computed for
// the estimate's row count is shared with an explicit request for the
// same rows.
type (
	scKey struct {
		rows    int
		sharing bool
	}
	distKey struct {
		rows    int
		gridded bool
		model   congest.Model
	}
	congKey struct {
		distKey
		capacity, feedBudget int
	}
	sweepKey struct {
		rows, count int
		sharing     bool
	}
)

// Plan is one compiled circuit + process pair: the immutable
// intermediates every estimate shares, plus memo tables for the
// results of each execute method.  A Plan is safe for concurrent use;
// the compiled inputs are never mutated after Compile returns, and
// the memos are mutex-guarded (execute methods compute outside the
// lock — a racing duplicate computation is idempotent because every
// kernel is deterministic).
type Plan struct {
	circ     *netlist.Circuit
	proc     *tech.Process // private clone; callers may mutate theirs freely
	procBlob []byte        // proc rendered once (tech.Append); reused by every Delta child hash
	stats    *netlist.Stats
	hash     Hash
	// canonPorts/canonDevs are the canonical (name-sorted) visit
	// orders behind hash; a Delta child whose script leaves the
	// element sets alone inherits them instead of re-sorting.
	canonPorts, canonDevs []int32
	cellLevel             bool // standard-cell methodology applies (library cells, not transistors)
	initialRows           int
	consts                Constants
	// nCells/nTransistors record the methodology classification so
	// Delta can re-derive it incrementally after add/remove edits.
	nCells, nTransistors int
	// defaultRows, when non-zero, overrides the row count execute
	// methods default to (the ResizeRows edit); an explicit WithRows
	// always wins.  Zero on every compiled-from-scratch plan.
	defaultRows int

	mu     sync.Mutex
	fcCirc *netlist.Circuit // transistor-level expansion, built on first FC use
	sc     map[scKey]*core.SCEstimate
	prof   map[scKey]*core.SCEstimate
	sweeps map[sweepKey][]*core.SCEstimate
	fc     map[core.FCMode]*core.FCEstimate
	bundle map[scKey]*core.Result
	dists  map[distKey]*congest.Distributions
	maps   map[congKey]*congest.Map
}

// Compile builds the Plan for one circuit under one process.
func Compile(c *netlist.Circuit, p *tech.Process) (*Plan, error) {
	return CompileCtx(context.Background(), c, p)
}

// CompileCtx is Compile with observability: a "compile" span plus the
// compilation metrics.  Compilation validates the process, classifies
// the module's methodology (mixing cells and transistors in one
// module is rejected, as in the paper), gathers the §3 statistics,
// and freezes the tech-scaled constants — all the per-circuit work no
// execute method should ever repeat.
func CompileCtx(ctx context.Context, c *netlist.Circuit, p *tech.Process) (pl *Plan, err error) {
	_, sp := obs.Start(ctx, "compile")
	sp.SetString("module", c.Name)
	defer func(t0 time.Time) {
		mCompileSec.Observe(time.Since(t0).Seconds())
		if err != nil {
			mCompileErr.Inc()
		} else {
			mCompiles.Inc()
			sp.SetInt("devices", int64(pl.stats.N))
			sp.SetInt("nets", int64(pl.stats.H))
			sp.SetString("plan", pl.hash.String()[:12])
		}
		sp.EndErr(err)
	}(time.Now())

	if err := p.Validate(); err != nil {
		return nil, estErr("module %q: %v", c.Name, err)
	}
	nCells, nTransistors := 0, 0
	for _, d := range c.Devices {
		dt, err := p.Device(d.Type)
		if err != nil {
			return nil, estErr("module %q: %v", c.Name, err)
		}
		if dt.Class == tech.ClassCell {
			nCells++
		} else {
			nTransistors++
		}
	}
	if nCells > 0 && nTransistors > 0 {
		return nil, estErr("module %q mixes %d cells and %d transistors; estimate them as separate modules",
			c.Name, nCells, nTransistors)
	}

	proc := p.Clone()
	s, err := netlist.Gather(c, proc)
	if err != nil {
		return nil, estErr("module %q: %v", c.Name, err)
	}
	procBlob := tech.Append(nil, proc)
	canonPorts, canonDevs := canonOrders(c)
	pl = &Plan{
		circ:         c,
		proc:         proc,
		procBlob:     procBlob,
		stats:        s,
		hash:         hashOrdered(c, procBlob, canonPorts, canonDevs),
		canonPorts:   canonPorts,
		canonDevs:    canonDevs,
		cellLevel:    nCells > 0,
		nCells:       nCells,
		nTransistors: nTransistors,
		initialRows:  core.InitialRows(s, proc),
		consts: Constants{
			RowHeight:        float64(proc.RowHeight),
			TrackPitch:       float64(proc.TrackPitch),
			FeedThroughWidth: float64(proc.FeedThroughWidth),
			PortPitch:        float64(proc.PortPitch),
			AvgDeviceWidth:   s.AvgWidth(),
			AvgDeviceHeight:  s.AvgHeight(),
		},
	}
	pl.initMemos()
	return pl, nil
}

// initMemos allocates the (empty) execute-result memo tables; shared
// by Compile and the incremental Delta constructor.
func (pl *Plan) initMemos() {
	pl.sc = make(map[scKey]*core.SCEstimate)
	pl.prof = make(map[scKey]*core.SCEstimate)
	pl.sweeps = make(map[sweepKey][]*core.SCEstimate)
	pl.fc = make(map[core.FCMode]*core.FCEstimate)
	pl.bundle = make(map[scKey]*core.Result)
	pl.dists = make(map[distKey]*congest.Distributions)
	pl.maps = make(map[congKey]*congest.Map)
}

// rowsFor resolves a row knob against the plan's ResizeRows default:
// an explicit row count always wins; otherwise a Delta(ResizeRows(n))
// child defaults to n the way a WithRows(n) call would.
func (pl *Plan) rowsFor(rows int) int {
	if rows != 0 || pl.defaultRows == 0 {
		return rows
	}
	return pl.defaultRows
}

// Hash returns the Plan's content address.
func (pl *Plan) Hash() Hash { return pl.hash }

// Circuit returns the compiled circuit.  It is shared, not copied;
// treat it as read-only (mutating it invalidates the Plan).
func (pl *Plan) Circuit() *netlist.Circuit { return pl.circ }

// Process returns the Plan's private process clone (read-only).
func (pl *Plan) Process() *tech.Process { return pl.proc }

// Stats returns the §3 statistics gathered at compile time.
func (pl *Plan) Stats() *netlist.Stats { return pl.stats }

// Constants returns the tech-scaled Eq. 12–14 constants.
func (pl *Plan) Constants() Constants { return pl.consts }

// CellLevel reports whether the standard-cell methodology applies
// (the module is built from library cells rather than transistors).
func (pl *Plan) CellLevel() bool { return pl.cellLevel }

// InitialRows returns the §5 initial row count frozen at compile.
func (pl *Plan) InitialRows() int { return pl.initialRows }

// DefaultRows returns the row count a Delta(ResizeRows(n)) child
// defaults its execute calls to, or 0 when the plan carries no
// override.  Callers that content-address execute results (the serving
// layer) fold this in so a resized child and an explicit WithRows call
// share one cache entry.
func (pl *Plan) DefaultRows() int { return pl.defaultRows }

// expanded returns the transistor-level circuit the full-custom side
// estimates: the module itself at transistor level, or its cell
// expansion, built once and memoized.
func (pl *Plan) expanded() (*netlist.Circuit, error) {
	if !pl.cellLevel {
		return pl.circ, nil
	}
	pl.mu.Lock()
	c := pl.fcCirc
	pl.mu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := cells.ExpandTransistors(pl.circ, pl.proc)
	if err != nil {
		return nil, estErr("module %q: %v", pl.circ.Name, err)
	}
	pl.mu.Lock()
	pl.fcCirc = c
	pl.mu.Unlock()
	return c, nil
}
