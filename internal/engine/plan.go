package engine

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"maest/internal/cells"
	"maest/internal/congest"
	"maest/internal/core"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/tech"
)

// Hash is the content address of a Plan: SHA-256 over the canonical
// circuit rendering plus the full process serialization.  Two plans
// with equal hashes produce bit-identical results from every execute
// method, so a cache may serve either from the other's work.
type Hash [sha256.Size]byte

// String returns the hash in hex, for logs and cache keys.
func (h Hash) String() string { return fmt.Sprintf("%x", h[:]) }

// PlanHash computes the content address Compile would assign, without
// compiling.  Caches probe with this before paying for compilation.
func PlanHash(c *netlist.Circuit, p *tech.Process) Hash {
	h := sha256.New()
	WriteCanonicalCircuit(h, c)
	tech.Write(h, p)
	var out Hash
	h.Sum(out[:0])
	return out
}

// WriteCanonicalCircuit emits a deterministic, order-normalized
// rendering of the circuit: ports and devices sorted by name, so the
// rendering (and every hash derived from it) is invariant under
// comments, whitespace, and declaration order in the source netlist.
// It is close to .mnet but not identical: generated "$" names are
// allowed even though WriteMnet refuses to emit them.
func WriteCanonicalCircuit(w io.Writer, c *netlist.Circuit) {
	fmt.Fprintf(w, "module %s\n", c.Name)
	ports := make([]*netlist.Port, len(c.Ports))
	copy(ports, c.Ports)
	sort.Slice(ports, func(i, j int) bool { return ports[i].Name < ports[j].Name })
	for _, p := range ports {
		fmt.Fprintf(w, "port %s %s %s\n", p.Name, p.Dir, p.Net.Name)
	}
	devices := make([]*netlist.Device, len(c.Devices))
	copy(devices, c.Devices)
	sort.Slice(devices, func(i, j int) bool { return devices[i].Name < devices[j].Name })
	for _, d := range devices {
		fmt.Fprintf(w, "device %s %s", d.Name, d.Type)
		for _, n := range d.Pins {
			if n == nil {
				io.WriteString(w, " -")
			} else {
				fmt.Fprintf(w, " %s", n.Name)
			}
		}
		io.WriteString(w, "\n")
	}
}

// Constants are the process-derived scale factors of Eq. 12–14,
// resolved once at compile time (lengths in λ).
type Constants struct {
	// RowHeight is the standard-cell row height of Eq. 12's n·h term.
	RowHeight float64
	// TrackPitch scales routing tracks into channel height (Eq. 12)
	// and full-custom wiring area (Eq. 13).
	TrackPitch float64
	// FeedThroughWidth is f_w, the width of one feed-through column.
	FeedThroughWidth float64
	// PortPitch spaces module ports along an edge (§5 control
	// criterion).
	PortPitch float64
	// AvgDeviceWidth is W_avg, the module's mean device width.
	AvgDeviceWidth float64
	// AvgDeviceHeight is the module's mean device height.
	AvgDeviceHeight float64
}

// memo keys.  Every execute result is memoized under the knobs it
// depends on — nothing more, so e.g. a congestion map computed for
// the estimate's row count is shared with an explicit request for the
// same rows.
type (
	scKey struct {
		rows    int
		sharing bool
	}
	distKey struct {
		rows    int
		gridded bool
		model   congest.Model
	}
	congKey struct {
		distKey
		capacity, feedBudget int
	}
	sweepKey struct {
		rows, count int
		sharing     bool
	}
)

// Plan is one compiled circuit + process pair: the immutable
// intermediates every estimate shares, plus memo tables for the
// results of each execute method.  A Plan is safe for concurrent use;
// the compiled inputs are never mutated after Compile returns, and
// the memos are mutex-guarded (execute methods compute outside the
// lock — a racing duplicate computation is idempotent because every
// kernel is deterministic).
type Plan struct {
	circ        *netlist.Circuit
	proc        *tech.Process // private clone; callers may mutate theirs freely
	stats       *netlist.Stats
	hash        Hash
	cellLevel   bool // standard-cell methodology applies (library cells, not transistors)
	initialRows int
	consts      Constants

	mu     sync.Mutex
	fcCirc *netlist.Circuit // transistor-level expansion, built on first FC use
	sc     map[scKey]*core.SCEstimate
	prof   map[scKey]*core.SCEstimate
	sweeps map[sweepKey][]*core.SCEstimate
	fc     map[core.FCMode]*core.FCEstimate
	bundle map[scKey]*core.Result
	dists  map[distKey]*congest.Distributions
	maps   map[congKey]*congest.Map
}

// Compile builds the Plan for one circuit under one process.
func Compile(c *netlist.Circuit, p *tech.Process) (*Plan, error) {
	return CompileCtx(context.Background(), c, p)
}

// CompileCtx is Compile with observability: a "compile" span plus the
// compilation metrics.  Compilation validates the process, classifies
// the module's methodology (mixing cells and transistors in one
// module is rejected, as in the paper), gathers the §3 statistics,
// and freezes the tech-scaled constants — all the per-circuit work no
// execute method should ever repeat.
func CompileCtx(ctx context.Context, c *netlist.Circuit, p *tech.Process) (pl *Plan, err error) {
	_, sp := obs.Start(ctx, "compile")
	sp.SetString("module", c.Name)
	defer func(t0 time.Time) {
		mCompileSec.Observe(time.Since(t0).Seconds())
		if err != nil {
			mCompileErr.Inc()
		} else {
			mCompiles.Inc()
			sp.SetInt("devices", int64(pl.stats.N))
			sp.SetInt("nets", int64(pl.stats.H))
			sp.SetString("plan", pl.hash.String()[:12])
		}
		sp.EndErr(err)
	}(time.Now())

	if err := p.Validate(); err != nil {
		return nil, estErr("module %q: %v", c.Name, err)
	}
	nCells, nTransistors := 0, 0
	for _, d := range c.Devices {
		dt, err := p.Device(d.Type)
		if err != nil {
			return nil, estErr("module %q: %v", c.Name, err)
		}
		if dt.Class == tech.ClassCell {
			nCells++
		} else {
			nTransistors++
		}
	}
	if nCells > 0 && nTransistors > 0 {
		return nil, estErr("module %q mixes %d cells and %d transistors; estimate them as separate modules",
			c.Name, nCells, nTransistors)
	}

	proc := p.Clone()
	s, err := netlist.Gather(c, proc)
	if err != nil {
		return nil, estErr("module %q: %v", c.Name, err)
	}
	pl = &Plan{
		circ:        c,
		proc:        proc,
		stats:       s,
		hash:        PlanHash(c, proc),
		cellLevel:   nCells > 0,
		initialRows: core.InitialRows(s, proc),
		consts: Constants{
			RowHeight:        float64(proc.RowHeight),
			TrackPitch:       float64(proc.TrackPitch),
			FeedThroughWidth: float64(proc.FeedThroughWidth),
			PortPitch:        float64(proc.PortPitch),
			AvgDeviceWidth:   s.AvgWidth(),
			AvgDeviceHeight:  s.AvgHeight(),
		},
		sc:     make(map[scKey]*core.SCEstimate),
		prof:   make(map[scKey]*core.SCEstimate),
		sweeps: make(map[sweepKey][]*core.SCEstimate),
		fc:     make(map[core.FCMode]*core.FCEstimate),
		bundle: make(map[scKey]*core.Result),
		dists:  make(map[distKey]*congest.Distributions),
		maps:   make(map[congKey]*congest.Map),
	}
	return pl, nil
}

// Hash returns the Plan's content address.
func (pl *Plan) Hash() Hash { return pl.hash }

// Circuit returns the compiled circuit.  It is shared, not copied;
// treat it as read-only (mutating it invalidates the Plan).
func (pl *Plan) Circuit() *netlist.Circuit { return pl.circ }

// Process returns the Plan's private process clone (read-only).
func (pl *Plan) Process() *tech.Process { return pl.proc }

// Stats returns the §3 statistics gathered at compile time.
func (pl *Plan) Stats() *netlist.Stats { return pl.stats }

// Constants returns the tech-scaled Eq. 12–14 constants.
func (pl *Plan) Constants() Constants { return pl.consts }

// CellLevel reports whether the standard-cell methodology applies
// (the module is built from library cells rather than transistors).
func (pl *Plan) CellLevel() bool { return pl.cellLevel }

// InitialRows returns the §5 initial row count frozen at compile.
func (pl *Plan) InitialRows() int { return pl.initialRows }

// expanded returns the transistor-level circuit the full-custom side
// estimates: the module itself at transistor level, or its cell
// expansion, built once and memoized.
func (pl *Plan) expanded() (*netlist.Circuit, error) {
	if !pl.cellLevel {
		return pl.circ, nil
	}
	pl.mu.Lock()
	c := pl.fcCirc
	pl.mu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := cells.ExpandTransistors(pl.circ, pl.proc)
	if err != nil {
		return nil, estErr("module %q: %v", pl.circ.Name, err)
	}
	pl.mu.Lock()
	pl.fcCirc = c
	pl.mu.Unlock()
	return c, nil
}
