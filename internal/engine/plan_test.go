package engine

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"maest/internal/core"
	"maest/internal/gen"
	"maest/internal/hdl"
	"maest/internal/netlist"
	"maest/internal/tech"
)

func compileMnet(t testing.TB, src string, p *tech.Process) *Plan {
	t.Helper()
	c, err := hdl.ParseMnet(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(c, p)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// The content address must be invariant under declaration order — the
// property the serving layer's shared-compile cache rests on — and
// sensitive to both the circuit and the process.
func TestPlanHashCanonical(t *testing.T) {
	p := tech.NMOS25()
	a := compileMnet(t, `
module m
port in a
port out y
device g1 INV a n1
device g2 INV n1 y
end
`, p)
	b := compileMnet(t, `
module m
port out y
port in a
device g2 INV n1 y
device g1 INV a n1
end
`, p)
	if a.Hash() != b.Hash() {
		t.Fatal("reordered declarations changed the plan hash")
	}
	if got, want := a.Hash().String(), PlanHash(a.Circuit(), p).String(); got != want {
		t.Fatalf("Hash() = %s, PlanHash = %s", got, want)
	}
	other := compileMnet(t, `
module m
port in a
port out y
device g1 INV a n1
device g2 NAND2 n1 a y
end
`, p)
	if a.Hash() == other.Hash() {
		t.Fatal("different circuits share a plan hash")
	}
	cmos := compileMnet(t, `
module m
port in a
port out y
device g1 INV a n1
device g2 INV n1 y
end
`, tech.CMOS30())
	if a.Hash() == cmos.Hash() {
		t.Fatal("different processes share a plan hash")
	}
}

// Compile freezes a private process clone: mutating the caller's
// process afterwards must not change what the plan computes.
func TestPlanProcessIsolation(t *testing.T) {
	p := tech.NMOS25()
	pl := compileMnet(t, `
module iso
port in a
port out y
device g1 INV a n1
device g2 INV n1 y
end
`, p)
	before, err := pl.EstimateStandardCell(context.Background(), WithRows(1))
	if err != nil {
		t.Fatal(err)
	}
	p.RowHeight *= 10
	after, err := pl.EstimateStandardCell(context.Background(), WithRows(2))
	if err != nil {
		t.Fatal(err)
	}
	if after.Area <= 0 || before.Area <= 0 {
		t.Fatal("estimates empty")
	}
	if pl.Process().RowHeight == p.RowHeight {
		t.Fatal("plan shares the caller's process")
	}
}

// Every execute method must agree bit-for-bit with the core kernels
// it memoizes — the refactor's zero-drift contract at the unit level.
func TestPlanMatchesCoreKernels(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.RandomCircuit(gen.RandomConfig{
		Name: "kern", Gates: 60, Inputs: 6, Outputs: 4, Seed: 3,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(c, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s := pl.Stats()

	for _, rows := range []int{0, 2, 5} {
		for _, sharing := range []bool{false, true} {
			got, err := pl.EstimateStandardCell(ctx, WithRows(rows), WithTrackSharing(sharing))
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.EstimateStandardCell(s, p, core.SCOptions{Rows: rows, TrackSharing: sharing})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("rows=%d sharing=%v: plan and kernel estimates differ", rows, sharing)
			}
		}
	}
	for _, mode := range []core.FCMode{core.FCExactAreas, core.FCAverageAreas} {
		got, err := pl.EstimateFullCustom(ctx, WithFCMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		if got.Area <= 0 || got.Mode != mode {
			t.Fatalf("mode %v: bad estimate %+v", mode, got)
		}
	}
	gotC, err := pl.Candidates(ctx, WithCandidates(3))
	if err != nil {
		t.Fatal(err)
	}
	wantC, err := core.EstimateStandardCellCandidates(s, p, core.SCOptions{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotC, wantC) {
		t.Fatal("plan and kernel candidate sweeps differ")
	}
}

// TestEstimateDeterministic pins reproducibility end to end: the
// same seeded random circuit estimated twice yields byte-identical
// results (maps in Stats iterate in sorted order inside the
// estimator, so nothing may depend on traversal order).
func TestEstimateDeterministic(t *testing.T) {
	p, err := tech.Lookup("nmos25")
	if err != nil {
		t.Fatal(err)
	}
	cfg := gen.RandomConfig{Name: "det", Gates: 40, Inputs: 6, Outputs: 5, Seed: 7}
	var results []*core.Result
	for trial := 0; trial < 2; trial++ {
		c, err := gen.RandomCircuit(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Estimate(context.Background(), c, p)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatalf("same seed, different estimates:\n%+v\n%+v", results[0], results[1])
	}
}

// Memoization identity: repeat executions at the same knobs return
// the same objects (a map lookup, not a recompute), and the estimate
// bundle shares the kernel memos.
func TestPlanMemoization(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.Chain("memo", 12, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(c, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	r1, err := pl.Estimate(ctx, WithRows(3))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pl.Estimate(ctx, WithRows(3))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("repeat Estimate did not hit the bundle memo")
	}
	sc, err := pl.EstimateStandardCell(ctx, WithRows(3))
	if err != nil {
		t.Fatal(err)
	}
	if sc != r1.SC {
		t.Fatal("EstimateStandardCell recomputed the bundled kernel result")
	}
	fc, err := pl.EstimateFullCustom(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fc != r1.FCExact {
		t.Fatal("EstimateFullCustom recomputed the bundled kernel result")
	}
	m1, err := pl.Congestion(ctx)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := pl.Congestion(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("repeat Congestion did not hit the map memo")
	}
	// Changing only the scoring knobs reruns scoring but shares the
	// distributions underneath.
	d, err := pl.Distributions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := pl.Congestion(ctx, WithCapacity(50))
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Fatal("capacity change returned the unscored map")
	}
	d2, err := pl.Distributions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d != d2 {
		t.Fatal("distributions were recomputed across scoring variants")
	}
}

// The strict Candidates contract on the plan surface: the defined
// error classes must survive the memo layer.
func TestPlanCandidatesErrors(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.Chain("cand", 3, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(c, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := pl.Candidates(ctx, WithCandidates(0)); !errors.Is(err, core.ErrCandidateCount) {
		t.Fatalf("count=0: err = %v, want ErrCandidateCount", err)
	}
	if _, err := pl.Candidates(ctx, WithCandidates(4)); !errors.Is(err, core.ErrCandidateRange) {
		t.Fatalf("count>N: err = %v, want ErrCandidateRange", err)
	}
	// A full Estimate memoizes the lenient 5-shape sweep for this
	// 3-device module; the strict surface must still reject count=5.
	if _, err := pl.Estimate(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Candidates(ctx, WithCandidates(5)); !errors.Is(err, core.ErrCandidateRange) {
		t.Fatalf("count>N after Estimate: err = %v, want ErrCandidateRange", err)
	}
	if _, err := pl.Candidates(ctx, WithCandidates(2)); err != nil {
		t.Fatalf("feasible count rejected: %v", err)
	}
	// Every candidate error is still an estimator error for the
	// serving layer's 422 mapping.
	_, err = pl.Candidates(ctx, WithCandidates(0))
	if !errors.Is(err, core.ErrEstimate) {
		t.Fatalf("candidate error not wrapped in ErrEstimate: %v", err)
	}
}

// Compile rejects what the historical pipeline rejected, with the
// error text the CLI and service surface.
func TestCompileRejectsMixedModule(t *testing.T) {
	b := netlist.NewBuilder("mixed")
	b.AddDevice("g1", "INV", "a", "b")
	b.AddDevice("m1", "ENH", "b", "", "c")
	b.AddPort("pa", netlist.In, "a")
	b.AddPort("pc", netlist.Out, "c")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compile(c, tech.NMOS25())
	if err == nil {
		t.Fatal("mixed module compiled")
	}
	if !errors.Is(err, core.ErrEstimate) {
		t.Fatalf("compile error not wrapped in ErrEstimate: %v", err)
	}
	if !strings.Contains(err.Error(), "mixes") {
		t.Fatalf("unexpected error text: %v", err)
	}
}

// BenchmarkPlanWarmEstimate pins the warm execute path: once a plan
// has answered a question, asking again is a mutex-guarded map lookup
// — zero heap allocations.  A regression here means the compile/
// execute split stopped paying for itself on the serving layer's
// cache-hit path.
func BenchmarkPlanWarmEstimate(b *testing.B) {
	p := tech.NMOS25()
	c, err := gen.Chain("warm", 16, p)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := Compile(c, p)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := pl.Estimate(ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Estimate(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := pl.Estimate(ctx); err != nil {
			b.Fatal(err)
		}
	}); allocs != 0 {
		b.Fatalf("warm Estimate allocates %.0f objects per call, want 0", allocs)
	}
}

// BenchmarkPlanSecondConsumer pins the tentpole's claim: the second
// consumer of a compiled plan (an estimate followed by a congestion
// map, the /v1/estimate → /v1/congestion repeat) skips the statistics
// gathering and distribution convolutions entirely.
func BenchmarkPlanSecondConsumer(b *testing.B) {
	p := tech.NMOS25()
	c, err := gen.Chain("second", 16, p)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := Compile(c, p)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := pl.Estimate(ctx); err != nil {
		b.Fatal(err)
	}
	if _, err := pl.Congestion(ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Congestion(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := pl.Congestion(ctx); err != nil {
			b.Fatal(err)
		}
	}); allocs != 0 {
		b.Fatalf("warm Congestion allocates %.0f objects per call, want 0", allocs)
	}
}
