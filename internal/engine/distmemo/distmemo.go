// Package distmemo is the process-wide memo of the estimator's
// probability distributions: the per-channel Poisson-binomial /
// per-row feed-through shape sets of internal/congest, keyed by the
// net-degree histogram they are convolved from, and the §4.1 row-span
// quantities of internal/prob, keyed by (n, D).
//
// The paper's Eq. 2–11 machinery depends on remarkably little — a
// channel-demand distribution is a function of the degree histogram,
// the row count, the grid variant, and the demand model; a row-span
// distribution is a function of (n, D) alone.  Different modules (and
// different edit states of one module in an ECO loop) therefore
// recompute identical convolutions constantly.  This package shares
// them across every compiled plan in the process.
//
// The memo is sharded (16 ways, hashed by key) so concurrent plans do
// not serialize on one lock, size-bounded per shard (oldest-first
// eviction) so a long-lived service cannot grow it without bound, and
// collision-proof: a shape entry stores the exact degree classes it
// was computed from and a lookup verifies them, so a 64-bit histogram
// hash collision degrades to a miss, never to a wrong distribution.
//
// Every value handed out is shared and must be treated as immutable
// by callers — the same discipline congest.Distributions already
// documents for its slices.
package distmemo

import (
	"math"
	"sync"

	"maest/internal/obs"
	"maest/internal/prob"
)

// Memo metrics.  The hit ratio is the ECO loop's headline number: a
// re-estimate after an edit that preserves the degree histogram
// should be all hits.
var (
	mShapeHits    = obs.DefCounter("maest_distmemo_shape_hits_total", "congestion shape-set memo hits")
	mShapeMisses  = obs.DefCounter("maest_distmemo_shape_misses_total", "congestion shape-set memo misses")
	mShapeEvicted = obs.DefCounter("maest_distmemo_shape_evictions_total", "congestion shape-set memo evictions")
	mSpanHits     = obs.DefCounter("maest_distmemo_rowspan_hits_total", "row-span memo hits")
	mSpanMisses   = obs.DefCounter("maest_distmemo_rowspan_misses_total", "row-span memo misses")
	mSpanEvicted  = obs.DefCounter("maest_distmemo_rowspan_evictions_total", "row-span memo evictions")
	mFeedHits     = obs.DefCounter("maest_distmemo_feedthrough_hits_total", "feed-through count memo hits")
	mFeedMisses   = obs.DefCounter("maest_distmemo_feedthrough_misses_total", "feed-through count memo misses")
	mFeedEvicted  = obs.DefCounter("maest_distmemo_feedthrough_evictions_total", "feed-through count memo evictions")
)

// Class is one net-degree class of the §3 histogram: Count nets of
// degree Degree.  Shape keys are derived from the ordered class list
// (ascending degree, as netlist.Stats.Degrees yields it).
type Class struct {
	Degree, Count int
}

// HashClasses folds an ordered class list into the 64-bit histogram
// hash shape keys carry (FNV-1a over the degree/count pairs).  Equal
// histograms hash equal; the reverse is enforced by the stored-class
// verification on lookup, not by the hash.
func HashClasses(classes []Class) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, c := range classes {
		mix(uint64(c.Degree))
		mix(uint64(c.Count))
	}
	return h
}

// ShapeKey identifies one congestion shape-set computation: the
// histogram hash plus every knob the distributions depend on.  The
// module name is deliberately absent — the shapes are name-free, so
// differently-named modules with equal histograms share one entry.
type ShapeKey struct {
	Hist    uint64
	Rows    int
	Gridded bool
	Model   int
}

// Shape is the name-free payload of one congestion distribution set:
// exactly the slices congest.Distributions carries, minus the module
// identity.  Channels and Feeds are shared; treat them as immutable.
type Shape struct {
	// Nets is the number of routable nets the classes sum to.
	Nets int
	// Channels[c][t] = P(channel c demands exactly t tracks).
	Channels [][]float64
	// Feeds[r][m] = P(row r needs exactly m feed-throughs); nil for
	// gridded variants.
	Feeds [][]float64
}

// shapeEntry pairs a stored shape with the exact classes it was
// computed from, for collision-proof verification.
type shapeEntry struct {
	classes []Class
	shape   *Shape
}

const (
	numShards = 16
	// shapeShardCap bounds each shard to 64 shape sets (1024 process-
	// wide); a shape set for a 200-net module is ~100 KiB, so the memo
	// tops out around 100 MiB in the worst case and far less in
	// practice (most modules share far smaller shapes).
	shapeShardCap = 64
	// spanShardCap bounds each shard to 512 row-span entries (8192
	// process-wide); an entry is O(n) floats, a few KiB at most.
	spanShardCap = 512
	// feedShardCap bounds each shard to 512 feed-through expectations
	// (8192 process-wide); an entry is a single int.
	feedShardCap = 512
)

// shard is one lock-striped slice of a memo table: a map plus the
// insertion-ordered key list oldest-first eviction walks.
type shard[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]V
	order   []K
	cap     int
	evicted *obs.Counter
}

func (s *shard[K, V]) get(k K) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.entries[k]
	return v, ok
}

func (s *shard[K, V]) put(k K, v V) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries == nil {
		s.entries = make(map[K]V, s.cap)
	}
	if _, dup := s.entries[k]; dup {
		// A racing duplicate computation: keep the resident value so
		// every caller that already holds it stays consistent.
		return
	}
	if len(s.order) >= s.cap {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, oldest)
		s.evicted.Inc()
	}
	s.entries[k] = v
	s.order = append(s.order, k)
}

func (s *shard[K, V]) purge() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = nil
	s.order = nil
}

var (
	shapeShards [numShards]shard[ShapeKey, *shapeEntry]
	spanShards  [numShards]shard[spanKey, *spanEntry]
	feedShards  [numShards]shard[feedKey, int]
)

func init() {
	for i := range shapeShards {
		shapeShards[i].cap = shapeShardCap
		shapeShards[i].evicted = mShapeEvicted
	}
	for i := range spanShards {
		spanShards[i].cap = spanShardCap
		spanShards[i].evicted = mSpanEvicted
	}
	for i := range feedShards {
		feedShards[i].cap = feedShardCap
		feedShards[i].evicted = mFeedEvicted
	}
}

func shapeShard(k ShapeKey) *shard[ShapeKey, *shapeEntry] {
	h := k.Hist ^ uint64(k.Rows)<<32 ^ uint64(k.Model)<<16
	if k.Gridded {
		h ^= 1 << 8
	}
	return &shapeShards[h%numShards]
}

// classesEqual verifies a candidate entry against the exact histogram
// a lookup carries.
func classesEqual(a, b []Class) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LookupShape returns the memoized shape set for one (histogram,
// rows, gridded, model) computation, verifying the stored classes
// match exactly (a hash collision is a miss, never a wrong answer).
func LookupShape(k ShapeKey, classes []Class) (*Shape, bool) {
	e, ok := shapeShard(k).get(k)
	if !ok || !classesEqual(e.classes, classes) {
		mShapeMisses.Inc()
		return nil, false
	}
	mShapeHits.Inc()
	return e.shape, true
}

// StoreShape records a freshly computed shape set.  The classes slice
// is copied; the shape's payload slices are shared from here on and
// must never be mutated.
func StoreShape(k ShapeKey, classes []Class, sh *Shape) {
	cp := make([]Class, len(classes))
	copy(cp, classes)
	shapeShard(k).put(k, &shapeEntry{classes: cp, shape: sh})
}

// spanKey identifies one row-span computation.
type spanKey struct {
	n, d int
}

// spanEntry memoizes every derived quantity of one RowSpanDist call
// together, so TracksForNet / ExpectedRowSpan lookups after a RowSpan
// lookup are free.
type spanEntry struct {
	dist   []float64
	e      float64
	tracks int
}

func spanShard(k spanKey) *shard[spanKey, *spanEntry] {
	return &spanShards[(uint64(k.n)*31+uint64(k.d))%numShards]
}

// rowSpanEntry resolves (and memoizes) the full row-span quantity set
// for one (n, D).  Errors are never cached: the defined-error paths
// of internal/prob are cheap and callers expect fresh wrapping.
func rowSpanEntry(n, d int) (*spanEntry, error) {
	k := spanKey{n: n, d: d}
	if e, ok := spanShard(k).get(k); ok {
		mSpanHits.Inc()
		return e, nil
	}
	mSpanMisses.Inc()
	dist, err := prob.RowSpanDist(n, d)
	if err != nil {
		return nil, err
	}
	ev, err := prob.ExpectedRowSpan(n, d)
	if err != nil {
		return nil, err
	}
	tracks, err := prob.TracksForNet(n, d)
	if err != nil {
		return nil, err
	}
	e := &spanEntry{dist: dist, e: ev, tracks: tracks}
	spanShard(k).put(k, e)
	return e, nil
}

// RowSpan returns prob.RowSpanDist(n, D), memoized.  The returned
// slice is shared; treat it as immutable.
func RowSpan(n, d int) ([]float64, error) {
	e, err := rowSpanEntry(n, d)
	if err != nil {
		return nil, err
	}
	return e.dist, nil
}

// ExpectedRowSpan returns prob.ExpectedRowSpan(n, D), memoized.  The
// value is the one prob computed — bit-identical to calling prob
// directly.
func ExpectedRowSpan(n, d int) (float64, error) {
	e, err := rowSpanEntry(n, d)
	if err != nil {
		return 0, err
	}
	return e.e, nil
}

// TracksForNet returns prob.TracksForNet(n, D), memoized.
func TracksForNet(n, d int) (int, error) {
	e, err := rowSpanEntry(n, d)
	if err != nil {
		return 0, err
	}
	return e.tracks, nil
}

// feedKey identifies one Eq. 11 feed-through expectation: the
// routable-net count H and the exact bits of the central-row
// probability p (a pure function of the row count, but keying on the
// float keeps the memo correct for any caller-supplied p).
type feedKey struct {
	h     int
	pBits uint64
}

func feedShard(k feedKey) *shard[feedKey, int] {
	return &feedShards[(uint64(k.h)*31^k.pBits)%numShards]
}

// FeedThroughsCeil returns prob.FeedThroughsCeil(h, p), memoized.
// Eq. 11 sums the full Eq. 10 binomial law — O(H) Lgamma/Exp calls —
// to honor the paper's derivation, which makes it the costliest term
// of a warm standard-cell estimate; an ECO loop revisits the same
// (H, p) pairs constantly.
func FeedThroughsCeil(h int, p float64) (int, error) {
	k := feedKey{h: h, pBits: math.Float64bits(p)}
	if v, ok := feedShard(k).get(k); ok {
		mFeedHits.Inc()
		return v, nil
	}
	mFeedMisses.Inc()
	v, err := prob.FeedThroughsCeil(h, p)
	if err != nil {
		// Errors are never cached, as elsewhere in this package.
		return 0, err
	}
	feedShard(k).put(k, v)
	return v, nil
}

// Purge empties every memo table.  Tests and benchmarks use it to
// measure cold paths; production code never needs it (the tables are
// size-bounded).
func Purge() {
	for i := range shapeShards {
		shapeShards[i].purge()
	}
	for i := range spanShards {
		spanShards[i].purge()
	}
	for i := range feedShards {
		feedShards[i].purge()
	}
}

// Metrics reports the cumulative hit/miss/eviction counters of the
// shape and row-span tables (shape set first), for tests and
// debugging; the same numbers are exported as maest_distmemo_*
// Prometheus counters.
func Metrics() (shapeHits, shapeMisses, shapeEvictions, spanHits, spanMisses, spanEvictions int64) {
	return mShapeHits.Value(), mShapeMisses.Value(), mShapeEvicted.Value(),
		mSpanHits.Value(), mSpanMisses.Value(), mSpanEvicted.Value()
}

// FeedMetrics reports the feed-through table's counters.
func FeedMetrics() (hits, misses, evictions int64) {
	return mFeedHits.Value(), mFeedMisses.Value(), mFeedEvicted.Value()
}
