package distmemo

// Metamorphic tests against internal/prob: every quantity the memo
// hands out must be bit-identical to calling prob directly — cold,
// warm, and after eviction — because the engine's correctness
// contract (Delta results match recompiles exactly) transitively
// depends on the memo never perturbing a float.

import (
	"math/rand"
	"testing"

	"maest/internal/prob"
)

// TestRowSpanBitIdentical sweeps randomized (n, D) pairs — including
// the n≈200 regime where the naive Eq. 2 evaluation catastrophically
// cancels and the forward chain matters — and demands exact equality
// with internal/prob on the cold path and again on the memo hit.
func TestRowSpanBitIdentical(t *testing.T) {
	Purge()
	rng := rand.New(rand.NewSource(1988))
	type pair struct{ n, d int }
	pairs := []pair{
		{1, 2}, {2, 2}, {3, 2}, {5, 3}, {10, 10}, {13, 4},
		{200, 2}, {200, 7}, {200, 150}, {200, 200}, {200, 400},
		{211, 3}, {250, 9},
	}
	for i := 0; i < 60; i++ {
		pairs = append(pairs, pair{n: 1 + rng.Intn(220), d: 2 + rng.Intn(20)})
	}
	for _, pc := range pairs {
		wantDist, err := prob.RowSpanDist(pc.n, pc.d)
		if err != nil {
			t.Fatalf("(%d,%d): %v", pc.n, pc.d, err)
		}
		wantE, err := prob.ExpectedRowSpan(pc.n, pc.d)
		if err != nil {
			t.Fatal(err)
		}
		wantTracks, err := prob.TracksForNet(pc.n, pc.d)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ { // cold, then memo hit
			dist, err := RowSpan(pc.n, pc.d)
			if err != nil {
				t.Fatalf("(%d,%d) round %d: %v", pc.n, pc.d, round, err)
			}
			if len(dist) != len(wantDist) {
				t.Fatalf("(%d,%d) round %d: dist length %d, want %d", pc.n, pc.d, round, len(dist), len(wantDist))
			}
			for j := range dist {
				if dist[j] != wantDist[j] {
					t.Fatalf("(%d,%d) round %d: dist[%d] = %g, prob says %g",
						pc.n, pc.d, round, j, dist[j], wantDist[j])
				}
			}
			e, err := ExpectedRowSpan(pc.n, pc.d)
			if err != nil {
				t.Fatal(err)
			}
			if e != wantE {
				t.Fatalf("(%d,%d) round %d: E = %g, prob says %g", pc.n, pc.d, round, e, wantE)
			}
			tracks, err := TracksForNet(pc.n, pc.d)
			if err != nil {
				t.Fatal(err)
			}
			if tracks != wantTracks {
				t.Fatalf("(%d,%d) round %d: tracks = %d, prob says %d", pc.n, pc.d, round, tracks, wantTracks)
			}
		}
	}
}

func TestRowSpanHitMissAccounting(t *testing.T) {
	Purge()
	_, _, _, h0, m0, _ := Metrics()
	if _, err := ExpectedRowSpan(17, 5); err != nil {
		t.Fatal(err)
	}
	_, _, _, h1, m1, _ := Metrics()
	if m1 != m0+1 || h1 != h0 {
		t.Fatalf("cold lookup moved (hits,misses) by (%d,%d), want (0,1)", h1-h0, m1-m0)
	}
	// The entry memoizes every derived quantity together: a different
	// quantity at the same (n, D) is a hit, not a second computation.
	if _, err := TracksForNet(17, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := RowSpan(17, 5); err != nil {
		t.Fatal(err)
	}
	_, _, _, h2, m2, _ := Metrics()
	if m2 != m1 || h2 != h1+2 {
		t.Fatalf("warm lookups moved (hits,misses) by (%d,%d), want (2,0)", h2-h1, m2-m1)
	}
}

// TestErrorsNeverCached: defined-error inputs must consult prob every
// time (the memo stores only successful computations) and return the
// same error prob would.
func TestErrorsNeverCached(t *testing.T) {
	Purge()
	_, wantErr := prob.RowSpanDist(0, 2)
	if wantErr == nil {
		t.Fatal("prob accepted n = 0; update this test")
	}
	_, _, _, _, m0, _ := Metrics()
	for i := 0; i < 2; i++ {
		if _, err := RowSpan(0, 2); err == nil {
			t.Fatal("memo accepted n = 0")
		} else if err.Error() != wantErr.Error() {
			t.Fatalf("error rewritten by the memo: %q, want %q", err, wantErr)
		}
		if _, err := ExpectedRowSpan(3, 0); err == nil {
			t.Fatal("memo accepted D = 0")
		}
	}
	_, _, _, _, m1, _ := Metrics()
	if m1-m0 != 4 {
		t.Fatalf("4 failing lookups counted %d misses; errors must not be cached", m1-m0)
	}
}

func TestShapeRoundTrip(t *testing.T) {
	Purge()
	classes := []Class{{Degree: 2, Count: 5}, {Degree: 3, Count: 2}}
	key := ShapeKey{Hist: HashClasses(classes), Rows: 4, Gridded: false, Model: 1}
	if _, ok := LookupShape(key, classes); ok {
		t.Fatal("hit on an empty memo")
	}
	sh := &Shape{Nets: 7, Channels: [][]float64{{0.5, 0.5}}, Feeds: [][]float64{{1}}}
	StoreShape(key, classes, sh)
	got, ok := LookupShape(key, classes)
	if !ok {
		t.Fatal("miss immediately after store")
	}
	if got != sh {
		t.Fatal("lookup returned a different payload than stored")
	}
	// Any key component change is a distinct computation.
	for _, k := range []ShapeKey{
		{Hist: key.Hist, Rows: 5, Gridded: false, Model: 1},
		{Hist: key.Hist, Rows: 4, Gridded: true, Model: 1},
		{Hist: key.Hist, Rows: 4, Gridded: false, Model: 0},
		{Hist: key.Hist + 1, Rows: 4, Gridded: false, Model: 1},
	} {
		if _, ok := LookupShape(k, classes); ok {
			t.Fatalf("hit under mismatched key %+v", k)
		}
	}
}

// TestShapeCollisionIsMiss pins the collision-proofing: two different
// histograms forced under one 64-bit key must degrade to a miss for
// the second, never to the first histogram's distributions.
func TestShapeCollisionIsMiss(t *testing.T) {
	Purge()
	a := []Class{{Degree: 2, Count: 3}}
	b := []Class{{Degree: 2, Count: 4}, {Degree: 5, Count: 1}}
	// Same key for both — a simulated FNV collision.
	key := ShapeKey{Hist: 42, Rows: 3, Model: 0}
	StoreShape(key, a, &Shape{Nets: 3})
	if _, ok := LookupShape(key, b); ok {
		t.Fatal("histogram collision served the wrong distributions")
	}
	if got, ok := LookupShape(key, a); !ok || got.Nets != 3 {
		t.Fatal("original histogram no longer resident")
	}
	// The stored classes are a private copy: mutating the caller's
	// slice after StoreShape must not corrupt verification.
	c := []Class{{Degree: 7, Count: 2}}
	keyC := ShapeKey{Hist: 43, Rows: 3, Model: 0}
	StoreShape(keyC, c, &Shape{Nets: 2})
	c[0].Count = 99
	if _, ok := LookupShape(keyC, []Class{{Degree: 7, Count: 2}}); !ok {
		t.Fatal("stored classes aliased the caller's slice")
	}
}

// TestShapeEviction overfills the shape table (capacity 64 × 16
// shards) and checks oldest-first eviction: early keys are gone, late
// keys resident, and the eviction counter accounts for the overflow.
func TestShapeEviction(t *testing.T) {
	Purge()
	classes := []Class{{Degree: 2, Count: 1}}
	const total = 2048 // 2× process-wide capacity
	_, _, e0, _, _, _ := Metrics()
	for i := 0; i < total; i++ {
		StoreShape(ShapeKey{Hist: uint64(i), Rows: 1}, classes, &Shape{Nets: i})
	}
	_, _, e1, _, _, _ := Metrics()
	if evicted := e1 - e0; evicted != total-16*64 {
		t.Fatalf("evicted %d entries storing %d into a %d-entry table", evicted, total, 16*64)
	}
	if _, ok := LookupShape(ShapeKey{Hist: 0, Rows: 1}, classes); ok {
		t.Fatal("oldest entry survived a full overwrite cycle")
	}
	if got, ok := LookupShape(ShapeKey{Hist: total - 1, Rows: 1}, classes); !ok || got.Nets != total-1 {
		t.Fatal("newest entry missing after eviction cycle")
	}
}

// TestSpanEvictionStaysBitIdentical drives one span shard past its
// capacity (keys n ≡ 2 mod 16 at fixed D land in one shard) and
// checks both the eviction accounting and the property eviction must
// preserve: a recomputed entry equals the evicted one exactly.
func TestSpanEvictionStaysBitIdentical(t *testing.T) {
	Purge()
	const d = 2
	const extra = 8
	firstE, err := ExpectedRowSpan(2, d)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, _, _, ev0 := Metrics()
	for k := 0; k < 512+extra; k++ {
		if _, err := ExpectedRowSpan(2+16*k, d); err != nil {
			t.Fatal(err)
		}
	}
	_, _, _, _, _, ev1 := Metrics()
	// The first loop iteration re-hits the warm (2, d) entry, so the
	// shard holds 512+extra-? entries; at least `extra` evictions must
	// have happened and the oldest key (n=2) must be among the victims.
	if ev1-ev0 < extra {
		t.Fatalf("only %d evictions after overfilling a 512-entry shard by %d", ev1-ev0, extra)
	}
	_, _, _, _, m0, _ := Metrics()
	again, err := ExpectedRowSpan(2, d)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, _, m1, _ := Metrics()
	if m1 != m0+1 {
		t.Fatalf("evicted entry did not recompute (miss delta %d)", m1-m0)
	}
	if again != firstE {
		t.Fatalf("recomputed span %g differs from pre-eviction %g", again, firstE)
	}
}

func TestPurge(t *testing.T) {
	Purge()
	if _, err := ExpectedRowSpan(9, 3); err != nil {
		t.Fatal(err)
	}
	classes := []Class{{Degree: 2, Count: 2}}
	key := ShapeKey{Hist: HashClasses(classes), Rows: 2}
	StoreShape(key, classes, &Shape{Nets: 2})
	Purge()
	if _, ok := LookupShape(key, classes); ok {
		t.Fatal("shape survived Purge")
	}
	_, _, _, _, m0, _ := Metrics()
	if _, err := ExpectedRowSpan(9, 3); err != nil {
		t.Fatal(err)
	}
	_, _, _, _, m1, _ := Metrics()
	if m1 != m0+1 {
		t.Fatal("span entry survived Purge")
	}
}

func TestHashClasses(t *testing.T) {
	a := []Class{{2, 3}, {4, 1}}
	b := []Class{{2, 3}, {4, 1}}
	if HashClasses(a) != HashClasses(b) {
		t.Fatal("equal class lists hash differently")
	}
	for _, other := range [][]Class{
		{{2, 3}},
		{{4, 1}, {2, 3}},
		{{2, 4}, {4, 1}},
		{{3, 2}, {4, 1}},
		nil,
	} {
		if HashClasses(a) == HashClasses(other) {
			t.Fatalf("distinct class lists %v and %v collide", a, other)
		}
	}
}
