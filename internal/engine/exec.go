package engine

import (
	"context"
	"time"

	"maest/internal/congest"
	"maest/internal/core"
	"maest/internal/obs"
)

// Estimate produces the full Result bundle — the Standard-Cell
// estimate with its five §7 candidate shapes (cell-level modules) and
// both Full-Custom device-area modes — exactly as the Fig. 1 pipeline
// always has.  Honored options: WithRows, WithTrackSharing.  The
// bundle is memoized per (rows, sharing); repeat calls are a lookup.
func (pl *Plan) Estimate(ctx context.Context, opts ...Option) (*core.Result, error) {
	return pl.estimate(ctx, build(opts))
}

// estimate is Estimate after option resolution — the entry EstimateChip
// and the serving layer use to avoid re-resolving per module.
func (pl *Plan) estimate(ctx context.Context, o Options) (res *core.Result, err error) {
	ctx, sp := obs.Start(ctx, "estimate")
	sp.SetString("module", pl.circ.Name)
	defer func(t0 time.Time) {
		observe(t0, err)
		sp.EndErr(err)
	}(time.Now())
	sp.SetInt("devices", int64(pl.stats.N))
	sp.SetInt("nets", int64(pl.stats.H))

	o.Rows = pl.rowsFor(o.Rows)
	k := scKey{rows: o.Rows, sharing: o.TrackSharing}
	pl.mu.Lock()
	res, ok := pl.bundle[k]
	pl.mu.Unlock()
	if ok {
		sp.SetInt("plan_memo", 1)
		return res, nil
	}

	res = &core.Result{Module: pl.circ.Name, Stats: pl.stats}
	if pl.cellLevel {
		if err := pl.estimateSC(ctx, res, o); err != nil {
			return nil, err
		}
	}
	if err := pl.estimateFC(ctx, res, o); err != nil {
		return nil, err
	}
	pl.mu.Lock()
	pl.bundle[k] = res
	pl.mu.Unlock()
	return res, nil
}

// estimateSC runs the §4.1 Standard-Cell side under its own span.
// The bundled candidate sweep is always five shapes around the chosen
// row count (the historical pipeline contract, independent of
// WithCandidates), and uses the unchecked kernel so degenerate
// modules still estimate.
func (pl *Plan) estimateSC(ctx context.Context, res *core.Result, o Options) (err error) {
	_, sp := obs.Start(ctx, "estimate.sc")
	defer func() { sp.EndErr(err) }()
	sc, err := pl.standardCell(o.Rows, o.TrackSharing)
	if err != nil {
		return err
	}
	res.SC = sc
	sp.SetInt("rows", int64(sc.Rows))
	sp.SetInt("tracks", int64(sc.Tracks))
	sp.SetInt("feedthroughs", int64(sc.FeedThroughs))
	sp.SetFloat("area", sc.Area)
	cand, err := pl.sweep(o.Rows, o.TrackSharing, 5)
	if err != nil {
		return err
	}
	res.SCCandidates = cand
	sp.SetInt("candidates", int64(len(cand)))
	return nil
}

// estimateFC runs the §4.2 Full-Custom side (both device-area modes)
// under its own span.
func (pl *Plan) estimateFC(ctx context.Context, res *core.Result, o Options) (err error) {
	_, sp := obs.Start(ctx, "estimate.fc")
	defer func() { sp.EndErr(err) }()
	if res.FCExact, err = pl.fullCustom(core.FCExactAreas); err != nil {
		return err
	}
	if res.FCAverage, err = pl.fullCustom(core.FCAverageAreas); err != nil {
		return err
	}
	sp.SetFloat("area_exact", res.FCExact.Area)
	sp.SetFloat("area_average", res.FCAverage.Area)
	return nil
}

// standardCell memoizes the Eq. 12/14 kernel per (rows, sharing).
func (pl *Plan) standardCell(rows int, sharing bool) (*core.SCEstimate, error) {
	k := scKey{rows: rows, sharing: sharing}
	pl.mu.Lock()
	sc, ok := pl.sc[k]
	pl.mu.Unlock()
	if ok {
		return sc, nil
	}
	sc, err := core.EstimateStandardCell(pl.stats, pl.proc, core.SCOptions{Rows: rows, TrackSharing: sharing, Spans: memoSpans{}})
	if err != nil {
		return nil, err
	}
	pl.mu.Lock()
	pl.sc[k] = sc
	pl.mu.Unlock()
	return sc, nil
}

// sweep memoizes the unchecked candidate kernel.
func (pl *Plan) sweep(rows int, sharing bool, count int) ([]*core.SCEstimate, error) {
	k := sweepKey{rows: rows, count: count, sharing: sharing}
	pl.mu.Lock()
	out, ok := pl.sweeps[k]
	pl.mu.Unlock()
	if ok {
		return out, nil
	}
	out, err := core.SweepStandardCellShapes(pl.stats, pl.proc, core.SCOptions{Rows: rows, TrackSharing: sharing, Spans: memoSpans{}}, count)
	if err != nil {
		return nil, err
	}
	pl.mu.Lock()
	pl.sweeps[k] = out
	pl.mu.Unlock()
	return out, nil
}

// fullCustom memoizes the Eq. 13 kernel per device-area mode; the
// transistor-level expansion behind it is built once per Plan.
func (pl *Plan) fullCustom(mode core.FCMode) (*core.FCEstimate, error) {
	pl.mu.Lock()
	est, ok := pl.fc[mode]
	pl.mu.Unlock()
	if ok {
		return est, nil
	}
	circ, err := pl.expanded()
	if err != nil {
		return nil, err
	}
	est, err = core.EstimateFullCustom(circ, pl.proc, mode)
	if err != nil {
		return nil, err
	}
	pl.mu.Lock()
	pl.fc[mode] = est
	pl.mu.Unlock()
	return est, nil
}

// EstimateStandardCell runs only the §4.1 kernel (honors WithRows,
// WithTrackSharing), memoized.
func (pl *Plan) EstimateStandardCell(ctx context.Context, opts ...Option) (*core.SCEstimate, error) {
	o := build(opts)
	return pl.standardCell(pl.rowsFor(o.Rows), o.TrackSharing)
}

// EstimateFullCustom runs only the §4.2 kernel (honors WithFCMode),
// memoized; the default mode is exact device areas.
func (pl *Plan) EstimateFullCustom(ctx context.Context, opts ...Option) (*core.FCEstimate, error) {
	o := build(opts)
	return pl.fullCustom(o.FCMode)
}

// Candidates returns WithCandidates (default five) §7 shape
// candidates around the chosen row count, with the strict feasibility
// contract of core.EstimateStandardCellCandidates: degenerate
// requests return defined errors rather than short or useless slices.
func (pl *Plan) Candidates(ctx context.Context, opts ...Option) ([]*core.SCEstimate, error) {
	o := build(opts)
	o.Rows = pl.rowsFor(o.Rows)
	// The memo holds unchecked sweeps (Estimate's bundle shares it),
	// so the strict contract's preconditions run before the lookup; a
	// memoized sweep that satisfies them is only returnable when some
	// shape is port-feasible — otherwise delegate to the strict kernel
	// for the defined error.
	if o.Candidates >= 1 && pl.stats.N > 0 && o.Candidates <= pl.stats.N {
		k := sweepKey{rows: o.Rows, count: o.Candidates, sharing: o.TrackSharing}
		pl.mu.Lock()
		out, ok := pl.sweeps[k]
		pl.mu.Unlock()
		if ok {
			for _, est := range out {
				if est.PortFeasible {
					return out, nil
				}
			}
		}
	}
	out, err := core.EstimateStandardCellCandidates(pl.stats, pl.proc, o.SCOptions(), o.Candidates)
	if err != nil {
		return nil, err
	}
	pl.mu.Lock()
	pl.sweeps[sweepKey{rows: o.Rows, count: o.Candidates, sharing: o.TrackSharing}] = out
	pl.mu.Unlock()
	return out, nil
}

// Profiled runs the Standard-Cell estimator with the per-row
// feed-through profile refinement (full Eq. 4/5 at every row instead
// of the central-row two-component bound), memoized.
func (pl *Plan) Profiled(ctx context.Context, opts ...Option) (*core.SCEstimate, error) {
	o := build(opts)
	o.Rows = pl.rowsFor(o.Rows)
	k := scKey{rows: o.Rows, sharing: o.TrackSharing}
	pl.mu.Lock()
	est, ok := pl.prof[k]
	pl.mu.Unlock()
	if ok {
		return est, nil
	}
	est, err := core.EstimateStandardCellProfiledCtx(ctx, pl.stats, pl.proc, o.SCOptions())
	if err != nil {
		return nil, err
	}
	pl.mu.Lock()
	pl.prof[k] = est
	pl.mu.Unlock()
	return est, nil
}

// Distributions returns the memoized congestion distributions for the
// resolved row count under WithRows/WithGridded/WithCongestModel —
// the expensive Poisson-binomial convolutions every congestion map at
// those knobs shares.
func (pl *Plan) Distributions(ctx context.Context, opts ...Option) (*congest.Distributions, error) {
	o := build(opts)
	return pl.distributions(pl.congestRows(o), o.Gridded, o.CongestModel)
}

// congestRows resolves the analyzed row count: explicit rows win,
// then a ResizeRows default; otherwise the ⌈√N⌉ grid (gridded) or the
// §5 initial rows.
func (pl *Plan) congestRows(o Options) int {
	if o.Rows != 0 {
		return o.Rows
	}
	if pl.defaultRows != 0 {
		return pl.defaultRows
	}
	if o.Gridded {
		return congest.GridRows(pl.stats)
	}
	return pl.initialRows
}

func (pl *Plan) distributions(rows int, gridded bool, model congest.Model) (*congest.Distributions, error) {
	k := distKey{rows: rows, gridded: gridded, model: model}
	pl.mu.Lock()
	d, ok := pl.dists[k]
	pl.mu.Unlock()
	if ok {
		return d, nil
	}
	d, err := congest.ComputeDistributions(pl.stats, rows, gridded, model)
	if err != nil {
		return nil, err
	}
	pl.mu.Lock()
	pl.dists[k] = d
	pl.mu.Unlock()
	return d, nil
}

// Congestion builds (or returns the memoized) congestion map under
// WithRows, WithGridded, WithCongestModel, WithCapacity, and
// WithFeedBudget.  The demand distributions behind the map are shared
// across capacity/budget knob changes — only the scoring reruns.
func (pl *Plan) Congestion(ctx context.Context, opts ...Option) (*congest.Map, error) {
	o := build(opts)
	rows := pl.congestRows(o)
	k := congKey{
		distKey:    distKey{rows: rows, gridded: o.Gridded, model: o.CongestModel},
		capacity:   o.Capacity,
		feedBudget: o.FeedBudget,
	}
	pl.mu.Lock()
	m, ok := pl.maps[k]
	pl.mu.Unlock()
	if ok {
		return m, nil
	}
	d, err := pl.distributions(rows, o.Gridded, o.CongestModel)
	if err != nil {
		return nil, err
	}
	m, err = congest.AnalyzeDistributionsCtx(ctx, d, o.CongestOptions())
	if err != nil {
		return nil, err
	}
	pl.mu.Lock()
	pl.maps[k] = m
	pl.mu.Unlock()
	return m, nil
}
