// Package engine is the compile/execute split over the paper's
// estimation pipeline.  Compile turns one circuit + process pair into
// an immutable, content-addressed Plan holding everything the Eq.
// 2–14 math needs but never changes between calls — the gathered
// netlist statistics (§3), the methodology classification, the
// tech-scaled constants of Eq. 12–14, and the §5 initial row count —
// and the Plan's execute methods (Estimate, EstimateStandardCell,
// EstimateFullCustom, Candidates, Profiled, Congestion) run the
// internal/core math kernels and internal/congest distribution
// machinery against it, memoizing every intermediate they produce.
//
// The split encodes the observation the early-routability literature
// makes structurally (Kar et al., PAPERS.md): area and congestion
// estimates share one netlist-statistics substrate, so a serving
// layer answering "estimate" and "congestion" for the same circuit
// should parse and gather once, not twice.  A second consumer of a
// compiled Plan — another row count, the congestion endpoint, a
// floorplanner loop re-asking — pays a map lookup, not a re-gather
// and re-convolution (benchmark-pinned to zero allocations on the
// warm path).
//
// All execute methods are safe for concurrent use of one Plan.
package engine

import (
	"fmt"
	"time"

	"maest/internal/core"
	"maest/internal/obs"
)

// Pipeline-stage metrics.  The estimate counters and histogram keep
// the names internal/core registered before the orchestration moved
// here, so dashboards survive the refactor; compile gets its own set
// so plan-cache hit ratios upstream can be corroborated against how
// often compilation actually runs.
var (
	mCompiles    = obs.DefCounter("maest_compile_total", "completed plan compilations")
	mCompileErr  = obs.DefCounter("maest_compile_errors_total", "failed plan compilations")
	mCompileSec  = obs.DefHistogram("maest_compile_seconds", "plan compilation latency", obs.DefBuckets)
	mEstimates   = obs.DefCounter("maest_estimate_total", "completed module estimates")
	mEstimateErr = obs.DefCounter("maest_estimate_errors_total", "failed module estimates")
	mEstimateSec = obs.DefHistogram("maest_estimate_seconds", "per-module estimate latency", obs.DefBuckets)
)

// estErr wraps engine failures under core.ErrEstimate with the same
// message prefix the core orchestration produced, so callers (and the
// serving layer's 422 mapping) dispatching on errors.Is keep working
// unchanged.
func estErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", core.ErrEstimate, fmt.Sprintf(format, args...))
}

// observe closes the estimate latency/outcome metrics around one
// execute call.
func observe(t0 time.Time, err error) {
	mEstimateSec.Observe(time.Since(t0).Seconds())
	if err != nil {
		mEstimateErr.Inc()
	} else {
		mEstimates.Inc()
	}
}
