package engine

// Directed Plan.Delta tests: the algebra's edge semantics that the
// randomized differential harness covers only probabilistically —
// empty scripts, the rows-only fast path, the process-swap fallback,
// methodology re-classification, and the incremental statistics on a
// hand-checked example.

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"maest/internal/core"
	"maest/internal/netlist"
	"maest/internal/tech"
)

const deltaDemoMnet = `
module demo
port in a
port in b
port out y
device g1 NAND2 a b n1
device g2 INV n1 n2
device g3 NOR2 n1 b n3
device g4 NAND2 n2 n3 y
end
`

func TestDeltaEmptyScriptReturnsReceiver(t *testing.T) {
	pl := compileMnet(t, deltaDemoMnet, tech.NMOS25())
	np, err := pl.Delta()
	if err != nil {
		t.Fatal(err)
	}
	if np != pl {
		t.Fatal("empty script built a new plan instead of returning the receiver")
	}
}

func TestDeltaResizeRowsOnly(t *testing.T) {
	pl := compileMnet(t, deltaDemoMnet, tech.NMOS25())
	np, err := pl.Delta(ResizeRows(3))
	if err != nil {
		t.Fatal(err)
	}
	if np == pl {
		t.Fatal("rows-only script returned the receiver; the default row count must differ")
	}
	if np.Hash() != pl.Hash() {
		t.Fatal("rows-only delta changed the content address; rows are an execute knob, not plan identity")
	}
	if np.Stats() != pl.Stats() {
		t.Fatal("rows-only delta rebuilt statistics it could share")
	}
	ctx := context.Background()
	got, err := np.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pl.Estimate(ctx, WithRows(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Delta(ResizeRows(3)).Estimate() diverged from Estimate(WithRows(3))")
	}
	// An explicit row count still wins over the ResizeRows default.
	got4, err := np.Estimate(ctx, WithRows(4))
	if err != nil {
		t.Fatal(err)
	}
	want4, err := pl.Estimate(ctx, WithRows(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got4, want4) {
		t.Fatal("explicit WithRows on a resized plan diverged from the parent's")
	}
	// Last ResizeRows in a script wins.
	np2, err := pl.Delta(ResizeRows(5), ResizeRows(3))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := np2.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2, want) {
		t.Fatal("last-wins ResizeRows semantics broken")
	}
}

func TestDeltaSwapProcessFallsBack(t *testing.T) {
	pl := compileMnet(t, deltaDemoMnet, tech.NMOS25())
	before := mDeltaFallback.Value()
	np, err := pl.Delta(SwapProcess(tech.CMOS30()))
	if err != nil {
		t.Fatal(err)
	}
	if got := mDeltaFallback.Value(); got != before+1 {
		t.Fatalf("fallback counter moved %d→%d; a process swap must count as a fallback", before, got)
	}
	want, err := Compile(pl.Circuit(), tech.CMOS30())
	if err != nil {
		t.Fatal(err)
	}
	if np.Hash() != want.Hash() {
		t.Fatal("process-swap delta diverged from a fresh compile under the new process")
	}
	if np.Hash() == pl.Hash() {
		t.Fatal("process swap kept the old content address")
	}
	// Structural edits and a swap in one script: the edits apply, then
	// the recompile targets the new process.
	np2, err := pl.Delta(RemoveCell("g2"), SwapProcess(tech.CMOS30()))
	if err != nil {
		t.Fatal(err)
	}
	edited, err := ApplyEdits(pl.Circuit(), RemoveCell("g2"))
	if err != nil {
		t.Fatal(err)
	}
	want2, err := Compile(edited, tech.CMOS30())
	if err != nil {
		t.Fatal(err)
	}
	if np2.Hash() != want2.Hash() {
		t.Fatal("edits+swap delta diverged from recompiling the edited circuit under the new process")
	}
}

func TestDeltaValidation(t *testing.T) {
	pl := compileMnet(t, deltaDemoMnet, tech.NMOS25())
	if _, err := pl.Delta(ResizeRows(0)); err == nil {
		t.Fatal("ResizeRows(0) accepted")
	} else if !errors.Is(err, core.ErrEstimate) {
		t.Fatalf("ResizeRows(0) error not under core.ErrEstimate: %v", err)
	}
	if _, err := pl.Delta(SwapProcess(nil)); err == nil {
		t.Fatal("SwapProcess(nil) accepted")
	}
	if _, err := pl.Delta(RemoveCell("ghost")); err == nil {
		t.Fatal("removing an unknown device accepted")
	} else if !errors.Is(err, netlist.ErrInvalidCircuit) {
		t.Fatalf("structural edit error not under netlist.ErrInvalidCircuit: %v", err)
	}
	// An unknown device type passes the netlist layer and must fail at
	// the statistics stage, like Compile would.
	if _, err := pl.Delta(AddCell("x1", "BOGUS_TYPE", "a")); err == nil {
		t.Fatal("unknown device type accepted")
	} else if !errors.Is(err, core.ErrEstimate) {
		t.Fatalf("unknown-type error not under core.ErrEstimate: %v", err)
	}
	// The parent plan survives failed scripts untouched.
	if _, err := pl.Estimate(context.Background()); err != nil {
		t.Fatalf("parent plan broken after failed deltas: %v", err)
	}
}

func TestDeltaRejectsMethodologyMixing(t *testing.T) {
	pl := compileMnet(t, deltaDemoMnet, tech.NMOS25())
	script := []Edit{AddCell("m1", "ENH", "a", "b", "y")}
	_, err := pl.Delta(script...)
	if err == nil {
		t.Fatal("adding a transistor to a cell-level module accepted")
	}
	if !errors.Is(err, core.ErrEstimate) {
		t.Fatalf("mixing error not under core.ErrEstimate: %v", err)
	}
	// The wording must match Compile's exactly, so the serving layer's
	// error mapping treats both routes alike.
	edited, aerr := ApplyEdits(pl.Circuit(), script...)
	if aerr != nil {
		t.Fatal(aerr)
	}
	_, cerr := Compile(edited, tech.NMOS25())
	if cerr == nil {
		t.Fatal("recompile accepted the mixed module")
	}
	if err.Error() != cerr.Error() {
		t.Fatalf("mixing error wording diverged:\n  delta:   %q\n  compile: %q", err.Error(), cerr.Error())
	}
}

// TestDeltaIncrementalStatsHandChecked pins the per-field arithmetic
// of deltaStats on a script whose effect on the §3 statistics is
// computed by hand: remove INV g2 (width 14, the only 14λ device),
// re-route its nets, and add a NAND2.
func TestDeltaIncrementalStatsHandChecked(t *testing.T) {
	p := tech.NMOS25()
	pl := compileMnet(t, deltaDemoMnet, p)
	s0 := pl.Stats()
	// Base: 4 devices (NAND2 18, INV 14, NOR2 18, NAND2 18); nets a, b,
	// n1, n2, n3, y with degrees 1, 2, 3, 2, 2, 1.
	if s0.N != 4 || s0.H != 4 || s0.DegenerateNets != 2 {
		t.Fatalf("base stats changed; update this test (N=%d H=%d degenerate=%d)",
			s0.N, s0.H, s0.DegenerateNets)
	}

	np, err := pl.Delta(
		RemoveCell("g2"),                       // n1 drops to degree 2, n2 to 1
		ConnectPin("g4", "n1"),                 // n1 back to degree 3
		AddCell("g5", "NAND2", "n2", "b", "y"), // n2 back to 2, b to 3, y to 2
	)
	if err != nil {
		t.Fatal(err)
	}
	s := np.Stats()
	if s.N != 4 {
		t.Fatalf("N = %d, want 4", s.N)
	}
	if _, stale := s.WidthCount[14]; stale {
		t.Fatal("width 14 left a residue in the histogram after removing the only INV")
	}
	if got := s.WidthCount[18]; got != 4 {
		t.Fatalf("width 18 count = %d, want 4", got)
	}
	g, err := netlist.Gather(np.Circuit(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, g) {
		t.Fatalf("incremental stats diverged from Gather:\n  delta:  %+v\n  gather: %+v", s, g)
	}
	if s.MaxDegree != g.MaxDegree {
		t.Fatalf("MaxDegree = %d, want %d", s.MaxDegree, g.MaxDegree)
	}
}

// TestDeltaMaxDegreeShrinks pins the one statistic Delta must fully
// recompute rather than adjust: removing the only maximum-degree net
// must lower MaxDegree.
func TestDeltaMaxDegreeShrinks(t *testing.T) {
	p := tech.NMOS25()
	pl := compileMnet(t, deltaDemoMnet, p)
	if pl.Stats().MaxDegree != 3 {
		t.Fatalf("base MaxDegree = %d, want 3 (net n1)", pl.Stats().MaxDegree)
	}
	// n1 connects g1, g2, g3; dropping g3's pin leaves degree 2.
	np, err := pl.Delta(DisconnectPin("g3", "n1"))
	if err != nil {
		t.Fatal(err)
	}
	if got := np.Stats().MaxDegree; got != 2 {
		t.Fatalf("MaxDegree = %d after shrinking the only degree-3 net, want 2", got)
	}
}

// TestDeltaReclassifiesMethodology: a transistor-level module whose
// transistors are all replaced by cells becomes cell-level, exactly
// as a recompile would classify it.
func TestDeltaReclassifiesMethodology(t *testing.T) {
	p := tech.NMOS25()
	pl := compileMnet(t, `
module mini
port in a
port out y
device m1 ENH a mid y
device m2 ENH mid a y
end
`, p)
	if pl.CellLevel() {
		t.Fatal("transistor module classified cell-level")
	}
	np, err := pl.Delta(
		AddCell("g1", "INV", "a", "y"),
		RemoveCell("m1"),
		RemoveCell("m2"),
	)
	// Adding the INV first mixes methodologies mid-script; the final
	// state is all-cells, and classification applies to the final state.
	if err != nil {
		t.Fatal(err)
	}
	if !np.CellLevel() {
		t.Fatal("all-cell module still classified transistor-level after delta")
	}
	want, err := Compile(np.Circuit(), p)
	if err != nil {
		t.Fatal(err)
	}
	if np.Hash() != want.Hash() || np.CellLevel() != want.CellLevel() {
		t.Fatal("reclassified delta diverged from recompile")
	}
}
