package engine

// The differential harness behind Plan.Delta's correctness contract:
// for every edit script, route A (the incremental Delta) must be
// bit-identical to route B (applying the script to a clone and
// compiling the result from scratch) — same content address, same §3
// statistics, same Result and congestion bytes — and the two routes
// must agree on whether the script is an error at all.  The harness
// replays ≥1000 randomized scripts over the golden circuits and the
// generated Table 1/2 suites, chaining deltas off deltas to cover the
// ECO loop's steady state.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"maest/internal/engine/distmemo"
	"maest/internal/gen"
	"maest/internal/hdl"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// diffCorpus assembles the harness's base circuits: every golden
// netlist in testdata plus the generated paper suites, covering both
// methodologies (cell-level and transistor-level) and sizes from 3 to
// 180 devices.
func diffCorpus(t testing.TB, p *tech.Process) []*netlist.Circuit {
	t.Helper()
	var out []*netlist.Circuit
	for _, g := range []struct{ file, name string }{
		{"c17.bench", "c17"},
		{"rand180.bench", "rand180"},
		{"demo.mnet", ""},
		{"ladder.mnet", ""},
	} {
		f, err := os.Open(filepath.Join("..", "..", "testdata", g.file))
		if err != nil {
			t.Fatal(err)
		}
		var c *netlist.Circuit
		if strings.HasSuffix(g.file, ".bench") {
			c, err = hdl.ParseBench(f, g.name, p)
		} else {
			c, err = hdl.ParseMnet(f)
		}
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", g.file, err)
		}
		out = append(out, c)
	}
	fc, err := gen.FullCustomSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, fc...)
	sc, err := gen.StandardCellSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, sc...)
	for _, cfg := range []gen.RandomConfig{
		{Name: "diff-rand30", Gates: 30, Inputs: 6, Outputs: 5, Seed: 7},
		{Name: "diff-rand12", Gates: 12, Inputs: 4, Outputs: 3, Seed: 3},
	} {
		c, err := gen.RandomCircuit(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
	return out
}

// scriptGen produces deterministic random edit scripts against a
// circuit.  Candidates are test-applied to a scratch clone so most
// scripts stay inside the algebra's happy path; deliberately invalid
// tails keep the error-parity half of the contract exercised.
type scriptGen struct {
	rng   *rand.Rand
	fresh int
	types []string
}

func newScriptGen(seed int64, base *netlist.Circuit) *scriptGen {
	g := &scriptGen{rng: rand.New(rand.NewSource(seed))}
	seen := map[string]bool{}
	for _, d := range base.Devices {
		if !seen[d.Type] {
			seen[d.Type] = true
			g.types = append(g.types, d.Type)
		}
	}
	return g
}

func (g *scriptGen) freshName(prefix string, c *netlist.Circuit) string {
	for {
		g.fresh++
		name := fmt.Sprintf("%s%d", prefix, g.fresh)
		if c.DeviceByName(name) == nil && c.NetByName(name) == nil {
			return name
		}
	}
}

// script builds one edit script against the circuit's current state.
// Structural candidates that fail on the scratch clone are dropped
// (the filter keeps scripts mostly valid); the occasional tail adds a
// known-invalid edit or a process swap.
func (g *scriptGen) script(base *netlist.Circuit) []Edit {
	scratch := base.Clone()
	want := 1 + g.rng.Intn(6)
	var script []Edit
	for attempts := 0; len(script) < want && attempts < 40; attempts++ {
		e := g.candidate(scratch)
		if ce, ok := e.(circuitEdit); ok {
			if err := ce.apply(scratch, &effects{}); err != nil {
				continue
			}
		}
		script = append(script, e)
	}
	switch g.rng.Intn(12) {
	case 0:
		script = append(script, g.invalid(scratch))
	case 1:
		script = append(script, SwapProcess(tech.CMOS30()))
	}
	return script
}

func (g *scriptGen) candidate(c *netlist.Circuit) Edit {
	r := g.rng
	switch n := r.Intn(100); {
	case n < 25:
		d := c.Devices[r.Intn(len(c.Devices))]
		if len(c.Nets) > 0 && r.Intn(10) < 6 {
			return ConnectPin(d.Name, c.Nets[r.Intn(len(c.Nets))].Name)
		}
		return ConnectPin(d.Name, g.freshName("eco_n", c))
	case n < 45:
		d := c.Devices[r.Intn(len(c.Devices))]
		var pins []string
		for _, p := range d.Pins {
			if p != nil {
				pins = append(pins, p.Name)
			}
		}
		if len(pins) == 0 {
			return ConnectPin(d.Name, g.freshName("eco_n", c))
		}
		return DisconnectPin(d.Name, pins[r.Intn(len(pins))])
	case n < 60:
		k := 1 + r.Intn(3)
		nets := make([]string, 0, k)
		for i := 0; i < k; i++ {
			switch v := r.Intn(10); {
			case v < 7 && len(c.Nets) > 0:
				nets = append(nets, c.Nets[r.Intn(len(c.Nets))].Name)
			case v < 9:
				nets = append(nets, g.freshName("eco_n", c))
			default:
				nets = append(nets, "") // unconnected pin
			}
		}
		return AddCell(g.freshName("eco_d", c), g.types[r.Intn(len(g.types))], nets...)
	case n < 70:
		return RemoveCell(c.Devices[r.Intn(len(c.Devices))].Name)
	case n < 80:
		k := 1 + r.Intn(3)
		devs := make([]string, 0, k)
		for i := 0; i < k; i++ {
			devs = append(devs, c.Devices[r.Intn(len(c.Devices))].Name)
		}
		return AddNet(g.freshName("eco_n", c), devs...)
	case n < 90:
		if len(c.Nets) == 0 {
			return ResizeRows(1 + r.Intn(5))
		}
		return RemoveNet(c.Nets[r.Intn(len(c.Nets))].Name)
	default:
		return ResizeRows(1 + r.Intn(5))
	}
}

// invalid returns an edit that must fail — at the netlist layer, the
// validation layer, or (for the unknown device type) only once the
// statistics stage consults the process database.
func (g *scriptGen) invalid(c *netlist.Circuit) Edit {
	switch g.rng.Intn(5) {
	case 0:
		return RemoveCell("eco_ghost")
	case 1:
		return ConnectPin("eco_ghost", "x")
	case 2:
		return AddCell(g.freshName("eco_d", c), "BOGUS_TYPE", "")
	case 3:
		return ResizeRows(0)
	default:
		for _, n := range c.Nets {
			if n.External() {
				return RemoveNet(n.Name)
			}
		}
		return RemoveNet("eco_ghost")
	}
}

func scriptString(script []Edit) string {
	parts := make([]string, len(script))
	for i, e := range script {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// scriptRows returns the script's effective ResizeRows value (last
// one wins), 0 when absent.
func scriptRows(script []Edit) int {
	rows := 0
	for _, e := range script {
		if r, ok := e.(resizeRowsEdit); ok {
			rows = r.rows
		}
	}
	return rows
}

// scriptProc returns the process route B must compile against: the
// last SwapProcess target, or the fallback.
func scriptProc(script []Edit, fallback *tech.Process) *tech.Process {
	for _, e := range script {
		if s, ok := e.(swapProcessEdit); ok {
			fallback = s.proc
		}
	}
	return fallback
}

func scriptSwapsProcess(script []Edit) bool {
	for _, e := range script {
		if _, ok := e.(swapProcessEdit); ok {
			return true
		}
	}
	return false
}

type diffTally struct {
	scripts, ok, failed, congested int
}

func (a *diffTally) add(b *diffTally) {
	a.scripts += b.scripts
	a.ok += b.ok
	a.failed += b.failed
	a.congested += b.congested
}

// checkDelta replays one script down both routes and enforces the
// bit-identity contract.  withCongest extends the comparison to the
// congestion map (bounded to a subset of scripts — the convolutions
// dominate harness runtime); purge empties the process-wide memo
// before route B so its numbers come from internal/prob directly
// rather than from entries route A just stored.  Returns the delta
// child for chaining, nil when the script (correctly) failed.
func checkDelta(t *testing.T, pl *Plan, script []Edit, tally *diffTally, withCongest, purge bool) *Plan {
	t.Helper()
	ctx := context.Background()
	tally.scripts++

	a, errA := pl.Delta(script...)
	edited, errB := ApplyEdits(pl.Circuit(), script...)
	var b *Plan
	if errB == nil {
		if purge {
			distmemo.Purge()
		}
		b, errB = Compile(edited, scriptProc(script, pl.Process()))
	}
	if (errA == nil) != (errB == nil) {
		t.Fatalf("error parity broken for script [%s]:\n  Delta:     %v\n  recompile: %v",
			scriptString(script), errA, errB)
	}
	if errA != nil {
		tally.failed++
		return nil
	}
	tally.ok++

	if a.Hash() != b.Hash() {
		t.Fatalf("content address diverged for [%s]:\n  delta:     %s\n  recompile: %s",
			scriptString(script), a.Hash(), b.Hash())
	}
	if !reflect.DeepEqual(a.Stats(), b.Stats()) {
		t.Fatalf("stats diverged for [%s]:\n  delta:     %+v\n  recompile: %+v",
			scriptString(script), a.Stats(), b.Stats())
	}
	if g, err := netlist.Gather(a.Circuit(), a.Process()); err != nil {
		t.Fatalf("Gather over delta circuit: %v", err)
	} else if !reflect.DeepEqual(a.Stats(), g) {
		t.Fatalf("incremental stats diverged from Gather for [%s]:\n  delta:  %+v\n  gather: %+v",
			scriptString(script), a.Stats(), g)
	}
	if a.Constants() != b.Constants() {
		t.Fatalf("constants diverged for [%s]:\n  delta:     %+v\n  recompile: %+v",
			scriptString(script), a.Constants(), b.Constants())
	}
	if a.CellLevel() != b.CellLevel() {
		t.Fatalf("methodology classification diverged for [%s]", scriptString(script))
	}
	if a.InitialRows() != b.InitialRows() {
		t.Fatalf("initial rows diverged for [%s]: delta %d, recompile %d",
			scriptString(script), a.InitialRows(), b.InitialRows())
	}

	// Execute both plans.  Delta(ResizeRows(n)) must behave exactly
	// like a recompile with WithRows(n) on every default-row call.
	var optB []Option
	if rows := scriptRows(script); rows > 0 {
		optB = append(optB, WithRows(rows))
	}
	resA, errRA := a.Estimate(ctx)
	resB, errRB := b.Estimate(ctx, optB...)
	if (errRA == nil) != (errRB == nil) {
		t.Fatalf("Estimate error parity broken for [%s]:\n  delta:     %v\n  recompile: %v",
			scriptString(script), errRA, errRB)
	}
	if errRA == nil && !reflect.DeepEqual(resA, resB) {
		t.Fatalf("Estimate diverged for [%s]:\n  delta:     %+v\n  recompile: %+v",
			scriptString(script), resA, resB)
	}
	if withCongest {
		tally.congested++
		mA, errCA := a.Congestion(ctx)
		mB, errCB := b.Congestion(ctx, optB...)
		if (errCA == nil) != (errCB == nil) {
			t.Fatalf("Congestion error parity broken for [%s]:\n  delta:     %v\n  recompile: %v",
				scriptString(script), errCA, errCB)
		}
		if errCA == nil && !reflect.DeepEqual(mA, mB) {
			t.Fatalf("Congestion diverged for [%s]", scriptString(script))
		}
	}
	return a
}

// TestDeltaDifferential is the CI-enforced differential harness: at
// least 1000 randomized edit scripts across the corpus, each replayed
// down both routes, with chained deltas (a Delta child becomes the
// next script's parent) mixed in.
func TestDeltaDifferential(t *testing.T) {
	p := tech.NMOS25()
	corpus := diffCorpus(t, p)
	total := &diffTally{}
	for i, base := range corpus {
		base, i := base, i
		t.Run(base.Name, func(t *testing.T) {
			pl, err := Compile(base, p)
			if err != nil {
				t.Fatal(err)
			}
			quota := 90
			if len(base.Devices) > 60 {
				quota = 30 // the congestion convolutions at this size dominate runtime
			}
			g := newScriptGen(int64(1988+i), base)
			tally := &diffTally{}
			cur := pl
			for s := 0; s < quota; s++ {
				script := g.script(cur.Circuit())
				child := checkDelta(t, cur, script, tally, s%4 == 0, s%8 == 3)
				// Chain off the delta child half the time, so scripts
				// also run against plans that were themselves built
				// incrementally (skipping process swaps keeps the type
				// vocabulary valid).
				if child != nil && child != cur && !scriptSwapsProcess(script) && g.rng.Intn(2) == 0 {
					cur = child
				}
			}
			if tally.ok == 0 {
				t.Errorf("no script against %s survived to the bit-identity checks", base.Name)
			}
			total.add(tally)
		})
	}
	if t.Failed() {
		return
	}
	t.Logf("differential harness: %d scripts (%d bit-identity, %d error-parity, %d with congestion maps)",
		total.scripts, total.ok, total.failed, total.congested)
	if total.scripts < 1000 {
		t.Fatalf("harness replayed %d scripts; the CI contract is at least 1000", total.scripts)
	}
	if total.ok < total.scripts/2 {
		t.Fatalf("only %d of %d scripts reached the bit-identity checks; the generator drifted toward errors",
			total.ok, total.scripts)
	}
	if total.failed == 0 {
		t.Fatal("no script exercised the error-parity half of the contract")
	}
}
