// Package geom provides the integer lambda-grid geometry used throughout
// maest: points, rectangles, horizontal intervals and area arithmetic.
//
// All coordinates are expressed in lambda (λ), the scalable design-rule
// unit of the Mead–Conway methodology the paper evaluates against
// (nMOS, λ = 2.5 µm).  Areas are therefore in λ².  Using an integer grid
// keeps layout assembly exact and makes geometric invariants testable
// without floating-point tolerance games.
package geom

import "fmt"

// Lambda is a length on the λ grid.
type Lambda int64

// Area is a surface measured in λ².
type Area int64

// Mul returns the rectangle area w×h in λ².
func Mul(w, h Lambda) Area { return Area(w) * Area(h) }

// Point is a location on the λ grid.
type Point struct {
	X, Y Lambda
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// ManhattanDist returns the L1 distance between p and q, the metric used
// for wire-length accounting in placement.
func ManhattanDist(p, q Point) Lambda {
	return absL(p.X-q.X) + absL(p.Y-q.Y)
}

func absL(v Lambda) Lambda {
	if v < 0 {
		return -v
	}
	return v
}

// Rect is an axis-aligned rectangle.  The zero Rect is the empty
// rectangle at the origin.  Min is inclusive and Max exclusive, so
// Width = Max.X - Min.X.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any
// order.
func NewRect(x0, y0, x1, y1 Lambda) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Point{x0, y0}, Point{x1, y1}}
}

// RectWH returns the rectangle with lower-left corner at (x, y) and the
// given width and height.  Negative sizes are normalized away.
func RectWH(x, y, w, h Lambda) Rect { return NewRect(x, y, x+w, y+h) }

// Width returns the horizontal extent of r.
func (r Rect) Width() Lambda { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() Lambda { return r.Max.Y - r.Min.Y }

// Area returns the surface of r in λ².
func (r Rect) Area() Area { return Mul(r.Width(), r.Height()) }

// Empty reports whether r encloses no grid area.
func (r Rect) Empty() bool { return r.Min.X >= r.Max.X || r.Min.Y >= r.Max.Y }

// Translate returns r shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.Min.Add(d), r.Max.Add(d)}
}

// Contains reports whether p lies inside r (Min inclusive, Max
// exclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// Intersects reports whether r and s share interior area.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X < s.Max.X && s.Min.X < r.Max.X &&
		r.Min.Y < s.Max.Y && s.Min.Y < r.Max.Y
}

// Intersect returns the overlap of r and s; the result is Empty when
// they do not intersect.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Point{maxL(r.Min.X, s.Min.X), maxL(r.Min.Y, s.Min.Y)},
		Point{minL(r.Max.X, s.Max.X), minL(r.Max.Y, s.Max.Y)},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the bounding box of r and s.  An Empty operand is
// ignored so that Union can fold over a slice starting from the zero
// Rect.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Point{minL(r.Min.X, s.Min.X), minL(r.Min.Y, s.Min.Y)},
		Point{maxL(r.Max.X, s.Max.X), maxL(r.Max.Y, s.Max.Y)},
	}
}

// Center returns the midpoint of r, rounded toward Min.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %dx%d]", r.Min.X, r.Min.Y, r.Width(), r.Height())
}

// BoundingBox returns the smallest rectangle containing every point in
// pts; it returns the zero Rect for an empty slice.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{pts[0], pts[0].Add(Point{1, 1})}
	for _, p := range pts[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.X >= r.Max.X {
			r.Max.X = p.X + 1
		}
		if p.Y >= r.Max.Y {
			r.Max.Y = p.Y + 1
		}
	}
	return r
}

// HalfPerimeter returns the half-perimeter of the bounding box of pts,
// the HPWL wire-length model used by the placer.
func HalfPerimeter(pts []Point) Lambda {
	if len(pts) < 2 {
		return 0
	}
	r := BoundingBox(pts)
	// BoundingBox is exclusive at Max, so subtract the 1λ padding that
	// turned points into unit cells.
	return (r.Width() - 1) + (r.Height() - 1)
}

func minL(a, b Lambda) Lambda {
	if a < b {
		return a
	}
	return b
}

func maxL(a, b Lambda) Lambda {
	if a > b {
		return a
	}
	return b
}

// Interval is a half-open horizontal span [Lo, Hi) used by the channel
// router to model net segments competing for a track.
type Interval struct {
	Lo, Hi Lambda
}

// NewInterval returns the interval covering both endpoints in any order.
func NewInterval(a, b Lambda) Interval {
	if a > b {
		a, b = b, a
	}
	return Interval{a, b}
}

// Len returns the span length of iv.
func (iv Interval) Len() Lambda { return iv.Hi - iv.Lo }

// Empty reports whether iv covers nothing.
func (iv Interval) Empty() bool { return iv.Lo >= iv.Hi }

// Overlaps reports whether iv and jv share any span.  Touching
// endpoints do not overlap: two net segments may abut on one track.
func (iv Interval) Overlaps(jv Interval) bool {
	return iv.Lo < jv.Hi && jv.Lo < iv.Hi
}

// Union returns the smallest interval covering both operands.
func (iv Interval) Union(jv Interval) Interval {
	if iv.Empty() {
		return jv
	}
	if jv.Empty() {
		return iv
	}
	return Interval{minL(iv.Lo, jv.Lo), maxL(iv.Hi, jv.Hi)}
}

// CeilDiv returns ⌈a/b⌉ for positive b, the rounding the paper applies
// to expectation values and row counts.
func CeilDiv(a, b Lambda) Lambda {
	if b <= 0 {
		panic("geom: CeilDiv requires positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
