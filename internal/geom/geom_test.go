package geom

import (
	"testing"
	"testing/quick"
)

func TestMul(t *testing.T) {
	if got := Mul(3, 4); got != 12 {
		t.Fatalf("Mul(3,4) = %d, want 12", got)
	}
	if got := Mul(0, 100); got != 0 {
		t.Fatalf("Mul(0,100) = %d, want 0", got)
	}
}

func TestPointAddSub(t *testing.T) {
	p := Point{3, 5}
	q := Point{-1, 2}
	if got := p.Add(q); got != (Point{2, 7}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{4, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Add(q).Sub(q); got != p {
		t.Fatalf("Add then Sub not identity: %v", got)
	}
}

func TestManhattanDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want Lambda
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 7},
		{Point{-2, 1}, Point{2, -1}, 6},
	}
	for _, c := range cases {
		if got := ManhattanDist(c.p, c.q); got != c.want {
			t.Errorf("ManhattanDist(%v,%v) = %d, want %d", c.p, c.q, got, c.want)
		}
		if got := ManhattanDist(c.q, c.p); got != c.want {
			t.Errorf("ManhattanDist not symmetric for %v,%v", c.p, c.q)
		}
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(10, 20, 2, 4)
	if r.Min != (Point{2, 4}) || r.Max != (Point{10, 20}) {
		t.Fatalf("NewRect did not normalize: %v", r)
	}
	if r.Width() != 8 || r.Height() != 16 {
		t.Fatalf("size = %dx%d", r.Width(), r.Height())
	}
	if r.Area() != 128 {
		t.Fatalf("area = %d", r.Area())
	}
}

func TestRectWH(t *testing.T) {
	r := RectWH(1, 2, 3, 4)
	if r.Min != (Point{1, 2}) || r.Max != (Point{4, 6}) {
		t.Fatalf("RectWH = %v", r)
	}
}

func TestRectEmpty(t *testing.T) {
	if !(Rect{}).Empty() {
		t.Fatal("zero Rect should be empty")
	}
	if (NewRect(0, 0, 1, 1)).Empty() {
		t.Fatal("unit Rect should not be empty")
	}
	if !(Rect{Point{5, 5}, Point{5, 9}}).Empty() {
		t.Fatal("zero-width Rect should be empty")
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if !r.Contains(Point{0, 0}) {
		t.Fatal("Min corner should be contained")
	}
	if r.Contains(Point{10, 10}) {
		t.Fatal("Max corner should be excluded")
	}
	if !r.Contains(Point{9, 9}) {
		t.Fatal("interior point should be contained")
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 15, 15)
	c := NewRect(20, 20, 30, 30)

	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Fatal("a and c should not intersect")
	}
	got := a.Intersect(b)
	if got != NewRect(5, 5, 10, 10) {
		t.Fatalf("Intersect = %v", got)
	}
	if !a.Intersect(c).Empty() {
		t.Fatal("disjoint Intersect should be empty")
	}
	// Abutting rectangles share no interior.
	d := NewRect(10, 0, 20, 10)
	if a.Intersects(d) {
		t.Fatal("abutting rectangles must not intersect")
	}
}

func TestRectUnion(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(5, 5, 6, 8)
	u := a.Union(b)
	if u != NewRect(0, 0, 6, 8) {
		t.Fatalf("Union = %v", u)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Fatalf("empty Union b = %v", got)
	}
	if got := a.Union(Rect{}); got != a {
		t.Fatalf("a Union empty = %v", got)
	}
}

func TestRectTranslate(t *testing.T) {
	r := NewRect(0, 0, 4, 2).Translate(Point{10, 20})
	if r != NewRect(10, 20, 14, 22) {
		t.Fatalf("Translate = %v", r)
	}
}

func TestBoundingBox(t *testing.T) {
	if !BoundingBox(nil).Empty() {
		t.Fatal("bounding box of nothing should be empty")
	}
	pts := []Point{{3, 4}, {0, 9}, {7, 1}}
	bb := BoundingBox(pts)
	for _, p := range pts {
		if !bb.Contains(p) {
			t.Fatalf("bounding box %v does not contain %v", bb, p)
		}
	}
	if bb.Min != (Point{0, 1}) || bb.Max != (Point{8, 10}) {
		t.Fatalf("bounding box = %v", bb)
	}
}

func TestHalfPerimeter(t *testing.T) {
	if got := HalfPerimeter(nil); got != 0 {
		t.Fatalf("HPWL(nil) = %d", got)
	}
	if got := HalfPerimeter([]Point{{5, 5}}); got != 0 {
		t.Fatalf("HPWL(one point) = %d", got)
	}
	if got := HalfPerimeter([]Point{{0, 0}, {3, 4}}); got != 7 {
		t.Fatalf("HPWL = %d, want 7", got)
	}
	if got := HalfPerimeter([]Point{{0, 0}, {3, 0}, {1, 4}}); got != 7 {
		t.Fatalf("HPWL 3 pins = %d, want 7", got)
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval(9, 3)
	if iv.Lo != 3 || iv.Hi != 9 {
		t.Fatalf("NewInterval did not normalize: %v", iv)
	}
	if iv.Len() != 6 {
		t.Fatalf("Len = %d", iv.Len())
	}
	if iv.Empty() {
		t.Fatal("non-degenerate interval reported empty")
	}
	if !(Interval{5, 5}).Empty() {
		t.Fatal("degenerate interval should be empty")
	}
}

func TestIntervalOverlaps(t *testing.T) {
	a := Interval{0, 5}
	b := Interval{5, 9}
	c := Interval{4, 6}
	if a.Overlaps(b) {
		t.Fatal("touching intervals must not overlap")
	}
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Fatal("a and c should overlap")
	}
	u := a.Union(b)
	if u != (Interval{0, 9}) {
		t.Fatalf("Union = %v", u)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want Lambda }{
		{0, 3, 0},
		{1, 3, 1},
		{3, 3, 1},
		{4, 3, 2},
		{-5, 3, 0},
		{10, 5, 2},
		{11, 5, 3},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnNonPositiveDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for divisor 0")
		}
	}()
	CeilDiv(1, 0)
}

// Property: Union is commutative, associative over samples, and always
// contains both operands.
func TestRectUnionProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh int16) bool {
		a := RectWH(Lambda(ax), Lambda(ay), Lambda(aw%64+65), Lambda(ah%64+65))
		b := RectWH(Lambda(bx), Lambda(by), Lambda(bw%64+65), Lambda(bh%64+65))
		u := a.Union(b)
		if u != b.Union(a) {
			return false
		}
		return u.Intersect(a) == a && u.Intersect(b) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersect result is contained in both operands and
// Intersects agrees with non-emptiness of Intersect.
func TestRectIntersectProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh int16) bool {
		a := RectWH(Lambda(ax), Lambda(ay), Lambda(aw%64)+1, Lambda(ah%64)+1)
		b := RectWH(Lambda(bx), Lambda(by), Lambda(bw%64)+1, Lambda(bh%64)+1)
		in := a.Intersect(b)
		if a.Intersects(b) != !in.Empty() {
			return false
		}
		if in.Empty() {
			return true
		}
		return in.Intersect(a) == in && in.Intersect(b) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Manhattan distance satisfies the triangle inequality.
func TestManhattanTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{Lambda(ax), Lambda(ay)}
		b := Point{Lambda(bx), Lambda(by)}
		c := Point{Lambda(cx), Lambda(cy)}
		return ManhattanDist(a, c) <= ManhattanDist(a, b)+ManhattanDist(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CeilDiv(a,b)*b >= a and (CeilDiv(a,b)-1)*b < a for a > 0.
func TestCeilDivProperty(t *testing.T) {
	f := func(a uint16, b uint8) bool {
		bb := Lambda(b%100) + 1
		aa := Lambda(a)
		q := CeilDiv(aa, bb)
		if q*bb < aa {
			return false
		}
		if aa > 0 && (q-1)*bb >= aa {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
