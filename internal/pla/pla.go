// Package pla models programmable logic arrays, the third layout
// style the paper's introduction cites: Gerveshi [ref. 1] "verified
// that for PLA's, the module area has a simple linear relationship to
// the number of basic logic functions and the number of devices".
// The package generates PLA personality matrices, lowers them to
// transistor-level netlists (nMOS NOR-NOR planes), and computes the
// gridded plane area — so the linear-area observation can be checked
// both against the grid model and against the estimator/layout flow.
package pla

import (
	"errors"
	"fmt"
	"math/rand"

	"maest/internal/netlist"
	"maest/internal/tech"
)

// ErrPLA wraps PLA construction failures.
var ErrPLA = errors.New("pla: invalid personality")

// Literal is one AND-plane programming entry.
type Literal byte

// AND-plane entries.
const (
	// DontCare leaves the input unused in the term.
	DontCare Literal = iota
	// True programs the uncomplemented input.
	True
	// Complement programs the inverted input.
	Complement
)

// Personality is a PLA programming matrix: Terms product terms over
// Inputs inputs, feeding Outputs OR-plane columns.
type Personality struct {
	Inputs, Outputs int
	// And[t][i] programs input i in term t.
	And [][]Literal
	// Or[t][o] reports whether term t feeds output o.
	Or [][]bool
}

// Terms returns the product-term count.
func (q *Personality) Terms() int { return len(q.And) }

// Validate checks the matrix invariants: consistent dimensions, every
// term uses at least one literal and feeds at least one output, every
// output is fed by at least one term.
func (q *Personality) Validate() error {
	if q.Inputs < 1 || q.Outputs < 1 {
		return fmt.Errorf("%w: needs ≥1 input and output, got %d/%d", ErrPLA, q.Inputs, q.Outputs)
	}
	if len(q.And) == 0 || len(q.And) != len(q.Or) {
		return fmt.Errorf("%w: plane row counts %d/%d", ErrPLA, len(q.And), len(q.Or))
	}
	outFed := make([]bool, q.Outputs)
	for t := range q.And {
		if len(q.And[t]) != q.Inputs {
			return fmt.Errorf("%w: term %d has %d AND entries, want %d", ErrPLA, t, len(q.And[t]), q.Inputs)
		}
		if len(q.Or[t]) != q.Outputs {
			return fmt.Errorf("%w: term %d has %d OR entries, want %d", ErrPLA, t, len(q.Or[t]), q.Outputs)
		}
		lits, outs := 0, 0
		for _, l := range q.And[t] {
			if l > Complement {
				return fmt.Errorf("%w: term %d has invalid literal %d", ErrPLA, t, l)
			}
			if l != DontCare {
				lits++
			}
		}
		for o, used := range q.Or[t] {
			if used {
				outs++
				outFed[o] = true
			}
		}
		if lits == 0 {
			return fmt.Errorf("%w: term %d uses no literals", ErrPLA, t)
		}
		if outs == 0 {
			return fmt.Errorf("%w: term %d feeds no output", ErrPLA, t)
		}
	}
	for o, fed := range outFed {
		if !fed {
			return fmt.Errorf("%w: output %d is never fed", ErrPLA, o)
		}
	}
	return nil
}

// Devices returns the transistor count of the personality under the
// nMOS NOR-NOR implementation: one pull-down per programmed literal
// and per OR-plane cross, one input inverter pair per input, one
// depletion load per term and per output, and one output inverter
// pair per output (the OR plane's NOR needs re-inversion).
func (q *Personality) Devices() int {
	n := 0
	for t := range q.And {
		for _, l := range q.And[t] {
			if l != DontCare {
				n++
			}
		}
		for _, used := range q.Or[t] {
			if used {
				n++
			}
		}
	}
	n += 2 * q.Inputs  // input buffers/inverters
	n += q.Terms()     // term loads
	n += q.Outputs     // OR column loads
	n += 2 * q.Outputs // output inverters
	return n
}

// Functions returns Gerveshi's "number of basic logic functions":
// the implemented input and output columns.
func (q *Personality) Functions() int { return q.Inputs + q.Outputs }

// GridArea returns the gridded plane area in λ² for the process: one
// column pitch per true/complement input line and per output line,
// one row pitch per term, plus driver bands on both axes.
func (q *Personality) GridArea(p *tech.Process) float64 {
	pitch := float64(p.TrackPitch)
	width := float64(2*q.Inputs+q.Outputs)*pitch + 2*float64(p.RowHeight)
	height := float64(q.Terms())*pitch + 2*float64(p.RowHeight)
	return width * height
}

// Random generates a seeded random personality: each term programs
// each input with probability density (split between true and
// complement) and feeds each output with probability density,
// patched afterwards so Validate holds.
func Random(inputs, outputs, terms int, density float64, seed int64) (*Personality, error) {
	if inputs < 1 || outputs < 1 || terms < 1 {
		return nil, fmt.Errorf("%w: dimensions %d/%d/%d", ErrPLA, inputs, outputs, terms)
	}
	if density <= 0 || density > 1 {
		return nil, fmt.Errorf("%w: density %g outside (0,1]", ErrPLA, density)
	}
	rng := rand.New(rand.NewSource(seed))
	q := &Personality{Inputs: inputs, Outputs: outputs}
	for t := 0; t < terms; t++ {
		and := make([]Literal, inputs)
		lits := 0
		for i := range and {
			if rng.Float64() < density {
				if rng.Intn(2) == 0 {
					and[i] = True
				} else {
					and[i] = Complement
				}
				lits++
			}
		}
		if lits == 0 {
			and[rng.Intn(inputs)] = True
		}
		or := make([]bool, outputs)
		outs := 0
		for o := range or {
			if rng.Float64() < density {
				or[o] = true
				outs++
			}
		}
		if outs == 0 {
			or[rng.Intn(outputs)] = true
		}
		q.And = append(q.And, and)
		q.Or = append(q.Or, or)
	}
	// Ensure every output is fed.
	fed := make([]bool, outputs)
	for t := range q.Or {
		for o, used := range q.Or[t] {
			if used {
				fed[o] = true
			}
		}
	}
	for o, ok := range fed {
		if !ok {
			q.Or[rng.Intn(terms)][o] = true
		}
	}
	return q, q.Validate()
}

// Circuit lowers the personality to a transistor-level nMOS netlist:
// NOR-NOR planes with depletion loads, input and output inverters.
// The process must offer the nMOS transistor family.
func (q *Personality) Circuit(name string, p *tech.Process) (*netlist.Circuit, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	for _, dev := range []string{"ENH", "DEP"} {
		d, err := p.Device(dev)
		if err != nil || d.Class != tech.ClassTransistor {
			return nil, fmt.Errorf("%w: process %q lacks nMOS transistor %q", ErrPLA, p.Name, dev)
		}
	}
	b := netlist.NewBuilder(name)
	seq := 0
	tx := func(typ, gate, source, drain string) {
		seq++
		b.AddDevice(fmt.Sprintf("m%d", seq), typ, gate, source, drain)
	}
	// Input columns: in_i buffered to itself (distribution) and
	// inverted to inb_i.
	for i := 0; i < q.Inputs; i++ {
		in := fmt.Sprintf("in%d", i)
		inb := fmt.Sprintf("inb%d", i)
		b.AddPort("p"+in, netlist.In, in)
		tx("ENH", in, "", inb)
		tx("DEP", inb, inb, "")
	}
	// AND plane: term t is a NOR of its programmed literals.
	for t := range q.And {
		term := fmt.Sprintf("t%d", t)
		for i, l := range q.And[t] {
			switch l {
			case True:
				// NOR plane computes the complement, so a True
				// literal pulls down on the complemented column.
				tx("ENH", fmt.Sprintf("inb%d", i), "", term)
			case Complement:
				tx("ENH", fmt.Sprintf("in%d", i), "", term)
			}
		}
		tx("DEP", term, term, "")
	}
	// OR plane: output column o is a NOR of its terms, re-inverted.
	for o := 0; o < q.Outputs; o++ {
		col := fmt.Sprintf("c%d", o)
		out := fmt.Sprintf("out%d", o)
		for t := range q.Or {
			if q.Or[t][o] {
				tx("ENH", fmt.Sprintf("t%d", t), "", col)
			}
		}
		tx("DEP", col, col, "")
		tx("ENH", col, "", out)
		tx("DEP", out, out, "")
		b.AddPort("p"+out, netlist.Out, out)
	}
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPLA, err)
	}
	return c, nil
}
