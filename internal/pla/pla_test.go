package pla

import (
	"math/rand"
	"testing"

	"maest/internal/baseline"
	"maest/internal/core"
	"maest/internal/netlist"
	"maest/internal/tech"
)

func small(t testing.TB) *Personality {
	t.Helper()
	q, err := Random(4, 3, 8, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestRandomValidates(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		q, err := Random(3+int(seed%6), 1+int(seed%4), 2+int(seed%12), 0.4, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomRejectsBadDims(t *testing.T) {
	cases := []struct {
		i, o, t int
		d       float64
	}{
		{0, 1, 1, 0.5}, {1, 0, 1, 0.5}, {1, 1, 0, 0.5}, {2, 2, 2, 0}, {2, 2, 2, 1.5},
	}
	for _, c := range cases {
		if _, err := Random(c.i, c.o, c.t, c.d, 1); err == nil {
			t.Errorf("Random(%+v) accepted", c)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func(mutate func(*Personality)) *Personality {
		q := small(t)
		mutate(q)
		return q
	}
	cases := []struct {
		name string
		q    *Personality
	}{
		{"no terms", mk(func(q *Personality) { q.And, q.Or = nil, nil })},
		{"row mismatch", mk(func(q *Personality) { q.Or = q.Or[:len(q.Or)-1] })},
		{"short and row", mk(func(q *Personality) { q.And[0] = q.And[0][:1] })},
		{"short or row", mk(func(q *Personality) { q.Or[0] = q.Or[0][:1] })},
		{"bad literal", mk(func(q *Personality) { q.And[0][0] = 9 })},
		{"empty term", mk(func(q *Personality) {
			for i := range q.And[0] {
				q.And[0][i] = DontCare
			}
		})},
		{"unfed term", mk(func(q *Personality) {
			for o := range q.Or[0] {
				q.Or[0][o] = false
			}
		})},
		{"dead output", mk(func(q *Personality) {
			for tI := range q.Or {
				q.Or[tI][0] = false
			}
		})},
	}
	for _, c := range cases {
		if err := c.q.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

func TestDevicesCountsMatchCircuit(t *testing.T) {
	p := tech.NMOS25()
	for seed := int64(1); seed <= 6; seed++ {
		q, err := Random(5, 3, 10, 0.45, seed)
		if err != nil {
			t.Fatal(err)
		}
		c, err := q.Circuit("pla", p)
		if err != nil {
			t.Fatal(err)
		}
		if c.NumDevices() != q.Devices() {
			t.Fatalf("seed %d: circuit has %d devices, model says %d",
				seed, c.NumDevices(), q.Devices())
		}
		if c.NumPorts() != q.Inputs+q.Outputs {
			t.Fatalf("ports = %d", c.NumPorts())
		}
	}
}

func TestCircuitNetDegrees(t *testing.T) {
	// A term net touches its literal pull-downs, its load, and its
	// OR-plane consumers — moderate-degree nets the estimator's
	// probability machinery exists for.
	p := tech.NMOS25()
	q := small(t)
	c, err := q.Circuit("pla", p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := netlist.Gather(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxDegree < 3 {
		t.Fatalf("max degree = %d, expected plane nets of degree ≥ 3", s.MaxDegree)
	}
	if s.H == 0 {
		t.Fatal("no routable nets")
	}
}

func TestCircuitRequiresNMOS(t *testing.T) {
	q := small(t)
	if _, err := q.Circuit("pla", tech.CMOS30()); err == nil {
		t.Fatal("CMOS process accepted by nMOS PLA generator")
	}
}

func TestGridAreaLinearInFunctionsAndDevices(t *testing.T) {
	// The Gerveshi claim on the full personality model: fit grid area
	// linearly in (functions, devices) over random PLAs.
	p := tech.NMOS25()
	rng := rand.New(rand.NewSource(9))
	var xs [][]float64
	var ys []float64
	for k := 0; k < 150; k++ {
		q, err := Random(2+rng.Intn(10), 1+rng.Intn(6), 4+rng.Intn(30), 0.3+rng.Float64()*0.4, int64(k))
		if err != nil {
			t.Fatal(err)
		}
		xs = append(xs, []float64{float64(q.Functions()), float64(q.Devices())})
		ys = append(ys, q.GridArea(p))
	}
	_, r2, err := baseline.FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.8 {
		t.Fatalf("grid area not linear enough: R² = %g", r2)
	}
}

func TestEstimatorRunsOnPLACircuits(t *testing.T) {
	// The full-custom estimator must handle PLA transistor netlists;
	// its estimate scales with the personality size.
	p := tech.NMOS25()
	smallQ, err := Random(3, 2, 5, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	bigQ, err := Random(8, 5, 24, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := smallQ.Circuit("s", p)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := bigQ.Circuit("b", p)
	if err != nil {
		t.Fatal(err)
	}
	es, err := core.EstimateFullCustom(cs, p, core.FCExactAreas)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := core.EstimateFullCustom(cb, p, core.FCExactAreas)
	if err != nil {
		t.Fatal(err)
	}
	if eb.Area <= es.Area {
		t.Fatalf("estimate did not scale: %g <= %g", eb.Area, es.Area)
	}
}
