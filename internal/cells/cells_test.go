package cells

import (
	"strings"
	"testing"

	"maest/internal/netlist"
	"maest/internal/tech"
)

func TestParseFunc(t *testing.T) {
	cases := map[string]Func{
		"NAND": FuncNand, "nand": FuncNand, "NOR": FuncNor,
		"AND": FuncAnd, "OR": FuncOr, "NOT": FuncNot, "INV": FuncNot,
		"BUF": FuncBuf, "BUFF": FuncBuf, "XOR": FuncXor, "XNOR": FuncXnor,
		"DFF": FuncDFF, "LATCH": FuncLatch, "DLATCH": FuncLatch,
	}
	for s, want := range cases {
		got, err := ParseFunc(s)
		if err != nil || got != want {
			t.Errorf("ParseFunc(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseFunc("MAJ"); err == nil {
		t.Fatal("expected error for unknown function")
	}
}

func TestFuncString(t *testing.T) {
	if FuncNand.String() != "NAND" || FuncXnor.String() != "XNOR" {
		t.Fatal("Func.String mismatch")
	}
	if !strings.HasPrefix(Func(99).String(), "Func(") {
		t.Fatal("unknown Func String mismatch")
	}
}

func TestCellFunc(t *testing.T) {
	cases := []struct {
		typ   string
		f     Func
		fanin int
	}{
		{"INV", FuncNot, 1},
		{"BUF", FuncBuf, 1},
		{"NAND2", FuncNand, 2},
		{"NAND4", FuncNand, 4},
		{"NOR3", FuncNor, 3},
		{"XOR2", FuncXor, 2},
		{"AOI22", FuncNand, 4},
		{"DFF", FuncDFF, 1},
		{"DLATCH", FuncLatch, 1},
	}
	for _, c := range cases {
		f, k, err := CellFunc(c.typ)
		if err != nil || f != c.f || k != c.fanin {
			t.Errorf("CellFunc(%q) = %v,%d,%v; want %v,%d", c.typ, f, k, err, c.f, c.fanin)
		}
	}
	for _, bad := range []string{"NAND", "NANDX", "NAND1", "WOMBAT"} {
		if _, _, err := CellFunc(bad); err == nil {
			t.Errorf("CellFunc(%q) should fail", bad)
		}
	}
}

// mapOne maps a single gate into a fresh builder and returns the
// circuit (with a sink inverter so the output net isn't dangling and a
// driver is present for each input).
func mapOne(t *testing.T, p *tech.Process, f Func, fanin int) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder("t")
	m := NewMapper(p, b)
	ins := make([]string, fanin)
	for i := range ins {
		ins[i] = string(rune('a' + i))
		b.AddPort("p"+ins[i], netlist.In, ins[i])
	}
	if err := m.Gate("g", f, ins, "y"); err != nil {
		t.Fatalf("Gate(%v/%d): %v", f, fanin, err)
	}
	b.AddPort("py", netlist.Out, "y")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build(%v/%d): %v", f, fanin, err)
	}
	return c
}

func TestMapperNativeGates(t *testing.T) {
	p := tech.NMOS25()
	cases := []struct {
		f       Func
		fanin   int
		devices int
	}{
		{FuncNot, 1, 1},
		{FuncBuf, 1, 1},
		{FuncNand, 2, 1},
		{FuncNand, 3, 1},
		{FuncNand, 4, 1},
		{FuncNor, 2, 1},
		{FuncNor, 3, 1},
		{FuncXor, 2, 1},
		{FuncDFF, 1, 1},
		{FuncLatch, 1, 1},
		{FuncAnd, 2, 2},  // NAND2 + INV
		{FuncOr, 3, 2},   // NOR3 + INV
		{FuncXnor, 2, 2}, // XOR2 + INV
		{FuncNand, 1, 1}, // degenerate -> INV
		{FuncAnd, 1, 1},  // degenerate -> BUF
	}
	for _, c := range cases {
		circ := mapOne(t, p, c.f, c.fanin)
		if got := circ.NumDevices(); got != c.devices {
			t.Errorf("%v/%d: %d devices, want %d", c.f, c.fanin, got, c.devices)
		}
	}
}

func TestMapperWideGateDecomposition(t *testing.T) {
	p := tech.NMOS25()
	// NAND8 must decompose into a tree of native cells; output must
	// still be the user net and the circuit must validate.
	c := mapOne(t, p, FuncNand, 8)
	if c.NumDevices() < 3 {
		t.Fatalf("NAND8 mapped to only %d devices", c.NumDevices())
	}
	y := c.NetByName("y")
	if y == nil || y.Degree() < 1 {
		t.Fatal("output net missing after decomposition")
	}
	// All 8 inputs must be used.
	for i := 0; i < 8; i++ {
		in := c.NetByName(string(rune('a' + i)))
		if in == nil || in.Degree() == 0 {
			t.Fatalf("input %c unused", 'a'+i)
		}
	}
	// Wide XOR chains.
	cx := mapOne(t, p, FuncXor, 5)
	if cx.NumDevices() != 4 {
		t.Fatalf("XOR5 chain: %d devices, want 4", cx.NumDevices())
	}
}

func TestMapperErrors(t *testing.T) {
	p := tech.NMOS25()
	b := netlist.NewBuilder("t")
	m := NewMapper(p, b)
	if err := m.Gate("g", FuncNot, []string{"a", "b"}, "y"); err == nil {
		t.Error("NOT with 2 inputs should fail")
	}
	if err := m.Gate("g", FuncNot, []string{"a"}, ""); err == nil {
		t.Error("gate with empty output should fail")
	}
	if err := m.Gate("g", FuncNand, []string{"a", ""}, "y"); err == nil {
		t.Error("gate with empty input should fail")
	}
	if err := m.Gate("g", FuncXor, []string{"a"}, "y"); err == nil {
		t.Error("XOR with 1 input should fail")
	}
	if err := m.Gate("g", FuncDFF, []string{"a", "b", "c"}, "y"); err == nil {
		t.Error("DFF with 3 inputs should fail")
	}

	// A process without XOR2 cannot map XOR.
	crippled := p.Clone()
	delete(crippled.Devices, "XOR2")
	m2 := NewMapper(crippled, netlist.NewBuilder("t2"))
	if err := m2.Gate("g", FuncXor, []string{"a", "b"}, "y"); err == nil {
		t.Error("XOR without XOR2 cell should fail")
	}
	// A process without any NAND cells cannot map AND.
	noNand := p.Clone()
	for k := 2; k <= 4; k++ {
		delete(noNand.Devices, "NAND"+string(rune('0'+k)))
	}
	m3 := NewMapper(noNand, netlist.NewBuilder("t3"))
	if err := m3.Gate("g", FuncNand, []string{"a", "b"}, "y"); err == nil {
		t.Error("NAND without NAND cells should fail")
	}
}

func TestMapperPadsMissingFanin(t *testing.T) {
	// Library with NOR2 and NOR4 but no NOR3: a 3-input NOR should be
	// padded onto NOR4.
	p := tech.NMOS25()
	p.AddDevice(tech.Device{Name: "NOR4", Class: tech.ClassCell, Width: 30, Height: 40, Pins: 5})
	delete(p.Devices, "NOR3")
	c := mapOne(t, p, FuncNor, 3)
	if c.NumDevices() != 1 {
		t.Fatalf("padded NOR3: %d devices, want 1", c.NumDevices())
	}
	if c.Devices[0].Type != "NOR4" {
		t.Fatalf("padded onto %q, want NOR4", c.Devices[0].Type)
	}
}

func TestExpandTransistorsNMOS(t *testing.T) {
	p := tech.NMOS25()
	b := netlist.NewBuilder("c")
	b.AddDevice("g1", "NAND2", "a", "b", "n1")
	b.AddDevice("g2", "INV", "n1", "y")
	b.AddPort("a", netlist.In, "a")
	b.AddPort("b", netlist.In, "b")
	b.AddPort("y", netlist.Out, "y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	x, err := ExpandTransistors(c, p)
	if err != nil {
		t.Fatal(err)
	}
	// NAND2 -> 2 ENH + 1 DEP; INV -> 1 ENH + 1 DEP.
	if x.NumDevices() != 5 {
		t.Fatalf("expanded to %d devices, want 5", x.NumDevices())
	}
	hist := x.TypeHistogram()
	if hist["ENH"] != 3 || hist["DEP"] != 2 {
		t.Fatalf("histogram = %v", hist)
	}
	// External nets preserved with ports.
	if x.NetByName("y") == nil || !x.NetByName("y").External() {
		t.Fatal("port net lost in expansion")
	}
	// n1 connects the NAND output (ENH drain + DEP) to the INV gate.
	if d := x.NetByName("n1").Degree(); d != 3 {
		t.Fatalf("n1 degree = %d, want 3", d)
	}
}

func TestExpandTransistorsCMOS(t *testing.T) {
	p := tech.CMOS30()
	b := netlist.NewBuilder("c")
	b.AddDevice("g1", "NAND3", "a", "b", "c", "n1")
	b.AddDevice("g2", "INV", "n1", "y")
	b.AddPort("y", netlist.Out, "y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	x, err := ExpandTransistors(c, p)
	if err != nil {
		t.Fatal(err)
	}
	// NAND3 -> 3 NFET + 3 PFET; INV -> 1 + 1.
	hist := x.TypeHistogram()
	if hist["NFET"] != 4 || hist["PFET"] != 4 {
		t.Fatalf("histogram = %v", hist)
	}
}

func TestExpandAllLibraryCells(t *testing.T) {
	// Every cell in both builtin libraries must expand cleanly.
	for _, procName := range []string{"nmos25", "cmos30"} {
		p, _ := tech.Lookup(procName)
		for _, typ := range p.DeviceNames() {
			d := p.Devices[typ]
			if d.Class != tech.ClassCell {
				continue
			}
			b := netlist.NewBuilder("one")
			pins := make([]string, d.Pins)
			for i := 0; i < d.Pins-1; i++ {
				pins[i] = string(rune('a' + i))
			}
			pins[d.Pins-1] = "y"
			b.AddDevice("u1", typ, pins...)
			b.AddPort("y", netlist.Out, "y")
			for i := 0; i < d.Pins-1; i++ {
				b.AddPort("p"+pins[i], netlist.In, pins[i])
			}
			c, err := b.Build()
			if err != nil {
				t.Fatalf("%s/%s build: %v", procName, typ, err)
			}
			x, err := ExpandTransistors(c, p)
			if err != nil {
				t.Fatalf("%s/%s expand: %v", procName, typ, err)
			}
			if x.NumDevices() == 0 {
				t.Fatalf("%s/%s expanded to nothing", procName, typ)
			}
			for _, dev := range x.Devices {
				dt, err := p.Device(dev.Type)
				if err != nil {
					t.Fatalf("%s/%s: expanded device type %q unknown", procName, typ, dev.Type)
				}
				if dt.Class != tech.ClassTransistor {
					t.Fatalf("%s/%s: expansion produced non-transistor %q", procName, typ, dev.Type)
				}
			}
		}
	}
}

func TestExpandPassesTransistorsThrough(t *testing.T) {
	p := tech.NMOS25()
	b := netlist.NewBuilder("c")
	b.AddDevice("m1", "ENH", "g", "s", "d")
	b.AddDevice("m2", "DEP", "d", "d", "")
	b.AddPort("g", netlist.In, "g")
	b.AddPort("s", netlist.In, "s")
	b.AddPort("d", netlist.Out, "d")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	x, err := ExpandTransistors(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if x.NumDevices() != 2 {
		t.Fatalf("passthrough changed device count: %d", x.NumDevices())
	}
	if x.DeviceByName("m1") == nil {
		t.Fatal("transistor name not preserved")
	}
}

func TestExpandUnknownCell(t *testing.T) {
	p := tech.NMOS25()
	p.AddDevice(tech.Device{Name: "MYSTERY", Class: tech.ClassCell, Width: 10, Height: 40, Pins: 3})
	b := netlist.NewBuilder("c")
	b.AddDevice("g1", "MYSTERY", "a", "b", "y")
	b.AddPort("y", netlist.Out, "y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpandTransistors(c, p); err == nil {
		t.Fatal("expected error for cell with unknown function")
	}
}

func TestMuxMapping(t *testing.T) {
	// Native MUX2 path.
	p := tech.NMOS25()
	c := mapOne(t, p, FuncMux, 3)
	if c.NumDevices() != 1 || c.Devices[0].Type != "MUX2" {
		t.Fatalf("native mux: %d devices, type %s", c.NumDevices(), c.Devices[0].Type)
	}
	// Decomposed path (library without MUX2): INV + 3×NAND2.
	crippled := p.Clone()
	delete(crippled.Devices, "MUX2")
	b := netlist.NewBuilder("m")
	m := NewMapper(crippled, b)
	b.AddPort("ps", netlist.In, "s")
	b.AddPort("pa", netlist.In, "a")
	b.AddPort("pb", netlist.In, "b")
	if err := m.Gate("g", FuncMux, []string{"s", "a", "b"}, "y"); err != nil {
		t.Fatal(err)
	}
	b.AddPort("py", netlist.Out, "y")
	c2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumDevices() != 4 {
		t.Fatalf("decomposed mux: %d devices, want 4", c2.NumDevices())
	}
	// Wrong fanin.
	if err := m.Gate("g2", FuncMux, []string{"s", "a"}, "z"); err == nil {
		t.Fatal("2-input mux accepted")
	}
}

func TestMuxExpansion(t *testing.T) {
	for _, procName := range []string{"nmos25", "cmos30"} {
		p, _ := tech.Lookup(procName)
		b := netlist.NewBuilder("mx")
		b.AddDevice("u1", "MUX2", "s", "a", "c", "y")
		b.AddPort("ps", netlist.In, "s")
		b.AddPort("pa", netlist.In, "a")
		b.AddPort("pc", netlist.In, "c")
		b.AddPort("py", netlist.Out, "y")
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		x, err := ExpandTransistors(c, p)
		if err != nil {
			t.Fatalf("%s: %v", procName, err)
		}
		// nMOS: inverter (2) + 2 pass = 4; CMOS: inverter (2) + 2 TG (4) = 6.
		want := 4
		if procName == "cmos30" {
			want = 6
		}
		if x.NumDevices() != want {
			t.Fatalf("%s: %d transistors, want %d", procName, x.NumDevices(), want)
		}
	}
}
