package cells

import (
	"fmt"

	"maest/internal/tech"
)

// ValidateLibrary checks that a process's cell library is usable by
// the whole toolchain: every cell's type name maps to a known logic
// function, its pin count matches that function's arity, and it
// expands to transistors under the process's transistor family.
// It reports the first defect found.
func ValidateLibrary(p *tech.Process) error {
	if _, err := newExpander(p); err != nil {
		return err
	}
	for _, name := range p.DeviceNames() {
		d := p.Devices[name]
		if d.Class != tech.ClassCell {
			continue
		}
		f, fanin, err := CellFunc(name)
		if err != nil {
			return fmt.Errorf("cells: library %q: %v", p.Name, err)
		}
		wantPins := fanin + 1
		if f == FuncDFF || f == FuncLatch {
			wantPins = 3 // data, clock, output
		}
		if d.Pins != wantPins {
			return fmt.Errorf("cells: library %q: cell %q has %d pins, function %v needs %d",
				p.Name, name, d.Pins, f, wantPins)
		}
	}
	return nil
}
