package cells

import (
	"fmt"

	"maest/internal/netlist"
	"maest/internal/tech"
)

// ExpandTransistors lowers a gate-level circuit to the transistor
// level for Full-Custom estimation (§4.2): each library cell is
// replaced by its transistor network, preserving the external nets.
// Supply rails are not modeled as nets — they run inside device rows
// in both the paper's layout style and ours — so transistor
// source/drain pins tied to VDD/GND are left unconnected.
//
// Two transistor styles are recognized from the process library:
// nMOS (enhancement pull-downs "ENH" with a depletion load "DEP") and
// static CMOS (complementary "NFET"/"PFET" networks).  Devices that
// are already transistors pass through unchanged.
func ExpandTransistors(c *netlist.Circuit, p *tech.Process) (*netlist.Circuit, error) {
	e, err := newExpander(p)
	if err != nil {
		return nil, err
	}
	b := netlist.NewBuilder(c.Name + "_xtor")
	e.b = b
	for _, d := range c.Devices {
		dt, err := p.Device(d.Type)
		if err != nil {
			return nil, fmt.Errorf("cells: expand %q: %w", d.Name, err)
		}
		if dt.Class == tech.ClassTransistor {
			b.AddDevice(d.Name, d.Type, pinNames(d)...)
			continue
		}
		if err := e.expandCell(d); err != nil {
			return nil, err
		}
	}
	for _, port := range c.Ports {
		b.AddPort(port.Name, port.Dir, port.Net.Name)
	}
	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("cells: expand %q: %w", c.Name, err)
	}
	return out, nil
}

func pinNames(d *netlist.Device) []string {
	names := make([]string, len(d.Pins))
	for i, n := range d.Pins {
		if n != nil {
			names[i] = n.Name
		}
	}
	return names
}

// transistorStyle selects the expansion family.
type transistorStyle int

const (
	styleNMOS transistorStyle = iota
	styleCMOS
)

type expander struct {
	p     *tech.Process
	b     *netlist.Builder
	style transistorStyle
	seq   int
	// device type names per role
	pull, load, pullUp string
}

func newExpander(p *tech.Process) (*expander, error) {
	hasT := func(name string) bool {
		d, ok := p.Devices[name]
		return ok && d.Class == tech.ClassTransistor
	}
	switch {
	case hasT("ENH") && hasT("DEP"):
		return &expander{p: p, style: styleNMOS, pull: "ENH", load: "DEP"}, nil
	case hasT("NFET") && hasT("PFET"):
		return &expander{p: p, style: styleCMOS, pull: "NFET", pullUp: "PFET"}, nil
	default:
		return nil, fmt.Errorf("cells: process %q offers no known transistor family", p.Name)
	}
}

func (e *expander) fresh(prefix string) string {
	e.seq++
	return fmt.Sprintf("$%s%d", prefix, e.seq)
}

// tx places one transistor.  Pin order is gate, source, drain; empty
// names mean a supply connection (unmodelled).
func (e *expander) tx(base, typ, gate, source, drain string) {
	e.seq++
	e.b.AddDevice(fmt.Sprintf("%s$t%d", base, e.seq), typ, gate, source, drain)
}

// series places a chain of `typ` transistors gated by gates, from the
// (unmodelled) rail to out.
func (e *expander) series(base, typ string, gates []string, out string) {
	prev := "" // rail
	for i, g := range gates {
		next := out
		if i != len(gates)-1 {
			next = e.fresh("s")
		}
		e.tx(base, typ, g, prev, next)
		prev = next
	}
}

// parallel places one `typ` transistor per gate, each from the rail to
// out.
func (e *expander) parallel(base, typ string, gates []string, out string) {
	for _, g := range gates {
		e.tx(base, typ, g, "", out)
	}
}

// inverter emits a NOT stage from `in` to `out`.
func (e *expander) inverter(base, in, out string) {
	if e.style == styleNMOS {
		e.tx(base, e.pull, in, "", out)
		e.tx(base, e.load, out, out, "")
		return
	}
	e.tx(base, e.pull, in, "", out)
	e.tx(base, e.pullUp, in, "", out)
}

// nand emits an inverting AND stage (series pull-down).
func (e *expander) nand(base string, ins []string, out string) {
	e.series(base, e.pull, ins, out)
	if e.style == styleNMOS {
		e.tx(base, e.load, out, out, "")
		return
	}
	e.parallel(base, e.pullUp, ins, out)
}

// nor emits an inverting OR stage (parallel pull-down).
func (e *expander) nor(base string, ins []string, out string) {
	e.parallel(base, e.pull, ins, out)
	if e.style == styleNMOS {
		e.tx(base, e.load, out, out, "")
		return
	}
	e.series(base, e.pullUp, ins, out)
}

// expandCell replaces one placed standard cell with its transistor
// network.
func (e *expander) expandCell(d *netlist.Device) error {
	f, fanin, err := CellFunc(d.Type)
	if err != nil {
		return fmt.Errorf("cells: expand %q: %w", d.Name, err)
	}
	pins := pinNames(d)
	if len(pins) == 0 {
		return fmt.Errorf("cells: expand %q: cell has no pins", d.Name)
	}
	out := pins[len(pins)-1]
	ins := pins[:len(pins)-1]
	if out == "" {
		// An unloaded output still exists physically; give it a name
		// so the transistor netlist stays well formed.
		out = e.fresh("o")
	}
	named := make([]string, 0, len(ins))
	for _, in := range ins {
		if in != "" {
			named = append(named, in)
		}
	}
	switch f {
	case FuncNot:
		if len(named) < 1 {
			return fmt.Errorf("cells: expand %q: inverter with no input", d.Name)
		}
		e.inverter(d.Name, named[0], out)
	case FuncBuf:
		if len(named) < 1 {
			return fmt.Errorf("cells: expand %q: buffer with no input", d.Name)
		}
		mid := e.fresh("b")
		e.inverter(d.Name, named[0], mid)
		e.inverter(d.Name, mid, out)
	case FuncNand:
		if d.Type == "AOI22" {
			return e.expandAOI22(d.Name, named, out)
		}
		if len(named) == 0 {
			return fmt.Errorf("cells: expand %q: NAND with no inputs", d.Name)
		}
		e.nand(d.Name, named, out)
	case FuncNor:
		if len(named) == 0 {
			return fmt.Errorf("cells: expand %q: NOR with no inputs", d.Name)
		}
		e.nor(d.Name, named, out)
	case FuncAnd:
		mid := e.fresh("a")
		e.nand(d.Name, named, mid)
		e.inverter(d.Name, mid, out)
	case FuncOr:
		mid := e.fresh("r")
		e.nor(d.Name, named, mid)
		e.inverter(d.Name, mid, out)
	case FuncXor, FuncXnor:
		return e.expandXor(d.Name, named, out, f == FuncXnor)
	case FuncMux:
		return e.expandMux(d.Name, named, out)
	case FuncLatch:
		return e.expandLatch(d.Name, named, out, 1)
	case FuncDFF:
		return e.expandLatch(d.Name, named, out, 2)
	default:
		return fmt.Errorf("cells: expand %q: no transistor network for %v (fanin %d)", d.Name, f, fanin)
	}
	return nil
}

// expandAOI22 builds the and-or-invert network: two series pairs in
// parallel pulling down, with the complementary structure (or a load)
// above.
func (e *expander) expandAOI22(base string, ins []string, out string) error {
	if len(ins) < 4 {
		return fmt.Errorf("cells: expand %q: AOI22 needs 4 inputs, has %d", base, len(ins))
	}
	e.series(base, e.pull, ins[0:2], out)
	e.series(base, e.pull, ins[2:4], out)
	if e.style == styleNMOS {
		e.tx(base, e.load, out, out, "")
		return nil
	}
	// CMOS dual: (p0||p1) in series with (p2||p3).
	mid := e.fresh("p")
	e.tx(base, e.pullUp, ins[0], "", mid)
	e.tx(base, e.pullUp, ins[1], "", mid)
	e.tx(base, e.pullUp, ins[2], mid, out)
	e.tx(base, e.pullUp, ins[3], mid, out)
	return nil
}

// expandXor builds xor/xnor from input inverters plus two series
// branches: (a·b) and (a'·b') pull the XNOR node; an extra inverter
// yields XOR.
func (e *expander) expandXor(base string, ins []string, out string, xnor bool) error {
	if len(ins) < 2 {
		return fmt.Errorf("cells: expand %q: XOR needs 2 inputs, has %d", base, len(ins))
	}
	a, b := ins[0], ins[1]
	an, bn := e.fresh("x"), e.fresh("x")
	e.inverter(base, a, an)
	e.inverter(base, b, bn)
	xnorNet := out
	if !xnor {
		xnorNet = e.fresh("x")
	}
	// Pull-down: (a·b) + (a'·b') discharges the XNOR node.
	e.series(base, e.pull, []string{a, b}, xnorNet)
	e.series(base, e.pull, []string{an, bn}, xnorNet)
	if e.style == styleNMOS {
		e.tx(base, e.load, xnorNet, xnorNet, "")
	} else {
		// CMOS dual: (a'+b')·(a+b) charges the node.
		mid := e.fresh("x")
		e.tx(base, e.pullUp, an, "", mid)
		e.tx(base, e.pullUp, bn, "", mid)
		e.tx(base, e.pullUp, a, mid, xnorNet)
		e.tx(base, e.pullUp, b, mid, xnorNet)
	}
	if !xnor {
		e.inverter(base, xnorNet, out)
	}
	return nil
}

// expandMux builds the 2:1 multiplexer as pass/transmission gates
// steered by the select and its local inverse.
func (e *expander) expandMux(base string, ins []string, out string) error {
	if len(ins) < 3 {
		return fmt.Errorf("cells: expand %q: MUX needs 3 inputs, has %d", base, len(ins))
	}
	s, a, b := ins[0], ins[1], ins[2]
	sn := e.fresh("m")
	e.inverter(base, s, sn)
	if e.style == styleNMOS {
		e.tx(base, e.pull, s, a, out)
		e.tx(base, e.pull, sn, b, out)
		return nil
	}
	// CMOS transmission gates: an N and a P device per branch.
	e.tx(base, e.pull, s, a, out)
	e.tx(base, e.pullUp, sn, a, out)
	e.tx(base, e.pull, sn, b, out)
	e.tx(base, e.pullUp, s, b, out)
	return nil
}

// expandLatch builds `stages` cascaded latch stages (1 = transparent
// latch, 2 = master-slave flip-flop), each two cross-coupled
// inverters plus a pass transistor gated by the clock (if connected).
func (e *expander) expandLatch(base string, ins []string, out string, stages int) error {
	if len(ins) < 1 {
		return fmt.Errorf("cells: expand %q: latch with no data input", base)
	}
	data := ins[0]
	clk := ""
	if len(ins) >= 2 {
		clk = ins[1]
	}
	cur := data
	for s := 0; s < stages; s++ {
		stored := out
		if s != stages-1 {
			stored = e.fresh("q")
		}
		gated := e.fresh("g")
		// Pass transistor from current data into the storage node.
		if clk != "" {
			e.tx(base, e.pull, clk, cur, gated)
		} else {
			e.tx(base, e.pull, cur, cur, gated)
		}
		// Forward inverter and feedback inverter.
		e.inverter(base, gated, stored)
		e.inverter(base, stored, gated)
		cur = stored
	}
	return nil
}
