package cells

import (
	"testing"

	"maest/internal/tech"
)

func TestValidateLibraryBuiltins(t *testing.T) {
	for _, name := range tech.BuiltinNames() {
		p, err := tech.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateLibrary(p); err != nil {
			t.Errorf("builtin %q: %v", name, err)
		}
	}
}

func TestValidateLibraryCatchesDefects(t *testing.T) {
	// Unknown cell function.
	p := tech.NMOS25()
	p.AddDevice(tech.Device{Name: "MYSTERY", Class: tech.ClassCell, Width: 10, Height: 40, Pins: 3})
	if err := ValidateLibrary(p); err == nil {
		t.Error("unknown cell function accepted")
	}
	// Wrong pin count.
	p2 := tech.NMOS25()
	d := p2.Devices["NAND2"]
	d.Pins = 5
	p2.Devices["NAND2"] = d
	if err := ValidateLibrary(p2); err == nil {
		t.Error("wrong pin count accepted")
	}
	// No transistor family.
	p3 := tech.NMOS25()
	delete(p3.Devices, "ENH")
	delete(p3.Devices, "DEP")
	if err := ValidateLibrary(p3); err == nil {
		t.Error("missing transistor family accepted")
	}
}
