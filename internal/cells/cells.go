// Package cells provides the cell-library layer between logic-level
// circuit descriptions and the process database: a technology mapper
// that implements generic gate functions with the cells a process
// actually offers, and a transistor expander that lowers a gate-level
// circuit to the transistor level for Full-Custom estimation (§4.2:
// "individual transistor layouts are used as Standard-Cells instead of
// typical Standard-Cell devices").
package cells

import (
	"fmt"
	"strconv"
	"strings"
)

// Func is a generic logic function, independent of any library.
type Func int

// Generic gate functions recognized by the mapper and the .bench
// front end.
const (
	FuncBuf Func = iota
	FuncNot
	FuncAnd
	FuncOr
	FuncNand
	FuncNor
	FuncXor
	FuncXnor
	FuncLatch
	FuncDFF
	FuncMux
)

var funcNames = map[Func]string{
	FuncBuf:   "BUF",
	FuncNot:   "NOT",
	FuncAnd:   "AND",
	FuncOr:    "OR",
	FuncNand:  "NAND",
	FuncNor:   "NOR",
	FuncXor:   "XOR",
	FuncXnor:  "XNOR",
	FuncLatch: "LATCH",
	FuncDFF:   "DFF",
	FuncMux:   "MUX",
}

// String implements fmt.Stringer.
func (f Func) String() string {
	if n, ok := funcNames[f]; ok {
		return n
	}
	return fmt.Sprintf("Func(%d)", int(f))
}

// ParseFunc recognizes the gate-function spellings used by ISCAS-style
// bench files (case-insensitive; NOT and BUFF aliases included).
func ParseFunc(s string) (Func, error) {
	switch strings.ToUpper(s) {
	case "BUF", "BUFF":
		return FuncBuf, nil
	case "NOT", "INV":
		return FuncNot, nil
	case "AND":
		return FuncAnd, nil
	case "OR":
		return FuncOr, nil
	case "NAND":
		return FuncNand, nil
	case "NOR":
		return FuncNor, nil
	case "XOR":
		return FuncXor, nil
	case "XNOR":
		return FuncXnor, nil
	case "LATCH", "DLATCH":
		return FuncLatch, nil
	case "DFF":
		return FuncDFF, nil
	case "MUX", "MUX2":
		return FuncMux, nil
	default:
		return 0, fmt.Errorf("cells: unknown gate function %q", s)
	}
}

// CellFunc inverts the library naming convention: given a cell type
// name such as "NAND3" it reports the generic function and fan-in.
// It is how the transistor expander recognizes what each placed cell
// computes.
func CellFunc(typeName string) (Func, int, error) {
	name := strings.ToUpper(typeName)
	switch name {
	case "INV":
		return FuncNot, 1, nil
	case "BUF":
		return FuncBuf, 1, nil
	case "XOR2":
		return FuncXor, 2, nil
	case "XNOR2":
		return FuncXnor, 2, nil
	case "DLATCH":
		return FuncLatch, 1, nil
	case "MUX2":
		return FuncMux, 3, nil
	case "DFF":
		return FuncDFF, 1, nil
	case "AOI22":
		// Treated as a 4-input complex gate.
		return FuncNand, 4, nil
	}
	for _, base := range []struct {
		prefix string
		f      Func
	}{{"NAND", FuncNand}, {"NOR", FuncNor}, {"AND", FuncAnd}, {"OR", FuncOr}} {
		if strings.HasPrefix(name, base.prefix) {
			rest := name[len(base.prefix):]
			k, err := strconv.Atoi(rest)
			if err != nil || k < 2 {
				return 0, 0, fmt.Errorf("cells: bad fan-in suffix in cell type %q", typeName)
			}
			return base.f, k, nil
		}
	}
	return 0, 0, fmt.Errorf("cells: cell type %q has no known logic function", typeName)
}
