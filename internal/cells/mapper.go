package cells

import (
	"fmt"

	"maest/internal/netlist"
	"maest/internal/tech"
)

// Mapper implements generic gate functions using the standard cells a
// process offers, decomposing wide gates into trees and synthesizing
// missing functions out of available ones (AND = NAND+INV, and so on).
// It writes devices into a netlist.Builder; intermediate nets and
// helper devices get fresh "$"-prefixed names, which the HDL syntax
// reserves so generated names can never collide with user names.
type Mapper struct {
	proc *tech.Process
	b    *netlist.Builder
	seq  int
}

// NewMapper returns a mapper emitting into b against process p.
func NewMapper(p *tech.Process, b *netlist.Builder) *Mapper {
	return &Mapper{proc: p, b: b}
}

func (m *Mapper) freshNet() string {
	m.seq++
	return fmt.Sprintf("$n%d", m.seq)
}

func (m *Mapper) freshDev(base string) string {
	m.seq++
	return fmt.Sprintf("%s$%d", base, m.seq)
}

// has reports whether the process library offers the named cell.
func (m *Mapper) has(cell string) bool {
	_, ok := m.proc.Devices[cell]
	return ok
}

// maxNativeFanin returns the widest native cell of the given prefix
// ("NAND" or "NOR") the library offers, or 0.
func (m *Mapper) maxNativeFanin(prefix string) int {
	best := 0
	for k := 2; k <= 8; k++ {
		if m.has(fmt.Sprintf("%s%d", prefix, k)) {
			best = k
		}
	}
	return best
}

// emit places one library cell.  Pin order is inputs..., output.
func (m *Mapper) emit(name, cell string, inputs []string, output string) error {
	if !m.has(cell) {
		return fmt.Errorf("cells: process %q lacks cell %q needed to map gate %q",
			m.proc.Name, cell, name)
	}
	pins := append(append([]string{}, inputs...), output)
	m.b.AddDevice(name, cell, pins...)
	return nil
}

// Gate maps one generic gate onto the library.  The name seeds the
// instance names of the cell(s) implementing it.
func (m *Mapper) Gate(name string, f Func, inputs []string, output string) error {
	if output == "" {
		return fmt.Errorf("cells: gate %q has no output", name)
	}
	for _, in := range inputs {
		if in == "" {
			return fmt.Errorf("cells: gate %q has an empty input", name)
		}
	}
	switch f {
	case FuncBuf:
		if len(inputs) != 1 {
			return badFanin(name, f, len(inputs))
		}
		return m.emit(name, "BUF", inputs, output)
	case FuncNot:
		if len(inputs) != 1 {
			return badFanin(name, f, len(inputs))
		}
		return m.emit(name, "INV", inputs, output)
	case FuncLatch:
		if len(inputs) < 1 || len(inputs) > 2 {
			return badFanin(name, f, len(inputs))
		}
		return m.emitSeq(name, "DLATCH", inputs, output)
	case FuncDFF:
		if len(inputs) < 1 || len(inputs) > 2 {
			return badFanin(name, f, len(inputs))
		}
		return m.emitSeq(name, "DFF", inputs, output)
	case FuncXor, FuncXnor:
		return m.mapXorChain(name, f, inputs, output)
	case FuncMux:
		return m.mapMux(name, inputs, output)
	case FuncAnd, FuncNand:
		return m.mapAndOr(name, f == FuncNand, "NAND", inputs, output)
	case FuncOr, FuncNor:
		return m.mapAndOr(name, f == FuncNor, "NOR", inputs, output)
	default:
		return fmt.Errorf("cells: gate %q: unmappable function %v", name, f)
	}
}

func badFanin(name string, f Func, k int) error {
	return fmt.Errorf("cells: gate %q: function %v cannot take %d input(s)", name, f, k)
}

// emitSeq places a sequential cell; a missing clock pin is left
// unconnected (clock distribution is outside the paper's wiring
// model).
func (m *Mapper) emitSeq(name, cell string, inputs []string, output string) error {
	in := []string{inputs[0], ""}
	if len(inputs) == 2 {
		in[1] = inputs[1]
	}
	return m.emit(name, cell, in, output)
}

// mapMux implements a 2:1 multiplexer y = s ? a : b (inputs ordered
// select, a, b): natively with a MUX2 cell when the library has one,
// otherwise as INV + three NAND2s.
func (m *Mapper) mapMux(name string, inputs []string, output string) error {
	if len(inputs) != 3 {
		return badFanin(name, FuncMux, len(inputs))
	}
	if m.has("MUX2") {
		return m.emit(name, "MUX2", inputs, output)
	}
	s, a, b := inputs[0], inputs[1], inputs[2]
	sn, t1, t2 := m.freshNet(), m.freshNet(), m.freshNet()
	if err := m.emit(m.freshDev(name), "INV", []string{s}, sn); err != nil {
		return err
	}
	if err := m.emit(m.freshDev(name), "NAND2", []string{s, a}, t1); err != nil {
		return err
	}
	if err := m.emit(m.freshDev(name), "NAND2", []string{sn, b}, t2); err != nil {
		return err
	}
	return m.emit(name, "NAND2", []string{t1, t2}, output)
}

// mapXorChain reduces a multi-input (X)NOR-parity gate to a chain of
// XOR2 cells, inverting the final stage for XNOR.
func (m *Mapper) mapXorChain(name string, f Func, inputs []string, output string) error {
	if len(inputs) < 2 {
		return badFanin(name, f, len(inputs))
	}
	acc := inputs[0]
	for i := 1; i < len(inputs); i++ {
		last := i == len(inputs)-1
		out := output
		if !last || f == FuncXnor {
			out = m.freshNet()
		}
		stage := name
		if !last {
			stage = m.freshDev(name)
		}
		if f == FuncXnor && last {
			stage = m.freshDev(name)
		}
		if err := m.emit(stage, "XOR2", []string{acc, inputs[i]}, out); err != nil {
			return err
		}
		acc = out
	}
	if f == FuncXnor {
		return m.emit(name, "INV", []string{acc}, output)
	}
	return nil
}

// mapAndOr maps AND/NAND onto NAND trees and OR/NOR onto NOR trees.
// inverting reports whether the requested function is the inverting
// one (NAND/NOR); base is "NAND" or "NOR".
func (m *Mapper) mapAndOr(name string, inverting bool, base string, inputs []string, output string) error {
	if len(inputs) < 1 {
		return badFanin(name, FuncAnd, len(inputs))
	}
	if len(inputs) == 1 {
		// Degenerate single-input AND/OR is a buffer; NAND/NOR an
		// inverter.
		if inverting {
			return m.emit(name, "INV", inputs, output)
		}
		return m.emit(name, "BUF", inputs, output)
	}
	if inverting {
		return m.invTree(name, base, inputs, output)
	}
	// Non-inverting: produce the inverting tree into a fresh net, then
	// invert.
	mid := m.freshNet()
	if err := m.invTree(m.freshDev(name), base, inputs, mid); err != nil {
		return err
	}
	return m.emit(name, "INV", []string{mid}, output)
}

// invTree emits a NANDk/NORk implementing the inverting reduction of
// inputs into output.  Wide gates split into a two-level structure:
// inner groups are reduced with the inverting cell plus an inverter
// (restoring polarity), then the top cell combines group outputs.
func (m *Mapper) invTree(name, base string, inputs []string, output string) error {
	maxK := m.maxNativeFanin(base)
	if maxK == 0 {
		return fmt.Errorf("cells: process %q has no %s cells", m.proc.Name, base)
	}
	if len(inputs) <= maxK {
		cell := fmt.Sprintf("%s%d", base, len(inputs))
		if !m.has(cell) {
			// e.g. library has NOR2 and NOR4 but not NOR3: pad by
			// duplicating the last input through the next wider cell.
			for k := len(inputs) + 1; k <= maxK; k++ {
				cand := fmt.Sprintf("%s%d", base, k)
				if m.has(cand) {
					padded := append(append([]string{}, inputs...), inputs[len(inputs)-1])
					for len(padded) < k {
						padded = append(padded, inputs[len(inputs)-1])
					}
					return m.emit(name, cand, padded, output)
				}
			}
			return fmt.Errorf("cells: process %q lacks %s", m.proc.Name, cell)
		}
		return m.emit(name, cell, inputs, output)
	}
	// Too wide: split into ≤maxK groups of nearly equal size, reduce
	// each group to its non-inverted value, then combine.
	groups := (len(inputs) + maxK - 1) / maxK
	if groups > maxK {
		groups = maxK
	}
	tops := make([]string, 0, groups)
	per := (len(inputs) + groups - 1) / groups
	for i := 0; i < len(inputs); i += per {
		end := i + per
		if end > len(inputs) {
			end = len(inputs)
		}
		group := inputs[i:end]
		if len(group) == 1 {
			tops = append(tops, group[0])
			continue
		}
		inv := m.freshNet()
		pos := m.freshNet()
		if err := m.invTree(m.freshDev(name), base, group, inv); err != nil {
			return err
		}
		if err := m.emit(m.freshDev(name), "INV", []string{inv}, pos); err != nil {
			return err
		}
		tops = append(tops, pos)
	}
	return m.invTree(name, base, tops, output)
}
