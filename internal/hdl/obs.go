package hdl

import (
	"context"
	"io"
	"time"

	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/tech"
)

// Front-end metrics, shared by every input language.
var (
	mParses   = obs.DefCounter("maest_parse_total", "parsed circuit modules (all front-end languages)")
	mParseErr = obs.DefCounter("maest_parse_errors_total", "front-end parse failures")
	mParseSec = obs.DefHistogram("maest_parse_seconds", "front-end parse latency", obs.DefBuckets)
)

// ParseMnetCtx is ParseMnet under a "parse.mnet" span with the
// front-end metrics.
func ParseMnetCtx(ctx context.Context, r io.Reader) (*netlist.Circuit, error) {
	return tracedParse(ctx, "parse.mnet", func() (*netlist.Circuit, error) {
		return ParseMnet(r)
	})
}

// ParseBenchCtx is ParseBench under a "parse.bench" span with the
// front-end metrics.
func ParseBenchCtx(ctx context.Context, r io.Reader, name string, p *tech.Process) (*netlist.Circuit, error) {
	return tracedParse(ctx, "parse.bench", func() (*netlist.Circuit, error) {
		return ParseBench(r, name, p)
	})
}

// ParseVerilogCtx is ParseVerilog under a "parse.verilog" span with
// the front-end metrics.
func ParseVerilogCtx(ctx context.Context, r io.Reader, p *tech.Process) (*netlist.Circuit, error) {
	return tracedParse(ctx, "parse.verilog", func() (*netlist.Circuit, error) {
		return ParseVerilog(r, p)
	})
}

func tracedParse(ctx context.Context, span string, parse func() (*netlist.Circuit, error)) (c *netlist.Circuit, err error) {
	_, sp := obs.Start(ctx, span)
	defer func(t0 time.Time) {
		mParseSec.Observe(time.Since(t0).Seconds())
		if err != nil {
			mParseErr.Inc()
		} else {
			mParses.Inc()
			sp.SetString("module", c.Name)
			sp.SetInt("devices", int64(len(c.Devices)))
			sp.SetInt("nets", int64(len(c.Nets)))
		}
		sp.EndErr(err)
	}(time.Now())
	return parse()
}
