package hdl

import (
	"bytes"
	"strings"
	"testing"

	"maest/internal/netlist"
	"maest/internal/tech"
)

const demoVerilog = `
// full adder, structural Verilog-1985 style
module fa (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire axb, t1, t2;
  xor  x1 (axb, a, b);
  xor  x2 (sum, axb, cin);
  nand n1 (t1, a, b);
  nand n2 (t2, cin, axb);
  nand n3 (cout, t1, t2);
endmodule
`

func TestParseVerilog(t *testing.T) {
	p := tech.NMOS25()
	c, err := ParseVerilog(strings.NewReader(demoVerilog), p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "fa" {
		t.Fatalf("name = %q", c.Name)
	}
	if c.NumDevices() != 5 || c.NumPorts() != 5 {
		t.Fatalf("N=%d ports=%d", c.NumDevices(), c.NumPorts())
	}
	if c.PortByName("cout").Dir != netlist.Out || c.PortByName("a").Dir != netlist.In {
		t.Fatal("port directions wrong")
	}
	if c.NetByName("axb").Degree() != 3 {
		t.Fatalf("axb degree = %d", c.NetByName("axb").Degree())
	}
}

func TestParseVerilogFeatures(t *testing.T) {
	p := tech.NMOS25()
	in := `
module m (a, q);
  input a; output q;
  /* block
     comment */
  wire w1;
  not (w1, a);        // anonymous instance
  dff f1 (q, w1, a);  // dff with clock
endmodule
`
	c, err := ParseVerilog(strings.NewReader(in), p)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDevices() != 2 {
		t.Fatalf("N = %d", c.NumDevices())
	}
	if c.DeviceByName("f1") == nil {
		t.Fatal("named instance lost")
	}
	// Wide gates decompose through the mapper.
	in2 := `
module w (a, b, c, d, e, f, g, h, y);
  input a, b, c, d, e, f, g, h; output y;
  nand (y, a, b, c, d, e, f, g, h);
endmodule
`
	c2, err := ParseVerilog(strings.NewReader(in2), p)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumDevices() < 3 {
		t.Fatalf("NAND8 mapped to %d devices", c2.NumDevices())
	}
}

func TestParseVerilogErrors(t *testing.T) {
	p := tech.NMOS25()
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"no module kw", "wire a;"},
		{"no name", "module (a);"},
		{"no endmodule", "module m (a); input a;"},
		{"undeclared port dir", "module m (a); endmodule"},
		{"dup port decl", "module m (a); input a; output a; endmodule"},
		{"bad primitive", "module m (a); input a; foo g (x, a); endmodule"},
		{"short primitive", "module m (a); input a; not (a); endmodule"},
		{"unterminated comment", "module m (a); /* input a; endmodule"},
		{"bad char", "module m (a); input a; not #(x, a); endmodule"},
		{"missing semicolon", "module m (a) input a; endmodule"},
		{"empty ident list", "module m (a); input ; endmodule"},
	}
	for _, c := range cases {
		if _, err := ParseVerilog(strings.NewReader(c.in), p); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestVerilogRoundTrip(t *testing.T) {
	p := tech.NMOS25()
	orig, err := ParseVerilog(strings.NewReader(demoVerilog), p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseVerilog(bytes.NewReader(buf.Bytes()), p)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	if back.NumDevices() != orig.NumDevices() || back.NumNets() != orig.NumNets() ||
		back.NumPorts() != orig.NumPorts() {
		t.Fatal("round trip changed shape")
	}
	for _, n := range orig.Nets {
		n2 := back.NetByName(n.Name)
		if n2 == nil || n2.Degree() != n.Degree() {
			t.Fatalf("net %q not preserved", n.Name)
		}
	}
}

func TestVerilogCrossFormat(t *testing.T) {
	// .bench -> circuit -> Verilog -> circuit: same shape.
	p := tech.NMOS25()
	c, err := ParseBench(strings.NewReader(smallBench), "c17", p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ParseVerilog(bytes.NewReader(buf.Bytes()), p)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if back.NumDevices() != c.NumDevices() || back.NumPorts() != c.NumPorts() {
		t.Fatal("cross-format conversion changed shape")
	}
}

func TestWriteVerilogRejectsTransistors(t *testing.T) {
	b := netlist.NewBuilder("x")
	b.AddDevice("m1", "ENH", "a", "b", "c")
	b.AddDevice("m2", "DEP", "c", "c", "")
	b.AddPort("pa", netlist.In, "a")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteVerilog(&bytes.Buffer{}, c); err == nil {
		t.Fatal("transistor circuit accepted")
	}
}

func FuzzParseVerilog(f *testing.F) {
	f.Add(demoVerilog)
	f.Add("module m (a); input a; endmodule")
	f.Add("module m (); ; endmodule")
	f.Add("module m (a, ); input a; endmodule")
	p := tech.NMOS25()
	f.Fuzz(func(t *testing.T, input string) {
		c, err := ParseVerilog(strings.NewReader(input), p)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteVerilog(&buf, c); err != nil {
			return
		}
		if _, err := ParseVerilog(bytes.NewReader(buf.Bytes()), p); err != nil {
			t.Fatalf("reparse of own output failed: %v\n%s", err, buf.String())
		}
	})
}

func TestVerilogMuxPrimitive(t *testing.T) {
	p := tech.NMOS25()
	in := `
module m (s, a, b, y);
  input s, a, b; output y;
  mux m1 (y, s, a, b);
endmodule
`
	c, err := ParseVerilog(strings.NewReader(in), p)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDevices() != 1 || c.Devices[0].Type != "MUX2" {
		t.Fatalf("mux parse: %d devices", c.NumDevices())
	}
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mux m1 (y, s, a, b);") {
		t.Fatalf("writer output:\n%s", buf.String())
	}
}
