package hdl

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode"

	"maest/internal/cells"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// ParseVerilog reads the structural gate-level Verilog subset of the
// paper's era (Verilog-1985 primitives) and technology-maps it onto
// the process cell library:
//
//	module demo (a, b, y);
//	  input a, b;
//	  output y;
//	  wire n1;
//	  nand g1 (n1, a, b);   // output first, then inputs
//	  not  g2 (y, n1);
//	endmodule
//
// Supported statements: module header, input/output/inout/wire
// declarations, and the gate primitives and/or/nand/nor/xor/xnor/
// not/buf plus dff/latch extensions.  Instance names are optional,
// comments are // and /* */.
func ParseVerilog(r io.Reader, p *tech.Process) (*netlist.Circuit, error) {
	toks, err := lexVerilog(r)
	if err != nil {
		return nil, err
	}
	vp := &verilogParser{toks: toks, proc: p}
	return vp.parseModule()
}

// lexVerilog produces identifier/punctuation tokens with comments
// stripped.
func lexVerilog(r io.Reader) ([]string, error) {
	br := bufio.NewReader(r)
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("hdl: verilog read: %w", err)
	}
	src := string(data)
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("hdl: verilog: unterminated block comment")
			}
			i += end + 4
		case unicode.IsSpace(rune(c)):
			i++
		case c == '(' || c == ')' || c == ',' || c == ';':
			toks = append(toks, string(c))
			i++
		case isVerilogIdentChar(c):
			j := i
			for j < len(src) && isVerilogIdentChar(src[j]) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			return nil, fmt.Errorf("hdl: verilog: unexpected character %q", c)
		}
	}
	return toks, nil
}

func isVerilogIdentChar(c byte) bool {
	return c == '_' || c == '$' || c == '\\' || c == '[' || c == ']' ||
		(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

type verilogParser struct {
	toks []string
	pos  int
	proc *tech.Process
}

func (vp *verilogParser) peek() string {
	if vp.pos < len(vp.toks) {
		return vp.toks[vp.pos]
	}
	return ""
}

func (vp *verilogParser) next() string {
	t := vp.peek()
	vp.pos++
	return t
}

func (vp *verilogParser) expect(tok string) error {
	if got := vp.next(); got != tok {
		return fmt.Errorf("hdl: verilog: expected %q, got %q", tok, got)
	}
	return nil
}

// identList parses "a, b, c" up to (but not consuming) a closer.
func (vp *verilogParser) identList() ([]string, error) {
	var out []string
	for {
		id := vp.next()
		if id == "" || id == ";" || id == ")" {
			return nil, fmt.Errorf("hdl: verilog: expected identifier, got %q", id)
		}
		out = append(out, id)
		if vp.peek() != "," {
			return out, nil
		}
		vp.next()
	}
}

var verilogPrimitives = map[string]cells.Func{
	"and": cells.FuncAnd, "or": cells.FuncOr,
	"nand": cells.FuncNand, "nor": cells.FuncNor,
	"xor": cells.FuncXor, "xnor": cells.FuncXnor,
	"not": cells.FuncNot, "buf": cells.FuncBuf,
	"dff": cells.FuncDFF, "latch": cells.FuncLatch,
	"mux": cells.FuncMux,
}

func (vp *verilogParser) parseModule() (*netlist.Circuit, error) {
	if err := vp.expect("module"); err != nil {
		return nil, err
	}
	name := vp.next()
	if name == "" || name == "(" {
		return nil, fmt.Errorf("hdl: verilog: missing module name")
	}
	b := netlist.NewBuilder(name)
	m := cells.NewMapper(vp.proc, b)

	// Port list (names only; directions come from declarations).
	portOrder := []string{}
	if vp.peek() == "(" {
		vp.next()
		if vp.peek() != ")" {
			ids, err := vp.identList()
			if err != nil {
				return nil, err
			}
			portOrder = ids
		}
		if err := vp.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := vp.expect(";"); err != nil {
		return nil, err
	}

	dirs := map[string]netlist.PortDir{}
	declared := map[string]bool{}
	gateSeq := 0
	for {
		tok := vp.next()
		switch tok {
		case "":
			return nil, fmt.Errorf("hdl: verilog: missing endmodule")
		case "endmodule":
			for _, pn := range portOrder {
				dir, ok := dirs[pn]
				if !ok {
					return nil, fmt.Errorf("hdl: verilog: port %q has no direction declaration", pn)
				}
				b.AddPort(pn, dir, pn)
			}
			c, err := b.Build()
			if err != nil {
				return nil, fmt.Errorf("hdl: verilog: %w", err)
			}
			return c, nil
		case "input", "output", "inout":
			ids, err := vp.identList()
			if err != nil {
				return nil, err
			}
			if err := vp.expect(";"); err != nil {
				return nil, err
			}
			dir := netlist.In
			if tok == "output" {
				dir = netlist.Out
			} else if tok == "inout" {
				dir = netlist.InOut
			}
			for _, id := range ids {
				if _, dup := dirs[id]; dup {
					return nil, fmt.Errorf("hdl: verilog: port %q declared twice", id)
				}
				dirs[id] = dir
			}
		case "wire":
			ids, err := vp.identList()
			if err != nil {
				return nil, err
			}
			if err := vp.expect(";"); err != nil {
				return nil, err
			}
			for _, id := range ids {
				declared[id] = true
			}
		default:
			f, ok := verilogPrimitives[tok]
			if !ok {
				return nil, fmt.Errorf("hdl: verilog: unsupported statement or primitive %q", tok)
			}
			inst := ""
			if vp.peek() != "(" {
				inst = vp.next()
			}
			if err := vp.expect("("); err != nil {
				return nil, err
			}
			conns, err := vp.identList()
			if err != nil {
				return nil, err
			}
			if err := vp.expect(")"); err != nil {
				return nil, err
			}
			if err := vp.expect(";"); err != nil {
				return nil, err
			}
			if len(conns) < 2 {
				return nil, fmt.Errorf("hdl: verilog: primitive %q needs an output and at least one input", tok)
			}
			gateSeq++
			if inst == "" {
				inst = fmt.Sprintf("%s_%d", tok, gateSeq)
			}
			// Verilog primitive port order: output first.
			if err := m.Gate(inst, f, conns[1:], conns[0]); err != nil {
				return nil, fmt.Errorf("hdl: verilog: %v", err)
			}
		}
	}
}

// WriteVerilog serializes a gate-level circuit as structural Verilog
// using the primitive set above (the inverse of ParseVerilog, up to
// decomposed gate structure).  Generated "$"-prefixed names are
// written as-is; they are legal in this dialect (the lexer accepts
// "$" anywhere in an identifier), if not in strict IEEE Verilog.
func WriteVerilog(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	var portNames []string
	for _, p := range c.Ports {
		portNames = append(portNames, p.Name)
	}
	fmt.Fprintf(bw, "module %s (%s);\n", c.Name, strings.Join(portNames, ", "))
	for _, p := range c.Ports {
		kw := "input"
		switch p.Dir {
		case netlist.Out:
			kw = "output"
		case netlist.InOut:
			kw = "inout"
		}
		fmt.Fprintf(bw, "  %s %s;\n", kw, p.Name)
	}
	// Wires: internal nets (not port nets).
	portNet := map[string]bool{}
	for _, p := range c.Ports {
		portNet[p.Net.Name] = true
	}
	var wires []string
	for _, n := range c.Nets {
		if !portNet[n.Name] {
			wires = append(wires, n.Name)
		}
	}
	if len(wires) > 0 {
		fmt.Fprintf(bw, "  wire %s;\n", strings.Join(wires, ", "))
	}
	for _, d := range c.Devices {
		f, _, err := cells.CellFunc(d.Type)
		if err != nil {
			return fmt.Errorf("hdl: verilog: device %q: %v", d.Name, err)
		}
		prim := verilogPrimName(f)
		if prim == "" {
			return fmt.Errorf("hdl: verilog: device %q: no primitive for %v", d.Name, f)
		}
		if len(d.Pins) < 2 || d.Pins[len(d.Pins)-1] == nil {
			return fmt.Errorf("hdl: verilog: device %q: unconnected output", d.Name)
		}
		conns := []string{d.Pins[len(d.Pins)-1].Name}
		for i, n := range d.Pins[:len(d.Pins)-1] {
			if n == nil {
				if (f == cells.FuncDFF || f == cells.FuncLatch) && i == len(d.Pins)-2 {
					continue // open clock
				}
				return fmt.Errorf("hdl: verilog: device %q: unconnected input %d", d.Name, i)
			}
			conns = append(conns, n.Name)
		}
		fmt.Fprintf(bw, "  %s %s (%s);\n", prim, d.Name, strings.Join(conns, ", "))
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

func verilogPrimName(f cells.Func) string {
	for name, fn := range verilogPrimitives {
		if fn == f {
			return name
		}
	}
	return ""
}
