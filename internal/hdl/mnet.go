// Package hdl is the estimator's front end (paper Fig. 1, "Circuit
// Schematic ... expressed in a standard hardware description
// language"): it reads and writes the .mnet structural netlist
// language and reads ISCAS-style .bench gate-level files, translating
// both into the netlist.Circuit "mathematical representation for
// numerical analysis".
package hdl

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"maest/internal/netlist"
)

// The .mnet language is line-oriented:
//
//	# comment
//	module small
//	port in a
//	port in b
//	port out y
//	device g1 NAND2 a b n1
//	device g2 INV n1 y
//	end
//
// device lines connect instance pins to nets in pin order; "-" leaves
// a pin unconnected.  Names beginning with "$" are reserved for
// generated nets and devices and are rejected from source text.

// unconnected is the .mnet spelling of an open pin.
const unconnected = "-"

// ParseMnet parses one module from r.
func ParseMnet(r io.Reader) (*netlist.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var (
		b      *netlist.Builder
		line   int
		closed bool
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		key := fields[0]
		if b == nil && key != "module" {
			return nil, fmt.Errorf("hdl: line %d: %q before module header", line, key)
		}
		if closed {
			return nil, fmt.Errorf("hdl: line %d: content after 'end'", line)
		}
		switch key {
		case "module":
			if b != nil {
				return nil, fmt.Errorf("hdl: line %d: duplicate module header", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("hdl: line %d: want 'module <name>'", line)
			}
			if err := checkName(fields[1], line); err != nil {
				return nil, err
			}
			b = netlist.NewBuilder(fields[1])
		case "port":
			if len(fields) != 3 {
				return nil, fmt.Errorf("hdl: line %d: want 'port <dir> <net>'", line)
			}
			dir, err := netlist.ParsePortDir(fields[1])
			if err != nil {
				return nil, fmt.Errorf("hdl: line %d: %v", line, err)
			}
			if err := checkName(fields[2], line); err != nil {
				return nil, err
			}
			b.AddPort(fields[2], dir, fields[2])
		case "device":
			if len(fields) < 4 {
				return nil, fmt.Errorf("hdl: line %d: want 'device <name> <type> <net>...'", line)
			}
			if err := checkName(fields[1], line); err != nil {
				return nil, err
			}
			nets := make([]string, len(fields)-3)
			for i, f := range fields[3:] {
				if f == unconnected {
					continue // leave empty -> unconnected pin
				}
				if err := checkName(f, line); err != nil {
					return nil, err
				}
				nets[i] = f
			}
			b.AddDevice(fields[1], fields[2], nets...)
		case "end":
			if len(fields) != 1 {
				return nil, fmt.Errorf("hdl: line %d: 'end' takes no arguments", line)
			}
			closed = true
		default:
			return nil, fmt.Errorf("hdl: line %d: unknown directive %q", line, key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hdl: read: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("hdl: no module found")
	}
	if !closed {
		return nil, fmt.Errorf("hdl: module not closed with 'end'")
	}
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("hdl: %w", err)
	}
	return c, nil
}

func checkName(name string, line int) error {
	if strings.HasPrefix(name, "$") {
		return fmt.Errorf("hdl: line %d: name %q: '$' prefix is reserved for generated names", line, name)
	}
	if name == unconnected {
		return fmt.Errorf("hdl: line %d: %q is reserved for unconnected pins", line, name)
	}
	return nil
}

// WriteMnet serializes c in .mnet form.  Generated "$" names survive a
// write (they are re-readable only after renaming), so WriteMnet
// rejects circuits containing them rather than emit an unparsable
// file.
func WriteMnet(w io.Writer, c *netlist.Circuit) error {
	for _, d := range c.Devices {
		if strings.HasPrefix(d.Name, "$") || strings.Contains(d.Name, "$") {
			return fmt.Errorf("hdl: device %q has a generated name; rename before writing", d.Name)
		}
	}
	for _, n := range c.Nets {
		if strings.HasPrefix(n.Name, "$") {
			return fmt.Errorf("hdl: net %q has a generated name; rename before writing", n.Name)
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "module %s\n", c.Name)
	for _, p := range c.Ports {
		fmt.Fprintf(bw, "port %s %s\n", p.Dir, p.Net.Name)
	}
	for _, d := range c.Devices {
		fmt.Fprintf(bw, "device %s %s", d.Name, d.Type)
		for _, n := range d.Pins {
			if n == nil {
				fmt.Fprintf(bw, " %s", unconnected)
			} else {
				fmt.Fprintf(bw, " %s", n.Name)
			}
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}
